package llm4vv

// The benchmark harness regenerates every table and figure of the
// paper's evaluation section (DESIGN.md §6 maps each bench to its
// artifact). Each bench runs its experiment end to end — suite
// generation, negative probing, toolchain, judging, scoring — on a
// 1/benchScale-sized suite per iteration and reports the headline
// metrics via b.ReportMetric, so `go test -bench .` doubles as a
// regression check on the reproduced shapes. cmd/llm4vv runs the same
// experiments at full size.

import (
	"context"
	"testing"

	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/spec"
)

// benchScale shrinks suites so a bench iteration stays ~100ms-1s.
const benchScale = 8

func reportSummary(b *testing.B, prefix string, s metrics.Summary) {
	b.ReportMetric(100*s.Accuracy(), prefix+"acc%")
	b.ReportMetric(s.Bias(), prefix+"bias")
}

func benchDirect(b *testing.B, d spec.Dialect) metrics.Summary {
	b.Helper()
	var last metrics.Summary
	for i := 0; i < b.N; i++ {
		s, err := RunDirectProbing(PartOneSpec(d).Scaled(benchScale), DefaultModelSeed)
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	return last
}

func benchPartTwo(b *testing.B, d spec.Dialect) PartTwoResult {
	b.Helper()
	var last PartTwoResult
	for i := 0; i < b.N; i++ {
		r, err := RunPartTwo(PartTwoSpec(d).Scaled(benchScale), DefaultModelSeed)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	return last
}

// BenchmarkTableI — direct LLMJ per-issue negative probing, OpenACC.
func BenchmarkTableI(b *testing.B) {
	s := benchDirect(b, spec.OpenACC)
	reportSummary(b, "", s)
	b.ReportMetric(100*s.PerIssue[probe.IssueRandom].Accuracy(), "random-detect%")
}

// BenchmarkTableII — direct LLMJ per-issue negative probing, OpenMP.
func BenchmarkTableII(b *testing.B) {
	s := benchDirect(b, spec.OpenMP)
	reportSummary(b, "", s)
	b.ReportMetric(100*s.PerIssue[probe.IssueRandom].Accuracy(), "random-detect%")
}

// BenchmarkTableIII — overall direct-LLMJ accuracy and bias for both
// dialects (the aggregate of Tables I and II).
func BenchmarkTableIII(b *testing.B) {
	var acc, omp metrics.Summary
	for i := 0; i < b.N; i++ {
		var err error
		acc, err = RunDirectProbing(PartOneSpec(spec.OpenACC).Scaled(benchScale), DefaultModelSeed)
		if err != nil {
			b.Fatal(err)
		}
		omp, err = RunDirectProbing(PartOneSpec(spec.OpenMP).Scaled(benchScale), DefaultModelSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSummary(b, "acc-", acc)
	reportSummary(b, "omp-", omp)
}

// BenchmarkTableIV — validation pipeline per-issue, OpenACC.
func BenchmarkTableIV(b *testing.B) {
	r := benchPartTwo(b, spec.OpenACC)
	reportSummary(b, "p1-", r.Pipeline1)
	reportSummary(b, "p2-", r.Pipeline2)
	b.ReportMetric(100*r.Pipeline1.PerIssue[probe.IssueTruncated].Accuracy(), "p1-trunc%")
}

// BenchmarkTableV — validation pipeline per-issue, OpenMP.
func BenchmarkTableV(b *testing.B) {
	r := benchPartTwo(b, spec.OpenMP)
	reportSummary(b, "p1-", r.Pipeline1)
	reportSummary(b, "p2-", r.Pipeline2)
	b.ReportMetric(100*r.Pipeline1.PerIssue[probe.IssueTruncated].Accuracy(), "p1-trunc%")
}

// BenchmarkTableVI — overall pipeline accuracy/bias, both dialects.
func BenchmarkTableVI(b *testing.B) {
	var acc, omp PartTwoResult
	for i := 0; i < b.N; i++ {
		var err error
		acc, err = RunPartTwo(PartTwoSpec(spec.OpenACC).Scaled(benchScale), DefaultModelSeed)
		if err != nil {
			b.Fatal(err)
		}
		omp, err = RunPartTwo(PartTwoSpec(spec.OpenMP).Scaled(benchScale), DefaultModelSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSummary(b, "acc-p1-", acc.Pipeline1)
	reportSummary(b, "omp-p1-", omp.Pipeline1)
	b.ReportMetric(100*(omp.Pipeline1.Accuracy()-acc.Pipeline1.Accuracy()), "omp-acc-gap%")
}

// BenchmarkTableVII — agent-based LLMJs per-issue, OpenACC.
func BenchmarkTableVII(b *testing.B) {
	r := benchPartTwo(b, spec.OpenACC)
	reportSummary(b, "llmj1-", r.LLMJ1)
	reportSummary(b, "llmj2-", r.LLMJ2)
}

// BenchmarkTableVIII — agent-based LLMJs per-issue, OpenMP.
func BenchmarkTableVIII(b *testing.B) {
	r := benchPartTwo(b, spec.OpenMP)
	reportSummary(b, "llmj1-", r.LLMJ1)
	reportSummary(b, "llmj2-", r.LLMJ2)
}

// BenchmarkTableIX — overall agent-based LLMJ accuracy/bias.
func BenchmarkTableIX(b *testing.B) {
	var acc, omp PartTwoResult
	for i := 0; i < b.N; i++ {
		var err error
		acc, err = RunPartTwo(PartTwoSpec(spec.OpenACC).Scaled(benchScale), DefaultModelSeed)
		if err != nil {
			b.Fatal(err)
		}
		omp, err = RunPartTwo(PartTwoSpec(spec.OpenMP).Scaled(benchScale), DefaultModelSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSummary(b, "acc-llmj1-", acc.LLMJ1)
	reportSummary(b, "omp-llmj1-", omp.LLMJ1)
	reportSummary(b, "acc-llmj2-", acc.LLMJ2)
	reportSummary(b, "omp-llmj2-", omp.LLMJ2)
}

// radarMetric reports the five Figure axes as metrics.
func radarMetric(b *testing.B, prefix string, s metrics.Summary) {
	for _, ax := range metrics.RadarAxes(s) {
		b.ReportMetric(100*ax.Value, prefix+shortAxis(ax.Label)+"%")
	}
}

func shortAxis(label string) string {
	switch label {
	case "Improper Directives":
		return "dir"
	case "Improper Syntax":
		return "syn"
	case "No Directives":
		return "nodir"
	case "Test Logic":
		return "logic"
	case "Valid Recognition":
		return "valid"
	default:
		return "ax"
	}
}

// BenchmarkFigure3 — radar axes for both pipelines, OpenACC.
func BenchmarkFigure3(b *testing.B) {
	r := benchPartTwo(b, spec.OpenACC)
	radarMetric(b, "p1-", r.Pipeline1)
}

// BenchmarkFigure4 — radar axes for both pipelines, OpenMP.
func BenchmarkFigure4(b *testing.B) {
	r := benchPartTwo(b, spec.OpenMP)
	radarMetric(b, "p1-", r.Pipeline1)
}

// BenchmarkFigure5 — radar axes for the three judges, OpenACC.
func BenchmarkFigure5(b *testing.B) {
	r := benchPartTwo(b, spec.OpenACC)
	radarMetric(b, "direct-", r.Direct)
	radarMetric(b, "llmj1-", r.LLMJ1)
}

// BenchmarkFigure6 — radar axes for the three judges, OpenMP.
func BenchmarkFigure6(b *testing.B) {
	r := benchPartTwo(b, spec.OpenMP)
	radarMetric(b, "direct-", r.Direct)
	radarMetric(b, "llmj1-", r.LLMJ1)
}

// BenchmarkPipelineThroughput — ablation A1: stage executions saved by
// short-circuiting.
func BenchmarkPipelineThroughput(b *testing.B) {
	var r PipelineThroughputResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = RunPipelineThroughput(PartTwoSpec(spec.OpenACC).Scaled(benchScale), DefaultModelSeed, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.ShortCircuit.JudgeCalls), "judge-calls-short")
	b.ReportMetric(float64(r.RecordAll.JudgeCalls), "judge-calls-all")
	saved := float64(r.RecordAll.JudgeCalls-r.ShortCircuit.JudgeCalls) /
		float64(r.RecordAll.JudgeCalls)
	b.ReportMetric(100*saved, "judge-calls-saved%")
}

// BenchmarkPipelineWorkers — wall-clock scaling of the pipeline's
// worker pools over a fixed suite.
func BenchmarkPipelineWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunPipelineThroughput(PartTwoSpec(spec.OpenMP).Scaled(benchScale), DefaultModelSeed, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(workers int) string {
	return "workers-" + string(rune('0'+workers))
}

// BenchmarkAblationAgentInfo — ablation A2: accuracy delta from tool
// information, same model, same suite.
func BenchmarkAblationAgentInfo(b *testing.B) {
	var r AblationAgentInfoResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = RunAblationAgentInfo(PartTwoSpec(spec.OpenACC).Scaled(benchScale), DefaultModelSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.WithoutTools.Accuracy(), "without-tools-acc%")
	b.ReportMetric(100*r.WithTools.Accuracy(), "with-tools-acc%")
	b.ReportMetric(100*(r.WithTools.Accuracy()-r.WithoutTools.Accuracy()), "delta%")
}

// BenchmarkAblationStages — ablation A3: accuracy of compile-only,
// compile+run, and the full pipeline.
func BenchmarkAblationStages(b *testing.B) {
	var r AblationStagesResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = RunAblationStages(PartTwoSpec(spec.OpenMP).Scaled(benchScale), DefaultModelSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.CompileOnly.Accuracy(), "compile-acc%")
	b.ReportMetric(100*r.CompileAndRun.Accuracy(), "compile+run-acc%")
	b.ReportMetric(100*r.FullPipeline.Accuracy(), "full-acc%")
}

// BenchmarkSuiteGeneration — cost of corpus generation plus negative
// probing (the workload generator itself).
func BenchmarkSuiteGeneration(b *testing.B) {
	spec2 := PartTwoSpec(spec.OpenACC).Scaled(benchScale)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildSuite(spec2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerationLoop — extension E1 (paper §VI future work): the
// LLM-author + pipeline-filter campaign, reporting filter quality.
func BenchmarkGenerationLoop(b *testing.B) {
	var r *GenerationResult
	for i := 0; i < b.N; i++ {
		r = RunGenerationLoop(spec.OpenACC, 1, DefaultModelSeed)
	}
	b.ReportMetric(100*r.RawSoundRate(), "raw-sound%")
	b.ReportMetric(100*r.AcceptancePrecision(), "accepted-precision%")
	b.ReportMetric(100*r.DefectCatchRate(), "defect-catch%")
	b.ReportMetric(float64(len(r.Candidates))/float64(len(r.Accepted)+1), "candidates/accepted")
}

// BenchmarkPanelAgreement — the ensemble experiment: a three-seat
// panel of the default backend on the Part-One OpenACC suite,
// reporting the panel verdict quality and the inter-judge agreement
// headline (Fleiss' kappa, mean pairwise agreement). Deterministic
// like every other metric here, so benchci gates the agreement
// numbers against the committed baseline.
func BenchmarkPanelAgreement(b *testing.B) {
	r, err := NewRunner()
	if err != nil {
		b.Fatal(err)
	}
	var last PanelDialectResult
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(context.Background(), r, "panel",
			ExperimentParams{Dialects: []spec.Dialect{spec.OpenACC}, Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		last = res.(*PanelScenarioResult).Results[spec.OpenACC]
	}
	reportSummary(b, "panel-", last.Panel)
	// A unit without the % suffix gets benchci's bias tolerance —
	// right for kappa, a coefficient in [-1, 1].
	b.ReportMetric(last.Agreement.Kappa, "kappa")
	b.ReportMetric(100*last.Agreement.MeanPairwise(), "pairwise%")
}
