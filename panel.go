package llm4vv

// The panel experiment: the Part-One suites judged by a voting
// ensemble of backends instead of a single judge, scored both as a
// judge (the panel verdict against ground truth) and as a panel
// (inter-judge agreement — Fleiss' kappa, the pairwise agreement
// matrix, and each member's bias against the consensus). Member votes
// travel inside the panel's response text and are persisted per file
// in the run store, so a resumed panel run re-judges zero files and
// reproduces its report byte-identically — including through a
// daemon serving the ensemble (-serve-addr), whose responses carry
// the same votes across the wire.

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/ensemble"
	"repro/internal/judge"
	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/report"
	"repro/internal/spec"
	"repro/internal/store"
)

// panelPhase is the run-store experiment phase panel probing records
// under; panel records carry the per-member votes next to the sealed
// verdict.
const panelPhase = "panel/direct"

// PanelDialectResult is one dialect's panel measurement.
type PanelDialectResult struct {
	// Strategy is the voting strategy the panel reported in its
	// transcripts ("majority", "unanimous", "weighted").
	Strategy string
	// Members are the panel member names in panel order, as voted.
	Members []string
	// Panel scores the panel verdict against ground truth — the
	// ensemble as one judge.
	Panel metrics.Summary
	// PerMember scores each member's own votes against ground truth,
	// aligned with Members — what each judge would have concluded
	// alone on the same files.
	PerMember []metrics.Summary
	// Agreement is the inter-judge reliability scoring.
	Agreement metrics.Agreement
}

// PanelProbing judges every file of the suite with the Runner's
// backend — which must produce panel transcripts: an ensemble
// backend, or a remote daemon fronting one — using the direct
// analysis prompt, and scores verdict quality and inter-judge
// agreement together. Scheduling follows the Runner's sharded
// work-stealing scheduler with per-shard batched judging; with a
// store configured, each file's verdict and member votes append as
// its shard completes, and with resume on, stored files are loaded
// (votes included) instead of judged.
func (r *Runner) PanelProbing(ctx context.Context, s SuiteSpec) (PanelDialectResult, error) {
	suite, err := BuildSuite(s)
	if err != nil {
		return PanelDialectResult{}, err
	}
	j := &judge.Judge{LLM: r.panelLLM(), Style: judge.Direct, Dialect: s.Dialect}
	tr := r.track(panelPhase, len(suite))
	hashes := r.hashSources(len(suite), func(i int) string { return suite[i].Source })
	prior := r.storedRecords(panelPhase, len(suite), hashes)

	verdicts := make([]judge.Verdict, len(suite))
	votes := make([][]ensemble.Vote, len(suite))
	strategies := make([]string, len(suite))
	err = r.judgeSharded(ctx, j, len(suite), false,
		func(i int) (bool, error) {
			rec := prior[i]
			if rec == nil {
				return false, nil
			}
			strat, vs, derr := ensemble.DecodeVotes(rec.Votes)
			if derr != nil {
				// A corrupt stored record fails the run right here —
				// the scheduler stops before fanning further files out
				// to the panel members.
				return true, fmt.Errorf("llm4vv: stored panel record for %s: %w", suite[i].Name, derr)
			}
			verdicts[i], votes[i], strategies[i] = verdictFromName(rec.Verdict), vs, strat
			tr.file(suite[i].Name)
			return true, nil
		},
		func(i int) string { return suite[i].Name },
		func(i int) (string, *judge.ToolInfo) { return suite[i].Source, nil },
		func(i int, ev judge.Evaluation) (*store.Record, error) {
			strat, vs, ok := ensemble.ParseVotes(ev.Response)
			if !ok {
				return nil, fmt.Errorf("llm4vv: backend %q returned a single-judge response for %s; the panel experiment needs an ensemble backend (ensemble:a+b+c) or a daemon serving one",
					r.backend, suite[i].Name)
			}
			verdicts[i], votes[i], strategies[i] = ev.Verdict, vs, strat
			tr.file(suite[i].Name)
			if r.store == nil {
				return nil, nil
			}
			return &store.Record{
				Experiment: panelPhase, Backend: r.backend, Seed: r.seed,
				FileHash: hashes[i], Name: suite[i].Name,
				JudgeRan: true, Verdict: ev.Verdict.String(),
				Votes: ensemble.EncodeVotes(strat, vs),
			}, nil
		})
	if err != nil {
		return PanelDialectResult{}, err
	}
	return scorePanel(s.Dialect, suite, verdicts, votes, strategies)
}

// panelLLM constructs the experiment's endpoint, recalibrating a
// Weighted in-process panel from run-store history when one exists:
// prior records under this exact (phase, backend, seed) provide each
// member's agreement rate with the stored panel verdict, which
// becomes its vote weight (ensemble.WeightsFromVotes). The history
// streams out of the store's segment scan — votes decode record by
// record, so a calibration corpus of millions of panel records never
// materialises as a slice of store records. Without history — or
// through wrappers (eval cache) and remote daemons that hide the
// panel — the constructed weights stand.
func (r *Runner) panelLLM() judge.LLM {
	llm := r.newLLM()
	p, ok := llm.(*ensemble.Panel)
	if !ok || p.Strategy() != ensemble.Weighted || r.store == nil {
		return llm
	}
	seed := r.seed
	seen := 0
	var history [][]ensemble.Vote
	var panelVerdicts []judge.Verdict
	_ = r.store.Scan(store.Filter{Experiment: panelPhase, Backend: r.backend, Seed: &seed}, func(rec store.Record) bool {
		seen++
		if _, vs, err := ensemble.DecodeVotes(rec.Votes); err == nil {
			history = append(history, vs)
			panelVerdicts = append(panelVerdicts, verdictFromName(rec.Verdict))
		}
		return true
	})
	if seen == 0 {
		return llm
	}
	weights := ensemble.WeightsFromVotes(p.Members(), history, panelVerdicts)
	if rp, err := p.Reweighted(weights); err == nil {
		return rp
	}
	return llm
}

// scorePanel aggregates one suite's panel outcomes. Member names and
// the strategy come from the votes themselves (the panel transcript),
// so the scoring is identical whether the votes were cast in-process,
// behind a daemon, or loaded from the store.
func scorePanel(d spec.Dialect, suite []probe.ProbedFile, verdicts []judge.Verdict, votes [][]ensemble.Vote, strategies []string) (PanelDialectResult, error) {
	res := PanelDialectResult{}
	if len(votes) == 0 {
		return res, fmt.Errorf("llm4vv: panel judged an empty suite")
	}
	for i, v := range votes {
		if len(v) != len(votes[0]) {
			return res, fmt.Errorf("llm4vv: inconsistent panel size: file %d has %d votes, file 0 has %d", i, len(v), len(votes[0]))
		}
	}
	res.Strategy = strategies[0]
	res.Members = make([]string, len(votes[0]))
	for i, v := range votes[0] {
		res.Members[i] = v.Member
	}

	panelOut := make([]metrics.Outcome, len(suite))
	memberOut := make([][]metrics.Outcome, len(res.Members))
	for m := range memberOut {
		memberOut[m] = make([]metrics.Outcome, len(suite))
	}
	voteVerdicts := make([][]judge.Verdict, len(suite))
	for i := range suite {
		panelOut[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: verdicts[i] == judge.Valid}
		voteVerdicts[i] = make([]judge.Verdict, len(res.Members))
		for m, v := range votes[i] {
			vv := v.Verdict
			if v.Err {
				// A dropped member delivered no usable verdict; for
				// scoring and agreement alike that is unparsable.
				vv = judge.Unparsable
			}
			voteVerdicts[i][m] = vv
			memberOut[m][i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: vv == judge.Valid}
		}
	}
	res.Panel = metrics.Score(d, panelOut)
	res.PerMember = make([]metrics.Summary, len(res.Members))
	for m := range res.Members {
		res.PerMember[m] = metrics.Score(d, memberOut[m])
	}
	res.Agreement = metrics.ComputeAgreement(res.Members, voteVerdicts, verdicts)
	return res, nil
}

// PanelScenarioResult carries the panel experiment across dialects.
type PanelScenarioResult struct {
	Dialects []spec.Dialect
	Results  map[spec.Dialect]PanelDialectResult
}

// panelRunner resolves which backend the panel experiment judges
// with: an ensemble backend runs as-is, a remote backend is trusted
// to front a panel daemon-side (its responses carry the votes), and
// any other backend is wrapped in the Runner's panel spec (WithPanel;
// default three seats of itself, each under its own derived member
// seed). The wrap is validated eagerly so a bad member spec fails
// before any judging starts.
func (r *Runner) panelRunner() (*Runner, error) {
	b := r.backend
	if strings.HasPrefix(b, "ensemble:") || strings.HasPrefix(b, "remote:") {
		return r, nil
	}
	memberSpec := r.panelSpec
	if memberSpec == "" {
		memberSpec = b + "+" + b + "+" + b
	}
	if _, err := NewPanel(memberSpec, r.seed); err != nil {
		return nil, err
	}
	return r.withBackend("ensemble:" + memberSpec), nil
}

func runPanelScenario(ctx context.Context, r *Runner, p ExperimentParams) (ExperimentResult, error) {
	rp, err := r.panelRunner()
	if err != nil {
		return nil, err
	}
	res := &PanelScenarioResult{Results: map[spec.Dialect]PanelDialectResult{}}
	for _, d := range p.EffectiveDialects() {
		pr, err := rp.PanelProbing(ctx, PartOneSpec(d).Scaled(p.EffectiveScale()))
		if err != nil {
			return nil, err
		}
		res.Dialects = append(res.Dialects, d)
		res.Results[d] = pr
	}
	return res, nil
}

// Report renders the panel verdict tables, the per-member solo
// scorecard, and the agreement block per dialect. Everything printed
// derives from the votes and ground truth — never from local
// configuration — so the same panel produces byte-identical reports
// in-process, through a daemon, and on a resumed run.
func (r *PanelScenarioResult) Report() string {
	var b strings.Builder
	b.WriteString("================ PANEL: ensemble judging with inter-judge agreement ================\n")
	for _, d := range r.Dialects {
		pr := r.Results[d]
		fmt.Fprintf(&b, "Panel of %d judges (strategy %s): %s\n\n",
			len(pr.Members), pr.Strategy, strings.Join(pr.Members, ", "))
		b.WriteString(report.PerIssueTable(fmt.Sprintf("Panel verdict on %v (negative probing)", d), pr.Panel))
		b.WriteByte('\n')

		solo := report.Table{
			Title:   "Each judge alone on the same files:",
			Headers: []string{"Member", "Accuracy", "Bias", "Mistakes"},
		}
		for m, name := range pr.Members {
			s := pr.PerMember[m]
			solo.AddRow(name,
				fmt.Sprintf("%.2f%%", 100*s.Accuracy()),
				fmt.Sprintf("%+.3f", s.Bias()),
				fmt.Sprintf("%d", s.Mistakes))
		}
		solo.AddRow("panel ("+pr.Strategy+")",
			fmt.Sprintf("%.2f%%", 100*pr.Panel.Accuracy()),
			fmt.Sprintf("%+.3f", pr.Panel.Bias()),
			fmt.Sprintf("%d", pr.Panel.Mistakes))
		b.WriteString(solo.Render())
		b.WriteByte('\n')

		b.WriteString(report.Agreement(fmt.Sprintf("Inter-judge agreement (%v):", d), pr.Agreement))
		b.WriteByte('\n')
	}
	return b.String()
}
