package llm4vv

import (
	"log/slog"

	"repro/internal/pipeline"
	"repro/internal/store"
	"repro/internal/trace"
)

// Option configures a Runner at construction time.
type Option func(*Runner)

// WithBackend selects the registered LLM endpoint the Runner judges
// and generates with. The name is resolved against the backend
// registry when NewRunner runs, so an unknown name fails fast there
// rather than mid-experiment. Default: DefaultBackend.
func WithBackend(name string) Option {
	return func(r *Runner) { r.backend = name }
}

// WithSeed sets the endpoint sampling seed. Default: DefaultModelSeed,
// the seed behind every published experiment number.
func WithSeed(seed uint64) Option {
	return func(r *Runner) { r.seed = seed }
}

// WithWorkers sets the per-stage worker count for pipeline stages and
// the fan-out of direct judging loops. Values below 1 are treated as
// 1. Default: GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(r *Runner) {
		if n < 1 {
			n = 1
		}
		r.workers = n
	}
}

// WithStages overrides the validation pipeline's per-stage
// configuration by name: each spec addresses one built-in stage
// (pipeline.StageCompile, StageExec, StageJudge) and its non-zero
// fields replace that stage's defaults — Workers falls back to
// WithWorkers, the judge stage's Batch to the shard size, Observe to
// none. Later WithStages/WithStageWorkers options refine earlier ones
// field-wise. Unknown stage names and negative values fail NewRunner.
// Scheduling knobs never change results: reports stay byte-identical
// across any worker/batch mix.
func WithStages(specs ...pipeline.StageSpec) Option {
	return func(r *Runner) {
		for _, s := range specs {
			r.setStage(s)
		}
	}
}

// WithStageWorkers sizes one pipeline stage's worker pool — shorthand
// for WithStages(pipeline.StageSpec{Name: name, Workers: n}), the
// option behind the commands' -stage-workers flag. A judge fleet
// saturates at a different width than the local compile simulator;
// this is the per-stage override WithWorkers is too coarse for.
func WithStageWorkers(name string, n int) Option {
	return func(r *Runner) {
		r.setStage(pipeline.StageSpec{Name: name, Workers: n})
	}
}

// WithShardSize sets the shard size of the Runner's chunked
// work-stealing scheduler: direct-judging loops claim contiguous
// shards of this many files off a shared cursor, each shard's prompts
// are submitted to the endpoint as one batch (a single CompleteBatch
// call for backends implementing judge.BatchLLM), and pipeline judge
// workers coalesce up to this many queued files per endpoint call.
// Sharding changes scheduling and endpoint round-trips, never results.
// Values below 1 — and the default 0 — select an automatic size
// balancing worker utilisation against batching overhead.
func WithShardSize(n int) Option {
	return func(r *Runner) {
		if n < 0 {
			n = 0
		}
		r.shardSize = n
	}
}

// WithStore attaches a persistent run store: a segmented JSONL log
// (created on first use) to which every sealed per-file verdict is
// appended, keyed by (experiment phase, backend, seed, file content
// hash). NewRunner opens the store — and recovers it, skipping any
// torn final line from an interrupted run — so path problems fail
// fast; Close the Runner to release it. Combine with WithResume to
// skip work recorded in previous runs, and WithStoreOptions to tune
// the segmented log.
func WithStore(path string) Option {
	return func(r *Runner) { r.storePath = path }
}

// WithStoreOptions tunes the run store's segmented log — the seal
// threshold, sparse-index granularity, and background-merge trigger
// (see store.Options). The zero value is the production default;
// only runs with unusual shapes (huge sweeps on small machines, tests
// forcing many segments) need to change it. Takes effect only
// together with WithStore.
func WithStoreOptions(opts store.Options) Option {
	return func(r *Runner) { r.storeOpts = opts }
}

// WithResume makes experiments consult the run store before judging:
// files whose (experiment phase, backend, seed, content hash) key is
// already stored load their prior verdict and are never re-judged, so
// an interrupted sweep restarted under the same configuration redoes
// only the files that never completed — and reproduces the metrics an
// uninterrupted run would have. Requires WithStore; without a store
// the option has no effect. Default: off (a store-holding Runner
// still records, it just never skips).
func WithResume(on bool) Option {
	return func(r *Runner) { r.resume = on }
}

// WithRecordAll controls short-circuiting in ValidateSuite: true runs
// every stage for every file (how the paper gathered Part-Two data),
// false lets files that fail an early stage skip the expensive later
// ones. Experiments whose measurements require a specific mode
// (PartTwo needs record-all, PipelineThroughput measures both) ignore
// this setting. Default: false (short-circuit, the production mode).
func WithRecordAll(on bool) Option {
	return func(r *Runner) { r.recordAll = on }
}

// WithEvalCache memoises endpoint completions keyed on the full prompt
// text for the lifetime of one experiment call. Sound for
// deterministic backends (the simulated model answers a prompt
// identically every time); it saves repeated completions when several
// configurations judge the same file. Default: off.
func WithEvalCache(on bool) Option {
	return func(r *Runner) { r.evalCache = on }
}

// WithPanel sets the ensemble member spec — "a+b+c" with an optional
// ":strategy" suffix (majority, unanimous, weighted) — the panel
// experiment composes when the Runner's backend is not already an
// ensemble or a remote daemon. The default (empty) seats three copies
// of the Runner's backend, each under its own derived member seed, so
// even a single registered backend yields a genuine three-judge
// panel. The spec is validated when the panel experiment runs;
// backends named in it resolve through the registry like any other.
func WithPanel(spec string) Option {
	return func(r *Runner) { r.panelSpec = spec }
}

// WithTracer attaches a distributed tracer: every file an experiment
// processes opens its own trace (span name "file"), pipeline stages,
// cache hits, batch coalescing, ensemble member votes, and remote
// calls record child spans under it, and remote calls propagate the
// trace across the wire (X-LLM4VV-Trace / X-LLM4VV-Span headers) so
// daemon- and router-side spans join the same trace. The Runner's
// run store, when opened by this Runner, inherits the tracer for its
// seal/merge spans unless WithStoreOptions already set one. A nil
// tracer (the default) disables tracing at near-zero cost — call
// sites guard on it before building any span. The tracer's own sinks
// (JSONL writer, in-memory ring, slow-exemplar reservoir) are
// configured on the trace.Tracer itself; see trace.New.
func WithTracer(t *trace.Tracer) Option {
	return func(r *Runner) { r.tracer = t }
}

// WithLogger installs a structured logger for the Runner's operational
// warnings — today, the single warning emitted when the run store's
// write path fails mid-sweep and the Runner degrades to store-less
// operation. Results are unaffected by degradation; the warning (and
// the error Runner.Close returns) is how the loss of durability
// surfaces. Default: nil, which discards the warnings.
func WithLogger(l *slog.Logger) Option {
	return func(r *Runner) { r.logger = l }
}

// WithProgress installs a streaming progress callback. Experiments
// invoke it once per completed file, from worker goroutines, as stages
// finish — it must be safe for concurrent use and should return
// quickly. Default: no callback.
func WithProgress(fn ProgressFunc) Option {
	return func(r *Runner) { r.progress = fn }
}

// ProgressFunc receives streaming progress events.
type ProgressFunc func(Progress)

// Progress is one streaming event from a running experiment.
type Progress struct {
	// Phase names the experiment phase emitting the event (for
	// example "direct-probing" or "pipeline/agent-direct").
	Phase string
	// File is the file whose processing just completed.
	File string
	// Done files out of Total have completed in this phase.
	Done  int
	Total int
}
