// Quickstart: generate one V&V test, break it with negative probing,
// then watch the toolchain and the LLM judge react — the whole LLM4VV
// loop on a single file.
package main

import (
	"context"
	"fmt"

	llm4vv "repro"
	"repro/internal/agent"
	"repro/internal/corpus"
	"repro/internal/judge"
	"repro/internal/probe"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/testlang"
)

func main() {
	// 1. Generate a valid OpenACC reduction test from the corpus.
	file, err := corpus.InstantiateTemplate(spec.OpenACC, "reduction_sum", testlang.LangC, 42)
	if err != nil {
		panic(err)
	}
	fmt.Println("=== generated test ===")
	fmt.Println(file.Source)

	// 2. Compile and run it with the simulated toolchain.
	tools := agent.NewTools(spec.OpenACC)
	outcome := tools.Gather(file.Name, file.Source, file.Lang)
	fmt.Printf("compile rc=%d, run rc=%d, stdout=%q\n\n",
		outcome.Info.CompileRC, outcome.Info.RunRC, outcome.Info.RunStdout)

	// 3. Judge it with the agent-based LLM judge (LLMJ 1).
	j := &judge.Judge{
		LLM:     llm4vv.NewModel(llm4vv.DefaultModelSeed),
		Style:   judge.AgentDirect,
		Dialect: spec.OpenACC,
	}
	ev, err := j.Evaluate(context.Background(), file.Source, &outcome.Info)
	if err != nil {
		panic(err)
	}
	fmt.Println("=== judge verdict on the valid test ===")
	fmt.Println(ev.Response)

	// 4. Now inject an error (negative probing issue 0: remove the
	//    device memory allocation) and judge again.
	mutated := probe.Mutate(file, probe.IssueDirective, rng.New(7))
	fmt.Printf("=== mutation applied: %s ===\n", mutated.Mutation)
	outcome2 := tools.Gather(mutated.Name, mutated.Source, mutated.Lang)
	fmt.Printf("compile rc=%d", outcome2.Info.CompileRC)
	if outcome2.Info.Ran {
		fmt.Printf(", run rc=%d", outcome2.Info.RunRC)
	}
	fmt.Println()
	ev2, err := j.Evaluate(context.Background(), mutated.Source, &outcome2.Info)
	if err != nil {
		panic(err)
	}
	fmt.Println("=== judge verdict on the mutated test ===")
	fmt.Println(ev2.Response)
	fmt.Printf("summary: valid file judged %v, mutated file judged %v\n", ev.Verdict, ev2.Verdict)
	if ev2.Verdict == judge.Valid {
		fmt.Println("(the judge was fooled — exactly the fallibility the paper measures;")
		fmt.Println(" the validation pipeline exists because the toolchain stages catch")
		fmt.Println(" most of what the judge rationalises away)")
	}
}
