// Negative probing example: build a small labelled suite, judge every
// file with the direct (Part-One) prompt, and print the per-issue
// scorecard — a miniature Table I.
package main

import (
	"context"
	"fmt"

	llm4vv "repro"
	"repro/internal/judge"
	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/report"
	"repro/internal/spec"
	"repro/internal/testlang"
)

func main() {
	suiteSpec := llm4vv.SuiteSpec{
		Dialect: spec.OpenACC,
		Counts:  probe.Counts{20, 12, 10, 12, 11, 65},
		Langs:   []testlang.Language{testlang.LangC, testlang.LangCPP},
		Seed:    2024,
	}
	suite, err := llm4vv.BuildSuite(suiteSpec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("probed suite: %d files (%d invalid, %d valid)\n\n",
		len(suite), suiteSpec.Counts.Total()-suiteSpec.Counts[probe.IssueNone],
		suiteSpec.Counts[probe.IssueNone])

	// Show one mutated file so the probing is concrete.
	for _, pf := range suite {
		if pf.Issue == probe.IssueDirective {
			fmt.Printf("example mutation on %s: %s\n\n", pf.Name, pf.Mutation)
			break
		}
	}

	j := &judge.Judge{
		LLM:     llm4vv.NewModel(llm4vv.DefaultModelSeed),
		Style:   judge.Direct,
		Dialect: spec.OpenACC,
	}
	outcomes := make([]metrics.Outcome, len(suite))
	for i, pf := range suite {
		ev, err := j.Evaluate(context.Background(), pf.Source, nil)
		if err != nil {
			panic(err)
		}
		outcomes[i] = metrics.Outcome{Issue: pf.Issue, JudgedValid: ev.Verdict == judge.Valid}
	}
	s := metrics.Score(spec.OpenACC, outcomes)
	fmt.Println(report.PerIssueTable("Direct LLMJ negative probing (miniature Table I)", s))
	fmt.Printf("overall accuracy %.2f%%, bias %+.3f\n", 100*s.Accuracy(), s.Bias())
	fmt.Println("\nNote the paper's signature pattern: the direct judge only")
	fmt.Println("reliably flags files containing no OpenACC at all.")
}
