// Service: boot the judging daemon in-process, point an experiment at
// it through the "remote:<addr>" backend, and watch the metrics come
// back identical to the in-process run while the daemon's counters
// show micro-batching and dedup at work — the whole judge-as-a-service
// loop without leaving one process.
//
// In production the daemon is its own process (`llm4vvd -addr ...`)
// and any number of workers select it with `-serve-addr`; everything
// below is the same wiring minus the fork.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"

	llm4vv "repro"
	"repro/internal/server"
	"repro/internal/spec"
)

func main() {
	ctx := context.Background()

	// 1. Boot the daemon on a loopback port: the default simulated
	// backend behind the micro-batching HTTP front.
	llm, err := llm4vv.NewBackend(llm4vv.DefaultBackend, llm4vv.DefaultModelSeed)
	if err != nil {
		panic(err)
	}
	srv := server.New(server.Config{
		LLM:        llm,
		Backend:    llm4vv.DefaultBackend,
		Seed:       llm4vv.DefaultModelSeed,
		Registered: llm4vv.Backends(),
	})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	fmt.Printf("daemon serving %s on %s\n\n", llm4vv.DefaultBackend, ln.Addr())

	// 2. Register the daemon as a backend. Every experiment can now
	// select it by name, exactly like an in-process endpoint.
	remoteName := llm4vv.RegisterRemoteBackend(ln.Addr().String())

	// 3. Judge the same suite both ways.
	suite := llm4vv.PartOneSpec(spec.OpenACC).Scaled(8)

	local, err := llm4vv.NewRunner()
	if err != nil {
		panic(err)
	}
	localSum, err := local.DirectProbing(ctx, suite)
	if err != nil {
		panic(err)
	}

	remote, err := llm4vv.NewRunner(llm4vv.WithBackend(remoteName))
	if err != nil {
		panic(err)
	}
	remoteSum, err := remote.DirectProbing(ctx, suite)
	if err != nil {
		panic(err)
	}

	fmt.Printf("in-process:  acc=%.2f%% bias=%+.3f (%d files)\n",
		100*localSum.Accuracy(), localSum.Bias(), localSum.Total)
	fmt.Printf("via daemon:  acc=%.2f%% bias=%+.3f (%d files)\n",
		100*remoteSum.Accuracy(), remoteSum.Bias(), remoteSum.Total)
	if localSum == remoteSum {
		fmt.Println("metrics are byte-identical through the service")
	} else {
		fmt.Println("METRICS DIVERGED — this should never happen")
	}

	// 4. The daemon's counters show what the wire cost: the Runner's
	// sharded scheduler sent whole shards, so endpoint calls stay far
	// below the prompt count.
	st := srv.Stats()
	fmt.Printf("\ndaemon stats: %d batch requests, %d endpoint calls for %d prompts, %d store/dedup hits\n",
		st.BatchRequests, st.EndpointCalls, st.EndpointPrompts, st.StoreHits)
}
