// Validation pipeline example: stream a mixed suite through the
// compile → execute → judge pipeline, comparing short-circuit mode
// against record-all mode and single-worker against parallel stages.
package main

import (
	"context"
	"fmt"
	"time"

	llm4vv "repro"
	"repro/internal/agent"
	"repro/internal/judge"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/probe"
	"repro/internal/report"
	"repro/internal/spec"
	"repro/internal/testlang"
)

func main() {
	suiteSpec := llm4vv.SuiteSpec{
		Dialect: spec.OpenMP,
		Counts:  probe.Counts{15, 10, 10, 8, 10, 47},
		Langs:   []testlang.Language{testlang.LangC, testlang.LangCPP},
		Seed:    7,
	}
	suite, err := llm4vv.BuildSuite(suiteSpec)
	if err != nil {
		panic(err)
	}
	inputs := make([]pipeline.Input, len(suite))
	for i, pf := range suite {
		inputs[i] = pipeline.Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
	}

	base := pipeline.Config{
		Tools: agent.NewTools(spec.OpenMP),
		Judge: &judge.Judge{
			LLM:     llm4vv.NewModel(llm4vv.DefaultModelSeed),
			Style:   judge.AgentDirect,
			Dialect: spec.OpenMP,
		},
	}

	run := func(label string, workers int, recordAll bool) []pipeline.FileResult {
		cfg := base
		// Per-stage specs address the built-in stages by name; uneven
		// pools (a wide judge behind narrow tool stages, say) are just
		// different Workers values per spec.
		cfg.Stages = []pipeline.StageSpec{
			{Name: pipeline.StageCompile, Workers: workers},
			{Name: pipeline.StageExec, Workers: workers},
			{Name: pipeline.StageJudge, Workers: workers},
		}
		cfg.RecordAll = recordAll
		start := time.Now()
		results, stats, err := pipeline.Run(context.Background(), cfg, inputs)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-28s workers=%d  wall=%8v  compiles=%d runs=%d judge-calls=%d\n",
			label, workers, time.Since(start).Round(time.Microsecond),
			stats.Compiles, stats.Executions, stats.JudgeCalls)
		return results
	}

	fmt.Printf("pipeline over %d files:\n\n", len(inputs))
	run("short-circuit, serial", 1, false)
	run("short-circuit, parallel", 8, false)
	run("record-all, serial", 1, true)
	results := run("record-all, parallel", 8, true)

	outcomes := make([]metrics.Outcome, len(results))
	for i, r := range results {
		outcomes[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: r.Valid}
	}
	fmt.Println()
	fmt.Println(report.PerIssueTable("Pipeline scorecard", metrics.Score(spec.OpenMP, outcomes)))

	// Where did each invalid file get caught?
	caught := map[string]int{}
	for i, r := range results {
		if suite[i].Issue == probe.IssueNone {
			continue
		}
		switch {
		case !r.CompileOK:
			caught["compile stage"]++
		case r.ExecRan && !r.ExecOK:
			caught["execute stage"]++
		case r.Verdict == judge.Invalid:
			caught["judge stage"]++
		default:
			caught["escaped"]++
		}
	}
	fmt.Println("invalid files by catching stage:")
	for _, stage := range []string{"compile stage", "execute stage", "judge stage", "escaped"} {
		fmt.Printf("  %-14s %d\n", stage, caught[stage])
	}
}
