// Store: resume an interrupted sweep from the persistent run store,
// then query the same store directly — the segmented log behind every
// resumable run (format: docs/STORE.md). Three things to notice:
//
//  1. Resume is free: re-running an experiment against the same store
//     under the same configuration re-judges zero files and reproduces
//     the report — the second run is pure store reads.
//  2. The store scales past memory: sealed segments (forced small here
//     with WithStoreOptions so the demo grows some) serve point
//     lookups through sparse indexes, and Stats shows the layout that
//     `judgebench -store-stats` prints.
//  3. The query layer feeds calibration: Scan streams a panel's stored
//     vote history, and WeightsFromVotes turns it into the per-member
//     weights the weighted voting strategy uses.
//
// Run it: go run ./examples/store
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	llm4vv "repro"
	"repro/internal/ensemble"
	"repro/internal/judge"
	"repro/internal/spec"
	"repro/internal/store"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "llm4vv-store-example")
	check(err)
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "runs.jsonl")

	// Tiny thresholds so even this small sweep seals segments; real
	// deployments keep the defaults (8 MiB seals).
	opts := store.Options{SealBytes: 4 << 10, MergeThreshold: 4}

	// 1. First run: a panel sweep recording every verdict and the
	// per-member votes into the store.
	run := func() string {
		r, err := llm4vv.NewRunner(
			llm4vv.WithStore(path),
			llm4vv.WithStoreOptions(opts),
			llm4vv.WithResume(true),
		)
		check(err)
		defer r.Close()
		res, err := llm4vv.RunExperiment(ctx, r, "panel", llm4vv.ExperimentParams{
			Dialects: []spec.Dialect{spec.OpenACC},
			Scale:    8,
		})
		check(err)
		return res.Report()
	}
	first := run()

	// 2. Second run, same configuration: every key is already stored,
	// so nothing is re-judged and the report reproduces exactly.
	second := run()
	fmt.Printf("resumed report identical: %v\n", first == second)

	// 3. Open the store directly and look at its segmented shape.
	st, err := store.Open(path)
	check(err)
	defer st.Close()
	stats := st.Stats()
	fmt.Printf("store: %d keys, %d sealed segments, active %d bytes\n",
		stats.Keys, stats.SegmentCount(), stats.ActiveBytes)

	// 4. Calibration query: stream the panel phase's vote history and
	// compute each member's agreement weight. This is exactly what a
	// weighted panel does at construction (see panelLLM in panel.go).
	// The filter is a key prefix — experiment, then backend, then seed
	// — so this scan reads one contiguous range per segment.
	var members []string
	var history [][]ensemble.Vote
	var verdicts []judge.Verdict
	err = st.Scan(store.Filter{Experiment: "panel/direct"},
		func(rec store.Record) bool {
			if _, votes, err := ensemble.DecodeVotes(rec.Votes); err == nil {
				if members == nil {
					for _, v := range votes {
						members = append(members, v.Member)
					}
				}
				history = append(history, votes)
				v := judge.Unparsable
				switch rec.Verdict {
				case "valid":
					v = judge.Valid
				case "invalid":
					v = judge.Invalid
				}
				verdicts = append(verdicts, v)
			}
			return true
		})
	check(err)
	weights := ensemble.WeightsFromVotes(members, history, verdicts)
	fmt.Printf("calibration from %d stored panel records:\n", len(history))
	for i, m := range members {
		fmt.Printf("  %-14s weight %.3f\n", m, weights[i])
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
