// Panel: judge a suite with a voting ensemble instead of a single
// judge, and read the panel's reliability off its own disagreement —
// Fleiss' kappa, the pairwise agreement matrix, and each member's
// bias against the consensus. Three things to notice:
//
//  1. The ensemble is just a backend ("ensemble:a+b+c[:strategy]"),
//     so every experiment, the run store, and the judging daemon
//     handle a panel exactly like a single judge.
//  2. Member votes travel inside the response text, which is why a
//     daemon serving the panel (llm4vvd -backend ensemble:...)
//     reproduces the report byte-identically over HTTP.
//  3. Three seats of the same simulated backend still disagree: each
//     member judges under its own derived seed.
//
// Run it: go run ./examples/panel
package main

import (
	"context"
	"fmt"

	llm4vv "repro"
	"repro/internal/spec"
)

func main() {
	ctx := context.Background()

	// 1. The quick path: the registered "panel" experiment. With a
	// plain backend configured it seats three copies of it; WithPanel
	// chooses the seats and the voting strategy instead.
	r, err := llm4vv.NewRunner(
		llm4vv.WithPanel("deepseek-sim+deepseek-sim+deepseek-sim:unanimous"),
	)
	if err != nil {
		panic(err)
	}
	res, err := llm4vv.RunExperiment(ctx, r, "panel", llm4vv.ExperimentParams{
		Dialects: []spec.Dialect{spec.OpenACC},
		Scale:    8,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Report())

	// 2. The structured path: PanelProbing returns the verdict
	// summary, the per-member solo summaries, and the agreement
	// scoring as data.
	rp, err := llm4vv.NewRunner(llm4vv.WithBackend(
		"ensemble:deepseek-sim+deepseek-sim+deepseek-sim"))
	if err != nil {
		panic(err)
	}
	pr, err := rp.PanelProbing(ctx, llm4vv.PartOneSpec(spec.OpenACC).Scaled(8))
	if err != nil {
		panic(err)
	}
	fmt.Printf("panel accuracy %.1f%% vs best member %.1f%% — kappa %.3f\n",
		100*pr.Panel.Accuracy(), 100*bestMember(pr), pr.Agreement.Kappa)

	// 3. The panel is an ordinary endpoint too: ask it one prompt and
	// read the votes out of the transcript.
	panel, err := llm4vv.NewPanel("deepseek-sim+deepseek-sim+deepseek-sim", llm4vv.DefaultModelSeed)
	if err != nil {
		panic(err)
	}
	resp, err := panel.CompleteContext(ctx,
		"Review the following OpenACC code and evaluate it based on the following criteria:\nHere is the code:\nint main(){return 0;}")
	if err != nil {
		panic(err)
	}
	fmt.Printf("one transcript:\n%s", resp)
}

func bestMember(pr llm4vv.PanelDialectResult) float64 {
	best := 0.0
	for _, s := range pr.PerMember {
		if a := s.Accuracy(); a > best {
			best = a
		}
	}
	return best
}
