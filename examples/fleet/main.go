// Fleet: boot two judging daemons in-process, route an experiment
// across both through the consistent-hash fleet backend, and watch
// the metrics come back identical to the in-process run while the
// router's counters show the key space splitting — then kill one
// replica and watch the survivors absorb its share with the metrics
// still identical.
//
// In production the replicas are their own processes (`llm4vvd -addr
// ...` each) behind `llm4vv-router -replicas addr1,addr2`, and any
// number of workers point -serve-addr at the router; everything below
// is the same wiring minus the forks.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"

	llm4vv "repro"
	"repro/internal/server"
	"repro/internal/spec"
)

func main() {
	ctx := context.Background()

	// 1. Boot two replicas on loopback ports: the same backend and
	// seed on each, so any replica answers any prompt identically.
	addrs := make([]string, 2)
	servers := make([]*http.Server, 2)
	for i := range addrs {
		llm, err := llm4vv.NewBackend(llm4vv.DefaultBackend, llm4vv.DefaultModelSeed)
		if err != nil {
			panic(err)
		}
		srv := server.New(server.Config{
			LLM:     llm,
			Backend: llm4vv.DefaultBackend,
			Seed:    llm4vv.DefaultModelSeed,
		})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		servers[i] = &http.Server{Handler: srv.Handler()}
		go servers[i].Serve(ln)
		addrs[i] = ln.Addr().String()
	}
	fmt.Printf("replicas serving %s on %s\n\n", llm4vv.DefaultBackend, strings.Join(addrs, " and "))

	// 2. Register the fleet as a backend: prompts consistent-hash
	// across both replicas, each owning its share of the key space.
	fleetName, err := llm4vv.RegisterFleetBackend(strings.Join(addrs, ","))
	if err != nil {
		panic(err)
	}

	// 3. Judge the same suite both ways.
	suite := llm4vv.PartOneSpec(spec.OpenACC).Scaled(8)

	local, err := llm4vv.NewRunner()
	if err != nil {
		panic(err)
	}
	localSum, err := local.DirectProbing(ctx, suite)
	if err != nil {
		panic(err)
	}

	fleet, err := llm4vv.NewRunner(llm4vv.WithBackend(fleetName))
	if err != nil {
		panic(err)
	}
	fleetSum, err := fleet.DirectProbing(ctx, suite)
	if err != nil {
		panic(err)
	}

	fmt.Printf("in-process:  acc=%.2f%% bias=%+.3f (%d files)\n",
		100*localSum.Accuracy(), localSum.Bias(), localSum.Total)
	fmt.Printf("via fleet:   acc=%.2f%% bias=%+.3f (%d files)\n",
		100*fleetSum.Accuracy(), fleetSum.Bias(), fleetSum.Total)
	if localSum == fleetSum {
		fmt.Println("metrics are byte-identical through the fleet")
	} else {
		fmt.Println("METRICS DIVERGED — this should never happen")
	}

	// 4. Kill one replica mid-fleet and sweep again: its keys fail
	// over to the survivor and the metrics still cannot tell.
	servers[0].Close()
	fmt.Printf("\nkilled replica %s\n", addrs[0])
	again, err := fleet.DirectProbing(ctx, suite)
	if err != nil {
		panic(err)
	}
	if localSum == again {
		fmt.Println("metrics are byte-identical with one replica down")
	} else {
		fmt.Println("METRICS DIVERGED AFTER FAILOVER — this should never happen")
	}
}
