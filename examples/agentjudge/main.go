// Agent judge example: judge the same file with all three prompting
// styles — direct (no tools), agent-direct (LLMJ 1) and agent-indirect
// (LLMJ 2) — and print the full prompts and responses, showing exactly
// what changes between the paper's configurations.
package main

import (
	"context"
	"fmt"
	"strings"

	llm4vv "repro"
	"repro/internal/agent"
	"repro/internal/corpus"
	"repro/internal/judge"
	"repro/internal/probe"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/testlang"
)

func main() {
	// A test whose flaw only shows at run time: the map clause removed
	// from an OpenMP target construct (negative probing issue 0).
	file, err := corpus.InstantiateTemplate(spec.OpenMP, "target_saxpy", testlang.LangC, 5)
	if err != nil {
		panic(err)
	}
	mutated := probe.Mutate(file, probe.IssueDirective, rng.New(11))
	fmt.Printf("mutation: %s\n\n", mutated.Mutation)

	tools := agent.NewTools(spec.OpenMP)
	outcome := tools.Gather(mutated.Name, mutated.Source, mutated.Lang)
	llm := llm4vv.NewModel(llm4vv.DefaultModelSeed)

	configs := []struct {
		label string
		style judge.Style
		info  *judge.ToolInfo
	}{
		{"direct analysis (no tools, Part One)", judge.Direct, nil},
		{"agent-based direct analysis (LLMJ 1)", judge.AgentDirect, &outcome.Info},
		{"agent-based indirect analysis (LLMJ 2)", judge.AgentIndirect, &outcome.Info},
	}
	for _, c := range configs {
		j := &judge.Judge{LLM: llm, Style: c.style, Dialect: spec.OpenMP}
		ev, err := j.Evaluate(context.Background(), mutated.Source, c.info)
		if err != nil {
			panic(err)
		}
		rule := strings.Repeat("=", 70)
		fmt.Println(rule)
		fmt.Println(c.label)
		fmt.Println(rule)
		fmt.Println("--- prompt (code elided) ---")
		fmt.Println(elideCode(ev.Prompt))
		fmt.Println("--- model response ---")
		fmt.Println(ev.Response)
		fmt.Printf(">>> parsed verdict: %v (ground truth: invalid)\n\n", ev.Verdict)
	}
}

// elideCode trims the code block from a prompt so the transcript stays
// readable.
func elideCode(prompt string) string {
	idx := strings.LastIndex(prompt, "Here is the code")
	if idx < 0 {
		return prompt
	}
	if nl := strings.IndexByte(prompt[idx:], '\n'); nl >= 0 {
		return prompt[:idx+nl] + "\n    [... test source elided ...]"
	}
	return prompt
}
