// Generation-loop example: the paper's future work, running. The LLM
// authors candidate tests for every supported feature; the validation
// pipeline accepts or rejects each; the campaign reports how much
// trust the filter adds over raw generation.
package main

import (
	"context"
	"fmt"

	llm4vv "repro"
	"repro/internal/spec"
)

func main() {
	// The modern entry point: one Runner, configured once, dispatching
	// cancellable experiments (the deprecated free function
	// llm4vv.RunGenerationLoop wraps exactly this).
	runner, err := llm4vv.NewRunner(
		llm4vv.WithBackend(llm4vv.DefaultBackend),
		llm4vv.WithSeed(llm4vv.DefaultModelSeed),
	)
	if err != nil {
		panic(err)
	}
	for _, d := range []spec.Dialect{spec.OpenACC, spec.OpenMP} {
		fmt.Printf("==== %v test-generation campaign ====\n", d)
		r, err := runner.GenerationLoop(context.Background(), d, 2)
		if err != nil {
			panic(err)
		}

		fmt.Printf("candidates generated: %d (sound %d, defective %d)\n",
			len(r.Candidates), r.SoundGenerated, r.DefectiveGenerated)
		fmt.Printf("accepted into suite:  %d\n", len(r.Accepted))
		fmt.Printf("raw sound rate:       %5.1f%%  (the author alone)\n", 100*r.RawSoundRate())
		fmt.Printf("accepted precision:   %5.1f%%  (after pipeline filtering)\n", 100*r.AcceptancePrecision())
		fmt.Printf("defect catch rate:    %5.1f%%\n", 100*r.DefectCatchRate())
		fmt.Printf("sound-test yield:     %5.1f%%\n", 100*r.SoundYield())

		// Defects that slipped through, if any — the judge's remaining
		// blind spot.
		slipped := map[string]int{}
		for _, c := range r.Accepted {
			if c.Defect != "" {
				slipped[c.Defect]++
			}
		}
		if len(slipped) > 0 {
			fmt.Println("defects admitted despite the filter:")
			for label, n := range slipped {
				fmt.Printf("  %-28s %d\n", label, n)
			}
		}
		fmt.Println()
	}
	fmt.Println("The filter's residual blind spot mirrors the paper's Tables IV/VII:")
	fmt.Println("defects that leave a compilable, clean-running test (removed data")
	fmt.Println("clauses masked by implicit movement, missing verification logic)")
	fmt.Println("are exactly what survives into the generated suite.")
}
