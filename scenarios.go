package llm4vv

// The paper's experiments as registered scenarios. Each Run gathers
// structured results and its Report method renders the corresponding
// tables and figures, so any front-end (cmd/llm4vv, cmd/judgebench, a
// service) can dispatch and print them without experiment-specific
// code.

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/spec"
)

func init() {
	RegisterExperimentFunc("part1",
		"direct LLM-as-a-judge scored by negative probing (Tables I-III)",
		runPart1Scenario)
	RegisterExperimentFunc("part2",
		"agent-based judges and validation pipeline (Tables IV-IX, Figures 3-6)",
		runPart2Scenario)
	RegisterExperimentFunc("ablations",
		"stage-contribution, tool-information, and short-circuit ablations (A1-A3)",
		runAblationsScenario)
	RegisterExperimentFunc("genloop",
		"automated test generation filtered by the validation pipeline (§VI)",
		runGenloopScenario)
	RegisterExperimentFunc("compare",
		"cross-backend sweep: judge the same suites with every registered backend and render a metrics matrix",
		runCompareScenario)
	RegisterExperimentFunc("panel",
		"ensemble judging: a voting panel of backends with inter-judge agreement metrics (Fleiss' kappa)",
		runPanelScenario)
}

// Part1ScenarioResult carries the Part-One summaries per dialect.
type Part1ScenarioResult struct {
	Dialects  []spec.Dialect
	Summaries map[spec.Dialect]metrics.Summary
}

func runPart1Scenario(ctx context.Context, r *Runner, p ExperimentParams) (ExperimentResult, error) {
	res := &Part1ScenarioResult{Summaries: map[spec.Dialect]metrics.Summary{}}
	for _, d := range p.EffectiveDialects() {
		s, err := r.DirectProbing(ctx, PartOneSpec(d).Scaled(p.EffectiveScale()))
		if err != nil {
			return nil, err
		}
		res.Dialects = append(res.Dialects, d)
		res.Summaries[d] = s
	}
	return res, nil
}

func (r *Part1ScenarioResult) Report() string {
	var b strings.Builder
	b.WriteString("================ PART ONE: direct LLM-as-a-judge (negative probing) ================\n")
	overall := map[string][]metrics.Summary{}
	for _, d := range r.Dialects {
		s := r.Summaries[d]
		overall[d.String()] = []metrics.Summary{s}
		title := "Table I: LLMJ Negative Probing Results for OpenACC"
		if d == spec.OpenMP {
			title = "Table II: LLMJ Negative Probing Results for OpenMP"
		}
		b.WriteString(report.PerIssueTable(title, s))
		b.WriteByte('\n')
	}
	b.WriteString(report.OverallTable("Table III: LLMJ Overall Negative Probing Results",
		[]string{""}, overall))
	return b.String()
}

// Part2ScenarioResult carries the full Part-Two measurements per
// dialect.
type Part2ScenarioResult struct {
	Dialects []spec.Dialect
	Results  map[spec.Dialect]PartTwoResult
}

func runPart2Scenario(ctx context.Context, r *Runner, p ExperimentParams) (ExperimentResult, error) {
	res := &Part2ScenarioResult{Results: map[spec.Dialect]PartTwoResult{}}
	for _, d := range p.EffectiveDialects() {
		pr, err := r.PartTwo(ctx, PartTwoSpec(d).Scaled(p.EffectiveScale()))
		if err != nil {
			return nil, err
		}
		res.Dialects = append(res.Dialects, d)
		res.Results[d] = pr
	}
	return res, nil
}

func (r *Part2ScenarioResult) Report() string {
	var b strings.Builder
	b.WriteString("================ PART TWO: agent-based judges and validation pipeline ================\n")
	pipeCols := map[string][]metrics.Summary{}
	judgeCols := map[string][]metrics.Summary{}
	for _, d := range r.Dialects {
		pr := r.Results[d]
		pipeCols[d.String()] = []metrics.Summary{pr.Pipeline1, pr.Pipeline2}
		judgeCols[d.String()] = []metrics.Summary{pr.LLMJ1, pr.LLMJ2}
	}
	tables := []struct {
		d     spec.Dialect
		title string
		a, b  func(PartTwoResult) metrics.Summary
		nameA string
		nameB string
	}{
		{spec.OpenACC, "Table IV: Validation Pipeline Results for OpenACC",
			func(p PartTwoResult) metrics.Summary { return p.Pipeline1 },
			func(p PartTwoResult) metrics.Summary { return p.Pipeline2 }, "Pipeline 1", "Pipeline 2"},
		{spec.OpenMP, "Table V: Validation Pipeline Results for OpenMP",
			func(p PartTwoResult) metrics.Summary { return p.Pipeline1 },
			func(p PartTwoResult) metrics.Summary { return p.Pipeline2 }, "Pipeline 1", "Pipeline 2"},
	}
	for _, t := range tables {
		if pr, ok := r.Results[t.d]; ok {
			b.WriteString(report.PairedPerIssueTable(t.title, t.nameA, t.nameB, t.a(pr), t.b(pr)))
			b.WriteByte('\n')
		}
	}
	b.WriteString(report.OverallTable("Table VI: Overall Validation Pipeline Results",
		[]string{"Pipeline 1", "Pipeline 2"}, pipeCols))
	b.WriteByte('\n')

	judgeTables := []struct {
		d     spec.Dialect
		title string
	}{
		{spec.OpenACC, "Table VII: Agent-Based LLMJ Results for OpenACC"},
		{spec.OpenMP, "Table VIII: Agent-Based LLMJ Results for OpenMP"},
	}
	for _, t := range judgeTables {
		if pr, ok := r.Results[t.d]; ok {
			b.WriteString(report.PairedPerIssueTable(t.title, "LLMJ 1", "LLMJ 2", pr.LLMJ1, pr.LLMJ2))
			b.WriteByte('\n')
		}
	}
	b.WriteString(report.OverallTable("Table IX: Overall Agent-Based LLMJ Results",
		[]string{"LLMJ 1", "LLMJ 2"}, judgeCols))
	b.WriteByte('\n')

	figures := []struct {
		d     spec.Dialect
		title string
		judge bool
	}{
		{spec.OpenACC, "Figure 3: Validation Pipeline Results for OpenACC (radar series)", false},
		{spec.OpenMP, "Figure 4: Validation Pipeline Results for OpenMP (radar series)", false},
		{spec.OpenACC, "Figure 5: LLMJ Results for OpenACC (radar series)", true},
		{spec.OpenMP, "Figure 6: LLMJ Results for OpenMP (radar series)", true},
	}
	for _, f := range figures {
		pr, ok := r.Results[f.d]
		if !ok {
			continue
		}
		if f.judge {
			b.WriteString(report.RadarSeries(f.title,
				[]string{"Non-agent LLMJ", "LLMJ 1", "LLMJ 2"},
				[]metrics.Summary{pr.Direct, pr.LLMJ1, pr.LLMJ2}))
		} else {
			b.WriteString(report.RadarSeries(f.title,
				[]string{"Pipeline 1", "Pipeline 2"},
				[]metrics.Summary{pr.Pipeline1, pr.Pipeline2}))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// AblationsScenarioResult carries the A1-A3 ablation measurements per
// dialect.
type AblationsScenarioResult struct {
	Dialects   []spec.Dialect
	AgentInfo  map[spec.Dialect]AblationAgentInfoResult
	Stages     map[spec.Dialect]AblationStagesResult
	Throughput map[spec.Dialect]PipelineThroughputResult
}

func runAblationsScenario(ctx context.Context, r *Runner, p ExperimentParams) (ExperimentResult, error) {
	res := &AblationsScenarioResult{
		AgentInfo:  map[spec.Dialect]AblationAgentInfoResult{},
		Stages:     map[spec.Dialect]AblationStagesResult{},
		Throughput: map[spec.Dialect]PipelineThroughputResult{},
	}
	for _, d := range p.EffectiveDialects() {
		s := PartTwoSpec(d).Scaled(p.EffectiveScale())
		ai, err := r.AblationAgentInfo(ctx, s)
		if err != nil {
			return nil, err
		}
		st, err := r.AblationStages(ctx, s)
		if err != nil {
			return nil, err
		}
		tp, err := r.PipelineThroughput(ctx, s)
		if err != nil {
			return nil, err
		}
		res.Dialects = append(res.Dialects, d)
		res.AgentInfo[d] = ai
		res.Stages[d] = st
		res.Throughput[d] = tp
	}
	return res, nil
}

func (r *AblationsScenarioResult) Report() string {
	var b strings.Builder
	b.WriteString("================ ABLATIONS (DESIGN.md A1-A3) ================\n")
	for _, d := range r.Dialects {
		ai := r.AgentInfo[d]
		fmt.Fprintf(&b, "A2 (%v): tool information in the prompt\n", d)
		fmt.Fprintf(&b, "  without tools: acc=%.2f%% bias=%+.3f\n", 100*ai.WithoutTools.Accuracy(), ai.WithoutTools.Bias())
		fmt.Fprintf(&b, "  with tools:    acc=%.2f%% bias=%+.3f\n\n", 100*ai.WithTools.Accuracy(), ai.WithTools.Bias())

		st := r.Stages[d]
		fmt.Fprintf(&b, "A3 (%v): stage contribution\n", d)
		fmt.Fprintf(&b, "  compile only:        acc=%.2f%%\n", 100*st.CompileOnly.Accuracy())
		fmt.Fprintf(&b, "  compile + execute:   acc=%.2f%%\n", 100*st.CompileAndRun.Accuracy())
		fmt.Fprintf(&b, "  full pipeline:       acc=%.2f%%\n\n", 100*st.FullPipeline.Accuracy())

		tp := r.Throughput[d]
		fmt.Fprintf(&b, "A1 (%v): short-circuiting\n", d)
		fmt.Fprintf(&b, "  short-circuit: compiles=%d executions=%d judge calls=%d\n",
			tp.ShortCircuit.Compiles, tp.ShortCircuit.Executions, tp.ShortCircuit.JudgeCalls)
		fmt.Fprintf(&b, "  record-all:    compiles=%d executions=%d judge calls=%d\n\n",
			tp.RecordAll.Compiles, tp.RecordAll.Executions, tp.RecordAll.JudgeCalls)
	}
	return b.String()
}

// CompareScenarioResult carries the cross-backend sweep: the same
// Part-One suites judged by every registered backend under one seed,
// the multi-backend direction of the LLM4VV follow-up work.
type CompareScenarioResult struct {
	Backends  []string
	Dialects  []spec.Dialect
	Summaries map[string]map[spec.Dialect]metrics.Summary
}

// runCompareScenario sweeps every registered backend through direct
// probing on the same suites. Each backend runs on a copy of the
// dispatching Runner that shares its run store, so a stored, resumed
// sweep skips every (backend, file) pair a previous run already
// judged — adding one backend to a finished sweep judges only the new
// backend's files.
func runCompareScenario(ctx context.Context, r *Runner, p ExperimentParams) (ExperimentResult, error) {
	res := &CompareScenarioResult{
		Backends:  Backends(),
		Dialects:  p.EffectiveDialects(),
		Summaries: map[string]map[spec.Dialect]metrics.Summary{},
	}
	for _, name := range res.Backends {
		rb := r.withBackend(name)
		res.Summaries[name] = map[spec.Dialect]metrics.Summary{}
		for _, d := range res.Dialects {
			sum, err := rb.DirectProbing(ctx, PartOneSpec(d).Scaled(p.EffectiveScale()))
			if err != nil {
				return nil, err
			}
			res.Summaries[name][d] = sum
		}
	}
	return res, nil
}

func (r *CompareScenarioResult) Report() string {
	var b strings.Builder
	b.WriteString("================ CROSS-BACKEND COMPARISON (direct probing) ================\n")
	fmt.Fprintf(&b, "%-24s", "backend")
	for _, d := range r.Dialects {
		fmt.Fprintf(&b, " | %8s acc%%  bias", d)
	}
	b.WriteByte('\n')
	for _, name := range r.Backends {
		fmt.Fprintf(&b, "%-24s", name)
		for _, d := range r.Dialects {
			s := r.Summaries[name][d]
			fmt.Fprintf(&b, " | %12.2f %+.3f", 100*s.Accuracy(), s.Bias())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GenloopScenarioResult carries one generation campaign per dialect.
type GenloopScenarioResult struct {
	Dialects []spec.Dialect
	Results  map[spec.Dialect]*GenerationResult
}

func runGenloopScenario(ctx context.Context, r *Runner, p ExperimentParams) (ExperimentResult, error) {
	perFeature := p.PerFeature
	if perFeature <= 0 {
		perFeature = 2
	}
	res := &GenloopScenarioResult{Results: map[spec.Dialect]*GenerationResult{}}
	for _, d := range p.EffectiveDialects() {
		gr, err := r.GenerationLoop(ctx, d, perFeature)
		if err != nil {
			return nil, err
		}
		res.Dialects = append(res.Dialects, d)
		res.Results[d] = gr
	}
	return res, nil
}

func (r *GenloopScenarioResult) Report() string {
	var b strings.Builder
	b.WriteString("================ EXTENSION E1: automated test generation (paper §VI) ================\n")
	for _, d := range r.Dialects {
		gr := r.Results[d]
		fmt.Fprintf(&b, "%v: %d candidates, %d accepted\n", d, len(gr.Candidates), len(gr.Accepted))
		fmt.Fprintf(&b, "  raw sound rate      %5.1f%%\n", 100*gr.RawSoundRate())
		fmt.Fprintf(&b, "  accepted precision  %5.1f%%\n", 100*gr.AcceptancePrecision())
		fmt.Fprintf(&b, "  defect catch rate   %5.1f%%\n", 100*gr.DefectCatchRate())
		fmt.Fprintf(&b, "  sound-test yield    %5.1f%%\n\n", 100*gr.SoundYield())
	}
	return b.String()
}
