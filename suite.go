package llm4vv

import (
	"repro/internal/corpus"
	"repro/internal/probe"
	"repro/internal/spec"
	"repro/internal/testlang"
)

// SuiteSpec describes one negative-probing suite: the corpus to
// generate and the per-issue mutation counts to apply.
type SuiteSpec struct {
	Dialect spec.Dialect
	Counts  probe.Counts
	Langs   []testlang.Language
	// Seed drives corpus generation and mutation choices.
	Seed uint64
	// UnsupportedFraction / BrittleFraction are forwarded to the
	// corpus generator (see internal/corpus).
	UnsupportedFraction float64
	BrittleFraction     float64
}

// Total returns the suite size.
func (s SuiteSpec) Total() int { return s.Counts.Total() }

// PartOneSpec returns the paper's Part-One suite for a dialect: the
// suites of Tables I-III. The OpenACC suite mixes C, C++ and a small
// set of Fortran files; the OpenMP suite is C only ("due to time
// constraints", §V-A).
func PartOneSpec(d spec.Dialect) SuiteSpec {
	if d == spec.OpenACC {
		return SuiteSpec{
			Dialect:             d,
			Counts:              probe.Counts{203, 125, 108, 117, 114, 668},
			Langs:               []testlang.Language{testlang.LangC, testlang.LangCPP, testlang.LangFortran},
			Seed:                0xACC1,
			UnsupportedFraction: 0.14,
		}
	}
	return SuiteSpec{
		Dialect: d,
		Counts:  probe.Counts{59, 39, 33, 51, 33, 216},
		Langs:   []testlang.Language{testlang.LangC},
		Seed:    0x0731,
	}
}

// PartTwoSpec returns the paper's Part-Two suite for a dialect: the
// larger C/C++ suites of Tables IV-IX. The OpenACC fractions encode
// the calibrated toolchain-gap rate; the OpenMP suite carries a small
// brittle-comparison fraction (see EXPERIMENTS.md).
func PartTwoSpec(d spec.Dialect) SuiteSpec {
	if d == spec.OpenACC {
		return SuiteSpec{
			Dialect:             d,
			Counts:              probe.Counts{272, 146, 151, 146, 176, 891},
			Langs:               []testlang.Language{testlang.LangC, testlang.LangCPP},
			Seed:                0xACC2,
			UnsupportedFraction: 0.14,
		}
	}
	return SuiteSpec{
		Dialect:         d,
		Counts:          probe.Counts{49, 28, 26, 20, 25, 148},
		Langs:           []testlang.Language{testlang.LangC, testlang.LangCPP},
		Seed:            0x0732,
		BrittleFraction: 0.015,
	}
}

// BuildSuite generates the corpus and applies negative probing.
func BuildSuite(s SuiteSpec) ([]probe.ProbedFile, error) {
	files := corpus.Generate(corpus.Config{
		Dialect:             s.Dialect,
		Langs:               s.Langs,
		Seed:                s.Seed,
		UnsupportedFraction: s.UnsupportedFraction,
		BrittleFraction:     s.BrittleFraction,
	}, s.Total())
	return probe.BuildSuite(files, s.Counts, s.Seed^0x5eed)
}

// Scaled returns a copy of the spec with every issue count scaled by
// 1/f (minimum 1 per non-zero class) — used by the benchmark harness
// to run table-shaped workloads at reduced size.
func (s SuiteSpec) Scaled(f int) SuiteSpec {
	if f <= 1 {
		return s
	}
	out := s
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		scaled := n / f
		if scaled == 0 {
			scaled = 1
		}
		out.Counts[i] = scaled
	}
	return out
}
