package llm4vv

// Store-failure degradation: a sweep whose run store starts failing
// writes mid-run must complete store-less — one logged warning, the
// same report a store-less run produces, and the write failure
// surfaced by Runner.Close.

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/spec"
	"repro/internal/store"
)

// TestChaosStoreWriteFaultSweepCompletesStoreless is the store leg of
// the chaos suite: deterministic write faults poison the run store
// mid-sweep, the sweep keeps going without it, and the report is
// byte-identical to a run that never had a store.
func TestChaosStoreWriteFaultSweepCompletesStoreless(t *testing.T) {
	params := ExperimentParams{Dialects: []spec.Dialect{spec.OpenACC}, Scale: 8}

	noStore := newTestRunner(t)
	want, err := RunExperiment(context.Background(), noStore, "part1", params)
	if err != nil {
		t.Fatal(err)
	}

	inj := fault.New(7, &fault.Rule{Point: "store.write", Kind: fault.Err, Every: 5})
	var logs bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logs, nil))
	r, err := NewRunner(
		WithStore(filepath.Join(t.TempDir(), "chaos.jsonl")),
		WithStoreOptions(store.Options{FaultHook: fault.Hook(inj, "store")}),
		WithLogger(logger),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunExperiment(context.Background(), r, "part1", params)
	if err != nil {
		t.Fatalf("sweep failed on store write fault (must degrade, not abort): %v", err)
	}
	if want.Report() != got.Report() {
		t.Errorf("report diverged after store degradation:\n--- store-less ---\n%s\n--- degraded ---\n%s",
			want.Report(), got.Report())
	}
	if !r.StoreDegraded() {
		t.Fatal("store writes failed but the Runner never degraded")
	}
	if err := r.StoreErr(); !errors.Is(err, fault.ErrInjected) {
		t.Errorf("StoreErr = %v, want the injected write failure", err)
	}
	if !strings.Contains(logs.String(), "store-less") {
		t.Errorf("degradation warning not logged; log output:\n%s", logs.String())
	}
	if strings.Count(logs.String(), "store-less") != 1 {
		t.Errorf("degradation warning logged more than once:\n%s", logs.String())
	}
	if err := r.Close(); !errors.Is(err, fault.ErrInjected) {
		t.Errorf("Runner.Close = %v, want the remembered injected write failure", err)
	}
	if inj.InjectedTotal() == 0 {
		t.Error("no store faults fired; the leg tested nothing")
	}
}

// TestChaosStoreHealthSharedAcrossBackendCopies: withBackend copies a
// Runner by value (the compare scenario), so the degradation latch
// must be shared — a failure seen through one copy stops the others'
// writes and surfaces from the original's Close.
func TestChaosStoreHealthSharedAcrossBackendCopies(t *testing.T) {
	inj := fault.New(3, &fault.Rule{Point: "store.write", Kind: fault.Err, Every: 1})
	r, err := NewRunner(
		WithStore(filepath.Join(t.TempDir(), "copies.jsonl")),
		WithStoreOptions(store.Options{FaultHook: fault.Hook(inj, "store")}),
	)
	if err != nil {
		t.Fatal(err)
	}
	r2 := r.withBackend(DefaultBackend)
	r2.putRecord(store.Record{Experiment: "chaos", Backend: "b", Seed: 1, FileHash: "h1", JudgeRan: true})
	if !r.StoreDegraded() {
		t.Fatal("degradation through a backend copy not visible on the original")
	}
	if err := r.Close(); !errors.Is(err, fault.ErrInjected) {
		t.Errorf("Close = %v, want the copy's injected write failure", err)
	}
}
