package llm4vv

import (
	"testing"

	"repro/internal/probe"
	"repro/internal/spec"
)

// The integration tests assert the paper's qualitative findings — the
// "shape" DESIGN.md §4 commits to — on the actual experiment runners.
// Absolute values use bands wide enough to absorb sampling noise but
// narrow enough that a broken substrate or mis-calibrated judge fails.

func TestPartOneShapeOpenACC(t *testing.T) {
	s, err := RunDirectProbing(PartOneSpec(spec.OpenACC), DefaultModelSeed)
	if err != nil {
		t.Fatal(err)
	}
	if s.Total != 1335 {
		t.Fatalf("suite size = %d, want 1335 (Table I)", s.Total)
	}
	if a := s.Accuracy(); a < 0.50 || a > 0.64 {
		t.Errorf("overall accuracy = %.3f, paper band ~0.57", a)
	}
	if b := s.Bias(); b < 0.55 {
		t.Errorf("bias = %.3f, paper shows strong positive ~0.72", b)
	}
	// The direct ACC judge catches only the no-directive class.
	if a := s.PerIssue[probe.IssueRandom].Accuracy(); a < 0.65 {
		t.Errorf("random-code detection = %.2f, paper ~0.80", a)
	}
	for _, issue := range []probe.Issue{probe.IssueDirective, probe.IssueBracket, probe.IssueUndeclared, probe.IssueTruncated} {
		if a := s.PerIssue[issue].Accuracy(); a > 0.30 {
			t.Errorf("issue %d accuracy = %.2f, paper shows ~0.12-0.15", issue, a)
		}
	}
	if a := s.PerIssue[probe.IssueNone].Accuracy(); a < 0.80 {
		t.Errorf("valid recognition = %.2f, paper ~0.88", a)
	}
}

func TestPartOneShapeOpenMP(t *testing.T) {
	s, err := RunDirectProbing(PartOneSpec(spec.OpenMP), DefaultModelSeed)
	if err != nil {
		t.Fatal(err)
	}
	if s.Total != 431 {
		t.Fatalf("suite size = %d, want 431 (Table II)", s.Total)
	}
	if a := s.Accuracy(); a < 0.32 || a > 0.50 {
		t.Errorf("overall accuracy = %.3f, paper band ~0.41", a)
	}
	if b := s.Bias(); b < -0.25 || b > 0.25 {
		t.Errorf("bias = %.3f, paper shows near zero (-0.031)", b)
	}
	// The famous blind spot: random non-OMP code almost never flagged.
	if a := s.PerIssue[probe.IssueRandom].Accuracy(); a > 0.20 {
		t.Errorf("random-code detection = %.2f, paper ~0.04", a)
	}
	// Bracket errors are the direct OMP judge's best class.
	if a := s.PerIssue[probe.IssueBracket].Accuracy(); a < 0.55 {
		t.Errorf("bracket detection = %.2f, paper ~0.74", a)
	}
}

func TestPartTwoShapeOpenACC(t *testing.T) {
	if testing.Short() {
		t.Skip("full Part-Two run")
	}
	r, err := RunPartTwo(PartTwoSpec(spec.OpenACC), DefaultModelSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.LLMJ1.Total != 1782 {
		t.Fatalf("suite size = %d, want 1782", r.LLMJ1.Total)
	}
	// Agent judges drastically beat the direct judge (paper's core claim).
	if r.LLMJ1.Accuracy() < r.Direct.Accuracy()+0.10 {
		t.Errorf("LLMJ1 %.3f not drastically better than direct %.3f",
			r.LLMJ1.Accuracy(), r.Direct.Accuracy())
	}
	if r.LLMJ2.Accuracy() < r.Direct.Accuracy()+0.08 {
		t.Errorf("LLMJ2 %.3f not drastically better than direct %.3f",
			r.LLMJ2.Accuracy(), r.Direct.Accuracy())
	}
	// LLMJ1 edges out LLMJ2 overall (Table IX).
	if r.LLMJ1.Accuracy() <= r.LLMJ2.Accuracy() {
		t.Errorf("LLMJ1 %.3f should beat LLMJ2 %.3f on OpenACC",
			r.LLMJ1.Accuracy(), r.LLMJ2.Accuracy())
	}
	// Pipelines in the paper's band.
	if a := r.Pipeline1.Accuracy(); a < 0.76 || a > 0.86 {
		t.Errorf("Pipeline1 accuracy = %.3f, paper 0.805", a)
	}
	if a := r.Pipeline2.Accuracy(); a < 0.72 || a > 0.82 {
		t.Errorf("Pipeline2 accuracy = %.3f, paper 0.771", a)
	}
	// Syntax classes are fully caught by the pipeline.
	for _, issue := range []probe.Issue{probe.IssueBracket, probe.IssueUndeclared} {
		if a := r.Pipeline1.PerIssue[issue].Accuracy(); a < 0.99 {
			t.Errorf("pipeline issue %d = %.2f, want 100%%", issue, a)
		}
	}
	// Truncation stays hard for OpenACC even with the pipeline.
	if a := r.Pipeline1.PerIssue[probe.IssueTruncated].Accuracy(); a > 0.45 {
		t.Errorf("ACC truncation pipeline accuracy = %.2f, paper 0.22", a)
	}
	// Agent judges' mistakes skew permissive; pipelines' skew restrictive.
	if r.LLMJ1.Bias() < 0.3 || r.LLMJ2.Bias() < 0.0 {
		t.Errorf("agent biases %.3f/%.3f should be positive", r.LLMJ1.Bias(), r.LLMJ2.Bias())
	}
	if r.Pipeline2.Bias() > -0.1 {
		t.Errorf("Pipeline2 bias = %.3f, paper -0.294", r.Pipeline2.Bias())
	}
	// Pipeline loses some valid files the judge alone would pass (the
	// imperfect-toolchain effect).
	if r.Pipeline1.PerIssue[probe.IssueNone].Accuracy() >= r.LLMJ1.PerIssue[probe.IssueNone].Accuracy() {
		t.Error("pipeline valid-recognition should trail the agent judge's (toolchain gaps)")
	}
}

func TestPartTwoShapeOpenMP(t *testing.T) {
	if testing.Short() {
		t.Skip("full Part-Two run")
	}
	r, err := RunPartTwo(PartTwoSpec(spec.OpenMP), DefaultModelSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.LLMJ1.Total != 296 {
		t.Fatalf("suite size = %d, want 296", r.LLMJ1.Total)
	}
	// OpenMP pipelines are far more accurate than OpenACC's (~93% vs ~80%).
	if a := r.Pipeline1.Accuracy(); a < 0.87 {
		t.Errorf("Pipeline1 accuracy = %.3f, paper 0.926", a)
	}
	if a := r.Pipeline2.Accuracy(); a < 0.88 {
		t.Errorf("Pipeline2 accuracy = %.3f, paper 0.939", a)
	}
	// Truncation IS caught for OpenMP (fail-closed reporting idiom).
	if a := r.Pipeline1.PerIssue[probe.IssueTruncated].Accuracy(); a < 0.75 {
		t.Errorf("OMP truncation pipeline accuracy = %.2f, paper 0.92", a)
	}
	// Agent judges strongly permissive.
	if r.LLMJ1.Bias() < 0.4 || r.LLMJ2.Bias() < 0.4 {
		t.Errorf("agent biases %.3f/%.3f should be strongly positive",
			r.LLMJ1.Bias(), r.LLMJ2.Bias())
	}
	// Valid recognition high for both judges.
	if a := r.LLMJ1.PerIssue[probe.IssueNone].Accuracy(); a < 0.85 {
		t.Errorf("LLMJ1 valid recognition = %.2f, paper 0.93", a)
	}
}

func TestCrossDialectPipelineGap(t *testing.T) {
	if testing.Short() {
		t.Skip("full Part-Two runs")
	}
	accRes, err := RunPartTwo(PartTwoSpec(spec.OpenACC), DefaultModelSeed)
	if err != nil {
		t.Fatal(err)
	}
	ompRes, err := RunPartTwo(PartTwoSpec(spec.OpenMP), DefaultModelSeed)
	if err != nil {
		t.Fatal(err)
	}
	if gap := ompRes.Pipeline1.Accuracy() - accRes.Pipeline1.Accuracy(); gap < 0.05 {
		t.Errorf("OMP-vs-ACC pipeline gap = %.3f, paper shows ~0.12", gap)
	}
}

func TestDirectProbingDeterministic(t *testing.T) {
	spec1 := PartOneSpec(spec.OpenMP)
	a, err := RunDirectProbing(spec1, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDirectProbing(spec1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical seeds diverged:\n%+v\n%+v", a, b)
	}
	c, err := RunDirectProbing(spec1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different model seeds produced identical summaries")
	}
}

func TestAblationAgentInfoShape(t *testing.T) {
	r, err := RunAblationAgentInfo(PartTwoSpec(spec.OpenACC).Scaled(4), DefaultModelSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.WithTools.Accuracy() <= r.WithoutTools.Accuracy() {
		t.Errorf("tool info did not help: with=%.3f without=%.3f",
			r.WithTools.Accuracy(), r.WithoutTools.Accuracy())
	}
}

func TestAblationStagesShape(t *testing.T) {
	r, err := RunAblationStages(PartTwoSpec(spec.OpenMP).Scaled(2), DefaultModelSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Each added stage catches more invalid files (valid files can
	// only be lost by stages, so compare per invalid issue class).
	co, cr, fp := r.CompileOnly, r.CompileAndRun, r.FullPipeline
	for issue := probe.Issue(0); issue < probe.IssueNone; issue++ {
		if cr.PerIssue[issue].Correct < co.PerIssue[issue].Correct {
			t.Errorf("issue %d: adding execution lost catches (%d -> %d)",
				issue, co.PerIssue[issue].Correct, cr.PerIssue[issue].Correct)
		}
		if fp.PerIssue[issue].Correct < cr.PerIssue[issue].Correct {
			t.Errorf("issue %d: adding judge lost catches (%d -> %d)",
				issue, cr.PerIssue[issue].Correct, fp.PerIssue[issue].Correct)
		}
	}
}

func TestPipelineThroughputShape(t *testing.T) {
	r, err := RunPipelineThroughput(PartTwoSpec(spec.OpenACC).Scaled(4), DefaultModelSeed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.ShortCircuit.JudgeCalls >= r.RecordAll.JudgeCalls {
		t.Errorf("short-circuit judge calls %d >= record-all %d",
			r.ShortCircuit.JudgeCalls, r.RecordAll.JudgeCalls)
	}
	if r.ShortCircuit.Compiles != r.RecordAll.Compiles {
		t.Errorf("compile counts differ: %d vs %d", r.ShortCircuit.Compiles, r.RecordAll.Compiles)
	}
}

func TestSuiteSpecScaled(t *testing.T) {
	s := PartTwoSpec(spec.OpenACC)
	half := s.Scaled(2)
	if half.Counts.Total() >= s.Counts.Total() {
		t.Fatal("scaling did not shrink the suite")
	}
	for i, n := range s.Counts {
		if n > 0 && half.Counts[i] == 0 {
			t.Fatalf("issue %d scaled to zero", i)
		}
	}
	if same := s.Scaled(1); same.Counts != s.Counts {
		t.Fatal("Scaled(1) changed counts")
	}
}

func TestBuildSuiteMatchesSpec(t *testing.T) {
	spec1 := PartOneSpec(spec.OpenACC)
	suite, err := BuildSuite(spec1)
	if err != nil {
		t.Fatal(err)
	}
	counts := probe.Counts{}
	fortran := 0
	for _, pf := range suite {
		counts[pf.Issue]++
		if pf.Lang.String() == "Fortran" {
			fortran++
		}
	}
	if counts != spec1.Counts {
		t.Fatalf("counts = %v, want %v", counts, spec1.Counts)
	}
	if fortran == 0 {
		t.Fatal("Part-One OpenACC suite has no Fortran files")
	}
}
