package llm4vv

// Trace continuity across fleet failover: a sweep routed over three
// replicas with one dying mid-run must record, under a single trace
// ID, the failed routing attempt, the failover hop that replaced it,
// and the eventual success — the observability contract that makes a
// failover diagnosable after the fact (DESIGN.md §13).

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/spec"
	"repro/internal/trace"
)

// attrOf returns the named attribute's value, "" when absent.
func attrOf(sp trace.SpanRecord, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

func TestFleetFailoverTraceContinuity(t *testing.T) {
	// Same victim shape as TestFleetReplicaKillMidSweep: the first
	// completion succeeds, every later one answers 503, so shards that
	// hash to the victim exercise the request-path failover.
	var completions atomic.Int64
	kill := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/complete") {
				if completions.Add(1) > 1 {
					http.Error(w, "replica killed mid-sweep", http.StatusServiceUnavailable)
					return
				}
			}
			h.ServeHTTP(w, r)
		})
	}
	addrs := startFleetReplica(t, kill) + "," + startFleetReplica(t, nil) + "," + startFleetReplica(t, nil)

	var buf bytes.Buffer // tracer serialises writes under its own lock
	tracer := trace.New(trace.WithWriter(&buf), trace.WithProcess("test-worker"))
	fr, err := NewRunner(WithBackend("fleet:"+addrs), WithShardSize(2), WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	params := ExperimentParams{Dialects: []spec.Dialect{spec.OpenACC}, Scale: 16}
	if _, err := RunExperiment(context.Background(), fr, "part1", params); err != nil {
		t.Fatalf("sweep failed after replica kill: %v", err)
	}
	if completions.Load() <= 1 {
		t.Fatal("killed replica never refused a request; the kill did not land mid-sweep")
	}

	// Reassemble traces from the JSONL fragments. The fleet Router ran
	// in this process, so the worker's file roots, batch carriers, and
	// routing attempts all land in one sink.
	spansByTrace := map[string][]trace.SpanRecord{}
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec trace.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad trace fragment %q: %v", line, err)
		}
		spansByTrace[rec.Trace] = append(spansByTrace[rec.Trace], rec.Spans...)
	}
	if len(spansByTrace) == 0 {
		t.Fatal("sweep recorded no traces")
	}

	// Hunt for one trace carrying the whole failover story: a file
	// root, its judge.batch carrier, a failed fleet.attempt, and a
	// later-hop fleet.attempt that succeeded.
	found := false
	for id, spans := range spansByTrace {
		byID := map[string]trace.SpanRecord{}
		var root, failed, recovered *trace.SpanRecord
		hasCarrier := false
		for i, sp := range spans {
			byID[sp.ID] = sp
			switch sp.Name {
			case "file":
				if sp.Parent == "" {
					root = &spans[i]
				}
			case "judge.batch":
				hasCarrier = true
			case "fleet.attempt":
				if attrOf(sp, "error") != "" {
					failed = &spans[i]
				} else if failed != nil && attrOf(sp, "hop") > attrOf(*failed, "hop") {
					recovered = &spans[i]
				}
			}
		}
		if root == nil || !hasCarrier || failed == nil || recovered == nil {
			continue
		}
		// Both attempts must hang off the trace's root via parent
		// links — a broken chain would render as orphans.
		for _, sp := range []*trace.SpanRecord{failed, recovered} {
			cur := *sp
			for cur.Parent != "" {
				next, ok := byID[cur.Parent]
				if !ok {
					t.Fatalf("trace %s: span %s (%s) has parent %s outside the trace", id, cur.ID, cur.Name, cur.Parent)
				}
				cur = next
			}
			if cur.ID != root.ID {
				t.Fatalf("trace %s: span %s (%s) does not chain to the file root", id, sp.ID, sp.Name)
			}
		}
		found = true
		break
	}
	if !found {
		t.Fatal("no trace recorded a failed fleet.attempt plus a higher-hop successful retry under one trace ID")
	}
}
