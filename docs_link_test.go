package llm4vv

// The docs layer is tested like code: the CI docs job runs this link
// check (plus go vet over examples/ and the metric-registry diff in
// internal/perf) so a renamed file or section cannot silently strand a
// reference in the runbook or the design doc.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches an inline markdown link and captures its target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinksResolve walks every markdown file at the repo root
// and under docs/ and requires each relative link target to exist on
// disk. External URLs and pure in-page anchors are out of scope —
// they cannot be checked hermetically.
func TestMarkdownLinksResolve(t *testing.T) {
	var files []string
	for _, pattern := range []string{"*.md", "docs/*.md"} {
		matched, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, matched...)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found; the test is running from the wrong directory")
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // in-page anchor
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not resolve (%v)", file, m[1], err)
			}
		}
	}
}
