package llm4vv

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/agent"
	"repro/internal/genloop"
	"repro/internal/judge"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/spec"
)

// Runner is the configured entry point to every experiment: a backend
// selection, a sampling seed, worker counts, and streaming hooks,
// shared by concurrent experiment calls. Construct one with NewRunner
// and functional options; the zero value is not usable.
//
// A Runner is immutable after construction and safe for concurrent use
// — a service can hold one Runner and dispatch many experiments over
// it, each governed by its own context.
type Runner struct {
	backend   string
	seed      uint64
	workers   int
	recordAll bool
	evalCache bool
	progress  ProgressFunc
}

// NewRunner builds a Runner from options, validating the backend name
// against the registry so misconfiguration fails here rather than
// mid-experiment.
func NewRunner(opts ...Option) (*Runner, error) {
	r := &Runner{
		backend: DefaultBackend,
		seed:    DefaultModelSeed,
		workers: runtime.GOMAXPROCS(0),
	}
	for _, opt := range opts {
		opt(r)
	}
	if _, err := NewBackend(r.backend, r.seed); err != nil {
		return nil, err
	}
	return r, nil
}

// newLLM constructs a fresh endpoint for one experiment call. The
// backend name was validated at construction, so the registry lookup
// cannot fail unless the backend was registered with a nil-producing
// factory — a programmer error surfaced by the ensuing nil deref.
func (r *Runner) newLLM() judge.LLM {
	llm, _ := NewBackend(r.backend, r.seed)
	if r.evalCache {
		llm = judge.Cached(llm)
	}
	return llm
}

// tracker counts completed files for one experiment phase and relays
// them to the Runner's progress callback.
type tracker struct {
	fn    ProgressFunc
	phase string
	total int
	done  atomic.Int64
}

func (r *Runner) track(phase string, total int) *tracker {
	return &tracker{fn: r.progress, phase: phase, total: total}
}

func (t *tracker) file(name string) {
	if t.fn == nil {
		return
	}
	t.fn(Progress{Phase: t.phase, File: name, Done: int(t.done.Add(1)), Total: t.total})
}

// onResult adapts a tracker to the pipeline's streaming hook.
func (t *tracker) onResult(fr pipeline.FileResult) { t.file(fr.Name) }

// parallelFor runs fn(i) for i in [0,n) across the Runner's workers,
// stopping early when ctx is cancelled or any fn errors; the first
// error is returned.
func (r *Runner) parallelFor(ctx context.Context, n int, fn func(i int) error) error {
	workers := r.workers
	if workers > n {
		workers = n
	}
	var firstErr error
	var errOnce sync.Once
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var stop atomic.Bool
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if stop.Load() || ctx.Err() != nil {
					continue
				}
				if err := fn(i); err != nil {
					fail(err)
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// DirectProbing is the Part-One experiment: judge every file of the
// suite with the direct analysis prompt (no tools, no pipeline) and
// score the verdicts. It reproduces Tables I and II, and its summaries
// aggregate into Table III.
func (r *Runner) DirectProbing(ctx context.Context, s SuiteSpec) (metrics.Summary, error) {
	suite, err := BuildSuite(s)
	if err != nil {
		return metrics.Summary{}, err
	}
	j := &judge.Judge{LLM: r.newLLM(), Style: judge.Direct, Dialect: s.Dialect}
	tr := r.track("direct-probing", len(suite))
	outcomes := make([]metrics.Outcome, len(suite))
	err = r.parallelFor(ctx, len(suite), func(i int) error {
		ev, err := j.Evaluate(ctx, suite[i].Source, nil)
		if err != nil {
			return err
		}
		outcomes[i] = metrics.Outcome{
			Issue:       suite[i].Issue,
			JudgedValid: ev.Verdict == judge.Valid,
		}
		tr.file(suite[i].Name)
		return nil
	})
	if err != nil {
		return metrics.Summary{}, err
	}
	return metrics.Score(s.Dialect, outcomes), nil
}

// ValidateSuite streams a probed suite through the compile → execute →
// judge pipeline with the given judge style, honouring the Runner's
// worker, record-all, and progress settings. It is the generic
// workload behind the fixed experiments and the natural entry point
// for new scenarios.
func (r *Runner) ValidateSuite(ctx context.Context, s SuiteSpec, style judge.Style) ([]pipeline.FileResult, pipeline.Stats, error) {
	suite, err := BuildSuite(s)
	if err != nil {
		return nil, pipeline.Stats{}, err
	}
	inputs := make([]pipeline.Input, len(suite))
	for i, pf := range suite {
		inputs[i] = pipeline.Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
	}
	tr := r.track("pipeline/"+style.String(), len(inputs))
	return pipeline.Run(ctx, pipeline.Config{
		Tools:          agent.NewTools(s.Dialect),
		Judge:          &judge.Judge{LLM: r.newLLM(), Style: style, Dialect: s.Dialect},
		CompileWorkers: r.workers,
		ExecWorkers:    r.workers,
		JudgeWorkers:   r.workers,
		RecordAll:      r.recordAll,
		OnResult:       tr.onResult,
	}, inputs)
}

// PartTwo executes the Part-Two experiment for one dialect: both
// agent-based judges and both pipelines scored from the same
// record-all pipeline runs, exactly as the paper gathered them (the
// record-all requirement is inherent to the measurement, so the
// Runner's record-all option does not apply here).
func (r *Runner) PartTwo(ctx context.Context, s SuiteSpec) (PartTwoResult, error) {
	suite, err := BuildSuite(s)
	if err != nil {
		return PartTwoResult{}, err
	}
	inputs := make([]pipeline.Input, len(suite))
	for i, pf := range suite {
		inputs[i] = pipeline.Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
	}
	llm := r.newLLM()
	tools := agent.NewTools(s.Dialect)

	var res PartTwoResult
	run := func(style judge.Style) (judgeSum, pipeSum metrics.Summary, stats pipeline.Stats, err error) {
		tr := r.track("part2/"+style.String(), len(inputs))
		results, st, err := pipeline.Run(ctx, pipeline.Config{
			Tools:          tools,
			Judge:          &judge.Judge{LLM: llm, Style: style, Dialect: s.Dialect},
			CompileWorkers: r.workers,
			ExecWorkers:    r.workers,
			JudgeWorkers:   r.workers,
			RecordAll:      true,
			OnResult:       tr.onResult,
		}, inputs)
		if err != nil {
			return metrics.Summary{}, metrics.Summary{}, st, err
		}
		judgeOut := make([]metrics.Outcome, len(results))
		pipeOut := make([]metrics.Outcome, len(results))
		for i, fr := range results {
			judgeOut[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: fr.Verdict == judge.Valid}
			pipeOut[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: fr.Valid}
		}
		return metrics.Score(s.Dialect, judgeOut), metrics.Score(s.Dialect, pipeOut), st, nil
	}
	if res.LLMJ1, res.Pipeline1, res.Stats, err = run(judge.AgentDirect); err != nil {
		return res, err
	}
	if res.LLMJ2, res.Pipeline2, _, err = run(judge.AgentIndirect); err != nil {
		return res, err
	}

	// The non-agent judge on the same suite (Figures 5/6 baseline).
	direct := &judge.Judge{LLM: llm, Style: judge.Direct, Dialect: s.Dialect}
	tr := r.track("part2/direct", len(suite))
	outcomes := make([]metrics.Outcome, len(suite))
	err = r.parallelFor(ctx, len(suite), func(i int) error {
		ev, err := direct.Evaluate(ctx, suite[i].Source, nil)
		if err != nil {
			return err
		}
		outcomes[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: ev.Verdict == judge.Valid}
		tr.file(suite[i].Name)
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Direct = metrics.Score(s.Dialect, outcomes)
	return res, nil
}

// AblationStages runs ablation A3 (stage contribution) on the suite.
func (r *Runner) AblationStages(ctx context.Context, s SuiteSpec) (AblationStagesResult, error) {
	suite, err := BuildSuite(s)
	if err != nil {
		return AblationStagesResult{}, err
	}
	tools := agent.NewTools(s.Dialect)
	inputs := make([]pipeline.Input, len(suite))
	for i, pf := range suite {
		inputs[i] = pipeline.Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
	}

	score := func(judgeOn, execOn bool) (metrics.Summary, error) {
		var jd *judge.Judge
		if judgeOn {
			jd = &judge.Judge{LLM: r.newLLM(), Style: judge.AgentDirect, Dialect: s.Dialect}
		}
		tr := r.track("ablation-stages", len(inputs))
		results, _, err := pipeline.Run(ctx, pipeline.Config{
			Tools:          tools,
			Judge:          jd,
			CompileWorkers: r.workers,
			ExecWorkers:    r.workers,
			JudgeWorkers:   r.workers,
			RecordAll:      true,
			OnResult:       tr.onResult,
		}, inputs)
		if err != nil {
			return metrics.Summary{}, err
		}
		out := make([]metrics.Outcome, len(results))
		for i, fr := range results {
			valid := fr.CompileOK
			if execOn && fr.ExecRan {
				valid = valid && fr.ExecOK
			}
			if judgeOn {
				valid = valid && fr.Verdict == judge.Valid
			}
			out[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: valid}
		}
		return metrics.Score(s.Dialect, out), nil
	}
	var res AblationStagesResult
	if res.CompileOnly, err = score(false, false); err != nil {
		return res, err
	}
	if res.CompileAndRun, err = score(false, true); err != nil {
		return res, err
	}
	if res.FullPipeline, err = score(true, true); err != nil {
		return res, err
	}
	return res, nil
}

// AblationAgentInfo runs ablation A2 (tool information in the prompt).
func (r *Runner) AblationAgentInfo(ctx context.Context, s SuiteSpec) (AblationAgentInfoResult, error) {
	suite, err := BuildSuite(s)
	if err != nil {
		return AblationAgentInfoResult{}, err
	}
	llm := r.newLLM()
	tools := agent.NewTools(s.Dialect)
	direct := &judge.Judge{LLM: llm, Style: judge.Direct, Dialect: s.Dialect}
	agentJudge := &judge.Judge{LLM: llm, Style: judge.AgentDirect, Dialect: s.Dialect}

	tr := r.track("ablation-agent-info", len(suite))
	without := make([]metrics.Outcome, len(suite))
	with := make([]metrics.Outcome, len(suite))
	err = r.parallelFor(ctx, len(suite), func(i int) error {
		pf := suite[i]
		evD, err := direct.Evaluate(ctx, pf.Source, nil)
		if err != nil {
			return err
		}
		without[i] = metrics.Outcome{Issue: pf.Issue, JudgedValid: evD.Verdict == judge.Valid}
		outcome := tools.Gather(pf.Name, pf.Source, pf.Lang)
		evA, err := agentJudge.Evaluate(ctx, pf.Source, &outcome.Info)
		if err != nil {
			return err
		}
		with[i] = metrics.Outcome{Issue: pf.Issue, JudgedValid: evA.Verdict == judge.Valid}
		tr.file(pf.Name)
		return nil
	})
	if err != nil {
		return AblationAgentInfoResult{}, err
	}
	return AblationAgentInfoResult{
		WithoutTools: metrics.Score(s.Dialect, without),
		WithTools:    metrics.Score(s.Dialect, with),
	}, nil
}

// PipelineThroughput runs ablation A1 (short-circuiting) on the suite,
// measuring stage executions with and without early exit.
func (r *Runner) PipelineThroughput(ctx context.Context, s SuiteSpec) (PipelineThroughputResult, error) {
	suite, err := BuildSuite(s)
	if err != nil {
		return PipelineThroughputResult{}, err
	}
	inputs := make([]pipeline.Input, len(suite))
	for i, pf := range suite {
		inputs[i] = pipeline.Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
	}
	tools := agent.NewTools(s.Dialect)
	var out PipelineThroughputResult
	for _, recordAll := range []bool{false, true} {
		tr := r.track("throughput", len(inputs))
		_, st, err := pipeline.Run(ctx, pipeline.Config{
			Tools:          tools,
			Judge:          &judge.Judge{LLM: r.newLLM(), Style: judge.AgentDirect, Dialect: s.Dialect},
			CompileWorkers: r.workers,
			ExecWorkers:    r.workers,
			JudgeWorkers:   r.workers,
			RecordAll:      recordAll,
			OnResult:       tr.onResult,
		}, inputs)
		if err != nil {
			return out, err
		}
		if recordAll {
			out.RecordAll = st
		} else {
			out.ShortCircuit = st
		}
	}
	return out, nil
}

// GenerationLoop executes the paper's future-work experiment
// (DESIGN.md E1): the backend authors candidate tests per feature and
// the validation pipeline filters them. Backends that cannot author
// tests (no GenerateTest method) fall back to the default simulated
// author, which alone discloses the ground-truth defect labels the
// filter-quality counters require.
func (r *Runner) GenerationLoop(ctx context.Context, d spec.Dialect, perFeature int) (*GenerationResult, error) {
	cfg := genloop.Config{
		Dialect:     d,
		PerFeature:  perFeature,
		MaxAttempts: 4,
		ModelSeed:   r.seed,
		JudgeStyle:  judge.AgentDirect,
	}
	if author, ok := r.newLLM().(genloop.Author); ok {
		cfg.Author = author
	}
	return genloop.Run(ctx, cfg)
}
