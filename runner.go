package llm4vv

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/agent"
	"repro/internal/genloop"
	"repro/internal/judge"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/probe"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/trace"
)

// Runner is the configured entry point to every experiment: a backend
// selection, a sampling seed, worker counts, sharding, a run store,
// and streaming hooks, shared by concurrent experiment calls.
// Construct one with NewRunner and functional options; the zero value
// is not usable.
//
// A Runner is immutable after construction and safe for concurrent use
// — a service can hold one Runner and dispatch many experiments over
// it, each governed by its own context. A Runner holding a run store
// (WithStore) should be Closed when done with it.
type Runner struct {
	backend   string
	seed      uint64
	workers   int
	stages    []pipeline.StageSpec
	shardSize int
	recordAll bool
	evalCache bool
	progress  ProgressFunc
	storePath string
	storeOpts store.Options
	store     *store.Store
	resume    bool
	panelSpec string
	tracer    *trace.Tracer
	logger    *slog.Logger

	// health is the shared store-degradation latch: withBackend copies
	// Runners by value, so the latch must live behind a pointer for a
	// degradation seen by one copy to stop the others' writes too.
	health *storeHealth
}

// storeHealth latches the run store's first write failure. Once
// tripped, the Runner stops writing to the store (degrading to
// store-less operation — results keep flowing) and Runner.Close
// surfaces the remembered error.
type storeHealth struct {
	degraded atomic.Bool
	mu       sync.Mutex
	err      error
}

// trip records the first failure, reporting true exactly once so the
// caller can log the degradation warning a single time.
func (h *storeHealth) trip(err error) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil {
		return false
	}
	h.err = err
	h.degraded.Store(true)
	return true
}

func (h *storeHealth) failure() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// NewRunner builds a Runner from options, validating the backend name
// against the registry — and opening the run store, when one is
// configured — so misconfiguration fails here rather than
// mid-experiment.
func NewRunner(opts ...Option) (*Runner, error) {
	r := &Runner{
		backend: DefaultBackend,
		seed:    DefaultModelSeed,
		workers: runtime.GOMAXPROCS(0),
		health:  &storeHealth{},
	}
	for _, opt := range opts {
		opt(r)
	}
	if _, err := NewBackend(r.backend, r.seed); err != nil {
		return nil, err
	}
	for _, s := range r.stages {
		switch s.Name {
		case pipeline.StageCompile, pipeline.StageExec, pipeline.StageJudge:
		default:
			return nil, fmt.Errorf("llm4vv: unknown pipeline stage %q (the validation graph has %q, %q, and %q)",
				s.Name, pipeline.StageCompile, pipeline.StageExec, pipeline.StageJudge)
		}
		if s.Workers < 0 {
			return nil, fmt.Errorf("llm4vv: stage %q: negative workers %d", s.Name, s.Workers)
		}
		if s.Batch < 0 {
			return nil, fmt.Errorf("llm4vv: stage %q: negative batch %d", s.Name, s.Batch)
		}
	}
	if r.storePath != "" {
		opts := r.storeOpts
		if opts.Tracer == nil {
			opts.Tracer = r.tracer
		}
		st, err := store.OpenWith(r.storePath, opts)
		if err != nil {
			return nil, err
		}
		r.store = st
	}
	return r, nil
}

// Close releases the Runner's run store, surfacing the first write
// failure from the store's lifetime — whether remembered by the store
// itself or latched when the Runner degraded to store-less operation
// mid-sweep. It is a no-op for store-less Runners.
func (r *Runner) Close() error {
	if r.store == nil {
		return nil
	}
	err := r.store.Close()
	if err == nil {
		// A degradation latched by another backend copy of this Runner
		// still counts: the caller asked for durability it did not get.
		err = r.health.failure()
	}
	return err
}

// StoreDegraded reports whether the Runner abandoned its run store
// after a write failure (see StoreErr for the failure itself).
// Experiments keep producing results after degradation; only
// durability — resume and dedup across runs — is lost.
func (r *Runner) StoreDegraded() bool {
	return r.health.degraded.Load()
}

// StoreErr returns the write failure that degraded the run store, or
// nil while the store is healthy.
func (r *Runner) StoreErr() error {
	return r.health.failure()
}

// storeOK reports whether store writes should still be attempted.
func (r *Runner) storeOK() bool {
	return r.store != nil && !r.health.degraded.Load()
}

// degradeStore latches a store write failure: the first caller logs
// the single degradation warning, every caller afterwards finds the
// latch already tripped and skips store writes entirely. The sweep
// continues store-less — losing durability, never results.
func (r *Runner) degradeStore(err error) {
	if !r.health.trip(err) {
		return
	}
	if r.logger != nil {
		r.logger.Warn("llm4vv: run store write failed; continuing store-less (results unaffected, durability lost)",
			"path", r.storePath, "error", err.Error())
	}
}

// withBackend returns a copy of the Runner aimed at another registered
// backend, sharing the store — how the compare scenario sweeps every
// backend through one configuration.
func (r *Runner) withBackend(name string) *Runner {
	r2 := *r
	r2.backend = name
	return &r2
}

// setStage merges one StageSpec into the Runner's per-stage overrides
// by name: non-zero fields of s replace the stored spec's, zero
// fields leave it alone. WithStages and WithStageWorkers both funnel
// through here, so later options refine earlier ones field-wise.
func (r *Runner) setStage(s pipeline.StageSpec) {
	for i := range r.stages {
		if r.stages[i].Name != s.Name {
			continue
		}
		if s.Workers != 0 {
			r.stages[i].Workers = s.Workers
		}
		if s.Batch != 0 {
			r.stages[i].Batch = s.Batch
		}
		if s.Observe != nil {
			r.stages[i].Observe = s.Observe
		}
		return
	}
	r.stages = append(r.stages, s)
}

// pipelineStages resolves the per-stage specs for one pipeline run
// over n files: WithWorkers and the shard size supply the defaults,
// the WithStages/WithStageWorkers overrides refine them by name.
func (r *Runner) pipelineStages(n int) []pipeline.StageSpec {
	specs := []pipeline.StageSpec{
		{Name: pipeline.StageCompile, Workers: r.workers},
		{Name: pipeline.StageExec, Workers: r.workers},
		{Name: pipeline.StageJudge, Workers: r.workers, Batch: r.shardSizeFor(n)},
	}
	for _, o := range r.stages {
		for i := range specs {
			if specs[i].Name != o.Name {
				continue
			}
			if o.Workers != 0 {
				specs[i].Workers = o.Workers
			}
			if o.Batch != 0 {
				specs[i].Batch = o.Batch
			}
			if o.Observe != nil {
				specs[i].Observe = o.Observe
			}
		}
	}
	return specs
}

// newLLM constructs a fresh endpoint for one experiment call. The
// backend name was validated at construction — NewRunner's NewBackend
// probe errors on unknown names and nil-producing factories alike —
// so the registry lookup here cannot fail.
func (r *Runner) newLLM() judge.LLM {
	llm, _ := NewBackend(r.backend, r.seed)
	if r.evalCache {
		llm = judge.Cached(llm)
	}
	return llm
}

// tracker counts completed files for one experiment phase and relays
// them to the Runner's progress callback.
type tracker struct {
	fn    ProgressFunc
	phase string
	total int
	done  atomic.Int64
}

func (r *Runner) track(phase string, total int) *tracker {
	return &tracker{fn: r.progress, phase: phase, total: total}
}

func (t *tracker) file(name string) {
	if t.fn == nil {
		return
	}
	t.fn(Progress{Phase: t.phase, File: name, Done: int(t.done.Add(1)), Total: t.total})
}

// shardSizeFor resolves the Runner's shard size for an n-file
// workload: the WithShardSize override when set, otherwise a chunk
// small enough that every worker gets several shards to steal (load
// balance) but large enough to amortise per-shard batching overhead.
func (r *Runner) shardSizeFor(n int) int {
	if r.shardSize > 0 {
		return r.shardSize
	}
	workers := r.workers
	if workers < 1 {
		workers = 1
	}
	shard := n / (workers * 4)
	if shard < 1 {
		shard = 1
	}
	if shard > 64 {
		shard = 64
	}
	return shard
}

// forEachShard is the Runner's sharded scheduler: [0,n) is split into
// contiguous shards of shardSizeFor(n) files, and the Runner's workers
// claim shards off a shared cursor (chunked work stealing — a fast
// worker simply claims more shards). fn(start, end) processes one
// shard and streams its results as it goes; the first error stops the
// scheduler, and a cancelled context stops it between shards. Shard
// boundaries never affect results: fn writes each file's outcome to
// its own slot, so any schedule assembles the same output.
func (r *Runner) forEachShard(ctx context.Context, n int, fn func(start, end int) error) error {
	return r.forEachShardWorkers(ctx, n, func() (func(start, end int) error, func() error) {
		return fn, nil
	})
}

// forEachShardWorkers is forEachShard with per-worker state: each
// scheduler worker calls newWorker once for its own (fn, flush) pair,
// so fn can accumulate work across the shards that worker claims —
// the mechanism behind cross-shard judge-batch coalescing — and flush
// (optional) runs when the worker exhausts the cursor, submitting
// whatever its accumulator still holds. flush is skipped on error or
// cancellation: a stopping run must not submit new endpoint work.
func (r *Runner) forEachShardWorkers(ctx context.Context, n int, newWorker func() (fn func(start, end int) error, flush func() error)) error {
	if n == 0 {
		return ctx.Err()
	}
	shard := r.shardSizeFor(n)
	shards := (n + shard - 1) / shard
	workers := r.workers
	if workers > shards {
		workers = shards
	}
	if workers < 1 {
		workers = 1
	}
	var firstErr error
	var errOnce sync.Once
	var stop atomic.Bool
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn, flush := newWorker()
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				start := int(cursor.Add(int64(shard))) - shard
				if start >= n {
					// Re-check for a concurrent failure or cancellation:
					// flush submits new endpoint work, which a stopping
					// run must not do.
					if flush != nil && !stop.Load() && ctx.Err() == nil {
						if err := flush(); err != nil {
							fail(err)
						}
					}
					return
				}
				end := start + shard
				if end > n {
					end = n
				}
				if err := fn(start, end); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// judgeSharded drives one judge over [0,n) with the sharded
// scheduler, coalescing judge batches across shard boundaries: files
// the skip filter passes over (resume hits) thin a shard out, and
// instead of submitting the undersized remainder alone, each worker
// carries it into the next shard it claims until a full batch of
// shardSizeFor(n) files forms — so a heavily-resumed run still
// reaches the endpoint in full CompleteBatch calls instead of a
// trickle of fragments. The trailing partial batch is submitted by
// the worker's flush. Batching never changes verdicts (judging is
// per-prompt deterministic), only how prompts are grouped on the
// wire.
//
// skip(i) reports whether file i needs no judging (sealing resumed
// files itself); a skip error — a corrupt stored record — stops the
// scheduler like any judging error, before further endpoint work.
// name(i) names file i for progress-independent concerns (today: the
// "name" attribute on per-file trace spans). input(i) supplies the
// code and optional tool info for file i (infos are forwarded to
// EvaluateBatch only when withInfo is set); seal(i, ev) seals file
// i's freshly judged evaluation and may return a store record for it
// — the whole batch's records land in one PutAll under one store
// lock, followed by one Flush checkpoint, so a crash re-judges at
// most one batch per worker.
//
// With a tracer configured (WithTracer), each judged file opens its
// own per-file trace root, and every endpoint submission opens a
// "judge.batch" carrier span under the batch's first file — so the
// remote spans a batched call produces attach to a trace even though
// the batch serves many; the carrier's trace names the batch size.
func (r *Runner) judgeSharded(ctx context.Context, j *judge.Judge, n int, withInfo bool,
	skip func(i int) (bool, error),
	name func(i int) string,
	input func(i int) (code string, info *judge.ToolInfo),
	seal func(i int, ev judge.Evaluation) (*store.Record, error)) error {
	target := r.shardSizeFor(n)
	return r.forEachShardWorkers(ctx, n, func() (func(start, end int) error, func() error) {
		var idx []int
		var codes []string
		var infos []*judge.ToolInfo
		var spans []*trace.Span
		var recs []store.Record
		submit := func() error {
			if len(idx) == 0 {
				return nil
			}
			var infoArg []*judge.ToolInfo
			if withInfo {
				infoArg = infos
			}
			jctx := ctx
			var bspan *trace.Span
			if len(spans) > 0 && spans[0] != nil {
				jctx, bspan = trace.Start(trace.ContextWith(ctx, spans[0]), "judge.batch")
				bspan.SetAttr("batch_size", strconv.Itoa(len(idx)))
			}
			evs, err := j.EvaluateBatch(jctx, codes, infoArg)
			bspan.End()
			if err != nil {
				for _, sp := range spans {
					sp.SetAttr("error", err.Error())
					sp.End()
				}
				return err
			}
			recs = recs[:0]
			for k, ev := range evs {
				if sp := spanAt(spans, k); sp != nil {
					sp.SetAttr("verdict", ev.Verdict.String())
					sp.End()
				}
				rec, err := seal(idx[k], ev)
				if err != nil {
					for kk := k + 1; kk < len(spans); kk++ {
						spans[kk].End()
					}
					return err
				}
				if rec != nil {
					recs = append(recs, *rec)
				}
			}
			if r.storeOK() && len(recs) > 0 {
				// Sealed-batch append failures degrade like putRecord's:
				// the Runner goes store-less with a logged warning and
				// Runner.Close surfaces the error; the run itself keeps
				// producing results.
				if err := r.store.PutAll(recs); err != nil {
					r.degradeStore(err)
				} else {
					r.flushStore()
				}
			}
			idx, codes, infos, spans = idx[:0], codes[:0], infos[:0], spans[:0]
			return nil
		}
		fn := func(start, end int) error {
			for i := start; i < end; i++ {
				skipped, err := skip(i)
				if err != nil {
					return err
				}
				if skipped {
					continue
				}
				code, info := input(i)
				idx = append(idx, i)
				codes = append(codes, code)
				if withInfo {
					infos = append(infos, info)
				}
				if r.tracer != nil {
					_, sp := r.tracer.StartTrace(ctx, "file")
					sp.SetAttr("name", name(i))
					spans = append(spans, sp)
				}
			}
			if len(idx) >= target {
				return submit()
			}
			return nil
		}
		return fn, submit
	})
}

// spanAt indexes a possibly-empty span slice: judgeSharded only fills
// spans when a tracer is configured, so batch loops index through this
// nil-tolerant accessor instead.
func spanAt(spans []*trace.Span, k int) *trace.Span {
	if k < len(spans) {
		return spans[k]
	}
	return nil
}

// flushStore checkpoints the write-behind run store — called at batch
// and phase boundaries so a crash between checkpoints loses at most
// the records buffered since the last one. A failed checkpoint
// degrades the Runner to store-less operation.
func (r *Runner) flushStore() {
	if !r.storeOK() {
		return
	}
	if err := r.store.Flush(); err != nil {
		r.degradeStore(err)
	}
}

// hashSources digests every input's source for store keys — skipped
// entirely (nil) on store-less Runners, where the hashes would be
// dead work on every experiment.
func (r *Runner) hashSources(n int, source func(i int) string) []string {
	if r.store == nil {
		return nil
	}
	hashes := make([]string, n)
	for i := range hashes {
		hashes[i] = store.HashSource(source(i))
	}
	return hashes
}

// storedRecords returns, per file, the prior record under the given
// experiment phase — all nil unless the Runner both holds a store and
// was asked to resume.
func (r *Runner) storedRecords(phase string, n int, hashes []string) []*store.Record {
	prior := make([]*store.Record, n)
	if r.store == nil || !r.resume {
		return prior
	}
	for i, h := range hashes {
		if rec, ok := r.store.Get(store.Key{Experiment: phase, Backend: r.backend, Seed: r.seed, FileHash: h}); ok {
			recCopy := rec
			prior[i] = &recCopy
		}
	}
	return prior
}

// putRecord appends a sealed result to the run store, when one is
// configured and still healthy. An append failure degrades the Runner
// to store-less operation (one logged warning, error surfaced by
// Runner.Close) — an experiment keeps producing results even when
// durability is lost mid-run.
func (r *Runner) putRecord(rec store.Record) {
	if !r.storeOK() {
		return
	}
	if err := r.store.Put(rec); err != nil {
		r.degradeStore(err)
	}
}

// verdictFromName parses a stored verdict string back into the judge
// type (the inverse of judge.Verdict.String).
func verdictFromName(s string) judge.Verdict {
	switch s {
	case "valid":
		return judge.Valid
	case "invalid":
		return judge.Invalid
	default:
		return judge.Unparsable
	}
}

// judgeDirect runs a judge over every suite file with the sharded
// scheduler, submitting prompts in coalesced batches (endpoints
// implementing judge.BatchLLM receive whole batches in single calls;
// undersized shard remainders merge across shards — see judgeSharded)
// and streaming per-file progress as verdicts seal. With a store
// configured, sealed verdicts append as each batch completes; with
// resume on, files already stored under this phase are loaded instead
// of judged.
func (r *Runner) judgeDirect(ctx context.Context, phase string, j *judge.Judge, suite []probe.ProbedFile, infoFor func(pf probe.ProbedFile) *judge.ToolInfo) ([]metrics.Outcome, error) {
	tr := r.track(phase, len(suite))
	hashes := r.hashSources(len(suite), func(i int) string { return suite[i].Source })
	prior := r.storedRecords(phase, len(suite), hashes)
	outcomes := make([]metrics.Outcome, len(suite))
	err := r.judgeSharded(ctx, j, len(suite), infoFor != nil,
		func(i int) (bool, error) {
			rec := prior[i]
			if rec == nil {
				return false, nil
			}
			outcomes[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: verdictFromName(rec.Verdict) == judge.Valid}
			tr.file(suite[i].Name)
			return true, nil
		},
		func(i int) string { return suite[i].Name },
		func(i int) (string, *judge.ToolInfo) {
			if infoFor != nil {
				return suite[i].Source, infoFor(suite[i])
			}
			return suite[i].Source, nil
		},
		func(i int, ev judge.Evaluation) (*store.Record, error) {
			outcomes[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: ev.Verdict == judge.Valid}
			tr.file(suite[i].Name)
			if r.store == nil {
				return nil, nil
			}
			return &store.Record{
				Experiment: phase, Backend: r.backend, Seed: r.seed,
				FileHash: hashes[i], Name: suite[i].Name,
				JudgeRan: true, Verdict: ev.Verdict.String(),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return outcomes, nil
}

// runPipeline is the store-aware wrapper around pipeline.Run shared
// by every pipeline-backed experiment. With resume on, files already
// stored under phase skip the pipeline entirely and reconstruct their
// FileResult from the record; the rest stream through the staged
// pipeline (judging in shards of the Runner's shard size) and append
// to the store the moment their fate is sealed, so an interrupted run
// loses at most in-flight files. Returned results are in input order;
// Stats counts only the work actually performed, which is the point
// of resuming.
func (r *Runner) runPipeline(ctx context.Context, phase string, jd *judge.Judge, tools *agent.Tools, recordAll bool, inputs []pipeline.Input) ([]pipeline.FileResult, pipeline.Stats, error) {
	tr := r.track(phase, len(inputs))
	storePhase := phase
	if recordAll {
		// Short-circuit and record-all runs agree on verdicts but not
		// on which stages ran, so their records must not mix.
		storePhase += "+record-all"
	}
	hashes := r.hashSources(len(inputs), func(i int) string { return inputs[i].Source })
	prior := r.storedRecords(storePhase, len(inputs), hashes)

	results := make([]pipeline.FileResult, len(inputs))
	var pending []pipeline.Input
	var origIdx []int
	for i, in := range inputs {
		rec := prior[i]
		if rec == nil {
			origIdx = append(origIdx, i)
			pending = append(pending, in)
			continue
		}
		results[i] = pipeline.FileResult{
			Index: i, Name: in.Name,
			CompileRan: rec.CompileRan, CompileOK: rec.CompileOK,
			ExecRan: rec.ExecRan, ExecOK: rec.ExecOK,
			JudgeRan: rec.JudgeRan, Verdict: verdictFromName(rec.Verdict),
			Valid: rec.Valid,
		}
		tr.file(in.Name)
	}
	stats := pipeline.Stats{Files: len(inputs)}
	if len(pending) == 0 {
		return results, stats, ctx.Err()
	}

	res, st, err := pipeline.Run(ctx, pipeline.Config{
		Tools:     tools,
		Judge:     jd,
		Stages:    r.pipelineStages(len(pending)),
		RecordAll: recordAll,
		Tracer:    r.tracer,
		OnResult: func(fr pipeline.FileResult) {
			if r.store != nil {
				r.putRecord(store.Record{
					Experiment: storePhase, Backend: r.backend, Seed: r.seed,
					FileHash: hashes[origIdx[fr.Index]], Name: fr.Name,
					CompileRan: fr.CompileRan, CompileOK: fr.CompileOK,
					ExecRan: fr.ExecRan, ExecOK: fr.ExecOK,
					JudgeRan: fr.JudgeRan, Verdict: fr.Verdict.String(),
					Valid: fr.Valid,
				})
			}
			tr.file(fr.Name)
		},
	}, pending)
	for k, fr := range res {
		fr.Index = origIdx[k]
		results[fr.Index] = fr
	}
	stats.Compiles = st.Compiles
	stats.Executions = st.Executions
	stats.JudgeCalls = st.JudgeCalls
	stats.JudgeBatches = st.JudgeBatches
	// Phase checkpoint: the write-behind store buffers OnResult
	// appends (fills also auto-flush); settle them before returning.
	r.flushStore()
	return results, stats, err
}

// DirectProbing is the Part-One experiment: judge every file of the
// suite with the direct analysis prompt (no tools, no pipeline) and
// score the verdicts. It reproduces Tables I and II, and its summaries
// aggregate into Table III.
func (r *Runner) DirectProbing(ctx context.Context, s SuiteSpec) (metrics.Summary, error) {
	suite, err := BuildSuite(s)
	if err != nil {
		return metrics.Summary{}, err
	}
	j := &judge.Judge{LLM: r.newLLM(), Style: judge.Direct, Dialect: s.Dialect}
	outcomes, err := r.judgeDirect(ctx, "direct-probing", j, suite, nil)
	if err != nil {
		return metrics.Summary{}, err
	}
	return metrics.Score(s.Dialect, outcomes), nil
}

// ValidateSuite streams a probed suite through the compile → execute →
// judge pipeline with the given judge style, honouring the Runner's
// worker, shard, record-all, store, and progress settings. It is the
// generic workload behind the fixed experiments and the natural entry
// point for new scenarios.
func (r *Runner) ValidateSuite(ctx context.Context, s SuiteSpec, style judge.Style) ([]pipeline.FileResult, pipeline.Stats, error) {
	suite, err := BuildSuite(s)
	if err != nil {
		return nil, pipeline.Stats{}, err
	}
	inputs := make([]pipeline.Input, len(suite))
	for i, pf := range suite {
		inputs[i] = pipeline.Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
	}
	jd := &judge.Judge{LLM: r.newLLM(), Style: style, Dialect: s.Dialect}
	return r.runPipeline(ctx, "pipeline/"+style.String(), jd, agent.NewTools(s.Dialect), r.recordAll, inputs)
}

// PartTwo executes the Part-Two experiment for one dialect: both
// agent-based judges and both pipelines scored from the same
// record-all pipeline runs, exactly as the paper gathered them (the
// record-all requirement is inherent to the measurement, so the
// Runner's record-all option does not apply here).
func (r *Runner) PartTwo(ctx context.Context, s SuiteSpec) (PartTwoResult, error) {
	suite, err := BuildSuite(s)
	if err != nil {
		return PartTwoResult{}, err
	}
	inputs := make([]pipeline.Input, len(suite))
	for i, pf := range suite {
		inputs[i] = pipeline.Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
	}
	llm := r.newLLM()
	tools := agent.NewTools(s.Dialect)

	var res PartTwoResult
	run := func(style judge.Style) (judgeSum, pipeSum metrics.Summary, stats pipeline.Stats, err error) {
		jd := &judge.Judge{LLM: llm, Style: style, Dialect: s.Dialect}
		results, st, err := r.runPipeline(ctx, "part2/"+style.String(), jd, tools, true, inputs)
		if err != nil {
			return metrics.Summary{}, metrics.Summary{}, st, err
		}
		judgeOut := make([]metrics.Outcome, len(results))
		pipeOut := make([]metrics.Outcome, len(results))
		for i, fr := range results {
			judgeOut[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: fr.Verdict == judge.Valid}
			pipeOut[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: fr.Valid}
		}
		return metrics.Score(s.Dialect, judgeOut), metrics.Score(s.Dialect, pipeOut), st, nil
	}
	if res.LLMJ1, res.Pipeline1, res.Stats, err = run(judge.AgentDirect); err != nil {
		return res, err
	}
	if res.LLMJ2, res.Pipeline2, _, err = run(judge.AgentIndirect); err != nil {
		return res, err
	}

	// The non-agent judge on the same suite (Figures 5/6 baseline).
	direct := &judge.Judge{LLM: llm, Style: judge.Direct, Dialect: s.Dialect}
	outcomes, err := r.judgeDirect(ctx, "part2/direct", direct, suite, nil)
	if err != nil {
		return res, err
	}
	res.Direct = metrics.Score(s.Dialect, outcomes)
	return res, nil
}

// AblationStages runs ablation A3 (stage contribution) on the suite.
func (r *Runner) AblationStages(ctx context.Context, s SuiteSpec) (AblationStagesResult, error) {
	suite, err := BuildSuite(s)
	if err != nil {
		return AblationStagesResult{}, err
	}
	tools := agent.NewTools(s.Dialect)
	inputs := make([]pipeline.Input, len(suite))
	for i, pf := range suite {
		inputs[i] = pipeline.Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
	}

	score := func(phase string, judgeOn, execOn bool) (metrics.Summary, error) {
		var jd *judge.Judge
		if judgeOn {
			jd = &judge.Judge{LLM: r.newLLM(), Style: judge.AgentDirect, Dialect: s.Dialect}
		}
		results, _, err := r.runPipeline(ctx, "ablation-stages/"+phase, jd, tools, true, inputs)
		if err != nil {
			return metrics.Summary{}, err
		}
		out := make([]metrics.Outcome, len(results))
		for i, fr := range results {
			valid := fr.CompileOK
			if execOn && fr.ExecRan {
				valid = valid && fr.ExecOK
			}
			if judgeOn {
				valid = valid && fr.Verdict == judge.Valid
			}
			out[i] = metrics.Outcome{Issue: suite[i].Issue, JudgedValid: valid}
		}
		return metrics.Score(s.Dialect, out), nil
	}
	var res AblationStagesResult
	if res.CompileOnly, err = score("compile", false, false); err != nil {
		return res, err
	}
	if res.CompileAndRun, err = score("compile+run", false, true); err != nil {
		return res, err
	}
	if res.FullPipeline, err = score("full", true, true); err != nil {
		return res, err
	}
	return res, nil
}

// AblationAgentInfo runs ablation A2 (tool information in the prompt).
func (r *Runner) AblationAgentInfo(ctx context.Context, s SuiteSpec) (AblationAgentInfoResult, error) {
	suite, err := BuildSuite(s)
	if err != nil {
		return AblationAgentInfoResult{}, err
	}
	llm := r.newLLM()
	tools := agent.NewTools(s.Dialect)
	direct := &judge.Judge{LLM: llm, Style: judge.Direct, Dialect: s.Dialect}
	agentJudge := &judge.Judge{LLM: llm, Style: judge.AgentDirect, Dialect: s.Dialect}

	without, err := r.judgeDirect(ctx, "ablation-agent-info/direct", direct, suite, nil)
	if err != nil {
		return AblationAgentInfoResult{}, err
	}
	with, err := r.judgeDirect(ctx, "ablation-agent-info/agent", agentJudge, suite, func(pf probe.ProbedFile) *judge.ToolInfo {
		outcome := tools.Gather(pf.Name, pf.Source, pf.Lang)
		info := outcome.Info
		return &info
	})
	if err != nil {
		return AblationAgentInfoResult{}, err
	}
	return AblationAgentInfoResult{
		WithoutTools: metrics.Score(s.Dialect, without),
		WithTools:    metrics.Score(s.Dialect, with),
	}, nil
}

// PipelineThroughput runs ablation A1 (short-circuiting) on the suite,
// measuring stage executions with and without early exit. Throughput
// is a measurement of work performed, so this experiment deliberately
// bypasses the run store — resuming a throughput run would measure
// the resume, not the pipeline.
func (r *Runner) PipelineThroughput(ctx context.Context, s SuiteSpec) (PipelineThroughputResult, error) {
	suite, err := BuildSuite(s)
	if err != nil {
		return PipelineThroughputResult{}, err
	}
	inputs := make([]pipeline.Input, len(suite))
	for i, pf := range suite {
		inputs[i] = pipeline.Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
	}
	tools := agent.NewTools(s.Dialect)
	var out PipelineThroughputResult
	for _, recordAll := range []bool{false, true} {
		tr := r.track("throughput", len(inputs))
		_, st, err := pipeline.Run(ctx, pipeline.Config{
			Tools:     tools,
			Judge:     &judge.Judge{LLM: r.newLLM(), Style: judge.AgentDirect, Dialect: s.Dialect},
			Stages:    r.pipelineStages(len(inputs)),
			RecordAll: recordAll,
			OnResult:  func(fr pipeline.FileResult) { tr.file(fr.Name) },
		}, inputs)
		if err != nil {
			return out, err
		}
		if recordAll {
			out.RecordAll = st
		} else {
			out.ShortCircuit = st
		}
	}
	return out, nil
}

// GenerationLoop executes the paper's future-work experiment
// (DESIGN.md E1): the backend authors candidate tests per feature and
// the validation pipeline filters them. Backends that cannot author
// tests (no GenerateTest method) fall back to the default simulated
// author, which alone discloses the ground-truth defect labels the
// filter-quality counters require.
func (r *Runner) GenerationLoop(ctx context.Context, d spec.Dialect, perFeature int) (*GenerationResult, error) {
	cfg := genloop.Config{
		Dialect:     d,
		PerFeature:  perFeature,
		MaxAttempts: 4,
		ModelSeed:   r.seed,
		JudgeStyle:  judge.AgentDirect,
	}
	if author, ok := r.newLLM().(genloop.Author); ok {
		cfg.Author = author
	}
	return genloop.Run(ctx, cfg)
}
