package llm4vv

// The chaos suite: experiments swept through a deliberately faulty
// fleet — flapping health probes, injected 5xx and connection resets,
// a torn response body — must produce reports byte-identical to a
// fault-free run. Fault schedules are seeded and deterministic
// (internal/fault), so a failing leg replays exactly. These tests are
// the degradation guarantees of DESIGN.md §15, CI-gated by the chaos
// job.

import (
	"context"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/ensemble"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/judge"
	"repro/internal/remote"
	"repro/internal/spec"
)

// registerChaosBackend registers an already-built endpoint under a
// unique test-local name and removes it again at cleanup so later
// sweeps (the compare scenario iterates every registered backend)
// never dial torn-down test fixtures.
func registerChaosBackend(t *testing.T, name string, llm judge.LLM) {
	t.Helper()
	RegisterBackend(name, func(seed uint64) judge.LLM { return llm })
	t.Cleanup(func() {
		backendRegistry.Lock()
		delete(backendRegistry.factories, name)
		backendRegistry.Unlock()
	})
}

// chaosRouter builds a fleet Router whose replica clients send every
// request through inj's "remote.send" transport point and whose
// health probes consult "fleet.probe:<addr>".
func chaosRouter(t *testing.T, inj *fault.Injector, addrs []string) *fleet.Router {
	t.Helper()
	replicas := make([]fleet.Replica, len(addrs))
	for i, a := range addrs {
		replicas[i] = fleet.Replica{Addr: a, Client: remote.New(a,
			remote.WithRetries(3),
			remote.WithBackoff(time.Millisecond),
			remote.WithHTTPClient(&http.Client{Transport: fault.Transport(inj, "remote.send", nil)}),
		)}
	}
	rt, err := fleet.NewRouter(fleet.Config{
		Replicas:        replicas,
		HealthInterval:  20 * time.Millisecond,
		BreakerCooldown: 50 * time.Millisecond,
		Fault:           inj,
		Logger:          slog.New(slog.DiscardHandler),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// TestChaosFleetByteIdenticalReport is the headline degradation
// guarantee: a three-replica fleet with one replica flapping in and
// out of the ring, ~5% of requests drawing injected 5xx and
// connection resets, and one response body torn mid-read still
// produces a report byte-identical to the fault-free in-process run.
func TestChaosFleetByteIdenticalReport(t *testing.T) {
	addrs := []string{
		startFleetReplica(t, nil),
		startFleetReplica(t, nil),
		startFleetReplica(t, nil),
	}
	inj := fault.New(1701,
		// One torn body, early in the sweep.
		&fault.Rule{Point: "remote.send", Kind: fault.Torn, Every: 5, Count: 1},
		// ~5% of sends answered with a synthesized 500, ~5% reset
		// before the request leaves the client.
		&fault.Rule{Point: "remote.send", Kind: fault.HTTP500, Rate: 0.05},
		&fault.Rule{Point: "remote.send", Kind: fault.Reset, Rate: 0.05},
		// The first replica's health probe fails every other draw: the
		// health loop evicts and readmits it for the whole sweep.
		&fault.Rule{Point: "fleet.probe:" + addrs[0], Kind: fault.Flap, Every: 2},
	)
	rt := chaosRouter(t, inj, addrs)
	const name = "chaos-fleet-byte-identical"
	registerChaosBackend(t, name, rt)

	params := ExperimentParams{Dialects: []spec.Dialect{spec.OpenACC}, Scale: 16}
	opts := []Option{WithShardSize(2)} // many routed batches → faults land mid-sweep

	local, err := NewRunner(opts...)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := RunExperiment(context.Background(), local, "part1", params)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := NewRunner(append(opts, WithBackend(name))...)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := RunExperiment(context.Background(), cr, "part1", params)
	if err != nil {
		t.Fatalf("sweep failed under chaos: %v", err)
	}
	if lres.Report() != cres.Report() {
		t.Errorf("report diverged under chaos:\n--- fault-free ---\n%s\n--- chaos ---\n%s",
			lres.Report(), cres.Report())
	}
	// The run must have been genuinely chaotic: faults fired on the
	// wire (the probe flap is timing-dependent, the send faults are
	// not).
	sent := int64(0)
	for _, pc := range inj.Injected() {
		if strings.HasPrefix(pc.Point, "remote.send") {
			sent += pc.Count
		}
	}
	if sent == 0 {
		t.Error("no remote.send faults fired; the sweep was not exercised under chaos")
	}
}

// TestChaosMalformedCompletionAbsorbedByPanel: a three-member voting
// panel with one member injecting malformed completions (and the
// occasional outright error) must return the same verdicts as the
// uncorrupted panel — garbage parses to an unparsable vote, errors
// become error votes, and the majority quorum absorbs both.
func TestChaosMalformedCompletionAbsorbedByPanel(t *testing.T) {
	member := func() judge.LLM {
		llm, err := NewBackend(DefaultBackend, DefaultModelSeed)
		if err != nil {
			t.Fatal(err)
		}
		return llm
	}
	inj := fault.New(99,
		&fault.Rule{Point: "daemon.complete", Kind: fault.Malformed, Every: 2},
		&fault.Rule{Point: "daemon.complete", Kind: fault.Err, Every: 7},
	)
	clean, err := ensemble.New(ensemble.Config{
		Members: []ensemble.Member{
			{Name: "m0", LLM: member()}, {Name: "m1", LLM: member()}, {Name: "m2", LLM: member()},
		},
		Strategy: ensemble.Majority,
		Quorum:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	chaos, err := ensemble.New(ensemble.Config{
		Members: []ensemble.Member{
			{Name: "m0", LLM: member()},
			{Name: "m1", LLM: fault.LLM(inj, "daemon.complete", member())},
			{Name: "m2", LLM: member()},
		},
		Strategy: ensemble.Majority,
		Quorum:   2,
	})
	if err != nil {
		t.Fatal(err)
	}

	suite, err := BuildSuite(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	codes := make([]string, len(suite))
	for i, pf := range suite {
		codes[i] = pf.Source
	}
	ctx := context.Background()
	judgeOver := func(llm judge.LLM) []judge.Evaluation {
		j := &judge.Judge{LLM: llm, Style: judge.Direct, Dialect: spec.OpenACC}
		evs, err := j.EvaluateBatch(ctx, codes, nil)
		if err != nil {
			t.Fatalf("panel judging failed: %v", err)
		}
		return evs
	}
	want := judgeOver(clean)
	got := judgeOver(chaos)
	for i := range want {
		if got[i].Verdict != want[i].Verdict {
			t.Errorf("file %s: verdict %v under chaos, %v clean — malformed member vote leaked into the decision",
				suite[i].Name, got[i].Verdict, want[i].Verdict)
		}
	}
	if inj.InjectedTotal() == 0 {
		t.Error("no faults fired; the corrupted member was never exercised")
	}
}
