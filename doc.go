// Package llm4vv is the public API of the LLM4VV reproduction: an
// LLM-as-a-judge (LLMJ) framework for validating compiler V&V tests
// for the directive-based programming models OpenACC and OpenMP,
// following "LLM4VV: Exploring LLM-as-a-Judge for Validation and
// Verification Testsuites" (SC 2024, arXiv:2408.11729).
//
// The package composes the internal substrates — a synthetic V&V test
// corpus, negative-probing mutators, a simulated OpenACC/OpenMP
// compiler and execution machine, a simulated code LLM, the
// agent-based judging harness, and the staged validation pipeline —
// into the paper's experiments:
//
//   - Part One (§V-A): the judge alone, with the direct analysis
//     prompt, scored by negative probing (Tables I-III).
//   - Part Two (§V-B): agent-based judges (LLMJ 1 and LLMJ 2) and the
//     compile → execute → judge validation pipeline (Tables IV-IX,
//     Figures 3-6).
//
// The API is organised around three pluggable concepts:
//
//   - Runner: constructed with functional options (WithBackend,
//     WithWorkers, WithShardSize, WithRecordAll, WithEvalCache,
//     WithProgress, WithStore, WithStoreOptions, WithResume), its
//     context-aware methods
//     run every experiment cancellably and can stream per-file
//     progress. Work is scheduled in shards by a chunked
//     work-stealing scheduler, and each shard's prompts reach the
//     endpoint as one batch when it supports that.
//   - Backend registry: RegisterBackend plugs alternate LLM endpoints
//     in by name; the simulated deepseek model ships as
//     DefaultBackend. The required contract is judge.LLM; endpoints
//     may add judge.ContextLLM (cancellation), judge.BatchLLM (whole
//     shards per call), and genloop.Author (test authoring).
//   - Experiment registry: RegisterExperiment makes a scenario
//     dispatchable by name through RunExperiment; Part One, Part Two,
//     the ablations, the generation loop, and the cross-backend
//     compare sweep ship registered, and cmd/llm4vv and
//     cmd/judgebench enumerate and run any registered scenario
//     generically.
//
// Runs are durable and resumable: WithStore attaches a persistent run
// store keyed by (experiment, backend, seed, file content hash) to
// which every sealed verdict is appended as it lands, and WithResume
// makes experiments skip files a previous run already completed — an
// interrupted sweep restarted under the same configuration re-judges
// nothing it finished and reproduces the uninterrupted metrics
// exactly. The store is a segmented log built for millions of
// records: the active JSONL file seals into sorted immutable segments
// with sparse indexes and Bloom filters (point lookups never scan),
// sealed segments merge in the background, and streaming filtered
// scans feed analytics and panel calibration — see DESIGN.md §5/§12,
// docs/STORE.md for the format and crash contract, and
// examples/store.
//
// Judging also runs as a service: cmd/llm4vvd fronts any registered
// backend over HTTP with dynamic micro-batching, bounded admission
// (429 + Retry-After on overload), and store-backed completion dedup,
// and the "remote:<addr>" backend (RegisterRemoteBackend, or the
// -serve-addr flag on both commands) points any experiment at a
// running daemon with byte-identical metrics — see DESIGN.md §8 and
// examples/service.
//
// Daemons scale horizontally as a fleet: cmd/llm4vv-router fronts N
// replicas behind one address, consistent-hash routing each prompt to
// the replica owning its content key (so per-replica stores and
// caches stay authoritative), with bounded-load spill, health-watched
// ring membership with request failover, priority-class load shedding
// (bulk sweeps yield to interactive traffic), per-client quotas, and
// Prometheus /metrics on both tiers. The "fleet:addr1,addr2,..."
// backend (RegisterFleetBackend) routes in-process, and reports stay
// byte-identical to a single daemon even across a replica killed
// mid-sweep — see DESIGN.md §11 and examples/fleet.
//
// Backends compose into voting ensembles: "ensemble:a+b+c[:strategy]"
// (NewPanel, RegisterEnsembleBackend) seats any registered backends —
// remote daemons included — on one panel that fans every shard out
// concurrently per member and combines votes by majority, unanimity
// with a deterministic tiebreak, or store-calibrated weights, with
// quorum semantics when members fail. The "panel" experiment scores a
// panel both as a judge and for inter-judge reliability (Fleiss'
// kappa, pairwise agreement, per-member bias against the consensus),
// persists per-member votes in the run store so resumed panel runs
// re-judge nothing, and reproduces byte-identical reports through a
// daemon serving the ensemble — see DESIGN.md §9 and examples/panel.
//
// The hot paths are measured and gated: prompt assembly is
// zero-allocation (precomputed per-dialect segments into pooled
// buffers — one allocation per prompt, the returned string), the
// eval cache and the daemon dedup key by 32-byte prompt content
// hashes (judge.PromptKey), the run store is write-behind (buffered
// appends, Flush checkpoints at batch and phase boundaries), the
// daemon's micro-batcher adapts its gather delay to load, and the
// Runner coalesces judge batches across shard boundaries so
// resume-thinned sweeps still reach endpoints in full batches. The
// BenchmarkThroughput* suite reports files/sec, allocs/op, and
// p50/p99 stage latencies per path, and cmd/benchci gates the
// throughput and allocation metrics in CI on ratio bands while
// accuracy stays exact-gated; -cpuprofile/-memprofile on both
// commands profile the same paths in the field. Every optimisation
// is pinned byte-identical by parity tests — see DESIGN.md §10.
//
// The validation pipeline is a stage DAG: internal/pipeline schedules
// each file through the stages of a Graph the moment its
// prerequisites complete — no barriers between stages — with
// multi-file units ordered by Input.DependsOn and per-stage
// configuration carried by StageSpec (workers, batching, observer).
// WithStages and WithStageWorkers tune the built-in compile/exec/
// judge stages per Runner, surfaced as -stage-workers on both
// commands; NewGraph/RunGraph schedule custom stage DAGs. See
// DESIGN.md §14.
//
// The pre-redesign free functions (RunDirectProbing, RunPartTwo,
// RunGenerationLoop, ...) remain as deprecated wrappers over a
// default-configured Runner; likewise pipeline.Config's pre-DAG
// scalar knobs (CompileWorkers, ExecWorkers, JudgeWorkers,
// StageObserver) remain as deprecated fields that translate onto the
// default graph's StageSpec values — migrate by moving each scalar
// into the corresponding Config.Stages entry.
//
// Every experiment is deterministic given its seeds. See DESIGN.md for
// the system inventory, the Runner/Backend/Experiment architecture,
// and the reproduced result shapes; docs/OPERATIONS.md is the
// operator runbook for the service tier (deployment, priority and
// quota headers, overload semantics, the complete Prometheus metrics
// reference, and run-store maintenance).
package llm4vv
