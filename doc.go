// Package llm4vv is the public API of the LLM4VV reproduction: an
// LLM-as-a-judge (LLMJ) framework for validating compiler V&V tests
// for the directive-based programming models OpenACC and OpenMP,
// following "LLM4VV: Exploring LLM-as-a-Judge for Validation and
// Verification Testsuites" (SC 2024, arXiv:2408.11729).
//
// The package composes the internal substrates — a synthetic V&V test
// corpus, negative-probing mutators, a simulated OpenACC/OpenMP
// compiler and execution machine, a simulated code LLM, the
// agent-based judging harness, and the staged validation pipeline —
// into the paper's experiments:
//
//   - Part One (§V-A): the judge alone, with the direct analysis
//     prompt, scored by negative probing (Tables I-III).
//   - Part Two (§V-B): agent-based judges (LLMJ 1 and LLMJ 2) and the
//     compile → execute → judge validation pipeline (Tables IV-IX,
//     Figures 3-6).
//
// Every experiment is deterministic given its seeds. See DESIGN.md for
// the system inventory and EXPERIMENTS.md for paper-vs-measured
// results.
package llm4vv
