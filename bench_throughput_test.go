package llm4vv

// The BenchmarkThroughput* suite is the performance harness (DESIGN.md
// §10): files/sec and allocs/op on every hot path — prompt assembly,
// the hash-keyed judge cache, the write-behind store, the staged
// pipeline, the serving daemon, and the ensemble panel — plus p50/p99
// stage latencies extracted through internal/perf. cmd/benchci gates
// the files/sec and allocs/op entries against BENCH_baseline.json on
// a ratio band (the CI perf job), while the accuracy metrics of
// bench_test.go stay gated on exact tolerances; the *-ns latency
// quantiles are recorded in the artifact but never gated — they are
// diagnostics, not contracts.

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/fleet"
	"repro/internal/judge"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/remote"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/trace"
)

// benchSink keeps prompt assembly from being optimised away.
var benchSink string

func benchSuiteInputs(b *testing.B) []pipeline.Input {
	b.Helper()
	suite, err := BuildSuite(PartTwoSpec(spec.OpenACC).Scaled(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	inputs := make([]pipeline.Input, len(suite))
	for i, pf := range suite {
		inputs[i] = pipeline.Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
	}
	return inputs
}

// BenchmarkThroughputPromptAssembly — the zero-allocation prompt
// assembler: agent-direct prompts (criteria + tool block + code) for
// the whole suite per iteration.
func BenchmarkThroughputPromptAssembly(b *testing.B) {
	inputs := benchSuiteInputs(b)
	j := &judge.Judge{Style: judge.AgentDirect, Dialect: spec.OpenACC}
	info := &judge.ToolInfo{CompileRC: 0, CompileStdout: "ok", Ran: true, RunRC: 0, RunStdout: "PASS"}
	benchSink = j.BuildPrompt(inputs[0].Source, info) // warm the segment cache and buffer pool
	b.ReportAllocs()
	b.ResetTimer()
	files := 0
	for i := 0; i < b.N; i++ {
		for _, in := range inputs {
			benchSink = j.BuildPrompt(in.Source, info)
			files++
		}
	}
	b.ReportMetric(perf.Rate(files, b.Elapsed()), "files/sec")
}

// BenchmarkThroughputCachedJudge — steady-state judging through the
// hash-keyed eval cache: every prompt is a memo hit resolved without
// an endpoint call.
func BenchmarkThroughputCachedJudge(b *testing.B) {
	inputs := benchSuiteInputs(b)
	llm, err := NewBackend(DefaultBackend, DefaultModelSeed)
	if err != nil {
		b.Fatal(err)
	}
	j := &judge.Judge{LLM: judge.Cached(llm), Style: judge.Direct, Dialect: spec.OpenACC}
	codes := make([]string, len(inputs))
	for i, in := range inputs {
		codes[i] = in.Source
	}
	if _, err := j.EvaluateBatch(context.Background(), codes, nil); err != nil {
		b.Fatal(err) // prime the memo
	}
	b.ReportAllocs()
	b.ResetTimer()
	files := 0
	for i := 0; i < b.N; i++ {
		if _, err := j.EvaluateBatch(context.Background(), codes, nil); err != nil {
			b.Fatal(err)
		}
		files += len(codes)
	}
	b.ReportMetric(perf.Rate(files, b.Elapsed()), "files/sec")
}

// BenchmarkThroughputStoreWrite — the write-behind run store: 64
// sealed verdicts per iteration through Put, with one Flush per
// iteration (the checkpoint cadence of a judged batch).
func BenchmarkThroughputStoreWrite(b *testing.B) {
	path := filepath.Join(b.TempDir(), "run.jsonl")
	s, err := store.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	// Distinct hashes prepared outside the timer; the varying Seed
	// keeps every iteration's keys fresh without allocating in-loop.
	hashes := make([]string, 64)
	for k := range hashes {
		hashes[k] = fmt.Sprintf("%08d-hash", k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	recs := 0
	for i := 0; i < b.N; i++ {
		for k := 0; k < 64; k++ {
			rec := store.Record{
				Experiment: "bench/throughput", Backend: "deepseek-sim", Seed: uint64(i),
				FileHash: hashes[k], Name: "t.c",
				JudgeRan: true, Verdict: "valid", Valid: true,
			}
			if err := s.Put(rec); err != nil {
				b.Fatal(err)
			}
			recs++
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(perf.Rate(recs, b.Elapsed()), "files/sec")
}

// BenchmarkThroughputStoreLookup — point lookups against a million-
// record segmented store: Get resolves each key through the segment
// Bloom filters and sparse indexes (one bounded block read per hit),
// never a scan — the property that lets the store outgrow memory
// (DESIGN.md §12, docs/STORE.md). The store is built outside the
// timer; the timed loop is pure Get traffic across the whole keyspace.
func BenchmarkThroughputStoreLookup(b *testing.B) {
	const total = 1 << 20
	path := filepath.Join(b.TempDir(), "run.jsonl")
	// Seal roughly every 16 MiB and skip background merging: the point
	// is lookups against many sealed segments, not merge throughput.
	s, err := store.OpenWith(path, store.Options{SealBytes: 16 << 20, MergeThreshold: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	hashes := make([]string, total)
	for i := range hashes {
		hashes[i] = fmt.Sprintf("%08x-hash", i)
	}
	for i := 0; i < total; i++ {
		rec := store.Record{
			Experiment: "bench/lookup", Backend: "deepseek-sim", Seed: uint64(i >> 16),
			FileHash: hashes[i], Name: "t.c",
			JudgeRan: true, Verdict: "valid", Valid: true,
		}
		if err := s.Put(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	if s.Stats().SegmentCount() == 0 {
		b.Fatal("store did not seal any segments; lookups would only hit the in-memory active set")
	}
	b.ReportAllocs()
	b.ResetTimer()
	lookups := 0
	for i := 0; i < b.N; i++ {
		// A multiplicative stride walks the keyspace in a scattered
		// order without per-iteration randomness.
		k := (uint64(i) * 2654435761) % total
		key := store.Key{Experiment: "bench/lookup", Backend: "deepseek-sim",
			Seed: k >> 16, FileHash: hashes[k]}
		rec, ok := s.Get(key)
		if !ok || rec.FileHash != hashes[k] {
			b.Fatalf("lookup %d: key %v missing or wrong record", i, key)
		}
		lookups++
	}
	b.ReportMetric(perf.Rate(lookups, b.Elapsed()), "files/sec")
}

// BenchmarkThroughputPipeline — the staged compile → execute → judge
// pipeline end to end in record-all mode, with per-stage p50/p99
// latencies extracted through the perf recorder (reported as *-ns
// diagnostics, never gated).
func BenchmarkThroughputPipeline(b *testing.B) {
	inputs := benchSuiteInputs(b)
	llm, err := NewBackend(DefaultBackend, DefaultModelSeed)
	if err != nil {
		b.Fatal(err)
	}
	tools := agent.NewTools(spec.OpenACC)
	rec := perf.NewRecorder()
	cfg := pipeline.Config{
		Tools:          tools,
		Judge:          &judge.Judge{LLM: llm, Style: judge.AgentDirect, Dialect: spec.OpenACC},
		CompileWorkers: 4,
		ExecWorkers:    4,
		JudgeWorkers:   4,
		JudgeBatch:     16,
		RecordAll:      true,
		StageObserver:  rec.Observe,
	}
	b.ReportAllocs()
	b.ResetTimer()
	files := 0
	for i := 0; i < b.N; i++ {
		if _, _, err := pipeline.Run(context.Background(), cfg, inputs); err != nil {
			b.Fatal(err)
		}
		files += len(inputs)
	}
	b.ReportMetric(perf.Rate(files, b.Elapsed()), "files/sec")
	for _, stage := range rec.Stages() {
		b.ReportMetric(float64(rec.P50(stage).Nanoseconds()), stage+"-p50-ns")
		b.ReportMetric(float64(rec.P99(stage).Nanoseconds()), stage+"-p99-ns")
	}
}

// BenchmarkThroughputPipelineTraced — the same staged pipeline with
// distributed tracing on (per-file trace roots, stage spans, batch
// carriers), fragments serialised to a discarded writer. Gated as its
// own files/sec band next to the untraced pipeline's, so tracing
// overhead cannot silently grow — and the untraced benchmark's
// allocs/op band is the proof that a nil tracer stays free.
func BenchmarkThroughputPipelineTraced(b *testing.B) {
	inputs := benchSuiteInputs(b)
	llm, err := NewBackend(DefaultBackend, DefaultModelSeed)
	if err != nil {
		b.Fatal(err)
	}
	cfg := pipeline.Config{
		Tools:          agent.NewTools(spec.OpenACC),
		Judge:          &judge.Judge{LLM: llm, Style: judge.AgentDirect, Dialect: spec.OpenACC},
		CompileWorkers: 4,
		ExecWorkers:    4,
		JudgeWorkers:   4,
		JudgeBatch:     16,
		RecordAll:      true,
		Tracer:         trace.New(trace.WithWriter(io.Discard), trace.WithProcess("bench")),
	}
	b.ReportAllocs()
	b.ResetTimer()
	files := 0
	for i := 0; i < b.N; i++ {
		if _, _, err := pipeline.Run(context.Background(), cfg, inputs); err != nil {
			b.Fatal(err)
		}
		files += len(inputs)
	}
	b.ReportMetric(perf.Rate(files, b.Elapsed()), "files/sec")
}

// BenchmarkThroughputServer — the judging daemon over loopback HTTP:
// the whole suite as one /v1/complete_batch shard per iteration,
// through the adaptive micro-batching server core.
func BenchmarkThroughputServer(b *testing.B) {
	inputs := benchSuiteInputs(b)
	llm, err := NewBackend(DefaultBackend, DefaultModelSeed)
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(server.Config{LLM: llm, Backend: DefaultBackend, Seed: DefaultModelSeed})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rb := remote.New(ts.URL, remote.WithBackoff(time.Millisecond))
	j := &judge.Judge{LLM: rb, Style: judge.Direct, Dialect: spec.OpenACC}
	codes := make([]string, len(inputs))
	for i, in := range inputs {
		codes[i] = in.Source
	}
	if _, err := j.EvaluateBatch(context.Background(), codes, nil); err != nil {
		b.Fatal(err) // warm the HTTP connection pool and the model tables
	}
	b.ReportAllocs()
	b.ResetTimer()
	files := 0
	for i := 0; i < b.N; i++ {
		if _, err := j.EvaluateBatch(context.Background(), codes, nil); err != nil {
			b.Fatal(err)
		}
		files += len(codes)
	}
	b.ReportMetric(perf.Rate(files, b.Elapsed()), "files/sec")
}

// BenchmarkThroughputFleetRouting — the fleet tier over loopback
// HTTP: the suite judged through a consistent-hash router fanning
// each batch out across two daemon replicas concurrently.
func BenchmarkThroughputFleetRouting(b *testing.B) {
	inputs := benchSuiteInputs(b)
	addrs := make([]string, 2)
	for i := range addrs {
		llm, err := NewBackend(DefaultBackend, DefaultModelSeed)
		if err != nil {
			b.Fatal(err)
		}
		srv := server.New(server.Config{LLM: llm, Backend: DefaultBackend, Seed: DefaultModelSeed})
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		addrs[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	rt, err := fleet.Dial(strings.Join(addrs, ","), remote.WithBackoff(time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	j := &judge.Judge{LLM: rt, Style: judge.Direct, Dialect: spec.OpenACC}
	codes := make([]string, len(inputs))
	for i, in := range inputs {
		codes[i] = in.Source
	}
	if _, err := j.EvaluateBatch(context.Background(), codes, nil); err != nil {
		b.Fatal(err) // warm the HTTP connection pools and the model tables
	}
	b.ReportAllocs()
	b.ResetTimer()
	files := 0
	for i := 0; i < b.N; i++ {
		if _, err := j.EvaluateBatch(context.Background(), codes, nil); err != nil {
			b.Fatal(err)
		}
		files += len(codes)
	}
	b.ReportMetric(perf.Rate(files, b.Elapsed()), "files/sec")
}

// BenchmarkThroughputEnsemble — a three-seat panel judging the suite:
// one sharded pass fanning every batch out to all members
// concurrently.
func BenchmarkThroughputEnsemble(b *testing.B) {
	inputs := benchSuiteInputs(b)
	panel, err := NewPanel("deepseek-sim+deepseek-sim+deepseek-sim", DefaultModelSeed)
	if err != nil {
		b.Fatal(err)
	}
	j := &judge.Judge{LLM: panel, Style: judge.Direct, Dialect: spec.OpenACC}
	codes := make([]string, len(inputs))
	for i, in := range inputs {
		codes[i] = in.Source
	}
	if _, err := j.EvaluateBatch(context.Background(), codes, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	files := 0
	for i := 0; i < b.N; i++ {
		if _, err := j.EvaluateBatch(context.Background(), codes, nil); err != nil {
			b.Fatal(err)
		}
		files += len(codes)
	}
	b.ReportMetric(perf.Rate(files, b.Elapsed()), "files/sec")
}
