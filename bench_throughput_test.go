package llm4vv

// The BenchmarkThroughput* suite is the performance harness (DESIGN.md
// §10): files/sec and allocs/op on every hot path — prompt assembly,
// the hash-keyed judge cache, the write-behind store, the staged
// pipeline, the serving daemon, and the ensemble panel — plus p50/p99
// stage latencies extracted through internal/perf. cmd/benchci gates
// the files/sec and allocs/op entries against BENCH_baseline.json on
// a ratio band (the CI perf job), while the accuracy metrics of
// bench_test.go stay gated on exact tolerances; the *-ns latency
// quantiles are recorded in the artifact but never gated — they are
// diagnostics, not contracts.

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/fleet"
	"repro/internal/judge"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/remote"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/trace"
)

// benchSink keeps prompt assembly from being optimised away.
var benchSink string

func benchSuiteInputs(b *testing.B) []pipeline.Input {
	b.Helper()
	suite, err := BuildSuite(PartTwoSpec(spec.OpenACC).Scaled(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	inputs := make([]pipeline.Input, len(suite))
	for i, pf := range suite {
		inputs[i] = pipeline.Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
	}
	return inputs
}

// BenchmarkThroughputPromptAssembly — the zero-allocation prompt
// assembler: agent-direct prompts (criteria + tool block + code) for
// the whole suite per iteration.
func BenchmarkThroughputPromptAssembly(b *testing.B) {
	inputs := benchSuiteInputs(b)
	j := &judge.Judge{Style: judge.AgentDirect, Dialect: spec.OpenACC}
	info := &judge.ToolInfo{CompileRC: 0, CompileStdout: "ok", Ran: true, RunRC: 0, RunStdout: "PASS"}
	benchSink = j.BuildPrompt(inputs[0].Source, info) // warm the segment cache and buffer pool
	b.ReportAllocs()
	b.ResetTimer()
	files := 0
	for i := 0; i < b.N; i++ {
		for _, in := range inputs {
			benchSink = j.BuildPrompt(in.Source, info)
			files++
		}
	}
	b.ReportMetric(perf.Rate(files, b.Elapsed()), "files/sec")
}

// BenchmarkThroughputCachedJudge — steady-state judging through the
// hash-keyed eval cache: every prompt is a memo hit resolved without
// an endpoint call.
func BenchmarkThroughputCachedJudge(b *testing.B) {
	inputs := benchSuiteInputs(b)
	llm, err := NewBackend(DefaultBackend, DefaultModelSeed)
	if err != nil {
		b.Fatal(err)
	}
	j := &judge.Judge{LLM: judge.Cached(llm), Style: judge.Direct, Dialect: spec.OpenACC}
	codes := make([]string, len(inputs))
	for i, in := range inputs {
		codes[i] = in.Source
	}
	if _, err := j.EvaluateBatch(context.Background(), codes, nil); err != nil {
		b.Fatal(err) // prime the memo
	}
	b.ReportAllocs()
	b.ResetTimer()
	files := 0
	for i := 0; i < b.N; i++ {
		if _, err := j.EvaluateBatch(context.Background(), codes, nil); err != nil {
			b.Fatal(err)
		}
		files += len(codes)
	}
	b.ReportMetric(perf.Rate(files, b.Elapsed()), "files/sec")
}

// BenchmarkThroughputStoreWrite — the write-behind run store: 64
// sealed verdicts per iteration through Put, with one Flush per
// iteration (the checkpoint cadence of a judged batch).
func BenchmarkThroughputStoreWrite(b *testing.B) {
	path := filepath.Join(b.TempDir(), "run.jsonl")
	s, err := store.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	// Distinct hashes prepared outside the timer; the varying Seed
	// keeps every iteration's keys fresh without allocating in-loop.
	hashes := make([]string, 64)
	for k := range hashes {
		hashes[k] = fmt.Sprintf("%08d-hash", k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	recs := 0
	for i := 0; i < b.N; i++ {
		for k := 0; k < 64; k++ {
			rec := store.Record{
				Experiment: "bench/throughput", Backend: "deepseek-sim", Seed: uint64(i),
				FileHash: hashes[k], Name: "t.c",
				JudgeRan: true, Verdict: "valid", Valid: true,
			}
			if err := s.Put(rec); err != nil {
				b.Fatal(err)
			}
			recs++
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(perf.Rate(recs, b.Elapsed()), "files/sec")
}

// BenchmarkThroughputStoreLookup — point lookups against a million-
// record segmented store: Get resolves each key through the segment
// Bloom filters and sparse indexes (one bounded block read per hit),
// never a scan — the property that lets the store outgrow memory
// (DESIGN.md §12, docs/STORE.md). The store is built outside the
// timer; the timed loop is pure Get traffic across the whole keyspace.
func BenchmarkThroughputStoreLookup(b *testing.B) {
	const total = 1 << 20
	path := filepath.Join(b.TempDir(), "run.jsonl")
	// Seal roughly every 16 MiB and skip background merging: the point
	// is lookups against many sealed segments, not merge throughput.
	s, err := store.OpenWith(path, store.Options{SealBytes: 16 << 20, MergeThreshold: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	hashes := make([]string, total)
	for i := range hashes {
		hashes[i] = fmt.Sprintf("%08x-hash", i)
	}
	for i := 0; i < total; i++ {
		rec := store.Record{
			Experiment: "bench/lookup", Backend: "deepseek-sim", Seed: uint64(i >> 16),
			FileHash: hashes[i], Name: "t.c",
			JudgeRan: true, Verdict: "valid", Valid: true,
		}
		if err := s.Put(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	if s.Stats().SegmentCount() == 0 {
		b.Fatal("store did not seal any segments; lookups would only hit the in-memory active set")
	}
	b.ReportAllocs()
	b.ResetTimer()
	lookups := 0
	for i := 0; i < b.N; i++ {
		// A multiplicative stride walks the keyspace in a scattered
		// order without per-iteration randomness.
		k := (uint64(i) * 2654435761) % total
		key := store.Key{Experiment: "bench/lookup", Backend: "deepseek-sim",
			Seed: k >> 16, FileHash: hashes[k]}
		rec, ok := s.Get(key)
		if !ok || rec.FileHash != hashes[k] {
			b.Fatalf("lookup %d: key %v missing or wrong record", i, key)
		}
		lookups++
	}
	b.ReportMetric(perf.Rate(lookups, b.Elapsed()), "files/sec")
}

// BenchmarkThroughputPipeline — the staged compile → execute → judge
// pipeline end to end in record-all mode, with per-stage p50/p99
// latencies extracted through the perf recorder (reported as *-ns
// diagnostics, never gated).
func BenchmarkThroughputPipeline(b *testing.B) {
	inputs := benchSuiteInputs(b)
	llm, err := NewBackend(DefaultBackend, DefaultModelSeed)
	if err != nil {
		b.Fatal(err)
	}
	tools := agent.NewTools(spec.OpenACC)
	rec := perf.NewRecorder()
	cfg := pipeline.Config{
		Tools: tools,
		Judge: &judge.Judge{LLM: llm, Style: judge.AgentDirect, Dialect: spec.OpenACC},
		Stages: []pipeline.StageSpec{
			{Name: pipeline.StageCompile, Workers: 4, Observe: rec.Observe},
			{Name: pipeline.StageExec, Workers: 4, Observe: rec.Observe},
			{Name: pipeline.StageJudge, Workers: 4, Batch: 16, Observe: rec.Observe},
		},
		RecordAll: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	files := 0
	for i := 0; i < b.N; i++ {
		if _, _, err := pipeline.Run(context.Background(), cfg, inputs); err != nil {
			b.Fatal(err)
		}
		files += len(inputs)
	}
	b.ReportMetric(perf.Rate(files, b.Elapsed()), "files/sec")
	// Latency families come from whatever stages the graph ran — no
	// hard-coded stage list to drift when the graph changes.
	rec.ReportQuantiles(b.ReportMetric)
}

// BenchmarkThroughputPipelineTraced — the same staged pipeline with
// distributed tracing on (per-file trace roots, stage spans, batch
// carriers), fragments serialised to a discarded writer. Gated as its
// own files/sec band next to the untraced pipeline's, so tracing
// overhead cannot silently grow — and the untraced benchmark's
// allocs/op band is the proof that a nil tracer stays free. This one
// deliberately configures through the deprecated scalar worker knobs,
// keeping the Config → StageSpec translation layer on the gated path.
func BenchmarkThroughputPipelineTraced(b *testing.B) {
	inputs := benchSuiteInputs(b)
	llm, err := NewBackend(DefaultBackend, DefaultModelSeed)
	if err != nil {
		b.Fatal(err)
	}
	cfg := pipeline.Config{
		Tools:          agent.NewTools(spec.OpenACC),
		Judge:          &judge.Judge{LLM: llm, Style: judge.AgentDirect, Dialect: spec.OpenACC},
		CompileWorkers: 4,
		ExecWorkers:    4,
		JudgeWorkers:   4,
		JudgeBatch:     16,
		RecordAll:      true,
		Tracer:         trace.New(trace.WithWriter(io.Discard), trace.WithProcess("bench")),
	}
	b.ReportAllocs()
	b.ResetTimer()
	files := 0
	for i := 0; i < b.N; i++ {
		if _, _, err := pipeline.Run(context.Background(), cfg, inputs); err != nil {
			b.Fatal(err)
		}
		files += len(inputs)
	}
	b.ReportMetric(perf.Rate(files, b.Elapsed()), "files/sec")
}

// BenchmarkThroughputDAGScheduling — the DAG scheduler's convoy
// elimination on a dependency-heavy corpus. 24 four-file chains
// (each file DependsOn its predecessor) flow through a two-stage
// compile → judge graph of synthetic stages with bimodal costs: every
// dependency level contains one compile-heavy and one judge-heavy
// straggler amid cheap files, on distinct chains. The "linear"
// sub-benchmark runs the corpus the only way the pre-DAG pipeline
// could order dependencies — Kahn waves, one full pipeline pass per
// dependency level with a barrier between levels, so every level
// convoys behind its stragglers. The "dag" sub-benchmark declares the
// dependencies to one barrier-free run, where only the chains that
// actually contain a straggler wait for it. Both report files/sec
// (gated: dag must keep beating linear from both sides of its band)
// and allocs/op; the dependency-free fast path's allocation cost is
// pinned separately by BenchmarkThroughputPipeline's band.
func BenchmarkThroughputDAGScheduling(b *testing.B) {
	const (
		chains  = 24
		depth   = 4
		workers = 8
		heavy   = 4 * time.Millisecond
		light   = 500 * time.Microsecond
	)
	type cost struct{ compile, judge time.Duration }
	costs := map[string]cost{}
	fname := func(c, l int) string { return fmt.Sprintf("u%02d-f%d.c", c, l) }
	levels := make([][]pipeline.Input, depth) // dependency-stripped, for the wave baseline
	var chained []pipeline.Input              // dependency-declared, for the DAG run
	for l := 0; l < depth; l++ {
		for c := 0; c < chains; c++ {
			name := fname(c, l)
			fc := cost{compile: light, judge: light}
			if c == (l*7)%chains {
				fc.compile = heavy
			}
			if c == (l*7+11)%chains {
				fc.judge = heavy
			}
			costs[name] = fc
			levels[l] = append(levels[l], pipeline.Input{Name: name})
			in := pipeline.Input{Name: name}
			if l > 0 {
				in.DependsOn = []string{fname(c, l-1)}
			}
			chained = append(chained, in)
		}
	}
	mk := func(name string, pick func(cost) time.Duration) pipeline.Stage {
		return pipeline.StageFunc{
			StageSpec: pipeline.StageSpec{Name: name, Workers: workers},
			RunFunc: func(_ context.Context, items []*pipeline.Item) error {
				for _, it := range items {
					time.Sleep(pick(costs[it.Input.Name]))
				}
				return nil
			},
		}
	}
	g, err := pipeline.NewGraph(
		[]pipeline.Stage{
			mk(pipeline.StageCompile, func(c cost) time.Duration { return c.compile }),
			mk(pipeline.StageJudge, func(c cost) time.Duration { return c.judge }),
		},
		[2]string{pipeline.StageCompile, pipeline.StageJudge},
	)
	if err != nil {
		b.Fatal(err)
	}
	total := chains * depth

	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		files := 0
		for i := 0; i < b.N; i++ {
			for _, level := range levels {
				if _, _, err := pipeline.RunGraph(context.Background(), pipeline.Config{}, g, level); err != nil {
					b.Fatal(err)
				}
			}
			files += total
		}
		b.ReportMetric(perf.Rate(files, b.Elapsed()), "files/sec")
	})
	b.Run("dag", func(b *testing.B) {
		b.ReportAllocs()
		files := 0
		for i := 0; i < b.N; i++ {
			if _, _, err := pipeline.RunGraph(context.Background(), pipeline.Config{}, g, chained); err != nil {
				b.Fatal(err)
			}
			files += total
		}
		b.ReportMetric(perf.Rate(files, b.Elapsed()), "files/sec")
	})
}

// BenchmarkThroughputServer — the judging daemon over loopback HTTP:
// the whole suite as one /v1/complete_batch shard per iteration,
// through the adaptive micro-batching server core.
func BenchmarkThroughputServer(b *testing.B) {
	inputs := benchSuiteInputs(b)
	llm, err := NewBackend(DefaultBackend, DefaultModelSeed)
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(server.Config{LLM: llm, Backend: DefaultBackend, Seed: DefaultModelSeed})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rb := remote.New(ts.URL, remote.WithBackoff(time.Millisecond))
	j := &judge.Judge{LLM: rb, Style: judge.Direct, Dialect: spec.OpenACC}
	codes := make([]string, len(inputs))
	for i, in := range inputs {
		codes[i] = in.Source
	}
	if _, err := j.EvaluateBatch(context.Background(), codes, nil); err != nil {
		b.Fatal(err) // warm the HTTP connection pool and the model tables
	}
	b.ReportAllocs()
	b.ResetTimer()
	files := 0
	for i := 0; i < b.N; i++ {
		if _, err := j.EvaluateBatch(context.Background(), codes, nil); err != nil {
			b.Fatal(err)
		}
		files += len(codes)
	}
	b.ReportMetric(perf.Rate(files, b.Elapsed()), "files/sec")
}

// BenchmarkThroughputFleetRouting — the fleet tier over loopback
// HTTP: the suite judged through a consistent-hash router fanning
// each batch out across two daemon replicas concurrently.
func BenchmarkThroughputFleetRouting(b *testing.B) {
	inputs := benchSuiteInputs(b)
	addrs := make([]string, 2)
	for i := range addrs {
		llm, err := NewBackend(DefaultBackend, DefaultModelSeed)
		if err != nil {
			b.Fatal(err)
		}
		srv := server.New(server.Config{LLM: llm, Backend: DefaultBackend, Seed: DefaultModelSeed})
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		addrs[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	rt, err := fleet.Dial(strings.Join(addrs, ","), remote.WithBackoff(time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	j := &judge.Judge{LLM: rt, Style: judge.Direct, Dialect: spec.OpenACC}
	codes := make([]string, len(inputs))
	for i, in := range inputs {
		codes[i] = in.Source
	}
	if _, err := j.EvaluateBatch(context.Background(), codes, nil); err != nil {
		b.Fatal(err) // warm the HTTP connection pools and the model tables
	}
	b.ReportAllocs()
	b.ResetTimer()
	files := 0
	for i := 0; i < b.N; i++ {
		if _, err := j.EvaluateBatch(context.Background(), codes, nil); err != nil {
			b.Fatal(err)
		}
		files += len(codes)
	}
	b.ReportMetric(perf.Rate(files, b.Elapsed()), "files/sec")
}

// BenchmarkThroughputEnsemble — a three-seat panel judging the suite:
// one sharded pass fanning every batch out to all members
// concurrently.
func BenchmarkThroughputEnsemble(b *testing.B) {
	inputs := benchSuiteInputs(b)
	panel, err := NewPanel("deepseek-sim+deepseek-sim+deepseek-sim", DefaultModelSeed)
	if err != nil {
		b.Fatal(err)
	}
	j := &judge.Judge{LLM: panel, Style: judge.Direct, Dialect: spec.OpenACC}
	codes := make([]string, len(inputs))
	for i, in := range inputs {
		codes[i] = in.Source
	}
	if _, err := j.EvaluateBatch(context.Background(), codes, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	files := 0
	for i := 0; i < b.N; i++ {
		if _, err := j.EvaluateBatch(context.Background(), codes, nil); err != nil {
			b.Fatal(err)
		}
		files += len(codes)
	}
	b.ReportMetric(perf.Rate(files, b.Elapsed()), "files/sec")
}
