package corpus

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/testlang"
)

// TestEveryTemplateCompilesAndPasses is the corpus conformance gate:
// every template, in every language it renders, must compile under the
// idealised reference compiler and exit 0 (brittle templates are
// allowed to fail at run time — that is their documented purpose).
func TestEveryTemplateCompilesAndPasses(t *testing.T) {
	for _, d := range []spec.Dialect{spec.OpenACC, spec.OpenMP} {
		ref := compiler.Reference(d)
		for _, id := range TemplateIDs(d) {
			for _, lang := range []testlang.Language{testlang.LangC, testlang.LangCPP, testlang.LangFortran} {
				for seed := uint64(0); seed < 3; seed++ {
					tf, err := InstantiateTemplate(d, id, lang, seed)
					if err != nil {
						if lang == testlang.LangFortran {
							continue // template has no Fortran rendering
						}
						t.Fatalf("%v/%s/%v: %v", d, id, lang, err)
					}
					res := ref.Compile(tf.Name, tf.Source, tf.Lang)
					if !res.OK {
						t.Errorf("%v/%s/%v seed %d failed reference compile:\n%s\n--- source ---\n%s",
							d, id, lang, seed, res.Stderr, tf.Source)
						continue
					}
					if tf.Lang == testlang.LangFortran {
						continue // checked only, not executed
					}
					run := machine.Run(res.Object, machine.Options{})
					if run.ReturnCode != 0 && !tf.Brittle {
						t.Errorf("%v/%s/%v seed %d exited %d:\nstdout: %s\nstderr: %s\n--- source ---\n%s",
							d, id, lang, seed, run.ReturnCode, run.Stdout, run.Stderr, tf.Source)
					}
				}
			}
		}
	}
}

// TestSupportedTemplatesPassPairedPersonality checks that templates
// not marked unsupported also build under the dialect's paired
// personality (nvc / clang), which is what the pipeline uses.
func TestSupportedTemplatesPassPairedPersonality(t *testing.T) {
	for _, d := range []spec.Dialect{spec.OpenACC, spec.OpenMP} {
		pers := compiler.ForDialect(d)
		for _, id := range TemplateIDs(d) {
			tf, err := InstantiateTemplate(d, id, testlang.LangC, 1)
			if err != nil {
				t.Fatal(err)
			}
			res := pers.Compile(tf.Name, tf.Source, tf.Lang)
			if tf.Unsupported {
				if res.OK {
					t.Errorf("%v/%s marked unsupported but %s accepted it", d, id, pers.Name)
				}
				continue
			}
			if !res.OK {
				t.Errorf("%v/%s rejected by %s:\n%s", d, id, pers.Name, res.Stderr)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Dialect: spec.OpenACC, Seed: 99}
	a := Generate(cfg, 50)
	b := Generate(cfg, 50)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Source != b[i].Source || a[i].Name != b[i].Name {
			t.Fatalf("file %d differs between identical-seed generations", i)
		}
	}
	c := Generate(Config{Dialect: spec.OpenACC, Seed: 100}, 50)
	same := 0
	for i := range a {
		if a[i].Source == c[i].Source {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical suites")
	}
}

func TestGenerateLanguageMix(t *testing.T) {
	cfg := Config{
		Dialect: spec.OpenACC,
		Langs:   []testlang.Language{testlang.LangC, testlang.LangCPP, testlang.LangFortran},
		Seed:    7,
	}
	files := Generate(cfg, 300)
	counts := map[testlang.Language]int{}
	for _, f := range files {
		counts[f.Lang]++
		if !strings.HasSuffix(f.Name, f.Lang.Ext()) {
			t.Errorf("file %q has wrong extension for %v", f.Name, f.Lang)
		}
	}
	if counts[testlang.LangC] < 80 || counts[testlang.LangCPP] < 80 {
		t.Errorf("C/C++ underrepresented: %v", counts)
	}
	// Fortran is deliberately a small share (only a few templates have
	// Fortran renderings), matching the paper's "small set of Fortran
	// files" in the Part-One OpenACC suite.
	if counts[testlang.LangFortran] < 10 {
		t.Errorf("Fortran absent from mixed suite: %v", counts)
	}
}

func TestUnsupportedFraction(t *testing.T) {
	cfg := Config{Dialect: spec.OpenACC, Seed: 11, UnsupportedFraction: 0.3}
	files := Generate(cfg, 1000)
	n := 0
	for _, f := range files {
		if f.Unsupported {
			n++
		}
	}
	if n < 240 || n > 360 {
		t.Fatalf("unsupported count = %d/1000, want ~300", n)
	}
	// Zero fraction: none.
	for _, f := range Generate(Config{Dialect: spec.OpenACC, Seed: 11}, 200) {
		if f.Unsupported {
			t.Fatal("unsupported template selected with zero fraction")
		}
	}
}

func TestBrittleFraction(t *testing.T) {
	cfg := Config{Dialect: spec.OpenMP, Seed: 13, BrittleFraction: 0.2}
	files := Generate(cfg, 1000)
	n := 0
	for _, f := range files {
		if f.Brittle {
			n++
		}
	}
	if n < 140 || n > 260 {
		t.Fatalf("brittle count = %d/1000, want ~200", n)
	}
}

// TestBrittleTemplateActuallyBrittle documents that the exact-compare
// template fails under multi-worker reduction reordering for at least
// some sizes — the mechanism behind OpenMP valid-file run failures.
func TestBrittleTemplateActuallyBrittle(t *testing.T) {
	pers := compiler.ForDialect(spec.OpenMP)
	failures := 0
	total := 0
	for seed := uint64(0); seed < 10; seed++ {
		tf, err := InstantiateTemplate(spec.OpenMP, "exact_float_compare", testlang.LangC, seed)
		if err != nil {
			t.Fatal(err)
		}
		res := pers.Compile(tf.Name, tf.Source, tf.Lang)
		if !res.OK {
			t.Fatalf("brittle template failed compile:\n%s", res.Stderr)
		}
		for _, w := range []int{2, 4, 8} {
			total++
			if machine.Run(res.Object, machine.Options{Workers: w}).ReturnCode != 0 {
				failures++
			}
		}
	}
	t.Logf("brittle template failed %d/%d runs", failures, total)
	if failures == 0 {
		t.Error("exact_float_compare never failed; brittleness mechanism broken")
	}
}

func TestRandomPlainCompilesBothPersonalities(t *testing.T) {
	r := rng.New(21)
	for i := 0; i < 20; i++ {
		src := randomPlainC(r, false)
		for _, d := range []spec.Dialect{spec.OpenACC, spec.OpenMP} {
			res := compiler.ForDialect(d).Compile("rnd.c", src, testlang.LangC)
			if !res.OK {
				t.Fatalf("plain random C rejected by %v:\n%s\n%s", d, res.Stderr, src)
			}
			run := machine.Run(res.Object, machine.Options{})
			if run.ReturnCode != 0 {
				t.Fatalf("plain random C exited %d under %v:\n%s\n%s", run.ReturnCode, d, run.Stderr, src)
			}
			if strings.Contains(src, "#pragma") {
				t.Fatal("random code contains a pragma")
			}
		}
	}
}

func TestRandomImplicitSplitsPersonalities(t *testing.T) {
	r := rng.New(22)
	for i := 0; i < 10; i++ {
		src := randomPlainC(r, true)
		// Strict nvc model: compile error.
		if res := compiler.NVCSim().Compile("rnd.c", src, testlang.LangC); res.OK {
			t.Fatalf("nvc accepted implicit-call random code:\n%s", src)
		}
		// Lenient clang model: compiles, traps at run time.
		res := compiler.ClangSim().Compile("rnd.c", src, testlang.LangC)
		if !res.OK {
			t.Fatalf("clang rejected implicit-call random code:\n%s", res.Stderr)
		}
		run := machine.Run(res.Object, machine.Options{})
		if run.ReturnCode == 0 {
			t.Fatalf("implicit-call random code ran clean:\n%s", src)
		}
	}
}

func TestRandomGarbageFailsEverywhere(t *testing.T) {
	r := rng.New(23)
	for i := 0; i < 10; i++ {
		src := randomGarbage(r)
		for _, d := range []spec.Dialect{spec.OpenACC, spec.OpenMP} {
			if res := compiler.ForDialect(d).Compile("rnd.c", src, testlang.LangC); res.OK {
				t.Fatalf("garbage compiled under %v:\n%s", d, src)
			}
		}
	}
}

func TestRandomFortranChecks(t *testing.T) {
	r := rng.New(24)
	for i := 0; i < 10; i++ {
		src := randomFortran(r)
		res := compiler.NVCSim().Compile("rnd.f90", src, testlang.LangFortran)
		if !res.OK {
			t.Fatalf("random Fortran rejected:\n%s\n%s", res.Stderr, src)
		}
		if strings.Contains(src, "!$acc") || strings.Contains(src, "!$omp") {
			t.Fatal("random Fortran contains directives")
		}
	}
}

func TestRandomModesDistribution(t *testing.T) {
	r := rng.New(25)
	opts := DefaultRandomOpts()
	garbage := 0
	const n = 400
	for i := 0; i < n; i++ {
		src := RandomC(r, opts)
		if _, errs := testlang.ParseFile(src, testlang.LangC, spec.OpenACC); len(errs) > 0 {
			garbage++
		}
	}
	frac := float64(garbage) / n
	if frac < 0.15 || frac > 0.40 {
		t.Fatalf("garbage fraction = %v, want ~0.25", frac)
	}
}

func TestRandomForLangSurface(t *testing.T) {
	r := rng.New(26)
	cpp := RandomForLang(r, testlang.LangCPP, RandomOpts{PlainProb: 1})
	if !strings.HasPrefix(cpp, "using namespace std;") {
		t.Fatal("C++ random file lacks C++ surface marker")
	}
	f90 := RandomForLang(r, testlang.LangFortran, DefaultRandomOpts())
	if !strings.Contains(f90, "program ") {
		t.Fatal("Fortran random file lacks program unit")
	}
}

func TestInstantiateUnknownTemplate(t *testing.T) {
	if _, err := InstantiateTemplate(spec.OpenACC, "no_such_template", testlang.LangC, 0); err == nil {
		t.Fatal("unknown template did not error")
	}
}

func TestGeneratedSuiteCompilesUnderReference(t *testing.T) {
	for _, d := range []spec.Dialect{spec.OpenACC, spec.OpenMP} {
		ref := compiler.Reference(d)
		files := Generate(Config{Dialect: d, Seed: 31, Langs: []testlang.Language{testlang.LangC, testlang.LangCPP}}, 60)
		for _, f := range files {
			res := ref.Compile(f.Name, f.Source, f.Lang)
			if !res.OK {
				t.Errorf("%s failed reference compile:\n%s", f.Name, res.Stderr)
			}
		}
	}
}
