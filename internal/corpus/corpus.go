// Package corpus generates the synthetic V&V testsuites the
// experiments probe. The paper draws its files from the OpenACC V&V
// and OpenMP (SOLLVE) V&V repositories; this generator reproduces the
// house style of those suites — initialise data, compute in parallel
// under directives, recompute serially, compare, report PASS/FAIL via
// the exit code — across a battery of feature templates with seeded
// parameter variation.
//
// Two generator knobs drive experiment effects documented in
// DESIGN.md:
//
//   - UnsupportedFraction: share of OpenACC files drawn from templates
//     that use features the simulated nvc rejects, reproducing the
//     paper's observation that a slice of valid hand-written tests
//     fails a given toolchain (Tables IV/VI valid-row gap).
//   - BrittleFraction: share of OpenMP files drawn from a template
//     whose exact floating-point comparison is brittle under parallel
//     reduction reordering, the (small) OpenMP valid-failure source.
package corpus

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/testlang"
)

// TestFile is one generated test.
type TestFile struct {
	// Name is the file name, e.g. "acc_data_copyin_0042.c".
	Name    string
	Source  string
	Lang    testlang.Language
	Dialect spec.Dialect
	// Template is the generating template's id.
	Template string
	// Unsupported marks files whose template uses a feature the paired
	// compiler personality rejects.
	Unsupported bool
	// Brittle marks files whose pass criterion is exact float equality
	// (may legitimately fail under reduction reordering).
	Brittle bool
}

// Config controls suite generation.
type Config struct {
	Dialect spec.Dialect
	// Langs to draw from; default C only.
	Langs []testlang.Language
	// Seed drives all variation.
	Seed uint64
	// UnsupportedFraction of files from personality-unsupported
	// templates (OpenACC: default 0).
	UnsupportedFraction float64
	// BrittleFraction of files from the brittle-comparison template
	// (OpenMP: default 0).
	BrittleFraction float64
}

// params feed a template instance.
type params struct {
	n    int
	m    int
	tag  int
	lang testlang.Language
}

// template is one test generator.
type template struct {
	id          string
	unsupported bool
	brittle     bool
	// gen renders C-dialect source. Required.
	gen func(p params) string
	// fortran renders the Fortran version; nil when the template has
	// no Fortran rendering.
	fortran func(p params) string
}

// Generate produces n test files deterministically from cfg.
func Generate(cfg Config, n int) []TestFile {
	langs := cfg.Langs
	if len(langs) == 0 {
		langs = []testlang.Language{testlang.LangC}
	}
	base := rng.New(cfg.Seed)
	var templates []template
	if cfg.Dialect == spec.OpenACC {
		templates = accTemplates
	} else {
		templates = ompTemplates
	}
	var normal, unsupported, brittle []template
	for _, t := range templates {
		switch {
		case t.unsupported:
			unsupported = append(unsupported, t)
		case t.brittle:
			brittle = append(brittle, t)
		default:
			normal = append(normal, t)
		}
	}

	files := make([]TestFile, 0, n)
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("file-%04d", i)
		r := base.Split(label)
		var tmpl template
		switch {
		case len(unsupported) > 0 && r.Bool(cfg.UnsupportedFraction):
			tmpl = unsupported[r.Intn(len(unsupported))]
		case len(brittle) > 0 && r.Bool(cfg.BrittleFraction):
			tmpl = brittle[r.Intn(len(brittle))]
		default:
			tmpl = normal[r.Intn(len(normal))]
		}
		lang := langs[r.Intn(len(langs))]
		if lang == testlang.LangFortran && tmpl.fortran == nil {
			lang = testlang.LangC
		}
		p := params{
			n:    []int{64, 128, 256, 512, 1024}[r.Intn(5)],
			m:    []int{8, 16, 32}[r.Intn(3)],
			tag:  r.Intn(1000),
			lang: lang,
		}
		name := fmt.Sprintf("%s_%s_%04d%s", cfg.Dialect.Sentinel(), tmpl.id, i, lang.Ext())
		var src string
		if lang == testlang.LangFortran {
			src = tmpl.fortran(p)
		} else {
			src = renderForLang(tmpl.gen(p), lang)
		}
		files = append(files, TestFile{
			Name:        name,
			Source:      header(name, cfg.Dialect, p.tag, lang) + src,
			Lang:        lang,
			Dialect:     cfg.Dialect,
			Template:    tmpl.id,
			Unsupported: tmpl.unsupported,
			Brittle:     tmpl.brittle,
		})
	}
	return files
}

// header renders the per-file identification comment the V&V suites
// carry at the top of every test. Besides realism it guarantees every
// generated file is textually unique, so identically-parameterised
// template instances remain distinct documents (prompts, hashes,
// mutation targets).
func header(name string, d spec.Dialect, tag int, lang testlang.Language) string {
	if lang == testlang.LangFortran {
		return fmt.Sprintf("! %s\n! %s V&V functional test (auto-generated, variant %d)\n\n", name, d, tag)
	}
	return fmt.Sprintf("// %s\n// %s V&V functional test (auto-generated, variant %d)\n\n", name, d, tag)
}

// renderForLang adapts a C source to C++ surface conventions when the
// target is a .cpp file, as the V&V suites' C++ tests do.
func renderForLang(src string, lang testlang.Language) string {
	if lang != testlang.LangCPP {
		return src
	}
	out := "// C++ variant generated from the C test\n"
	out += "using namespace std;\n"
	return out + src
}

// TemplateIDs lists the ids for a dialect (tests iterate all of them).
func TemplateIDs(d spec.Dialect) []string {
	var ts []template
	if d == spec.OpenACC {
		ts = accTemplates
	} else {
		ts = ompTemplates
	}
	ids := make([]string, len(ts))
	for i, t := range ts {
		ids[i] = t.id
	}
	return ids
}

// TemplateUnsupported reports whether a template uses a feature the
// dialect's paired compiler personality rejects.
func TemplateUnsupported(d spec.Dialect, id string) bool {
	var ts []template
	if d == spec.OpenACC {
		ts = accTemplates
	} else {
		ts = ompTemplates
	}
	for _, t := range ts {
		if t.id == id {
			return t.unsupported
		}
	}
	return false
}

// InstantiateTemplate renders one template by id with deterministic
// mid-sized parameters (tests and examples use this).
func InstantiateTemplate(d spec.Dialect, id string, lang testlang.Language, seed uint64) (TestFile, error) {
	var ts []template
	if d == spec.OpenACC {
		ts = accTemplates
	} else {
		ts = ompTemplates
	}
	for _, t := range ts {
		if t.id != id {
			continue
		}
		r := rng.New(seed)
		p := params{n: 256, m: 16, tag: r.Intn(1000), lang: lang}
		name := fmt.Sprintf("%s_%s_s%d%s", d.Sentinel(), id, seed, lang.Ext())
		var src string
		if lang == testlang.LangFortran {
			if t.fortran == nil {
				return TestFile{}, fmt.Errorf("corpus: template %q has no Fortran rendering", id)
			}
			src = t.fortran(p)
		} else {
			src = renderForLang(t.gen(p), lang)
		}
		src = header(name, d, p.tag, lang) + src
		return TestFile{
			Name:        name,
			Source:      src,
			Lang:        lang,
			Dialect:     d,
			Template:    id,
			Unsupported: t.unsupported,
			Brittle:     t.brittle,
		}, nil
	}
	return TestFile{}, fmt.Errorf("corpus: unknown template %q for %v", id, d)
}
