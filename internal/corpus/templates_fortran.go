package corpus

import "fmt"

// Fortran renderings of selected OpenACC templates. The paper's
// Part-One OpenACC suite mixes C, C++ and a small set of Fortran
// files; these cover that set.

func accVecAddF90(p params) string {
	return fmt.Sprintf(`program vecadd
    use openacc
    implicit none
    integer, parameter :: n = %d
    integer :: i, errs
    real(8) :: a(n), b(n), c(n)

    do i = 1, n
        a(i) = i * 0.5 + %d
        b(i) = i * 2.0
        c(i) = 0.0
    end do

    !$acc parallel loop copyin(a, b) copyout(c)
    do i = 1, n
        c(i) = a(i) + b(i)
    end do

    errs = 0
    do i = 1, n
        if (abs(c(i) - (a(i) + b(i))) > 1e-9) then
            errs = errs + 1
        end if
    end do

    if (errs /= 0) then
        print *, "Test failed with errors:", errs
        stop 1
    end if
    print *, "Test passed"
end program vecadd
`, p.n, p.tag%7)
}

func accSaxpyF90(p params) string {
	return fmt.Sprintf(`program saxpy
    use openacc
    implicit none
    integer, parameter :: n = %d
    integer :: i, errs
    real(8) :: x(n), y(n), ref(n), alpha

    alpha = %d.5
    do i = 1, n
        x(i) = i * 0.25
        y(i) = n - i
        ref(i) = alpha * x(i) + y(i)
    end do

    !$acc parallel loop copyin(x) copy(y)
    do i = 1, n
        y(i) = alpha * x(i) + y(i)
    end do

    errs = 0
    do i = 1, n
        if (abs(y(i) - ref(i)) > 1e-9) then
            errs = errs + 1
        end if
    end do

    if (errs /= 0) then
        print *, "FAIL:", errs
        stop 1
    end if
    print *, "PASS"
end program saxpy
`, p.n, p.tag%5)
}

func accReductionSumF90(p params) string {
	return fmt.Sprintf(`program redsum
    use openacc
    implicit none
    integer, parameter :: n = %d
    integer :: i
    integer(8) :: total, expect
    integer :: a(n)

    expect = 0
    do i = 1, n
        a(i) = mod(i * %d, 97)
        expect = expect + a(i)
    end do

    total = 0
    !$acc parallel loop copyin(a) reduction(+:total)
    do i = 1, n
        total = total + a(i)
    end do

    if (total /= expect) then
        print *, "FAIL: total", total, "expected", expect
        stop 1
    end if
    print *, "PASS"
end program redsum
`, p.n, 3+p.tag%11)
}

func accDataRegionF90(p params) string {
	return fmt.Sprintf(`program dataregion
    use openacc
    implicit none
    integer, parameter :: n = %d
    integer :: i, errs
    integer :: a(n), b(n), c(n)

    do i = 1, n
        a(i) = i + %d
        b(i) = 0
        c(i) = 0
    end do

    !$acc data copyin(a) create(b) copyout(c)
    !$acc parallel loop present(a, b)
    do i = 1, n
        b(i) = a(i) * 2
    end do
    !$acc parallel loop present(b, c)
    do i = 1, n
        c(i) = b(i) + 1
    end do
    !$acc end data

    errs = 0
    do i = 1, n
        if (c(i) /= a(i) * 2 + 1) then
            errs = errs + 1
        end if
    end do

    if (errs /= 0) then
        print *, "Test failed:", errs
        stop 1
    end if
    print *, "Test passed"
end program dataregion
`, p.n, p.tag%9)
}
