package corpus

import "fmt"

// accTemplates is the OpenACC battery. Every template follows the V&V
// house style: initialise, compute under directives, recompute
// serially, compare, FAIL via a trailing check block, PASS via exit 0.
// The trailing check block being the last bracketed section of the
// file is deliberate: it is what the paper's "removed last bracketed
// section" mutation excises, leaving a clean-running test with no
// verification logic.
var accTemplates = []template{
	{id: "parallel_loop_vecadd", gen: accVecAdd, fortran: accVecAddF90},
	{id: "parallel_loop_saxpy", gen: accSaxpy, fortran: accSaxpyF90},
	{id: "reduction_sum", gen: accReductionSum, fortran: accReductionSumF90},
	{id: "reduction_max", gen: accReductionMax},
	{id: "data_region", gen: accDataRegion, fortran: accDataRegionF90},
	{id: "enter_exit_update", gen: accEnterExit},
	{id: "kernels_loop", gen: accKernelsLoop},
	{id: "serial_construct", gen: accSerial},
	{id: "atomic_update", gen: accAtomic},
	{id: "gang_vector_matvec", gen: accGangVector},
	{id: "collapse_matmul", gen: accCollapseMatmul},
	{id: "private_clause", gen: accPrivate},
	{id: "firstprivate_clause", gen: accFirstPrivate},
	{id: "if_clause", gen: accIfClause},
	{id: "stencil_1d", gen: accStencil},
	{id: "routine_seq", gen: accRoutine},
	{id: "tile_clause", gen: accTile, unsupported: true},
	{id: "host_data_use_device", gen: accHostData, unsupported: true},
	{id: "no_create_clause", gen: accNoCreate, unsupported: true},
	{id: "set_directive", gen: accSetDirective, unsupported: true},
}

func accVecAdd(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#define N %d

int main()
{
    double *a = (double *)malloc(N * sizeof(double));
    double *b = (double *)malloc(N * sizeof(double));
    double *c = (double *)malloc(N * sizeof(double));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        a[i] = i * 0.5 + %d;
        b[i] = i * 2.0;
        c[i] = 0.0;
    }
#pragma acc parallel loop copyin(a[0:N], b[0:N]) copyout(c[0:N])
    for (int i = 0; i < N; i++) {
        c[i] = a[i] + b[i];
    }
    for (int i = 0; i < N; i++) {
        if (fabs(c[i] - (a[i] + b[i])) > 1e-9) {
            errs = errs + 1;
        }
    }
    free(a);
    free(b);
    free(c);
    if (errs != 0) {
        printf("Test failed with %%d errors\n", errs);
        return 1;
    }
    printf("Test passed\n");
    return 0;
}
`, p.n, p.tag%7)
}

func accSaxpy(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#define N %d

int main()
{
    double *x = (double *)malloc(N * sizeof(double));
    double *y = (double *)malloc(N * sizeof(double));
    double *ref = (double *)malloc(N * sizeof(double));
    double alpha = %d.5;
    int errs = 0;
    for (int i = 0; i < N; i++) {
        x[i] = i * 0.25;
        y[i] = N - i;
        ref[i] = alpha * x[i] + y[i];
    }
#pragma acc parallel loop copyin(x[0:N]) copy(y[0:N])
    for (int i = 0; i < N; i++) {
        y[i] = alpha * x[i] + y[i];
    }
    for (int i = 0; i < N; i++) {
        if (fabs(y[i] - ref[i]) > 1e-9) {
            errs++;
        }
    }
    free(x);
    free(y);
    free(ref);
    if (errs != 0) {
        printf("FAIL: %%d mismatches\n", errs);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.n, p.tag%5)
}

func accReductionSum(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    long sum = 0;
    long expect = 0;
    for (int i = 0; i < N; i++) {
        a[i] = (i * %d) %% 97;
        expect += a[i];
    }
#pragma acc parallel loop copyin(a[0:N]) reduction(+:sum)
    for (int i = 0; i < N; i++) {
        sum += a[i];
    }
    free(a);
    if (sum != expect) {
        printf("FAIL: sum %%ld expected %%ld\n", sum, expect);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.n, 3+p.tag%11)
}

func accReductionMax(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    double *a = (double *)malloc(N * sizeof(double));
    double best = -1.0;
    double expect = -1.0;
    for (int i = 0; i < N; i++) {
        a[i] = (double)((i * %d) %% 251);
        if (a[i] > expect) {
            expect = a[i];
        }
    }
#pragma acc parallel loop copyin(a[0:N]) reduction(max:best)
    for (int i = 0; i < N; i++) {
        if (a[i] > best) {
            best = a[i];
        }
    }
    free(a);
    if (best != expect) {
        printf("FAIL: max %%f expected %%f\n", best, expect);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.n, 7+p.tag%13)
}

func accDataRegion(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    int *b = (int *)malloc(N * sizeof(int));
    int *c = (int *)malloc(N * sizeof(int));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        a[i] = i + %d;
        b[i] = 0;
        c[i] = 0;
    }
#pragma acc data copyin(a[0:N]) create(b[0:N]) copyout(c[0:N])
    {
#pragma acc parallel loop present(a[0:N], b[0:N])
        for (int i = 0; i < N; i++) {
            b[i] = a[i] * 2;
        }
#pragma acc parallel loop present(b[0:N], c[0:N])
        for (int i = 0; i < N; i++) {
            c[i] = b[i] + 1;
        }
    }
    for (int i = 0; i < N; i++) {
        if (c[i] != a[i] * 2 + 1) {
            errs++;
        }
    }
    free(a);
    free(b);
    free(c);
    if (errs != 0) {
        printf("Test failed: %%d errors\n", errs);
        return 1;
    }
    printf("Test passed\n");
    return 0;
}
`, p.n, p.tag%9)
}

func accEnterExit(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    double *a = (double *)malloc(N * sizeof(double));
    double *b = (double *)malloc(N * sizeof(double));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        a[i] = i * 1.5;
        b[i] = 0.0;
    }
#pragma acc enter data copyin(a[0:N]) create(b[0:N])
#pragma acc parallel loop present(a[0:N], b[0:N])
    for (int i = 0; i < N; i++) {
        b[i] = a[i] * a[i];
    }
#pragma acc update host(b[0:N])
    for (int i = 0; i < N; i++) {
        if (b[i] != a[i] * a[i]) {
            errs++;
        }
    }
#pragma acc exit data copyout(b[0:N]) delete(a)
    free(a);
    free(b);
    if (errs != 0) {
        printf("FAIL: %%d errors\n", errs);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.n)
}

func accKernelsLoop(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *src = (int *)malloc(N * sizeof(int));
    int *dst = (int *)malloc(N * sizeof(int));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        src[i] = N - i + %d;
        dst[i] = 0;
    }
#pragma acc kernels loop copyin(src[0:N]) copyout(dst[0:N])
    for (int i = 0; i < N; i++) {
        dst[i] = src[i] * 3 - 1;
    }
    for (int i = 0; i < N; i++) {
        if (dst[i] != src[i] * 3 - 1) {
            errs++;
        }
    }
    free(src);
    free(dst);
    if (errs != 0) {
        printf("Test FAILED (%%d wrong)\n", errs);
        return 1;
    }
    printf("Test PASSED\n");
    return 0;
}
`, p.n, p.tag%4)
}

func accSerial(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#define N %d

int main()
{
    int data[N];
    int checksum = 0;
    for (int i = 0; i < N; i++) {
        data[i] = i;
    }
#pragma acc serial copyin(data) copy(checksum)
    {
        int local = 0;
        for (int i = 0; i < N; i++) {
            local += data[i];
        }
        checksum = local;
    }
    if (checksum != (N - 1) * N / 2) {
        printf("FAIL: checksum %%d\n", checksum);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.m*8)
}

func accAtomic(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    int count = 0;
    for (int i = 0; i < N; i++) {
        a[i] = i %% 2;
    }
#pragma acc parallel loop copyin(a[0:N]) copy(count)
    for (int i = 0; i < N; i++) {
        if (a[i] == 1) {
#pragma acc atomic update
            count += 1;
        }
    }
    free(a);
    if (count != N / 2) {
        printf("FAIL: count %%d expected %%d\n", count, N / 2);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.n)
}

func accGangVector(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <math.h>
#define R %d
#define C %d

int main()
{
    double m[R][C];
    double v[C];
    double out[R];
    int errs = 0;
    for (int j = 0; j < C; j++) {
        v[j] = j * 0.5;
    }
    for (int i = 0; i < R; i++) {
        out[i] = 0.0;
        for (int j = 0; j < C; j++) {
            m[i][j] = i + j + %d;
        }
    }
#pragma acc parallel loop gang copyin(m, v) copyout(out)
    for (int i = 0; i < R; i++) {
        double rowsum = 0.0;
#pragma acc loop vector reduction(+:rowsum)
        for (int j = 0; j < C; j++) {
            rowsum += m[i][j] * v[j];
        }
        out[i] = rowsum;
    }
    for (int i = 0; i < R; i++) {
        double expect = 0.0;
        for (int j = 0; j < C; j++) {
            expect += m[i][j] * v[j];
        }
        if (fabs(out[i] - expect) > 1e-6) {
            errs++;
        }
    }
    if (errs != 0) {
        printf("FAIL: %%d rows wrong\n", errs);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.m*2, p.m, p.tag%6)
}

func accCollapseMatmul(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <math.h>
#define N %d

int main()
{
    double a[N][N];
    double b[N][N];
    double c[N][N];
    int errs = 0;
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            a[i][j] = i - j;
            b[i][j] = i + 2 * j + %d;
            c[i][j] = 0.0;
        }
    }
#pragma acc parallel loop collapse(2) copyin(a, b) copyout(c)
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            double s = 0.0;
            for (int k = 0; k < N; k++) {
                s += a[i][k] * b[k][j];
            }
            c[i][j] = s;
        }
    }
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            double expect = 0.0;
            for (int k = 0; k < N; k++) {
                expect += a[i][k] * b[k][j];
            }
            if (fabs(c[i][j] - expect) > 1e-6) {
                errs++;
            }
        }
    }
    if (errs != 0) {
        printf("FAIL: %%d elements wrong\n", errs);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.m, p.tag%5)
}

func accPrivate(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    int *b = (int *)malloc(N * sizeof(int));
    int t = 0;
    int errs = 0;
    for (int i = 0; i < N; i++) {
        a[i] = i + %d;
        b[i] = 0;
    }
#pragma acc parallel loop private(t) copyin(a[0:N]) copyout(b[0:N])
    for (int i = 0; i < N; i++) {
        t = a[i] * 2;
        b[i] = t + 1;
    }
    for (int i = 0; i < N; i++) {
        if (b[i] != a[i] * 2 + 1) {
            errs++;
        }
    }
    free(a);
    free(b);
    if (errs != 0) {
        printf("FAIL: %%d errors\n", errs);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.n, p.tag%8)
}

func accFirstPrivate(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#define N %d

int main()
{
    double *x = (double *)malloc(N * sizeof(double));
    double *y = (double *)malloc(N * sizeof(double));
    double scale = %d.25;
    int errs = 0;
    for (int i = 0; i < N; i++) {
        x[i] = i;
        y[i] = 0.0;
    }
#pragma acc parallel loop firstprivate(scale) copyin(x[0:N]) copyout(y[0:N])
    for (int i = 0; i < N; i++) {
        y[i] = x[i] * scale;
    }
    for (int i = 0; i < N; i++) {
        if (fabs(y[i] - x[i] * scale) > 1e-9) {
            errs++;
        }
    }
    free(x);
    free(y);
    if (errs != 0) {
        printf("FAIL: %%d errors\n", errs);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.n, 1+p.tag%4)
}

func accIfClause(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    int use_device = %d;
    int errs = 0;
    for (int i = 0; i < N; i++) {
        a[i] = 0;
    }
#pragma acc parallel loop if(use_device) copy(a[0:N])
    for (int i = 0; i < N; i++) {
        a[i] = i * 5;
    }
    for (int i = 0; i < N; i++) {
        if (a[i] != i * 5) {
            errs++;
        }
    }
    free(a);
    if (errs != 0) {
        printf("FAIL with %%d errors\n", errs);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.n, p.tag%2)
}

func accStencil(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#define N %d

int main()
{
    double *in = (double *)malloc(N * sizeof(double));
    double *out = (double *)malloc(N * sizeof(double));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        in[i] = (i * %d) %% 17;
        out[i] = 0.0;
    }
#pragma acc parallel loop copyin(in[0:N]) copyout(out[0:N])
    for (int i = 1; i < N - 1; i++) {
        out[i] = (in[i - 1] + in[i] + in[i + 1]) / 3.0;
    }
    for (int i = 1; i < N - 1; i++) {
        double expect = (in[i - 1] + in[i] + in[i + 1]) / 3.0;
        if (fabs(out[i] - expect) > 1e-9) {
            errs++;
        }
    }
    free(in);
    free(out);
    if (errs != 0) {
        printf("Stencil FAILED: %%d errors\n", errs);
        return 1;
    }
    printf("Stencil PASSED\n");
    return 0;
}
`, p.n, 3+p.tag%7)
}

func accRoutine(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

#pragma acc routine seq
int transform(int x)
{
    return x * x + %d;
}

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    int *b = (int *)malloc(N * sizeof(int));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        a[i] = i %% 50;
        b[i] = 0;
    }
#pragma acc parallel loop copyin(a[0:N]) copyout(b[0:N])
    for (int i = 0; i < N; i++) {
        b[i] = transform(a[i]);
    }
    for (int i = 0; i < N; i++) {
        if (b[i] != transform(a[i])) {
            errs++;
        }
    }
    free(a);
    free(b);
    if (errs != 0) {
        printf("FAIL: %%d errors\n", errs);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.n, p.tag%10)
}

func accTile(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <math.h>
#define N %d

int main()
{
    double a[N][N];
    double b[N][N];
    int errs = 0;
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            a[i][j] = i * j + %d;
            b[i][j] = 0.0;
        }
    }
#pragma acc parallel loop tile(8, 8) copyin(a) copyout(b)
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            b[i][j] = a[i][j] * 3.0;
        }
    }
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            if (fabs(b[i][j] - a[i][j] * 3.0) > 1e-9) {
                errs++;
            }
        }
    }
    if (errs != 0) {
        printf("FAIL: %%d errors\n", errs);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.m, p.tag%6)
}

func accHostData(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    int total = 0;
    for (int i = 0; i < N; i++) {
        a[i] = 1;
    }
#pragma acc data copyin(a[0:N])
    {
#pragma acc host_data use_device(a)
        {
            total = a[0];
        }
#pragma acc parallel loop present(a[0:N]) reduction(+:total)
        for (int i = 0; i < N; i++) {
            total += a[i];
        }
    }
    if (total != N + 1) {
        printf("FAIL: total %%d\n", total);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.n)
}

func accNoCreate(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    int *b = (int *)malloc(N * sizeof(int));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        a[i] = i;
        b[i] = 0;
    }
#pragma acc data copyin(a[0:N]) no_create(b[0:N])
    {
#pragma acc parallel loop present(a[0:N])
        for (int i = 0; i < N; i++) {
            b[i] = a[i] + 7;
        }
    }
    for (int i = 0; i < N; i++) {
        if (b[i] != a[i] + 7) {
            errs++;
        }
    }
    free(a);
    free(b);
    if (errs != 0) {
        printf("FAIL: %%d errors\n", errs);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.n)
}

func accSetDirective(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
#pragma acc set device_num(0)
    int *a = (int *)malloc(N * sizeof(int));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        a[i] = 0;
    }
#pragma acc parallel loop copy(a[0:N])
    for (int i = 0; i < N; i++) {
        a[i] = i + %d;
    }
    for (int i = 0; i < N; i++) {
        if (a[i] != i + %d) {
            errs++;
        }
    }
    free(a);
    if (errs != 0) {
        printf("FAIL: %%d errors\n", errs);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.n, p.tag%9, p.tag%9)
}
