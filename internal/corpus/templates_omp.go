package corpus

import "fmt"

// ompTemplates is the OpenMP battery, restricted to OpenMP <= 4.5
// features as the paper's Part-Two suite is.
var ompTemplates = []template{
	{id: "target_ttdpf_map", gen: ompTargetTTDPF},
	{id: "target_data_region", gen: ompTargetData},
	{id: "target_enter_exit", gen: ompTargetEnterExit},
	{id: "parallel_for_reduction", gen: ompParallelForReduction},
	{id: "atomic_counter", gen: ompAtomicCounter},
	{id: "critical_accumulate", gen: ompCritical},
	{id: "parallel_for_simd", gen: ompParallelForSimd},
	{id: "target_saxpy", gen: ompTargetSaxpy},
	{id: "collapse_matmul_target", gen: ompCollapseMatmul},
	{id: "single_region", gen: ompSingle},
	{id: "private_clauses", gen: ompPrivate},
	{id: "dot_product_target", gen: ompDotProduct},
	{id: "target_parallel_for", gen: ompTargetParallelFor},
	{id: "exact_float_compare", gen: ompExactFloat, brittle: true},
}

func ompTargetTTDPF(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    int *b = (int *)malloc(N * sizeof(int));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        a[i] = i + %d;
        b[i] = 0;
    }
#pragma omp target teams distribute parallel for map(to: a[0:N]) map(from: b[0:N])
    for (int i = 0; i < N; i++) {
        b[i] = a[i] * 2;
    }
    for (int i = 0; i < N; i++) {
        if (b[i] != a[i] * 2) {
            errs++;
        }
    }
    free(a);
    free(b);
    int status = 1;
    if (errs != 0) {
        printf("Test failed with %%d errors\n", errs);
    }
    if (!(errs != 0)) {
        printf("Test passed\n");
        status = 0;
    }
    return status;
}
`, p.n, p.tag%7)
}

func ompTargetData(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    int *b = (int *)malloc(N * sizeof(int));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        a[i] = i;
        b[i] = 0;
    }
#pragma omp target data map(to: a[0:N]) map(from: b[0:N])
    {
#pragma omp target teams distribute parallel for
        for (int i = 0; i < N; i++) {
            b[i] = a[i] + %d;
        }
    }
    for (int i = 0; i < N; i++) {
        if (b[i] != a[i] + %d) {
            errs++;
        }
    }
    free(a);
    free(b);
    int status = 1;
    if (errs != 0) {
        printf("FAIL: %%d errors\n", errs);
    }
    if (!(errs != 0)) {
        printf("PASS\n");
        status = 0;
    }
    return status;
}
`, p.n, 1+p.tag%9, 1+p.tag%9)
}

func ompTargetEnterExit(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    double *a = (double *)malloc(N * sizeof(double));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        a[i] = i * 0.5;
    }
#pragma omp target enter data map(to: a[0:N])
#pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
        a[i] = a[i] * 4.0;
    }
#pragma omp target update from(a[0:N])
    for (int i = 0; i < N; i++) {
        if (a[i] != i * 2.0) {
            errs++;
        }
    }
#pragma omp target exit data map(delete: a[0:N])
    free(a);
    int status = 1;
    if (errs != 0) {
        printf("FAIL: %%d errors\n", errs);
    }
    if (!(errs != 0)) {
        printf("PASS\n");
        status = 0;
    }
    return status;
}
`, p.n)
}

func ompParallelForReduction(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    long total = 0;
    long expect = 0;
    for (int i = 0; i < N; i++) {
        a[i] = (i * %d) %% 101;
        expect += a[i];
    }
#pragma omp parallel for reduction(+:total)
    for (int i = 0; i < N; i++) {
        total += a[i];
    }
    free(a);
    int status = 1;
    if (total != expect) {
        printf("FAIL: total %%ld expected %%ld\n", total, expect);
    }
    if (!(total != expect)) {
        printf("PASS\n");
        status = 0;
    }
    return status;
}
`, p.n, 5+p.tag%11)
}

func ompAtomicCounter(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *flags = (int *)malloc(N * sizeof(int));
    int count = 0;
    int expect = 0;
    for (int i = 0; i < N; i++) {
        flags[i] = (i %% 3) == 0;
        if (flags[i]) {
            expect++;
        }
    }
#pragma omp parallel for
    for (int i = 0; i < N; i++) {
        if (flags[i]) {
#pragma omp atomic
            count += 1;
        }
    }
    free(flags);
    int status = 1;
    if (count != expect) {
        printf("FAIL: count %%d expected %%d\n", count, expect);
    }
    if (!(count != expect)) {
        printf("PASS\n");
        status = 0;
    }
    return status;
}
`, p.n)
}

func ompCritical(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <math.h>

int main()
{
    double total = 0.0;
    int width = 0;
#pragma omp parallel num_threads(%d)
    {
#pragma omp single
        {
            width = omp_get_num_threads();
        }
#pragma omp critical
        {
            total = total + 1.5;
        }
    }
    if (fabs(total - 1.5 * width) > 1e-9) {
        printf("FAIL: total %%f width %%d\n", total, width);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, 2+p.tag%4)
}

func ompParallelForSimd(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#define N %d

int main()
{
    double *x = (double *)malloc(N * sizeof(double));
    double *y = (double *)malloc(N * sizeof(double));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        x[i] = i * 0.125;
        y[i] = 0.0;
    }
#pragma omp parallel for simd
    for (int i = 0; i < N; i++) {
        y[i] = x[i] * x[i] + 1.0;
    }
    for (int i = 0; i < N; i++) {
        if (fabs(y[i] - (x[i] * x[i] + 1.0)) > 1e-9) {
            errs++;
        }
    }
    free(x);
    free(y);
    int status = 1;
    if (errs != 0) {
        printf("FAIL: %%d errors\n", errs);
    }
    if (!(errs != 0)) {
        printf("PASS\n");
        status = 0;
    }
    return status;
}
`, p.n)
}

func ompTargetSaxpy(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#define N %d

int main()
{
    double *x = (double *)malloc(N * sizeof(double));
    double *y = (double *)malloc(N * sizeof(double));
    double *ref = (double *)malloc(N * sizeof(double));
    double alpha = %d.5;
    int errs = 0;
    for (int i = 0; i < N; i++) {
        x[i] = i * 0.5;
        y[i] = N - i;
        ref[i] = alpha * x[i] + y[i];
    }
#pragma omp target teams distribute parallel for map(to: x[0:N]) map(tofrom: y[0:N])
    for (int i = 0; i < N; i++) {
        y[i] = alpha * x[i] + y[i];
    }
    for (int i = 0; i < N; i++) {
        if (fabs(y[i] - ref[i]) > 1e-9) {
            errs++;
        }
    }
    free(x);
    free(y);
    free(ref);
    int status = 1;
    if (errs != 0) {
        printf("FAIL: %%d mismatches\n", errs);
    }
    if (!(errs != 0)) {
        printf("PASS\n");
        status = 0;
    }
    return status;
}
`, p.n, p.tag%5)
}

func ompCollapseMatmul(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <math.h>
#define N %d

int main()
{
    double a[N][N];
    double b[N][N];
    double c[N][N];
    int errs = 0;
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            a[i][j] = i + j;
            b[i][j] = i - j + %d;
            c[i][j] = 0.0;
        }
    }
#pragma omp target teams distribute parallel for collapse(2) map(to: a, b) map(from: c)
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            double s = 0.0;
            for (int k = 0; k < N; k++) {
                s += a[i][k] * b[k][j];
            }
            c[i][j] = s;
        }
    }
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            double expect = 0.0;
            for (int k = 0; k < N; k++) {
                expect += a[i][k] * b[k][j];
            }
            if (fabs(c[i][j] - expect) > 1e-6) {
                errs++;
            }
        }
    }
    int status = 1;
    if (errs != 0) {
        printf("FAIL: %%d elements wrong\n", errs);
    }
    if (!(errs != 0)) {
        printf("PASS\n");
        status = 0;
    }
    return status;
}
`, p.m, p.tag%4)
}

func ompSingle(p params) string {
	return fmt.Sprintf(`#include <stdio.h>

int main()
{
    int width = 0;
    int visits = 0;
#pragma omp parallel num_threads(%d)
    {
#pragma omp single
        {
            width = omp_get_num_threads();
            visits = visits + 1;
        }
    }
    if (width < 1 || visits != 1) {
        printf("FAIL: width %%d visits %%d\n", width, visits);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, 2+p.tag%6)
}

func ompPrivate(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    int t = 0;
    int offset = %d;
    int errs = 0;
    for (int i = 0; i < N; i++) {
        a[i] = 0;
    }
#pragma omp parallel for private(t) firstprivate(offset)
    for (int i = 0; i < N; i++) {
        t = i * 2 + offset;
        a[i] = t;
    }
    for (int i = 0; i < N; i++) {
        if (a[i] != i * 2 + offset) {
            errs++;
        }
    }
    free(a);
    int status = 1;
    if (errs != 0) {
        printf("FAIL: %%d errors\n", errs);
    }
    if (!(errs != 0)) {
        printf("PASS\n");
        status = 0;
    }
    return status;
}
`, p.n, 3+p.tag%5)
}

func ompDotProduct(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#define N %d

int main()
{
    double *x = (double *)malloc(N * sizeof(double));
    double *y = (double *)malloc(N * sizeof(double));
    double dot = 0.0;
    double expect = 0.0;
    for (int i = 0; i < N; i++) {
        x[i] = i %% 13;
        y[i] = (N - i) %% 7;
        expect += x[i] * y[i];
    }
#pragma omp target teams distribute parallel for map(to: x[0:N], y[0:N]) reduction(+:dot)
    for (int i = 0; i < N; i++) {
        dot += x[i] * y[i];
    }
    free(x);
    free(y);
    int status = 1;
    if (fabs(dot - expect) > 1e-6) {
        printf("FAIL: dot %%f expected %%f\n", dot, expect);
    }
    if (!(fabs(dot - expect) > 1e-6)) {
        printf("PASS\n");
        status = 0;
    }
    return status;
}
`, p.n)
}

func ompTargetParallelFor(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        a[i] = -1;
    }
#pragma omp target parallel for map(tofrom: a[0:N])
    for (int i = 0; i < N; i++) {
        a[i] = i %% %d;
    }
    for (int i = 0; i < N; i++) {
        if (a[i] != i %% %d) {
            errs++;
        }
    }
    free(a);
    int status = 1;
    if (errs != 0) {
        printf("FAIL: %%d errors\n", errs);
    }
    if (!(errs != 0)) {
        printf("PASS\n");
        status = 0;
    }
    return status;
}
`, p.n, 3+p.tag%9, 3+p.tag%9)
}

// ompExactFloat is the brittle template: it compares a parallel
// floating-point reduction against a serial sum with an unreasonably
// tight tolerance, so reduction reordering can legitimately fail it.
// The paper's valid suites contain a small number of such
// environment-sensitive tests; they are what makes the OpenMP
// pipeline's valid-recognition fractionally lower than the judge's.
func ompExactFloat(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#define N %d

int main()
{
    double *a = (double *)malloc(N * sizeof(double));
    double sum = 0.0;
    double expect = 0.0;
    for (int i = 0; i < N; i++) {
        a[i] = 0.1 * i + 0.01;
        expect += a[i];
    }
#pragma omp parallel for reduction(+:sum)
    for (int i = 0; i < N; i++) {
        sum += a[i];
    }
    free(a);
    int status = 1;
    if (fabs(sum - expect) > 1e-15) {
        printf("FAIL: sum %%.17g expected %%.17g\n", sum, expect);
    }
    if (!(fabs(sum - expect) > 1e-15)) {
        printf("PASS\n");
        status = 0;
    }
    return status;
}
`, p.n)
}
