package corpus

import (
	"fmt"
	"strings"

	"repro/internal/rng"
	"repro/internal/testlang"
)

// RandomOpts tunes the random non-directive code generator used by
// negative-probing issue 3 ("replaced file with randomly-generated
// non-OpenACC/OpenMP code").
//
// The three modes model how such files behave under real toolchains:
//
//   - plain: valid C with no directives. Compiles and runs clean under
//     both personalities — only a judge can flag it as "not a compiler
//     test for this model".
//   - implicit: valid C that calls undeclared functions. The strict
//     nvc model rejects it at compile time; the lenient clang model
//     compiles with a warning and then traps at run time on the
//     unresolved symbol.
//   - garbage: not C at all; fails the front end everywhere.
type RandomOpts struct {
	PlainProb    float64
	ImplicitProb float64
	// Remaining probability mass is garbage mode.
}

// DefaultRandomOpts mirrors the mode mix fitted in EXPERIMENTS.md.
func DefaultRandomOpts() RandomOpts {
	return RandomOpts{PlainProb: 0.55, ImplicitProb: 0.20}
}

var (
	randNouns = []string{
		"matrix", "buffer", "table", "queue", "payload", "window",
		"cursor", "ledger", "packet", "bucket", "stream", "grid",
	}
	randVerbs = []string{
		"process", "update", "shuffle", "encode", "collapse", "migrate",
		"digest", "balance", "rotate", "fold",
	}
	randTypes = []string{"int", "long", "double"}
)

// RandomC generates a random C file with no directives, in one of the
// three modes.
func RandomC(r *rng.Source, opts RandomOpts) string {
	roll := r.Float64()
	switch {
	case roll < opts.PlainProb:
		return randomPlainC(r, false)
	case roll < opts.PlainProb+opts.ImplicitProb:
		return randomPlainC(r, true)
	default:
		return randomGarbage(r)
	}
}

// RandomForLang generates random non-directive code matching the
// surface language of the replaced file.
func RandomForLang(r *rng.Source, lang testlang.Language, opts RandomOpts) string {
	if lang == testlang.LangFortran {
		return randomFortran(r)
	}
	src := RandomC(r, opts)
	if lang == testlang.LangCPP {
		return "using namespace std;\n" + src
	}
	return src
}

func randomPlainC(r *rng.Source, implicitCalls bool) string {
	var b strings.Builder
	b.WriteString("#include <stdio.h>\n#include <stdlib.h>\n\n")

	helperName := r.Pick(randVerbs) + "_" + r.Pick(randNouns)
	typ := r.Pick(randTypes)
	k1 := r.IntRange(2, 9)
	k2 := r.IntRange(1, 17)
	fmt.Fprintf(&b, "%s %s(%s v)\n{\n    return v * %d + %d;\n}\n\n",
		typ, helperName, typ, k1, k2)

	n := []int{32, 50, 80, 120}[r.Intn(4)]
	arr := r.Pick(randNouns)
	acc := "total_" + r.Pick(randNouns)
	b.WriteString("int main()\n{\n")
	fmt.Fprintf(&b, "    %s %s[%d];\n", typ, arr, n)
	fmt.Fprintf(&b, "    %s %s = 0;\n", typ, acc)
	if implicitCalls {
		// Call to a function with no declaration anywhere: strict
		// compilers error, lenient ones warn and fail at link/run.
		fmt.Fprintf(&b, "    %s = configure_%s_%d(%d);\n", acc, r.Pick(randNouns), r.Intn(100), r.Intn(10))
	}
	fmt.Fprintf(&b, "    for (int i = 0; i < %d; i++) {\n", n)
	fmt.Fprintf(&b, "        %s[i] = %s((%s)(i %% %d));\n", arr, helperName, typ, r.IntRange(3, 11))
	fmt.Fprintf(&b, "        %s = %s + %s[i];\n", acc, acc, arr)
	b.WriteString("    }\n")
	switch r.Intn(3) {
	case 0:
		fmt.Fprintf(&b, "    printf(\"%s done: %%d\\n\", (int)%s);\n", helperName, acc)
	case 1:
		fmt.Fprintf(&b, "    if (%s < 0) {\n        printf(\"unexpected\\n\");\n    }\n", acc)
	default:
		fmt.Fprintf(&b, "    printf(\"checksum %%d\\n\", (int)(%s %% 1000));\n", acc)
	}
	b.WriteString("    return 0;\n}\n")
	return b.String()
}

func randomGarbage(r *rng.Source) string {
	words := []string{
		"flarb", "quon", "##", "<<<", "zeta::", "}{", "@", "BEGIN",
		"let", "defun", "lambda", ";;;", "::=", "->>", "MODULE", "elif",
		"yield", "match", "0b1z2", "`tick`", "~~>",
	}
	var b strings.Builder
	lines := r.IntRange(8, 24)
	for i := 0; i < lines; i++ {
		k := r.IntRange(2, 6)
		for j := 0; j < k; j++ {
			b.WriteString(words[r.Intn(len(words))])
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func randomFortran(r *rng.Source) string {
	name := r.Pick(randVerbs)
	n := []int{20, 40, 64}[r.Intn(3)]
	k := r.IntRange(2, 7)
	return fmt.Sprintf(`program %s
    implicit none
    integer :: i, acc
    integer :: data(%d)

    acc = 0
    do i = 1, %d
        data(i) = i * %d
        acc = acc + data(i)
    end do

    print *, "result", acc
end program %s
`, name, n, n, k, name)
}
