package corpus

import "fmt"

// Additional feature templates beyond the core battery, registered in
// registerExtraTemplates (called from an init so the template tables
// stay declarative). They broaden corpus coverage to asynchronous
// OpenACC execution, self-updates, multi-region data reuse, OpenMP
// work-shared sections, tasking, and the block form of target teams.

func init() {
	accTemplates = append(accTemplates,
		template{id: "async_wait", gen: accAsyncWait},
		template{id: "update_self", gen: accUpdateSelf},
		template{id: "multi_region_data", gen: accMultiRegion},
		template{id: "jacobi_sweeps", gen: accJacobi},
	)
	ompTemplates = append(ompTemplates,
		template{id: "sections_split", gen: ompSections},
		template{id: "task_single", gen: ompTaskSingle},
		template{id: "target_teams_block", gen: ompTargetTeamsBlock},
	)
}

func accAsyncWait(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    int *b = (int *)malloc(N * sizeof(int));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        a[i] = i + %d;
        b[i] = 0;
    }
#pragma acc parallel loop async(1) copyin(a[0:N]) copyout(b[0:N])
    for (int i = 0; i < N; i++) {
        b[i] = a[i] * 4;
    }
#pragma acc wait
    for (int i = 0; i < N; i++) {
        if (b[i] != a[i] * 4) {
            errs++;
        }
    }
    free(a);
    free(b);
    if (errs != 0) {
        printf("FAIL: %%d errors after wait\n", errs);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.n, p.tag%6)
}

func accUpdateSelf(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    double *v = (double *)malloc(N * sizeof(double));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        v[i] = i * 0.25;
    }
#pragma acc enter data copyin(v[0:N])
#pragma acc parallel loop present(v[0:N])
    for (int i = 0; i < N; i++) {
        v[i] = v[i] + 10.0;
    }
#pragma acc update self(v[0:N])
    for (int i = 0; i < N; i++) {
        if (v[i] != i * 0.25 + 10.0) {
            errs++;
        }
    }
#pragma acc exit data delete(v)
    free(v);
    if (errs != 0) {
        printf("FAIL: %%d stale values\n", errs);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.n)
}

func accMultiRegion(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *data = (int *)malloc(N * sizeof(int));
    long total = 0;
    long expect = 0;
    for (int i = 0; i < N; i++) {
        data[i] = i %% %d;
    }
#pragma acc data copy(data[0:N])
    {
#pragma acc parallel loop present(data[0:N])
        for (int i = 0; i < N; i++) {
            data[i] = data[i] * 2;
        }
#pragma acc parallel loop present(data[0:N])
        for (int i = 0; i < N; i++) {
            data[i] = data[i] + 1;
        }
#pragma acc parallel loop present(data[0:N]) reduction(+:total)
        for (int i = 0; i < N; i++) {
            total += data[i];
        }
    }
    for (int i = 0; i < N; i++) {
        expect += (i %% %d) * 2 + 1;
    }
    free(data);
    if (total != expect) {
        printf("FAIL: total %%ld expected %%ld\n", total, expect);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.n, 3+p.tag%9, 3+p.tag%9)
}

func accJacobi(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#define N %d
#define SWEEPS %d

int main()
{
    double *cur = (double *)malloc(N * sizeof(double));
    double *next = (double *)malloc(N * sizeof(double));
    double *ref = (double *)malloc(N * sizeof(double));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        cur[i] = (i %% 7) * 1.0;
        next[i] = cur[i];
        ref[i] = cur[i];
    }
#pragma acc data copy(cur[0:N]) create(next[0:N])
    {
        for (int s = 0; s < SWEEPS; s++) {
#pragma acc parallel loop present(cur[0:N], next[0:N])
            for (int i = 1; i < N - 1; i++) {
                next[i] = (cur[i - 1] + cur[i + 1]) / 2.0;
            }
#pragma acc parallel loop present(cur[0:N], next[0:N])
            for (int i = 1; i < N - 1; i++) {
                cur[i] = next[i];
            }
        }
    }
    double *rnext = (double *)malloc(N * sizeof(double));
    for (int i = 0; i < N; i++) {
        rnext[i] = ref[i];
    }
    for (int s = 0; s < SWEEPS; s++) {
        for (int i = 1; i < N - 1; i++) {
            rnext[i] = (ref[i - 1] + ref[i + 1]) / 2.0;
        }
        for (int i = 1; i < N - 1; i++) {
            ref[i] = rnext[i];
        }
    }
    for (int i = 0; i < N; i++) {
        if (fabs(cur[i] - ref[i]) > 1e-9) {
            errs++;
        }
    }
    free(cur);
    free(next);
    free(ref);
    free(rnext);
    if (errs != 0) {
        printf("FAIL: %%d points diverged\n", errs);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`, p.n, 2+p.tag%4)
}

func ompSections(p params) string {
	// Section bodies perform idempotent writes, so the simulation's
	// per-worker inline execution of sections matches the standard's
	// once-per-section semantics observably.
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        a[i] = 0;
    }
#pragma omp parallel num_threads(%d)
    {
#pragma omp sections
        {
#pragma omp section
            {
                for (int i = 0; i < N / 2; i++) {
                    a[i] = i * 2;
                }
            }
#pragma omp section
            {
                for (int i = N / 2; i < N; i++) {
                    a[i] = i * 3;
                }
            }
        }
    }
    for (int i = 0; i < N / 2; i++) {
        if (a[i] != i * 2) {
            errs++;
        }
    }
    for (int i = N / 2; i < N; i++) {
        if (a[i] != i * 3) {
            errs++;
        }
    }
    free(a);
    int status = 1;
    if (errs != 0) {
        printf("FAIL: %%d wrong entries\n", errs);
    }
    if (errs == 0) {
        printf("PASS\n");
        status = 0;
    }
    return status;
}
`, p.n, 2+p.tag%3)
}

func ompTaskSingle(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#define N %d

int main()
{
    int results[N];
    int errs = 0;
    for (int i = 0; i < N; i++) {
        results[i] = 0;
    }
#pragma omp parallel num_threads(%d)
    {
#pragma omp single
        {
            for (int i = 0; i < N; i++) {
#pragma omp task firstprivate(i)
                {
                    results[i] = i * i;
                }
            }
#pragma omp taskwait
        }
    }
    for (int i = 0; i < N; i++) {
        if (results[i] != i * i) {
            errs++;
        }
    }
    int status = 1;
    if (errs != 0) {
        printf("FAIL: %%d tasks wrong\n", errs);
    }
    if (errs == 0) {
        printf("PASS\n");
        status = 0;
    }
    return status;
}
`, p.m*4, 2+p.tag%4)
}

func ompTargetTeamsBlock(p params) string {
	return fmt.Sprintf(`#include <stdio.h>
#include <stdlib.h>
#define N %d

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        a[i] = -1;
    }
#pragma omp target teams map(tofrom: a[0:N])
    {
#pragma omp distribute
        for (int i = 0; i < N; i++) {
            a[i] = i + %d;
        }
    }
    for (int i = 0; i < N; i++) {
        if (a[i] != i + %d) {
            errs++;
        }
    }
    free(a);
    int status = 1;
    if (errs != 0) {
        printf("FAIL: %%d errors\n", errs);
    }
    if (errs == 0) {
        printf("PASS\n");
        status = 0;
    }
    return status;
}
`, p.n, 2+p.tag%8, 2+p.tag%8)
}
