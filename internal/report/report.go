// Package report renders experiment results in the shapes the paper
// publishes: per-issue accuracy tables (Tables I, II, IV, V, VII,
// VIII), overall accuracy/bias tables (Tables III, VI, IX), and the
// radar-plot series of Figures 3-6 (as labelled data series, since the
// reproduction is terminal-based).
package report

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/probe"
)

// Table builds a fixed-width ASCII table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render produces the aligned table text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func pct(v float64) string { return fmt.Sprintf("%.0f%%", 100*v) }

// PerIssueTable renders a Table I/II-style single-configuration
// per-issue table.
func PerIssueTable(title string, s metrics.Summary) string {
	t := Table{
		Title:   title,
		Headers: []string{"Issue Type", "Total Count", "Correct", "Incorrect", "Accuracy"},
	}
	for _, p := range s.PerIssue {
		t.AddRow(
			p.Issue.Description(s.Dialect),
			fmt.Sprintf("%d", p.Count),
			fmt.Sprintf("%d", p.Correct),
			fmt.Sprintf("%d", p.Incorrect),
			pct(p.Accuracy()),
		)
	}
	return t.Render()
}

// PairedPerIssueTable renders a Table IV/V/VII/VIII-style table
// comparing two configurations on the same suite.
func PairedPerIssueTable(title, nameA, nameB string, a, b metrics.Summary) string {
	t := Table{
		Title: title,
		Headers: []string{"Issue Type", "Total Count",
			nameA + " Correct", nameB + " Correct",
			nameA + " Accuracy", nameB + " Accuracy"},
	}
	for i := range a.PerIssue {
		pa, pb := a.PerIssue[i], b.PerIssue[i]
		t.AddRow(
			pa.Issue.Description(a.Dialect),
			fmt.Sprintf("%d", pa.Count),
			fmt.Sprintf("%d", pa.Correct),
			fmt.Sprintf("%d", pb.Correct),
			pct(pa.Accuracy()),
			pct(pb.Accuracy()),
		)
	}
	return t.Render()
}

// OverallTable renders a Table III/VI/IX-style overall block for any
// number of named configurations per dialect column.
func OverallTable(title string, names []string, columns map[string][]metrics.Summary) string {
	// columns maps dialect label -> summaries aligned with names.
	var dialects []string
	for d := range columns {
		dialects = append(dialects, d)
	}
	// Stable order: OpenACC before OpenMP.
	if len(dialects) == 2 && dialects[0] != "OpenACC" {
		dialects[0], dialects[1] = dialects[1], dialects[0]
	}
	t := Table{Title: title, Headers: append([]string{"Datapoint"}, dialects...)}
	row := func(label string, f func(metrics.Summary) string) {
		cells := []string{label}
		for _, d := range dialects {
			cells = append(cells, f(columns[d][0]))
		}
		t.AddRow(cells...)
	}
	row("Total Count", func(s metrics.Summary) string { return fmt.Sprintf("%d", s.Total) })
	label := func(parts ...string) string {
		out := ""
		for _, p := range parts {
			if p == "" {
				continue
			}
			if out != "" {
				out += " "
			}
			out += p
		}
		return out
	}
	for i, name := range names {
		idx := i
		cells := []string{label("Total", name, "Mistakes")}
		for _, d := range dialects {
			cells = append(cells, fmt.Sprintf("%d", columns[d][idx].Mistakes))
		}
		t.AddRow(cells...)
	}
	for i, name := range names {
		idx := i
		cells := []string{label("Overall", name, "Accuracy")}
		for _, d := range dialects {
			cells = append(cells, fmt.Sprintf("%.2f%%", 100*columns[d][idx].Accuracy()))
		}
		t.AddRow(cells...)
	}
	for i, name := range names {
		idx := i
		cells := []string{label(name, "Bias")}
		for _, d := range dialects {
			cells = append(cells, fmt.Sprintf("%+.3f", columns[d][idx].Bias()))
		}
		t.AddRow(cells...)
	}
	return t.Render()
}

// RadarSeries renders a Figure 3-6-style radar plot as labelled data
// series plus a coarse ASCII bar rendering per axis.
func RadarSeries(title string, names []string, summaries []metrics.Summary) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	if len(summaries) == 0 {
		return b.String()
	}
	axes := metrics.RadarAxes(summaries[0])
	width := 0
	for _, ax := range axes {
		if len(ax.Label) > width {
			width = len(ax.Label)
		}
	}
	for si, s := range summaries {
		fmt.Fprintf(&b, "series %q:\n", names[si])
		for _, ax := range metrics.RadarAxes(s) {
			bar := strings.Repeat("#", int(ax.Value*30+0.5))
			fmt.Fprintf(&b, "  %-*s %5.1f%% |%-30s|\n", width, ax.Label, 100*ax.Value, bar)
		}
	}
	return b.String()
}

// Markdown renders a summary as a markdown table row set, used by
// EXPERIMENTS.md generation.
func MarkdownPerIssue(s metrics.Summary, extra map[probe.Issue]string) string {
	var b strings.Builder
	b.WriteString("| Issue | Count | Correct | Accuracy |\n|---|---|---|---|\n")
	for _, p := range s.PerIssue {
		fmt.Fprintf(&b, "| %s | %d | %d | %.0f%% |",
			p.Issue.Description(s.Dialect), p.Count, p.Correct, 100*p.Accuracy())
		if extra != nil {
			b.WriteString(" " + extra[p.Issue])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
