package report

// Rendering for the inter-judge agreement metrics of panel
// (ensemble) runs: Fleiss' kappa with its qualitative band, the
// pairwise agreement matrix, and the per-member decomposition against
// the panel verdict. Members are labelled [0], [1], ... in the matrix
// header with a legend row per member, since backend names
// ("remote:host:port#2") are too wide for matrix columns.

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
)

// Agreement renders the full inter-judge agreement block for one
// panel run.
func Agreement(title string, a metrics.Agreement) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "Fleiss' kappa: %.3f (%s) over %d files, %d judges; mean pairwise agreement %.1f%%\n",
		a.Kappa, metrics.KappaBand(a.Kappa), a.Items, len(a.Members), 100*a.MeanPairwise())

	matrix := Table{
		Title:   "Pairwise agreement matrix:",
		Headers: []string{"Member"},
	}
	for i := range a.Members {
		matrix.Headers = append(matrix.Headers, fmt.Sprintf("[%d]", i))
	}
	for i, name := range a.Members {
		row := []string{fmt.Sprintf("[%d] %s", i, name)}
		for j := range a.Members {
			row = append(row, fmt.Sprintf("%.0f%%", 100*a.Pairwise[i][j]))
		}
		matrix.AddRow(row...)
	}
	b.WriteString(matrix.Render())

	decomp := Table{
		Title: "Per-member decomposition vs the panel verdict:",
		Headers: []string{"Member", "Votes", "Agree",
			"Passed-vs-panel", "Failed-vs-panel", "Bias"},
	}
	for _, st := range a.MemberStats {
		decomp.AddRow(
			st.Member,
			fmt.Sprintf("%d", st.Items),
			fmt.Sprintf("%.1f%%", 100*st.AgreeRate()),
			fmt.Sprintf("%d", st.PassedVsPanel),
			fmt.Sprintf("%d", st.FailedVsPanel),
			fmt.Sprintf("%+.3f", st.Bias()),
		)
	}
	b.WriteString(decomp.Render())
	return b.String()
}
