package report

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/spec"
)

func sampleSummary(d spec.Dialect) metrics.Summary {
	var outcomes []metrics.Outcome
	for issue := probe.Issue(0); issue < probe.NumIssues; issue++ {
		for i := 0; i < 10; i++ {
			outcomes = append(outcomes, metrics.Outcome{
				Issue:       issue,
				JudgedValid: (i%2 == 0) == issue.Valid(),
			})
		}
	}
	return metrics.Score(d, outcomes)
}

func TestTableRenderAlignment(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"A", "LongHeader"}}
	tb.AddRow("xxxxxxxx", "1")
	tb.AddRow("y", "2")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if len(lines[1]) != len(lines[3]) || len(lines[3]) != len(lines[4]) {
		t.Fatalf("rows not aligned:\n%s", out)
	}
}

func TestPerIssueTable(t *testing.T) {
	out := PerIssueTable("Table I", sampleSummary(spec.OpenACC))
	for _, want := range []string{
		"Table I",
		"Removed ACC memory allocation / swapped ACC directive",
		"Removed an opening bracket",
		"No issue",
		"50%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestPairedPerIssueTable(t *testing.T) {
	a, b := sampleSummary(spec.OpenMP), sampleSummary(spec.OpenMP)
	out := PairedPerIssueTable("Table V", "Pipeline 1", "Pipeline 2", a, b)
	for _, want := range []string{"Pipeline 1 Accuracy", "Pipeline 2 Accuracy", "OMP"} {
		if !strings.Contains(out, want) {
			t.Errorf("paired table missing %q:\n%s", want, out)
		}
	}
}

func TestOverallTable(t *testing.T) {
	cols := map[string][]metrics.Summary{
		"OpenACC": {sampleSummary(spec.OpenACC), sampleSummary(spec.OpenACC)},
		"OpenMP":  {sampleSummary(spec.OpenMP), sampleSummary(spec.OpenMP)},
	}
	out := OverallTable("Table VI", []string{"Pipeline 1", "Pipeline 2"}, cols)
	for _, want := range []string{
		"Total Count",
		"Total Pipeline 1 Mistakes",
		"Overall Pipeline 2 Accuracy",
		"Pipeline 1 Bias",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("overall table missing %q:\n%s", want, out)
		}
	}
	// Column order: OpenACC before OpenMP.
	header := strings.SplitN(out, "\n", 3)[1]
	if strings.Index(header, "OpenACC") > strings.Index(header, "OpenMP") {
		t.Errorf("dialect columns out of order: %q", header)
	}
}

func TestRadarSeries(t *testing.T) {
	out := RadarSeries("Figure 3", []string{"P1", "P2"},
		[]metrics.Summary{sampleSummary(spec.OpenACC), sampleSummary(spec.OpenACC)})
	for _, want := range []string{
		"Figure 3",
		`series "P1"`,
		`series "P2"`,
		"Improper Directives",
		"Valid Recognition",
		"Test Logic",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("radar missing %q:\n%s", want, out)
		}
	}
}

func TestRadarSeriesEmpty(t *testing.T) {
	out := RadarSeries("F", nil, nil)
	if !strings.Contains(out, "F") {
		t.Fatal("empty radar lost title")
	}
}

func TestMarkdownPerIssue(t *testing.T) {
	out := MarkdownPerIssue(sampleSummary(spec.OpenACC), nil)
	if !strings.Contains(out, "| Issue | Count | Correct | Accuracy |") {
		t.Fatalf("markdown header missing:\n%s", out)
	}
	if strings.Count(out, "\n") < probe.NumIssues {
		t.Fatalf("markdown rows missing:\n%s", out)
	}
}
