// Package server implements the judging daemon behind cmd/llm4vvd: an
// HTTP front for any judge.LLM endpoint. It exposes
//
//	POST /v1/complete        {"prompt": ...}    -> {"response": ...}
//	POST /v1/complete_batch  {"prompts": [...]} -> {"responses": [...]}
//	GET  /v1/backends                           -> what is served and registered
//	GET  /healthz                               -> liveness plus serving stats
//	GET  /metrics                               -> Prometheus text exposition
//
// The server's core is a dynamic micro-batcher: concurrent single-
// prompt requests are coalesced — up to Config.BatchMaxSize prompts,
// waiting at most Config.BatchMaxDelay for stragglers — into one
// CompleteBatch call when the fronted endpoint implements
// judge.BatchLLM, so many independent workers hitting /v1/complete
// cost far fewer endpoint round-trips than requests. Admission is
// bounded: at most Config.QueueLimit prompts may be queued or in
// flight, and requests beyond that are refused immediately with 429
// and a Retry-After hint rather than queued without bound. Request
// deadlines propagate: the handler works under the request's context,
// which net/http cancels when the client disconnects or its deadline
// passes.
//
// With a run store mounted (Config.Store), every completion is
// recorded keyed by (backend, seed, prompt hash) and identical
// requests — from any number of workers, across daemon restarts —
// resolve to the stored response without touching the endpoint:
// distributed verdict dedup.
package server

// CompleteRequest is the body of POST /v1/complete.
type CompleteRequest struct {
	Prompt string `json:"prompt"`
}

// CompleteResponse is the success body of POST /v1/complete.
type CompleteResponse struct {
	Response string `json:"response"`
}

// CompleteBatchRequest is the body of POST /v1/complete_batch. The
// whole shard is resolved as one unit (one endpoint call for batch-
// capable backends) and responses come back in prompt order.
type CompleteBatchRequest struct {
	Prompts []string `json:"prompts"`
}

// CompleteBatchResponse is the success body of POST /v1/complete_batch.
type CompleteBatchResponse struct {
	Responses []string `json:"responses"`
}

// BackendsResponse is the body of GET /v1/backends: the backend this
// daemon instance serves (name and seed are fixed at daemon start;
// a client-side seed is ignored) plus every name registered in the
// daemon's backend registry.
type BackendsResponse struct {
	Serving    string   `json:"serving"`
	Seed       uint64   `json:"seed"`
	Batch      bool     `json:"batch"`
	Registered []string `json:"registered,omitempty"`

	// ReplicaID names the answering daemon instance (Config.ReplicaID;
	// llm4vvd defaults it to its listen address) so fleet logs, metric
	// labels, and failover tests can tell replicas apart.
	ReplicaID string `json:"replica_id,omitempty"`
	// Replicas lists the fleet members behind an llm4vv-router
	// answering on a daemon's behalf; empty for a bare daemon.
	Replicas []string `json:"replicas,omitempty"`

	// PanelMembers and PanelStrategy describe the served voting panel
	// when the daemon fronts an ensemble backend directly (empty for
	// single-judge backends, and for panels hidden behind wrappers
	// like the -cache memo — the Serving name still begins with
	// "ensemble:" there).
	PanelMembers  []string `json:"panel_members,omitempty"`
	PanelStrategy string   `json:"panel_strategy,omitempty"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	OK      bool   `json:"ok"`
	Backend string `json:"backend"`
	Seed    uint64 `json:"seed"`
	// ReplicaID is the stable instance name (see
	// BackendsResponse.ReplicaID).
	ReplicaID string `json:"replica_id,omitempty"`
	Stats     Stats  `json:"stats"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Stats are the daemon's serving counters, exposed by Server.Stats
// and /healthz. EndpointCalls < Requests+BatchRequests is the
// signature of micro-batching and dedup doing their job.
type Stats struct {
	// Requests counts admitted /v1/complete requests.
	Requests int64 `json:"requests"`
	// BatchRequests counts admitted /v1/complete_batch requests.
	BatchRequests int64 `json:"batch_requests"`
	// Rejected counts requests refused with 429 by admission control.
	Rejected int64 `json:"rejected"`
	// EndpointCalls counts calls made to the fronted endpoint
	// (one per CompleteBatch shard for batch-capable backends).
	EndpointCalls int64 `json:"endpoint_calls"`
	// EndpointPrompts counts prompts submitted to the endpoint.
	EndpointPrompts int64 `json:"endpoint_prompts"`
	// Coalesced counts micro-batches that merged two or more
	// concurrent /v1/complete requests into one dispatch.
	Coalesced int64 `json:"coalesced"`
	// StoreHits counts prompts resolved from the mounted run store
	// (or deduplicated against an identical prompt in the same shard)
	// without an endpoint call.
	StoreHits int64 `json:"store_hits"`
	// GatherDelayNS is the micro-batcher's current adaptive straggler
	// wait in nanoseconds: it ramps down toward BatchMaxDelay/16 while
	// batches fill to BatchMaxSize and back up toward BatchMaxDelay
	// under light load.
	GatherDelayNS int64 `json:"gather_delay_ns"`
}
