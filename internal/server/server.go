package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/judge"
	"repro/internal/perf"
	"repro/internal/resilience"
	"repro/internal/store"
	"repro/internal/trace"
)

// Defaults for the zero values of Config's knobs.
const (
	DefaultBatchMaxSize  = 16
	DefaultBatchMaxDelay = 2 * time.Millisecond
	DefaultQueueLimit    = 1024
	DefaultRetryAfter    = 50 * time.Millisecond
)

// dedupPhase is the Experiment field of store records written by the
// server: completion-cache records live in their own phase namespace
// so they can never collide with an experiment's sealed verdicts.
const dedupPhase = "serve/completions"

// errShuttingDown answers requests caught mid-shutdown, mapped to 503
// on every path so clean shutdowns never read as internal errors.
var errShuttingDown = errors.New("server shutting down")

// statusFor classifies a resolution error: shutdown is 503, the
// requester's own context ending is 504, anything else is a true 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, errShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// Config configures a Server. LLM is the only required field.
type Config struct {
	// LLM is the fronted endpoint. Implementing judge.BatchLLM opts it
	// into coalesced shards; judge.ContextLLM into per-prompt
	// cancellation on the fallback path.
	LLM judge.LLM
	// Backend and Seed identify what LLM was constructed from; they
	// are reported by /v1/backends and key the dedup store records.
	Backend string
	Seed    uint64
	// ReplicaID is this instance's stable name in /healthz,
	// /v1/backends, and the /metrics replica label — how router logs
	// and failover tests tell fleet members apart. llm4vvd defaults it
	// to the listen address.
	ReplicaID string
	// Registered is the backend-registry listing reported by
	// /v1/backends (the server does not import the registry itself).
	Registered []string

	// BatchMaxSize caps how many concurrent /v1/complete requests one
	// micro-batch may coalesce. Default DefaultBatchMaxSize.
	BatchMaxSize int
	// BatchMaxDelay is how long a forming micro-batch waits for
	// stragglers after its first prompt arrives. Default
	// DefaultBatchMaxDelay.
	BatchMaxDelay time.Duration
	// QueueLimit bounds admission: the total prompts queued or in
	// flight, across both endpoints. Excess requests get 429 with a
	// Retry-After hint. Default DefaultQueueLimit.
	QueueLimit int
	// RetryAfter is the back-off hint sent with 429 responses.
	// Default DefaultRetryAfter.
	RetryAfter time.Duration

	// Store, when set, records every completion keyed by
	// (backend, seed, prompt hash) and serves identical prompts from
	// the record without an endpoint call — dedup that spans workers
	// and daemon restarts. The server never closes the store.
	Store *store.Store

	// Tracer, when set, records server-side spans — request, gather,
	// batch, resolve, endpoint — joined to the caller's trace via the
	// propagation headers, serves recent traces on /debug/traces, and
	// feeds the slow-exemplar metric family. Nil disables tracing at
	// zero cost.
	Tracer *trace.Tracer

	// Fault, when set, arms deterministic chaos injection: the fronted
	// endpoint is wrapped at the "daemon.complete" point (malformed
	// completions, errors, latency) and the two completion handlers at
	// "daemon.handler" (slow responses, hangs, 500s). Injected counts
	// surface in the llm4vv_resilience_faults_injected_total metric
	// family. Nil — the production default — injects nothing.
	Fault *fault.Injector
}

// result is one resolved prompt handed back to a waiting request.
type result struct {
	resp string
	err  error
}

// pending is one /v1/complete request queued for the micro-batcher.
type pending struct {
	ctx    context.Context
	prompt string
	done   chan result // buffered(1): delivery never blocks dispatch
}

// Server is the judging daemon. Construct with New, mount Handler on
// an http.Server, and Close when done.
type Server struct {
	cfg Config
	// llm is the endpoint actually called: Config.LLM, wrapped at the
	// "daemon.complete" fault point when chaos injection is armed.
	// Config.LLM stays unwrapped for structural queries (Describe,
	// breaker states) — the fault shim must never mask those.
	llm      judge.LLM
	batch    judge.BatchLLM // nil when the endpoint is single-prompt only
	queue    chan *pending
	inflight atomic.Int64 // prompts admitted and not yet answered

	// delay is the adaptive straggler-gather wait, retuned after every
	// micro-batch between minDelay and Config.BatchMaxDelay: batches
	// that fill without the timer halve it (the queue is saturated —
	// waiting only adds latency), underfull timer-closed batches
	// double it back toward the configured maximum (light load —
	// waiting buys coalescing).
	delay    atomic.Int64
	minDelay int64

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	// rec collects per-stage latency samples ("resolve" per shard,
	// "endpoint" per fronted-endpoint call) for the /metrics summary
	// series.
	rec *perf.Recorder

	requests        atomic.Int64
	batchRequests   atomic.Int64
	rejected        atomic.Int64
	endpointCalls   atomic.Int64
	endpointPrompts atomic.Int64
	coalesced       atomic.Int64
	storeHits       atomic.Int64
}

// batchPool recycles the micro-batcher's pending-slice backing arrays
// across batches; promptsPool does the same for the prompt slices a
// flush extracts. One batch forms every BatchMaxDelay under load, so
// without pooling the collector allocates two slices per batch
// forever.
var (
	batchPool   = sync.Pool{New: func() any { return new([]*pending) }}
	promptsPool = sync.Pool{New: func() any { return new([]string) }}
)

func getBatchSlice() []*pending {
	return (*batchPool.Get().(*[]*pending))[:0]
}

// putBatchSlice returns a batch's backing array to the pool, clearing
// the pending pointers so pooled arrays don't pin answered requests.
func putBatchSlice(batch []*pending) {
	for i := range batch {
		batch[i] = nil
	}
	b := batch[:0]
	batchPool.Put(&b)
}

func getPromptsSlice() []string {
	return (*promptsPool.Get().(*[]string))[:0]
}

func putPromptsSlice(prompts []string) {
	for i := range prompts {
		prompts[i] = ""
	}
	p := prompts[:0]
	promptsPool.Put(&p)
}

// New builds a Server over cfg and starts its micro-batch collector.
func New(cfg Config) *Server {
	if cfg.LLM == nil {
		panic("server: Config.LLM is required")
	}
	if cfg.BatchMaxSize <= 0 {
		cfg.BatchMaxSize = DefaultBatchMaxSize
	}
	if cfg.BatchMaxDelay <= 0 {
		cfg.BatchMaxDelay = DefaultBatchMaxDelay
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = DefaultQueueLimit
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	s := &Server{
		cfg:   cfg,
		queue: make(chan *pending, cfg.QueueLimit),
		rec:   perf.NewRecorder(),
	}
	s.minDelay = int64(cfg.BatchMaxDelay / 16)
	if s.minDelay < 1 {
		s.minDelay = 1
	}
	s.delay.Store(int64(cfg.BatchMaxDelay))
	s.llm = fault.LLM(cfg.Fault, "daemon.complete", cfg.LLM)
	s.batch, _ = s.llm.(judge.BatchLLM)
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.wg.Add(1)
	go s.collect()
	return s
}

// Close stops the collector, fails any queued requests, and waits for
// in-flight dispatches. Shut the http.Server down first so no new
// requests arrive while the queue drains.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
	for {
		select {
		case p := <-s.queue:
			p.done <- result{err: errShuttingDown}
			s.inflight.Add(-1)
		default:
			return
		}
	}
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:        s.requests.Load(),
		BatchRequests:   s.batchRequests.Load(),
		Rejected:        s.rejected.Load(),
		EndpointCalls:   s.endpointCalls.Load(),
		EndpointPrompts: s.endpointPrompts.Load(),
		Coalesced:       s.coalesced.Load(),
		StoreHits:       s.storeHits.Load(),
		GatherDelayNS:   s.delay.Load(),
	}
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/complete", fault.Middleware(s.cfg.Fault, "daemon.handler", http.HandlerFunc(s.handleComplete)))
	mux.Handle("/v1/complete_batch", fault.Middleware(s.cfg.Fault, "daemon.handler", http.HandlerFunc(s.handleCompleteBatch)))
	mux.HandleFunc("/v1/backends", s.handleBackends)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/traces", s.handleDebugTraces)
	return mux
}

// join opens the server-side trace span for one request, continuing
// the caller's trace when the propagation headers carry one. With no
// tracer configured it returns the context untouched and a nil span.
func (s *Server) join(r *http.Request, name string) (context.Context, *trace.Span) {
	if s.cfg.Tracer == nil {
		return r.Context(), nil
	}
	traceHex, spanHex := trace.Extract(r.Header)
	return s.cfg.Tracer.Join(r.Context(), traceHex, spanHex, name)
}

// collect is the micro-batcher: it takes the first queued prompt,
// claims everything already waiting without arming a timer (a queue
// at BatchMaxSize pays zero gather delay), gathers stragglers for the
// adaptive delay when the batch is still underfull, and dispatches
// the coalesced shard on its own goroutine so the next batch starts
// forming immediately. Batch slices are pooled; flush returns them.
func (s *Server) collect() {
	defer s.wg.Done()
	for {
		var first *pending
		select {
		case first = <-s.queue:
		case <-s.baseCtx.Done():
			return
		}
		batch := append(getBatchSlice(), first)
		// Fast path: drain the backlog. Under sustained load whole
		// batches form here and the gather timer never runs.
	drain:
		for len(batch) < s.cfg.BatchMaxSize {
			select {
			case p := <-s.queue:
				batch = append(batch, p)
			default:
				break drain
			}
		}
		if len(batch) < s.cfg.BatchMaxSize {
			timer := time.NewTimer(s.GatherDelay())
		gather:
			for len(batch) < s.cfg.BatchMaxSize {
				select {
				case p := <-s.queue:
					batch = append(batch, p)
				case <-timer.C:
					break gather
				case <-s.baseCtx.Done():
					break gather
				}
			}
			timer.Stop()
		}
		s.adapt(len(batch))
		if len(batch) > 1 {
			s.coalesced.Add(1)
		}
		s.wg.Add(1)
		go func(batch []*pending) {
			defer s.wg.Done()
			s.flush(batch)
		}(batch)
	}
}

// GatherDelay reports the micro-batcher's current adaptive straggler
// wait (exposed in /healthz stats as gather_delay_ns).
func (s *Server) GatherDelay() time.Duration {
	return time.Duration(s.delay.Load())
}

// adapt retunes the gather delay from the size of the batch that just
// formed: a full batch halves the wait (down to BatchMaxDelay/16),
// a batch at half capacity or less doubles it (up to BatchMaxDelay).
// Between the two thresholds the delay holds steady.
func (s *Server) adapt(size int) {
	cur := s.delay.Load()
	switch {
	case size >= s.cfg.BatchMaxSize:
		if next := cur / 2; next >= s.minDelay {
			s.delay.Store(next)
		} else {
			s.delay.Store(s.minDelay)
		}
	case size*2 <= s.cfg.BatchMaxSize:
		next := cur * 2
		if maxd := int64(s.cfg.BatchMaxDelay); next > maxd {
			next = maxd
		}
		s.delay.Store(next)
	}
}

// flush resolves one coalesced micro-batch. Members whose context
// already ended are answered with that error and excluded; the rest
// share one resolve pass. A member's own deadline elapsing mid-flight
// is handled on the handler side — the batch completes for everyone
// else regardless. Every member's admission slot is released here,
// when its prompt is truly done, so QueueLimit bounds real
// outstanding work even when requesters disconnect early.
func (s *Server) flush(batch []*pending) {
	defer s.inflight.Add(int64(-len(batch)))
	defer putBatchSlice(batch)
	live := batch[:0]
	for _, p := range batch {
		if err := p.ctx.Err(); err != nil {
			p.done <- result{err: err}
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	prompts := getPromptsSlice()
	defer func() { putPromptsSlice(prompts) }()
	for _, p := range live {
		prompts = append(prompts, p.prompt)
	}
	// The coalesced batch is one unit of work shared by every member;
	// its span opens under the first traced member's request (the
	// carrier), so that trace shows the whole gather-and-resolve
	// interval the member actually waited through. Resolution runs on
	// baseCtx — only the span rides over, never a member's
	// cancellation.
	rctx := s.baseCtx
	if s.cfg.Tracer != nil {
		for _, p := range live {
			if bctx, bspan := trace.Start(p.ctx, "server.batch"); bspan != nil {
				bspan.SetAttr("batch_size", strconv.Itoa(len(live)))
				defer bspan.End()
				rctx = trace.ContextWith(s.baseCtx, trace.FromContext(bctx))
				break
			}
		}
	}
	resps, err := s.resolve(rctx, prompts)
	if err != nil && s.baseCtx.Err() != nil {
		// The base context ends only at Close: report shutdown, not
		// the bare cancellation it caused.
		err = errShuttingDown
	}
	for i, p := range live {
		if err != nil {
			p.done <- result{err: err}
			continue
		}
		p.done <- result{resp: resps[i]}
	}
}

// dedupKey is the run-store key for one prompt's completion record.
func (s *Server) dedupKey(hash string) store.Key {
	return store.Key{Experiment: dedupPhase, Backend: s.cfg.Backend, Seed: s.cfg.Seed, FileHash: hash}
}

// resolve answers a shard of prompts: store hits and intra-shard
// duplicates cost nothing, and the remaining unique prompts go to the
// endpoint in a single CompleteBatch call when it supports one.
// Responses come back in prompt order, byte-identical to asking the
// endpoint each prompt alone. Dedup maps are keyed by the 32-byte
// prompt content hash (judge.PromptKey), not the prompt text, so a
// shard of multi-kilobyte prompts costs fixed-size keys; the hex form
// of the same hash is the store record's FileHash, exactly as
// store.HashSource would render it.
func (s *Server) resolve(ctx context.Context, prompts []string) ([]string, error) {
	defer func(start time.Time) { s.rec.Observe("resolve", time.Since(start)) }(time.Now())
	var span *trace.Span
	ctx, span = trace.Start(ctx, "server.resolve")
	if span != nil {
		span.SetAttr("prompts", strconv.Itoa(len(prompts)))
		defer span.End()
	}
	out := make([]string, len(prompts))
	// resolved maps a prompt key seen earlier in the shard to the slot
	// holding its response; missing are the unique prompts that still
	// need the endpoint, each answering the slots in positions.
	resolved := map[judge.PromptKey]int{}
	var missing []string
	var missingKeys []judge.PromptKey
	positions := map[judge.PromptKey][]int{}
	for i, p := range prompts {
		k := judge.KeyOf(p)
		if j, dup := resolved[k]; dup {
			out[i] = out[j]
			s.storeHits.Add(1)
			continue
		}
		if idxs, dup := positions[k]; dup {
			positions[k] = append(idxs, i)
			s.storeHits.Add(1)
			continue
		}
		if s.cfg.Store != nil {
			// The serve/completions namespace holds only records this
			// path wrote, so presence alone is the hit signal — an
			// endpoint whose legitimate response is empty still dedups.
			if rec, ok := s.cfg.Store.Get(s.dedupKey(k.Hex())); ok {
				out[i] = rec.Response
				resolved[k] = i
				s.storeHits.Add(1)
				continue
			}
		}
		positions[k] = []int{i}
		missing = append(missing, p)
		missingKeys = append(missingKeys, k)
	}
	if span != nil {
		span.SetAttr("dedup_hits", strconv.Itoa(len(prompts)-len(missing)))
	}
	if len(missing) == 0 {
		return out, nil
	}
	resps, err := s.completeEndpoint(ctx, missing)
	if err != nil {
		return nil, err
	}
	for m, k := range missingKeys {
		for _, i := range positions[k] {
			out[i] = resps[m]
		}
		if s.cfg.Store != nil {
			_ = s.cfg.Store.Put(store.Record{
				Experiment: dedupPhase, Backend: s.cfg.Backend, Seed: s.cfg.Seed,
				FileHash: k.Hex(), JudgeRan: true, Response: resps[m],
			})
		}
	}
	if s.cfg.Store != nil {
		// The store is write-behind; one flush per resolved shard keeps
		// dedup records durable at micro-batch granularity.
		_ = s.cfg.Store.Flush()
	}
	return out, nil
}

// completeEndpoint submits unique prompts to the fronted endpoint
// through the richest contract it offers (judge.CompleteAll): one
// call for batch-capable backends, one per prompt otherwise.
func (s *Server) completeEndpoint(ctx context.Context, prompts []string) ([]string, error) {
	if s.batch != nil {
		s.endpointCalls.Add(1)
	} else {
		s.endpointCalls.Add(int64(len(prompts)))
	}
	s.endpointPrompts.Add(int64(len(prompts)))
	defer func(start time.Time) { s.rec.Observe("endpoint", time.Since(start)) }(time.Now())
	ctx, span := trace.Start(ctx, "server.endpoint")
	if span != nil {
		span.SetAttr("prompts", strconv.Itoa(len(prompts)))
		defer span.End()
	}
	return judge.CompleteAll(ctx, s.llm, prompts)
}

// admit reserves n prompt slots, reporting false — and answering the
// request with 429 + Retry-After — when the daemon is at QueueLimit.
func (s *Server) admit(w http.ResponseWriter, n int) bool {
	if s.inflight.Add(int64(n)) > int64(s.cfg.QueueLimit) {
		s.inflight.Add(int64(-n))
		s.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.FormatFloat(s.cfg.RetryAfter.Seconds(), 'f', -1, 64))
		writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
		return false
	}
	return true
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Prompt == "" {
		writeError(w, http.StatusBadRequest, "empty prompt")
		return
	}
	ctx, span := s.join(r, "server.request")
	defer span.End()
	if !s.admit(w, 1) {
		span.SetAttr("shed", "true")
		return
	}
	// The slot is released when the pending resolves (flush, or the
	// Close drain) — not when this handler returns — so a requester
	// that gives up early cannot free capacity its abandoned prompt
	// still occupies.
	s.requests.Add(1)
	p := &pending{ctx: ctx, prompt: req.Prompt, done: make(chan result, 1)}
	select {
	case s.queue <- p:
	case <-s.baseCtx.Done():
		s.inflight.Add(-1)
		writeError(w, http.StatusServiceUnavailable, errShuttingDown.Error())
		return
	}
	select {
	case res := <-p.done:
		if res.err != nil {
			span.SetAttr("error", res.err.Error())
			writeError(w, statusFor(res.err), res.err.Error())
			return
		}
		writeJSON(w, http.StatusOK, CompleteResponse{Response: res.resp})
	case <-r.Context().Done():
		// Client gone or deadline passed; the coalesced batch still
		// completes for its other members.
		writeError(w, http.StatusGatewayTimeout, r.Context().Err().Error())
	}
}

func (s *Server) handleCompleteBatch(w http.ResponseWriter, r *http.Request) {
	var req CompleteBatchRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Prompts) == 0 {
		writeJSON(w, http.StatusOK, CompleteBatchResponse{Responses: []string{}})
		return
	}
	// A shard that can never fit is a configuration error, not
	// overload: answer with a permanent 413 (clients retry 429
	// forever to no avail) naming the fix.
	if len(req.Prompts) > s.cfg.QueueLimit {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d prompts exceeds the daemon queue limit %d; lower the client shard size or raise -queue", len(req.Prompts), s.cfg.QueueLimit))
		return
	}
	ctx, span := s.join(r, "server.batch_request")
	defer span.End()
	span.SetAttr("prompts", strconv.Itoa(len(req.Prompts)))
	if !s.admit(w, len(req.Prompts)) {
		span.SetAttr("shed", "true")
		return
	}
	defer s.inflight.Add(int64(-len(req.Prompts)))
	s.batchRequests.Add(1)
	resps, err := s.resolve(ctx, req.Prompts)
	if err != nil {
		span.SetAttr("error", err.Error())
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, CompleteBatchResponse{Responses: resps})
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	resp := BackendsResponse{
		Serving:    s.cfg.Backend,
		Seed:       s.cfg.Seed,
		Batch:      s.batch != nil,
		Registered: s.cfg.Registered,
		ReplicaID:  s.cfg.ReplicaID,
	}
	// A served voting panel describes itself; matched structurally so
	// the daemon core stays endpoint-agnostic (like judge's generator
	// interface).
	if p, ok := s.cfg.LLM.(interface{ Describe() ([]string, string) }); ok {
		resp.PanelMembers, resp.PanelStrategy = p.Describe()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		OK:        true,
		Backend:   s.cfg.Backend,
		Seed:      s.cfg.Seed,
		ReplicaID: s.cfg.ReplicaID,
		Stats:     s.Stats(),
	})
}

// handleMetrics serves GET /metrics: the serving counters and the
// per-stage latency summaries in Prometheus text exposition, every
// series labelled with this instance's replica ID so a fleet's scrapes
// aggregate without relabelling. Families come from the perf registry
// (perf.Families), which docs/OPERATIONS.md documents one for one.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	replica := perf.Label("replica", s.cfg.ReplicaID)
	var buf bytes.Buffer
	p := perf.NewProm(&buf)
	p.EmitValue(perf.FamRequests, float64(st.Requests), replica)
	p.EmitValue(perf.FamBatchRequests, float64(st.BatchRequests), replica)
	p.EmitValue(perf.FamRejected, float64(st.Rejected), replica)
	p.EmitValue(perf.FamEndpointCalls, float64(st.EndpointCalls), replica)
	p.EmitValue(perf.FamEndpointPrompts, float64(st.EndpointPrompts), replica)
	p.EmitValue(perf.FamCoalescedBatches, float64(st.Coalesced), replica)
	p.EmitValue(perf.FamStoreHits, float64(st.StoreHits), replica)
	p.EmitValue(perf.FamGatherDelay, time.Duration(st.GatherDelayNS).Seconds(), replica)
	p.EmitValue(perf.FamInflight, float64(s.inflight.Load()), replica)
	p.EmitSummaries(perf.FamStageSeconds, s.rec.Snapshot(), replica)
	emitSlowExemplars(p, s.cfg.Tracer, replica)
	EmitResilience(p, s.cfg.Fault, s.cfg.LLM, replica)
	if s.cfg.Store != nil {
		sst := s.cfg.Store.Stats()
		p.EmitValue(perf.FamStoreKeys, float64(sst.Keys), replica)
		p.EmitValue(perf.FamStoreSegments, float64(sst.SegmentCount()), replica)
		p.EmitValue(perf.FamStoreActiveBytes, float64(sst.ActiveBytes), replica)
		p.EmitValue(perf.FamStoreDropped, float64(sst.Dropped), replica)
	}
	if err := p.Err(); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// handleDebugTraces serves the tracer's recent-fragment ring as a
// JSON array — the quick look before reaching for the JSONL sink.
// Without a tracer it serves an empty array, not an error, so probes
// need no mode awareness.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	writeDebugTraces(w, s.cfg.Tracer)
}

// writeDebugTraces renders a tracer's recent ring (shared with the
// router's endpoint).
func writeDebugTraces(w http.ResponseWriter, t *trace.Tracer) {
	recent := t.Recent()
	if recent == nil {
		recent = []trace.Record{}
	}
	writeJSON(w, http.StatusOK, recent)
}

// emitSlowExemplars writes the llm4vv_trace_slow_exemplar family from
// a tracer's reservoir: one gauge per retained exemplar, valued at
// the span duration in seconds and labelled with the span name and
// trace ID (shared with the router's /metrics).
func emitSlowExemplars(p *perf.Prom, t *trace.Tracer, instance [2]string) {
	exemplars := t.SlowExemplars()
	if len(exemplars) == 0 {
		return
	}
	samples := make([]perf.Sample, len(exemplars))
	for i, ex := range exemplars {
		samples[i] = perf.Sample{
			Labels: [][2]string{instance, perf.Label("stage", ex.Stage), perf.Label("trace_id", ex.Trace)},
			Value:  time.Duration(ex.DurNS).Seconds(),
		}
	}
	p.Emit(perf.FamTraceSlowExemplar, samples...)
}

// EmitResilience writes the llm4vv_resilience_* families: injected
// chaos-fault counts per point, remote-client retries, and per-target
// circuit-breaker states. The retry and breaker sources are optional
// interfaces matched structurally on the fronted endpoint (the remote
// client and the fleet router implement both; local backends neither)
// so this package needs no import of either. Zero-valued series are
// emitted when a source is absent — the families must always appear
// on /metrics, armed or not. Shared with the router's endpoint.
func EmitResilience(p *perf.Prom, inj *fault.Injector, source any, instance [2]string) {
	points := inj.Injected()
	if len(points) == 0 {
		p.EmitValue(perf.FamResilienceFaults, 0, instance)
	} else {
		samples := make([]perf.Sample, len(points))
		for i, pc := range points {
			samples[i] = perf.Sample{Labels: [][2]string{instance, perf.Label("point", pc.Point)}, Value: float64(pc.Count)}
		}
		p.Emit(perf.FamResilienceFaults, samples...)
	}
	var retries int64
	if r, ok := source.(interface{ Retries() int64 }); ok {
		retries = r.Retries()
	}
	p.EmitValue(perf.FamResilienceRetries, float64(retries), instance)
	var states []resilience.BreakerStatus
	if b, ok := source.(interface {
		BreakerStates() []resilience.BreakerStatus
	}); ok {
		states = b.BreakerStates()
	}
	if len(states) == 0 {
		p.EmitValue(perf.FamResilienceBreakerState, 0, instance)
		return
	}
	samples := make([]perf.Sample, len(states))
	for i, st := range states {
		samples[i] = perf.Sample{Labels: [][2]string{instance, perf.Label("target", st.ID)}, Value: float64(st.State)}
	}
	p.Emit(perf.FamResilienceBreakerState, samples...)
}

// readJSON decodes a POST body, answering 405/400 itself on failure.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}
