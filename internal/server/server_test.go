package server_test

// Tests for the judging daemon: wire round-trip parity with the
// in-process endpoint, micro-batch coalescing under concurrent
// single-prompt clients, admission-control 429s under overload,
// deadline propagation, and store-backed dedup across server
// restarts — all against the deterministic simulated backend and
// loopback httptest servers, so nothing here depends on network
// timing for correctness.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/judge"
	"repro/internal/model"
	"repro/internal/remote"
	"repro/internal/server"
	"repro/internal/store"
)

// countingLLM wraps an endpoint and counts calls reaching it.
type countingLLM struct {
	inner judge.LLM
	calls atomic.Int64 // endpoint calls (single or batch)
	sent  atomic.Int64 // prompts submitted
	delay time.Duration
	gate  chan struct{} // when non-nil, every call blocks until it closes
}

func (c *countingLLM) Complete(prompt string) string {
	c.calls.Add(1)
	c.sent.Add(1)
	c.wait()
	return c.inner.Complete(prompt)
}

func (c *countingLLM) CompleteBatch(ctx context.Context, prompts []string) ([]string, error) {
	c.calls.Add(1)
	c.sent.Add(int64(len(prompts)))
	c.wait()
	if bl, ok := c.inner.(judge.BatchLLM); ok {
		return bl.CompleteBatch(ctx, prompts)
	}
	out := make([]string, len(prompts))
	for i, p := range prompts {
		out[i] = c.inner.Complete(p)
	}
	return out, nil
}

func (c *countingLLM) wait() {
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	if c.gate != nil {
		<-c.gate
	}
}

// echoLLM answers deterministically without the simulated model's
// weight — keeps the concurrency tests fast.
type echoLLM struct{}

func (echoLLM) Complete(prompt string) string { return "echo:" + prompt }
func (echoLLM) CompleteBatch(ctx context.Context, prompts []string) ([]string, error) {
	out := make([]string, len(prompts))
	for i, p := range prompts {
		out[i] = "echo:" + p
	}
	return out, nil
}

func startServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *remote.Backend) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	rb := remote.New(ts.URL, remote.WithBackoff(time.Millisecond))
	return srv, ts, rb
}

// TestRoundTripParity: completions fetched through the daemon are
// byte-identical to asking the in-process endpoint directly, on both
// the single and the batch path.
func TestRoundTripParity(t *testing.T) {
	const seed = 33
	m := model.New(seed)
	_, _, rb := startServer(t, server.Config{LLM: model.New(seed), Backend: "deepseek-sim", Seed: seed})

	prompts := make([]string, 12)
	for i := range prompts {
		prompts[i] = fmt.Sprintf("Review the following OpenACC code ... Here is the code:\nint main() { return %d; }\n", i)
	}
	for _, p := range prompts {
		got, err := rb.CompleteContext(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if want := m.Complete(p); got != want {
			t.Fatalf("remote response diverged from in-process:\nremote: %q\nlocal:  %q", got, want)
		}
	}
	got, err := rb.CompleteBatch(context.Background(), prompts)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range prompts {
		if want := m.Complete(p); got[i] != want {
			t.Fatalf("batch response %d diverged from in-process", i)
		}
	}
}

// TestMicroBatcherCoalesces: 32 concurrent single-prompt clients cost
// fewer endpoint calls than requests — the coalescing the daemon
// exists for — and every client still gets the exact per-prompt
// response.
func TestMicroBatcherCoalesces(t *testing.T) {
	const clients = 32
	counter := &countingLLM{inner: echoLLM{}, delay: time.Millisecond}
	srv, _, rb := startServer(t, server.Config{
		LLM:           counter,
		BatchMaxSize:  16,
		BatchMaxDelay: 25 * time.Millisecond,
	})

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := fmt.Sprintf("prompt-%02d", i)
			resp, err := rb.CompleteContext(context.Background(), p)
			if err != nil {
				errs <- err
				return
			}
			if resp != "echo:"+p {
				errs <- fmt.Errorf("prompt %d got wrong response %q", i, resp)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	calls := counter.calls.Load()
	if calls >= clients {
		t.Errorf("micro-batcher coalesced nothing: %d endpoint calls for %d requests", calls, clients)
	}
	st := srv.Stats()
	if st.Requests != clients {
		t.Errorf("stats counted %d requests, want %d", st.Requests, clients)
	}
	if st.Coalesced == 0 {
		t.Error("stats report zero coalesced batches under 32 concurrent clients")
	}
	if st.EndpointPrompts != clients {
		t.Errorf("endpoint received %d prompts, want %d", st.EndpointPrompts, clients)
	}
}

// TestOverload429: past QueueLimit the daemon refuses immediately
// with 429 and a Retry-After hint instead of queueing without bound.
func TestOverload429(t *testing.T) {
	gate := make(chan struct{})
	counter := &countingLLM{inner: echoLLM{}, gate: gate}
	srv, ts, _ := startServer(t, server.Config{
		LLM:           counter,
		BatchMaxSize:  1,
		BatchMaxDelay: time.Millisecond,
		QueueLimit:    2,
		RetryAfter:    100 * time.Millisecond,
	})

	// Fill the daemon to its limit, then one more.
	const flood = 8
	statuses := make(chan int, flood)
	retryAfter := make(chan string, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/complete", "application/json",
				strings.NewReader(fmt.Sprintf(`{"prompt":"p%d"}`, i)))
			if err != nil {
				statuses <- -1
				return
			}
			defer resp.Body.Close()
			statuses <- resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests {
				retryAfter <- resp.Header.Get("Retry-After")
			}
		}(i)
	}
	// Give the flood time to land while the endpoint is gated shut,
	// then release it so admitted requests finish.
	time.Sleep(100 * time.Millisecond)
	close(gate)
	wg.Wait()
	close(statuses)
	close(retryAfter)

	var ok, rejected int
	for s := range statuses {
		switch s {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Errorf("unexpected status %d", s)
		}
	}
	if rejected == 0 {
		t.Fatalf("no 429s: %d requests all admitted past QueueLimit=2", flood)
	}
	if ok == 0 {
		t.Fatal("every request rejected; admitted ones should have completed")
	}
	for ra := range retryAfter {
		if ra == "" {
			t.Error("429 response missing Retry-After header")
		}
	}
	if srv.Stats().Rejected != int64(rejected) {
		t.Errorf("stats counted %d rejections, observed %d", srv.Stats().Rejected, rejected)
	}
}

// TestOversizedBatch413: a shard that can never fit the queue limit
// is a permanent 413 (which the client does not retry), not an
// endlessly retryable 429.
func TestOversizedBatch413(t *testing.T) {
	_, ts, rb := startServer(t, server.Config{LLM: echoLLM{}, QueueLimit: 4})
	prompts := make([]string, 5)
	for i := range prompts {
		prompts[i] = fmt.Sprintf("p%d", i)
	}
	resp, err := http.Post(ts.URL+"/v1/complete_batch", "application/json",
		strings.NewReader(`{"prompts":["a","b","c","d","e"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch got %d, want 413", resp.StatusCode)
	}
	// The client surfaces it as a permanent error, quickly.
	start := time.Now()
	if _, err := rb.CompleteBatch(context.Background(), prompts); err == nil {
		t.Fatal("client accepted an oversized batch")
	} else if !strings.Contains(err.Error(), "queue limit") {
		t.Errorf("error does not explain the limit: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("client retried a permanent 413 for %v", elapsed)
	}
	// A batch that exactly fits is admitted.
	if _, err := rb.CompleteBatch(context.Background(), prompts[:4]); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlinePropagation: a client deadline ends its request
// promptly even while the endpoint is stuck.
func TestDeadlinePropagation(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	counter := &countingLLM{inner: echoLLM{}, gate: gate}
	_, _, rb := startServer(t, server.Config{LLM: counter, BatchMaxDelay: time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := rb.CompleteContext(ctx, "stuck")
	if err == nil {
		t.Fatal("expected a deadline error against a stuck endpoint")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to propagate", elapsed)
	}
}

// TestStoreDedupAcrossRestart: with a run store mounted, a prompt
// completed once never reaches the endpoint again — not from another
// worker, and not after the daemon restarts on the same store.
func TestStoreDedupAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.jsonl")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	counter := &countingLLM{inner: echoLLM{}}
	cfg := server.Config{LLM: counter, Backend: "echo", Seed: 7, Store: st, BatchMaxDelay: time.Millisecond}
	_, _, rb := startServer(t, cfg)

	prompts := []string{"alpha", "beta", "alpha", "gamma", "beta"}
	first, err := rb.CompleteBatch(context.Background(), prompts)
	if err != nil {
		t.Fatal(err)
	}
	if got := counter.sent.Load(); got != 3 {
		t.Errorf("endpoint saw %d prompts for 3 unique of 5, intra-shard dedup failed", got)
	}
	again, err := rb.CompleteBatch(context.Background(), prompts)
	if err != nil {
		t.Fatal(err)
	}
	if got := counter.sent.Load(); got != 3 {
		t.Errorf("endpoint saw %d prompts after a fully-deduped rerun, want 3", got)
	}
	for i := range prompts {
		if first[i] != again[i] {
			t.Fatalf("dedup changed response %d: %q vs %q", i, first[i], again[i])
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: fresh server, fresh store handle, same file.
	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	counter2 := &countingLLM{inner: echoLLM{}}
	cfg2 := server.Config{LLM: counter2, Backend: "echo", Seed: 7, Store: st2, BatchMaxDelay: time.Millisecond}
	_, _, rb2 := startServer(t, cfg2)
	after, err := rb2.CompleteBatch(context.Background(), prompts)
	if err != nil {
		t.Fatal(err)
	}
	if got := counter2.sent.Load(); got != 0 {
		t.Errorf("restarted daemon re-asked the endpoint %d prompts; store should have answered all", got)
	}
	for i := range prompts {
		if first[i] != after[i] {
			t.Fatalf("restart changed response %d", i)
		}
	}

	// A different seed must not share records.
	st3, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	counter3 := &countingLLM{inner: echoLLM{}}
	_, _, rb3 := startServer(t, server.Config{LLM: counter3, Backend: "echo", Seed: 8, Store: st3, BatchMaxDelay: time.Millisecond})
	if _, err := rb3.CompleteBatch(context.Background(), prompts[:2]); err != nil {
		t.Fatal(err)
	}
	if got := counter3.sent.Load(); got != 2 {
		t.Errorf("seed-8 daemon reused seed-7 records (%d prompts reached endpoint, want 2)", got)
	}
}

// TestBackendsAndHealthz: the discovery endpoints report the serving
// configuration and live stats.
func TestBackendsAndHealthz(t *testing.T) {
	srv, ts, rb := startServer(t, server.Config{
		LLM: echoLLM{}, Backend: "echo", Seed: 99,
		Registered: []string{"deepseek-sim", "echo"},
	})
	if err := rb.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/backends: %s", resp.Status)
	}
	if _, err := rb.CompleteContext(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Requests != 1 || st.EndpointCalls != 1 {
		t.Errorf("stats after one request: %+v", st)
	}
}

// TestReplicaIDInWire: the -replica-id satellite — the stable instance
// name configured on the daemon comes back in /healthz and
// /v1/backends, so router logs and failover tests can name replicas.
func TestReplicaIDInWire(t *testing.T) {
	_, ts, rb := startServer(t, server.Config{
		LLM: echoLLM{}, Backend: "echo", Seed: 7, ReplicaID: "replica-a",
	})
	info, err := rb.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplicaID != "replica-a" {
		t.Errorf("/v1/backends replica_id = %q, want replica-a", info.ReplicaID)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health server.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.ReplicaID != "replica-a" {
		t.Errorf("/healthz replica_id = %q, want replica-a", health.ReplicaID)
	}
}

// TestMetricsExposition: /metrics serves Prometheus text with the
// serving counters and the per-stage latency summaries, labelled by
// replica.
func TestMetricsExposition(t *testing.T) {
	_, ts, rb := startServer(t, server.Config{
		LLM: echoLLM{}, Backend: "echo", Seed: 7, ReplicaID: "replica-m",
	})
	if _, err := rb.CompleteContext(context.Background(), "warm"); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.CompleteBatch(context.Background(), []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q, want text/plain exposition", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	for _, want := range []string{
		`llm4vv_requests_total{replica="replica-m"} 1`,
		`llm4vv_batch_requests_total{replica="replica-m"} 1`,
		`llm4vv_endpoint_prompts_total{replica="replica-m"} 3`,
		`llm4vv_stage_seconds{replica="replica-m",stage="resolve",quantile="0.5"}`,
		`llm4vv_stage_seconds{replica="replica-m",stage="endpoint",quantile="0.99"}`,
		`llm4vv_stage_seconds_count{replica="replica-m",stage="resolve"} 2`,
		"# TYPE llm4vv_stage_seconds summary",
		"# TYPE llm4vv_gather_delay_seconds gauge",
		// The resilience families must be present even with no fault
		// injector, no remote client, and no breakers — zero-valued.
		`llm4vv_resilience_faults_injected_total{replica="replica-m"} 0`,
		`llm4vv_resilience_retries_total{replica="replica-m"} 0`,
		`llm4vv_resilience_breaker_state{replica="replica-m"} 0`,
		"# TYPE llm4vv_resilience_breaker_state gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestEmptyAndMalformedRequests: protocol errors are 4xx, not 5xx or
// hangs.
func TestEmptyAndMalformedRequests(t *testing.T) {
	_, ts, _ := startServer(t, server.Config{LLM: echoLLM{}})
	cases := []struct {
		path, body string
		want       int
	}{
		{"/v1/complete", `{"prompt":""}`, http.StatusBadRequest},
		{"/v1/complete", `{garbage`, http.StatusBadRequest},
		{"/v1/complete_batch", `{"prompts":[]}`, http.StatusOK},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("POST %s %q: got %d want %d", c.path, c.body, resp.StatusCode, c.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/complete")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/complete: got %d want 405", resp.StatusCode)
	}
}

// TestAdaptiveGatherDelay: the micro-batcher's straggler wait ramps
// down while batches fill to BatchMaxSize and back up under light
// load, always staying within [BatchMaxDelay/16, BatchMaxDelay].
func TestAdaptiveGatherDelay(t *testing.T) {
	const maxDelay = 8 * time.Millisecond
	const batchMax = 4
	srv, _, rb := startServer(t, server.Config{
		LLM:           echoLLM{},
		BatchMaxSize:  batchMax,
		BatchMaxDelay: maxDelay,
	})
	if got := srv.GatherDelay(); got != maxDelay {
		t.Fatalf("initial gather delay = %v, want %v", got, maxDelay)
	}

	// Saturating rounds: batchMax concurrent singles per round fill
	// every batch, so the delay must ramp down from the maximum.
	fullRound := func() {
		var wg sync.WaitGroup
		for i := 0; i < batchMax; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := rb.CompleteContext(context.Background(), fmt.Sprintf("full-%d", i)); err != nil {
					t.Error(err)
				}
			}(i)
		}
		wg.Wait()
	}
	rampedDown := false
	for round := 0; round < 50 && !rampedDown; round++ {
		fullRound()
		rampedDown = srv.GatherDelay() < maxDelay
	}
	if !rampedDown {
		t.Fatalf("gather delay never ramped down under sustained full batches (still %v)", srv.GatherDelay())
	}
	if floor := maxDelay / 16; srv.GatherDelay() < floor {
		t.Fatalf("gather delay %v fell below the floor %v", srv.GatherDelay(), floor)
	}

	// Light load: lone sequential requests form batches of one, so the
	// delay must ramp back to the configured maximum.
	for i := 0; i < 16 && srv.GatherDelay() != maxDelay; i++ {
		if _, err := rb.CompleteContext(context.Background(), fmt.Sprintf("lone-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.GatherDelay(); got != maxDelay {
		t.Fatalf("gather delay = %v after light load, want ramp back to %v", got, maxDelay)
	}
	if st := srv.Stats(); st.GatherDelayNS != int64(maxDelay) {
		t.Fatalf("stats gather_delay_ns = %d, want %d", st.GatherDelayNS, int64(maxDelay))
	}
}
