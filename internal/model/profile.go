package model

import "repro/internal/spec"

// ToolState classifies the toolchain information visible in an agent
// prompt.
type ToolState int

const (
	// ToolNone: the prompt contains no compiler/run information
	// (direct analysis, Part One).
	ToolNone ToolState = iota
	// ToolCompileFailSupport: compilation failed with a message that
	// reads as a toolchain limitation ("not supported", "not
	// implemented") rather than a defect of the test.
	ToolCompileFailSupport
	// ToolCompileFail: compilation failed with an ordinary error.
	ToolCompileFail
	// ToolRunFail: compiled but exited non-zero / crashed.
	ToolRunFail
	// ToolClean: compiled and ran with exit code 0.
	ToolClean
)

func (t ToolState) String() string {
	switch t {
	case ToolNone:
		return "none"
	case ToolCompileFailSupport:
		return "compile-fail-support"
	case ToolCompileFail:
		return "compile-fail"
	case ToolRunFail:
		return "run-fail"
	case ToolClean:
		return "clean"
	default:
		return "?"
	}
}

// Style is the prompting style detected from the prompt text.
type Style int

const (
	// StyleDirect is the Part-One direct analysis prompt (Listing 3).
	StyleDirect Style = iota
	// StyleAgentDirect is the agent-based direct prompt (Listing 2),
	// the paper's LLMJ 1.
	StyleAgentDirect
	// StyleAgentIndirect is the describe-then-judge prompt (Listing 4),
	// the paper's LLMJ 2.
	StyleAgentIndirect
)

func (s Style) String() string {
	switch s {
	case StyleDirect:
		return "direct"
	case StyleAgentDirect:
		return "agent-direct"
	case StyleAgentIndirect:
		return "agent-indirect"
	default:
		return "?"
	}
}

// calibration maps perceived category -> per-tool-state probability of
// judging INVALID. Indexed by ToolState.
type calibration map[Category][5]float64

// pInvalid looks up the verdict probability with a graceful fallback.
func (c calibration) pInvalid(cat Category, state ToolState) float64 {
	row, ok := c[cat]
	if !ok {
		row = c[CatClean]
	}
	return row[state]
}

// The calibration tables below are the simulation's stand-in for 33B
// parameters: per perceived category and tool state, the probability
// that the judge calls the file invalid. They are fitted so that the
// per-issue accuracies of Tables I, II, VII and VIII of the paper are
// reproduced when combined with the mechanically-measured mix of tool
// outcomes on the probed suites (the fit is documented in
// EXPERIMENTS.md). Tables IV-VI (pipelines) and III/IX (overall
// accuracy and bias) are NOT fitted — they emerge from these tables
// plus the real compiler/runtime substrate.
//
// Reading guide: row order is [none, compile-fail-support,
// compile-fail, run-fail, clean].

var directACC = calibration{
	CatClean:        {0.12, 0.12, 0.12, 0.12, 0.12},
	CatDirective:    {0.18, 0.18, 0.18, 0.18, 0.18},
	CatSyntax:       {0.12, 0.12, 0.12, 0.12, 0.12},
	CatUndeclared:   {0.15, 0.15, 0.15, 0.15, 0.15},
	CatNoDirectives: {0.80, 0.80, 0.80, 0.80, 0.80},
	CatLogic:        {0.10, 0.10, 0.10, 0.10, 0.10},
}

var directOMP = calibration{
	CatClean:        {0.61, 0.61, 0.61, 0.61, 0.61},
	CatDirective:    {0.42, 0.42, 0.42, 0.42, 0.42},
	CatSyntax:       {0.74, 0.74, 0.74, 0.74, 0.74},
	CatUndeclared:   {0.64, 0.64, 0.64, 0.64, 0.64},
	CatNoDirectives: {0.03, 0.03, 0.03, 0.03, 0.03},
	CatLogic:        {0.33, 0.33, 0.33, 0.33, 0.33},
}

var agentDirectACC = calibration{
	CatClean:        {0.08, 0.10, 0.75, 0.73, 0.08},
	CatDirective:    {0.30, 0.25, 0.75, 0.70, 0.50},
	CatSyntax:       {0.30, 0.40, 0.76, 0.70, 0.40},
	CatUndeclared:   {0.30, 0.40, 0.85, 0.75, 0.40},
	CatNoDirectives: {0.90, 0.95, 0.98, 0.98, 0.96},
	CatLogic:        {0.12, 0.15, 0.50, 0.35, 0.09},
}

var agentDirectOMP = calibration{
	CatClean:        {0.07, 0.10, 0.70, 0.75, 0.07},
	CatDirective:    {0.30, 0.20, 0.42, 0.46, 0.40},
	CatSyntax:       {0.30, 0.35, 0.60, 0.55, 0.35},
	CatUndeclared:   {0.30, 0.35, 0.64, 0.60, 0.35},
	CatNoDirectives: {0.50, 0.90, 0.90, 0.90, 0.50},
	CatLogic:        {0.15, 0.20, 0.50, 0.74, 0.67},
}

var agentIndirectACC = calibration{
	CatClean:        {0.19, 0.35, 0.92, 0.85, 0.19},
	CatDirective:    {0.40, 0.35, 0.92, 0.88, 0.60},
	CatSyntax:       {0.25, 0.30, 0.58, 0.50, 0.30},
	CatUndeclared:   {0.30, 0.40, 0.83, 0.75, 0.40},
	CatNoDirectives: {0.95, 1.00, 1.00, 1.00, 1.00},
	CatLogic:        {0.20, 0.25, 0.60, 0.50, 0.20},
}

var agentIndirectOMP = calibration{
	CatClean:        {0.03, 0.05, 0.60, 0.60, 0.03},
	CatDirective:    {0.25, 0.20, 0.44, 0.44, 0.35},
	CatSyntax:       {0.25, 0.30, 0.46, 0.45, 0.30},
	CatUndeclared:   {0.25, 0.30, 0.52, 0.50, 0.30},
	CatNoDirectives: {0.75, 1.00, 1.00, 1.00, 0.82},
	CatLogic:        {0.10, 0.15, 0.40, 0.47, 0.67},
}

// calibrationFor selects the table for a prompting style and dialect.
func calibrationFor(style Style, d spec.Dialect) calibration {
	switch style {
	case StyleDirect:
		if d == spec.OpenACC {
			return directACC
		}
		return directOMP
	case StyleAgentDirect:
		if d == spec.OpenACC {
			return agentDirectACC
		}
		return agentDirectOMP
	default:
		if d == spec.OpenACC {
			return agentIndirectACC
		}
		return agentIndirectOMP
	}
}
