package model

import (
	"strings"

	"repro/internal/spec"
	"repro/internal/testlang"
)

// Category is the model's perceived classification of a file — what
// the code looks like to a reader, before any verdict noise. True
// issue labels and perceived categories differ exactly where the
// paper's judges struggle: a removed data clause leaves a file that
// *looks* clean.
type Category int

const (
	// CatClean: nothing structurally wrong is visible.
	CatClean Category = iota
	// CatNoDirectives: the file contains no directives of the model
	// under test at all (random-replacement probes).
	CatNoDirectives
	// CatSyntax: the file does not parse / has unbalanced brackets.
	CatSyntax
	// CatUndeclared: an identifier is used without a declaration.
	CatUndeclared
	// CatDirective: a directive-like line does not match any known
	// directive of the dialect.
	CatDirective
	// CatLogic: the test computes but never verifies (no compare-and-
	// fail pattern).
	CatLogic
)

func (c Category) String() string {
	switch c {
	case CatClean:
		return "clean"
	case CatNoDirectives:
		return "no-directives"
	case CatSyntax:
		return "syntax"
	case CatUndeclared:
		return "undeclared"
	case CatDirective:
		return "directive"
	case CatLogic:
		return "logic"
	default:
		return "?"
	}
}

// Features is everything the simulated model perceives about a file.
type Features struct {
	Dialect    spec.Dialect
	IsFortran  bool
	Lines      int
	TokenCount int
	// DirectiveLines counts lines carrying this dialect's sentinel.
	DirectiveLines int
	// KnownDirectives / UnknownDirectives split DirectiveLines by spec
	// lookup of the directive name.
	KnownDirectives   int
	UnknownDirectives int
	// FirstUnknown names the first unknown directive (for rationales).
	FirstUnknown string
	// ParseBroken: front-end errors or brace imbalance.
	ParseBroken bool
	// UndeclaredUse: an identifier is used but never declared; the
	// first such name is recorded.
	UndeclaredUse   bool
	FirstUndeclared string
	// HasCheckLogic: compare-and-fail verification pattern present.
	HasCheckLogic bool
	// HasComputeLoop: any loop at all (rationale colour).
	HasComputeLoop bool
	// Plausibility is the n-gram score of the text.
	Plausibility float64
}

// ExtractFeatures analyses code text as the given dialect.
func ExtractFeatures(src string, d spec.Dialect, ng *NGram) Features {
	ft := Features{Dialect: d}
	ft.Lines = strings.Count(src, "\n") + 1
	ft.TokenCount = len(Tokenize(src))
	if ng != nil {
		ft.Plausibility = ng.Score(src)
	}
	ft.IsFortran = looksFortran(src)
	if ft.IsFortran {
		extractFortranFeatures(&ft, src, d)
	} else {
		extractCFeatures(&ft, src, d)
	}
	ft.HasCheckLogic = detectCheckLogic(src, ft.IsFortran)
	ft.HasComputeLoop = strings.Contains(src, "for (") || strings.Contains(src, "for(") ||
		strings.Contains(strings.ToLower(src), "do ")
	return ft
}

func looksFortran(src string) bool {
	l := strings.ToLower(src)
	return strings.Contains(l, "program ") && strings.Contains(l, "end program") ||
		strings.Contains(l, "implicit none")
}

func extractCFeatures(ft *Features, src string, d spec.Dialect) {
	sentinel := "#pragma " + d.Sentinel()
	table := spec.ForDialect(d)
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if !strings.HasPrefix(t, sentinel) {
			continue
		}
		ft.DirectiveLines++
		body := strings.TrimSpace(strings.TrimPrefix(t, "#pragma"))
		if dir, ok := testlang.ParseDirective(body, d, 0); ok {
			if dir.Known {
				ft.KnownDirectives++
				// A known directive with clauses not in its table also
				// reads as a directive problem.
				if sd, found := table.Lookup(dir.Name); found {
					for _, cl := range dir.Clauses {
						if _, valid := sd.Clauses[cl.Name]; !valid {
							ft.UnknownDirectives++
							if ft.FirstUnknown == "" {
								ft.FirstUnknown = dir.Name + " " + cl.Name
							}
							break
						}
					}
				}
			} else {
				ft.UnknownDirectives++
				if ft.FirstUnknown == "" {
					ft.FirstUnknown = dir.Name
				}
			}
		}
	}
	bal, early := testlang.CountBraceBalance(src)
	if bal != 0 || early {
		ft.ParseBroken = true
	}
	file, errs := testlang.ParseFile(src, testlang.LangC, d)
	if len(errs) > 0 {
		ft.ParseBroken = true
		return
	}
	ft.UndeclaredUse, ft.FirstUndeclared = scanUndeclared(file)
}

// scanUndeclared performs the model's (light but genuine) declared-
// name analysis over a parsed file.
func scanUndeclared(file *testlang.File) (bool, string) {
	declared := map[string]bool{}
	for k := range wellKnownNames {
		declared[k] = true
	}
	for _, d := range file.Decls {
		switch n := d.(type) {
		case *testlang.VarDecl:
			declared[n.Name] = true
		case *testlang.FuncDecl:
			declared[n.Name] = true
		}
	}
	var firstBad string
	for _, d := range file.Decls {
		fd, ok := d.(*testlang.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		local := map[string]bool{}
		for _, p := range fd.Params {
			local[p.Name] = true
		}
		testlang.Walk(fd.Body, func(s testlang.Stmt) bool {
			if ds, ok := s.(*testlang.DeclStmt); ok {
				for _, v := range ds.Decls {
					local[v.Name] = true
				}
			}
			if fs, ok := s.(*testlang.ForStmt); ok {
				if ds, ok := fs.Init.(*testlang.DeclStmt); ok {
					for _, v := range ds.Decls {
						local[v.Name] = true
					}
				}
			}
			return true
		})
		testlang.WalkExprs(fd.Body, func(e testlang.Expr) {
			if firstBad != "" {
				return
			}
			switch x := e.(type) {
			case *testlang.IdentExpr:
				if !declared[x.Name] && !local[x.Name] {
					firstBad = x.Name
				}
			}
		})
		if firstBad != "" {
			break
		}
	}
	return firstBad != "", firstBad
}

// wellKnownNames are identifiers the model recognises without
// declarations (library symbols and constants).
var wellKnownNames = map[string]bool{
	"printf": true, "fprintf": true, "malloc": true, "calloc": true,
	"free": true, "exit": true, "abs": true, "labs": true, "fabs": true,
	"sqrt": true, "pow": true, "floor": true, "ceil": true, "fmax": true,
	"fmin": true, "sin": true, "cos": true, "exp": true, "log": true,
	"stderr": true, "stdout": true, "NULL": true, "RAND_MAX": true,
	"EXIT_SUCCESS": true, "EXIT_FAILURE": true, "fabsf": true, "sqrtf": true,
	"omp_get_num_threads": true, "omp_get_thread_num": true,
	"omp_get_max_threads": true, "omp_get_num_devices": true,
	"omp_is_initial_device": true, "acc_get_num_devices": true,
	"acc_get_device_num": true, "acc_device_default": true,
	"acc_device_nvidia": true, "acc_device_host": true,
	"omp_sched_static": true, "omp_sched_dynamic": true,
	"memset": true, "memcpy": true, "atoi": true, "strcmp": true,
}

func extractFortranFeatures(ft *Features, src string, d spec.Dialect) {
	info, errs := testlang.CheckFortran(src, d)
	ft.DirectiveLines = len(info.Directives)
	for _, dir := range info.Directives {
		if dir.Known {
			ft.KnownDirectives++
		} else {
			ft.UnknownDirectives++
			if ft.FirstUnknown == "" {
				ft.FirstUnknown = dir.Name
			}
		}
	}
	for _, e := range errs {
		msg := e.Error()
		switch {
		case strings.Contains(msg, "IMPLICIT type"):
			ft.UndeclaredUse = true
			if ft.FirstUndeclared == "" {
				if i := strings.Index(msg, "identifier "); i >= 0 {
					ft.FirstUndeclared = strings.Trim(msg[i+len("identifier "):], `" `)
					if j := strings.IndexByte(ft.FirstUndeclared, '"'); j > 0 {
						ft.FirstUndeclared = ft.FirstUndeclared[:j]
					}
				}
			}
		case strings.Contains(msg, "unknown"):
			// Directive problems are already counted from info.
		default:
			ft.ParseBroken = true
		}
	}
}

// detectCheckLogic looks for the verification idioms of V&V tests:
// an early-return failure path, an error stop, or a fail-closed status
// flag.
func detectCheckLogic(src string, fortran bool) bool {
	if fortran {
		return strings.Contains(src, "stop 1") || strings.Contains(src, "error stop")
	}
	if strings.Contains(src, "return 1") || strings.Contains(src, "exit(1)") ||
		strings.Contains(src, "return errs") || strings.Contains(src, "return errors") {
		return true
	}
	// Fail-closed idiom: a status initialised non-zero and returned is
	// only complete verification when a success path clears it; a file
	// whose status can never become 0 always fails, which reads as
	// broken test logic.
	return strings.Contains(src, "status = 1") && strings.Contains(src, "return status") &&
		strings.Contains(src, "status = 0")
}

// Categorize maps perceived features to the model's read of the file.
// Order encodes salience: a file with no directives at all reads as
// "not a test for this model" before anything else (the paper's direct
// OpenMP judge conspicuously did NOT make that read — that failure
// lives in the probability table, not here).
func Categorize(ft Features) Category {
	switch {
	case ft.DirectiveLines == 0:
		return CatNoDirectives
	case ft.ParseBroken:
		return CatSyntax
	case ft.UndeclaredUse:
		return CatUndeclared
	case ft.UnknownDirectives > 0:
		return CatDirective
	case !ft.HasCheckLogic:
		return CatLogic
	default:
		return CatClean
	}
}
