package model

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rng"
	"repro/internal/spec"
)

// Model is the simulated deepseek-coder-33B-instruct endpoint. One
// Model serves all prompting styles; behavioural differences between
// the paper's LLMJ configurations come entirely from the prompt, as
// they did on the real model.
type Model struct {
	seed  uint64
	ngram *NGram
}

// New returns a model with the given sampling seed. Equal seeds give
// bit-identical behaviour.
func New(seed uint64) *Model {
	return &Model{seed: seed, ngram: NewNGram()}
}

// Judgment is the structured trace of one completion, exposed for
// experiments and tests; callers that want the LLM contract use only
// the text from Complete.
type Judgment struct {
	Style    Style
	Dialect  spec.Dialect
	Category Category
	Tool     ToolState
	PInvalid float64
	Invalid  bool
	Features Features
}

// Complete runs the model on a prompt and returns the full response
// text: test code for generation prompts, a rationale ending in the
// exact FINAL JUDGEMENT phrase for judging prompts.
func (m *Model) Complete(prompt string) string {
	if IsGenerationPrompt(prompt) {
		code, _ := m.GenerateTest(prompt)
		return code
	}
	_, text := m.Judge(prompt)
	return text
}

// CompleteBatch runs the model on a whole shard of prompts in one
// call (the judge.BatchLLM contract). Every response is identical to
// what Complete would return for the same prompt — each completion is
// a pure function of (seed, prompt) — so batch submission changes
// scheduling and overhead, never verdicts. The context is checked
// between completions so a cancelled shard stops promptly.
func (m *Model) CompleteBatch(ctx context.Context, prompts []string) ([]string, error) {
	out := make([]string, len(prompts))
	for i, p := range prompts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i] = m.Complete(p)
	}
	return out, nil
}

// Judge runs the model and also returns the structured trace.
func (m *Model) Judge(prompt string) (Judgment, string) {
	head, code := splitPrompt(prompt)
	d := detectDialect(head)
	style := detectStyle(head)
	tool := ToolNone
	if style != StyleDirect {
		tool = parseToolInfo(head)
	}
	ft := ExtractFeatures(code, d, m.ngram)
	cat := Categorize(ft)
	p := calibrationFor(style, d).pInvalid(cat, tool)
	coin := rng.New(m.seed).Split(prompt)
	invalid := coin.Bool(p)
	j := Judgment{
		Style:    style,
		Dialect:  d,
		Category: cat,
		Tool:     tool,
		PInvalid: p,
		Invalid:  invalid,
		Features: ft,
	}
	return j, m.respond(j, coin)
}

// splitPrompt separates the instruction head from the code block.
func splitPrompt(prompt string) (head, code string) {
	idx := strings.LastIndex(prompt, "Here is the code")
	if idx < 0 {
		return prompt, ""
	}
	head = prompt[:idx]
	rest := prompt[idx:]
	if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
		code = rest[nl+1:]
	}
	return head, code
}

func detectDialect(head string) spec.Dialect {
	acc := strings.Count(head, "OpenACC")
	omp := strings.Count(head, "OpenMP")
	if omp > acc {
		return spec.OpenMP
	}
	return spec.OpenACC
}

func detectStyle(head string) Style {
	if strings.Contains(head, "Describe what the below") {
		return StyleAgentIndirect
	}
	if strings.Contains(head, "information about the code to help you") {
		return StyleAgentDirect
	}
	return StyleDirect
}

// parseToolInfo reads the compiler/run block of an agent prompt.
func parseToolInfo(head string) ToolState {
	compileRC, okC := intAfter(head, "Compiler return code:")
	if !okC {
		return ToolNone
	}
	compileErr := sectionAfter(head, "Compiler STDERR:", []string{"Compiler STDOUT:", "When the compiled"})
	if compileRC != 0 {
		if allErrorsAreSupportGaps(compileErr) {
			return ToolCompileFailSupport
		}
		return ToolCompileFail
	}
	// Run section: the first "Return code:" after the run preamble.
	runPart := head
	if i := strings.Index(head, "the compiled code is run"); i >= 0 {
		runPart = head[i:]
	}
	runRC, okR := intAfter(runPart, "Return code:")
	if okR && runRC != 0 {
		return ToolRunFail
	}
	return ToolClean
}

// allErrorsAreSupportGaps reports whether every error line of a
// compiler stderr reads as a toolchain limitation rather than a defect
// of the test. A single ordinary error (unknown directive, undeclared
// identifier) makes the whole failure an ordinary one.
func allErrorsAreSupportGaps(stderr string) bool {
	sawError := false
	for _, line := range strings.Split(stderr, "\n") {
		low := strings.ToLower(line)
		if !strings.Contains(low, "error") || strings.Contains(low, "error(s) generated") {
			continue
		}
		sawError = true
		if !strings.Contains(low, "not supported") && !strings.Contains(low, "not implemented") {
			return false
		}
	}
	return sawError
}

func intAfter(text, marker string) (int, bool) {
	i := strings.Index(text, marker)
	if i < 0 {
		return 0, false
	}
	rest := strings.TrimSpace(text[i+len(marker):])
	end := 0
	if end < len(rest) && (rest[end] == '-' || rest[end] == '+') {
		end++
	}
	for end < len(rest) && rest[end] >= '0' && rest[end] <= '9' {
		end++
	}
	v, err := strconv.Atoi(strings.TrimSpace(rest[:end]))
	if err != nil {
		return 0, false
	}
	return v, true
}

func sectionAfter(text, marker string, terminators []string) string {
	i := strings.Index(text, marker)
	if i < 0 {
		return ""
	}
	rest := text[i+len(marker):]
	end := len(rest)
	for _, t := range terminators {
		if j := strings.Index(rest, t); j >= 0 && j < end {
			end = j
		}
	}
	return strings.TrimSpace(rest[:end])
}

// respond generates the free-text rationale ending with the exact
// judgement phrase. Sentences are chosen to be consistent with the
// sampled verdict — including the characteristic rationalisations a
// permissive judge produces when it waves through a file whose tool
// output looked bad.
func (m *Model) respond(j Judgment, coin *rng.Source) string {
	var b strings.Builder
	ft := j.Features
	d := j.Dialect

	if j.Style == StyleAgentIndirect {
		fmt.Fprintf(&b, "Let me describe this %s program step by step.\n", d)
	} else {
		fmt.Fprintf(&b, "Let me review this %s code against the criteria.\n", d)
	}

	// Structure overview.
	fmt.Fprintf(&b, "The file spans %d lines (%d tokens)", ft.Lines, ft.TokenCount)
	if ft.DirectiveLines > 0 {
		fmt.Fprintf(&b, " and contains %d %s directive(s).\n", ft.DirectiveLines, d)
	} else {
		fmt.Fprintf(&b, " and contains no %s directives at all.\n", d)
	}
	if ft.HasComputeLoop {
		b.WriteString("It initialises data and performs a loop-based computation")
		if ft.HasCheckLogic {
			b.WriteString(", then compares the result against a serially computed reference and reports failure through the exit code.\n")
		} else {
			b.WriteString(", but I do not see a verification step that compares results and signals failure.\n")
		}
	}

	// Criterion-flavoured observations.
	switch j.Category {
	case CatSyntax:
		b.WriteString("Syntax: the code appears malformed — the brackets do not balance, so it cannot compile as written.\n")
	case CatUndeclared:
		fmt.Fprintf(&b, "Syntax: the identifier %q is used without any declaration I can find.\n", ft.FirstUndeclared)
	case CatDirective:
		fmt.Fprintf(&b, "Directive appropriateness: %q does not match any %s directive I know.\n", ft.FirstUnknown, d)
	case CatNoDirectives:
		if ft.Plausibility < -5.5 {
			fmt.Fprintf(&b, "The text does not resemble %s test code or even C at all.\n", d)
		} else {
			fmt.Fprintf(&b, "This looks like ordinary serial code; there is nothing exercising a %s implementation.\n", d)
		}
	case CatLogic:
		b.WriteString("Logic: the computation happens, but the test never verifies its output, which weakens it as a compiler test.\n")
	default:
		fmt.Fprintf(&b, "Syntax and clause usage look consistent with the %s specification.\n", d)
	}

	// Tool-output commentary (agent styles only).
	switch j.Tool {
	case ToolCompileFail:
		b.WriteString("The compiler output shows a non-zero return code with errors.\n")
		if !j.Invalid {
			b.WriteString("However, the reported diagnostics may reflect compiler strictness rather than a defect in the test itself.\n")
		}
	case ToolCompileFailSupport:
		b.WriteString("The compiler rejected the code, but the message indicates an unsupported feature on this toolchain rather than an invalid test.\n")
	case ToolRunFail:
		b.WriteString("The program compiled but exited with a non-zero status when run.\n")
		if !j.Invalid {
			b.WriteString("That failure could stem from the execution environment rather than the test's construction.\n")
		}
	case ToolClean:
		b.WriteString("The compiler returned 0 and the program ran to completion with exit code 0.\n")
		if j.Invalid && j.Category == CatClean {
			b.WriteString("Even so, something about the test's construction leaves me unconvinced of its validity.\n")
		}
	}

	// Occasional filler the real model produces.
	if coin.Bool(0.3) {
		b.WriteString("Memory management between host and device follows the usual data-clause pattern for this kind of test.\n")
	}

	verdictWord := map[bool][2]string{
		true:  {"invalid", "incorrect"},
		false: {"valid", "correct"},
	}[j.Invalid]
	phrase := verdictWord[0]
	if j.Style == StyleDirect {
		phrase = verdictWord[1]
	}
	fmt.Fprintf(&b, "FINAL JUDGEMENT: %s\n", phrase)
	return b.String()
}
