package model

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/spec"
)

const validTestCode = `// acc_demo_0001.c
#include <stdio.h>
#include <stdlib.h>
#define N 128

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    long sum = 0;
    long expect = 0;
    for (int i = 0; i < N; i++) {
        a[i] = i;
        expect += i;
    }
#pragma acc parallel loop copyin(a[0:N]) reduction(+:sum)
    for (int i = 0; i < N; i++) {
        sum += a[i];
    }
    free(a);
    if (sum != expect) {
        printf("FAIL\n");
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`

func directPrompt(d spec.Dialect, code string) string {
	return "Review the following " + d.String() + ` code and evaluate it based on the following criteria:
Syntax: ...
Based on these criteria, evaluate the code in a brief summary, then respond with precisely "FINAL JUDGEMENT: correct" (or incorrect).
Here is the code:
` + code
}

func agentPrompt(d spec.Dialect, code string, compileRC, runRC int, stderr string) string {
	return `Syntax: Ensure all ` + d.String() + ` directives and pragmas are syntactically correct.
Based on these criteria, evaluate the code and determine if it is a valid or invalid test. Think step by step.
You MUST include the exact phrase, "FINAL JUDGEMENT: valid" in your response if you deem the test to be valid.
Here is some information about the code to help you.
When compiled with a compliant ` + d.String() + ` compiler, the below code causes the following outputs:
Compiler return code: ` + itoa(compileRC) + `
Compiler STDERR: ` + stderr + `
Compiler STDOUT:
When the compiled code is run, it gives the following results:
Return code: ` + itoa(runRC) + `
STDERR:
STDOUT: PASS
Here is the code:
` + code
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

func TestTokenizerBasics(t *testing.T) {
	toks := Tokenize(`int main() { return camelCaseName + snake_case_name; } // done`)
	var words []string
	comments := 0
	for _, tok := range toks {
		switch tok.Kind {
		case TokWord:
			words = append(words, tok.Text)
		case TokComment:
			comments++
		}
	}
	joined := strings.Join(words, " ")
	for _, want := range []string{"camel", "case", "name", "snake"} {
		if !strings.Contains(joined, want) {
			t.Errorf("subword %q missing from %q", want, joined)
		}
	}
	if comments != 1 {
		t.Errorf("comments = %d, want 1", comments)
	}
}

func TestTokenizerNeverPanics(t *testing.T) {
	if err := quick.Check(func(s string) bool {
		_ = Tokenize(s)
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNGramSeparatesCodeFromGarbage(t *testing.T) {
	ng := NewNGram()
	code := ng.Score(validTestCode)
	garbage := ng.Score("flarb quon ##  <<< zeta:: }{ @ BEGIN ;;; ::= ->> ~~>")
	if code <= garbage {
		t.Fatalf("plausibility failed to separate: code=%v garbage=%v", code, garbage)
	}
}

func TestFeatureExtractionCleanFile(t *testing.T) {
	ft := ExtractFeatures(validTestCode, spec.OpenACC, NewNGram())
	if ft.DirectiveLines != 1 || ft.UnknownDirectives != 0 {
		t.Fatalf("directives = %d/%d", ft.DirectiveLines, ft.UnknownDirectives)
	}
	if ft.ParseBroken || ft.UndeclaredUse {
		t.Fatalf("clean file misperceived: %+v", ft)
	}
	if !ft.HasCheckLogic || !ft.HasComputeLoop {
		t.Fatalf("check/compute not detected: %+v", ft)
	}
	if Categorize(ft) != CatClean {
		t.Fatalf("category = %v", Categorize(ft))
	}
}

func TestFeaturePerceptionPerMutationShape(t *testing.T) {
	ng := NewNGram()
	cases := []struct {
		name string
		mut  func(string) string
		want Category
	}{
		{"swap", func(s string) string {
			return strings.Replace(s, "acc parallel loop", "acc paralel loop", 1)
		}, CatDirective},
		{"bracket", func(s string) string {
			return strings.Replace(s, "int main()\n{", "int main()\n", 1)
		}, CatSyntax},
		{"undeclared", func(s string) string {
			return strings.Replace(s, "sum += a[i];", "sum += a[i];\n        ghost_var = ghost_var + 1;", 1)
		}, CatUndeclared},
		{"truncated", func(s string) string {
			return strings.Replace(s, `    if (sum != expect) {
        printf("FAIL\n");
        return 1;
    }
`, "", 1)
		}, CatLogic},
		{"random", func(string) string {
			return "#include <stdio.h>\nint main() { printf(\"hi\\n\"); return 0; }\n"
		}, CatNoDirectives},
		{"clause-removal-looks-clean", func(s string) string {
			return strings.Replace(s, " copyin(a[0:N])", "", 1)
		}, CatClean},
	}
	for _, c := range cases {
		ft := ExtractFeatures(c.mut(validTestCode), spec.OpenACC, ng)
		if got := Categorize(ft); got != c.want {
			t.Errorf("%s: category = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFailClosedWithoutSuccessPathIsLogic(t *testing.T) {
	src := strings.Replace(validTestCode, `    if (sum != expect) {
        printf("FAIL\n");
        return 1;
    }
    printf("PASS\n");
    return 0;`, `    int status = 1;
    if (sum != expect) {
        printf("FAIL\n");
    }
    return status;`, 1)
	ft := ExtractFeatures(src, spec.OpenACC, nil)
	if ft.HasCheckLogic {
		t.Fatal("fail-closed file with no success path should read as broken logic")
	}
}

func TestModelDeterminism(t *testing.T) {
	m1, m2 := New(7), New(7)
	p := directPrompt(spec.OpenACC, validTestCode)
	if m1.Complete(p) != m2.Complete(p) {
		t.Fatal("same seed, same prompt, different completion")
	}
	m3 := New(8)
	same := 0
	for i := 0; i < 20; i++ {
		code := strings.Replace(validTestCode, "0001", itoa(i), 1)
		if m1.Complete(directPrompt(spec.OpenACC, code)) == m3.Complete(directPrompt(spec.OpenACC, code)) {
			same++
		}
	}
	if same == 20 {
		t.Fatal("different seeds never diverged")
	}
}

func TestCompleteContainsExactPhrase(t *testing.T) {
	m := New(1)
	for i := 0; i < 10; i++ {
		code := strings.Replace(validTestCode, "0001", itoa(i), 1)
		resp := m.Complete(directPrompt(spec.OpenACC, code))
		if !strings.Contains(resp, "FINAL JUDGEMENT: correct") && !strings.Contains(resp, "FINAL JUDGEMENT: incorrect") {
			t.Fatalf("direct response lacks correct/incorrect phrase:\n%s", resp)
		}
		resp = m.Complete(agentPrompt(spec.OpenACC, code, 0, 0, ""))
		if !strings.Contains(resp, "FINAL JUDGEMENT: valid") && !strings.Contains(resp, "FINAL JUDGEMENT: invalid") {
			t.Fatalf("agent response lacks valid/invalid phrase:\n%s", resp)
		}
	}
}

func TestStyleDetection(t *testing.T) {
	m := New(2)
	j, _ := m.Judge(directPrompt(spec.OpenMP, validTestCode))
	if j.Style != StyleDirect {
		t.Fatalf("style = %v, want direct", j.Style)
	}
	j, _ = m.Judge(agentPrompt(spec.OpenMP, validTestCode, 0, 0, ""))
	if j.Style != StyleAgentDirect {
		t.Fatalf("style = %v, want agent-direct", j.Style)
	}
	indirect := "Describe what the below OpenMP program will do when run. Think step by step.\n" +
		"Here is some information about the code to help you; you do not have to compile or run the code yourself.\n" +
		"Compiler return code: 0\nCompiler STDERR: \nCompiler STDOUT: \n" +
		"When the compiled code is run, it gives the following results:\nReturn code: 0\nSTDOUT: \nSTDERR: \n" +
		"Here is the code for you to analyze:\n" + validTestCode
	j, _ = m.Judge(indirect)
	if j.Style != StyleAgentIndirect {
		t.Fatalf("style = %v, want agent-indirect", j.Style)
	}
}

func TestDialectDetection(t *testing.T) {
	m := New(3)
	j, _ := m.Judge(directPrompt(spec.OpenMP, validTestCode))
	if j.Dialect != spec.OpenMP {
		t.Fatalf("dialect = %v", j.Dialect)
	}
	j, _ = m.Judge(directPrompt(spec.OpenACC, validTestCode))
	if j.Dialect != spec.OpenACC {
		t.Fatalf("dialect = %v", j.Dialect)
	}
}

func TestToolStateParsing(t *testing.T) {
	m := New(4)
	cases := []struct {
		compileRC, runRC int
		stderr           string
		want             ToolState
	}{
		{0, 0, "", ToolClean},
		{0, 1, "", ToolRunFail},
		{1, 0, "nvc t.c:3: error: use of undeclared identifier \"x\"\nnvc: 1 error(s) generated.", ToolCompileFail},
		{1, 0, "nvc t.c:3: error: tile clause is not supported by this accelerator target\nnvc: 1 error(s) generated.", ToolCompileFailSupport},
		{1, 0, "nvc t.c:3: error: tile clause is not supported by this target\nnvc t.c:9: error: unknown directive \"paralel\"\nnvc: 2 error(s) generated.", ToolCompileFail},
	}
	for _, c := range cases {
		j, _ := m.Judge(agentPrompt(spec.OpenACC, validTestCode, c.compileRC, c.runRC, c.stderr))
		if j.Tool != c.want {
			t.Errorf("compileRC=%d runRC=%d stderr=%q: tool = %v, want %v",
				c.compileRC, c.runRC, c.stderr, j.Tool, c.want)
		}
	}
}

func TestDirectStyleIgnoresToolMarkers(t *testing.T) {
	m := New(5)
	j, _ := m.Judge(directPrompt(spec.OpenACC, validTestCode))
	if j.Tool != ToolNone {
		t.Fatalf("direct prompt tool state = %v, want none", j.Tool)
	}
}

// TestCalibratedRates verifies the decision head actually samples at
// the configured probability: the no-directive detection asymmetry is
// the paper's most dramatic direct-prompt finding (80% ACC vs 4% OMP).
func TestCalibratedRates(t *testing.T) {
	m := New(6)
	plainC := "#include <stdio.h>\nint compute(int v) { return v * 3; }\nint main() { printf(\"%d\\n\", compute(VARIANT)); return 0; }\n"
	trial := func(d spec.Dialect) float64 {
		invalid := 0
		const n = 400
		for i := 0; i < n; i++ {
			code := strings.Replace(plainC, "VARIANT", itoa(i), 1)
			j, _ := m.Judge(directPrompt(d, code))
			if j.Category != CatNoDirectives {
				t.Fatalf("plain C perceived as %v", j.Category)
			}
			if j.Invalid {
				invalid++
			}
		}
		return float64(invalid) / n
	}
	acc := trial(spec.OpenACC)
	omp := trial(spec.OpenMP)
	if acc < 0.7 || acc > 0.9 {
		t.Errorf("ACC no-directive detection rate = %v, want ~0.80", acc)
	}
	if omp > 0.10 {
		t.Errorf("OMP no-directive detection rate = %v, want ~0.03", omp)
	}
}

func TestRationaleMentionsFindings(t *testing.T) {
	m := New(9)
	swapped := strings.Replace(validTestCode, "acc parallel loop", "acc paralel loop", 1)
	// Sample until the verdict is invalid so the rationale references
	// the unknown directive confidently.
	found := false
	for i := 0; i < 50 && !found; i++ {
		code := strings.Replace(swapped, "0001", itoa(i), 1)
		j, resp := m.Judge(agentPrompt(spec.OpenACC, code, 1, 0, "nvc t.c:9: error: unknown directive\nnvc: 1 error(s) generated."))
		if j.Category == CatDirective && strings.Contains(resp, "paralel") {
			found = true
		}
	}
	if !found {
		t.Fatal("rationales never mention the misspelled directive")
	}
}

func TestFortranFeatureExtraction(t *testing.T) {
	src := `program t
    implicit none
    integer :: i, s
    s = 0
    !$acc parallel loop reduction(+:s)
    do i = 1, 100
        s = s + i
    end do
    if (s /= 5050) then
        stop 1
    end if
end program t
`
	ft := ExtractFeatures(src, spec.OpenACC, nil)
	if !ft.IsFortran {
		t.Fatal("Fortran not detected")
	}
	if ft.DirectiveLines != 1 || ft.UnknownDirectives != 0 {
		t.Fatalf("directives = %d/%d", ft.DirectiveLines, ft.UnknownDirectives)
	}
	if !ft.HasCheckLogic {
		t.Fatal("stop 1 check logic not detected")
	}
	bad := strings.Replace(src, "s = s + i", "s = s + undeclared_thing", 1)
	ft = ExtractFeatures(bad, spec.OpenACC, nil)
	if !ft.UndeclaredUse {
		t.Fatal("Fortran undeclared use not detected")
	}
	if Categorize(ft) != CatUndeclared {
		t.Fatalf("category = %v", Categorize(ft))
	}
}

func BenchmarkTokenize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Tokenize(validTestCode)
	}
}

func BenchmarkNGramScore(b *testing.B) {
	ng := NewNGram()
	for i := 0; i < b.N; i++ {
		_ = ng.Score(validTestCode)
	}
}

func BenchmarkJudgeCompletion(b *testing.B) {
	m := New(1)
	p := agentPrompt(spec.OpenACC, validTestCode, 0, 0, "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Complete(p)
	}
}
