package model

import (
	"math"
	"strings"
)

// NGram is a character-trigram language model with add-one smoothing,
// the simulated model's sense of whether text "looks like" the code it
// was trained on. It backs the plausibility feature: randomly
// generated garbage scores far below real directive tests, and the
// rationale generator quotes the score qualitatively.
type NGram struct {
	counts   map[string]int
	context  map[string]int
	vocabLen int
}

// trainingCorpus is a small embedded sample of the kind of text a code
// LLM has absorbed: C with directives, Fortran, and reporting idioms.
// It is intentionally tiny — the model only needs relative plausibility.
const trainingCorpus = `
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#define N 1024
int main() {
    double *a = (double *)malloc(N * sizeof(double));
    int errs = 0;
    for (int i = 0; i < N; i++) {
        a[i] = i * 0.5;
    }
#pragma acc parallel loop copyin(a[0:N]) reduction(+:sum)
#pragma acc data copy(a[0:N]) create(b[0:N])
#pragma acc enter data copyin(a[0:N])
#pragma acc update host(a[0:N])
#pragma omp parallel for reduction(+:total)
#pragma omp target teams distribute parallel for map(tofrom: a[0:N])
#pragma omp target data map(to: x[0:N]) map(from: y[0:N])
#pragma omp atomic
    for (int i = 0; i < N; i++) {
        sum += a[i] * b[i];
    }
    if (fabs(sum - expect) > 1e-9) {
        printf("FAIL: %d errors\n", errs);
        return 1;
    }
    printf("Test passed\n");
    free(a);
    return 0;
}
int helper(int x) { return x * x + 1; }
while (j < n) { j++; }
program vecadd
    use openacc
    implicit none
    integer, parameter :: n = 1024
    real(8) :: a(n), b(n)
    do i = 1, n
        c(i) = a(i) + b(i)
    end do
    !$acc parallel loop copyin(a, b) copyout(c)
    if (errs /= 0) then
        print *, "Test failed"
        stop 1
    end if
end program vecadd
`

// NewNGram trains the trigram model over the embedded corpus.
func NewNGram() *NGram {
	ng := &NGram{counts: map[string]int{}, context: map[string]int{}, vocabLen: 96}
	ng.Train(trainingCorpus)
	return ng
}

// Train adds text to the model.
func (ng *NGram) Train(text string) {
	t := normalize(text)
	for i := 0; i+3 <= len(t); i++ {
		ng.counts[t[i:i+3]]++
		ng.context[t[i:i+2]]++
	}
}

// Score returns the average per-trigram log2 probability of text;
// higher (less negative) is more plausible.
func (ng *NGram) Score(text string) float64 {
	t := normalize(text)
	if len(t) < 3 {
		return 0
	}
	total := 0.0
	n := 0
	for i := 0; i+3 <= len(t); i++ {
		c := ng.counts[t[i:i+3]]
		ctx := ng.context[t[i:i+2]]
		p := (float64(c) + 1) / (float64(ctx) + float64(ng.vocabLen))
		total += math.Log2(p)
		n++
	}
	return total / float64(n)
}

// normalize maps text onto the model's reduced alphabet: lower-case,
// digits folded to '9', runs of spaces collapsed.
func normalize(text string) string {
	var b strings.Builder
	b.Grow(len(text))
	prevSpace := false
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case c >= 'A' && c <= 'Z':
			c += 32
		case c >= '0' && c <= '9':
			c = '9'
		case c == '\t' || c == '\r' || c == '\n':
			c = ' '
		}
		if c == ' ' {
			if prevSpace {
				continue
			}
			prevSpace = true
		} else {
			prevSpace = false
		}
		b.WriteByte(c)
	}
	return b.String()
}
