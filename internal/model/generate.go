package model

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/probe"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/testlang"
)

// Test generation is the reproduction of the paper's stated future
// work ("exploring the automation of compiler test generation based on
// lessons learnt from this work", §VI) and of the predecessor paper's
// observed behaviour (arXiv:2310.04963): deepseek-coder-33B-instruct
// generated directive tests of which roughly 70% compiled and roughly
// half ran correctly.
//
// The simulated model mirrors that: asked to write a test for a
// feature, it produces a corpus-quality test with probability
// genCleanProb, and otherwise a test carrying one of the defect
// classes the real model's failures exhibit — the same classes
// negative probing injects, which is precisely why the paper's
// pipeline is the right filter for generated tests.

// Defect mix for generated tests, calibrated to the predecessor
// paper's compile (~70%) and pass (~50%) rates.
const genCleanProb = 0.52

var genDefects = []struct {
	issue probe.Issue
	prob  float64
	label string
}{
	{probe.IssueTruncated, 0.13, "missing-verification"},
	{probe.IssueDirective, 0.14, "wrong-directive-or-clause"},
	{probe.IssueUndeclared, 0.08, "undeclared-identifier"},
	{probe.IssueBracket, 0.09, "unbalanced-syntax"},
	{probe.IssueRandom, 0.04, "off-task-output"},
}

// IsGenerationPrompt reports whether a prompt asks the model to write
// a test rather than judge one.
func IsGenerationPrompt(prompt string) bool {
	return strings.Contains(prompt, "Write a complete") &&
		strings.Contains(prompt, "compiler test")
}

// GenerateTest produces test code for a generation prompt, returning
// the code and the ground-truth defect label ("" when the test is
// sound). The defect label exists so the generation-loop experiments
// can score the pipeline filter; a caller honouring the LLM contract
// uses only the code (Complete returns just the code).
func (m *Model) GenerateTest(prompt string) (code, defect string) {
	d := detectDialect(prompt)
	feature := parseFeature(prompt)
	coin := rng.New(m.seed ^ 0x9e37).Split(prompt)

	id := pickTemplate(d, feature, coin)
	lang := testlang.LangC
	tf, err := corpus.InstantiateTemplate(d, id, lang, coin.Uint64())
	if err != nil {
		// Unknown template cannot happen for picks from TemplateIDs;
		// fall back to an off-task response, which the pipeline will
		// reject — the shape a confused model produces.
		return corpus.RandomForLang(coin, lang, corpus.DefaultRandomOpts()), "off-task-output"
	}

	roll := coin.Float64()
	if roll < genCleanProb {
		return tf.Source, ""
	}
	roll -= genCleanProb
	for _, gd := range genDefects {
		if roll < gd.prob {
			pf := probe.Mutate(tf, gd.issue, coin.Split("defect"))
			return pf.Source, gd.label
		}
		roll -= gd.prob
	}
	return tf.Source, ""
}

// parseFeature extracts the requested feature id from a generation
// prompt ("... that exercises <feature>.").
func parseFeature(prompt string) string {
	marker := "that exercises "
	i := strings.Index(prompt, marker)
	if i < 0 {
		return ""
	}
	rest := prompt[i+len(marker):]
	if j := strings.IndexAny(rest, ".\n"); j >= 0 {
		rest = rest[:j]
	}
	return strings.TrimSpace(rest)
}

// pickTemplate matches the requested feature to a corpus template,
// skipping templates the paired toolchain cannot build (the model
// "knows" the target environment from its prompt history); unknown
// features get a deterministic pick.
func pickTemplate(d spec.Dialect, feature string, coin *rng.Source) string {
	ids := corpus.TemplateIDs(d)
	supported := ids[:0:0]
	for _, id := range ids {
		if !corpus.TemplateUnsupported(d, id) {
			supported = append(supported, id)
		}
	}
	for _, id := range supported {
		if id == feature || strings.Contains(id, feature) && feature != "" {
			return id
		}
	}
	return supported[coin.Intn(len(supported))]
}

// GenerationPrompt renders the canonical generation request for a
// feature, with a nonce so repeated requests draw fresh samples.
func GenerationPrompt(d spec.Dialect, feature string, nonce int) string {
	return fmt.Sprintf(`Write a complete %s compiler test in C that exercises %s.
The test should initialise its data, perform the computation using %s directives,
verify the results against a serial reference, print a pass/fail message, and
return 0 on success and non-zero on failure.
Candidate: %d
Output only the code.`, d, feature, d, nonce)
}
