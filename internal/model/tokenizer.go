// Package model implements the simulated code LLM standing in for
// deepseek-coder-33B-instruct. The paper's experiments measure the
// interaction between a fallible judge and its prompts/tools, not the
// internals of a transformer, so the simulation keeps every externally
// observable property — prompt-dependent behaviour, stochastic
// verdicts with calibrated per-category error rates, free-text
// rationales ending in the exact "FINAL JUDGEMENT" phrase — while the
// underlying "reasoning" is a transparent pipeline: tokenize, score
// plausibility with an n-gram language model, extract structural
// features, and sample a verdict from a calibration table fitted to
// the paper's measured accuracies (see EXPERIMENTS.md for the fit).
//
// The only entry point is Model.Complete(prompt), the same contract a
// real LLM endpoint would have; the judge package never passes
// structured data.
package model

import "strings"

// TokenKind classifies a code token for the tokenizer.
type TokenKind int

const (
	TokWord TokenKind = iota
	TokNumber
	TokString
	TokOp
	TokComment
)

// Token is one lexical unit of code text.
type Token struct {
	Kind TokenKind
	Text string
}

// Tokenize splits code text the way a code-LM tokenizer coarsely
// would: identifiers (split at underscores and camelCase boundaries),
// numbers, strings, comments and operator runs.
func Tokenize(src string) []Token {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			j := i
			for j < n && src[j] != '\n' {
				j++
			}
			toks = append(toks, Token{Kind: TokComment, Text: src[i:j]})
			i = j
		case c == '/' && i+1 < n && src[i+1] == '*':
			j := i + 2
			for j+1 < n && !(src[j] == '*' && src[j+1] == '/') {
				j++
			}
			if j+1 < n {
				j += 2
			}
			toks = append(toks, Token{Kind: TokComment, Text: src[i:j]})
			i = j
		case c == '!' && isFortranCommentStart(src, i):
			j := i
			for j < n && src[j] != '\n' {
				j++
			}
			toks = append(toks, Token{Kind: TokComment, Text: src[i:j]})
			i = j
		case c == '"' || c == '\'':
			q := c
			j := i + 1
			for j < n && src[j] != q {
				if src[j] == '\\' {
					j++
				}
				j++
			}
			if j < n {
				j++
			}
			toks = append(toks, Token{Kind: TokString, Text: src[i:j]})
			i = j
		case isDigit(c):
			j := i
			for j < n && (isDigit(src[j]) || src[j] == '.' || src[j] == 'x' ||
				src[j] == 'e' || src[j] == 'E' || src[j] == 'f' || src[j] == 'L') {
				j++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: src[i:j]})
			i = j
		case isWordStart(c):
			j := i
			for j < n && isWordCont(src[j]) {
				j++
			}
			toks = append(toks, subWords(src[i:j])...)
			i = j
		default:
			j := i
			for j < n && !isWordStart(src[j]) && !isDigit(src[j]) &&
				src[j] != ' ' && src[j] != '\t' && src[j] != '\n' && src[j] != '\r' &&
				src[j] != '"' && src[j] != '\'' {
				j++
			}
			if j == i {
				j++
			}
			toks = append(toks, Token{Kind: TokOp, Text: src[i:j]})
			i = j
		}
	}
	return toks
}

// isFortranCommentStart distinguishes Fortran comments from the C
// logical-not operator: a '!' at line start (possibly after spaces) in
// a file context is a comment; mid-expression it is an operator. The
// tokenizer only needs a heuristic: '!' followed by a space or '$'.
func isFortranCommentStart(src string, i int) bool {
	if i+1 >= len(src) {
		return false
	}
	next := src[i+1]
	return next == '$' || next == ' '
}

// subWords splits a long identifier at underscores and camelCase
// boundaries, mimicking BPE-style subword segmentation.
func subWords(w string) []Token {
	var out []Token
	start := 0
	flush := func(end int) {
		if end > start {
			out = append(out, Token{Kind: TokWord, Text: strings.ToLower(w[start:end])})
		}
	}
	for i := 1; i < len(w); i++ {
		if w[i] == '_' {
			flush(i)
			start = i + 1
			continue
		}
		if isUpper(w[i]) && !isUpper(w[i-1]) && w[i-1] != '_' {
			flush(i)
			start = i
		}
	}
	flush(len(w))
	if len(out) == 0 {
		out = append(out, Token{Kind: TokWord, Text: strings.ToLower(w)})
	}
	return out
}

func isDigit(c byte) bool     { return c >= '0' && c <= '9' }
func isUpper(c byte) bool     { return c >= 'A' && c <= 'Z' }
func isWordStart(c byte) bool { return c == '_' || c == '#' || (c|0x20 >= 'a' && c|0x20 <= 'z') }
func isWordCont(c byte) bool  { return isWordStart(c) || isDigit(c) }

// WordSet returns the distinct lower-cased word tokens of src, used by
// the feature extractor.
func WordSet(src string) map[string]bool {
	out := map[string]bool{}
	for _, t := range Tokenize(src) {
		if t.Kind == TokWord {
			out[t.Text] = true
		}
	}
	return out
}
