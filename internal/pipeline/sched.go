package pipeline

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compiler"
	"repro/internal/machine"
	"repro/internal/trace"
)

// Item is one file moving through a stage graph. Stages read Input,
// record tool evidence in Compile/Exec, and write outcomes to the
// file's FileResult via Result. The scheduler owns the unexported
// bookkeeping: per-stage dependency counters, the remaining-stage
// count that seals the file, and the short-circuit flag.
type Item struct {
	// Index is the file's position in the slice passed to Run or
	// RunGraph (and in the returned results).
	Index int
	// Input is the file under validation.
	Input Input
	// Compile and Exec carry tool evidence between stages; the
	// built-in stages populate them, custom stages may read or extend
	// them.
	Compile *compiler.Result
	Exec    *machine.Result

	result *FileResult
	// ctx carries the file's trace root (span) through the stages;
	// without a tracer it aliases the run context and span is nil.
	ctx  context.Context
	span *trace.Span
	// deps[s] counts unmet prerequisites before stage s may run: one
	// per in-edge of s plus one per DependsOn dependency (which gate
	// every stage of the dependent file). Dispatch fires when the
	// count crosses zero.
	deps []atomic.Int32
	// remaining counts stages not yet completed; the file seals at 0.
	remaining atomic.Int32
	stopped   atomic.Bool
}

// Context returns the file's context: the run context, extended with
// the file's trace when the run is traced. Batched stages receive a
// carrier context in Run; per-file work inside them should use each
// item's own Context so sub-spans land on the right trace.
func (it *Item) Context() context.Context { return it.ctx }

// Result returns the file's FileResult for the stage to record
// outcomes on. The pointed-to value is owned by one stage at a time
// (the graph's edges order the handoffs), aggregated into the slice
// Run returns.
func (it *Item) Result() *FileResult { return it.result }

// Stop short-circuits the file: stages it has not yet entered are
// skipped and its fate is sealed from the evidence recorded so far.
// The built-in stages call it when a file fails compile or execution
// outside record-all mode — the file's invalidity is demonstrated, so
// the remaining (more expensive) stages have nothing to add.
func (it *Item) Stop() { it.stopped.Store(true) }

// runConfig is the run-level slice of Config the scheduler needs.
type runConfig struct {
	onResult     func(FileResult)
	tracer       *trace.Tracer
	judgeEnabled bool
}

// scheduler executes one graph run: files advance through stages the
// moment their per-stage prerequisite counters reach zero, with no
// barriers between stages or files.
type scheduler struct {
	ctx   context.Context
	g     *Graph
	rc    runConfig
	items []Item
	// dependents[i] lists files whose DependsOn names file i; nil
	// when no input declares dependencies (the fast path).
	dependents [][]int
	chans      []chan *Item
	done       chan struct{}
	// outstanding counts unsealed files; done closes at zero.
	outstanding atomic.Int64

	// The first stage error (a failing context-aware backend, or the
	// context itself) aborts the run: workers drain without working
	// once it is set, and the run reports it even when ctx stays
	// live. runErr is only read after the worker pools are joined.
	runErr  error
	errOnce sync.Once
	failed  atomic.Bool
}

func (sc *scheduler) fail(err error) {
	sc.errOnce.Do(func() {
		sc.runErr = err
		sc.failed.Store(true)
	})
}

func (sc *scheduler) aborted() bool { return sc.failed.Load() || sc.ctx.Err() != nil }

// RunGraph schedules files through a custom stage graph and returns
// per-file results in input order. cfg supplies only the run-level
// hooks — OnResult, Tracer, and (through Judge being non-nil) whether
// the final verdict defers to a judge stage; workers, batching, and
// observers ride each stage's own StageSpec. Stats carries the file
// count only: the built-in counters belong to the built-in stages,
// which Run wires up.
//
// Cancellation and stage errors behave exactly as in Run: the stages
// drain without further work and the partial results return with the
// first error.
func RunGraph(ctx context.Context, cfg Config, g *Graph, files []Input) ([]FileResult, Stats, error) {
	stats := Stats{Files: len(files)}
	results, err := runGraph(ctx, runConfig{
		onResult:     cfg.OnResult,
		tracer:       cfg.Tracer,
		judgeEnabled: cfg.Judge != nil,
	}, g, files)
	return results, stats, err
}

func runGraph(ctx context.Context, rc runConfig, g *Graph, files []Input) ([]FileResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]FileResult, len(files))
	for i := range files {
		results[i] = FileResult{Index: i, Name: files[i].Name}
	}
	if len(files) == 0 {
		return results, ctx.Err()
	}
	deps, dependents, err := fileDeps(files)
	if err != nil {
		return results, err
	}

	ns := len(g.stages)
	sc := &scheduler{
		ctx:        ctx,
		g:          g,
		rc:         rc,
		items:      make([]Item, len(files)),
		dependents: dependents,
		chans:      make([]chan *Item, ns),
		done:       make(chan struct{}),
	}
	sc.outstanding.Store(int64(len(files)))
	for s := range sc.chans {
		sc.chans[s] = make(chan *Item, len(files))
	}
	// One flat backing array holds every per-stage counter: n*ns
	// atomics in a single allocation instead of one slice per file.
	counters := make([]atomic.Int32, len(files)*ns)
	for i := range sc.items {
		it := &sc.items[i]
		it.Index = i
		it.Input = files[i]
		it.result = &results[i]
		it.ctx = ctx
		it.deps = counters[i*ns : (i+1)*ns]
		nd := 0
		if deps != nil {
			nd = len(deps[i])
		}
		for s := 0; s < ns; s++ {
			it.deps[s].Store(int32(g.indeg[s] + nd))
		}
		it.remaining.Store(int32(ns))
		if rc.tracer != nil {
			it.ctx, it.span = rc.tracer.StartTrace(ctx, "file")
			it.span.SetAttr("name", files[i].Name)
		}
	}

	var wg sync.WaitGroup
	for s := range g.stages {
		spec := g.specs[s]
		bcap := spec.Batch
		if bcap < 1 {
			bcap = 1
		}
		for w := 0; w < spec.workers(); w++ {
			wg.Add(1)
			go func(s, bcap int) {
				defer wg.Done()
				buf := make([]*Item, 0, bcap)
				for {
					select {
					case it := <-sc.chans[s]:
						buf = sc.work(s, it, buf)
					case <-sc.done:
						return
					}
				}
			}(s, bcap)
		}
	}

	// Seed every (file, stage) pair whose initial prerequisite count
	// is zero — the graph's root stages, for files with no upstream
	// DependsOn. Everything else dispatches when completions drive
	// its counter to zero. The initial counts, not the live counters,
	// decide seeding: a worker may already be decrementing.
	for i := range sc.items {
		it := &sc.items[i]
		nd := 0
		if deps != nil {
			nd = len(deps[i])
		}
		for s := 0; s < ns; s++ {
			if g.indeg[s]+nd == 0 {
				sc.dispatch(it, s)
			}
		}
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		sc.fail(err)
	}
	return results, sc.runErr
}

// dispatch hands a ready (file, stage) pair to the stage's worker
// pool — or completes it on the spot when the run is draining, the
// file short-circuited, or the stage's Applies gate rejects it.
// Channels are buffered to the file count, so dispatch never blocks.
func (sc *scheduler) dispatch(it *Item, s int) {
	if sc.aborted() || it.stopped.Load() {
		sc.completeStage(it, s)
		return
	}
	if ap := sc.g.applies[s]; ap != nil && !ap(it) {
		sc.completeStage(it, s)
		return
	}
	sc.chans[s] <- it
}

// work runs one stage execution: the dequeued file plus, for
// batch-shaped stages, up to Batch-1 more already-waiting files
// coalesced into the same Run call. buf is the worker's reusable
// batch buffer.
func (sc *scheduler) work(s int, first *Item, buf []*Item) []*Item {
	g := sc.g
	spec := g.specs[s]
	buf = append(buf[:0], first)
coalesce:
	for len(buf) < spec.Batch {
		select {
		case more := <-sc.chans[s]:
			buf = append(buf, more)
		default:
			break coalesce
		}
	}
	if sc.aborted() {
		for _, it := range buf {
			sc.completeStage(it, s)
		}
		return buf
	}
	// A parallel branch may have stopped a file after dispatch;
	// stopped files skip the stage here too.
	run := buf[:0:len(buf)]
	for _, it := range buf {
		if it.stopped.Load() {
			sc.completeStage(it, s)
			continue
		}
		run = append(run, it)
	}
	if len(run) == 0 {
		return buf
	}

	// Batch-shaped stages trace as one "<name>.batch" carrier span
	// under the first batched file's trace; per-file stages open one
	// "<name>" span on the file's own trace. The span's context hands
	// the trace onward to everything the stage calls.
	rctx := run[0].ctx
	var span *trace.Span
	if run[0].span != nil {
		if spec.Batch >= 1 {
			rctx, span = trace.Start(run[0].ctx, spec.Name+".batch")
			span.SetAttr("batch_size", strconv.Itoa(len(run)))
		} else {
			rctx, span = trace.Start(run[0].ctx, spec.Name)
		}
	}
	var err error
	if spec.Observe == nil {
		err = g.stages[s].Run(rctx, run)
	} else {
		start := time.Now()
		err = g.stages[s].Run(rctx, run)
		spec.Observe(spec.Name, time.Since(start))
	}
	span.End()
	if err != nil {
		sc.fail(err) // backend or context failure; abort the run
	}
	for _, it := range run {
		sc.completeStage(it, s)
	}
	return buf
}

// completeStage retires one (file, stage) pair: successor stages and
// dependent files learn of the completion (dispatching any that
// become ready), and the file seals when its last stage retires.
func (sc *scheduler) completeStage(it *Item, s int) {
	for _, succ := range sc.g.succs[s] {
		sc.arrive(it, succ)
	}
	if sc.dependents != nil {
		for _, d := range sc.dependents[it.Index] {
			sc.arrive(&sc.items[d], s)
		}
	}
	if it.remaining.Add(-1) == 0 {
		sc.seal(it)
		if sc.outstanding.Add(-1) == 0 {
			close(sc.done)
		}
	}
}

// arrive records one met prerequisite for (file, stage), dispatching
// the pair when the last one lands.
func (sc *scheduler) arrive(it *Item, s int) {
	if it.deps[s].Add(-1) == 0 {
		sc.dispatch(it, s)
	}
}

// seal fixes a file's fate: its final verdict is computable from the
// stages that ran, so it streams to the caller without waiting for
// the rest of the suite. Sealing ends the file's trace. Aborted runs
// drain without sealing — partial files keep their zero-valued stage
// flags and are never streamed, exactly as the linear pipeline
// behaved.
func (sc *scheduler) seal(it *Item) {
	if sc.aborted() {
		return
	}
	r := it.result
	r.Valid = finalVerdict(r, sc.rc.judgeEnabled)
	if it.span != nil {
		it.span.SetAttr("valid", strconv.FormatBool(r.Valid))
		if r.JudgeRan {
			it.span.SetAttr("verdict", r.Verdict.String())
		}
		it.span.End()
	}
	if sc.rc.onResult != nil {
		sc.rc.onResult(*r)
	}
}

// fileDeps resolves Input.DependsOn into index form: deps[i] lists
// the files i waits for, dependents[j] the files waiting on j. All
// nil when no input declares dependencies. Unknown or self
// dependencies, duplicate names among the inputs, and dependency
// cycles (Kahn over the file graph) are errors.
func fileDeps(files []Input) (deps, dependents [][]int, err error) {
	any := false
	for i := range files {
		if len(files[i].DependsOn) > 0 {
			any = true
			break
		}
	}
	if !any {
		return nil, nil, nil
	}
	index := make(map[string]int, len(files))
	for i := range files {
		if j, dup := index[files[i].Name]; dup {
			return nil, nil, fmt.Errorf("pipeline: inputs %d and %d share the name %q; DependsOn needs unique names", j, i, files[i].Name)
		}
		index[files[i].Name] = i
	}
	deps = make([][]int, len(files))
	dependents = make([][]int, len(files))
	for i := range files {
		for _, name := range files[i].DependsOn {
			j, ok := index[name]
			if !ok {
				return nil, nil, fmt.Errorf("pipeline: input %q depends on unknown input %q", files[i].Name, name)
			}
			if j == i {
				return nil, nil, fmt.Errorf("pipeline: input %q depends on itself", files[i].Name)
			}
			deps[i] = append(deps[i], j)
			dependents[j] = append(dependents[j], i)
		}
	}
	indeg := make([]int, len(files))
	for i := range deps {
		indeg[i] = len(deps[i])
	}
	queue := make([]int, 0, len(files))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	retired := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		retired++
		for _, d := range dependents[i] {
			if indeg[d]--; indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if retired != len(files) {
		var cyclic []string
		for i, d := range indeg {
			if d > 0 {
				cyclic = append(cyclic, files[i].Name)
			}
		}
		return nil, nil, fmt.Errorf("pipeline: dependency cycle among inputs %s", strings.Join(cyclic, ", "))
	}
	return deps, dependents, nil
}
