package pipeline

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/corpus"
	"repro/internal/judge"
	"repro/internal/probe"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/testlang"
)

// alwaysLLM answers every prompt with a fixed verdict.
type alwaysLLM struct{ verdict string }

func (a alwaysLLM) Complete(string) string { return "FINAL JUDGEMENT: " + a.verdict }

// countingLLM counts calls (atomically: judge workers run in parallel).
type countingLLM struct {
	verdict string
	calls   atomic.Int64
}

func (c *countingLLM) Complete(string) string {
	c.calls.Add(1)
	return "FINAL JUDGEMENT: " + c.verdict
}

func testInputs(t *testing.T, d spec.Dialect, n int) ([]Input, []probe.Issue) {
	t.Helper()
	files := corpus.Generate(corpus.Config{Dialect: d, Seed: 55}, n)
	inputs := make([]Input, n)
	issues := make([]probe.Issue, n)
	r := rng.New(77)
	for i, f := range files {
		issue := probe.Issue(i % probe.NumIssues)
		pf := probe.Mutate(f, issue, r.Split(f.Name))
		inputs[i] = Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
		issues[i] = issue
	}
	return inputs, issues
}

// runBG runs the pipeline under a background context and fails the
// test on an unexpected error.
func runBG(t testing.TB, cfg Config, inputs []Input) ([]FileResult, Stats) {
	t.Helper()
	results, st, err := Run(context.Background(), cfg, inputs)
	if err != nil {
		t.Fatal(err)
	}
	return results, st
}

func acceptingConfig(d spec.Dialect, llm judge.LLM, recordAll bool) Config {
	return Config{
		Tools:          agent.NewTools(d),
		Judge:          &judge.Judge{LLM: llm, Style: judge.AgentDirect, Dialect: d},
		CompileWorkers: 4,
		ExecWorkers:    4,
		JudgeWorkers:   4,
		RecordAll:      recordAll,
	}
}

func TestPipelineVerdictIsConjunction(t *testing.T) {
	inputs, issues := testInputs(t, spec.OpenACC, 36)
	// Judge says everything is valid, so the pipeline verdict reduces
	// to the mechanical stages.
	results, _ := runBG(t, acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, true), inputs)
	for i, r := range results {
		mech := r.CompileOK && (!r.ExecRan || r.ExecOK)
		if r.Valid != mech {
			t.Errorf("file %d (issue %d): verdict %v but mechanical %v", i, issues[i], r.Valid, mech)
		}
	}
	// Judge says everything is invalid: nothing passes.
	results, _ = runBG(t, acceptingConfig(spec.OpenACC, alwaysLLM{"invalid"}, true), inputs)
	for i, r := range results {
		if r.Valid {
			t.Errorf("file %d passed despite judge rejection", i)
		}
	}
}

func TestResultsInInputOrder(t *testing.T) {
	inputs, _ := testInputs(t, spec.OpenMP, 24)
	results, _ := runBG(t, acceptingConfig(spec.OpenMP, alwaysLLM{"valid"}, true), inputs)
	if len(results) != len(inputs) {
		t.Fatalf("results = %d, want %d", len(results), len(inputs))
	}
	for i, r := range results {
		if r.Index != i || r.Name != inputs[i].Name {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
	}
}

func TestShortCircuitSkipsStages(t *testing.T) {
	inputs, _ := testInputs(t, spec.OpenACC, 36)
	llm := &countingLLM{verdict: "valid"}
	_, stShort := runBG(t, acceptingConfig(spec.OpenACC, llm, false), inputs)
	shortCalls := llm.calls.Load()
	llm2 := &countingLLM{verdict: "valid"}
	_, stAll := runBG(t, acceptingConfig(spec.OpenACC, llm2, true), inputs)
	allCalls := llm2.calls.Load()

	if stShort.Compiles != stAll.Compiles {
		t.Errorf("compile counts differ: %d vs %d", stShort.Compiles, stAll.Compiles)
	}
	// Executions happen only for compiled objects in either mode; the
	// short-circuit saving shows up in judge calls (files that failed
	// compile or execution never reach the expensive LLM stage).
	if stShort.Executions > stAll.Executions {
		t.Errorf("short-circuit executed more than record-all: %d vs %d", stShort.Executions, stAll.Executions)
	}
	if shortCalls >= allCalls {
		t.Errorf("short-circuit did not reduce judge calls: %d vs %d", shortCalls, allCalls)
	}
	if allCalls != stAll.JudgeCalls {
		t.Errorf("stats judge calls %d != llm calls %d", stAll.JudgeCalls, allCalls)
	}
}

func TestShortCircuitAgreesOnVerdicts(t *testing.T) {
	// Short-circuiting must never change a verdict, only skip work.
	inputs, _ := testInputs(t, spec.OpenACC, 36)
	short, _ := runBG(t, acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, false), inputs)
	all, _ := runBG(t, acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, true), inputs)
	for i := range short {
		if short[i].Valid != all[i].Valid {
			t.Errorf("file %d: short=%v recordAll=%v", i, short[i].Valid, all[i].Valid)
		}
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	inputs, _ := testInputs(t, spec.OpenMP, 24)
	var base []FileResult
	for _, w := range []int{1, 2, 8} {
		cfg := acceptingConfig(spec.OpenMP, alwaysLLM{"valid"}, true)
		cfg.CompileWorkers, cfg.ExecWorkers, cfg.JudgeWorkers = w, w, w
		results, _ := runBG(t, cfg, inputs)
		if base == nil {
			base = results
			continue
		}
		for i := range results {
			if results[i].Valid != base[i].Valid || results[i].CompileOK != base[i].CompileOK {
				t.Fatalf("worker count %d changed result %d", w, i)
			}
		}
	}
}

func TestNilJudgeMechanicalOnly(t *testing.T) {
	inputs, _ := testInputs(t, spec.OpenACC, 18)
	cfg := acceptingConfig(spec.OpenACC, nil, true)
	cfg.Judge = nil
	results, st := runBG(t, cfg, inputs)
	if st.JudgeCalls != 0 {
		t.Fatalf("judge calls = %d with nil judge", st.JudgeCalls)
	}
	for i, r := range results {
		if r.JudgeRan {
			t.Fatalf("file %d judged with nil judge", i)
		}
		mech := r.CompileOK && (!r.ExecRan || r.ExecOK)
		if r.Valid != mech {
			t.Fatalf("file %d: mechanical-only verdict wrong", i)
		}
	}
}

func TestKeepResponses(t *testing.T) {
	inputs, _ := testInputs(t, spec.OpenACC, 6)
	cfg := acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, true)
	cfg.KeepResponses = true
	results, _ := runBG(t, cfg, inputs)
	kept := 0
	for _, r := range results {
		if r.Evaluation != nil {
			kept++
			if !strings.Contains(r.Evaluation.Response, "FINAL JUDGEMENT") {
				t.Fatal("kept evaluation lacks response")
			}
		}
	}
	if kept == 0 {
		t.Fatal("no evaluations kept despite KeepResponses")
	}
	cfg.KeepResponses = false
	results, _ = runBG(t, cfg, inputs)
	for _, r := range results {
		if r.Evaluation != nil {
			t.Fatal("evaluation kept without KeepResponses")
		}
	}
}

func TestEmptyInput(t *testing.T) {
	results, st := runBG(t, acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, true), nil)
	if len(results) != 0 || st.Files != 0 {
		t.Fatal("empty input mishandled")
	}
}

func TestFortranFlowsThroughPipeline(t *testing.T) {
	f, err := corpus.InstantiateTemplate(spec.OpenACC, "parallel_loop_vecadd", testlang.LangFortran, 3)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []Input{{Name: f.Name, Source: f.Source, Lang: f.Lang}}
	results, _ := runBG(t, acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, true), inputs)
	r := results[0]
	if !r.CompileOK {
		t.Fatal("valid Fortran failed compile stage")
	}
	if r.ExecRan {
		t.Fatal("Fortran executed despite simulation not running it")
	}
	if !r.Valid {
		t.Fatal("valid Fortran rejected by pipeline")
	}
}

// TestFortranShortCircuitReachesJudge is the regression test for the
// short-circuit-mode bug where a file that compiles to no executable
// object (Fortran) was dropped at the exec stage and never judged,
// contradicting finalVerdict's "leave the decision to the judge"
// contract.
func TestFortranShortCircuitReachesJudge(t *testing.T) {
	f, err := corpus.InstantiateTemplate(spec.OpenACC, "parallel_loop_vecadd", testlang.LangFortran, 3)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []Input{{Name: f.Name, Source: f.Source, Lang: f.Lang}}
	for _, recordAll := range []bool{false, true} {
		llm := &countingLLM{verdict: "valid"}
		results, st := runBG(t, acceptingConfig(spec.OpenACC, llm, recordAll), inputs)
		r := results[0]
		if !r.CompileOK {
			t.Fatalf("recordAll=%v: valid Fortran failed compile stage", recordAll)
		}
		if r.ExecRan {
			t.Fatalf("recordAll=%v: Fortran executed despite simulation not running it", recordAll)
		}
		if !r.JudgeRan || st.JudgeCalls != 1 {
			t.Fatalf("recordAll=%v: Fortran never reached the judge (judged=%v calls=%d)",
				recordAll, r.JudgeRan, st.JudgeCalls)
		}
		if !r.Valid {
			t.Fatalf("recordAll=%v: judge-approved Fortran rejected", recordAll)
		}
	}
}

// TestShortCircuitParityWithFortran extends the verdict-parity
// guarantee to suites containing non-executable files.
func TestShortCircuitParityWithFortran(t *testing.T) {
	inputs, _ := testInputs(t, spec.OpenACC, 24)
	files := corpus.Generate(corpus.Config{
		Dialect: spec.OpenACC,
		Langs:   []testlang.Language{testlang.LangFortran},
		Seed:    99,
	}, 6)
	for _, f := range files {
		inputs = append(inputs, Input{Name: f.Name, Source: f.Source, Lang: f.Lang})
	}
	short, _ := runBG(t, acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, false), inputs)
	all, _ := runBG(t, acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, true), inputs)
	for i := range short {
		if short[i].Valid != all[i].Valid {
			t.Errorf("file %d (%s): short=%v recordAll=%v",
				i, inputs[i].Name, short[i].Valid, all[i].Valid)
		}
	}
}

// blockingLLM parks every completion until its context is cancelled,
// simulating a hung endpoint.
type blockingLLM struct {
	started chan struct{}
	once    sync.Once
}

func (b *blockingLLM) Complete(string) string { return "FINAL JUDGEMENT: valid" }

func (b *blockingLLM) CompleteContext(ctx context.Context, prompt string) (string, error) {
	b.once.Do(func() { close(b.started) })
	<-ctx.Done()
	return "", ctx.Err()
}

func TestContextCancellationReturnsPartialResults(t *testing.T) {
	inputs, _ := testInputs(t, spec.OpenACC, 24)
	llm := &blockingLLM{started: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-llm.started // at least one file is mid-judge
		cancel()
	}()
	start := time.Now()
	results, _, err := Run(ctx, acceptingConfig(spec.OpenACC, llm, true), inputs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	if len(results) != len(inputs) {
		t.Fatalf("partial results slice has %d entries, want %d", len(results), len(inputs))
	}
	compiled := 0
	for _, r := range results {
		if r.JudgeRan {
			t.Errorf("file %d reports a judged verdict from a hung endpoint", r.Index)
		}
		if r.CompileRan {
			compiled++
		}
	}
	if compiled == 0 {
		t.Error("no partial progress recorded before cancellation")
	}
}

// failingLLM is a context-aware endpoint that errors on every call
// while the context is still live.
type failingLLM struct{ err error }

func (f failingLLM) Complete(string) string { return "FINAL JUDGEMENT: valid" }

func (f failingLLM) CompleteContext(context.Context, string) (string, error) {
	return "", f.err
}

func TestBackendErrorAbortsRun(t *testing.T) {
	// A real endpoint failure (not cancellation) must surface as Run's
	// error, not silently score the unjudged files as invalid.
	inputs, _ := testInputs(t, spec.OpenACC, 12)
	wantErr := errors.New("backend exploded")
	results, _, err := Run(context.Background(),
		acceptingConfig(spec.OpenACC, failingLLM{err: wantErr}, true), inputs)
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	for i, r := range results {
		if r.JudgeRan || r.Valid {
			t.Errorf("file %d scored despite failing backend: %+v", i, r)
		}
	}
}

func TestOnResultStreamsEveryFile(t *testing.T) {
	inputs, _ := testInputs(t, spec.OpenACC, 24)
	for _, recordAll := range []bool{false, true} {
		var mu sync.Mutex
		streamed := map[int]FileResult{}
		cfg := acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, recordAll)
		cfg.OnResult = func(r FileResult) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := streamed[r.Index]; dup {
				t.Errorf("file %d streamed twice", r.Index)
			}
			streamed[r.Index] = r
		}
		results, _ := runBG(t, cfg, inputs)
		if len(streamed) != len(inputs) {
			t.Fatalf("recordAll=%v: streamed %d of %d files", recordAll, len(streamed), len(inputs))
		}
		for i, r := range results {
			if s := streamed[i]; s.Valid != r.Valid || s.Name != r.Name || s.Verdict != r.Verdict {
				t.Errorf("recordAll=%v: streamed result %d diverges from final slice", recordAll, i)
			}
		}
	}
}

// gibberishLLM never produces the mandated judgement phrase.
type gibberishLLM struct{}

func (gibberishLLM) Complete(string) string { return "I cannot decide about this file." }

func TestUnparsableResponsesFailSafe(t *testing.T) {
	// A judge whose responses never contain the FINAL JUDGEMENT phrase
	// must never validate a file: unparsable is not approval.
	inputs, _ := testInputs(t, spec.OpenACC, 12)
	results, _ := runBG(t, acceptingConfig(spec.OpenACC, gibberishLLM{}, true), inputs)
	for i, r := range results {
		if r.Valid {
			t.Errorf("file %d validated by an unparsable judge", i)
		}
		if r.JudgeRan && r.Verdict != judge.Unparsable {
			t.Errorf("file %d verdict = %v, want unparsable", i, r.Verdict)
		}
	}
}
