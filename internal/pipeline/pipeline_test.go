package pipeline

import (
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/corpus"
	"repro/internal/judge"
	"repro/internal/probe"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/testlang"
)

// alwaysLLM answers every prompt with a fixed verdict.
type alwaysLLM struct{ verdict string }

func (a alwaysLLM) Complete(string) string { return "FINAL JUDGEMENT: " + a.verdict }

// countingLLM counts calls.
type countingLLM struct {
	verdict string
	calls   int
}

func (c *countingLLM) Complete(string) string {
	c.calls++
	return "FINAL JUDGEMENT: " + c.verdict
}

func testInputs(t *testing.T, d spec.Dialect, n int) ([]Input, []probe.Issue) {
	t.Helper()
	files := corpus.Generate(corpus.Config{Dialect: d, Seed: 55}, n)
	inputs := make([]Input, n)
	issues := make([]probe.Issue, n)
	r := rng.New(77)
	for i, f := range files {
		issue := probe.Issue(i % probe.NumIssues)
		pf := probe.Mutate(f, issue, r.Split(f.Name))
		inputs[i] = Input{Name: pf.Name, Source: pf.Source, Lang: pf.Lang}
		issues[i] = issue
	}
	return inputs, issues
}

func acceptingConfig(d spec.Dialect, llm judge.LLM, recordAll bool) Config {
	return Config{
		Tools:          agent.NewTools(d),
		Judge:          &judge.Judge{LLM: llm, Style: judge.AgentDirect, Dialect: d},
		CompileWorkers: 4,
		ExecWorkers:    4,
		JudgeWorkers:   4,
		RecordAll:      recordAll,
	}
}

func TestPipelineVerdictIsConjunction(t *testing.T) {
	inputs, issues := testInputs(t, spec.OpenACC, 36)
	// Judge says everything is valid, so the pipeline verdict reduces
	// to the mechanical stages.
	results, _ := Run(acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, true), inputs)
	for i, r := range results {
		mech := r.CompileOK && (!r.ExecRan || r.ExecOK)
		if r.Valid != mech {
			t.Errorf("file %d (issue %d): verdict %v but mechanical %v", i, issues[i], r.Valid, mech)
		}
	}
	// Judge says everything is invalid: nothing passes.
	results, _ = Run(acceptingConfig(spec.OpenACC, alwaysLLM{"invalid"}, true), inputs)
	for i, r := range results {
		if r.Valid {
			t.Errorf("file %d passed despite judge rejection", i)
		}
	}
}

func TestResultsInInputOrder(t *testing.T) {
	inputs, _ := testInputs(t, spec.OpenMP, 24)
	results, _ := Run(acceptingConfig(spec.OpenMP, alwaysLLM{"valid"}, true), inputs)
	if len(results) != len(inputs) {
		t.Fatalf("results = %d, want %d", len(results), len(inputs))
	}
	for i, r := range results {
		if r.Index != i || r.Name != inputs[i].Name {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
	}
}

func TestShortCircuitSkipsStages(t *testing.T) {
	inputs, _ := testInputs(t, spec.OpenACC, 36)
	llm := &countingLLM{verdict: "valid"}
	_, stShort := Run(acceptingConfig(spec.OpenACC, llm, false), inputs)
	shortCalls := llm.calls
	llm2 := &countingLLM{verdict: "valid"}
	_, stAll := Run(acceptingConfig(spec.OpenACC, llm2, true), inputs)
	allCalls := llm2.calls

	if stShort.Compiles != stAll.Compiles {
		t.Errorf("compile counts differ: %d vs %d", stShort.Compiles, stAll.Compiles)
	}
	// Executions happen only for compiled objects in either mode; the
	// short-circuit saving shows up in judge calls (files that failed
	// compile or execution never reach the expensive LLM stage).
	if stShort.Executions > stAll.Executions {
		t.Errorf("short-circuit executed more than record-all: %d vs %d", stShort.Executions, stAll.Executions)
	}
	if shortCalls >= allCalls {
		t.Errorf("short-circuit did not reduce judge calls: %d vs %d", shortCalls, allCalls)
	}
	if int64(allCalls) != stAll.JudgeCalls {
		t.Errorf("stats judge calls %d != llm calls %d", stAll.JudgeCalls, allCalls)
	}
}

func TestShortCircuitAgreesOnVerdicts(t *testing.T) {
	// Short-circuiting must never change a verdict, only skip work.
	inputs, _ := testInputs(t, spec.OpenACC, 36)
	short, _ := Run(acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, false), inputs)
	all, _ := Run(acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, true), inputs)
	for i := range short {
		if short[i].Valid != all[i].Valid {
			t.Errorf("file %d: short=%v recordAll=%v", i, short[i].Valid, all[i].Valid)
		}
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	inputs, _ := testInputs(t, spec.OpenMP, 24)
	var base []FileResult
	for _, w := range []int{1, 2, 8} {
		cfg := acceptingConfig(spec.OpenMP, alwaysLLM{"valid"}, true)
		cfg.CompileWorkers, cfg.ExecWorkers, cfg.JudgeWorkers = w, w, w
		results, _ := Run(cfg, inputs)
		if base == nil {
			base = results
			continue
		}
		for i := range results {
			if results[i].Valid != base[i].Valid || results[i].CompileOK != base[i].CompileOK {
				t.Fatalf("worker count %d changed result %d", w, i)
			}
		}
	}
}

func TestNilJudgeMechanicalOnly(t *testing.T) {
	inputs, _ := testInputs(t, spec.OpenACC, 18)
	cfg := acceptingConfig(spec.OpenACC, nil, true)
	cfg.Judge = nil
	results, st := Run(cfg, inputs)
	if st.JudgeCalls != 0 {
		t.Fatalf("judge calls = %d with nil judge", st.JudgeCalls)
	}
	for i, r := range results {
		if r.JudgeRan {
			t.Fatalf("file %d judged with nil judge", i)
		}
		mech := r.CompileOK && (!r.ExecRan || r.ExecOK)
		if r.Valid != mech {
			t.Fatalf("file %d: mechanical-only verdict wrong", i)
		}
	}
}

func TestKeepResponses(t *testing.T) {
	inputs, _ := testInputs(t, spec.OpenACC, 6)
	cfg := acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, true)
	cfg.KeepResponses = true
	results, _ := Run(cfg, inputs)
	kept := 0
	for _, r := range results {
		if r.Evaluation != nil {
			kept++
			if !strings.Contains(r.Evaluation.Response, "FINAL JUDGEMENT") {
				t.Fatal("kept evaluation lacks response")
			}
		}
	}
	if kept == 0 {
		t.Fatal("no evaluations kept despite KeepResponses")
	}
	cfg.KeepResponses = false
	results, _ = Run(cfg, inputs)
	for _, r := range results {
		if r.Evaluation != nil {
			t.Fatal("evaluation kept without KeepResponses")
		}
	}
}

func TestEmptyInput(t *testing.T) {
	results, st := Run(acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, true), nil)
	if len(results) != 0 || st.Files != 0 {
		t.Fatal("empty input mishandled")
	}
}

func TestFortranFlowsThroughPipeline(t *testing.T) {
	f, err := corpus.InstantiateTemplate(spec.OpenACC, "parallel_loop_vecadd", testlang.LangFortran, 3)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []Input{{Name: f.Name, Source: f.Source, Lang: f.Lang}}
	results, _ := Run(acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, true), inputs)
	r := results[0]
	if !r.CompileOK {
		t.Fatal("valid Fortran failed compile stage")
	}
	if r.ExecRan {
		t.Fatal("Fortran executed despite simulation not running it")
	}
	if !r.Valid {
		t.Fatal("valid Fortran rejected by pipeline")
	}
}

// gibberishLLM never produces the mandated judgement phrase.
type gibberishLLM struct{}

func (gibberishLLM) Complete(string) string { return "I cannot decide about this file." }

func TestUnparsableResponsesFailSafe(t *testing.T) {
	// A judge whose responses never contain the FINAL JUDGEMENT phrase
	// must never validate a file: unparsable is not approval.
	inputs, _ := testInputs(t, spec.OpenACC, 12)
	results, _ := Run(acceptingConfig(spec.OpenACC, gibberishLLM{}, true), inputs)
	for i, r := range results {
		if r.Valid {
			t.Errorf("file %d validated by an unparsable judge", i)
		}
		if r.JudgeRan && r.Verdict != judge.Unparsable {
			t.Errorf("file %d verdict = %v, want unparsable", i, r.Verdict)
		}
	}
}
