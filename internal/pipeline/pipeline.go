// Package pipeline implements the paper's validation pipeline
// (§III-C) as a stage DAG: files stream through the stages of a
// Graph — compile → execute → judge by default — each stage backed by
// its own worker pool, with no barriers between stages. A file whose
// compile finished streams straight into execution and judging while
// slower files are still compiling, and multi-file units declare
// intra-suite ordering with Input.DependsOn. A file failing an
// earlier stage has demonstrated its invalidity, so in short-circuit
// mode it skips the remaining (more expensive) stages; in record-all
// mode every file runs every stage, which is how the paper gathered
// the Part-Two data (allowing the same run to score both the pipeline
// and the agent-based judges on their own).
//
// Stages are configured by StageSpec (Config.Stages addresses the
// built-in stages by name; NewGraph + RunGraph schedule arbitrary
// DAGs of custom stages). The scalar Config knobs — CompileWorkers,
// ExecWorkers, JudgeWorkers, StageObserver — remain as deprecated
// wrappers that translate onto the default graph's specs.
//
// Run is context-aware: cancelling the context stops the stages
// promptly and returns the results completed so far alongside the
// context's error. Callers that want results as they happen instead of
// an all-or-nothing slice set Config.OnResult, which receives each
// file's finished FileResult the moment its fate is sealed.
package pipeline

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/agent"
	"repro/internal/compiler"
	"repro/internal/judge"
	"repro/internal/machine"
	"repro/internal/testlang"
	"repro/internal/trace"
)

// Names of the built-in stages — the values StageSpec.Name,
// Config.Stages, and the Runner's WithStages/WithStageWorkers options
// address them by.
const (
	StageCompile = "compile"
	StageExec    = "exec"
	StageJudge   = "judge"
)

// Input is one file to validate.
type Input struct {
	Name   string
	Source string
	Lang   testlang.Language
	// DependsOn names sibling inputs (by Name) this file builds on —
	// headers, modules, or earlier parts of a multi-file unit. The
	// scheduler gates the file stage-by-stage behind its
	// dependencies: it enters a stage only after every named
	// dependency has completed that stage, with no suite-wide
	// barriers. Unknown names, self-references, and dependency cycles
	// are errors; when any input declares dependencies, input names
	// must be unique.
	DependsOn []string
}

// Config configures a pipeline run.
type Config struct {
	// Tools supplies the compiler personality and machine options.
	Tools *agent.Tools
	// Judge is the stage-3 judge; nil disables the judge stage (used
	// by the stage-contribution ablation).
	Judge *judge.Judge
	// Stages overrides the built-in stages' specs by name
	// (StageCompile, StageExec, StageJudge): each entry's non-zero
	// fields replace that stage's defaults, zero fields inherit them
	// (including the deprecated scalar knobs below, which supply the
	// defaults during the migration). Unknown or duplicate names and
	// negative Workers/Batch values are errors returned by Run.
	// Custom stage DAGs go through NewGraph and RunGraph instead.
	Stages []StageSpec
	// CompileWorkers, ExecWorkers, and JudgeWorkers size the built-in
	// stages' worker pools; 0 means 1, negative values are an error.
	//
	// Deprecated: set Stages with per-stage StageSpec values instead.
	// The fields remain as the Stages defaults and will keep working.
	CompileWorkers int
	// Deprecated: see CompileWorkers.
	ExecWorkers int
	// Deprecated: see CompileWorkers.
	JudgeWorkers int
	// JudgeBatch caps how many queued files one judge worker submits
	// to the endpoint in a single EvaluateBatch call (0 or 1 = one at
	// a time). Batching only changes how prompts reach the endpoint —
	// endpoints implementing judge.BatchLLM receive whole shards in
	// one CompleteBatch call — never the verdicts, which stay
	// byte-identical to per-file judging. Equivalent to (and the
	// default for) the judge stage's StageSpec.Batch.
	JudgeBatch int
	// RecordAll disables short-circuiting so every stage runs for
	// every file.
	RecordAll bool
	// KeepResponses retains prompt/response text in results (memory-
	// heavy for large suites; examples use it, experiments do not).
	KeepResponses bool
	// OnResult, when set, streams each file's completed FileResult as
	// its final verdict is determined — before the run finishes and in
	// completion order, not input order. It is called from stage
	// worker goroutines and must be safe for concurrent use.
	OnResult func(FileResult)
	// StageObserver, when set, receives the wall-clock duration of
	// every stage execution — "compile" and "exec" once per file,
	// "judge" once per endpoint batch. Applied to every built-in
	// stage whose spec does not set its own Observe.
	//
	// Deprecated: set StageSpec.Observe per stage via Stages instead.
	StageObserver func(stage string, d time.Duration)
	// Tracer, when set, opens one trace per file — the root "file"
	// span, child spans named after each stage that ran for it, and a
	// "judge.batch" span under the first batched file's trace for each
	// coalesced endpoint submission — and everything downstream (judge
	// cache, remote wire, fleet routing, daemon) continues the same
	// trace through the context. Nil disables tracing; the stages then
	// pay one pointer test and nothing else.
	Tracer *trace.Tracer
}

// legacySpecs translates the deprecated scalar knobs onto the default
// graph's StageSpec values. It is the compile-time-checked bridge
// between the two surfaces: a Config field renamed or retyped breaks
// this function, not silently the translation.
func (cfg *Config) legacySpecs() []StageSpec {
	return []StageSpec{
		{Name: StageCompile, Workers: cfg.CompileWorkers, Observe: cfg.StageObserver},
		{Name: StageExec, Workers: cfg.ExecWorkers, Observe: cfg.StageObserver},
		{Name: StageJudge, Workers: cfg.JudgeWorkers, Batch: cfg.JudgeBatch, Observe: cfg.StageObserver},
	}
}

// builtinSpecs resolves the effective specs of the default graph:
// the deprecated scalar knobs supply the defaults, Config.Stages
// overlays them by name (non-zero fields win), and the judge stage is
// dropped when no judge is configured.
func (cfg *Config) builtinSpecs() ([]StageSpec, error) {
	specs := cfg.legacySpecs()
	seen := make(map[string]bool, len(cfg.Stages))
	for _, o := range cfg.Stages {
		if seen[o.Name] {
			return nil, fmt.Errorf("pipeline: duplicate stage %q in Config.Stages", o.Name)
		}
		seen[o.Name] = true
		i := -1
		for k := range specs {
			if specs[k].Name == o.Name {
				i = k
				break
			}
		}
		if i < 0 {
			return nil, fmt.Errorf("pipeline: unknown stage %q in Config.Stages (the default graph has %q, %q, and %q; custom graphs go through RunGraph)", o.Name, StageCompile, StageExec, StageJudge)
		}
		if o.Workers != 0 {
			specs[i].Workers = o.Workers
		}
		if o.Batch != 0 {
			specs[i].Batch = o.Batch
		}
		if o.Observe != nil {
			specs[i].Observe = o.Observe
		}
	}
	for i := range specs {
		if err := specs[i].validate(); err != nil {
			return nil, err
		}
	}
	// The judge stage is always batch-shaped: even single-file
	// submissions are one coalesced endpoint round-trip, traced as
	// "judge.batch".
	if specs[2].Batch < 1 {
		specs[2].Batch = 1
	}
	if cfg.Judge == nil {
		specs = specs[:2]
	}
	return specs, nil
}

// FileResult is the pipeline's record for one file.
type FileResult struct {
	Index int
	Name  string
	// Stage outcomes. When short-circuiting skipped a stage, the
	// corresponding Ran flag is false.
	CompileRan bool
	CompileOK  bool
	ExecRan    bool
	ExecOK     bool
	JudgeRan   bool
	Verdict    judge.Verdict
	// Valid is the pipeline's final verdict: every stage it ran
	// passed, and the judge (when enabled) said valid.
	Valid bool
	// Evaluation is populated only with Config.KeepResponses.
	Evaluation *judge.Evaluation
}

// Stats aggregates pipeline-run counters for the throughput bench.
type Stats struct {
	Files      int
	Compiles   int64
	Executions int64
	// JudgeCalls counts judged files; JudgeBatches counts endpoint
	// round-trips (equal unless Config.JudgeBatch coalesced files).
	JudgeCalls   int64
	JudgeBatches int64
}

// Run processes files through the default validation graph — compile
// → execute → judge — and returns per-file results in input order
// plus run statistics. When ctx is cancelled mid-run — or a
// context-aware judge endpoint fails — the stages drain without doing
// further work and Run returns the partial results with the first
// error; files whose processing never finished keep their zero-valued
// stage flags. A misconfigured Config (negative workers, unknown
// stage names in Stages) is an error before any file runs.
func Run(ctx context.Context, cfg Config, files []Input) ([]FileResult, Stats, error) {
	stats := Stats{Files: len(files)}
	specs, err := cfg.builtinSpecs()
	if err != nil {
		return nil, stats, err
	}
	stages, edges := builtinStages(&cfg, specs, &stats)
	g, err := NewGraph(stages, edges...)
	if err != nil {
		return nil, stats, err
	}
	results, err := runGraph(ctx, runConfig{
		onResult:     cfg.OnResult,
		tracer:       cfg.Tracer,
		judgeEnabled: cfg.Judge != nil,
	}, g, files)
	return results, stats, err
}

// builtinStages declares the paper's three stages on the Stage API,
// bound to cfg's tools and counters, in spec order (compile, exec,
// and — when a judge is configured — judge), plus the chain edges
// connecting them.
func builtinStages(cfg *Config, specs []StageSpec, stats *Stats) ([]Stage, [][2]string) {
	stages := []Stage{
		StageFunc{
			StageSpec: specs[0],
			RunFunc: func(_ context.Context, items []*Item) error {
				for _, it := range items {
					atomic.AddInt64(&stats.Compiles, 1)
					it.Compile = cfg.Tools.Personality.Compile(it.Input.Name, it.Input.Source, it.Input.Lang)
					r := it.Result()
					r.CompileRan = true
					r.CompileOK = it.Compile.OK
					if !it.Compile.OK && !cfg.RecordAll {
						it.Stop() // invalidity demonstrated; drop from pipeline
					}
				}
				return nil
			},
		},
		StageFunc{
			StageSpec: specs[1],
			// Files that compiled to no executable object (Fortran in
			// this simulation) carry no execution evidence either way,
			// so they skip straight to the judge in BOTH modes — the
			// final verdict defers to the judge exactly as finalVerdict
			// documents. Compile-failed files only reach this gate in
			// record-all mode (compile stops them otherwise).
			AppliesFunc: func(it *Item) bool {
				return it.Compile != nil && it.Compile.OK && it.Compile.Object != nil
			},
			RunFunc: func(_ context.Context, items []*Item) error {
				for _, it := range items {
					atomic.AddInt64(&stats.Executions, 1)
					it.Exec = machine.Run(it.Compile.Object, cfg.Tools.MachineOpts)
					r := it.Result()
					r.ExecRan = true
					r.ExecOK = it.Exec.ReturnCode == 0
					if !r.ExecOK && !cfg.RecordAll {
						it.Stop()
					}
				}
				return nil
			},
		},
	}
	edges := [][2]string{{specs[0].Name, specs[1].Name}}
	if cfg.Judge == nil {
		return stages, edges
	}
	stages = append(stages, StageFunc{
		StageSpec: specs[2],
		RunFunc: func(ctx context.Context, items []*Item) error {
			atomic.AddInt64(&stats.JudgeCalls, int64(len(items)))
			atomic.AddInt64(&stats.JudgeBatches, 1)
			codes := make([]string, len(items))
			infos := make([]*judge.ToolInfo, len(items))
			for i, it := range items {
				codes[i] = it.Input.Source
				info := buildToolInfo(it.Compile, it.Exec)
				infos[i] = &info
			}
			evs, err := cfg.Judge.EvaluateBatch(ctx, codes, infos)
			if err != nil {
				return err // backend or context failure; abort the run
			}
			for i, it := range items {
				r := it.Result()
				r.JudgeRan = true
				r.Verdict = evs[i].Verdict
				if cfg.KeepResponses {
					evCopy := evs[i]
					r.Evaluation = &evCopy
				}
			}
			return nil
		},
	})
	return stages, append(edges, [2]string{specs[1].Name, specs[2].Name})
}

// buildToolInfo assembles the agent prompt block from stage results.
func buildToolInfo(c *compiler.Result, r *machine.Result) judge.ToolInfo {
	info := judge.ToolInfo{}
	if c != nil {
		info.CompileRC = c.ReturnCode
		info.CompileStderr = c.Stderr
		info.CompileStdout = c.Stdout
	}
	if r != nil {
		info.Ran = true
		info.RunRC = r.ReturnCode
		info.RunStderr = r.Stderr
		info.RunStdout = r.Stdout
	}
	return info
}

// finalVerdict computes the pipeline verdict for one file.
func finalVerdict(r *FileResult, judgeEnabled bool) bool {
	if r.CompileRan && !r.CompileOK {
		return false
	}
	if r.ExecRan && !r.ExecOK {
		return false
	}
	if !r.ExecRan && r.CompileRan && r.CompileOK {
		// Compiled but not executable in the simulation (Fortran):
		// execution evidence is absent, leave the decision to the
		// judge when present.
		if !judgeEnabled {
			return true
		}
	}
	if judgeEnabled {
		return r.JudgeRan && r.Verdict == judge.Valid
	}
	return r.CompileOK && (!r.ExecRan || r.ExecOK)
}
