// Package pipeline implements the paper's validation pipeline
// (§III-C): files stream through compile → execute → judge stages,
// each backed by its own worker pool. A file failing an earlier stage
// has demonstrated its invalidity, so in short-circuit mode it skips
// the remaining (more expensive) stages; in record-all mode every file
// runs every stage, which is how the paper gathered the Part-Two data
// (allowing the same run to score both the pipeline and the
// agent-based judges on their own).
//
// Run is context-aware: cancelling the context stops the stages
// promptly and returns the results completed so far alongside the
// context's error. Callers that want results as they happen instead of
// an all-or-nothing slice set Config.OnResult, which receives each
// file's finished FileResult the moment its fate is sealed.
package pipeline

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agent"
	"repro/internal/compiler"
	"repro/internal/judge"
	"repro/internal/machine"
	"repro/internal/testlang"
	"repro/internal/trace"
)

// Input is one file to validate.
type Input struct {
	Name   string
	Source string
	Lang   testlang.Language
}

// Config configures a pipeline run.
type Config struct {
	// Tools supplies the compiler personality and machine options.
	Tools *agent.Tools
	// Judge is the stage-3 judge; nil disables the judge stage (used
	// by the stage-contribution ablation).
	Judge *judge.Judge
	// Workers per stage; 0 means 1.
	CompileWorkers int
	ExecWorkers    int
	JudgeWorkers   int
	// JudgeBatch caps how many queued files one judge worker submits
	// to the endpoint in a single EvaluateBatch call (0 or 1 = one at
	// a time). Batching only changes how prompts reach the endpoint —
	// endpoints implementing judge.BatchLLM receive whole shards in
	// one CompleteBatch call — never the verdicts, which stay
	// byte-identical to per-file judging.
	JudgeBatch int
	// RecordAll disables short-circuiting so every stage runs for
	// every file.
	RecordAll bool
	// KeepResponses retains prompt/response text in results (memory-
	// heavy for large suites; examples use it, experiments do not).
	KeepResponses bool
	// OnResult, when set, streams each file's completed FileResult as
	// its final verdict is determined — before the run finishes and in
	// completion order, not input order. It is called from stage
	// worker goroutines and must be safe for concurrent use.
	OnResult func(FileResult)
	// StageObserver, when set, receives the wall-clock duration of
	// every stage execution — "compile" and "exec" once per file,
	// "judge" once per endpoint batch — which is how the throughput
	// harness (internal/perf) extracts p50/p99 stage latencies. Called
	// from stage worker goroutines; must be safe for concurrent use.
	// When nil the stages pay a single predicate check and no clock
	// reads.
	StageObserver func(stage string, d time.Duration)
	// Tracer, when set, opens one trace per file — the root "file"
	// span, child spans per stage execution, and a "judge.batch" span
	// under the first batched file's trace for each coalesced endpoint
	// submission — and everything downstream (judge cache, remote wire,
	// fleet routing, daemon) continues the same trace through the
	// context. Nil disables tracing; the stages then pay one pointer
	// test and nothing else.
	Tracer *trace.Tracer
}

// FileResult is the pipeline's record for one file.
type FileResult struct {
	Index int
	Name  string
	// Stage outcomes. When short-circuiting skipped a stage, the
	// corresponding Ran flag is false.
	CompileRan bool
	CompileOK  bool
	ExecRan    bool
	ExecOK     bool
	JudgeRan   bool
	Verdict    judge.Verdict
	// Valid is the pipeline's final verdict: every stage it ran
	// passed, and the judge (when enabled) said valid.
	Valid bool
	// Evaluation is populated only with Config.KeepResponses.
	Evaluation *judge.Evaluation
}

// Stats aggregates pipeline-run counters for the throughput bench.
type Stats struct {
	Files      int
	Compiles   int64
	Executions int64
	// JudgeCalls counts judged files; JudgeBatches counts endpoint
	// round-trips (equal unless Config.JudgeBatch coalesced files).
	JudgeCalls   int64
	JudgeBatches int64
}

// Run processes files through the staged pipeline and returns per-file
// results in input order plus run statistics. When ctx is cancelled
// mid-run — or a context-aware judge endpoint fails — the stages drain
// without doing further work and Run returns the partial results with
// the first error; files whose processing never finished keep their
// zero-valued stage flags.
func Run(ctx context.Context, cfg Config, files []Input) ([]FileResult, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	nw := func(n int) int {
		if n <= 0 {
			return 1
		}
		return n
	}
	results := make([]FileResult, len(files))
	var stats Stats
	stats.Files = len(files)

	// The first stage error (a failing context-aware backend, or the
	// context itself) aborts the run: workers drain without working
	// once it is set, and Run reports it even when ctx stays live.
	// runErr is only read after the worker pools are joined.
	var runErr error
	var errOnce sync.Once
	var failed atomic.Bool
	fail := func(err error) {
		errOnce.Do(func() {
			runErr = err
			failed.Store(true)
		})
	}
	aborted := func() bool { return failed.Load() || ctx.Err() != nil }

	// timed wraps one stage execution with the optional observer; with
	// no observer configured the stages skip the clock reads entirely.
	observe := cfg.StageObserver
	timed := func(stage string, work func()) {
		if observe == nil {
			work()
			return
		}
		start := time.Now()
		work()
		observe(stage, time.Since(start))
	}

	type item struct {
		idx     int
		in      Input
		compile *compiler.Result
		run     *machine.Result
		// ctx carries the file's trace root (span) through the stages;
		// without a tracer it aliases the run context and span is nil.
		ctx  context.Context
		span *trace.Span
	}

	// stageSpan opens one stage's child span under the file's trace;
	// nil (free) when the file is untraced.
	stageSpan := func(it *item, name string) *trace.Span {
		if it.span == nil {
			return nil
		}
		_, s := trace.Start(it.ctx, name)
		return s
	}

	// finish seals a file's fate: its final verdict is computable from
	// the stages that ran, so it can be streamed to the caller without
	// waiting for the rest of the suite. Sealing ends the file's trace.
	finish := func(it *item) {
		r := &results[it.idx]
		r.Valid = finalVerdict(r, cfg.Judge != nil)
		if it.span != nil {
			it.span.SetAttr("valid", strconv.FormatBool(r.Valid))
			if r.JudgeRan {
				it.span.SetAttr("verdict", r.Verdict.String())
			}
			it.span.End()
		}
		if cfg.OnResult != nil {
			cfg.OnResult(*r)
		}
	}

	compileCh := make(chan *item, len(files))
	execCh := make(chan *item, len(files))
	judgeCh := make(chan *item, len(files))

	var wgCompile, wgExec, wgJudge sync.WaitGroup

	// Stage 1: compile.
	for w := 0; w < nw(cfg.CompileWorkers); w++ {
		wgCompile.Add(1)
		go func() {
			defer wgCompile.Done()
			for it := range compileCh {
				if aborted() {
					continue // drain without working
				}
				atomic.AddInt64(&stats.Compiles, 1)
				timed("compile", func() {
					s := stageSpan(it, "compile")
					it.compile = cfg.Tools.Personality.Compile(it.in.Name, it.in.Source, it.in.Lang)
					s.End()
				})
				r := &results[it.idx]
				r.CompileRan = true
				r.CompileOK = it.compile.OK
				if !it.compile.OK && !cfg.RecordAll {
					finish(it) // invalidity demonstrated; drop from pipeline
					continue
				}
				execCh <- it
			}
		}()
	}

	// Stage 2: execute.
	for w := 0; w < nw(cfg.ExecWorkers); w++ {
		wgExec.Add(1)
		go func() {
			defer wgExec.Done()
			for it := range execCh {
				if aborted() {
					continue
				}
				r := &results[it.idx]
				if it.compile.OK && it.compile.Object != nil {
					atomic.AddInt64(&stats.Executions, 1)
					timed("exec", func() {
						s := stageSpan(it, "exec")
						it.run = machine.Run(it.compile.Object, cfg.Tools.MachineOpts)
						s.End()
					})
					r.ExecRan = true
					r.ExecOK = it.run.ReturnCode == 0
					if !r.ExecOK && !cfg.RecordAll {
						finish(it)
						continue
					}
				}
				// Files that compiled to no executable object (Fortran in
				// this simulation) carry no execution evidence either way,
				// so they proceed to the judge in BOTH modes — the final
				// verdict defers to the judge exactly as finalVerdict
				// documents. Compile-failed files only get here in
				// record-all mode (stage 1 drops them otherwise).
				judgeCh <- it
			}
		}()
	}

	// Stage 3: judge. Each worker takes one queued file, then opportunistically
	// coalesces up to JudgeBatch-1 more already-waiting files into the
	// same endpoint submission — shards form from whatever the earlier
	// stages have finished, so batching never delays a lone file.
	judgeBatch := cfg.JudgeBatch
	if judgeBatch < 1 {
		judgeBatch = 1
	}
	for w := 0; w < nw(cfg.JudgeWorkers); w++ {
		wgJudge.Add(1)
		go func() {
			defer wgJudge.Done()
			for it := range judgeCh {
				if aborted() {
					continue
				}
				batch := []*item{it}
			coalesce:
				for len(batch) < judgeBatch {
					select {
					case more, ok := <-judgeCh:
						if !ok {
							break coalesce
						}
						batch = append(batch, more)
					default:
						break coalesce
					}
				}
				if cfg.Judge == nil {
					for _, b := range batch {
						finish(b)
					}
					continue
				}
				atomic.AddInt64(&stats.JudgeCalls, int64(len(batch)))
				atomic.AddInt64(&stats.JudgeBatches, 1)
				codes := make([]string, len(batch))
				infos := make([]*judge.ToolInfo, len(batch))
				for i, b := range batch {
					codes[i] = b.in.Source
					info := buildToolInfo(b.compile, b.run)
					infos[i] = &info
				}
				// The coalesced endpoint submission is one unit of work;
				// its span rides the first batched file's trace (the
				// carrier), and the context hands the trace onward to the
				// judge cache, the remote wire, and the fleet.
				jctx := ctx
				var jspan *trace.Span
				if batch[0].span != nil {
					jctx, jspan = trace.Start(batch[0].ctx, "judge.batch")
					jspan.SetAttr("batch_size", strconv.Itoa(len(batch)))
				}
				var evs []judge.Evaluation
				var err error
				timed("judge", func() {
					evs, err = cfg.Judge.EvaluateBatch(jctx, codes, infos)
				})
				jspan.End()
				if err != nil {
					fail(err) // backend or context failure; abort the run
					continue
				}
				for i, b := range batch {
					r := &results[b.idx]
					r.JudgeRan = true
					r.Verdict = evs[i].Verdict
					if cfg.KeepResponses {
						evCopy := evs[i]
						r.Evaluation = &evCopy
					}
					finish(b)
				}
			}
		}()
	}

	for i := range files {
		results[i] = FileResult{Index: i, Name: files[i].Name}
		it := &item{idx: i, in: files[i], ctx: ctx}
		if cfg.Tracer != nil {
			it.ctx, it.span = cfg.Tracer.StartTrace(ctx, "file")
			it.span.SetAttr("name", files[i].Name)
		}
		compileCh <- it
	}
	close(compileCh)
	wgCompile.Wait()
	close(execCh)
	wgExec.Wait()
	close(judgeCh)
	wgJudge.Wait()

	if err := ctx.Err(); err != nil {
		fail(err)
	}
	return results, stats, runErr
}

// buildToolInfo assembles the agent prompt block from stage results.
func buildToolInfo(c *compiler.Result, r *machine.Result) judge.ToolInfo {
	info := judge.ToolInfo{}
	if c != nil {
		info.CompileRC = c.ReturnCode
		info.CompileStderr = c.Stderr
		info.CompileStdout = c.Stdout
	}
	if r != nil {
		info.Ran = true
		info.RunRC = r.ReturnCode
		info.RunStderr = r.Stderr
		info.RunStdout = r.Stdout
	}
	return info
}

// finalVerdict computes the pipeline verdict for one file.
func finalVerdict(r *FileResult, judgeEnabled bool) bool {
	if r.CompileRan && !r.CompileOK {
		return false
	}
	if r.ExecRan && !r.ExecOK {
		return false
	}
	if !r.ExecRan && r.CompileRan && r.CompileOK {
		// Compiled but not executable in the simulation (Fortran):
		// execution evidence is absent, leave the decision to the
		// judge when present.
		if !judgeEnabled {
			return true
		}
	}
	if judgeEnabled {
		return r.JudgeRan && r.Verdict == judge.Valid
	}
	return r.CompileOK && (!r.ExecRan || r.ExecOK)
}
