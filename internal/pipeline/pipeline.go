// Package pipeline implements the paper's validation pipeline
// (§III-C): files stream through compile → execute → judge stages,
// each backed by its own worker pool. A file failing an earlier stage
// has demonstrated its invalidity, so in short-circuit mode it skips
// the remaining (more expensive) stages; in record-all mode every file
// runs every stage, which is how the paper gathered the Part-Two data
// (allowing the same run to score both the pipeline and the
// agent-based judges on their own).
package pipeline

import (
	"sync"
	"sync/atomic"

	"repro/internal/agent"
	"repro/internal/compiler"
	"repro/internal/judge"
	"repro/internal/machine"
	"repro/internal/testlang"
)

// Input is one file to validate.
type Input struct {
	Name   string
	Source string
	Lang   testlang.Language
}

// Config configures a pipeline run.
type Config struct {
	// Tools supplies the compiler personality and machine options.
	Tools *agent.Tools
	// Judge is the stage-3 judge; nil disables the judge stage (used
	// by the stage-contribution ablation).
	Judge *judge.Judge
	// Workers per stage; 0 means 1.
	CompileWorkers int
	ExecWorkers    int
	JudgeWorkers   int
	// RecordAll disables short-circuiting so every stage runs for
	// every file.
	RecordAll bool
	// KeepResponses retains prompt/response text in results (memory-
	// heavy for large suites; examples use it, experiments do not).
	KeepResponses bool
}

// FileResult is the pipeline's record for one file.
type FileResult struct {
	Index int
	Name  string
	// Stage outcomes. When short-circuiting skipped a stage, the
	// corresponding Ran flag is false.
	CompileRan bool
	CompileOK  bool
	ExecRan    bool
	ExecOK     bool
	JudgeRan   bool
	Verdict    judge.Verdict
	// Valid is the pipeline's final verdict: every stage it ran
	// passed, and the judge (when enabled) said valid.
	Valid bool
	// Evaluation is populated only with Config.KeepResponses.
	Evaluation *judge.Evaluation
}

// Stats aggregates pipeline-run counters for the throughput bench.
type Stats struct {
	Files      int
	Compiles   int64
	Executions int64
	JudgeCalls int64
}

// Run processes files through the staged pipeline and returns per-file
// results in input order plus run statistics.
func Run(cfg Config, files []Input) ([]FileResult, Stats) {
	nw := func(n int) int {
		if n <= 0 {
			return 1
		}
		return n
	}
	results := make([]FileResult, len(files))
	var stats Stats
	stats.Files = len(files)

	type item struct {
		idx     int
		in      Input
		compile *compiler.Result
		run     *machine.Result
	}

	compileCh := make(chan *item, len(files))
	execCh := make(chan *item, len(files))
	judgeCh := make(chan *item, len(files))

	var wgCompile, wgExec, wgJudge sync.WaitGroup

	// Stage 1: compile.
	for w := 0; w < nw(cfg.CompileWorkers); w++ {
		wgCompile.Add(1)
		go func() {
			defer wgCompile.Done()
			for it := range compileCh {
				atomic.AddInt64(&stats.Compiles, 1)
				it.compile = cfg.Tools.Personality.Compile(it.in.Name, it.in.Source, it.in.Lang)
				r := &results[it.idx]
				r.CompileRan = true
				r.CompileOK = it.compile.OK
				if !it.compile.OK && !cfg.RecordAll {
					continue // invalidity demonstrated; drop from pipeline
				}
				execCh <- it
			}
		}()
	}

	// Stage 2: execute.
	for w := 0; w < nw(cfg.ExecWorkers); w++ {
		wgExec.Add(1)
		go func() {
			defer wgExec.Done()
			for it := range execCh {
				r := &results[it.idx]
				if it.compile.OK && it.compile.Object != nil {
					atomic.AddInt64(&stats.Executions, 1)
					it.run = machine.Run(it.compile.Object, cfg.Tools.MachineOpts)
					r.ExecRan = true
					r.ExecOK = it.run.ReturnCode == 0
					if !r.ExecOK && !cfg.RecordAll {
						continue
					}
				} else if !cfg.RecordAll {
					// Record-all mode is the only way a compile-failed
					// file reaches here.
					continue
				}
				judgeCh <- it
			}
		}()
	}

	// Stage 3: judge.
	for w := 0; w < nw(cfg.JudgeWorkers); w++ {
		wgJudge.Add(1)
		go func() {
			defer wgJudge.Done()
			for it := range judgeCh {
				if cfg.Judge == nil {
					continue
				}
				r := &results[it.idx]
				atomic.AddInt64(&stats.JudgeCalls, 1)
				info := buildToolInfo(it.compile, it.run)
				ev := cfg.Judge.Evaluate(it.in.Source, &info)
				r.JudgeRan = true
				r.Verdict = ev.Verdict
				if cfg.KeepResponses {
					evCopy := ev
					r.Evaluation = &evCopy
				}
			}
		}()
	}

	for i := range files {
		results[i] = FileResult{Index: i, Name: files[i].Name}
		compileCh <- &item{idx: i, in: files[i]}
	}
	close(compileCh)
	wgCompile.Wait()
	close(execCh)
	wgExec.Wait()
	close(judgeCh)
	wgJudge.Wait()

	for i := range results {
		results[i].Valid = finalVerdict(&results[i], cfg.Judge != nil)
	}
	return results, stats
}

// buildToolInfo assembles the agent prompt block from stage results.
func buildToolInfo(c *compiler.Result, r *machine.Result) judge.ToolInfo {
	info := judge.ToolInfo{}
	if c != nil {
		info.CompileRC = c.ReturnCode
		info.CompileStderr = c.Stderr
		info.CompileStdout = c.Stdout
	}
	if r != nil {
		info.Ran = true
		info.RunRC = r.ReturnCode
		info.RunStderr = r.Stderr
		info.RunStdout = r.Stdout
	}
	return info
}

// finalVerdict computes the pipeline verdict for one file.
func finalVerdict(r *FileResult, judgeEnabled bool) bool {
	if r.CompileRan && !r.CompileOK {
		return false
	}
	if r.ExecRan && !r.ExecOK {
		return false
	}
	if !r.ExecRan && r.CompileRan && r.CompileOK {
		// Compiled but not executable in the simulation (Fortran):
		// execution evidence is absent, leave the decision to the
		// judge when present.
		if !judgeEnabled {
			return true
		}
	}
	if judgeEnabled {
		return r.JudgeRan && r.Verdict == judge.Valid
	}
	return r.CompileOK && (!r.ExecRan || r.ExecOK)
}
