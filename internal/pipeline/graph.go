package pipeline

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"
)

// StageSpec describes one stage of a validation graph: its identity,
// parallelism, batching, and observer hook.
//
// In Config.Stages a spec addresses a built-in stage by Name and
// overrides only its non-zero fields (zero Workers/Batch and nil
// Observe inherit the defaults), which is how the deprecated scalar
// knobs and the new surface coexist. In NewGraph a spec is the stage's
// complete configuration.
type StageSpec struct {
	// Name identifies the stage: it is the span name of the stage's
	// trace executions (batched stages emit "<name>.batch" carrier
	// spans instead), the label observers and per-stage metric
	// families key on, and the handle Config.Stages and the Runner's
	// WithStages/WithStageWorkers options address the stage by. The
	// built-in stages are StageCompile, StageExec, and StageJudge.
	Name string
	// Workers sizes the stage's worker pool; 0 means 1. Negative
	// values are rejected at graph construction — a negative pool
	// would spin zero workers and strand every file dispatched to the
	// stage.
	Workers int
	// Batch > 1 lets one worker coalesce up to Batch already-ready
	// files into a single Run call (shards form from whatever the
	// upstream stages have finished, so batching never delays a lone
	// file). 0 and 1 both submit one file per Run call, but any
	// Batch >= 1 additionally marks the stage batch-shaped: its
	// executions trace as one "<name>.batch" carrier span (with a
	// batch_size attribute) under the first batched file's trace,
	// where Batch == 0 stages open one "<name>" span per file. The
	// built-in judge stage is always batch-shaped, preserving the
	// historical "judge.batch" span even for single-file submissions.
	// Negative values are rejected at graph construction.
	Batch int
	// Observe, when set, receives the wall-clock duration of every
	// Run call, labelled with the stage name. Called from stage
	// worker goroutines; must be safe for concurrent use. When nil
	// the stage pays a single predicate check and no clock reads.
	Observe func(stage string, d time.Duration)
}

// validate rejects specs whose values would hang or misconfigure the
// scheduler. Shared by NewGraph and the Config.Stages overlay so the
// error surfaces at construction, not as a stuck run.
func (s StageSpec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("pipeline: stage with empty name")
	}
	if s.Workers < 0 {
		return fmt.Errorf("pipeline: stage %q: negative Workers %d (a negative pool would spin zero workers and hang the stage; 0 means 1)", s.Name, s.Workers)
	}
	if s.Batch < 0 {
		return fmt.Errorf("pipeline: stage %q: negative Batch %d", s.Name, s.Batch)
	}
	return nil
}

// workers is the spec's effective pool size (the documented 0-means-1
// floor; negatives never reach here).
func (s StageSpec) workers() int {
	if s.Workers < 1 {
		return 1
	}
	return s.Workers
}

// Stage is one vertex of a validation graph. Run receives the files
// ready for the stage — a slice of exactly one Item unless the spec
// declares a Batch — mutates each Item's stage fields and result, and
// returns an error only for run-aborting failures (a failing backend,
// a cancelled context): returning non-nil stops the whole run, exactly
// like the built-in judge stage on an endpoint error. Per-file
// failures are not errors; the stage records them on the Item's
// FileResult and calls Item.Stop to short-circuit the remaining
// stages.
//
// A stage may additionally implement
//
//	Applies(*Item) bool
//
// to skip files the stage has no evidence to contribute for; skipped
// files pass through without a Run call, a trace span, or an observer
// sample, exactly as the built-in exec stage skips files whose compile
// produced no runnable object.
type Stage interface {
	Spec() StageSpec
	Run(ctx context.Context, items []*Item) error
}

// applier is the optional per-file gate a Stage may implement.
type applier interface {
	Applies(*Item) bool
}

// StageFunc is the literal Stage: a spec plus a run function, with an
// optional Applies gate. The zero AppliesFunc applies to every file.
type StageFunc struct {
	StageSpec
	RunFunc func(ctx context.Context, items []*Item) error
	// AppliesFunc, when set, gates the stage per file: files it
	// rejects skip the stage entirely (no Run call, span, or observer
	// sample) and proceed downstream.
	AppliesFunc func(*Item) bool
}

// Spec implements Stage.
func (s StageFunc) Spec() StageSpec { return s.StageSpec }

// Run implements Stage.
func (s StageFunc) Run(ctx context.Context, items []*Item) error {
	return s.RunFunc(ctx, items)
}

// Applies implements the optional per-file gate.
func (s StageFunc) Applies(it *Item) bool {
	return s.AppliesFunc == nil || s.AppliesFunc(it)
}

// Graph is a validated stage DAG: stages as vertices, declared edges
// as precedence constraints. Construction (NewGraph) is where every
// structural error surfaces — duplicate or empty stage names, edges
// naming unknown stages, self-edges, duplicate edges, negative worker
// or batch counts, and cycles (detected by Kahn's algorithm) are all
// rejected — so a Graph that exists is schedulable. A Graph is
// immutable and safe to reuse across RunGraph calls.
type Graph struct {
	stages  []Stage
	specs   []StageSpec
	applies []func(*Item) bool // nil entry: stage applies to every file
	names   map[string]int
	succs   [][]int
	indeg   []int
	order   []int // one valid topological order, for introspection
}

// NewGraph validates stages and edges into a schedulable DAG. Each
// edge {from, to} names two stages by their spec names and constrains
// every file to complete from before entering to. Stages with no
// connecting edges are legal and run concurrently.
func NewGraph(stages []Stage, edges ...[2]string) (*Graph, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("pipeline: graph needs at least one stage")
	}
	g := &Graph{
		stages:  stages,
		specs:   make([]StageSpec, len(stages)),
		applies: make([]func(*Item) bool, len(stages)),
		names:   make(map[string]int, len(stages)),
		succs:   make([][]int, len(stages)),
		indeg:   make([]int, len(stages)),
	}
	for i, st := range stages {
		spec := st.Spec()
		if err := spec.validate(); err != nil {
			return nil, err
		}
		if dup, ok := g.names[spec.Name]; ok {
			return nil, fmt.Errorf("pipeline: duplicate stage name %q (stages %d and %d)", spec.Name, dup, i)
		}
		g.names[spec.Name] = i
		g.specs[i] = spec
		if ap, ok := st.(applier); ok {
			g.applies[i] = ap.Applies
		}
	}
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		from, ok := g.names[e[0]]
		if !ok {
			return nil, fmt.Errorf("pipeline: edge %q -> %q names unknown stage %q", e[0], e[1], e[0])
		}
		to, ok := g.names[e[1]]
		if !ok {
			return nil, fmt.Errorf("pipeline: edge %q -> %q names unknown stage %q", e[0], e[1], e[1])
		}
		if from == to {
			return nil, fmt.Errorf("pipeline: self-edge on stage %q", e[0])
		}
		if seen[[2]int{from, to}] {
			return nil, fmt.Errorf("pipeline: duplicate edge %q -> %q", e[0], e[1])
		}
		seen[[2]int{from, to}] = true
		g.succs[from] = append(g.succs[from], to)
		g.indeg[to]++
	}

	// Kahn's algorithm: repeatedly retire zero-indegree stages. Any
	// stage left unretired sits on a cycle.
	indeg := append([]int(nil), g.indeg...)
	queue := make([]int, 0, len(stages))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	g.order = make([]int, 0, len(stages))
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		g.order = append(g.order, s)
		for _, t := range g.succs[s] {
			if indeg[t]--; indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if len(g.order) != len(stages) {
		var cyclic []string
		for i, d := range indeg {
			if d > 0 {
				cyclic = append(cyclic, g.specs[i].Name)
			}
		}
		sort.Strings(cyclic)
		return nil, fmt.Errorf("pipeline: stage graph has a cycle through %s", strings.Join(cyclic, ", "))
	}
	return g, nil
}

// Stages returns the graph's specs in one valid topological order —
// the enumeration callers use to pre-register per-stage metric
// families or print the schedule.
func (g *Graph) Stages() []StageSpec {
	out := make([]StageSpec, len(g.order))
	for i, s := range g.order {
		out[i] = g.specs[s]
	}
	return out
}
