package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/spec"
)

// noopStage builds a trivially-succeeding stage for graph-shape tests.
func noopStage(name string, workers int) Stage {
	return StageFunc{
		StageSpec: StageSpec{Name: name, Workers: workers},
		RunFunc:   func(context.Context, []*Item) error { return nil },
	}
}

func TestGraphRejectsCycles(t *testing.T) {
	stages := []Stage{noopStage("a", 1), noopStage("b", 1), noopStage("c", 1)}
	_, err := NewGraph(stages,
		[2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "a"})
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cyclic graph accepted: err=%v", err)
	}
	// The cycle report names the offending stages.
	for _, name := range []string{"a", "b", "c"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("cycle error %q does not name stage %q", err, name)
		}
	}
	// A cycle off the main chain is still caught.
	stages = append(stages, noopStage("d", 1))
	_, err = NewGraph(stages,
		[2]string{"a", "b"}, [2]string{"c", "d"}, [2]string{"d", "c"})
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("partial cycle accepted: err=%v", err)
	}
}

func TestGraphConstructionErrors(t *testing.T) {
	ab := []Stage{noopStage("a", 1), noopStage("b", 1)}
	cases := []struct {
		name   string
		stages []Stage
		edges  [][2]string
		want   string
	}{
		{"empty graph", nil, nil, "at least one stage"},
		{"duplicate stage name", []Stage{noopStage("a", 1), noopStage("a", 1)}, nil, "duplicate stage"},
		{"empty stage name", []Stage{noopStage("", 1)}, nil, "empty name"},
		{"self edge", ab, [][2]string{{"a", "a"}}, "self-edge"},
		{"duplicate edge", ab, [][2]string{{"a", "b"}, {"a", "b"}}, "duplicate edge"},
		{"unknown from", ab, [][2]string{{"x", "b"}}, "unknown stage"},
		{"unknown to", ab, [][2]string{{"a", "x"}}, "unknown stage"},
		{"negative workers", []Stage{noopStage("a", -1)}, nil, "negative Workers"},
		{"negative batch", []Stage{StageFunc{
			StageSpec: StageSpec{Name: "a", Batch: -2},
			RunFunc:   func(context.Context, []*Item) error { return nil },
		}}, nil, "negative Batch"},
	}
	for _, tc := range cases {
		_, err := NewGraph(tc.stages, tc.edges...)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err=%v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestGraphStagesTopologicalOrder(t *testing.T) {
	g, err := NewGraph(
		[]Stage{noopStage("sink", 2), noopStage("left", 1), noopStage("right", 1), noopStage("src", 1)},
		[2]string{"src", "left"}, [2]string{"src", "right"},
		[2]string{"left", "sink"}, [2]string{"right", "sink"},
	)
	if err != nil {
		t.Fatal(err)
	}
	specs := g.Stages()
	pos := map[string]int{}
	for i, s := range specs {
		pos[s.Name] = i
	}
	if pos["src"] != 0 || pos["sink"] != 3 {
		t.Fatalf("topological order wrong: %v", specs)
	}
}

// TestNegativeWorkersErrorFromRun pins the satellite fix: negative
// worker counts used to silently spin zero workers and hang the
// stage; now Run rejects them before any file moves (0 still means 1).
func TestNegativeWorkersErrorFromRun(t *testing.T) {
	inputs, _ := testInputs(t, spec.OpenACC, 4)
	for _, cfg := range []Config{
		{CompileWorkers: -1},
		{ExecWorkers: -3},
		{JudgeWorkers: -2},
		{Stages: []StageSpec{{Name: StageExec, Workers: -4}}},
		{JudgeBatch: -16},
	} {
		cfg.Tools = acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, false).Tools
		cfg.Judge = acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, false).Judge
		if _, _, err := Run(context.Background(), cfg, inputs); err == nil || !strings.Contains(err.Error(), "negative") {
			t.Errorf("cfg %+v: err=%v, want negative-value rejection", cfg, err)
		}
	}
	// Zero stays the documented one-worker floor.
	cfg := acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, false)
	cfg.CompileWorkers, cfg.ExecWorkers, cfg.JudgeWorkers = 0, 0, 0
	if _, _, err := Run(context.Background(), cfg, inputs); err != nil {
		t.Fatalf("zero workers must mean one, got error %v", err)
	}
}

func TestConfigStagesValidation(t *testing.T) {
	inputs, _ := testInputs(t, spec.OpenACC, 2)
	base := acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, false)

	cfg := base
	cfg.Stages = []StageSpec{{Name: "lint", Workers: 2}}
	if _, _, err := Run(context.Background(), cfg, inputs); err == nil || !strings.Contains(err.Error(), "unknown stage") {
		t.Errorf("unknown stage name: err=%v", err)
	}
	cfg = base
	cfg.Stages = []StageSpec{{Name: StageJudge, Workers: 2}, {Name: StageJudge, Workers: 3}}
	if _, _, err := Run(context.Background(), cfg, inputs); err == nil || !strings.Contains(err.Error(), "duplicate stage") {
		t.Errorf("duplicate stage spec: err=%v", err)
	}
}

// TestStageSpecLegacyParity pins the translation layer: the same run
// configured through the deprecated scalar knobs and through Stages
// produces identical results and stats.
func TestStageSpecLegacyParity(t *testing.T) {
	inputs, _ := testInputs(t, spec.OpenACC, 30)
	for _, recordAll := range []bool{false, true} {
		legacy := acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, recordAll)
		legacy.JudgeBatch = 4
		specd := Config{
			Tools: legacy.Tools,
			Judge: legacy.Judge,
			Stages: []StageSpec{
				{Name: StageCompile, Workers: 4},
				{Name: StageExec, Workers: 4},
				{Name: StageJudge, Workers: 4, Batch: 4},
			},
			RecordAll: recordAll,
		}
		got, gotStats := runBG(t, specd, inputs)
		want, wantStats := runBG(t, legacy, inputs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("recordAll=%v file %d: Stages run %+v != legacy run %+v", recordAll, i, got[i], want[i])
			}
		}
		if gotStats.Compiles != wantStats.Compiles || gotStats.Executions != wantStats.Executions ||
			gotStats.JudgeCalls != wantStats.JudgeCalls {
			t.Fatalf("recordAll=%v stats diverged: %+v != %+v", recordAll, gotStats, wantStats)
		}
	}
}

// markStage records which files passed through it and asserts, per
// file, a caller-supplied precondition — how the diamond and
// dependency tests observe scheduling order without racing on it.
type markRun struct {
	mu    sync.Mutex
	seen  map[string][]string // stage -> file names, in completion order
	fails []string
}

func (m *markRun) stage(name string, workers int, pre func(m *markRun, it *Item) string) Stage {
	return StageFunc{
		StageSpec: StageSpec{Name: name, Workers: workers},
		RunFunc: func(_ context.Context, items []*Item) error {
			for _, it := range items {
				m.mu.Lock()
				if pre != nil {
					if msg := pre(m, it); msg != "" {
						m.fails = append(m.fails, name+"/"+it.Input.Name+": "+msg)
					}
				}
				m.seen[name] = append(m.seen[name], it.Input.Name)
				m.mu.Unlock()
			}
			return nil
		},
	}
}

// ran reports whether stage already recorded the file. Callers hold
// m.mu (pre runs under the lock).
func (m *markRun) ran(stage, file string) bool {
	for _, n := range m.seen[stage] {
		if n == file {
			return true
		}
	}
	return false
}

func newMarkRun() *markRun { return &markRun{seen: map[string][]string{}} }

// TestDiamondGraphScheduling drives a diamond — src fans out to two
// parallel branches that join at sink — and asserts the precedence
// constraints held for every file while both branches ran.
func TestDiamondGraphScheduling(t *testing.T) {
	m := newMarkRun()
	g, err := NewGraph(
		[]Stage{
			m.stage("src", 4, nil),
			m.stage("left", 4, func(m *markRun, it *Item) string {
				if !m.ran("src", it.Input.Name) {
					return "entered left before src completed"
				}
				return ""
			}),
			m.stage("right", 4, func(m *markRun, it *Item) string {
				if !m.ran("src", it.Input.Name) {
					return "entered right before src completed"
				}
				return ""
			}),
			m.stage("sink", 4, func(m *markRun, it *Item) string {
				if !m.ran("left", it.Input.Name) || !m.ran("right", it.Input.Name) {
					return "entered sink before both branches completed"
				}
				return ""
			}),
		},
		[2]string{"src", "left"}, [2]string{"src", "right"},
		[2]string{"left", "sink"}, [2]string{"right", "sink"},
	)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]Input, 40)
	for i := range inputs {
		inputs[i] = Input{Name: fmt.Sprintf("f%02d.c", i)}
	}
	results, _, err := RunGraph(context.Background(), Config{}, g, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.fails) > 0 {
		t.Fatalf("ordering violations: %v", m.fails)
	}
	for _, st := range []string{"src", "left", "right", "sink"} {
		if len(m.seen[st]) != len(inputs) {
			t.Fatalf("stage %s ran %d files, want %d", st, len(m.seen[st]), len(inputs))
		}
	}
	if len(results) != len(inputs) {
		t.Fatalf("got %d results, want %d", len(results), len(inputs))
	}
}

// TestStopSkipsDownstreamStages: files stopped at the source of a
// diamond never enter either branch or the sink, and still seal.
func TestStopSkipsDownstreamStages(t *testing.T) {
	m := newMarkRun()
	src := StageFunc{
		StageSpec: StageSpec{Name: "src", Workers: 4},
		RunFunc: func(_ context.Context, items []*Item) error {
			for _, it := range items {
				if it.Index%2 == 1 {
					it.Stop()
				}
			}
			return nil
		},
	}
	g, err := NewGraph(
		[]Stage{src, m.stage("left", 4, nil), m.stage("right", 4, nil), m.stage("sink", 4, nil)},
		[2]string{"src", "left"}, [2]string{"src", "right"},
		[2]string{"left", "sink"}, [2]string{"right", "sink"},
	)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]Input, 20)
	for i := range inputs {
		inputs[i] = Input{Name: fmt.Sprintf("f%02d.c", i)}
	}
	var sealed atomic.Int64
	cfg := Config{OnResult: func(FileResult) { sealed.Add(1) }}
	if _, _, err := RunGraph(context.Background(), cfg, g, inputs); err != nil {
		t.Fatal(err)
	}
	if got := sealed.Load(); got != int64(len(inputs)) {
		t.Fatalf("sealed %d files, want %d (stopped files must still seal)", got, len(inputs))
	}
	for _, st := range []string{"left", "right", "sink"} {
		if len(m.seen[st]) != len(inputs)/2 {
			t.Fatalf("stage %s ran %d files, want %d (stopped files must skip it)", st, len(m.seen[st]), len(inputs)/2)
		}
		for _, name := range m.seen[st] {
			var idx int
			fmt.Sscanf(name, "f%02d.c", &idx)
			if idx%2 == 1 {
				t.Fatalf("stopped file %s reached stage %s", name, st)
			}
		}
	}
}

// TestCancellationMidDiamondPartialResults cancels while files are
// blocked inside one branch of a diamond: the run drains promptly,
// returns the context error, and files that never finished keep their
// zero-valued records.
func TestCancellationMidDiamondPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var entered sync.Once
	blockingLeft := StageFunc{
		StageSpec: StageSpec{Name: "left", Workers: 2},
		RunFunc: func(ctx context.Context, items []*Item) error {
			entered.Do(func() { close(release) })
			<-ctx.Done()
			return ctx.Err()
		},
	}
	m := newMarkRun()
	g, err := NewGraph(
		[]Stage{m.stage("src", 2, nil), blockingLeft, m.stage("right", 2, nil), m.stage("sink", 2, nil)},
		[2]string{"src", "left"}, [2]string{"src", "right"},
		[2]string{"left", "sink"}, [2]string{"right", "sink"},
	)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]Input, 16)
	for i := range inputs {
		inputs[i] = Input{Name: fmt.Sprintf("f%02d.c", i)}
	}
	go func() {
		<-release // first file is inside the blocked branch
		cancel()
	}()
	done := make(chan struct{})
	var results []FileResult
	var runErr error
	go func() {
		defer close(done)
		results, _, runErr = RunGraph(ctx, Config{}, g, inputs)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not drain")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", runErr)
	}
	if len(results) != len(inputs) {
		t.Fatalf("partial results: got %d records, want %d (zero-valued for unfinished files)", len(results), len(inputs))
	}
	// No file can have completed the full graph: sink needs left,
	// which never returns before cancellation.
	if n := len(m.seen["sink"]); n != 0 {
		t.Fatalf("%d files completed sink despite the blocked branch", n)
	}
}

// TestConcurrentOnResultFromParallelStages is the -race fixture for
// result streaming: files complete on two parallel terminal stages at
// once, so OnResult fires concurrently from both branches' workers.
// Every file must stream exactly once.
func TestConcurrentOnResultFromParallelStages(t *testing.T) {
	g, err := NewGraph(
		[]Stage{noopStage("src", 8), noopStage("left", 8), noopStage("right", 8)},
		[2]string{"src", "left"}, [2]string{"src", "right"},
	)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]Input, 200)
	for i := range inputs {
		inputs[i] = Input{Name: fmt.Sprintf("f%03d.c", i)}
	}
	var mu sync.Mutex
	counts := map[string]int{}
	cfg := Config{OnResult: func(fr FileResult) {
		mu.Lock()
		counts[fr.Name]++
		mu.Unlock()
	}}
	if _, _, err := RunGraph(context.Background(), cfg, g, inputs); err != nil {
		t.Fatal(err)
	}
	if len(counts) != len(inputs) {
		t.Fatalf("streamed %d distinct files, want %d", len(counts), len(inputs))
	}
	for name, n := range counts {
		if n != 1 {
			t.Fatalf("file %s streamed %d times", name, n)
		}
	}
}

// TestBatchedStageCoalesces: a batch-shaped custom stage receives
// multi-item Run calls, never larger than its Batch.
func TestBatchedStageCoalesces(t *testing.T) {
	var maxBatch atomic.Int64
	sink := StageFunc{
		StageSpec: StageSpec{Name: "sink", Workers: 1, Batch: 8},
		RunFunc: func(_ context.Context, items []*Item) error {
			if n := int64(len(items)); n > maxBatch.Load() {
				maxBatch.Store(n)
			}
			if len(items) > 8 {
				return fmt.Errorf("batch of %d exceeds Batch=8", len(items))
			}
			return nil
		},
	}
	g, err := NewGraph([]Stage{noopStage("src", 8), sink}, [2]string{"src", "sink"})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]Input, 120)
	for i := range inputs {
		inputs[i] = Input{Name: fmt.Sprintf("f%03d.c", i)}
	}
	if _, _, err := RunGraph(context.Background(), Config{}, g, inputs); err != nil {
		t.Fatal(err)
	}
	if maxBatch.Load() < 2 {
		t.Fatalf("single-worker batched sink behind 8 feeders never coalesced (max batch %d)", maxBatch.Load())
	}
}

func TestDependsOnValidation(t *testing.T) {
	g, err := NewGraph([]Stage{noopStage("s", 1)})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		inputs []Input
		want   string
	}{
		{"unknown dependency", []Input{{Name: "a", DependsOn: []string{"ghost"}}}, "unknown input"},
		{"self dependency", []Input{{Name: "a", DependsOn: []string{"a"}}}, "depends on itself"},
		{"duplicate names", []Input{{Name: "a"}, {Name: "a", DependsOn: []string{"a"}}}, "share the name"},
		{"cycle", []Input{
			{Name: "a", DependsOn: []string{"b"}},
			{Name: "b", DependsOn: []string{"a"}},
		}, "dependency cycle"},
	}
	for _, tc := range cases {
		_, _, err := RunGraph(context.Background(), Config{}, g, tc.inputs)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err=%v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestDependsOnGatesPerStage: a dependent file enters each stage only
// after its dependency completed that same stage — per-stage gating,
// not a whole-file barrier.
func TestDependsOnGatesPerStage(t *testing.T) {
	m := newMarkRun()
	depOf := map[string]string{"mid.c": "root.c", "leaf.c": "mid.c"}
	pre := func(stage string) func(m *markRun, it *Item) string {
		return func(m *markRun, it *Item) string {
			if dep, ok := depOf[it.Input.Name]; ok && !m.ran(stage, dep) {
				return "entered " + stage + " before dependency " + dep
			}
			return ""
		}
	}
	g, err := NewGraph(
		[]Stage{
			m.stage("first", 4, pre("first")),
			m.stage("second", 4, pre("second")),
		},
		[2]string{"first", "second"},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave unrelated files so the chain contends with real
	// parallel traffic.
	inputs := []Input{
		{Name: "leaf.c", DependsOn: []string{"mid.c"}},
		{Name: "x0.c"}, {Name: "x1.c"}, {Name: "x2.c"},
		{Name: "mid.c", DependsOn: []string{"root.c"}},
		{Name: "x3.c"}, {Name: "x4.c"},
		{Name: "root.c"},
	}
	for run := 0; run < 20; run++ {
		m.seen = map[string][]string{}
		m.fails = nil
		if _, _, err := RunGraph(context.Background(), Config{}, g, inputs); err != nil {
			t.Fatal(err)
		}
		if len(m.fails) > 0 {
			t.Fatalf("run %d ordering violations: %v", run, m.fails)
		}
		for _, st := range []string{"first", "second"} {
			if len(m.seen[st]) != len(inputs) {
				t.Fatalf("run %d: stage %s ran %d files, want %d", run, st, len(m.seen[st]), len(inputs))
			}
		}
	}
}

// TestDependsOnStoppedDependencyStillReleases: a dependency that
// short-circuits out of the graph still releases its dependents —
// skipped stages count as completed, so nothing deadlocks.
func TestDependsOnStoppedDependencyStillReleases(t *testing.T) {
	m := newMarkRun()
	src := StageFunc{
		StageSpec: StageSpec{Name: "src", Workers: 2},
		RunFunc: func(_ context.Context, items []*Item) error {
			for _, it := range items {
				if it.Input.Name == "dep.c" {
					it.Stop()
				}
			}
			return nil
		},
	}
	g, err := NewGraph([]Stage{src, m.stage("next", 2, nil)}, [2]string{"src", "next"})
	if err != nil {
		t.Fatal(err)
	}
	inputs := []Input{
		{Name: "dep.c"},
		{Name: "a.c", DependsOn: []string{"dep.c"}},
		{Name: "b.c", DependsOn: []string{"a.c"}},
	}
	done := make(chan struct{})
	var sealed atomic.Int64
	go func() {
		defer close(done)
		cfg := Config{OnResult: func(FileResult) { sealed.Add(1) }}
		if _, _, err := RunGraph(context.Background(), cfg, g, inputs); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stopped dependency deadlocked its dependents")
	}
	if got := sealed.Load(); got != 3 {
		t.Fatalf("sealed %d files, want 3", got)
	}
	if len(m.seen["next"]) != 2 {
		t.Fatalf("stage next ran %v, want the two dependents only", m.seen["next"])
	}
}

// TestDependsOnParityWithIndependentInputs: declaring no dependencies
// must leave the default pipeline's results untouched (the fast path
// is the same scheduler), and a dependency chain over real corpus
// files reproduces the independent run's verdicts exactly — ordering
// constraints change scheduling, never outcomes.
func TestDependsOnParityWithIndependentInputs(t *testing.T) {
	inputs, _ := testInputs(t, spec.OpenACC, 24)
	cfg := acceptingConfig(spec.OpenACC, alwaysLLM{"valid"}, false)
	want, _ := runBG(t, cfg, inputs)

	chained := make([]Input, len(inputs))
	copy(chained, inputs)
	for i := 1; i < len(chained); i++ {
		// Chain within groups of four: three dependents per root.
		if i%4 != 0 {
			chained[i].DependsOn = []string{chained[i-1].Name}
		}
	}
	got, _ := runBG(t, cfg, chained)
	for i := range want {
		g, w := got[i], want[i]
		// Inputs differ only in DependsOn, which is not part of the
		// result; every recorded field must match.
		if g != w {
			t.Fatalf("file %d: dependency-chained run %+v != independent run %+v", i, g, w)
		}
	}
}
