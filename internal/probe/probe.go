// Package probe implements negative probing (paper §III-A): taking a
// suite of valid, manually-written-style compiler tests, splitting it,
// and injecting one of five error classes into the files of one part
// while leaving the other unchanged. The resulting labelled suite is
// the benchmark every judge and pipeline configuration is scored
// against.
package probe

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/testlang"
)

// Issue identifies the mutation class, using the paper's issue IDs.
type Issue int

const (
	// IssueDirective (0): removed ACC/OMP memory allocation (a device
	// data clause or unstructured data directive) or swapped a
	// directive for a syntactically incorrect one.
	IssueDirective Issue = iota
	// IssueBracket (1): removed an opening bracket.
	IssueBracket
	// IssueUndeclared (2): added use of an undeclared variable.
	IssueUndeclared
	// IssueRandom (3): replaced the file with randomly generated
	// non-OpenACC/OpenMP code.
	IssueRandom
	// IssueTruncated (4): removed the last bracketed section of code.
	IssueTruncated
	// IssueNone (5): unchanged file.
	IssueNone
)

// NumIssues counts the issue classes including IssueNone.
const NumIssues = 6

// Description returns the paper's wording for the issue row of a
// results table.
func (i Issue) Description(d spec.Dialect) string {
	tag := "ACC"
	if d == spec.OpenMP {
		tag = "OMP"
	}
	switch i {
	case IssueDirective:
		return fmt.Sprintf("Removed %s memory allocation / swapped %s directive", tag, tag)
	case IssueBracket:
		return "Removed an opening bracket"
	case IssueUndeclared:
		return "Added use of undeclared variable"
	case IssueRandom:
		return fmt.Sprintf("Replaced file with randomly-generated non-%s code", d)
	case IssueTruncated:
		return "Removed last bracketed section of code"
	case IssueNone:
		return "No issue"
	default:
		return fmt.Sprintf("Issue(%d)", int(i))
	}
}

// Valid is the paper's system-of-verification: files with issue IDs
// 0-4 are invalid; issue 5 files are valid.
func (i Issue) Valid() bool { return i == IssueNone }

// ProbedFile is one suite entry: the (possibly mutated) file plus its
// ground-truth label.
type ProbedFile struct {
	corpus.TestFile
	Issue Issue
	// Mutation describes what was done, for experiment records.
	Mutation string
}

// Counts fixes the number of files per issue ID in a probed suite,
// indexed by Issue.
type Counts [NumIssues]int

// Total sums the per-issue counts.
func (c Counts) Total() int {
	t := 0
	for _, n := range c {
		t += n
	}
	return t
}

// BuildSuite assigns issues to files (shuffled deterministically) and
// applies the mutations. len(files) must equal counts.Total().
func BuildSuite(files []corpus.TestFile, counts Counts, seed uint64) ([]ProbedFile, error) {
	if len(files) != counts.Total() {
		return nil, fmt.Errorf("probe: %d files for %d issue slots", len(files), counts.Total())
	}
	r := rng.New(seed)
	order := r.Perm(len(files))
	out := make([]ProbedFile, 0, len(files))
	idx := 0
	for issue := Issue(0); issue < NumIssues; issue++ {
		for k := 0; k < counts[issue]; k++ {
			f := files[order[idx]]
			idx++
			pf := Mutate(f, issue, r.Split(f.Name))
			out = append(out, pf)
		}
	}
	// Shuffle the final order so issues are interleaved as they would
	// be on disk.
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

// Mutate applies one issue class to a file. IssueNone returns the
// file unchanged.
func Mutate(f corpus.TestFile, issue Issue, r *rng.Source) ProbedFile {
	pf := ProbedFile{TestFile: f, Issue: issue}
	switch issue {
	case IssueNone:
		pf.Mutation = "none"
	case IssueDirective:
		pf.Source, pf.Mutation = mutateDirective(f.Source, f.Lang, f.Dialect, r)
	case IssueBracket:
		pf.Source, pf.Mutation = mutateBracket(f.Source, f.Lang, r)
	case IssueUndeclared:
		pf.Source, pf.Mutation = mutateUndeclared(f.Source, f.Lang, r)
	case IssueRandom:
		pf.Source = corpus.RandomForLang(r, f.Lang, corpus.DefaultRandomOpts())
		pf.Mutation = "replaced with random non-directive code"
	case IssueTruncated:
		pf.Source, pf.Mutation = mutateTruncate(f.Source, f.Lang, r)
	}
	return pf
}

// --- issue 0: directive/allocation mutation ---------------------------

// dataClauseNames are the "memory allocation" clauses removal targets.
var dataClauseNames = []string{"copyin", "copyout", "copy", "create", "map"}

func mutateDirective(src string, lang testlang.Language, d spec.Dialect, r *rng.Source) (string, string) {
	// Submode A (removal) and submode B (swap) split evenly; removal
	// falls back to swap when the file has nothing removable.
	if r.Bool(0.5) {
		if out, desc, ok := removeAllocation(src, lang, r); ok {
			return out, desc
		}
	}
	if out, desc, ok := swapDirective(src, lang, d, r); ok {
		return out, desc
	}
	if out, desc, ok := removeAllocation(src, lang, r); ok {
		return out, desc
	}
	// No directives at all (cannot happen for corpus files): fall back
	// to a bracket error so the file is still invalid.
	return mutateBracket(src, lang, r)
}

// directiveLineIndexes lists line numbers holding directives.
func directiveLineIndexes(lines []string, lang testlang.Language) []int {
	var idxs []int
	for i, ln := range lines {
		t := strings.TrimSpace(ln)
		if lang == testlang.LangFortran {
			if strings.HasPrefix(t, "!$") {
				idxs = append(idxs, i)
			}
		} else if strings.HasPrefix(t, "#pragma ") {
			idxs = append(idxs, i)
		}
	}
	return idxs
}

// removeAllocation removes either a whole unstructured data directive
// line (enter data / exit data / target enter data / ...) or one data
// clause from a directive line.
func removeAllocation(src string, lang testlang.Language, r *rng.Source) (string, string, bool) {
	lines := strings.Split(src, "\n")
	dirIdx := directiveLineIndexes(lines, lang)
	if len(dirIdx) == 0 {
		return "", "", false
	}
	// Whole-line candidates: unstructured data directives.
	var wholeLine []int
	for _, i := range dirIdx {
		t := lines[i]
		if strings.Contains(t, "enter data") || strings.Contains(t, "exit data") ||
			strings.Contains(t, " update ") || strings.HasSuffix(strings.TrimSpace(t), "update") {
			wholeLine = append(wholeLine, i)
		}
	}
	// Clause candidates: (line, clauseStart, clauseEnd).
	type clausePos struct{ line, start, end int }
	var clauses []clausePos
	for _, i := range dirIdx {
		text := lines[i]
		for _, name := range dataClauseNames {
			from := 0
			for {
				rel := strings.Index(text[from:], name+"(")
				if rel < 0 {
					break
				}
				start := from + rel
				// Must be a clause word boundary.
				if start > 0 && (isWordByte(text[start-1])) {
					from = start + 1
					continue
				}
				depth := 0
				end := -1
				for j := start + len(name); j < len(text); j++ {
					if text[j] == '(' {
						depth++
					} else if text[j] == ')' {
						depth--
						if depth == 0 {
							end = j + 1
							break
						}
					}
				}
				if end > 0 {
					clauses = append(clauses, clausePos{line: i, start: start, end: end})
					from = end
				} else {
					break
				}
			}
		}
	}
	total := len(wholeLine) + len(clauses)
	if total == 0 {
		return "", "", false
	}
	pick := r.Intn(total)
	if pick < len(wholeLine) {
		i := wholeLine[pick]
		removed := strings.TrimSpace(lines[i])
		out := append(append([]string{}, lines[:i]...), lines[i+1:]...)
		return strings.Join(out, "\n"), "removed data directive: " + removed, true
	}
	cp := clauses[pick-len(wholeLine)]
	text := lines[cp.line]
	removed := strings.TrimSpace(text[cp.start:cp.end])
	lines[cp.line] = strings.TrimRight(text[:cp.start]+text[cp.end:], " ")
	return strings.Join(lines, "\n"), "removed data clause: " + removed, true
}

func isWordByte(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// swapDirective corrupts a directive name into a syntactically
// incorrect one.
func swapDirective(src string, lang testlang.Language, d spec.Dialect, r *rng.Source) (string, string, bool) {
	lines := strings.Split(src, "\n")
	dirIdx := directiveLineIndexes(lines, lang)
	if len(dirIdx) == 0 {
		return "", "", false
	}
	i := dirIdx[r.Intn(len(dirIdx))]
	line := lines[i]
	sentinel := "#pragma " + d.Sentinel() + " "
	if lang == testlang.LangFortran {
		sentinel = d.FortranSentinel() + " "
	}
	at := strings.Index(line, sentinel)
	if at < 0 {
		return "", "", false
	}
	nameStart := at + len(sentinel)
	nameEnd := nameStart
	for nameEnd < len(line) && (isWordByte(line[nameEnd]) || line[nameEnd] == ' ') {
		// Stop the name at a clause parenthesis.
		if line[nameEnd] == ' ' && nameEnd+1 < len(line) && !isWordByte(line[nameEnd+1]) {
			break
		}
		nameEnd++
	}
	name := strings.TrimSpace(line[nameStart:nameEnd])
	if name == "" {
		return "", "", false
	}
	corrupted := corruptWord(name, r)
	lines[i] = line[:nameStart] + corrupted + line[nameStart+len(name):]
	return strings.Join(lines, "\n"),
		fmt.Sprintf("swapped directive %q -> %q", name, corrupted), true
}

// corruptWord misspells a directive name so it no longer matches any
// specification entry.
func corruptWord(name string, r *rng.Source) string {
	fields := strings.Fields(name)
	w := fields[r.Intn(len(fields))]
	var mutated string
	switch r.Intn(4) {
	case 0: // drop a letter
		k := r.Intn(len(w))
		mutated = w[:k] + w[k+1:]
	case 1: // double a letter
		k := r.Intn(len(w))
		mutated = w[:k] + string(w[k]) + w[k:]
	case 2: // transpose
		if len(w) > 1 {
			k := r.Intn(len(w) - 1)
			mutated = w[:k] + string(w[k+1]) + string(w[k]) + w[k+2:]
		} else {
			mutated = w + w
		}
	default: // splice in an underscore
		k := 1 + r.Intn(len(w))
		mutated = w[:k] + "_" + w[k:]
	}
	if mutated == w {
		mutated = w + "x"
	}
	for i, f := range fields {
		if f == w {
			fields[i] = mutated
			break
		}
	}
	return strings.Join(fields, " ")
}

// --- issue 1: bracket removal ----------------------------------------

func mutateBracket(src string, lang testlang.Language, r *rng.Source) (string, string) {
	target := byte('{')
	if lang == testlang.LangFortran {
		target = '('
	}
	var positions []int
	inStr := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		if c == '"' {
			inStr = !inStr
		}
		if !inStr && c == target {
			positions = append(positions, i)
		}
	}
	if len(positions) == 0 {
		return src + "\n}", "appended stray closing bracket"
	}
	p := positions[r.Intn(len(positions))]
	return src[:p] + src[p+1:], fmt.Sprintf("removed opening %q", string(target))
}

// --- issue 2: undeclared variable -------------------------------------

func mutateUndeclared(src string, lang testlang.Language, r *rng.Source) (string, string) {
	name := fmt.Sprintf("undeclared_tmp_%d", r.Intn(100))
	lines := strings.Split(src, "\n")
	if lang == testlang.LangFortran {
		// Insert inside the first do loop.
		for i, ln := range lines {
			t := strings.ToLower(strings.TrimSpace(ln))
			if strings.HasPrefix(t, "do ") {
				stmt := indentOf(lines[i]) + "    " + name + " = " + name + " + 1"
				lines = insertLine(lines, i+1, stmt)
				return strings.Join(lines, "\n"), "inserted use of " + name
			}
		}
		lines = insertLine(lines, len(lines)-1, "    "+name+" = 1")
		return strings.Join(lines, "\n"), "inserted use of " + name
	}
	// C/C++: insert a statement after a random statement line inside a
	// function body.
	var stmtLines []int
	depth := 0
	for i, ln := range lines {
		t := strings.TrimSpace(ln)
		opens := strings.Count(ln, "{")
		closes := strings.Count(ln, "}")
		if depth > 0 && strings.HasSuffix(t, ";") && !strings.HasPrefix(t, "#") &&
			!strings.HasPrefix(t, "for") && !strings.HasPrefix(t, "if") {
			stmtLines = append(stmtLines, i)
		}
		depth += opens - closes
	}
	if len(stmtLines) == 0 {
		return src + "\nint trailing = " + name + ";\n", "appended use of " + name
	}
	i := stmtLines[r.Intn(len(stmtLines))]
	stmt := indentOf(lines[i]) + name + " = " + name + " + 1;"
	lines = insertLine(lines, i+1, stmt)
	return strings.Join(lines, "\n"), "inserted use of " + name
}

func indentOf(line string) string {
	for i := 0; i < len(line); i++ {
		if line[i] != ' ' && line[i] != '\t' {
			return line[:i]
		}
	}
	return line
}

func insertLine(lines []string, at int, stmt string) []string {
	if at < 0 {
		at = 0
	}
	if at > len(lines) {
		at = len(lines)
	}
	out := make([]string, 0, len(lines)+1)
	out = append(out, lines[:at]...)
	out = append(out, stmt)
	out = append(out, lines[at:]...)
	return out
}

// --- issue 4: remove last bracketed section ---------------------------

// mutateTruncate removes the last *inner* balanced brace block of the
// file, including its control header when one is present. For the V&V
// house style this is usually the trailing error-check block, leaving
// a file that compiles and runs clean but verifies nothing — the
// mutation class the paper found hardest for the pipeline to catch.
func mutateTruncate(src string, lang testlang.Language, r *rng.Source) (string, string) {
	if lang == testlang.LangFortran {
		return truncateFortran(src)
	}
	type blockPos struct{ open, close, depth int }
	var blocks []blockPos
	var stack []int
	depth := 0
	inStr, inLine, inBlock := false, false, false
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inLine:
			if c == '\n' {
				inLine = false
			}
		case inBlock:
			if c == '*' && i+1 < len(src) && src[i+1] == '/' {
				inBlock = false
				i++
			}
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		default:
			switch c {
			case '/':
				if i+1 < len(src) {
					if src[i+1] == '/' {
						inLine = true
					} else if src[i+1] == '*' {
						inBlock = true
					}
				}
			case '"':
				inStr = true
			case '{':
				depth++
				stack = append(stack, i)
			case '}':
				if len(stack) > 0 {
					open := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					blocks = append(blocks, blockPos{open: open, close: i, depth: depth})
				}
				depth--
			}
		}
	}
	if len(blocks) == 0 {
		return src, "no block to remove"
	}
	// Prefer the inner block (depth >= 2) with the greatest opening
	// position; fall back to the last block of any depth.
	best := -1
	for i, b := range blocks {
		if b.depth >= 2 && (best < 0 || b.open > blocks[best].open) {
			best = i
		}
	}
	if best < 0 {
		for i, b := range blocks {
			if best < 0 || b.open > blocks[best].open {
				best = i
			}
		}
	}
	b := blocks[best]
	start := b.open
	// Extend removal back to the start of the control-header line when
	// the text before '{' on that line looks like "if (...)" etc.
	lineStart := strings.LastIndexByte(src[:start], '\n') + 1
	head := strings.TrimSpace(src[lineStart:start])
	if head == "" {
		// '{' alone on its line: check the previous line for a header.
		prevStart := strings.LastIndexByte(src[:lineStart-1], '\n') + 1
		prev := strings.TrimSpace(src[prevStart : lineStart-1])
		if isControlHeader(prev) {
			start = prevStart
		} else {
			start = lineStart
		}
	} else if isControlHeader(head) {
		start = lineStart
	}
	end := b.close + 1
	// Swallow the trailing newline.
	if end < len(src) && src[end] == '\n' {
		end++
	}
	return src[:start] + src[end:], "removed last bracketed section"
}

func isControlHeader(s string) bool {
	return strings.HasPrefix(s, "if ") || strings.HasPrefix(s, "if(") ||
		strings.HasPrefix(s, "for ") || strings.HasPrefix(s, "for(") ||
		strings.HasPrefix(s, "while ") || strings.HasPrefix(s, "while(") ||
		s == "else" || strings.HasPrefix(s, "else ") ||
		strings.HasPrefix(s, "} else")
}

// truncateFortran removes the last "if ... then / end if" block.
func truncateFortran(src string) (string, string) {
	lines := strings.Split(src, "\n")
	lastEnd := -1
	for i := len(lines) - 1; i >= 0; i-- {
		t := strings.ToLower(strings.TrimSpace(lines[i]))
		if strings.HasPrefix(t, "end if") || strings.HasPrefix(t, "endif") {
			lastEnd = i
			break
		}
	}
	if lastEnd < 0 {
		return src, "no block to remove"
	}
	depth := 1
	start := -1
	for i := lastEnd - 1; i >= 0; i-- {
		t := strings.ToLower(strings.TrimSpace(lines[i]))
		if strings.HasPrefix(t, "end if") || strings.HasPrefix(t, "endif") {
			depth++
		} else if strings.HasPrefix(t, "if") && strings.HasSuffix(t, "then") {
			depth--
			if depth == 0 {
				start = i
				break
			}
		}
	}
	if start < 0 {
		return src, "no block to remove"
	}
	out := append(append([]string{}, lines[:start]...), lines[lastEnd+1:]...)
	return strings.Join(out, "\n"), "removed last bracketed section"
}
