package probe

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/corpus"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/testlang"
)

func sampleFiles(t *testing.T, d spec.Dialect, n int) []corpus.TestFile {
	t.Helper()
	return corpus.Generate(corpus.Config{Dialect: d, Seed: 17,
		Langs: []testlang.Language{testlang.LangC, testlang.LangCPP}}, n)
}

func TestIssueDescriptions(t *testing.T) {
	if !strings.Contains(IssueDirective.Description(spec.OpenACC), "ACC") {
		t.Error("ACC description lacks ACC tag")
	}
	if !strings.Contains(IssueDirective.Description(spec.OpenMP), "OMP") {
		t.Error("OMP description lacks OMP tag")
	}
	if !strings.Contains(IssueRandom.Description(spec.OpenACC), "OpenACC") {
		t.Error("random description lacks dialect")
	}
	if IssueNone.Description(spec.OpenACC) != "No issue" {
		t.Error("IssueNone description wrong")
	}
}

func TestValidity(t *testing.T) {
	for i := Issue(0); i < NumIssues; i++ {
		want := i == IssueNone
		if i.Valid() != want {
			t.Errorf("Issue %d validity = %v", i, i.Valid())
		}
	}
}

func TestBuildSuiteCounts(t *testing.T) {
	files := sampleFiles(t, spec.OpenACC, 60)
	counts := Counts{10, 10, 10, 10, 10, 10}
	suite, err := BuildSuite(files, counts, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := Counts{}
	for _, pf := range suite {
		got[pf.Issue]++
	}
	if got != counts {
		t.Fatalf("issue counts = %v, want %v", got, counts)
	}
}

func TestBuildSuiteWrongSize(t *testing.T) {
	files := sampleFiles(t, spec.OpenACC, 5)
	if _, err := BuildSuite(files, Counts{1, 1, 1, 1, 1, 1}, 5); err == nil {
		t.Fatal("size mismatch not rejected")
	}
}

func TestBuildSuiteDeterministic(t *testing.T) {
	files := sampleFiles(t, spec.OpenACC, 30)
	counts := Counts{5, 5, 5, 5, 5, 5}
	a, _ := BuildSuite(files, counts, 9)
	b, _ := BuildSuite(files, counts, 9)
	for i := range a {
		if a[i].Source != b[i].Source || a[i].Issue != b[i].Issue {
			t.Fatalf("suite entry %d differs between identical builds", i)
		}
	}
}

func TestMutateNoneUnchanged(t *testing.T) {
	f := sampleFiles(t, spec.OpenACC, 1)[0]
	pf := Mutate(f, IssueNone, rng.New(1))
	if pf.Source != f.Source {
		t.Fatal("IssueNone changed the file")
	}
}

// TestBracketMutationBreaksCompile: issue 1 must always produce a
// compile error.
func TestBracketMutationBreaksCompile(t *testing.T) {
	files := sampleFiles(t, spec.OpenACC, 20)
	pers := compiler.NVCSim()
	for _, f := range files {
		pf := Mutate(f, IssueBracket, rng.New(uint64(len(f.Source))))
		if pf.Source == f.Source {
			t.Fatalf("%s: bracket mutation was a no-op", f.Name)
		}
		res := pers.Compile(pf.Name, pf.Source, pf.Lang)
		if res.OK {
			t.Errorf("%s: bracket-removed file compiled:\n%s", f.Name, pf.Source)
		}
	}
}

// TestUndeclaredMutationBreaksCompile: issue 2 must always produce a
// compile error.
func TestUndeclaredMutationBreaksCompile(t *testing.T) {
	files := sampleFiles(t, spec.OpenMP, 20)
	pers := compiler.ClangSim()
	for _, f := range files {
		pf := Mutate(f, IssueUndeclared, rng.New(uint64(len(f.Source))))
		res := pers.Compile(pf.Name, pf.Source, pf.Lang)
		if res.OK {
			t.Errorf("%s: undeclared-var file compiled:\n%s", f.Name, pf.Source)
		}
		if !strings.Contains(pf.Mutation, "undeclared_tmp") {
			t.Errorf("mutation record %q lacks the variable", pf.Mutation)
		}
	}
}

// TestSwapDirectiveBreaksCompile: the swap submode of issue 0 must
// produce an unknown-directive compile error.
func TestSwapDirectiveBreaksCompile(t *testing.T) {
	files := sampleFiles(t, spec.OpenACC, 30)
	pers := compiler.Reference(spec.OpenACC)
	swaps := 0
	for _, f := range files {
		pf := Mutate(f, IssueDirective, rng.New(uint64(len(f.Source))+3))
		if !strings.HasPrefix(pf.Mutation, "swapped directive") {
			continue
		}
		swaps++
		res := pers.Compile(pf.Name, pf.Source, pf.Lang)
		if res.OK {
			t.Errorf("%s: swapped directive compiled (%s):\n%s", f.Name, pf.Mutation, pf.Source)
		}
	}
	if swaps == 0 {
		t.Fatal("no swap submode occurrences in 30 mutations")
	}
}

// TestRemoveAllocationMix: the removal submode should yield a blend of
// still-running (masked by implicit data movement), runtime-failing
// and result-failing files — that blend is load-bearing for Table IV.
func TestRemoveAllocationMix(t *testing.T) {
	files := sampleFiles(t, spec.OpenACC, 120)
	pers := compiler.Reference(spec.OpenACC)
	removals, masked, caught := 0, 0, 0
	for _, f := range files {
		pf := Mutate(f, IssueDirective, rng.New(uint64(len(f.Source))))
		if strings.HasPrefix(pf.Mutation, "swapped") {
			continue
		}
		removals++
		res := pers.Compile(pf.Name, pf.Source, pf.Lang)
		if !res.OK {
			caught++ // e.g. removing a clause broke syntax
			continue
		}
		r := machine.Run(res.Object, machine.Options{})
		if r.ReturnCode == 0 {
			masked++
		} else {
			caught++
		}
	}
	if removals < 20 {
		t.Fatalf("too few removal submode samples: %d", removals)
	}
	if masked == 0 {
		t.Error("no removal was masked by implicit data movement; OpenACC leniency broken")
	}
	if caught == 0 {
		t.Error("no removal was caught mechanically; presence/copyout semantics broken")
	}
	t.Logf("removals=%d masked=%d caught=%d", removals, masked, caught)
}

// TestTruncateMutationMostlyCompiles: issue 4 must usually leave a
// compilable file (the paper's hardest class), with a small tail of
// mechanical failures.
func TestTruncateMutationMostlyCompiles(t *testing.T) {
	files := sampleFiles(t, spec.OpenACC, 60)
	pers := compiler.Reference(spec.OpenACC)
	compiles, cleanRuns := 0, 0
	for _, f := range files {
		pf := Mutate(f, IssueTruncated, rng.New(uint64(len(f.Source))))
		if pf.Source == f.Source {
			t.Errorf("%s: truncate was a no-op", f.Name)
			continue
		}
		res := pers.Compile(pf.Name, pf.Source, pf.Lang)
		if !res.OK {
			continue
		}
		compiles++
		if machine.Run(res.Object, machine.Options{}).ReturnCode == 0 {
			cleanRuns++
		}
	}
	if compiles < 40 {
		t.Fatalf("only %d/60 truncated files compile; expected most", compiles)
	}
	if cleanRuns < 30 {
		t.Fatalf("only %d/60 truncated files run clean; the hard class is not hard", cleanRuns)
	}
	t.Logf("compiles=%d cleanRuns=%d of 60", compiles, cleanRuns)
}

// TestTruncateRemovesCheckBlock: for the house-style templates the
// removed section should be the trailing error check.
func TestTruncateRemovesCheckBlock(t *testing.T) {
	f, err := corpus.InstantiateTemplate(spec.OpenACC, "parallel_loop_vecadd", testlang.LangC, 0)
	if err != nil {
		t.Fatal(err)
	}
	pf := Mutate(f, IssueTruncated, rng.New(1))
	if strings.Contains(pf.Source, "Test failed") {
		t.Fatalf("fail block survived truncation:\n%s", pf.Source)
	}
	if !strings.Contains(pf.Source, "Test passed") {
		t.Fatalf("pass path removed, wrong block excised:\n%s", pf.Source)
	}
}

func TestRandomMutationHasNoDirectives(t *testing.T) {
	files := sampleFiles(t, spec.OpenMP, 20)
	for _, f := range files {
		pf := Mutate(f, IssueRandom, rng.New(uint64(len(f.Source))))
		if strings.Contains(pf.Source, "#pragma omp") || strings.Contains(pf.Source, "#pragma acc") {
			t.Fatalf("random replacement still contains directives:\n%s", pf.Source)
		}
	}
}

func TestFortranMutations(t *testing.T) {
	f, err := corpus.InstantiateTemplate(spec.OpenACC, "parallel_loop_vecadd", testlang.LangFortran, 0)
	if err != nil {
		t.Fatal(err)
	}
	pers := compiler.Reference(spec.OpenACC)
	if res := pers.Compile(f.Name, f.Source, f.Lang); !res.OK {
		t.Fatalf("base Fortran file invalid:\n%s", res.Stderr)
	}
	for _, issue := range []Issue{IssueBracket, IssueUndeclared} {
		pf := Mutate(f, issue, rng.New(3))
		res := pers.Compile(pf.Name, pf.Source, pf.Lang)
		if res.OK {
			t.Errorf("Fortran issue %d compiled:\n%s", issue, pf.Source)
		}
	}
	pf := Mutate(f, IssueTruncated, rng.New(3))
	if strings.Count(pf.Source, "end if") >= strings.Count(f.Source, "end if") {
		t.Error("Fortran truncate removed nothing")
	}
	pf = Mutate(f, IssueRandom, rng.New(3))
	if strings.Contains(pf.Source, "!$acc") {
		t.Error("Fortran random replacement contains directives")
	}
}

func TestMutationRecordsPopulated(t *testing.T) {
	files := sampleFiles(t, spec.OpenACC, 12)
	for i, f := range files {
		issue := Issue(i % 5)
		pf := Mutate(f, issue, rng.New(uint64(i)))
		if pf.Mutation == "" {
			t.Errorf("issue %d produced empty mutation record", issue)
		}
	}
}
