package probe

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/spec"
)

// TestTruncateAsymmetryOMPvsACC locks in the structural asymmetry
// behind Tables IV/V: removing the last bracketed section is rarely
// caught mechanically for OpenACC files (fail-open reporting idiom —
// the removed block is the early-return error check) but usually
// caught for OpenMP files (fail-closed SOLLVE-style reporting — the
// removed block is the status-clearing success path). See
// EXPERIMENTS.md for the calibration discussion.
func TestTruncateAsymmetryOMPvsACC(t *testing.T) {
	rates := map[spec.Dialect]float64{}
	for _, d := range []spec.Dialect{spec.OpenACC, spec.OpenMP} {
		files := sampleFiles(t, d, 80)
		pers := compiler.Reference(d)
		caught := 0
		for _, f := range files {
			pf := Mutate(f, IssueTruncated, rng.New(uint64(len(f.Source))))
			res := pers.Compile(pf.Name, pf.Source, pf.Lang)
			if !res.OK {
				caught++
				continue
			}
			if machine.Run(res.Object, machine.Options{}).ReturnCode != 0 {
				caught++
			}
		}
		rates[d] = float64(caught) / 80
		t.Logf("%v: truncation mechanically caught %d/80", d, caught)
	}
	if rates[spec.OpenACC] > 0.30 {
		t.Errorf("OpenACC truncation catch rate %.2f too high; paper band is ~0.07", rates[spec.OpenACC])
	}
	if rates[spec.OpenMP] < 0.60 {
		t.Errorf("OpenMP truncation catch rate %.2f too low; paper band is ~0.85", rates[spec.OpenMP])
	}
	if rates[spec.OpenMP]-rates[spec.OpenACC] < 0.4 {
		t.Errorf("truncation asymmetry collapsed: ACC %.2f vs OMP %.2f", rates[spec.OpenACC], rates[spec.OpenMP])
	}
}
