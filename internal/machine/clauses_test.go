package machine

import (
	"strings"
	"testing"

	"repro/internal/spec"
)

func TestPrivateClauseIsolatesWorkers(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
#define N 512
int main() {
    int *out = (int *)malloc(N * sizeof(int));
    int scratch = -1;
#pragma acc parallel loop private(scratch) copyout(out[0:N])
    for (int i = 0; i < N; i++) {
        scratch = i * 3;
        out[i] = scratch;
    }
    for (int i = 0; i < N; i++) {
        if (out[i] != i * 3) return 1;
    }
    // The host copy must be untouched (private, not copied back).
    return scratch == -1 ? 0 : 2;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d", r.ReturnCode)
	}
}

func TestFirstPrivateSeedsWorkers(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
#define N 256
int main() {
    int *out = (int *)malloc(N * sizeof(int));
    int offset = 7;
#pragma omp parallel for firstprivate(offset)
    for (int i = 0; i < N; i++) {
        out[i] = i + offset;
    }
    for (int i = 0; i < N; i++) {
        if (out[i] != i + 7) return 1;
    }
    return 0;
}
`, spec.OpenMP)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d", r.ReturnCode)
	}
}

func TestNestedDataRegionsRefcount(t *testing.T) {
	// An inner structured region re-entering present data must not
	// free the outer region's copy on exit (present_or_copy
	// refcounting).
	r := run(t, `
#include <stdlib.h>
#define N 64
int main() {
    int *a = (int *)malloc(N * sizeof(int));
    for (int i = 0; i < N; i++) a[i] = 1;
#pragma acc data copy(a[0:N])
    {
#pragma acc data copyin(a[0:N])
        {
#pragma acc parallel loop present(a[0:N])
            for (int i = 0; i < N; i++) a[i] = a[i] + 1;
        }
#pragma acc parallel loop present(a[0:N])
        for (int i = 0; i < N; i++) a[i] = a[i] * 2;
    }
    return a[5] == 4 ? 0 : 1;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d err=%q", r.ReturnCode, r.Stderr)
	}
}

func TestReductionMinAndLogical(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
#define N 300
int main() {
    int *a = (int *)malloc(N * sizeof(int));
    for (int i = 0; i < N; i++) a[i] = (i * 13) % 101 + 5;
    int lo = 1000000;
    int allpos = 1;
    int anybig = 0;
#pragma acc parallel loop copyin(a[0:N]) reduction(min:lo) reduction(&&:allpos) reduction(||:anybig)
    for (int i = 0; i < N; i++) {
        if (a[i] < lo) lo = a[i];
        allpos = allpos && (a[i] > 0);
        anybig = anybig || (a[i] > 100);
    }
    int expectLo = 1000000;
    for (int i = 0; i < N; i++) if (a[i] < expectLo) expectLo = a[i];
    if (lo != expectLo) return 1;
    if (!allpos) return 2;
    if (!anybig) return 3;
    return 0;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d", r.ReturnCode)
	}
}

func TestReductionProduct(t *testing.T) {
	r := run(t, `
int main() {
    long prod = 1;
#pragma omp parallel for reduction(*:prod)
    for (int i = 1; i <= 15; i++) {
        prod *= i;
    }
    // 15! = 1307674368000
    return prod == 1307674368000 ? 0 : 1;
}
`, spec.OpenMP)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d", r.ReturnCode)
	}
}

func TestAtomicOnArrayElement(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
#define N 1200
int main() {
    int hist[4];
    int *v = (int *)malloc(N * sizeof(int));
    for (int i = 0; i < 4; i++) hist[i] = 0;
    for (int i = 0; i < N; i++) v[i] = i % 4;
#pragma omp parallel for
    for (int i = 0; i < N; i++) {
        int b = v[i];
#pragma omp atomic
        hist[b] += 1;
    }
    for (int i = 0; i < 4; i++) {
        if (hist[i] != N / 4) return 1;
    }
    return 0;
}
`, spec.OpenMP)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d", r.ReturnCode)
	}
}

func TestSerialConstructSingleWorker(t *testing.T) {
	// acc serial runs with exactly one worker: order-dependent code is
	// legal inside it.
	r := run(t, `
#define N 32
int main() {
    int seq[N];
    int pos = 0;
#pragma acc serial copy(seq, pos)
    {
        for (int i = 0; i < N; i++) {
            seq[pos] = i;
            pos = pos + 1;
        }
    }
    if (pos != N) return 1;
    for (int i = 0; i < N; i++) if (seq[i] != i) return 2;
    return 0;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d", r.ReturnCode)
	}
}

func TestDescendingAndStridedLoops(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
#define N 240
int main() {
    int *a = (int *)malloc(N * sizeof(int));
    int *b = (int *)malloc(N * sizeof(int));
    for (int i = 0; i < N; i++) { a[i] = 0; b[i] = 0; }
#pragma acc parallel loop copyout(a[0:N])
    for (int i = N - 1; i >= 0; i--) {
        a[i] = i;
    }
#pragma acc parallel loop copy(b[0:N])
    for (int i = 0; i < N; i += 3) {
        b[i] = 1;
    }
    for (int i = 0; i < N; i++) {
        if (a[i] != i) return 1;
        if (b[i] != (i % 3 == 0 ? 1 : 0)) return 2;
    }
    return 0;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d err=%q", r.ReturnCode, r.Stderr)
	}
}

func TestDeleteThenPresentFaults(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
#define N 16
int main() {
    int *a = (int *)malloc(N * sizeof(int));
#pragma acc enter data copyin(a[0:N])
#pragma acc exit data delete(a)
#pragma acc parallel loop present(a[0:N])
    for (int i = 0; i < N; i++) { a[i] = i; }
    return 0;
}
`, spec.OpenACC)
	if r.Trap != "device-fault" {
		t.Fatalf("trap = %q rc=%d", r.Trap, r.ReturnCode)
	}
}

func TestSectionOutOfBoundsTransferFaults(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
int main() {
    int n = 16;
    int *a = (int *)malloc(n * sizeof(int));
#pragma acc parallel loop copyin(a[0:64])
    for (int i = 0; i < n; i++) { int x = a[i]; x++; }
    return 0;
}
`, spec.OpenACC)
	if r.Trap != "device-fault" || !strings.Contains(r.Stderr, "out of bounds") {
		t.Fatalf("trap = %q stderr=%q", r.Trap, r.Stderr)
	}
}

func TestCharAndBoolTypes(t *testing.T) {
	// Note: scalar cells are untyped at run time — narrowing happens at
	// initialisation and on array stores, not on scalar re-assignment.
	// The corpus never relies on scalar overflow semantics.
	r := run(t, `
int main() {
    char c = 'A';
    c = c + 1;
    bool flag = c == 'B';
    char narrowedAtInit = 300;  // 300 -> int8 truncation at init
    if (!flag) return 1;
    if (narrowedAtInit != 44) return 2;
    return 0;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d", r.ReturnCode)
	}
}

func TestTernaryAndCompoundAssign(t *testing.T) {
	r := run(t, `
int main() {
    int x = 10;
    x += 5;
    x -= 3;
    x *= 2;
    x /= 4;   // 6
    x %= 4;   // 2
    int y = x > 1 ? 100 : 200;
    return y == 100 ? 0 : 1;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d", r.ReturnCode)
	}
}
