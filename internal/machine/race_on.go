//go:build race

package machine

// raceEnabled reports whether this binary was built with the Go race
// detector. The simulated machine executes racy test programs (shared
// writes the corpus's mutations introduce on purpose) on real
// goroutines, which the detector would rightly flag inside the
// simulator; under -race builds region workers run serially instead,
// preserving per-worker semantics while keeping the detector usable
// for the rest of the codebase.
const raceEnabled = true
