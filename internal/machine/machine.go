package machine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/compiler"
)

// Options configures one program execution.
type Options struct {
	// Workers is the parallel width of compute regions (gangs/threads).
	// 0 means DefaultWorkers.
	Workers int
	// StepLimit bounds total interpreted steps across all workers;
	// exceeding it kills the run with ReturnCode 124, modelling the
	// batch-system time limit the paper's pipeline runs under.
	// 0 means DefaultStepLimit.
	StepLimit int64
	// OutputLimit bounds captured stdout/stderr bytes (each).
	// 0 means DefaultOutputLimit.
	OutputLimit int
}

// Defaults for Options fields.
const (
	DefaultWorkers     = 4
	DefaultStepLimit   = 8_000_000
	DefaultOutputLimit = 1 << 16
)

// Result is the outcome of running a compiled program: exactly the
// information the paper's agent-based prompt receives.
type Result struct {
	ReturnCode int
	Stdout     string
	Stderr     string
	// Trap names the abnormal-termination cause ("segfault",
	// "device-fault", "step-limit", "abort", "fpe", ""), for tests and
	// reports; the judge only sees ReturnCode/Stderr like a real run.
	Trap string
	// Steps is the number of interpreted steps, for benchmarks.
	Steps int64
}

// trap is the panic payload for simulated hardware/OS faults.
type trapSignal struct {
	kind string
	rc   int
	msg  string
}

// exitSignal unwinds to Run on exit()/main return.
type exitSignal struct{ code int }

// returnSignal unwinds one function call.
type returnSignal struct{ v value }

// breakSignal / continueSignal unwind loop bodies.
type breakSignal struct{}
type continueSignal struct{}

// interp is the shared interpreter state for one run.
type interp struct {
	obj  *compiler.Object
	opts Options

	outMu    sync.Mutex
	stdout   strings.Builder
	stderr   strings.Builder
	outTrunc bool

	steps atomic.Int64

	// atomicMu serialises atomic updates and critical sections.
	atomicMu sync.Mutex

	// presence is the device data environment: host block -> device
	// mirror with a structured/dynamic reference count.
	presenceMu sync.Mutex
	presence   map[*block]*presenceEntry

	globals *env
}

type presenceEntry struct {
	dev      *block
	refcount int
}

// Run executes a compiled object and captures its observable
// behaviour. It never panics: all simulated faults are converted to
// return codes and stderr text, and internal interpreter failures on
// pathological (mutated) inputs surface as a simulated crash.
func Run(obj *compiler.Object, opts Options) (res *Result) {
	if opts.Workers <= 0 {
		opts.Workers = DefaultWorkers
	}
	if opts.StepLimit <= 0 {
		opts.StepLimit = DefaultStepLimit
	}
	if opts.OutputLimit <= 0 {
		opts.OutputLimit = DefaultOutputLimit
	}
	in := &interp{obj: obj, opts: opts, presence: map[*block]*presenceEntry{}}
	res = &Result{}
	defer func() {
		res.Steps = in.steps.Load()
		res.Stdout = in.stdout.String()
		res.Stderr = in.stderr.String()
		switch sig := recover().(type) {
		case nil:
		case exitSignal:
			res.ReturnCode = sig.code & 255
		case trapSignal:
			res.ReturnCode = sig.rc
			res.Trap = sig.kind
			res.Stderr = res.Stderr + sig.msg + "\n"
		default:
			// An interpreter-level panic on a pathological mutated
			// program is reported as the crash a native binary would
			// produce.
			res.ReturnCode = 139
			res.Trap = "segfault"
			res.Stderr = res.Stderr + "Segmentation fault (core dumped)\n"
		}
	}()

	if obj == nil || obj.File == nil {
		panic(trapSignal{kind: "no-object", rc: 127, msg: "exec format error"})
	}
	in.globals = newEnv(nil)
	ex := &exec{in: in, env: in.globals}
	for _, g := range obj.Globals {
		ex.declareVar(g, in.globals)
	}
	main := obj.Funcs["main"]
	if main == nil || main.Body == nil {
		panic(trapSignal{kind: "no-main", rc: 127, msg: "undefined reference to main"})
	}
	ret := ex.callFunction(main, nil)
	res.ReturnCode = int(ret.asInt()) & 255
	return res
}

// step counts one interpreted step and enforces the step limit.
func (in *interp) step() {
	n := in.steps.Add(1)
	if n > in.opts.StepLimit {
		panic(trapSignal{kind: "step-limit", rc: 124, msg: "Killed: execution time limit exceeded"})
	}
}

func (in *interp) printOut(s string) {
	in.outMu.Lock()
	defer in.outMu.Unlock()
	if in.stdout.Len()+len(s) > in.opts.OutputLimit {
		if !in.outTrunc {
			in.stdout.WriteString("\n[output truncated]\n")
			in.outTrunc = true
		}
		return
	}
	in.stdout.WriteString(s)
}

func (in *interp) printErr(s string) {
	in.outMu.Lock()
	defer in.outMu.Unlock()
	if in.stderr.Len()+len(s) > in.opts.OutputLimit {
		return
	}
	in.stderr.WriteString(s)
}

// Fault constructors.

func segfault() trapSignal {
	return trapSignal{kind: "segfault", rc: 139, msg: "Segmentation fault (core dumped)"}
}

func deviceFault(varName, reason string) trapSignal {
	return trapSignal{
		kind: "device-fault",
		rc:   1,
		msg:  fmt.Sprintf("FATAL ERROR: data for variable '%s' %s", varName, reason),
	}
}

func illegalDeviceAccess() trapSignal {
	return trapSignal{
		kind: "device-fault",
		rc:   1,
		msg:  "CUDA error: an illegal memory access was encountered",
	}
}

func abortFault(msg string) trapSignal {
	return trapSignal{kind: "abort", rc: 134, msg: msg + "\nAborted (core dumped)"}
}

func fpeFault() trapSignal {
	return trapSignal{kind: "fpe", rc: 136, msg: "Floating point exception (core dumped)"}
}
