package machine

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/testlang"
)

// evalCall dispatches a call to a user function or a builtin.
func (ex *exec) evalCall(n *testlang.CallExpr) value {
	if fd, ok := ex.in.obj.Funcs[n.Fun]; ok && fd.Body != nil {
		args := make([]value, len(n.Args))
		for i, a := range n.Args {
			args[i] = ex.eval(a)
		}
		return ex.callFunction(fd, args)
	}
	switch n.Fun {
	case "printf":
		return ex.doPrintf(n.Args, false)
	case "fprintf":
		if len(n.Args) == 0 {
			return intVal(0)
		}
		toErr := false
		if id, ok := n.Args[0].(*testlang.IdentExpr); ok && id.Name == "stderr" {
			toErr = true
		}
		return ex.doPrintfTo(n.Args[1:], toErr)
	case "malloc":
		if len(n.Args) != 1 {
			return nullVal()
		}
		bytes := ex.eval(n.Args[0]).asInt()
		if bytes < 0 || bytes > 1<<28 {
			return nullVal()
		}
		return refVal(ref{blk: newHeapBlock(bytes)})
	case "calloc":
		if len(n.Args) != 2 {
			return nullVal()
		}
		count := ex.eval(n.Args[0]).asInt()
		size := ex.eval(n.Args[1]).asInt()
		total := count * size
		if total < 0 || total > 1<<28 {
			return nullVal()
		}
		return refVal(ref{blk: newHeapBlock(total)})
	case "free":
		if len(n.Args) != 1 {
			return intVal(0)
		}
		v := ex.eval(n.Args[0])
		if v.k == kNull || (v.k == kInt && v.i == 0) {
			return intVal(0) // free(NULL) is a no-op
		}
		r, ok := refOf(v)
		if !ok || r.off != 0 {
			panic(abortFault("free(): invalid pointer"))
		}
		if r.blk.freed {
			panic(abortFault("free(): double free detected"))
		}
		r.blk.freed = true
		return intVal(0)
	case "exit":
		code := int64(0)
		if len(n.Args) > 0 {
			code = ex.eval(n.Args[0]).asInt()
		}
		panic(exitSignal{code: int(code)})
	case "abs", "labs":
		v := ex.eval(n.Args[0]).asInt()
		if v < 0 {
			v = -v
		}
		return intVal(v)
	case "fabs", "fabsf":
		return floatVal(math.Abs(ex.eval(n.Args[0]).asFloat()))
	case "sqrt", "sqrtf":
		return floatVal(math.Sqrt(ex.eval(n.Args[0]).asFloat()))
	case "pow":
		return floatVal(math.Pow(ex.eval(n.Args[0]).asFloat(), ex.eval(n.Args[1]).asFloat()))
	case "floor":
		return floatVal(math.Floor(ex.eval(n.Args[0]).asFloat()))
	case "ceil":
		return floatVal(math.Ceil(ex.eval(n.Args[0]).asFloat()))
	case "fmax":
		return floatVal(math.Max(ex.eval(n.Args[0]).asFloat(), ex.eval(n.Args[1]).asFloat()))
	case "fmin":
		return floatVal(math.Min(ex.eval(n.Args[0]).asFloat(), ex.eval(n.Args[1]).asFloat()))
	case "sin":
		return floatVal(math.Sin(ex.eval(n.Args[0]).asFloat()))
	case "cos":
		return floatVal(math.Cos(ex.eval(n.Args[0]).asFloat()))
	case "exp":
		return floatVal(math.Exp(ex.eval(n.Args[0]).asFloat()))
	case "log":
		return floatVal(math.Log(ex.eval(n.Args[0]).asFloat()))
	case "omp_get_num_threads":
		if ex.regionWidth > 0 {
			return intVal(int64(ex.regionWidth))
		}
		return intVal(1)
	case "omp_get_thread_num":
		return intVal(int64(ex.workerID))
	case "omp_get_max_threads":
		return intVal(int64(ex.in.opts.Workers))
	case "omp_get_num_devices", "acc_get_num_devices":
		return intVal(1)
	case "omp_is_initial_device":
		return boolToInt(!ex.inDevice)
	case "acc_get_device_num":
		return intVal(0)
	default:
		// Implicitly declared function (compiled under the lenient
		// personality): calling it at run time is an unresolved symbol.
		// A native toolchain would fail at link; the lenient model
		// mirrors historic behaviour where the call traps at run time.
		panic(trapSignal{
			kind: "link",
			rc:   127,
			msg:  fmt.Sprintf("symbol lookup error: undefined symbol: %s", n.Fun),
		})
	}
}

func (ex *exec) doPrintf(args []testlang.Expr, toErr bool) value {
	return ex.doPrintfTo(args, toErr)
}

func (ex *exec) doPrintfTo(args []testlang.Expr, toErr bool) value {
	if len(args) == 0 {
		return intVal(0)
	}
	format := ""
	if s, ok := args[0].(*testlang.StringLitExpr); ok {
		format = s.Value
	} else {
		format = ex.eval(args[0]).s
	}
	vals := make([]value, 0, len(args)-1)
	for _, a := range args[1:] {
		vals = append(vals, ex.eval(a))
	}
	out := formatC(format, vals)
	if toErr {
		ex.in.printErr(out)
	} else {
		ex.in.printOut(out)
	}
	return intVal(int64(len(out)))
}

// formatC implements the printf subset the corpus and probed files
// use: %d %i %u %ld %lld %lu %zu %f %lf %e %g %s %c %p %x %%, with
// optional width and precision.
func formatC(format string, args []value) string {
	var b strings.Builder
	argi := 0
	next := func() value {
		if argi < len(args) {
			v := args[argi]
			argi++
			return v
		}
		return intVal(0)
	}
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			b.WriteByte(c)
			i++
			continue
		}
		// Parse %[flags][width][.prec][length]verb
		j := i + 1
		spec := "%"
		for j < len(format) && strings.IndexByte("-+ 0#", format[j]) >= 0 {
			spec += string(format[j])
			j++
		}
		for j < len(format) && format[j] >= '0' && format[j] <= '9' {
			spec += string(format[j])
			j++
		}
		if j < len(format) && format[j] == '.' {
			spec += "."
			j++
			for j < len(format) && format[j] >= '0' && format[j] <= '9' {
				spec += string(format[j])
				j++
			}
		}
		// length modifiers: consumed, not emitted.
		for j < len(format) && (format[j] == 'l' || format[j] == 'h' || format[j] == 'z') {
			j++
		}
		if j >= len(format) {
			b.WriteString(spec)
			break
		}
		verb := format[j]
		j++
		switch verb {
		case '%':
			b.WriteByte('%')
		case 'd', 'i', 'u':
			fmt.Fprintf(&b, spec+"d", next().asInt())
		case 'x':
			fmt.Fprintf(&b, spec+"x", next().asInt())
		case 'f', 'F':
			if !strings.Contains(spec, ".") {
				spec += ".6"
			}
			fmt.Fprintf(&b, spec+"f", next().asFloat())
		case 'e', 'E':
			if !strings.Contains(spec, ".") {
				spec += ".6"
			}
			fmt.Fprintf(&b, spec+string(verb), next().asFloat())
		case 'g', 'G':
			fmt.Fprintf(&b, spec+"g", next().asFloat())
		case 's':
			fmt.Fprintf(&b, spec+"s", next().s)
		case 'c':
			b.WriteByte(byte(next().asInt()))
		case 'p':
			v := next()
			if r, ok := refOf(v); ok {
				fmt.Fprintf(&b, "0x%x", uintptrOf(r))
			} else {
				b.WriteString("(nil)")
			}
		default:
			b.WriteString(spec)
			b.WriteByte(verb)
		}
		i = j
	}
	return b.String()
}

// uintptrOf synthesises a stable fake address for %p from the block
// identity; the simulation has no real addresses.
func uintptrOf(r ref) uint64 {
	// Hash the block pointer via its name and length; collisions are
	// harmless (output text only).
	h := uint64(0x811c9dc5)
	for _, ch := range r.blk.name {
		h = (h ^ uint64(ch)) * 0x01000193
	}
	h = (h ^ uint64(len(r.blk.cells))) * 0x01000193
	return (h<<8 | 0x7f0000000000) + uint64(r.off)*8
}
