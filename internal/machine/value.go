// Package machine executes compiled test programs. It is the
// simulation of the paper's execution substrate (a GPU node running
// compiled OpenACC/OpenMP binaries): a tree-walking interpreter over
// the checked AST with
//
//   - a host/device memory model with presence tracking, explicit and
//     implicit data movement, and the dialect-specific strictness that
//     drives the pipeline results (OpenACC performs implicit copies for
//     unmapped aggregates; OpenMP 4.5 traps on unmapped device
//     accesses);
//   - goroutine-backed parallel execution of compute constructs with
//     privatization, reductions, atomics and critical sections;
//   - a trap model producing the return codes and stderr text a real
//     run would hand the agent-based judge (segfaults, device presence
//     faults, step-limit kills, abort).
package machine

import (
	"fmt"

	"repro/internal/testlang"
)

// kind tags a runtime value.
type kind uint8

const (
	kInt kind = iota
	kFloat
	kStr
	kRef
	kNull
)

// value is one runtime value. Refs point into blocks; strings appear
// only as printf arguments.
type value struct {
	k kind
	i int64
	f float64
	s string
	r ref
}

// ref is a view into a block: element offset plus remaining view
// dimensions (for multi-dimensional arrays, indexing strips one
// dimension per step).
type ref struct {
	blk  *block
	off  int
	dims []int
}

// block is one allocation: a declared array, a heap allocation, or a
// device mirror of either.
type block struct {
	cells []value
	elem  testlang.Type
	// byteSize is remembered for heap blocks allocated before their
	// element type is known (malloc result not yet cast/assigned).
	byteSize int64
	// materialized reports whether cells have been sized.
	materialized bool
	freed        bool
	// onDevice marks device mirrors (for diagnostics).
	onDevice bool
	// name of the originating variable, for fault messages.
	name string
}

func intVal(i int64) value     { return value{k: kInt, i: i} }
func floatVal(f float64) value { return value{k: kFloat, f: f} }
func strVal(s string) value    { return value{k: kStr, s: s} }
func nullVal() value           { return value{k: kNull} }
func refVal(r ref) value       { return value{k: kRef, r: r} }

// zeroValue returns the zero of a declared type. The simulation gives
// deterministic zeros to uninitialised scalars (documented divergence
// from C's undefined behaviour, in the direction real test suites
// rely on) and null to uninitialised pointers (the behaviour the
// negative-probing "removed allocation" mutation needs).
func zeroValue(t testlang.Type) value {
	if t.Ptr > 0 {
		return nullVal()
	}
	if t.IsFloat() {
		return floatVal(0)
	}
	return intVal(0)
}

// sizeOf returns the modelled byte size of a scalar type.
func sizeOf(t testlang.Type) int64 {
	if t.Ptr > 0 {
		return 8
	}
	switch t.Base {
	case "double", "long":
		return 8
	case "char", "bool":
		return 1
	default: // int, float, void
		return 4
	}
}

// asFloat coerces a numeric value to float64.
func (v value) asFloat() float64 {
	switch v.k {
	case kFloat:
		return v.f
	case kInt:
		return float64(v.i)
	default:
		return 0
	}
}

// asInt coerces a numeric value to int64 (floats truncate as in C).
func (v value) asInt() int64 {
	switch v.k {
	case kInt:
		return v.i
	case kFloat:
		return int64(v.f)
	case kNull:
		return 0
	default:
		return 0
	}
}

// truthy implements C truthiness.
func (v value) truthy() bool {
	switch v.k {
	case kInt:
		return v.i != 0
	case kFloat:
		return v.f != 0
	case kRef:
		return true
	case kStr:
		return true
	default:
		return false
	}
}

func (v value) String() string {
	switch v.k {
	case kInt:
		return fmt.Sprintf("%d", v.i)
	case kFloat:
		return fmt.Sprintf("%g", v.f)
	case kStr:
		return v.s
	case kRef:
		return fmt.Sprintf("<%s+%d>", v.r.blk.name, v.r.off)
	default:
		return "<null>"
	}
}

// convertTo coerces v to a declared scalar type on assignment,
// mirroring C's implicit conversions.
func convertTo(v value, t testlang.Type) value {
	if t.Ptr > 0 {
		return v // pointer assignment keeps refs/null
	}
	if t.IsFloat() {
		return floatVal(v.asFloat())
	}
	if t.Base == "int" || t.Base == "long" || t.Base == "char" || t.Base == "bool" {
		iv := v.asInt()
		switch t.Base {
		case "char":
			iv = int64(int8(iv))
		case "int":
			iv = int64(int32(iv))
		case "bool":
			if iv != 0 {
				iv = 1
			}
		}
		return intVal(iv)
	}
	return v
}

// newArrayBlock allocates a declared array.
func newArrayBlock(name string, elem testlang.Type, dims []int) *block {
	n := 1
	for _, d := range dims {
		n *= d
	}
	b := &block{elem: elem, materialized: true, name: name}
	b.cells = make([]value, n)
	zero := zeroValue(elem)
	for i := range b.cells {
		b.cells[i] = zero
	}
	return b
}

// newHeapBlock allocates a malloc-style block whose element type is
// fixed later (at cast or typed assignment).
func newHeapBlock(bytes int64) *block {
	return &block{byteSize: bytes, name: "heap"}
}

// materialize sizes a heap block's cells for element type t. Calling
// it again with the same element size is a no-op; C-level type puns
// between same-size types share cells.
func (b *block) materialize(t testlang.Type) {
	if b.materialized {
		return
	}
	es := sizeOf(testlang.Type{Base: t.Base})
	n := b.byteSize / es
	if n < 0 {
		n = 0
	}
	b.elem = testlang.Type{Base: t.Base}
	b.cells = make([]value, n)
	zero := zeroValue(b.elem)
	for i := range b.cells {
		b.cells[i] = zero
	}
	b.materialized = true
}

// cell is one variable binding; sharing a *cell shares the variable.
type cell struct {
	v value
}

// env is a lexical scope chain.
type env struct {
	parent *env
	vars   map[string]*cell
}

func newEnv(parent *env) *env {
	return &env{parent: parent, vars: map[string]*cell{}}
}

func (e *env) lookup(name string) (*cell, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if c, ok := cur.vars[name]; ok {
			return c, true
		}
	}
	return nil, false
}

func (e *env) declare(name string, v value) *cell {
	c := &cell{v: v}
	e.vars[name] = c
	return c
}

// bind inserts an existing cell under a name (used for privatization
// overlays and device rebinding).
func (e *env) bind(name string, c *cell) {
	e.vars[name] = c
}
