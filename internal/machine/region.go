package machine

import (
	"math"
	"sync"

	"repro/internal/compiler"
	"repro/internal/spec"
	"repro/internal/testlang"
)

// maxRegionWorkers caps requested parallelism (num_gangs(100000) must
// not spawn 100000 goroutines).
const maxRegionWorkers = 64

// execDirective interprets one directive statement according to its
// compiled plan.
func (ex *exec) execDirective(ds *testlang.DirectiveStmt) {
	plan := ex.in.obj.Plans[ds]
	if plan == nil {
		// Unknown directives never pass compilation; defensive inline.
		ex.execStmt(ds.Body)
		return
	}
	// if() clause: false means "run as if the construct were absent"
	// (host serial for compute, no-op for data/update).
	if plan.If != nil && !ex.eval(plan.If).truthy() {
		switch plan.Kind {
		case compiler.KindComputeBlock, compiler.KindComputeLoop,
			compiler.KindHostParallel, compiler.KindHostLoop, compiler.KindLoop:
			ex.execStmt(ds.Body)
		}
		return
	}

	switch plan.Kind {
	case compiler.KindNoop:
		if ds.Body != nil {
			ex.execStmt(ds.Body)
		}
	case compiler.KindInline:
		ex.execStmt(ds.Body)
	case compiler.KindOnce:
		if ex.workerID == 0 {
			ex.in.atomicMu.Lock()
			defer ex.in.atomicMu.Unlock()
			ex.execStmt(ds.Body)
		}
	case compiler.KindCritical:
		ex.in.atomicMu.Lock()
		defer ex.in.atomicMu.Unlock()
		ex.execStmt(ds.Body)
	case compiler.KindAtomic:
		ex.in.atomicMu.Lock()
		defer ex.in.atomicMu.Unlock()
		ex.execStmt(ds.Body)
	case compiler.KindData:
		releases := ex.applyDataOps(plan.Data, true)
		ex.execStmt(ds.Body)
		ex.releaseData(releases)
	case compiler.KindEnterData:
		ex.applyDataOps(plan.Data, false)
	case compiler.KindExitData:
		ex.applyExitData(plan.Data)
	case compiler.KindUpdate:
		ex.applyUpdates(plan.Data)
	case compiler.KindComputeBlock:
		ex.execComputeBlock(ds, plan)
	case compiler.KindComputeLoop:
		ex.execParallelLoop(ds, plan)
	case compiler.KindHostParallel:
		ex.execHostParallel(ds, plan)
	case compiler.KindHostLoop:
		ex.execParallelLoop(ds, plan)
	case compiler.KindLoop:
		// Orphaned / nested loop directive. Three situations:
		//  - inside a redundant host region (omp parallel): each worker
		//    executes its chunk of the iterations (work-sharing);
		//  - inside a single-driver device block (acc parallel/kernels,
		//    omp target): this directive is the fork-join point;
		//  - inside an already-distributed loop (gang loop + nested
		//    vector loop): the loop runs inline per outer iteration.
		switch {
		case ex.redundant && ex.regionWidth > 1:
			ex.execChunkedLoop(ds, plan)
		case ex.inDevice && ex.regionWidth <= 1:
			ex.execParallelLoop(ds, plan)
		default:
			ex.execStmt(ds.Body)
		}
	default:
		ex.execStmt(ds.Body)
	}
}

// --- device data environment ---------------------------------------

// structuredRelease records the exit action of a structured data
// region or compute construct.
type structuredRelease struct {
	host    *block
	varName string
	copyOut bool
	lo, n   int
}

// hostBlockOf resolves a clause variable to its host block; scalars
// return nil (scalar data clauses have no aggregate mapping in the
// simulation), null pointers trap.
func (ex *exec) hostBlockOf(name string, trapNull bool) *block {
	c, ok := ex.env.lookup(name)
	if !ok {
		return nil
	}
	switch c.v.k {
	case kRef:
		return c.v.r.blk
	case kNull:
		if trapNull {
			panic(deviceFault(name, "in data clause is a null pointer"))
		}
		return nil
	default:
		return nil
	}
}

// sectionBounds evaluates a section's range against a block.
func (ex *exec) sectionBounds(sec testlang.Section, blk *block) (lo, n int) {
	if !blk.materialized {
		blk.materialize(testlang.Type{Base: "int"})
	}
	if sec.Lo == nil {
		return 0, len(blk.cells)
	}
	lo = int(ex.eval(sec.Lo).asInt())
	n = int(ex.eval(sec.Len).asInt())
	if lo < 0 || n < 0 || lo+n > len(blk.cells) {
		panic(trapSignal{kind: "device-fault", rc: 1,
			msg: "FATAL ERROR: data transfer for '" + sec.Name + "' is out of bounds"})
	}
	return lo, n
}

// ensurePresent returns the device mirror for a host block, creating
// it (and optionally copying host data in) when absent. Refcounting
// follows the OpenACC present_or_* semantics: an already-present block
// is reused without a fresh copy.
func (in *interp) ensurePresent(host *block, name string, copyIn bool, lo, n int) *block {
	in.presenceMu.Lock()
	defer in.presenceMu.Unlock()
	if e, ok := in.presence[host]; ok {
		e.refcount++
		return e.dev
	}
	dev := &block{
		cells:        make([]value, len(host.cells)),
		elem:         host.elem,
		materialized: true,
		onDevice:     true,
		name:         name,
	}
	zero := zeroValue(host.elem)
	for i := range dev.cells {
		dev.cells[i] = zero
	}
	if copyIn {
		copy(dev.cells[lo:lo+n], host.cells[lo:lo+n])
	}
	in.presence[host] = &presenceEntry{dev: dev, refcount: 1}
	return dev
}

func (in *interp) lookupPresent(host *block) (*block, bool) {
	in.presenceMu.Lock()
	defer in.presenceMu.Unlock()
	e, ok := in.presence[host]
	if !ok {
		return nil, false
	}
	return e.dev, true
}

// releaseOne decrements a presence refcount, copying the section back
// when requested, and frees the mirror at zero.
func (in *interp) releaseOne(host *block, copyOut bool, lo, n int) {
	in.presenceMu.Lock()
	defer in.presenceMu.Unlock()
	e, ok := in.presence[host]
	if !ok {
		return
	}
	if copyOut {
		if lo+n > len(host.cells) {
			n = len(host.cells) - lo
		}
		if n > 0 {
			copy(host.cells[lo:lo+n], e.dev.cells[lo:lo+n])
		}
	}
	e.refcount--
	if e.refcount <= 0 {
		delete(in.presence, host)
	}
}

// applyDataOps processes enter-side data clauses. When structured is
// true it returns the matching exit actions.
func (ex *exec) applyDataOps(ops []compiler.DataOp, structured bool) []structuredRelease {
	var releases []structuredRelease
	for _, op := range ops {
		for _, sec := range op.Sections {
			hb := ex.hostBlockOf(sec.Name, op.Mode != compiler.MPresent)
			if hb == nil {
				// Scalar clause variable: presence checks pass (scalars
				// are firstprivate-by-default), movement is a no-op.
				continue
			}
			lo, n := ex.sectionBounds(sec, hb)
			switch op.Mode {
			case compiler.MCopyIn:
				ex.in.ensurePresent(hb, sec.Name, true, lo, n)
				if structured {
					releases = append(releases, structuredRelease{host: hb, varName: sec.Name})
				}
			case compiler.MCopy:
				ex.in.ensurePresent(hb, sec.Name, true, lo, n)
				if structured {
					releases = append(releases, structuredRelease{host: hb, varName: sec.Name, copyOut: true, lo: lo, n: n})
				}
			case compiler.MCopyOut:
				ex.in.ensurePresent(hb, sec.Name, false, lo, n)
				if structured {
					releases = append(releases, structuredRelease{host: hb, varName: sec.Name, copyOut: true, lo: lo, n: n})
				}
			case compiler.MCreate:
				ex.in.ensurePresent(hb, sec.Name, false, lo, n)
				if structured {
					releases = append(releases, structuredRelease{host: hb, varName: sec.Name})
				}
			case compiler.MPresent:
				if _, ok := ex.in.lookupPresent(hb); !ok {
					panic(deviceFault(sec.Name, "was not found on device - please check the data clauses"))
				}
			case compiler.MDelete:
				ex.in.releaseOne(hb, false, 0, 0)
			case compiler.MUpdateHost, compiler.MUpdateDevice, compiler.MIgnore:
				// Update modes are handled by the update directive;
				// MIgnore clauses have no runtime effect.
			}
		}
	}
	return releases
}

// applyExitData processes "exit data" clauses: copyout then delete.
func (ex *exec) applyExitData(ops []compiler.DataOp) {
	for _, op := range ops {
		for _, sec := range op.Sections {
			hb := ex.hostBlockOf(sec.Name, false)
			if hb == nil {
				continue
			}
			lo, n := ex.sectionBounds(sec, hb)
			switch op.Mode {
			case compiler.MCopyOut, compiler.MCopy:
				ex.in.releaseOne(hb, true, lo, n)
			default:
				ex.in.releaseOne(hb, false, 0, 0)
			}
		}
	}
}

// applyUpdates processes an update directive.
func (ex *exec) applyUpdates(ops []compiler.DataOp) {
	for _, op := range ops {
		for _, sec := range op.Sections {
			hb := ex.hostBlockOf(sec.Name, true)
			if hb == nil {
				continue
			}
			dev, ok := ex.in.lookupPresent(hb)
			if !ok {
				panic(deviceFault(sec.Name, "in update directive was not found on device"))
			}
			lo, n := ex.sectionBounds(sec, hb)
			ex.in.presenceMu.Lock()
			switch op.Mode {
			case compiler.MUpdateHost:
				copy(hb.cells[lo:lo+n], dev.cells[lo:lo+n])
			case compiler.MUpdateDevice:
				copy(dev.cells[lo:lo+n], hb.cells[lo:lo+n])
			}
			ex.in.presenceMu.Unlock()
		}
	}
}

func (ex *exec) releaseData(releases []structuredRelease) {
	for i := len(releases) - 1; i >= 0; i-- {
		r := releases[i]
		ex.in.releaseOne(r.host, r.copyOut, r.lo, r.n)
	}
}

// --- compute regions -------------------------------------------------

// deviceBindings builds the env overlay mapping aggregate variables
// referenced in the region body to their device mirrors, applying the
// dialect's implicit-mapping rules to unmapped aggregates.
func (ex *exec) deviceBindings(body testlang.Stmt, plan *compiler.DirPlan) (*env, []structuredRelease) {
	overlay := newEnv(ex.env)
	var releases []structuredRelease
	seen := map[string]bool{}
	for _, name := range aggregateVars(body, ex.env) {
		if seen[name] {
			continue
		}
		seen[name] = true
		c, _ := ex.env.lookup(name)
		if c.v.k == kNull {
			// Null pointer entering a device region: OpenACC implicit
			// transfer faults; OpenMP carries the null pointer to the
			// device where dereferences trap.
			if ex.in.obj.Dialect == spec.OpenACC {
				panic(deviceFault(name, "in implicit data clause is a null pointer"))
			}
			continue
		}
		r, ok := refOf(c.v)
		if !ok {
			continue
		}
		host := r.blk
		if host.freed {
			panic(segfault())
		}
		if dev, present := ex.in.lookupPresent(host); present {
			overlay.declare(name, refVal(ref{blk: dev, off: r.off, dims: r.dims}))
			continue
		}
		if ex.in.obj.Dialect == spec.OpenACC {
			// Implicit copy for unmapped aggregates (OpenACC 2.7+
			// default for arrays in compute constructs). This is what
			// masks some "removed allocation clause" mutations.
			if !host.materialized {
				host.materialize(testlang.Type{Base: "int"})
			}
			dev := ex.in.ensurePresent(host, name, true, 0, len(host.cells))
			overlay.declare(name, refVal(ref{blk: dev, off: r.off, dims: r.dims}))
			releases = append(releases, structuredRelease{host: host, varName: name, copyOut: true, lo: 0, n: len(host.cells)})
			continue
		}
		// OpenMP 4.5: declared arrays (known size) are implicitly
		// mapped tofrom; heap pointers are firstprivate and unusable on
		// the device.
		if len(r.dims) > 0 {
			dev := ex.in.ensurePresent(host, name, true, 0, len(host.cells))
			overlay.declare(name, refVal(ref{blk: dev, off: r.off, dims: r.dims}))
			releases = append(releases, structuredRelease{host: host, varName: name, copyOut: true, lo: 0, n: len(host.cells)})
			continue
		}
		faultBlk := &block{materialized: true, onDevice: true, name: name}
		overlay.declare(name, refVal(ref{blk: faultBlk, off: 0}))
	}
	return overlay, releases
}

// aggregateVars lists names in body that resolve to aggregates
// (arrays/pointers) in the enclosing environment.
func aggregateVars(body testlang.Stmt, e *env) []string {
	var names []string
	seen := map[string]bool{}
	local := declaredIn(body)
	testlang.WalkExprs(body, func(x testlang.Expr) {
		id, ok := x.(*testlang.IdentExpr)
		if !ok || seen[id.Name] || local[id.Name] {
			return
		}
		if c, found := e.lookup(id.Name); found {
			if c.v.k == kRef || c.v.k == kNull {
				seen[id.Name] = true
				names = append(names, id.Name)
			}
		}
	})
	return names
}

// declaredIn returns the set of names declared anywhere inside body.
func declaredIn(body testlang.Stmt) map[string]bool {
	out := map[string]bool{}
	testlang.Walk(body, func(s testlang.Stmt) bool {
		if ds, ok := s.(*testlang.DeclStmt); ok {
			for _, d := range ds.Decls {
				out[d.Name] = true
			}
		}
		if fs, ok := s.(*testlang.ForStmt); ok {
			if ds, ok := fs.Init.(*testlang.DeclStmt); ok {
				for _, d := range ds.Decls {
					out[d.Name] = true
				}
			}
		}
		return true
	})
	return out
}

// execComputeBlock runs an offloaded structured block. The block body
// runs on a single driver thread (gang-redundant execution is not
// modelled); nested loop directives fork-join their own workers.
func (ex *exec) execComputeBlock(ds *testlang.DirectiveStmt, plan *compiler.DirPlan) {
	releases := ex.applyDataOps(plan.Data, true)
	overlay, implicit := ex.deviceBindings(ds.Body, plan)
	regionEx := ex.child(overlay)
	regionEx.inDevice = true
	regionEx.redundant = false
	regionEx.workerID = 0
	regionEx.regionWidth = 1
	regionEx.bindPrivates(plan, overlay)
	regionEx.execStmt(ds.Body)
	ex.releaseData(implicit)
	ex.releaseData(releases)
}

// bindPrivates installs private/firstprivate clause bindings.
func (ex *exec) bindPrivates(plan *compiler.DirPlan, into *env) {
	for _, name := range plan.Private {
		if c, ok := ex.env.lookup(name); ok {
			into.declare(name, zeroLike(c.v))
		}
	}
	for _, name := range plan.FirstPrivate {
		if c, ok := ex.env.lookup(name); ok {
			into.declare(name, c.v)
		}
	}
}

func zeroLike(v value) value {
	switch v.k {
	case kFloat:
		return floatVal(0)
	case kRef, kNull:
		return nullVal()
	default:
		return intVal(0)
	}
}

// execHostParallel runs "omp parallel": the body once per worker.
func (ex *exec) execHostParallel(ds *testlang.DirectiveStmt, plan *compiler.DirPlan) {
	w := ex.workerCount(plan)
	use := collectUses(ds.Body)
	reds := newReductionSet(ex, plan, use)
	runWorkers(w, func(id int) {
		wEnv := newEnv(ex.env)
		wEx := ex.child(wEnv)
		wEx.workerID = id
		wEx.regionWidth = w
		wEx.redundant = true
		wEx.bindPrivates(plan, wEnv)
		ex.privatizeScalars(use, wEnv)
		reds.bindWorker(wEnv, id)
		wEx.execStmt(ds.Body)
	})
	reds.fold(ex)
}

// runWorkers executes body(id) for id in [0,w), one goroutine per
// worker, re-raising the first worker panic after all finish. Under
// race-detector builds the workers run serially: the corpus contains
// deliberately racy test programs whose shared writes the detector
// would flag inside the simulator (see race_on.go).
func runWorkers(w int, body func(id int)) {
	panics := make(chan any, w)
	guarded := func(id int) {
		defer func() {
			if r := recover(); r != nil {
				panics <- r
			}
		}()
		body(id)
	}
	if raceEnabled || w == 1 {
		for id := 0; id < w; id++ {
			guarded(id)
		}
	} else {
		var wg sync.WaitGroup
		for id := 0; id < w; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				guarded(id)
			}(id)
		}
		wg.Wait()
	}
	select {
	case p := <-panics:
		panic(p)
	default:
	}
}

// workerCount resolves the region width.
func (ex *exec) workerCount(plan *compiler.DirPlan) int {
	w := ex.in.opts.Workers
	if plan.NumWorkers != nil {
		if n := int(ex.eval(plan.NumWorkers).asInt()); n > 0 {
			w = n
		}
	}
	if w > maxRegionWorkers {
		w = maxRegionWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// privatizeScalars gives each worker private copies of scalars the
// body writes outside protected constructs (firstprivate-initialised),
// the simulation's race-free model of default data-sharing for the
// well-formed tests the corpus emits.
func (ex *exec) privatizeScalars(use *useSet, into *env) {
	for name := range use.plainWrites {
		if _, already := into.vars[name]; already {
			continue
		}
		if c, ok := ex.env.lookup(name); ok && c.v.k != kRef {
			into.declare(name, c.v)
		}
	}
}

// execParallelLoop runs a combined compute+loop construct: iterations
// distributed over workers, with device data setup when the construct
// is a device one.
func (ex *exec) execParallelLoop(ds *testlang.DirectiveStmt, plan *compiler.DirPlan) {
	loop, ok := ds.Body.(*testlang.ForStmt)
	if !ok {
		ex.execStmt(ds.Body)
		return
	}
	var releases, implicit []structuredRelease
	base := ex
	if plan.Device && !ex.inDevice {
		releases = ex.applyDataOps(plan.Data, true)
		overlay, imp := ex.deviceBindings(ds.Body, plan)
		implicit = imp
		base = ex.child(overlay)
		base.inDevice = true
	}
	spec, canonical := base.analyzeLoop(loop)
	if !canonical {
		base.execFor(loop)
	} else {
		base.runDistributed(loop, spec, plan)
	}
	ex.releaseData(implicit)
	ex.releaseData(releases)
}

// execChunkedLoop work-shares a nested loop directive among the
// workers of an enclosing host parallel region: worker k executes the
// k-th chunk.
func (ex *exec) execChunkedLoop(ds *testlang.DirectiveStmt, plan *compiler.DirPlan) {
	loop, ok := ds.Body.(*testlang.ForStmt)
	if !ok {
		ex.execStmt(ds.Body)
		return
	}
	spec, canonical := ex.analyzeLoop(loop)
	if !canonical {
		// Non-canonical loops under work-sharing were rejected at
		// compile time; execute on worker 0 for robustness.
		if ex.workerID == 0 {
			ex.execFor(loop)
		}
		return
	}
	lo, hi := chunk(spec.count, ex.regionWidth, ex.workerID)
	ex.runChunk(loop, spec, plan, lo, hi, true)
}

// loopSpec is the analysed canonical form of a work-shared loop.
type loopSpec struct {
	varName string
	start   int64
	step    int64
	count   int64
	declTyp testlang.Type
}

// analyzeLoop extracts the canonical form; ok=false falls back to
// sequential execution.
func (ex *exec) analyzeLoop(loop *testlang.ForStmt) (loopSpec, bool) {
	var s loopSpec
	switch init := loop.Init.(type) {
	case *testlang.DeclStmt:
		if len(init.Decls) != 1 || init.Decls[0].Init == nil {
			return s, false
		}
		s.varName = init.Decls[0].Name
		s.declTyp = init.Decls[0].Type
		if s.declTyp.IsFloat() {
			return s, false
		}
		s.start = ex.eval(init.Decls[0].Init).asInt()
	case *testlang.ExprStmt:
		asg, ok := init.X.(*testlang.AssignExpr)
		if !ok || asg.Op != "=" {
			return s, false
		}
		id, ok := asg.L.(*testlang.IdentExpr)
		if !ok {
			return s, false
		}
		s.varName = id.Name
		s.declTyp = testlang.Type{Base: "int"}
		s.start = ex.eval(asg.R).asInt()
	default:
		return s, false
	}

	cond, ok := loop.Cond.(*testlang.BinaryExpr)
	if !ok {
		return s, false
	}
	condVar, ok := cond.L.(*testlang.IdentExpr)
	if !ok || condVar.Name != s.varName {
		return s, false
	}
	bound := ex.eval(cond.R).asInt()

	s.step = 1
	switch post := loop.Post.(type) {
	case *testlang.UnaryExpr:
		if post.Op == "--" {
			s.step = -1
		} else if post.Op != "++" {
			return s, false
		}
	case *testlang.PostfixExpr:
		if post.Op == "--" {
			s.step = -1
		} else if post.Op != "++" {
			return s, false
		}
	case *testlang.AssignExpr:
		id, ok := post.L.(*testlang.IdentExpr)
		if !ok || id.Name != s.varName {
			return s, false
		}
		d := ex.eval(post.R).asInt()
		switch post.Op {
		case "+=":
			s.step = d
		case "-=":
			s.step = -d
		default:
			return s, false
		}
	default:
		return s, false
	}
	if s.step == 0 {
		return s, false
	}

	switch cond.Op {
	case "<":
		s.count = ceilDiv(bound-s.start, s.step)
	case "<=":
		s.count = ceilDiv(bound-s.start+1, s.step)
	case ">":
		s.count = ceilDiv(s.start-bound, -s.step)
	case ">=":
		s.count = ceilDiv(s.start-bound+1, -s.step)
	case "!=":
		s.count = (bound - s.start) / s.step
	default:
		return s, false
	}
	if s.count < 0 {
		s.count = 0
	}
	return s, true
}

func ceilDiv(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	if b < 0 {
		a, b = -a, -b
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// chunk returns worker k's contiguous [lo,hi) slice of n iterations.
func chunk(n int64, workers, k int) (lo, hi int64) {
	per := n / int64(workers)
	rem := n % int64(workers)
	lo = int64(k)*per + min64(int64(k), rem)
	size := per
	if int64(k) < rem {
		size++
	}
	return lo, lo + size
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// runDistributed forks workers over the iteration space.
func (ex *exec) runDistributed(loop *testlang.ForStmt, spec loopSpec, plan *compiler.DirPlan) {
	w := ex.workerCount(plan)
	if spec.count < int64(w) && spec.count > 0 {
		w = int(spec.count)
	}
	if spec.count == 0 {
		return
	}
	use := collectUses(loop.Body)
	reds := newReductionSet(ex, plan, use)
	runWorkers(w, func(id int) {
		lo, hi := chunk(spec.count, w, id)
		wEnv := newEnv(ex.env)
		wEx := ex.child(wEnv)
		wEx.workerID = id
		wEx.regionWidth = w
		wEx.redundant = false
		wEx.bindPrivates(plan, wEnv)
		ex.privatizeScalars(use, wEnv)
		reds.bindWorker(wEnv, id)
		wEx.runChunk(loop, spec, plan, lo, hi, false)
	})
	reds.fold(ex)
}

// runChunk executes iterations [lo,hi) of an analysed loop. When
// shared is true (nested work-sharing), reductions and privatization
// were handled by the enclosing region.
func (ex *exec) runChunk(loop *testlang.ForStmt, spec loopSpec, plan *compiler.DirPlan, lo, hi int64, shared bool) {
	iterEnv := newEnv(ex.env)
	iterEx := ex.child(iterEnv)
	loopVar := iterEnv.declare(spec.varName, intVal(0))
	for i := lo; i < hi; i++ {
		loopVar.v = intVal(spec.start + i*spec.step)
		if iterEx.runBody(loop.Body) {
			return // break inside a work-shared loop: stop this chunk
		}
	}
}

// --- scalar usage classification -------------------------------------

// useSet classifies free scalar variables of a region body.
type useSet struct {
	// plainWrites: written outside atomic/critical/once constructs.
	plainWrites map[string]bool
	// protectedWrites: written only under mutex-guarded constructs.
	protectedWrites map[string]bool
}

// collectUses walks a region body and classifies writes to names
// declared outside it.
func collectUses(body testlang.Stmt) *useSet {
	u := &useSet{plainWrites: map[string]bool{}, protectedWrites: map[string]bool{}}
	local := declaredIn(body)
	var visit func(s testlang.Stmt, protected bool)
	record := func(e testlang.Expr, protected bool) {
		id, ok := e.(*testlang.IdentExpr)
		if !ok || local[id.Name] {
			return
		}
		if protected {
			u.protectedWrites[id.Name] = true
		} else {
			u.plainWrites[id.Name] = true
		}
	}
	var visitExpr func(e testlang.Expr, protected bool)
	visitExpr = func(e testlang.Expr, protected bool) {
		switch x := e.(type) {
		case *testlang.AssignExpr:
			record(x.L, protected)
			visitExpr(x.R, protected)
		case *testlang.UnaryExpr:
			if x.Op == "++" || x.Op == "--" {
				record(x.X, protected)
			}
			visitExpr(x.X, protected)
		case *testlang.PostfixExpr:
			record(x.X, protected)
			visitExpr(x.X, protected)
		case *testlang.BinaryExpr:
			visitExpr(x.L, protected)
			visitExpr(x.R, protected)
		case *testlang.CondExpr:
			visitExpr(x.Cond, protected)
			visitExpr(x.Then, protected)
			visitExpr(x.Else, protected)
		case *testlang.CallExpr:
			for _, a := range x.Args {
				visitExpr(a, protected)
			}
		case *testlang.IndexExpr:
			visitExpr(x.X, protected)
			visitExpr(x.Index, protected)
		case *testlang.CastExpr:
			visitExpr(x.X, protected)
		}
	}
	visit = func(s testlang.Stmt, protected bool) {
		switch n := s.(type) {
		case nil:
		case *testlang.Block:
			for _, st := range n.Stmts {
				visit(st, protected)
			}
		case *testlang.DeclStmt:
			for _, d := range n.Decls {
				if d.Init != nil {
					visitExpr(d.Init, protected)
				}
			}
		case *testlang.ExprStmt:
			visitExpr(n.X, protected)
		case *testlang.IfStmt:
			visitExpr(n.Cond, protected)
			visit(n.Then, protected)
			visit(n.Else, protected)
		case *testlang.ForStmt:
			visit(n.Init, protected)
			if n.Cond != nil {
				visitExpr(n.Cond, protected)
			}
			if n.Post != nil {
				visitExpr(n.Post, protected)
			}
			visit(n.Body, protected)
		case *testlang.WhileStmt:
			visitExpr(n.Cond, protected)
			visit(n.Body, protected)
		case *testlang.ReturnStmt:
			if n.X != nil {
				visitExpr(n.X, protected)
			}
		case *testlang.DirectiveStmt:
			prot := protected
			if n.Dir != nil {
				switch n.Dir.Name {
				case "atomic", "critical", "single", "master":
					prot = true
				}
				// Reduction vars of nested work-shared loops are
				// protected (folded under mutex by the nested construct
				// or accumulated locally).
				for _, cl := range n.Dir.Clauses {
					if cl.Name == "reduction" {
						if _, vars, ok := testlang.ReductionParts(cl.Arg); ok {
							for _, v := range vars {
								if !local[v] {
									u.protectedWrites[v] = true
								}
							}
						}
					}
				}
			}
			visit(n.Body, prot)
		}
	}
	visit(body, false)
	// A name with any protected write must not be privatized.
	for name := range u.protectedWrites {
		delete(u.plainWrites, name)
	}
	return u
}

// --- reductions -------------------------------------------------------

// reductionSet manages per-worker accumulators for a construct's
// reduction clauses.
type reductionSet struct {
	items []reductionItem
}

type reductionItem struct {
	op      string
	name    string
	host    *cell
	workers []*cell
	isFloat bool
}

func newReductionSet(ex *exec, plan *compiler.DirPlan, use *useSet) *reductionSet {
	rs := &reductionSet{}
	if plan == nil {
		return rs
	}
	for _, red := range plan.Reductions {
		for _, name := range red.Vars {
			host, ok := ex.env.lookup(name)
			if !ok {
				continue
			}
			item := reductionItem{
				op:      red.Op,
				name:    name,
				host:    host,
				isFloat: host.v.k == kFloat,
				workers: make([]*cell, maxRegionWorkers),
			}
			rs.items = append(rs.items, item)
			// Reduction vars must not also be privatized.
			delete(use.plainWrites, name)
			delete(use.protectedWrites, name)
		}
	}
	return rs
}

// identity returns the reduction identity for op.
func identity(op string, isFloat bool) value {
	switch op {
	case "+":
		if isFloat {
			return floatVal(0)
		}
		return intVal(0)
	case "*":
		if isFloat {
			return floatVal(1)
		}
		return intVal(1)
	case "max":
		if isFloat {
			return floatVal(math.Inf(-1))
		}
		return intVal(math.MinInt64)
	case "min":
		if isFloat {
			return floatVal(math.Inf(1))
		}
		return intVal(math.MaxInt64)
	case "&&":
		return intVal(1)
	case "||":
		return intVal(0)
	default:
		return intVal(0)
	}
}

// bindWorker installs fresh accumulators for worker id.
func (rs *reductionSet) bindWorker(into *env, id int) {
	for i := range rs.items {
		it := &rs.items[i]
		c := &cell{v: identity(it.op, it.isFloat)}
		it.workers[id] = c
		into.bind(it.name, c)
	}
}

// fold combines worker accumulators into the host cells, in worker
// order for deterministic floating-point results.
func (rs *reductionSet) fold(ex *exec) {
	for i := range rs.items {
		it := &rs.items[i]
		acc := it.host.v
		for _, wc := range it.workers {
			if wc == nil {
				continue
			}
			acc = combine(it.op, acc, wc.v)
		}
		it.host.v = acc
	}
}

func combine(op string, a, b value) value {
	switch op {
	case "+", "*":
		return arith(op, a, b)
	case "max":
		if compare(">", b, a).truthy() {
			return b
		}
		return a
	case "min":
		if compare("<", b, a).truthy() {
			return b
		}
		return a
	case "&&":
		return boolToInt(a.truthy() && b.truthy())
	case "||":
		return boolToInt(a.truthy() || b.truthy())
	default:
		return a
	}
}
