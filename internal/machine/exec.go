package machine

import (
	"repro/internal/testlang"
)

// exec is one thread of interpretation: shared interpreter state plus
// the local environment and region context.
type exec struct {
	in  *interp
	env *env
	// inDevice is true inside a device compute region (affects fault
	// flavour and nested construct behaviour).
	inDevice bool
	// workerID / regionWidth implement omp_get_thread_num and friends.
	workerID    int
	regionWidth int
	// redundant is true inside a region whose body every worker
	// executes (omp parallel); false inside a distributed loop, where
	// each worker runs a different slice of iterations. Nested loop
	// directives work-share only in redundant regions.
	redundant bool
	// callDepth guards against runaway recursion.
	callDepth int
}

// child returns an exec sharing everything but using a nested scope.
func (ex *exec) child(e *env) *exec {
	c := *ex
	c.env = e
	return &c
}

// place is an assignable storage location.
type place interface {
	load() value
	store(v value)
}

type cellPlace struct{ c *cell }

func (p cellPlace) load() value   { return p.c.v }
func (p cellPlace) store(v value) { p.c.v = v }

type elemPlace struct {
	blk *block
	off int
}

func (p elemPlace) load() value { return p.blk.cells[p.off] }
func (p elemPlace) store(v value) {
	p.blk.cells[p.off] = convertTo(v, p.blk.elem)
}

// declareVar evaluates a declaration into the given scope.
func (ex *exec) declareVar(v *testlang.VarDecl, into *env) {
	if len(v.ArrayDims) > 0 {
		dims := make([]int, len(v.ArrayDims))
		for i, dimExpr := range v.ArrayDims {
			if dimExpr == nil {
				dims[i] = 0
				continue
			}
			d := ex.eval(dimExpr).asInt()
			if d < 0 || d > 1<<24 {
				panic(trapSignal{kind: "bad-alloc", rc: 1, msg: "array dimension out of range"})
			}
			dims[i] = int(d)
		}
		blk := newArrayBlock(v.Name, testlang.Type{Base: v.Type.Base}, dims)
		into.declare(v.Name, refVal(ref{blk: blk, dims: dims}))
		if il, ok := v.Init.(*testlang.InitList); ok {
			ex.fillInitList(blk, il)
		}
		return
	}
	var init value
	if v.Init != nil {
		init = convertTo(ex.eval(v.Init), v.Type)
		if r, isRef := refOf(init); isRef && v.Type.Ptr > 0 && !r.blk.materialized {
			r.blk.materialize(v.Type)
		}
	} else {
		init = zeroValue(v.Type)
	}
	into.declare(v.Name, init)
}

func refOf(v value) (ref, bool) {
	if v.k == kRef {
		return v.r, true
	}
	return ref{}, false
}

// fillInitList writes a (possibly nested) brace initialiser into a
// freshly allocated array block.
func (ex *exec) fillInitList(blk *block, il *testlang.InitList) {
	pos := 0
	var fill func(il *testlang.InitList)
	fill = func(il *testlang.InitList) {
		for _, el := range il.Elems {
			if nested, ok := el.(*testlang.InitList); ok {
				fill(nested)
				continue
			}
			if pos < len(blk.cells) {
				blk.cells[pos] = convertTo(ex.eval(el), blk.elem)
				pos++
			}
		}
	}
	fill(il)
}

// execStmt interprets one statement.
func (ex *exec) execStmt(s testlang.Stmt) {
	if s == nil {
		return
	}
	ex.in.step()
	switch n := s.(type) {
	case *testlang.Block:
		inner := ex.child(newEnv(ex.env))
		for _, st := range n.Stmts {
			inner.execStmt(st)
		}
	case *testlang.DeclStmt:
		for _, d := range n.Decls {
			ex.declareVar(d, ex.env)
		}
	case *testlang.ExprStmt:
		ex.eval(n.X)
	case *testlang.EmptyStmt:
	case *testlang.IfStmt:
		if ex.eval(n.Cond).truthy() {
			ex.execStmt(n.Then)
		} else {
			ex.execStmt(n.Else)
		}
	case *testlang.ForStmt:
		ex.execFor(n)
	case *testlang.WhileStmt:
		ex.execWhile(n)
	case *testlang.ReturnStmt:
		var v value
		if n.X != nil {
			v = ex.eval(n.X)
		} else {
			v = intVal(0)
		}
		panic(returnSignal{v: v})
	case *testlang.BreakStmt:
		panic(breakSignal{})
	case *testlang.ContinueStmt:
		panic(continueSignal{})
	case *testlang.DirectiveStmt:
		ex.execDirective(n)
	case *testlang.UnknownPragmaStmt:
		// Ignored at run time, as a real compiler's codegen would.
	}
}

// runBody executes one loop iteration, absorbing continue and
// reporting break.
func (ex *exec) runBody(body testlang.Stmt) (brk bool) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case continueSignal:
		case breakSignal:
			brk = true
		default:
			panic(r)
		}
	}()
	ex.execStmt(body)
	return false
}

func (ex *exec) execFor(n *testlang.ForStmt) {
	loopEx := ex.child(newEnv(ex.env))
	loopEx.execStmt(n.Init)
	for {
		if n.Cond != nil && !loopEx.eval(n.Cond).truthy() {
			return
		}
		if loopEx.runBody(n.Body) {
			return
		}
		if n.Post != nil {
			loopEx.eval(n.Post)
		}
	}
}

func (ex *exec) execWhile(n *testlang.WhileStmt) {
	for ex.eval(n.Cond).truthy() {
		if ex.runBody(n.Body) {
			return
		}
	}
}

// eval evaluates an expression to a value.
func (ex *exec) eval(e testlang.Expr) value {
	ex.in.step()
	switch n := e.(type) {
	case nil:
		return intVal(0)
	case *testlang.IntLitExpr:
		return intVal(n.Value)
	case *testlang.FloatLitExpr:
		return floatVal(n.Value)
	case *testlang.StringLitExpr:
		return strVal(n.Value)
	case *testlang.CharLitExpr:
		return intVal(int64(n.Value))
	case *testlang.IdentExpr:
		return ex.evalIdent(n)
	case *testlang.BinaryExpr:
		return ex.evalBinary(n)
	case *testlang.UnaryExpr:
		return ex.evalUnary(n)
	case *testlang.PostfixExpr:
		p := ex.lvalue(n.X)
		old := p.load()
		p.store(applyDelta(old, n.Op))
		return old
	case *testlang.AssignExpr:
		return ex.evalAssign(n)
	case *testlang.CondExpr:
		if ex.eval(n.Cond).truthy() {
			return ex.eval(n.Then)
		}
		return ex.eval(n.Else)
	case *testlang.CallExpr:
		return ex.evalCall(n)
	case *testlang.IndexExpr:
		return ex.indexPlaceOrView(n)
	case *testlang.CastExpr:
		v := ex.eval(n.X)
		if n.To.Ptr > 0 {
			if r, ok := refOf(v); ok && !r.blk.materialized {
				r.blk.materialize(n.To)
			}
			return v
		}
		return convertTo(v, n.To)
	case *testlang.SizeofExpr:
		return intVal(sizeOf(n.Of))
	case *testlang.InitList:
		if len(n.Elems) > 0 {
			return ex.eval(n.Elems[0])
		}
		return intVal(0)
	default:
		return intVal(0)
	}
}

func (ex *exec) evalIdent(n *testlang.IdentExpr) value {
	if c, ok := ex.env.lookup(n.Name); ok {
		return c.v
	}
	switch n.Name {
	case "NULL":
		return nullVal()
	case "stderr":
		return strVal("<stderr>")
	case "stdout":
		return strVal("<stdout>")
	case "RAND_MAX":
		return intVal(2147483647)
	case "EXIT_SUCCESS":
		return intVal(0)
	case "EXIT_FAILURE":
		return intVal(1)
	case "acc_device_default", "acc_device_nvidia", "omp_sched_static":
		return intVal(1)
	case "acc_device_host", "omp_sched_dynamic":
		return intVal(2)
	}
	// Sema guarantees this does not happen for compiled programs.
	panic(segfault())
}

// resolveIndex computes the block/offset for one index step, trapping
// on null, freed, or out-of-range accesses.
func (ex *exec) resolveIndex(n *testlang.IndexExpr) (r ref, off int) {
	base := ex.eval(n.X)
	idx := int(ex.eval(n.Index).asInt())
	br, ok := refOf(base)
	if !ok || br.blk == nil || br.blk.freed {
		panic(ex.pointerFault())
	}
	if !br.blk.materialized {
		br.blk.materialize(testlang.Type{Base: "int"})
	}
	if len(br.dims) > 1 {
		stride := 1
		for _, d := range br.dims[1:] {
			stride *= d
		}
		if idx < 0 || idx >= br.dims[0] {
			panic(ex.pointerFault())
		}
		return br, br.off + idx*stride
	}
	o := br.off + idx
	if o < 0 || o >= len(br.blk.cells) {
		panic(ex.pointerFault())
	}
	return br, o
}

// indexPlaceOrView evaluates an index expression: an inner index of a
// multi-dimensional array yields a sub-view ref; a final index yields
// the element value.
func (ex *exec) indexPlaceOrView(n *testlang.IndexExpr) value {
	r, off := ex.resolveIndex(n)
	if len(r.dims) > 1 {
		return refVal(ref{blk: r.blk, off: off, dims: r.dims[1:]})
	}
	return r.blk.cells[off]
}

// lvalue resolves an expression to its storage place.
func (ex *exec) lvalue(e testlang.Expr) place {
	switch n := e.(type) {
	case *testlang.IdentExpr:
		if c, ok := ex.env.lookup(n.Name); ok {
			return cellPlace{c}
		}
		panic(segfault())
	case *testlang.IndexExpr:
		r, off := ex.resolveIndex(n)
		if len(r.dims) > 1 {
			panic(ex.pointerFault()) // assigning to a whole row
		}
		return elemPlace{blk: r.blk, off: off}
	case *testlang.UnaryExpr:
		if n.Op == "*" {
			v := ex.eval(n.X)
			r, ok := refOf(v)
			if !ok || r.blk == nil || r.blk.freed {
				panic(ex.pointerFault())
			}
			if !r.blk.materialized {
				r.blk.materialize(testlang.Type{Base: "int"})
			}
			if r.off < 0 || r.off >= len(r.blk.cells) {
				panic(ex.pointerFault())
			}
			return elemPlace{blk: r.blk, off: r.off}
		}
	}
	panic(segfault())
}

func (ex *exec) pointerFault() trapSignal {
	if ex.inDevice {
		return illegalDeviceAccess()
	}
	return segfault()
}

func (ex *exec) evalAssign(n *testlang.AssignExpr) value {
	p := ex.lvalue(n.L)
	rhs := ex.eval(n.R)
	var out value
	if n.Op == "=" {
		out = coerceLike(p.load(), rhs)
	} else {
		out = arith(n.Op[:1], p.load(), rhs)
	}
	p.store(out)
	return out
}

// coerceLike keeps the static flavour of the destination when it is
// numeric, so "int x; x = 1.9" truncates, while pointer stores keep
// refs.
func coerceLike(dst, v value) value {
	switch dst.k {
	case kFloat:
		return floatVal(v.asFloat())
	case kInt:
		if v.k == kFloat {
			return intVal(int64(v.f))
		}
		if v.k == kRef || v.k == kNull {
			return v
		}
		return intVal(v.asInt())
	default:
		return v
	}
}

func applyDelta(v value, op string) value {
	d := int64(1)
	if op == "--" {
		d = -1
	}
	if v.k == kFloat {
		return floatVal(v.f + float64(d))
	}
	if v.k == kRef {
		r := v.r
		r.off += int(d)
		return refVal(r)
	}
	return intVal(v.i + d)
}

func (ex *exec) evalUnary(n *testlang.UnaryExpr) value {
	switch n.Op {
	case "!":
		return boolToInt(!ex.eval(n.X).truthy())
	case "-":
		v := ex.eval(n.X)
		if v.k == kFloat {
			return floatVal(-v.f)
		}
		return intVal(-v.asInt())
	case "~":
		return intVal(^ex.eval(n.X).asInt())
	case "*":
		return ex.lvalue(n).load()
	case "&":
		return ex.addressOf(n.X)
	case "++", "--":
		p := ex.lvalue(n.X)
		nv := applyDelta(p.load(), n.Op)
		p.store(nv)
		return nv
	default:
		return ex.eval(n.X)
	}
}

func (ex *exec) addressOf(e testlang.Expr) value {
	switch t := e.(type) {
	case *testlang.IndexExpr:
		r, off := ex.resolveIndex(t)
		return refVal(ref{blk: r.blk, off: off})
	case *testlang.IdentExpr:
		v := ex.eval(t)
		if r, ok := refOf(v); ok {
			return refVal(r)
		}
		// Address of a scalar: a one-cell alias block. Writes through
		// the alias do not propagate back to the variable; the corpus
		// does not use scalar aliasing, and probed files that do get
		// deterministic (if not bit-faithful) behaviour.
		blk := &block{cells: []value{v}, materialized: true, name: t.Name}
		return refVal(ref{blk: blk})
	default:
		return nullVal()
	}
}

func (ex *exec) evalBinary(n *testlang.BinaryExpr) value {
	switch n.Op {
	case "&&":
		if !ex.eval(n.L).truthy() {
			return intVal(0)
		}
		return boolToInt(ex.eval(n.R).truthy())
	case "||":
		if ex.eval(n.L).truthy() {
			return intVal(1)
		}
		return boolToInt(ex.eval(n.R).truthy())
	}
	l := ex.eval(n.L)
	r := ex.eval(n.R)
	switch n.Op {
	case "==", "!=", "<", "<=", ">", ">=":
		return compare(n.Op, l, r)
	default:
		return arith(n.Op, l, r)
	}
}

func compare(op string, l, r value) value {
	if l.k == kRef || r.k == kRef || l.k == kNull || r.k == kNull {
		eq := pointerEqual(l, r)
		switch op {
		case "==":
			return boolToInt(eq)
		case "!=":
			return boolToInt(!eq)
		default:
			return intVal(0)
		}
	}
	if l.k == kFloat || r.k == kFloat {
		a, b := l.asFloat(), r.asFloat()
		switch op {
		case "==":
			return boolToInt(a == b)
		case "!=":
			return boolToInt(a != b)
		case "<":
			return boolToInt(a < b)
		case "<=":
			return boolToInt(a <= b)
		case ">":
			return boolToInt(a > b)
		default:
			return boolToInt(a >= b)
		}
	}
	a, b := l.asInt(), r.asInt()
	switch op {
	case "==":
		return boolToInt(a == b)
	case "!=":
		return boolToInt(a != b)
	case "<":
		return boolToInt(a < b)
	case "<=":
		return boolToInt(a <= b)
	case ">":
		return boolToInt(a > b)
	default:
		return boolToInt(a >= b)
	}
}

func pointerEqual(l, r value) bool {
	ln := l.k == kNull || (l.k == kInt && l.i == 0)
	rn := r.k == kNull || (r.k == kInt && r.i == 0)
	if ln || rn {
		return ln && rn
	}
	if l.k == kRef && r.k == kRef {
		return l.r.blk == r.r.blk && l.r.off == r.r.off
	}
	return false
}

func boolToInt(b bool) value {
	if b {
		return intVal(1)
	}
	return intVal(0)
}

func arith(op string, l, r value) value {
	if lr, ok := refOf(l); ok && (op == "+" || op == "-") {
		d := int(r.asInt())
		if op == "-" {
			d = -d
		}
		lr.off += d
		return refVal(lr)
	}
	if rr, ok := refOf(r); ok && op == "+" {
		rr.off += int(l.asInt())
		return refVal(rr)
	}
	if l.k == kFloat || r.k == kFloat {
		a, b := l.asFloat(), r.asFloat()
		switch op {
		case "+":
			return floatVal(a + b)
		case "-":
			return floatVal(a - b)
		case "*":
			return floatVal(a * b)
		case "/":
			return floatVal(a / b)
		default:
			return floatVal(0)
		}
	}
	a, b := l.asInt(), r.asInt()
	switch op {
	case "+":
		return intVal(a + b)
	case "-":
		return intVal(a - b)
	case "*":
		return intVal(a * b)
	case "/":
		if b == 0 {
			panic(fpeFault())
		}
		return intVal(a / b)
	case "%":
		if b == 0 {
			panic(fpeFault())
		}
		return intVal(a % b)
	case "&":
		return intVal(a & b)
	case "|":
		return intVal(a | b)
	case "^":
		return intVal(a ^ b)
	case "<<":
		return intVal(a << uint(b&63))
	case ">>":
		return intVal(a >> uint(b&63))
	}
	return intVal(0)
}

// callFunction invokes a user function with already-evaluated args.
func (ex *exec) callFunction(fd *testlang.FuncDecl, args []value) value {
	if ex.callDepth > 2000 {
		panic(segfault()) // stack overflow
	}
	fnEnv := newEnv(ex.in.globals)
	for i, p := range fd.Params {
		var v value
		if i < len(args) {
			v = args[i]
			if !p.Array && p.Type.Ptr == 0 {
				v = convertTo(v, p.Type)
			}
		} else {
			v = zeroValue(p.Type)
		}
		fnEnv.declare(p.Name, v)
	}
	callee := &exec{
		in:          ex.in,
		env:         fnEnv,
		inDevice:    ex.inDevice,
		workerID:    ex.workerID,
		regionWidth: ex.regionWidth,
		callDepth:   ex.callDepth + 1,
	}
	return runWithReturn(callee, fd.Body)
}

func runWithReturn(ex *exec, body *testlang.Block) (ret value) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case returnSignal:
			ret = r.v
		default:
			panic(r)
		}
	}()
	ex.execStmt(body)
	return intVal(0)
}
