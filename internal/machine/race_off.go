//go:build !race

package machine

// raceEnabled is false in normal builds; see race_on.go.
const raceEnabled = false
