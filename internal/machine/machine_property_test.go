package machine

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/corpus"
	"repro/internal/spec"
	"repro/internal/testlang"
)

// TestWorkerCountInvariance is the machine's central correctness
// property: for every (non-brittle) corpus template, the observable
// result — return code and stdout — must be identical across parallel
// widths. A violation means the privatization/reduction/data-movement
// model races or mis-shares.
func TestWorkerCountInvariance(t *testing.T) {
	for _, d := range []spec.Dialect{spec.OpenACC, spec.OpenMP} {
		ref := compiler.Reference(d)
		for _, id := range corpus.TemplateIDs(d) {
			for seed := uint64(0); seed < 2; seed++ {
				tf, err := corpus.InstantiateTemplate(d, id, testlang.LangC, seed)
				if err != nil {
					t.Fatal(err)
				}
				if tf.Brittle {
					continue // exact-float template is deliberately width-sensitive
				}
				res := ref.Compile(tf.Name, tf.Source, tf.Lang)
				if !res.OK {
					t.Fatalf("%s: %s", tf.Name, res.Stderr)
				}
				base := Run(res.Object, Options{Workers: 1})
				for _, w := range []int{2, 4, 16} {
					got := Run(res.Object, Options{Workers: w})
					if got.ReturnCode != base.ReturnCode {
						t.Errorf("%v/%s seed %d: rc %d at w=1 but %d at w=%d\nstderr: %s",
							d, id, seed, base.ReturnCode, got.ReturnCode, w, got.Stderr)
					}
					if got.Stdout != base.Stdout {
						t.Errorf("%v/%s seed %d: stdout differs at w=%d: %q vs %q",
							d, id, seed, w, base.Stdout, got.Stdout)
					}
				}
			}
		}
	}
}

// TestRepeatedRunsIdentical: the machine must be deterministic run to
// run (same object, same options), including its device data
// environment bookkeeping.
func TestRepeatedRunsIdentical(t *testing.T) {
	tf, err := corpus.InstantiateTemplate(spec.OpenACC, "enter_exit_update", testlang.LangC, 7)
	if err != nil {
		t.Fatal(err)
	}
	res := compiler.Reference(spec.OpenACC).Compile(tf.Name, tf.Source, tf.Lang)
	if !res.OK {
		t.Fatal(res.Stderr)
	}
	first := Run(res.Object, Options{})
	for i := 0; i < 5; i++ {
		again := Run(res.Object, Options{})
		if again.ReturnCode != first.ReturnCode || again.Stdout != first.Stdout {
			t.Fatalf("run %d diverged: rc %d/%d stdout %q/%q",
				i, first.ReturnCode, again.ReturnCode, first.Stdout, again.Stdout)
		}
	}
}

// TestPresenceTableDrainsAfterRun: structured regions must release
// every device mirror they create; a leak would make repeated regions
// observe stale data.
func TestPresenceTableDrains(t *testing.T) {
	src := `
#include <stdlib.h>
#define N 64
int main() {
    int *a = (int *)malloc(N * sizeof(int));
    for (int i = 0; i < N; i++) a[i] = 1;
    for (int round = 0; round < 3; round++) {
#pragma acc data copy(a[0:N])
        {
#pragma acc parallel loop present(a[0:N])
            for (int i = 0; i < N; i++) a[i] = a[i] + 1;
        }
    }
    return a[0] == 4 ? 0 : 1;
}
`
	res := compiler.ForDialect(spec.OpenACC).Compile("t.c", src, testlang.LangC)
	if !res.OK {
		t.Fatal(res.Stderr)
	}
	r := Run(res.Object, Options{})
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d err=%s", r.ReturnCode, r.Stderr)
	}
}

// TestMutatedCorpusNeverPanics: every mutation class applied to every
// template must produce a file the toolchain either rejects or the
// machine executes to a Result — no Go-level panics, no hangs (the
// step limit bounds runaways).
func TestMutatedCorpusNeverPanics(t *testing.T) {
	if testing.Short() {
		t.Skip("broad sweep")
	}
	for _, d := range []spec.Dialect{spec.OpenACC, spec.OpenMP} {
		pers := compiler.ForDialect(d)
		files := corpus.Generate(corpus.Config{Dialect: d, Seed: 1234,
			Langs: []testlang.Language{testlang.LangC, testlang.LangCPP}}, 48)
		for i, f := range files {
			// probe.Mutate is exercised in its own package; here we do
			// cruder textual damage to stress the machine's robustness.
			variants := []string{
				f.Source,
				f.Source[:len(f.Source)*3/4],
				f.Source[len(f.Source)/4:],
				f.Source + "\n}}}\n",
			}
			for vi, src := range variants {
				res := pers.Compile(f.Name, src, f.Lang)
				if !res.OK {
					continue
				}
				r := Run(res.Object, Options{StepLimit: 500000})
				_ = r.ReturnCode // reaching here without panic is the assertion
				_ = vi
			}
			_ = i
		}
	}
}

func BenchmarkInterpreterVecAdd(b *testing.B) {
	tf, err := corpus.InstantiateTemplate(spec.OpenACC, "parallel_loop_vecadd", testlang.LangC, 1)
	if err != nil {
		b.Fatal(err)
	}
	res := compiler.Reference(spec.OpenACC).Compile(tf.Name, tf.Source, tf.Lang)
	if !res.OK {
		b.Fatal(res.Stderr)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Run(res.Object, Options{})
		if r.ReturnCode != 0 {
			b.Fatal(r.Stderr)
		}
	}
	b.ReportMetric(float64(Run(res.Object, Options{}).Steps), "steps/run")
}

func BenchmarkInterpreterMatmul(b *testing.B) {
	tf, err := corpus.InstantiateTemplate(spec.OpenMP, "collapse_matmul_target", testlang.LangC, 1)
	if err != nil {
		b.Fatal(err)
	}
	res := compiler.Reference(spec.OpenMP).Compile(tf.Name, tf.Source, tf.Lang)
	if !res.OK {
		b.Fatal(res.Stderr)
	}
	for i := 0; i < b.N; i++ {
		r := Run(res.Object, Options{})
		if r.ReturnCode != 0 {
			b.Fatal(r.Stderr)
		}
	}
}
