package machine

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/spec"
	"repro/internal/testlang"
)

// run compiles with the dialect's personality and executes.
func run(t *testing.T, src string, d spec.Dialect) *Result {
	t.Helper()
	res := compiler.ForDialect(d).Compile("test.c", src, testlang.LangC)
	if !res.OK {
		t.Fatalf("compile failed:\n%s", res.Stderr)
	}
	return Run(res.Object, Options{})
}

// compileMaybe compiles without failing the test on errors.
func compileMaybe(src string, d spec.Dialect) *compiler.Result {
	return compiler.ForDialect(d).Compile("test.c", src, testlang.LangC)
}

func TestHelloWorld(t *testing.T) {
	r := run(t, `
#include <stdio.h>
int main() { printf("hello %d %s %.2f\n", 42, "world", 3.14159); return 0; }
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d, stderr = %s", r.ReturnCode, r.Stderr)
	}
	if r.Stdout != "hello 42 world 3.14\n" {
		t.Fatalf("stdout = %q", r.Stdout)
	}
}

func TestReturnCode(t *testing.T) {
	r := run(t, `int main() { return 7; }`, spec.OpenACC)
	if r.ReturnCode != 7 {
		t.Fatalf("rc = %d", r.ReturnCode)
	}
}

func TestExitCall(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
#include <stdio.h>
int main() { printf("before\n"); exit(3); printf("after\n"); return 0; }
`, spec.OpenACC)
	if r.ReturnCode != 3 {
		t.Fatalf("rc = %d", r.ReturnCode)
	}
	if r.Stdout != "before\n" {
		t.Fatalf("stdout = %q", r.Stdout)
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	r := run(t, `
#include <stdio.h>
int main() {
    int s = 0;
    for (int i = 1; i <= 10; i++) {
        if (i % 2 == 0) continue;
        s += i;          // 1+3+5+7+9 = 25
        if (i > 8) break;
    }
    int j = 0;
    while (j < 5) j++;
    printf("%d %d\n", s, j);
    return s == 25 && j == 5 ? 0 : 1;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d stdout=%q", r.ReturnCode, r.Stdout)
	}
	if r.Stdout != "25 5\n" {
		t.Fatalf("stdout = %q", r.Stdout)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	r := run(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(10) == 55 ? 0 : 1; }
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d", r.ReturnCode)
	}
}

func TestInfiniteRecursionTraps(t *testing.T) {
	r := run(t, `
int f(int n) { return f(n + 1); }
int main() { return f(0); }
`, spec.OpenACC)
	if r.Trap != "segfault" || r.ReturnCode != 139 {
		t.Fatalf("trap = %q rc = %d", r.Trap, r.ReturnCode)
	}
}

func TestMallocFreeRoundTrip(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
int main() {
    double *p = (double *)malloc(8 * sizeof(double));
    for (int i = 0; i < 8; i++) p[i] = i * 1.5;
    double s = 0;
    for (int i = 0; i < 8; i++) s += p[i];
    free(p);
    return s == 42.0 ? 0 : 1;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d stderr=%s", r.ReturnCode, r.Stderr)
	}
}

func TestNullDerefSegfaults(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
int main() {
    int *p = NULL;
    p[0] = 1;
    return 0;
}
`, spec.OpenACC)
	if r.Trap != "segfault" || r.ReturnCode != 139 {
		t.Fatalf("trap = %q rc = %d", r.Trap, r.ReturnCode)
	}
	if !strings.Contains(r.Stderr, "Segmentation fault") {
		t.Fatalf("stderr = %q", r.Stderr)
	}
}

func TestUninitializedPointerSegfaults(t *testing.T) {
	// The shape "removed malloc" probing produces.
	r := run(t, `
int main() {
    double *a;
    a[3] = 1.0;
    return 0;
}
`, spec.OpenACC)
	if r.Trap != "segfault" {
		t.Fatalf("trap = %q", r.Trap)
	}
}

func TestUseAfterFree(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
int main() {
    int *p = (int *)malloc(4 * sizeof(int));
    free(p);
    return p[0];
}
`, spec.OpenACC)
	if r.Trap != "segfault" {
		t.Fatalf("trap = %q rc = %d", r.Trap, r.ReturnCode)
	}
}

func TestDoubleFreeAborts(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
int main() {
    int *p = (int *)malloc(4 * sizeof(int));
    free(p);
    free(p);
    return 0;
}
`, spec.OpenACC)
	if r.Trap != "abort" || r.ReturnCode != 134 {
		t.Fatalf("trap = %q rc = %d", r.Trap, r.ReturnCode)
	}
}

func TestOutOfBoundsTraps(t *testing.T) {
	r := run(t, `
int main() {
    int a[4];
    a[10] = 1;
    return 0;
}
`, spec.OpenACC)
	if r.Trap != "segfault" {
		t.Fatalf("trap = %q", r.Trap)
	}
}

func TestDivideByZero(t *testing.T) {
	r := run(t, `
int main() {
    int x = 4, y = 0;
    return x / y;
}
`, spec.OpenACC)
	if r.Trap != "fpe" || r.ReturnCode != 136 {
		t.Fatalf("trap = %q rc = %d", r.Trap, r.ReturnCode)
	}
}

func TestStepLimitKillsInfiniteLoop(t *testing.T) {
	res := compileMaybe(`int main() { int x = 1; while (x) { x = 1; } return 0; }`, spec.OpenACC)
	if !res.OK {
		t.Fatalf("compile: %s", res.Stderr)
	}
	r := Run(res.Object, Options{StepLimit: 100000})
	if r.Trap != "step-limit" || r.ReturnCode != 124 {
		t.Fatalf("trap = %q rc = %d", r.Trap, r.ReturnCode)
	}
}

func TestStderrCapture(t *testing.T) {
	r := run(t, `
#include <stdio.h>
int main() {
    fprintf(stderr, "err: %d\n", 5);
    printf("out\n");
    return 0;
}
`, spec.OpenACC)
	if r.Stderr != "err: 5\n" || r.Stdout != "out\n" {
		t.Fatalf("stdout=%q stderr=%q", r.Stdout, r.Stderr)
	}
}

func TestACCParallelLoopReduction(t *testing.T) {
	r := run(t, `
#include <stdio.h>
#include <stdlib.h>
#define N 1000
int main() {
    int *a = (int *)malloc(N * sizeof(int));
    long sum = 0;
    for (int i = 0; i < N; i++) a[i] = i;
#pragma acc parallel loop copyin(a[0:N]) reduction(+:sum)
    for (int i = 0; i < N; i++) {
        sum += a[i];
    }
    free(a);
    if (sum != (long)(N - 1) * N / 2) { printf("got %ld\n", sum); return 1; }
    printf("PASS\n");
    return 0;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d out=%q err=%q", r.ReturnCode, r.Stdout, r.Stderr)
	}
}

func TestACCDataRegionCopyout(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
#define N 256
int main() {
    double *a = (double *)malloc(N * sizeof(double));
    double *b = (double *)malloc(N * sizeof(double));
    for (int i = 0; i < N; i++) { a[i] = i; b[i] = 0; }
#pragma acc data copyin(a[0:N]) copyout(b[0:N])
    {
#pragma acc parallel loop
        for (int i = 0; i < N; i++) {
            b[i] = a[i] * 2.0;
        }
    }
    for (int i = 0; i < N; i++) {
        if (b[i] != i * 2.0) return 1;
    }
    return 0;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d err=%q", r.ReturnCode, r.Stderr)
	}
}

func TestACCImplicitCopyMasksMissingClause(t *testing.T) {
	// Declared array with no data clauses: OpenACC implicit data
	// movement makes this work — the mechanism that masks some
	// "removed ACC memory allocation" mutations from the pipeline.
	r := run(t, `
#define N 128
int main() {
    int a[N];
    for (int i = 0; i < N; i++) a[i] = 0;
#pragma acc parallel loop
    for (int i = 0; i < N; i++) {
        a[i] = i;
    }
    for (int i = 0; i < N; i++) if (a[i] != i) return 1;
    return 0;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d err=%q", r.ReturnCode, r.Stderr)
	}
}

func TestACCUnknownBoundsPointerRejected(t *testing.T) {
	// Heap pointer with no bounds from any data clause: real OpenACC
	// compilers reject this ("size of the GPU copy is unknown").
	res := compileMaybe(`
#include <stdlib.h>
#define N 128
int main() {
    int *a = (int *)malloc(N * sizeof(int));
#pragma acc parallel loop
    for (int i = 0; i < N; i++) {
        a[i] = i;
    }
    return 0;
}
`, spec.OpenACC)
	if res.OK {
		t.Fatal("unbounded heap pointer in device region compiled")
	}
	if !strings.Contains(res.Stderr, "unknown") {
		t.Fatalf("stderr = %s", res.Stderr)
	}
}

func TestACCPresentFaultsWhenAbsent(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
#define N 64
int main() {
    int *a = (int *)malloc(N * sizeof(int));
#pragma acc parallel loop present(a[0:N])
    for (int i = 0; i < N; i++) {
        a[i] = i;
    }
    return 0;
}
`, spec.OpenACC)
	if r.Trap != "device-fault" || r.ReturnCode != 1 {
		t.Fatalf("trap = %q rc = %d err=%q", r.Trap, r.ReturnCode, r.Stderr)
	}
	if !strings.Contains(r.Stderr, "FATAL ERROR") {
		t.Fatalf("stderr = %q", r.Stderr)
	}
}

func TestACCEnterExitDataAndUpdate(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
#define N 32
int main() {
    int *a = (int *)malloc(N * sizeof(int));
    for (int i = 0; i < N; i++) a[i] = 1;
#pragma acc enter data copyin(a[0:N])
#pragma acc parallel loop present(a[0:N])
    for (int i = 0; i < N; i++) a[i] = a[i] + 1;
#pragma acc update host(a[0:N])
    int ok1 = a[0] == 2;
    for (int i = 0; i < N; i++) a[i] = 10;
#pragma acc update device(a[0:N])
#pragma acc parallel loop present(a[0:N])
    for (int i = 0; i < N; i++) a[i] = a[i] * 2;
#pragma acc exit data copyout(a[0:N])
    int ok2 = a[5] == 20;
    return ok1 && ok2 ? 0 : 1;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d err=%q", r.ReturnCode, r.Stderr)
	}
}

func TestACCUpdateWithoutPresenceFaults(t *testing.T) {
	// Removing "enter data" (the ACC memory allocation) makes the
	// update directive fault: the mechanically-caught submode of
	// negative-probing issue 0.
	r := run(t, `
#include <stdlib.h>
#define N 32
int main() {
    int *a = (int *)malloc(N * sizeof(int));
#pragma acc update device(a[0:N])
    return 0;
}
`, spec.OpenACC)
	if r.Trap != "device-fault" {
		t.Fatalf("trap = %q err=%q", r.Trap, r.Stderr)
	}
}

func TestACCNullPointerDataClauseFaults(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
#define N 32
int main() {
    int *a = NULL;
#pragma acc parallel loop copyin(a[0:N])
    for (int i = 0; i < N; i++) { int x = a[i]; x++; }
    return 0;
}
`, spec.OpenACC)
	if r.Trap != "device-fault" {
		t.Fatalf("trap = %q rc=%d err=%q", r.Trap, r.ReturnCode, r.Stderr)
	}
}

func TestOMPTargetUnmappedHeapPointerFaults(t *testing.T) {
	// OpenMP 4.5: heap pointers are not implicitly mapped; removing
	// the map clause produces a device fault.
	r := run(t, `
#include <stdlib.h>
#define N 64
int main() {
    int *a = (int *)malloc(N * sizeof(int));
#pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
        a[i] = i;
    }
    return 0;
}
`, spec.OpenMP)
	if r.Trap != "device-fault" {
		t.Fatalf("trap = %q rc=%d err=%q", r.Trap, r.ReturnCode, r.Stderr)
	}
	if !strings.Contains(r.Stderr, "illegal memory access") {
		t.Fatalf("stderr = %q", r.Stderr)
	}
}

func TestOMPTargetDeclaredArrayImplicitMap(t *testing.T) {
	r := run(t, `
#define N 64
int main() {
    int a[N];
    for (int i = 0; i < N; i++) a[i] = 0;
#pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
        a[i] = i * 3;
    }
    for (int i = 0; i < N; i++) if (a[i] != i * 3) return 1;
    return 0;
}
`, spec.OpenMP)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d err=%q", r.ReturnCode, r.Stderr)
	}
}

func TestOMPTargetMapClauses(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
#define N 200
int main() {
    double *x = (double *)malloc(N * sizeof(double));
    double *y = (double *)malloc(N * sizeof(double));
    for (int i = 0; i < N; i++) { x[i] = i; y[i] = 2 * i; }
    double dot = 0.0;
#pragma omp target teams distribute parallel for map(to: x[0:N], y[0:N]) reduction(+:dot)
    for (int i = 0; i < N; i++) {
        dot += x[i] * y[i];
    }
    double expect = 0.0;
    for (int i = 0; i < N; i++) expect += x[i] * y[i];
    free(x);
    free(y);
    return dot == expect ? 0 : 1;
}
`, spec.OpenMP)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d err=%q", r.ReturnCode, r.Stderr)
	}
}

func TestOMPHostParallelForReduction(t *testing.T) {
	r := run(t, `
#define N 10000
int main() {
    long s = 0;
#pragma omp parallel for reduction(+:s)
    for (int i = 0; i < N; i++) {
        s += i;
    }
    return s == (long)(N - 1) * N / 2 ? 0 : 1;
}
`, spec.OpenMP)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d", r.ReturnCode)
	}
}

func TestOMPAtomicCounter(t *testing.T) {
	r := run(t, `
#define N 2000
int main() {
    int count = 0;
#pragma omp parallel for
    for (int i = 0; i < N; i++) {
#pragma omp atomic
        count += 1;
    }
    return count == N ? 0 : 1;
}
`, spec.OpenMP)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d", r.ReturnCode)
	}
}

func TestOMPCriticalSum(t *testing.T) {
	r := run(t, `
int main() {
    int total = 0;
#pragma omp parallel
    {
#pragma omp critical
        {
            total = total + 1;
        }
    }
    return total > 0 ? 0 : 1;
}
`, spec.OpenMP)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d", r.ReturnCode)
	}
}

func TestOMPParallelRegionWidth(t *testing.T) {
	r := run(t, `
int main() {
    int width = 0;
#pragma omp parallel num_threads(3)
    {
#pragma omp single
        {
            width = omp_get_num_threads();
        }
    }
    return width == 3 ? 0 : 1;
}
`, spec.OpenMP)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d", r.ReturnCode)
	}
}

func TestOMPParallelInsideTargetBlock(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
#define N 128
int main() {
    int *a = (int *)malloc(N * sizeof(int));
    for (int i = 0; i < N; i++) a[i] = 0;
#pragma omp target data map(tofrom: a[0:N])
    {
#pragma omp target teams distribute parallel for
        for (int i = 0; i < N; i++) {
            a[i] = i + 1;
        }
    }
    for (int i = 0; i < N; i++) if (a[i] != i + 1) return 1;
    return 0;
}
`, spec.OpenMP)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d err=%q", r.ReturnCode, r.Stderr)
	}
}

func TestACCReductionMax(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
#define N 500
int main() {
    double *a = (double *)malloc(N * sizeof(double));
    for (int i = 0; i < N; i++) a[i] = (i * 37) % 251;
    double best = -1.0;
#pragma acc parallel loop copyin(a[0:N]) reduction(max:best)
    for (int i = 0; i < N; i++) {
        if (a[i] > best) best = a[i];
    }
    double expect = -1.0;
    for (int i = 0; i < N; i++) if (a[i] > expect) expect = a[i];
    return best == expect ? 0 : 1;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d err=%q", r.ReturnCode, r.Stderr)
	}
}

func TestACCGangVectorNested(t *testing.T) {
	r := run(t, `
#define R 32
#define C 16
int main() {
    double m[R][C];
    double v[C];
    double out[R];
    for (int j = 0; j < C; j++) v[j] = j;
    for (int i = 0; i < R; i++)
        for (int j = 0; j < C; j++)
            m[i][j] = i + j;
#pragma acc parallel loop gang copyin(m, v) copyout(out)
    for (int i = 0; i < R; i++) {
        double acc = 0.0;
#pragma acc loop vector reduction(+:acc)
        for (int j = 0; j < C; j++) {
            acc += m[i][j] * v[j];
        }
        out[i] = acc;
    }
    for (int i = 0; i < R; i++) {
        double expect = 0.0;
        for (int j = 0; j < C; j++) expect += (i + j) * j;
        if (out[i] != expect) return 1;
    }
    return 0;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d err=%q", r.ReturnCode, r.Stderr)
	}
}

func TestComputeBlockScalarWrite(t *testing.T) {
	r := run(t, `
int main() {
    int flag = 0;
#pragma acc serial
    {
        flag = 1;
    }
    return flag == 1 ? 0 : 1;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d", r.ReturnCode)
	}
}

func TestIfClauseFalseRunsOnHost(t *testing.T) {
	r := run(t, `
#include <stdlib.h>
#define N 16
int main() {
    int *a = (int *)malloc(N * sizeof(int));
    for (int i = 0; i < N; i++) a[i] = 0;
    int use_gpu = 0;
#pragma acc parallel loop if(use_gpu) copyin(a[0:N])
    for (int i = 0; i < N; i++) {
        a[i] = i;
    }
    return a[3] == 3 ? 0 : 1;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d err=%q", r.ReturnCode, r.Stderr)
	}
}

func TestWorkersOptionDeterminism(t *testing.T) {
	src := `
#include <stdlib.h>
#define N 1024
int main() {
    double *a = (double *)malloc(N * sizeof(double));
    double s = 0;
    for (int i = 0; i < N; i++) a[i] = i * 0.25;
#pragma acc parallel loop copyin(a[0:N]) reduction(+:s)
    for (int i = 0; i < N; i++) { s += a[i]; }
    if (s == 130944.0) return 0;
    return 1;
}
`
	res := compileMaybe(src, spec.OpenACC)
	if !res.OK {
		t.Fatal(res.Stderr)
	}
	for _, w := range []int{1, 2, 4, 8, 16} {
		r := Run(res.Object, Options{Workers: w})
		if r.ReturnCode != 0 {
			t.Fatalf("workers=%d rc=%d", w, r.ReturnCode)
		}
	}
}

func TestMatrixMultiply2D(t *testing.T) {
	r := run(t, `
#define N 24
int main() {
    double a[N][N], b[N][N], c[N][N], ref[N][N];
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            a[i][j] = i - j;
            b[i][j] = i + 2 * j;
            c[i][j] = 0;
            ref[i][j] = 0;
        }
    }
#pragma acc parallel loop collapse(2) copyin(a, b) copyout(c)
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            double s = 0.0;
            for (int k = 0; k < N; k++) {
                s += a[i][k] * b[k][j];
            }
            c[i][j] = s;
        }
    }
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            for (int k = 0; k < N; k++)
                ref[i][j] += a[i][k] * b[k][j];
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            if (c[i][j] != ref[i][j]) return 1;
    return 0;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d err=%q", r.ReturnCode, r.Stderr)
	}
}

func TestGlobalVariables(t *testing.T) {
	r := run(t, `
int counter = 10;
double scale = 0.5;
int bump(int d) { counter += d; return counter; }
int main() {
    bump(5);
    bump(-3);
    return counter == 12 && scale == 0.5 ? 0 : 1;
}
`, spec.OpenACC)
	if r.ReturnCode != 0 {
		t.Fatalf("rc = %d", r.ReturnCode)
	}
}

func TestOutputTruncation(t *testing.T) {
	res := compileMaybe(`
#include <stdio.h>
int main() {
    for (int i = 0; i < 100000; i++) printf("spam line %d\n", i);
    return 0;
}
`, spec.OpenACC)
	if !res.OK {
		t.Fatal(res.Stderr)
	}
	r := Run(res.Object, Options{OutputLimit: 2048})
	if len(r.Stdout) > 4096 {
		t.Fatalf("stdout not truncated: %d bytes", len(r.Stdout))
	}
	if !strings.Contains(r.Stdout, "[output truncated]") {
		t.Fatal("missing truncation marker")
	}
}

func TestRunNeverPanics(t *testing.T) {
	// Programs that compile but do odd things must produce a Result,
	// not a Go panic.
	srcs := []string{
		`int main() { int a[2]; int i = 5; return a[i]; }`,
		`#include <stdlib.h>
int main() { int *p = (int *)malloc(0); return p == NULL ? 1 : 0; }`,
		`int main() { int x = -2147483647; return x * 65536 < 0 ? 0 : 0; }`,
	}
	for _, src := range srcs {
		res := compileMaybe(src, spec.OpenACC)
		if !res.OK {
			continue
		}
		r := Run(res.Object, Options{})
		_ = r.ReturnCode
	}
}

func TestFloatFormatVerbs(t *testing.T) {
	r := run(t, `
#include <stdio.h>
int main() {
    printf("%5d|%-4d|%08.3f|%e|%g|%c|%%\n", 42, 7, 3.14159, 1234.5, 0.0001, 65);
    return 0;
}
`, spec.OpenACC)
	want := "   42|7   |0003.142|1.234500e+03|0.0001|A|%\n"
	if r.Stdout != want {
		t.Fatalf("stdout = %q, want %q", r.Stdout, want)
	}
}
