package store

// Tests for Compact: superseded duplicates and corrupt lines drop out
// of the file, live records and append behaviour survive, and
// compaction is canonical — the same records always compact to the
// same bytes.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func countLines(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Count(string(data), "\n")
}

func TestCompactDropsSupersededAndCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Three writes to one key (two superseded) plus two other keys.
	if err := s.Put(testRecord("p", "h1", "valid")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord("p", "h1", "invalid")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord("p", "h1", "unparsable")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord("p", "h2", "valid")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord("q", "h1", "invalid")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Splice in a corrupt line mid-file, the way outside interference
	// would.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{torn garbage\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Dropped() != 1 {
		t.Fatalf("setup: expected 1 corrupt line, got %d", s.Dropped())
	}
	removed, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	// 6 physical lines (5 records + garbage) compact to 3 live keys.
	if removed != 3 {
		t.Errorf("Compact removed %d lines, want 3", removed)
	}
	if got := countLines(t, path); got != 3 {
		t.Errorf("compacted file has %d lines, want 3", got)
	}

	// The survivors are the last-write-wins records, and the store
	// still appends.
	if rec, ok := s.Get(Key{Experiment: "p", Backend: "deepseek-sim", Seed: 33, FileHash: "h1"}); !ok || rec.Verdict != "unparsable" {
		t.Errorf("live record lost by compact: %+v ok=%v", rec, ok)
	}
	if err := s.Put(testRecord("r", "h9", "valid")); err != nil {
		t.Fatalf("append after compact: %v", err)
	}

	// Reopen: same index, no drops.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 4 || s2.Dropped() != 0 {
		t.Errorf("reopened compacted store: %d keys (want 4), %d dropped (want 0)", s2.Len(), s2.Dropped())
	}
	if rec, ok := s2.Get(Key{Experiment: "p", Backend: "deepseek-sim", Seed: 33, FileHash: "h1"}); !ok || rec.Verdict != "unparsable" {
		t.Errorf("compacted store resolves wrong record: %+v ok=%v", rec, ok)
	}
}

func TestCompactIsCanonical(t *testing.T) {
	recs := []Record{
		testRecord("a", "h1", "valid"),
		testRecord("a", "h2", "invalid"),
		testRecord("b", "h1", "valid"),
	}
	write := func(order []int) string {
		path := filepath.Join(t.TempDir(), "run.jsonl")
		s, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range order {
			if err := s.Put(recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if a, b := write([]int{0, 1, 2}), write([]int{2, 0, 1}); a != b {
		t.Errorf("same records in different orders compacted to different bytes:\n%q\n%q", a, b)
	}
}

func TestCompactEmptyStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	removed, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Errorf("empty store compact removed %d lines", removed)
	}
}

func TestCompactPreservesFileMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(testRecord("p", "h1", "valid")); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(path, 0o664); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := fi.Mode().Perm(); got != 0o664 {
		t.Errorf("compact changed file mode to %v, want 0664", got)
	}
}

func TestCompactPreservesResponseRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Experiment: "serve/completions", Backend: "echo", Seed: 7,
		FileHash: HashSource("prompt"), JudgeRan: true, Response: "the full completion text"}
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.Get(rec.Key())
	if !ok || got.Response != rec.Response {
		t.Errorf("completion record lost through compact: %+v ok=%v", got, ok)
	}
}
