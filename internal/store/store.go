// Package store implements the persistent, resumable run store: a
// segmented log of per-file judging records keyed by (experiment,
// backend, seed, file content hash). Large multi-backend sweeps write
// every sealed verdict through the store as it lands, so an
// interrupted run can resume by loading prior records and judging
// only the files that never completed — identical content under an
// identical configuration is never judged twice.
//
// The store is one active segment plus zero or more sealed segments
// (docs/STORE.md has the full design):
//
//   - The active segment is the JSONL file at the store path: one
//     JSON object per line, append-only, fully indexed in memory.
//     Appends are write-behind — records land in a buffered writer
//     and reach the OS when the buffer fills, on an explicit Flush
//     (runs checkpoint at shard and phase boundaries), and on Close.
//     A crash loses at most the un-flushed tail plus at most one torn
//     final line, and Open tolerates exactly that: unparsable or
//     incomplete lines are counted (Dropped) and skipped, recovery is
//     "reopen and keep going", and the lost tail is simply re-judged.
//   - When the active segment outgrows Options.SealBytes it is sealed:
//     its live records are written, sorted by key and deduplicated, to
//     an immutable "<path>.seg-NNNNNN" sibling (fsynced, renamed into
//     place, directory fsynced), and the active file restarts empty.
//     Sealed segments are served through a per-segment Bloom filter
//     and a sparse in-memory key index, so Get and Has on a store of
//     millions of records are a binary search plus one bounded block
//     read — never a scan of the world — and memory stays bounded by
//     the active segment plus the sparse indexes.
//   - Background compaction merges all sealed segments into one when
//     their count crosses Options.MergeThreshold, without touching the
//     active segment; Compact remains as the offline full rewrite back
//     to a single canonical file.
//
// Newer always wins: the active segment overrides sealed segments, and
// a higher-numbered segment overrides a lower one — so last-write-wins
// resolution is identical to replaying the historical append order.
//
// A pre-segmentation store is already a valid active segment, so
// migration is automatic: Open on a legacy single-file store simply
// adopts it, and seals it on the spot when it exceeds the seal
// threshold. Nothing about the file format changed.
package store

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"repro/internal/trace"
)

// Key identifies one judging result: the same file content judged
// under the same experiment phase, backend, and seed always lands on
// the same key, so reruns and resumed runs dedupe naturally.
type Key struct {
	Experiment string
	Backend    string
	Seed       uint64
	FileHash   string
}

// Record is one stored per-file result: the key fields plus the stage
// outcomes a run needs to reconstruct the file's verdict without
// re-doing any work. Judge-only phases fill Verdict; pipeline phases
// fill the stage flags too.
type Record struct {
	Experiment string `json:"experiment"`
	Backend    string `json:"backend"`
	Seed       uint64 `json:"seed"`
	FileHash   string `json:"file_hash"`
	Name       string `json:"name,omitempty"`

	CompileRan bool   `json:"compile_ran,omitempty"`
	CompileOK  bool   `json:"compile_ok,omitempty"`
	ExecRan    bool   `json:"exec_ran,omitempty"`
	ExecOK     bool   `json:"exec_ok,omitempty"`
	JudgeRan   bool   `json:"judge_ran,omitempty"`
	Verdict    string `json:"verdict,omitempty"`
	Valid      bool   `json:"valid,omitempty"`

	// Response holds the raw completion text for records that cache a
	// whole endpoint completion rather than a sealed verdict — the
	// judging service stores one such record per unique prompt (keyed
	// by prompt hash) so identical requests from many workers resolve
	// to one completion.
	Response string `json:"response,omitempty"`

	// Votes holds the per-member panel votes for records written by
	// ensemble (panel) phases, in the canonical encoding of
	// internal/ensemble.EncodeVotes ("strategy member=verdict ...",
	// panel order). It is what lets a resumed panel run reproduce its
	// agreement metrics byte-identically without re-judging a file.
	Votes string `json:"votes,omitempty"`

	// Unix is an optional caller-set record timestamp (Unix seconds)
	// for time-windowed Scan filters. The store never stamps it
	// itself: experiment records must stay deterministic functions of
	// their inputs so identical re-puts dedupe and replayed runs never
	// grow the log.
	Unix int64 `json:"unix,omitempty"`
}

// Key returns the record's identity.
func (r Record) Key() Key {
	return Key{Experiment: r.Experiment, Backend: r.Backend, Seed: r.Seed, FileHash: r.FileHash}
}

// HashSource returns the content hash used in keys: hex SHA-256 of
// the file's source text.
func HashSource(source string) string {
	sum := sha256.Sum256([]byte(source))
	return hex.EncodeToString(sum[:])
}

// writeBufSize is the write-behind buffer: appends accumulate here
// and reach the OS one buffer — not one record — per syscall. At
// typical record sizes (~200 bytes) that batches a few hundred
// appends per write.
const writeBufSize = 64 * 1024

// DefaultSealBytes is the active-segment size that triggers a seal
// when Options.SealBytes is zero: large enough that short experiment
// runs stay a plain single file, small enough that a fleet writing
// millions of records keeps its in-memory active index bounded.
const DefaultSealBytes = 8 << 20

// DefaultMergeThreshold is the sealed-segment count that triggers a
// background merge when Options.MergeThreshold is zero.
const DefaultMergeThreshold = 4

// Options tunes the segmented log. The zero value gives the
// production defaults; tests shrink the thresholds to exercise
// sealing and merging on small stores.
type Options struct {
	// SealBytes is the active-segment size that triggers a seal.
	// 0 means DefaultSealBytes; negative disables auto-sealing (the
	// pre-segmentation single-file behaviour).
	SealBytes int64
	// SparseInterval is the sparse-index granularity: one in-memory
	// index entry per this many segment records, bounding a point
	// lookup's block read. 0 means 64.
	SparseInterval int
	// MergeThreshold is the sealed-segment count that triggers an
	// incremental background merge of all sealed segments into one.
	// 0 means DefaultMergeThreshold; negative disables merging.
	MergeThreshold int
	// Tracer, when set, records each seal and background merge as a
	// one-span trace ("store.seal" / "store.merge") — maintenance acts
	// have no caller to parent under, but they compete for the same
	// disk, so a sweep's slow tail often points here. Nil disables.
	Tracer *trace.Tracer
	// FaultHook, when set, is consulted before low-level file
	// operations — "write" (active-segment appends and flushes,
	// segment-writer output), "sync" (fsync of a sealing, merging, or
	// compacting file), "rename" (the atomic publish of a sealed,
	// merged, or compacted file) — and a non-nil return fails that
	// operation as if the disk had. The chaos suite and the daemons'
	// -fault flag inject deterministic I/O failure through it (see
	// internal/fault.Hook); production leaves it nil.
	FaultHook func(op string) error
}

func (o Options) normalized() Options {
	if o.SealBytes == 0 {
		o.SealBytes = DefaultSealBytes
	}
	if o.SparseInterval <= 0 {
		o.SparseInterval = defaultSparseInterval
	}
	if o.MergeThreshold == 0 {
		o.MergeThreshold = DefaultMergeThreshold
	}
	return o
}

// Store is an open run store. It is safe for concurrent use; one
// Store can absorb sealed results from every worker of a sharded run.
type Store struct {
	mu   sync.Mutex
	path string
	opts Options

	// Active segment: the append-only JSONL file at path, indexed in
	// full by the active map.
	f           *os.File
	w           *bufio.Writer // write-behind append buffer over f
	enc         *json.Encoder // bound to w via a counting writer
	scratch     *Record       // reused Encode argument; a plain rec would box into any per call
	active      map[Key]Record
	activeBytes int64 // bytes encoded into the active segment (buffered included)
	activeLines int   // physical lines in the active file (valid, superseded, and corrupt)

	// Sealed segments, oldest first (ascending seq).
	segs     []*segment
	segLines int    // physical record lines across sealed segments
	nextSeq  uint64 // sequence number the next seal will use

	distinct int // exact distinct keys across active + sealed segments
	dropped  int
	werr     error // first append failure, surfaced by Close

	// Background merge coordination: merging guards the one in-flight
	// merge; mergeCond (on mu) wakes Compact/Close waiters when it
	// finishes; mergeErr keeps the last failure for Stats.
	merging   bool
	mergeCond *sync.Cond
	mergeWG   sync.WaitGroup
	mergeErr  error
}

// countingWriter tracks bytes encoded into the active segment so the
// seal threshold fires on logical size, buffered bytes included.
type countingWriter struct {
	w io.Writer
	n *int64
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	*cw.n += int64(n)
	return n, err
}

// Open opens the store at path with default Options, creating it when
// absent. See OpenWith.
func Open(path string) (*Store, error) {
	return OpenWith(path, Options{})
}

// OpenWith opens the store at path (creating it when absent), loads
// the active segment into memory, indexes every sealed segment, and
// readies the active file for appends. Unparsable lines — a torn
// final line from an interrupted run, or garbage from outside
// interference — are skipped and counted, never fatal; later records
// on valid lines still load. For duplicate keys the newest record
// wins: active over sealed, higher segment over lower, later line
// over earlier, matching append order.
//
// Leftovers of interrupted seals and merges (".tmp" siblings) are
// removed, and an active segment already past the seal threshold — a
// legacy single-file store being migrated, or the residue of a crash
// between a seal's rename and its truncate — is sealed immediately.
func OpenWith(path string, opts Options) (*Store, error) {
	opts = opts.normalized()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{path: path, opts: opts, f: f, active: map[Key]Record{}}
	s.mergeCond = sync.NewCond(&s.mu)
	fail := func(err error) (*Store, error) {
		f.Close()
		for _, sg := range s.segs {
			sg.f.Close()
		}
		return nil, err
	}

	// Sealed segments first: tmp leftovers are cleaned, survivors
	// opened oldest-first.
	segPaths, segSeqs, err := listSegments(path)
	if err != nil {
		return fail(err)
	}
	s.nextSeq = 1
	for i, p := range segPaths {
		sg, err := openSegment(p, segSeqs[i])
		if err != nil {
			return fail(err)
		}
		s.segs = append(s.segs, sg)
		if segSeqs[i] >= s.nextSeq {
			s.nextSeq = segSeqs[i] + 1
		}
	}

	// Load the active segment. Read with a plain buffered reader, not
	// bufio.Scanner: Scanner enforces a maximum token size (64KiB by
	// default), and a record whose response or transcript outgrew
	// whatever cap was chosen would not degrade to one dropped line —
	// ErrTooLong aborts the whole scan and the store would refuse to
	// open. readLine has no line-length ceiling, so arbitrarily large
	// records round-trip and corruption stays line-local.
	r := bufio.NewReaderSize(f, 64*1024)
	for {
		line, rerr := readLine(r)
		if len(line) > 0 {
			s.activeLines++
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil || rec.FileHash == "" || rec.Experiment == "" {
				s.dropped++
			} else {
				s.active[rec.Key()] = rec
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return fail(fmt.Errorf("store: reading %s: %w", path, rerr))
		}
	}

	// One merge pass over every segment plus the active index does
	// double duty: it builds each segment's sparse index and Bloom
	// filter, and computes the exact distinct-key count in O(streams)
	// memory (every stream is sorted, so duplicates meet at the merge
	// head).
	segStreams := make([]*segStream, len(s.segs))
	streams := make([]stream, 0, len(s.segs)+1)
	for i, sg := range s.segs {
		ss, err := newSegStream(sg, 0, true, opts.SparseInterval)
		if err != nil {
			return fail(err)
		}
		segStreams[i] = ss
		streams = append(streams, ss)
	}
	streams = append(streams, newMemStream(s.active))
	err = mergeStreams(streams, func(Record, int, []int) bool {
		s.distinct++
		return true
	})
	if err != nil {
		return fail(err)
	}
	for _, ss := range segStreams {
		s.dropped += ss.dropped
		s.segLines += ss.sg.count
	}

	// Append from the true end regardless of where scanning stopped —
	// and if the file ends in a torn line (no final newline, the crash
	// signature of an interrupted append), terminate it first so the
	// next record starts on its own line instead of merging into the
	// garbage.
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return fail(err)
	}
	if end > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], end-1); err != nil {
			return fail(err)
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				return fail(err)
			}
			end++
		}
	}
	s.activeBytes = end
	s.armWriter()

	// Migration / crash catch-up: an oversized active segment seals
	// right away, turning a legacy single-file store into a segmented
	// one on first open.
	if opts.SealBytes > 0 && s.activeBytes >= opts.SealBytes && len(s.active) > 0 {
		if err := s.sealLocked(); err != nil {
			return fail(err)
		}
	}
	return s, nil
}

// fault consults the configured FaultHook for one low-level file
// operation; a nil hook admits everything.
func (s *Store) fault(op string) error {
	if s.opts.FaultHook == nil {
		return nil
	}
	return s.opts.FaultHook(op)
}

// armWriter (re)binds the write-behind buffer, byte counter, and
// encoder to the current active file handle.
func (s *Store) armWriter() {
	s.w = bufio.NewWriterSize(s.f, writeBufSize)
	s.enc = json.NewEncoder(countingWriter{w: s.w, n: &s.activeBytes})
	if s.scratch == nil {
		s.scratch = new(Record)
	}
}

// Get returns the stored record for a key: the active segment first,
// then sealed segments newest-first, each a Bloom-filtered point
// lookup (one bounded block read, no scan).
func (s *Store) Get(k Key) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := s.active[k]; ok {
		return rec, true
	}
	rec, ok, _ := s.segLookup(k)
	return rec, ok
}

// Has reports whether a record is stored under the key, at the same
// cost as Get.
func (s *Store) Has(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.active[k]; ok {
		return true
	}
	_, ok, _ := s.segLookup(k)
	return ok
}

// segLookup resolves a key against the sealed segments, newest first
// (the first hit is the live record). Callers hold mu.
func (s *Store) segLookup(k Key) (Record, bool, error) {
	for i := len(s.segs) - 1; i >= 0; i-- {
		rec, ok, err := s.segs[i].get(k)
		if err != nil {
			return Record{}, false, err
		}
		if ok {
			return rec, true, nil
		}
	}
	return Record{}, false, nil
}

// Put appends a record and indexes it. Putting a record whose key is
// already stored with identical contents is a no-op — whether the
// prior copy sits in the active segment or a sealed one — which keeps
// replayed runs from growing the log; a changed record for an
// existing key is appended and wins (last-write-wins, as Open
// replays). The append is write-behind: it lands in the buffer and
// reaches the OS when the buffer fills, on Flush, or at Close — a
// record is only durable past a crash once flushed. The first write
// failure is remembered and returned by every subsequent Put, by
// Flush, and by Close, so a run on a full disk cannot silently
// pretend to be durable. Crossing the seal threshold seals the active
// segment in-line and may kick a background segment merge.
func (s *Store) Put(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.put(rec)
}

// PutAll appends a batch of records under one lock acquisition — the
// natural sink for a shard of sealed verdicts. The first failure
// poisons the store and stops the batch; records before it are
// indexed and buffered as usual.
func (s *Store) PutAll(recs []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range recs {
		if err := s.put(rec); err != nil {
			return err
		}
	}
	return nil
}

// put is Put without the lock. The encoder writes the record and its
// terminating '\n' straight into the write-behind buffer: no
// intermediate marshal slice, no per-record syscall. New keys consult
// the sealed segments (Bloom filters make the fresh-key path a few
// hash probes, not a read) so identical replays dedupe and the
// distinct-key count stays exact.
func (s *Store) put(rec Record) error {
	if s.werr != nil {
		return s.werr
	}
	k := rec.Key()
	if old, ok := s.active[k]; ok {
		if old == rec {
			return nil
		}
	} else if len(s.segs) > 0 {
		old, ok, err := s.segLookup(k)
		switch {
		case err != nil:
			s.werr = fmt.Errorf("store: append: %w", err)
			return s.werr
		case ok && old == rec:
			return nil
		case !ok:
			s.distinct++
		}
	} else {
		s.distinct++
	}
	if err := s.fault("write"); err != nil {
		s.werr = fmt.Errorf("store: append: %w", err)
		return s.werr
	}
	*s.scratch = rec
	if err := s.enc.Encode(s.scratch); err != nil {
		s.werr = fmt.Errorf("store: append: %w", err)
		return s.werr
	}
	s.activeLines++
	s.active[k] = rec
	if s.opts.SealBytes > 0 && s.activeBytes >= s.opts.SealBytes {
		if err := s.sealLocked(); err != nil {
			s.werr = fmt.Errorf("store: seal: %w", err)
			return s.werr
		}
	}
	return nil
}

// sealLocked turns the active segment into a sealed one: live records
// written sorted and deduplicated to "<path>.seg-NNNNNN" (fsync,
// rename, directory fsync), then the active file truncated back to
// empty. A crash before the rename leaves the active file intact (it
// is flushed first); a crash after it leaves the records duplicated
// in both places, which last-write-wins resolution and the next merge
// absorb. Callers hold mu.
func (s *Store) sealLocked() error {
	if len(s.active) == 0 {
		return nil
	}
	if s.opts.Tracer != nil {
		_, span := s.opts.Tracer.StartTrace(context.Background(), "store.seal")
		span.SetAttr("records", strconv.Itoa(len(s.active)))
		defer span.End()
	}
	if err := s.fault("write"); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	sw, err := newSegWriter(s.path, s.nextSeq, len(s.active), s.opts.SparseInterval, s.opts.FaultHook)
	if err != nil {
		return err
	}
	ms := newMemStream(s.active)
	for {
		rec, ok := ms.peek()
		if !ok {
			break
		}
		if err := sw.add(rec); err != nil {
			sw.abort()
			return err
		}
		_ = ms.advance()
	}
	seg, err := sw.finish()
	if err != nil {
		return err
	}
	s.nextSeq++
	s.segs = append(s.segs, seg)
	s.segLines += seg.count

	if err := s.f.Truncate(0); err != nil {
		return err
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	s.activeBytes = 0
	s.activeLines = 0
	s.active = make(map[Key]Record)
	s.armWriter()
	s.maybeMergeLocked()
	return nil
}

// maybeMergeLocked starts a background merge of every sealed segment
// into one when their count reaches the threshold. At most one merge
// runs at a time; it never touches the active segment, and new seals
// may land while it runs. Callers hold mu.
func (s *Store) maybeMergeLocked() {
	if s.opts.MergeThreshold <= 0 || s.merging || len(s.segs) < s.opts.MergeThreshold {
		return
	}
	snapshot := append([]*segment(nil), s.segs...)
	s.merging = true
	s.mergeWG.Add(1)
	go s.mergeSegments(snapshot)
}

// mergeSegments merges a snapshot of sealed segments into a single
// segment named after the newest input, then swaps it in and removes
// the inputs. The merge reads immutable files without holding mu; the
// rename lands on the newest input's name, so a crash at any point
// leaves a store that opens correctly: before the rename only a tmp
// file exists (cleaned at Open), after it the lower segments hold
// only records the merged segment supersedes or duplicates.
func (s *Store) mergeSegments(snapshot []*segment) {
	defer s.mergeWG.Done()
	var span *trace.Span
	if s.opts.Tracer != nil {
		_, span = s.opts.Tracer.StartTrace(context.Background(), "store.merge")
		span.SetAttr("segments", strconv.Itoa(len(snapshot)))
	}
	merged, err := s.runMerge(snapshot)
	if span != nil {
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
	}

	s.mu.Lock()
	defer func() {
		s.merging = false
		s.mergeCond.Broadcast()
		s.mu.Unlock()
	}()
	if err != nil {
		s.mergeErr = err
		return
	}
	s.mergeErr = nil
	// New seals appended behind the snapshot while we merged; the
	// snapshot is still the prefix of s.segs.
	oldLines := 0
	for _, sg := range snapshot {
		oldLines += sg.count
	}
	rest := s.segs[len(snapshot):]
	s.segs = append([]*segment{merged}, rest...)
	s.segLines += merged.count - oldLines
	for _, sg := range snapshot {
		sg.f.Close()
		if sg.path != merged.path {
			os.Remove(sg.path)
		}
	}
}

// runMerge performs the merge I/O: a last-write-wins k-way merge of
// the snapshot into a new segment file under the newest input's
// sequence number.
func (s *Store) runMerge(snapshot []*segment) (*segment, error) {
	total := 0
	for _, sg := range snapshot {
		total += sg.count
	}
	sw, err := newSegWriter(s.path, snapshot[len(snapshot)-1].seq, total, s.opts.SparseInterval, s.opts.FaultHook)
	if err != nil {
		return nil, err
	}
	streams := make([]stream, len(snapshot))
	for i, sg := range snapshot {
		ss, err := newSegStream(sg, 0, false, s.opts.SparseInterval)
		if err != nil {
			sw.abort()
			return nil, err
		}
		streams[i] = ss
	}
	var addErr error
	err = mergeStreams(streams, func(rec Record, _ int, _ []int) bool {
		addErr = sw.add(rec)
		return addErr == nil
	})
	if err == nil {
		err = addErr
	}
	if err != nil {
		sw.abort()
		return nil, err
	}
	return sw.finish()
}

// Flush forces every buffered append down to the OS — the checkpoint
// primitive: runs call it at shard and phase boundaries so an
// interrupted run loses at most the records buffered since the last
// checkpoint, and those are exactly the ones resume re-judges.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if s.werr != nil {
		return s.werr
	}
	if err := s.fault("write"); err != nil {
		s.werr = fmt.Errorf("store: flush: %w", err)
		return s.werr
	}
	if err := s.w.Flush(); err != nil {
		s.werr = fmt.Errorf("store: flush: %w", err)
		return s.werr
	}
	return nil
}

// Compact rewrites the store back to a single file keeping exactly
// one line per key — the live record Open would resolve — dropping
// superseded duplicates and corrupt lines and removing every sealed
// segment, so a long-lived store that absorbed many resumed or
// replayed runs shrinks back to its distinct-key size. The rewrite
// goes through a temp file in the same directory, an fsync of that
// file, an atomic rename, and an fsync of the directory — a crash
// mid-compact leaves either the old store or the new one, never a mix
// and never a rename that itself evaporates in the crash. Records
// land in sorted key order, making compacted stores canonical: two
// stores holding the same records compact to identical bytes. It
// returns the number of physical lines removed.
//
// Compact is the offline, whole-store maintenance pass; the segmented
// log compacts itself incrementally in the background (see
// Options.MergeThreshold) without it. It materialises every live
// record in memory — for stores too large for that, the incremental
// merge path is the right tool. Compact is for a store this process
// owns exclusively: the rename unlinks the file out from under any
// other process holding it open (a running llm4vvd, a concurrent
// sweep), whose appends would then land in the orphaned inode and
// vanish. Compact offline.
func (s *Store) Compact() (removed int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.merging {
		s.mergeCond.Wait()
	}
	if s.werr != nil {
		return 0, s.werr
	}
	// Carry the live file's permissions over; CreateTemp's private
	// 0600 default would lock out other readers after the rename.
	mode := os.FileMode(0o644)
	if fi, err := s.f.Stat(); err == nil {
		mode = fi.Mode().Perm()
	}
	tmp, err := os.CreateTemp(filepath.Dir(s.path), filepath.Base(s.path)+".compact-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		return 0, err
	}

	// One last-write-wins merge of every sealed segment plus the
	// active index yields the live records in sorted key order; they
	// stream to the temp file and rebuild the in-memory active index
	// (post-compact, the whole store is the active segment again).
	streams := make([]stream, 0, len(s.segs)+1)
	for _, sg := range s.segs {
		ss, serr := newSegStream(sg, 0, false, s.opts.SparseInterval)
		if serr != nil {
			tmp.Close()
			return 0, serr
		}
		streams = append(streams, ss)
	}
	streams = append(streams, newMemStream(s.active))
	w := bufio.NewWriter(tmp)
	all := make(map[Key]Record, s.distinct)
	var wroteBytes int64
	var emitErr error
	err = mergeStreams(streams, func(rec Record, _ int, _ []int) bool {
		line, merr := json.Marshal(rec)
		if merr != nil {
			emitErr = merr
			return false
		}
		if _, werr := w.Write(append(line, '\n')); werr != nil {
			emitErr = fmt.Errorf("store: compact: %w", werr)
			return false
		}
		wroteBytes += int64(len(line)) + 1
		all[rec.Key()] = rec
		return true
	})
	if err == nil {
		err = emitErr
	}
	if err != nil {
		tmp.Close()
		return 0, err
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("store: compact: %w", err)
	}
	if err := s.fault("sync"); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := s.fault("rename"); err != nil {
		return 0, fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return 0, err
	}
	if err := syncDir(s.path); err != nil {
		return 0, err
	}
	// Swap the append handle to the new file; the old handle points at
	// the unlinked inode. Failing here must poison the store — keeping
	// the stale handle would let every later Put "succeed" into the
	// deleted inode and silently vanish at exit.
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.werr = fmt.Errorf("store: compact: reopening %s: %w", s.path, err)
		return 0, s.werr
	}
	s.f.Close()
	s.f = f
	// The sealed segments are fully folded into the new file; remove
	// them. A crash between the rename and these removals is benign:
	// the rewritten active file holds every live key and overrides
	// whatever the leftovers say.
	for _, sg := range s.segs {
		sg.f.Close()
		os.Remove(sg.path)
	}
	removed = s.activeLines + s.segLines - len(all)
	s.segs = nil
	s.segLines = 0
	s.active = all
	s.activeLines = len(all)
	s.activeBytes = wroteBytes
	s.distinct = len(all)
	s.dropped = 0
	// Any appends still sitting in the write-behind buffer were
	// captured by the index and therefore written into the compacted
	// file above; re-arming the writer on the new handle discards
	// those buffered bytes instead of appending them as duplicates.
	s.armWriter()
	return removed, nil
}

// Filter selects records for Scan. Fields form a hierarchical key
// prefix in segment sort order — Experiment, then Backend (meaningful
// once Experiment is set), then Seed (once Backend is set) — so a
// filled prefix narrows every segment to one contiguous key range.
// Since/Until bound the caller-set Record.Unix timestamp (a zero
// bound is open; records without a timestamp pass only open bounds).
type Filter struct {
	Experiment string
	Backend    string
	Seed       *uint64
	Since      int64 // inclusive lower Unix bound; 0 = unbounded
	Until      int64 // inclusive upper Unix bound; 0 = unbounded
}

func (f Filter) match(k Key) bool {
	if f.Experiment != "" && k.Experiment != f.Experiment {
		return false
	}
	if f.Backend != "" && k.Backend != f.Backend {
		return false
	}
	if f.Seed != nil && k.Seed != *f.Seed {
		return false
	}
	return true
}

// beyond reports that k sorts past the filter's prefix range — every
// later key in a sorted stream misses too, so the scan can stop.
func (f Filter) beyond(k Key) bool {
	if f.Experiment == "" {
		return false
	}
	if k.Experiment != f.Experiment {
		return k.Experiment > f.Experiment
	}
	if f.Backend == "" {
		return false
	}
	if k.Backend != f.Backend {
		return k.Backend > f.Backend
	}
	if f.Seed == nil {
		return false
	}
	return k.Seed > *f.Seed
}

// startKey is the smallest key the filter's prefix can match — where
// segment scans position themselves.
func (f Filter) startKey() Key {
	k := Key{Experiment: f.Experiment}
	if f.Experiment != "" {
		k.Backend = f.Backend
		if f.Backend != "" && f.Seed != nil {
			k.Seed = *f.Seed
		}
	}
	return k
}

// Scan streams every live record the filter selects to yield, in key
// order (for a fixed (experiment, backend, seed) prefix that is file-
// hash order), without materialising the result set: sealed segments
// contribute one bounded range read each, merged last-write-wins with
// the active index. yield returning false stops the scan. The store's
// lock is held for the duration — yield must not call back into the
// store.
func (s *Store) Scan(f Filter, yield func(Record) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := f.startKey()
	streams := make([]stream, 0, len(s.segs)+1)
	for _, sg := range s.segs {
		if len(sg.sparse) == 0 {
			continue
		}
		// Position at the block that could contain the start key; the
		// few preceding records in the block are filtered out below.
		i := 0
		if f.Experiment != "" {
			i = sort.Search(len(sg.sparse), func(j int) bool {
				return lessKey(start, sg.sparse[j].key)
			})
			if i > 0 {
				i--
			}
		}
		ss, err := newSegStream(sg, sg.sparse[i].off, false, s.opts.SparseInterval)
		if err != nil {
			return err
		}
		streams = append(streams, ss)
	}
	matching := make(map[Key]Record)
	for k, rec := range s.active {
		if f.match(k) {
			matching[k] = rec
		}
	}
	streams = append(streams, newMemStream(matching))
	return mergeStreams(streams, func(rec Record, _ int, _ []int) bool {
		k := rec.Key()
		if f.beyond(k) {
			return false
		}
		if !f.match(k) {
			return true
		}
		if f.Since != 0 && rec.Unix < f.Since {
			return true
		}
		if f.Until != 0 && rec.Unix > f.Until {
			return true
		}
		return yield(rec)
	})
}

// Records returns every live record under one (experiment, backend,
// seed) configuration, sorted by file hash so callers iterate
// deterministically — how the weighted voting strategy reads a
// panel's calibration history back out of the store. It is Scan with
// a full prefix, materialised; prefer Scan when streaming suffices.
func (s *Store) Records(experiment, backend string, seed uint64) []Record {
	var out []Record
	_ = s.Scan(Filter{Experiment: experiment, Backend: backend, Seed: &seed}, func(rec Record) bool {
		out = append(out, rec)
		return true
	})
	return out
}

// Len reports how many distinct keys are stored, across the active
// and sealed segments.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.distinct
}

// Dropped reports how many corrupt or truncated lines Open skipped,
// active and sealed segments combined.
func (s *Store) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// SegmentStats describes one sealed segment for Stats.
type SegmentStats struct {
	Path         string
	Records      int
	Bytes        int64
	IndexEntries int
}

// Stats is a point-in-time description of the store's shape — what
// `judgebench -store-stats` prints and the daemon exports as store
// gauges.
type Stats struct {
	Path          string
	Keys          int   // distinct keys across active + sealed
	ActiveRecords int   // live keys in the active segment
	ActiveLines   int   // physical lines in the active file
	ActiveBytes   int64 // bytes in the active segment (buffered included)
	Dropped       int
	Segments      []SegmentStats
	MergeErr      string // last background-merge failure, if any
}

// SegmentCount reports the number of sealed segments.
func (st Stats) SegmentCount() int { return len(st.Segments) }

// SegmentRecords reports the physical record lines across sealed
// segments.
func (st Stats) SegmentRecords() int {
	n := 0
	for _, sg := range st.Segments {
		n += sg.Records
	}
	return n
}

// Stats returns a snapshot of the store's shape.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Path:          s.path,
		Keys:          s.distinct,
		ActiveRecords: len(s.active),
		ActiveLines:   s.activeLines,
		ActiveBytes:   s.activeBytes,
		Dropped:       s.dropped,
	}
	if s.mergeErr != nil {
		st.MergeErr = s.mergeErr.Error()
	}
	for _, sg := range s.segs {
		st.Segments = append(st.Segments, SegmentStats{
			Path:         sg.path,
			Records:      sg.count,
			Bytes:        sg.size,
			IndexEntries: len(sg.sparse),
		})
	}
	return st
}

// Close flushes the write-behind buffer, waits for any background
// merge, and closes every file handle, returning the first append or
// flush failure of the store's lifetime, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	for s.merging {
		s.mergeCond.Wait()
	}
	ferr := s.flushLocked()
	cerr := s.f.Close()
	for _, sg := range s.segs {
		sg.f.Close()
	}
	werr := s.werr
	s.mu.Unlock()
	s.mergeWG.Wait()
	switch {
	case werr != nil:
		return werr
	case ferr != nil:
		return ferr
	default:
		return cerr
	}
}
