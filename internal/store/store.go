// Package store implements the persistent, resumable run store: an
// append-only JSONL file of per-file judging records keyed by
// (experiment, backend, seed, file content hash). Large multi-backend
// sweeps write every sealed verdict through the store as it lands, so
// an interrupted run can resume by loading prior records and judging
// only the files that never completed — identical content under an
// identical configuration is never judged twice.
//
// The format is one JSON object per line. Appends are atomic with
// respect to the in-process index (a mutex serialises them) and are
// write-behind: records land in a buffered writer and reach the OS
// when the buffer fills, on an explicit Flush (runs checkpoint at
// shard and phase boundaries), and on Close — batching what used to
// be one write syscall per record into one per buffer. The durability
// contract is unchanged in kind, only in granularity: a crash loses
// at most the un-flushed tail (plus at most one torn final line, the
// signature of an interrupted flush), and Open tolerates exactly
// that: unparsable or incomplete lines are counted (Dropped) and
// skipped, the records around them stay usable, and recovery is
// "reopen and keep going", with the lost tail simply re-judged.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Key identifies one judging result: the same file content judged
// under the same experiment phase, backend, and seed always lands on
// the same key, so reruns and resumed runs dedupe naturally.
type Key struct {
	Experiment string
	Backend    string
	Seed       uint64
	FileHash   string
}

// Record is one stored per-file result: the key fields plus the stage
// outcomes a run needs to reconstruct the file's verdict without
// re-doing any work. Judge-only phases fill Verdict; pipeline phases
// fill the stage flags too.
type Record struct {
	Experiment string `json:"experiment"`
	Backend    string `json:"backend"`
	Seed       uint64 `json:"seed"`
	FileHash   string `json:"file_hash"`
	Name       string `json:"name,omitempty"`

	CompileRan bool   `json:"compile_ran,omitempty"`
	CompileOK  bool   `json:"compile_ok,omitempty"`
	ExecRan    bool   `json:"exec_ran,omitempty"`
	ExecOK     bool   `json:"exec_ok,omitempty"`
	JudgeRan   bool   `json:"judge_ran,omitempty"`
	Verdict    string `json:"verdict,omitempty"`
	Valid      bool   `json:"valid,omitempty"`

	// Response holds the raw completion text for records that cache a
	// whole endpoint completion rather than a sealed verdict — the
	// judging service stores one such record per unique prompt (keyed
	// by prompt hash) so identical requests from many workers resolve
	// to one completion.
	Response string `json:"response,omitempty"`

	// Votes holds the per-member panel votes for records written by
	// ensemble (panel) phases, in the canonical encoding of
	// internal/ensemble.EncodeVotes ("strategy member=verdict ...",
	// panel order). It is what lets a resumed panel run reproduce its
	// agreement metrics byte-identically without re-judging a file.
	Votes string `json:"votes,omitempty"`
}

// Key returns the record's identity.
func (r Record) Key() Key {
	return Key{Experiment: r.Experiment, Backend: r.Backend, Seed: r.Seed, FileHash: r.FileHash}
}

// HashSource returns the content hash used in keys: hex SHA-256 of
// the file's source text.
func HashSource(source string) string {
	sum := sha256.Sum256([]byte(source))
	return hex.EncodeToString(sum[:])
}

// writeBufSize is the write-behind buffer: appends accumulate here
// and reach the OS one buffer — not one record — per syscall. At
// typical record sizes (~200 bytes) that batches a few hundred
// appends per write.
const writeBufSize = 64 * 1024

// Store is an open run store. It is safe for concurrent use; one
// Store can absorb sealed results from every worker of a sharded run.
type Store struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	w       *bufio.Writer // write-behind append buffer over f
	enc     *json.Encoder // bound to w; marshals records without an intermediate line slice
	scratch *Record       // reused Encode argument; a plain rec would box into any per call
	index   map[Key]Record
	lines   int // physical lines in the file (valid, superseded, and corrupt)
	dropped int
	werr    error // first append failure, surfaced by Close
}

// Open loads the JSONL file at path (creating it when absent), builds
// the in-memory index, and readies the file for appends. Unparsable
// lines — a torn final line from an interrupted run, or garbage from
// outside interference — are skipped and counted, never fatal; later
// records on valid lines still load. For duplicate keys the last
// record wins, matching append order.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{path: path, f: f, index: map[Key]Record{}}
	// Read with a plain buffered reader, not bufio.Scanner: Scanner
	// enforces a maximum token size (64KiB by default), and a record
	// whose response or transcript outgrew whatever cap was chosen
	// would not degrade to one dropped line — ErrTooLong aborts the
	// whole scan and the store would refuse to open. ReadBytes has no
	// line-length ceiling, so arbitrarily large records round-trip and
	// corruption stays line-local.
	r := bufio.NewReaderSize(f, 64*1024)
	for {
		line, rerr := r.ReadBytes('\n')
		if n := len(line); n > 0 && line[n-1] == '\n' {
			line = line[:n-1]
		}
		if len(line) > 0 {
			s.lines++
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil || rec.FileHash == "" || rec.Experiment == "" {
				s.dropped++
			} else {
				s.index[rec.Key()] = rec
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			f.Close()
			return nil, fmt.Errorf("store: reading %s: %w", path, rerr)
		}
	}
	// Append from the true end regardless of where scanning stopped —
	// and if the file ends in a torn line (no final newline, the crash
	// signature of an interrupted append), terminate it first so the
	// next record starts on its own line instead of merging into the
	// garbage.
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, err
	}
	if end > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], end-1); err != nil {
			f.Close()
			return nil, err
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	s.w = bufio.NewWriterSize(f, writeBufSize)
	s.enc = json.NewEncoder(s.w)
	s.scratch = new(Record)
	return s, nil
}

// Get returns the stored record for a key.
func (s *Store) Get(k Key) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.index[k]
	return rec, ok
}

// Put appends a record and indexes it. Putting a record whose key is
// already stored with identical contents is a no-op, which keeps
// replayed runs from growing the log; a changed record for an
// existing key is appended and wins (last-write-wins, as Open
// replays). The append is write-behind: it lands in the buffer and
// reaches the OS when the buffer fills, on Flush, or at Close — a
// record is only durable past a crash once flushed. The first write
// failure is remembered and returned by every subsequent Put, by
// Flush, and by Close, so a run on a full disk cannot silently
// pretend to be durable.
func (s *Store) Put(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.put(rec)
}

// PutAll appends a batch of records under one lock acquisition — the
// natural sink for a shard of sealed verdicts. The first failure
// poisons the store and stops the batch; records before it are
// indexed and buffered as usual.
func (s *Store) PutAll(recs []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range recs {
		if err := s.put(rec); err != nil {
			return err
		}
	}
	return nil
}

// put is Put without the lock. The encoder writes the record and its
// terminating '\n' straight into the write-behind buffer: no
// intermediate marshal slice, no per-record syscall.
func (s *Store) put(rec Record) error {
	if s.werr != nil {
		return s.werr
	}
	if old, ok := s.index[rec.Key()]; ok && old == rec {
		return nil
	}
	*s.scratch = rec
	if err := s.enc.Encode(s.scratch); err != nil {
		s.werr = fmt.Errorf("store: append: %w", err)
		return s.werr
	}
	s.lines++
	s.index[rec.Key()] = rec
	return nil
}

// Flush forces every buffered append down to the OS — the checkpoint
// primitive: runs call it at shard and phase boundaries so an
// interrupted run loses at most the records buffered since the last
// checkpoint, and those are exactly the ones resume re-judges.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if s.werr != nil {
		return s.werr
	}
	if err := s.w.Flush(); err != nil {
		s.werr = fmt.Errorf("store: flush: %w", err)
		return s.werr
	}
	return nil
}

// Compact rewrites the store file keeping exactly one line per key —
// the live record Open would resolve — and drops superseded
// duplicates and corrupt lines, so a long-lived store that absorbed
// many resumed or replayed runs shrinks back to its distinct-key
// size. The rewrite goes through a temp file in the same directory
// and an atomic rename, so a crash mid-compact leaves either the old
// file or the new one, never a mix. Records land in sorted key order,
// making compacted stores canonical: two stores holding the same
// records compact to identical bytes. It returns the number of lines
// removed.
//
// Compact is maintenance for a store this process owns exclusively:
// the rename unlinks the file out from under any other process
// holding it open (a running llm4vvd, a concurrent sweep), whose
// appends would then land in the orphaned inode and vanish. Compact
// offline.
func (s *Store) Compact() (removed int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.werr != nil {
		return 0, s.werr
	}
	// Carry the live file's permissions over; CreateTemp's private
	// 0600 default would lock out other readers after the rename.
	mode := os.FileMode(0o644)
	if fi, err := s.f.Stat(); err == nil {
		mode = fi.Mode().Perm()
	}
	keys := make([]Key, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Backend != b.Backend {
			return a.Backend < b.Backend
		}
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return a.FileHash < b.FileHash
	})
	tmp, err := os.CreateTemp(filepath.Dir(s.path), filepath.Base(s.path)+".compact-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		return 0, err
	}
	w := bufio.NewWriter(tmp)
	for _, k := range keys {
		line, err := json.Marshal(s.index[k])
		if err != nil {
			tmp.Close()
			return 0, err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			tmp.Close()
			return 0, fmt.Errorf("store: compact: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return 0, err
	}
	// Swap the append handle to the new file; the old handle points at
	// the unlinked inode. Failing here must poison the store — keeping
	// the stale handle would let every later Put "succeed" into the
	// deleted inode and silently vanish at exit.
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.werr = fmt.Errorf("store: compact: reopening %s: %w", s.path, err)
		return 0, s.werr
	}
	s.f.Close()
	s.f = f
	// Any appends still sitting in the write-behind buffer were
	// captured by the index and therefore written into the compacted
	// file above; re-arming the writer on the new handle discards
	// those buffered bytes instead of appending them as duplicates.
	s.w = bufio.NewWriterSize(f, writeBufSize)
	s.enc = json.NewEncoder(s.w)
	removed = s.lines - len(s.index)
	s.lines = len(s.index)
	s.dropped = 0
	return removed, nil
}

// Records returns every live record under one (experiment, backend,
// seed) configuration, sorted by file hash so callers iterate
// deterministically — how the weighted voting strategy reads a
// panel's calibration history back out of the store.
func (s *Store) Records(experiment, backend string, seed uint64) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for k, rec := range s.index {
		if k.Experiment == experiment && k.Backend == backend && k.Seed == seed {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FileHash < out[j].FileHash })
	return out
}

// Len reports how many distinct keys are stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Dropped reports how many corrupt or truncated lines Open skipped.
func (s *Store) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close flushes the write-behind buffer and closes the file,
// returning the first append or flush failure of the store's
// lifetime, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ferr := s.flushLocked()
	cerr := s.f.Close()
	switch {
	case s.werr != nil:
		return s.werr
	case ferr != nil:
		return ferr
	default:
		return cerr
	}
}
