package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mkrec builds a minimal verdict record for segment tests.
func mkrec(exp, backend string, seed uint64, hash, verdict string) Record {
	return Record{
		Experiment: exp,
		Backend:    backend,
		Seed:       seed,
		FileHash:   hash,
		Name:       "t-" + hash,
		JudgeRan:   true,
		Verdict:    verdict,
		Valid:      verdict == "valid",
	}
}

// sealEvery forces a seal after every Put and disables background
// merging, giving tests deterministic one-record segments.
var sealEvery = Options{SealBytes: 1, MergeThreshold: -1}

func segFiles(t *testing.T, path string) []string {
	t.Helper()
	matches, err := filepath.Glob(path + ".seg-*")
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	return matches
}

func TestSealAndPointLookup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "st.jsonl")
	s, err := OpenWith(path, sealEvery)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.Put(mkrec("judge", "deepseek-sim", 33, fmt.Sprintf("h%03d", i), "valid")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.SegmentCount() != n {
		t.Fatalf("SegmentCount = %d, want %d (seal per put)", st.SegmentCount(), n)
	}
	if st.ActiveRecords != 0 || st.ActiveBytes != 0 {
		t.Fatalf("active segment not empty after seals: %+v", st)
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := 0; i < n; i++ {
		k := Key{Experiment: "judge", Backend: "deepseek-sim", Seed: 33, FileHash: fmt.Sprintf("h%03d", i)}
		if rec, ok := s.Get(k); !ok || rec.Verdict != "valid" {
			t.Fatalf("Get(%v) = %+v, %v", k, rec, ok)
		}
		if !s.Has(k) {
			t.Fatalf("Has(%v) = false", k)
		}
	}
	if _, ok := s.Get(Key{Experiment: "judge", Backend: "deepseek-sim", Seed: 33, FileHash: "absent"}); ok {
		t.Fatal("Get on absent key reported a record")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen with defaults: segments persist, everything still found.
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Len() != n || s2.Dropped() != 0 {
		t.Fatalf("reopened Len=%d Dropped=%d, want %d/0", s2.Len(), s2.Dropped(), n)
	}
	if rec, ok := s2.Get(Key{Experiment: "judge", Backend: "deepseek-sim", Seed: 33, FileHash: "h007"}); !ok || rec.Name != "t-h007" {
		t.Fatalf("reopened Get = %+v, %v", rec, ok)
	}
}

func TestIdenticalRePutAgainstSealedRecordIsNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "st.jsonl")
	s, err := OpenWith(path, sealEvery)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	rec := mkrec("judge", "deepseek-sim", 33, "h1", "valid")
	if err := s.Put(rec); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := s.Put(rec); err != nil {
		t.Fatalf("re-put: %v", err)
	}
	st := s.Stats()
	if st.ActiveLines != 0 || st.ActiveBytes != 0 {
		t.Fatalf("identical re-put against sealed record grew the active segment: %+v", st)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestLastWriteWinsAcrossSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "st.jsonl")
	s, err := OpenWith(path, sealEvery)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.Put(mkrec("judge", "deepseek-sim", 33, "h1", "invalid")); err != nil {
		t.Fatalf("put v1: %v", err)
	}
	if err := s.Put(mkrec("judge", "deepseek-sim", 33, "h1", "valid")); err != nil {
		t.Fatalf("put v2: %v", err)
	}
	k := Key{Experiment: "judge", Backend: "deepseek-sim", Seed: 33, FileHash: "h1"}
	if rec, ok := s.Get(k); !ok || rec.Verdict != "valid" {
		t.Fatalf("Get = %+v, %v; want superseding record", rec, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if rec, ok := s2.Get(k); !ok || rec.Verdict != "valid" {
		t.Fatalf("reopened Get = %+v, %v; want superseding record", rec, ok)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1", s2.Len())
	}
}

func TestTornTailInActiveSegmentWithSealedSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "st.jsonl")
	s, err := OpenWith(path, sealEvery)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.Put(mkrec("judge", "deepseek-sim", 33, "h1", "valid")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Crash signature: an append torn mid-record, no trailing newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("reopen raw: %v", err)
	}
	if _, err := f.WriteString(`{"experiment":"judge","backend":"deepseek-s`); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 1 || s2.Dropped() != 1 {
		t.Fatalf("Len=%d Dropped=%d, want 1/1", s2.Len(), s2.Dropped())
	}
	if _, ok := s2.Get(Key{Experiment: "judge", Backend: "deepseek-sim", Seed: 33, FileHash: "h1"}); !ok {
		t.Fatal("sealed record lost after torn active tail")
	}
	// The terminated tail must not swallow the next append.
	if err := s2.Put(mkrec("judge", "deepseek-sim", 33, "h2", "valid")); err != nil {
		t.Fatalf("put after recovery: %v", err)
	}
	if err := s2.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	s3, err := Open(path)
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	defer s3.Close()
	if s3.Len() != 2 {
		t.Fatalf("final Len = %d, want 2", s3.Len())
	}
}

func TestPartialSealLeavesOnlyTmp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "st.jsonl")
	s, err := OpenWith(path, Options{SealBytes: -1, MergeThreshold: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.Put(mkrec("judge", "deepseek-sim", 33, "h1", "valid")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// A seal interrupted before its rename leaves the records in the
	// active file and a half-written tmp beside it.
	tmp := segPath(path, 1) + ".tmp"
	if err := os.WriteFile(tmp, []byte(`{"experiment":"judge","backend":"deep`), 0o644); err != nil {
		t.Fatalf("write tmp: %v", err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("tmp leftover not cleaned: stat err = %v", err)
	}
	if s2.Len() != 1 || s2.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d, want 1/0", s2.Len(), s2.Dropped())
	}
	if len(segFiles(t, path)) != 0 {
		t.Fatalf("unexpected sealed segments: %v", segFiles(t, path))
	}
}

// writeSegmentFile hand-builds a sealed segment: sorted JSONL records
// under the given sequence number, as a crashed process would have
// left it after a completed rename.
func writeSegmentFile(t *testing.T, storePath string, seq uint64, recs ...Record) {
	t.Helper()
	var b strings.Builder
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(segPath(storePath, seq), []byte(b.String()), 0o644); err != nil {
		t.Fatalf("write segment: %v", err)
	}
}

func TestInterruptedMergeRecovers(t *testing.T) {
	// A merge of seg-1 + seg-2 renames its output over seg-2 (the
	// newest input) and then removes seg-1. Crash between those steps:
	// seg-2 holds the merged world, seg-1 holds stale duplicates, and
	// a tmp of a second interrupted attempt lies around too.
	path := filepath.Join(t.TempDir(), "st.jsonl")
	writeSegmentFile(t, path, 1,
		mkrec("judge", "deepseek-sim", 33, "a", "invalid"), // superseded in seg-2
		mkrec("judge", "deepseek-sim", 33, "b", "valid"),   // duplicated in seg-2
	)
	writeSegmentFile(t, path, 2,
		mkrec("judge", "deepseek-sim", 33, "a", "valid"),
		mkrec("judge", "deepseek-sim", 33, "b", "valid"),
		mkrec("judge", "deepseek-sim", 33, "c", "valid"),
	)
	tmp := segPath(path, 2) + ".tmp"
	if err := os.WriteFile(tmp, []byte("{half a merge"), 0o644); err != nil {
		t.Fatalf("write tmp: %v", err)
	}

	s, err := Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("merge tmp not cleaned: stat err = %v", err)
	}
	if s.Len() != 3 || s.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d, want 3/0", s.Len(), s.Dropped())
	}
	if rec, ok := s.Get(Key{Experiment: "judge", Backend: "deepseek-sim", Seed: 33, FileHash: "a"}); !ok || rec.Verdict != "valid" {
		t.Fatalf("stale segment shadowed the merged record: %+v, %v", rec, ok)
	}

	// Compact folds the leftovers away entirely.
	removed, err := s.Compact()
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if removed != 2 { // 5 physical lines, 3 live keys
		t.Fatalf("removed = %d, want 2", removed)
	}
	if left := segFiles(t, path); len(left) != 0 {
		t.Fatalf("segments survived Compact: %v", left)
	}
}

func TestLargeRecordsAcrossSegmentBoundaries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "st.jsonl")
	s, err := OpenWith(path, Options{SealBytes: 1, MergeThreshold: -1, SparseInterval: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Each record carries a >64KiB response: bigger than the readers'
	// buffer size and bufio.Scanner's default token cap.
	big := make([]string, 4)
	for i := range big {
		big[i] = strings.Repeat(fmt.Sprintf("chunk-%d ", i), 10000) // ~80KiB
		rec := mkrec("judge", "deepseek-sim", 33, fmt.Sprintf("big%d", i), "valid")
		rec.Response = big[i]
		if err := s.Put(rec); err != nil {
			t.Fatalf("put big %d: %v", i, err)
		}
	}
	if got := s.Stats().SegmentCount(); got != len(big) {
		t.Fatalf("SegmentCount = %d, want %d", got, len(big))
	}
	for i := range big {
		k := Key{Experiment: "judge", Backend: "deepseek-sim", Seed: 33, FileHash: fmt.Sprintf("big%d", i)}
		rec, ok := s.Get(k)
		if !ok || rec.Response != big[i] {
			t.Fatalf("big record %d did not round-trip through its segment", i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Len() != len(big) || s2.Dropped() != 0 {
		t.Fatalf("reopened Len=%d Dropped=%d, want %d/0", s2.Len(), s2.Dropped(), len(big))
	}
	for i := range big {
		k := Key{Experiment: "judge", Backend: "deepseek-sim", Seed: 33, FileHash: fmt.Sprintf("big%d", i)}
		rec, ok := s2.Get(k)
		if !ok || rec.Response != big[i] {
			t.Fatalf("big record %d lost across reopen", i)
		}
	}
}

func TestBackgroundMergeCoalescesSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "st.jsonl")
	s, err := OpenWith(path, Options{SealBytes: 1, MergeThreshold: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		if err := s.Put(mkrec("judge", "deepseek-sim", 33, fmt.Sprintf("h%d", i), "valid")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil { // waits for the in-flight merge
		t.Fatalf("close: %v", err)
	}
	if left := segFiles(t, path); len(left) >= n {
		t.Fatalf("merge never coalesced: %d segment files for %d seals", len(left), n)
	}
	for _, p := range segFiles(t, path) {
		if strings.HasSuffix(p, ".tmp") {
			t.Fatalf("tmp file survived Close: %s", p)
		}
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Len() != n || s2.Dropped() != 0 {
		t.Fatalf("reopened Len=%d Dropped=%d, want %d/0", s2.Len(), s2.Dropped(), n)
	}
	for i := 0; i < n; i++ {
		if _, ok := s2.Get(Key{Experiment: "judge", Backend: "deepseek-sim", Seed: 33, FileHash: fmt.Sprintf("h%d", i)}); !ok {
			t.Fatalf("record h%d lost in merge", i)
		}
	}
}

func TestLegacyMigrationSealsOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "st.jsonl")
	// A pre-segmentation store: plain single JSONL file, never sealed.
	s, err := OpenWith(path, Options{SealBytes: -1, MergeThreshold: -1})
	if err != nil {
		t.Fatalf("open legacy: %v", err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.Put(mkrec("judge", "deepseek-sim", 33, fmt.Sprintf("h%02d", i), "valid")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if len(segFiles(t, path)) != 0 {
		t.Fatal("legacy store grew segments")
	}

	// First segmented open migrates: the oversized active file seals.
	s2, err := OpenWith(path, Options{SealBytes: 1, MergeThreshold: -1})
	if err != nil {
		t.Fatalf("migrating open: %v", err)
	}
	st := s2.Stats()
	if st.SegmentCount() != 1 || st.ActiveRecords != 0 {
		t.Fatalf("migration did not seal: %+v", st)
	}
	if s2.Len() != n {
		t.Fatalf("Len = %d, want %d", s2.Len(), n)
	}
	for i := 0; i < n; i++ {
		if _, ok := s2.Get(Key{Experiment: "judge", Backend: "deepseek-sim", Seed: 33, FileHash: fmt.Sprintf("h%02d", i)}); !ok {
			t.Fatalf("record h%02d lost in migration", i)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// And a plain default Open still reads the migrated layout.
	s3, err := Open(path)
	if err != nil {
		t.Fatalf("post-migration open: %v", err)
	}
	defer s3.Close()
	if s3.Len() != n || s3.Dropped() != 0 {
		t.Fatalf("post-migration Len=%d Dropped=%d, want %d/0", s3.Len(), s3.Dropped(), n)
	}
}

func TestScanFiltersAndStreams(t *testing.T) {
	path := filepath.Join(t.TempDir(), "st.jsonl")
	s, err := OpenWith(path, Options{SealBytes: 1, MergeThreshold: -1, SparseInterval: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	put := func(exp, backend string, seed uint64, hash string, unix int64) {
		rec := mkrec(exp, backend, seed, hash, "valid")
		rec.Unix = unix
		if err := s.Put(rec); err != nil {
			t.Fatalf("put %s/%s/%s: %v", exp, backend, hash, err)
		}
	}
	put("judge", "deepseek-sim", 33, "a", 100)
	put("judge", "deepseek-sim", 33, "b", 200)
	put("judge", "deepseek-sim", 33, "c", 300)
	put("judge", "gpt-sim", 33, "a", 100)
	put("judge", "deepseek-sim", 44, "a", 100)
	put("panel", "deepseek-sim", 33, "a", 100)
	// One record superseded across active/segment: last write wins.
	put("judge", "deepseek-sim", 33, "b", 250)

	collect := func(f Filter) []Record {
		var out []Record
		if err := s.Scan(f, func(rec Record) bool {
			out = append(out, rec)
			return true
		}); err != nil {
			t.Fatalf("scan %+v: %v", f, err)
		}
		return out
	}

	seed := uint64(33)
	got := collect(Filter{Experiment: "judge", Backend: "deepseek-sim", Seed: &seed})
	if len(got) != 3 {
		t.Fatalf("full prefix scan returned %d records, want 3", len(got))
	}
	for i, want := range []string{"a", "b", "c"} {
		if got[i].FileHash != want {
			t.Fatalf("scan order: got[%d].FileHash = %q, want %q", i, got[i].FileHash, want)
		}
	}
	if got[1].Unix != 250 {
		t.Fatalf("superseded record leaked through scan: Unix = %d, want 250", got[1].Unix)
	}

	if got := collect(Filter{Experiment: "judge", Backend: "deepseek-sim"}); len(got) != 4 {
		t.Fatalf("backend scan returned %d records, want 4 (both seeds)", len(got))
	}
	if got := collect(Filter{Experiment: "judge"}); len(got) != 5 {
		t.Fatalf("experiment scan returned %d records, want 5", len(got))
	}
	if got := collect(Filter{}); len(got) != 6 {
		t.Fatalf("unfiltered scan returned %d records, want 6", len(got))
	}
	if got := collect(Filter{Experiment: "judge", Backend: "deepseek-sim", Seed: &seed, Since: 150, Until: 260}); len(got) != 1 || got[0].FileHash != "b" {
		t.Fatalf("time-windowed scan = %+v, want just b", got)
	}

	// Early stop: yield=false ends the scan without error.
	count := 0
	if err := s.Scan(Filter{}, func(Record) bool { count++; return count < 2 }); err != nil {
		t.Fatalf("early-stop scan: %v", err)
	}
	if count != 2 {
		t.Fatalf("early-stop yielded %d records, want 2", count)
	}

	// Records keeps its pre-segmentation contract: full prefix,
	// FileHash-sorted.
	recs := s.Records("judge", "deepseek-sim", 33)
	if len(recs) != 3 || recs[0].FileHash != "a" || recs[2].FileHash != "c" {
		t.Fatalf("Records = %+v, want a,b,c", recs)
	}
}

func TestCompactFoldsSegmentsIntoCanonicalFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "st.jsonl")
	s, err := OpenWith(path, sealEvery)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	const n = 5
	for i := 0; i < n; i++ {
		if err := s.Put(mkrec("judge", "deepseek-sim", 33, fmt.Sprintf("h%d", i), "valid")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Supersede one record so Compact has a duplicate to drop.
	if err := s.Put(mkrec("judge", "deepseek-sim", 33, "h0", "invalid")); err != nil {
		t.Fatalf("supersede: %v", err)
	}
	removed, err := s.Compact()
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if left := segFiles(t, path); len(left) != 0 {
		t.Fatalf("segments survived Compact: %v", left)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read compacted: %v", err)
	}
	if lines := strings.Count(string(data), "\n"); lines != n {
		t.Fatalf("compacted file has %d lines, want %d", lines, n)
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	if rec, ok := s.Get(Key{Experiment: "judge", Backend: "deepseek-sim", Seed: 33, FileHash: "h0"}); !ok || rec.Verdict != "invalid" {
		t.Fatalf("post-compact Get = %+v, %v", rec, ok)
	}
	// Post-compact appends land in the compacted file.
	if err := s.Put(mkrec("judge", "deepseek-sim", 33, "h9", "valid")); err != nil {
		t.Fatalf("put after compact: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Len() != n+1 || s2.Dropped() != 0 {
		t.Fatalf("reopened Len=%d Dropped=%d, want %d/0", s2.Len(), s2.Dropped(), n+1)
	}
}
