package store

// Sealed segments: the immutable half of the segmented log (see the
// package comment and docs/STORE.md). A segment is a JSONL file of
// records sorted by key with exactly one line per key, written once
// (by a seal or a merge) and never modified. Point lookups go through
// a per-segment Bloom filter (fast negative) and a sparse in-memory
// index holding every indexInterval-th key with its byte offset: a
// lookup binary-searches the index and reads one bounded block of the
// file, never the whole segment. Range scans binary-search the same
// index for their start block and stream forward.
//
// Durability: a segment is written to a ".tmp" sibling, fsynced,
// renamed into place, and the directory fsynced — a crash mid-seal or
// mid-merge leaves only a tmp file, which Open removes. Once a
// segment file exists under its final name it is complete.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// indexInterval is the default sparse-index granularity: one in-memory
// index entry per this many records, so a point lookup reads at most
// one interval-sized block from disk.
const defaultSparseInterval = 64

// compareKey orders keys by (Experiment, Backend, Seed, FileHash) —
// the canonical segment sort order. A fixed (experiment, backend,
// seed) prefix therefore owns one contiguous key range per segment,
// which is what makes prefix scans a single bounded range read.
func compareKey(a, b Key) int {
	if a.Experiment != b.Experiment {
		return strings.Compare(a.Experiment, b.Experiment)
	}
	if a.Backend != b.Backend {
		return strings.Compare(a.Backend, b.Backend)
	}
	if a.Seed != b.Seed {
		if a.Seed < b.Seed {
			return -1
		}
		return 1
	}
	return strings.Compare(a.FileHash, b.FileHash)
}

func lessKey(a, b Key) bool { return compareKey(a, b) < 0 }

// keyHash returns two independent 64-bit hashes of a key for the
// Bloom filter's double hashing.
func keyHash(k Key) (uint64, uint64) {
	h := fnv.New64a()
	_, _ = io.WriteString(h, k.Experiment)
	_, _ = h.Write([]byte{0xff})
	_, _ = io.WriteString(h, k.Backend)
	_, _ = h.Write([]byte{0xff})
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(k.Seed >> (8 * i))
	}
	_, _ = h.Write(seed[:])
	_, _ = h.Write([]byte{0xff})
	_, _ = io.WriteString(h, k.FileHash)
	h1 := h.Sum64()
	// Murmur3 finalizer decorrelates the second hash from the first.
	h2 := h1
	h2 ^= h2 >> 33
	h2 *= 0xff51afd7ed558ccd
	h2 ^= h2 >> 33
	return h1, h2
}

// bloom is a fixed-size Bloom filter over key hashes: ~10 bits and 6
// probes per expected key, giving roughly a 1% false-positive rate.
// It answers "definitely absent" without touching the segment file,
// which keeps fresh-key appends from paying a disk read per Put once
// sealed segments exist.
type bloom struct {
	bits []uint64
	mask uint64
}

const bloomProbes = 6

// newBloom sizes a filter for n expected keys (minimum 1024 bits,
// rounded up to a power of two so probe positions reduce by mask).
func newBloom(n int) *bloom {
	bits := uint64(n) * 10
	if bits < 1024 {
		bits = 1024
	}
	size := uint64(1)
	for size < bits {
		size <<= 1
	}
	return &bloom{bits: make([]uint64, size/64), mask: size - 1}
}

func (b *bloom) add(h1, h2 uint64) {
	for i := uint64(0); i < bloomProbes; i++ {
		p := (h1 + i*h2) & b.mask
		b.bits[p/64] |= 1 << (p % 64)
	}
}

func (b *bloom) may(h1, h2 uint64) bool {
	for i := uint64(0); i < bloomProbes; i++ {
		p := (h1 + i*h2) & b.mask
		if b.bits[p/64]&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}

// sparseEntry is one sparse-index sample: the key starting a block and
// the block's byte offset in the segment file.
type sparseEntry struct {
	key Key
	off int64
}

// segment is one sealed, sorted, immutable segment file plus its
// in-memory lookup structures. Reads use ReadAt (stateless pread), so
// a segment is safe for concurrent lookups without its own lock.
type segment struct {
	path   string
	seq    uint64
	f      *os.File
	size   int64 // bytes of record data (== end of last line)
	count  int   // physical record lines
	sparse []sparseEntry
	filter *bloom
}

// segPath renders the segment file name for a sequence number:
// "<store>.seg-NNNNNN" beside the active file.
func segPath(storePath string, seq uint64) string {
	return fmt.Sprintf("%s.seg-%06d", storePath, seq)
}

// parseSegSeq extracts the sequence number from a segment file name,
// reporting false for tmp files and foreign names.
func parseSegSeq(storePath, name string) (uint64, bool) {
	suffix, ok := strings.CutPrefix(name, storePath+".seg-")
	if !ok || suffix == "" {
		return 0, false
	}
	for _, c := range suffix {
		if c < '0' || c > '9' {
			return 0, false
		}
	}
	seq, err := strconv.ParseUint(suffix, 10, 64)
	return seq, err == nil
}

// listSegments globs the directory for the store's sealed segments,
// removing stray ".tmp" leftovers of interrupted seals and merges
// (they are incomplete by construction — a finished segment was
// renamed to its final name before the writer returned). Returned
// paths are ordered by sequence number, oldest first.
func listSegments(storePath string) (paths []string, seqs []uint64, err error) {
	matches, err := filepath.Glob(storePath + ".seg-*")
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(matches)
	for _, m := range matches {
		if strings.HasSuffix(m, ".tmp") {
			// Interrupted seal or merge: the tmp was never renamed, so
			// its records are either still in the active file (seal) or
			// still in the input segments (merge). Safe to delete.
			if rmErr := os.Remove(m); rmErr != nil && !os.IsNotExist(rmErr) {
				return nil, nil, rmErr
			}
			continue
		}
		seq, ok := parseSegSeq(storePath, m)
		if !ok {
			continue
		}
		paths = append(paths, m)
		seqs = append(seqs, seq)
	}
	return paths, seqs, nil
}

// readLine reads one newline-terminated line without a length ceiling
// (records can exceed bufio.Scanner's 64KiB token cap). The returned
// slice excludes the terminator; io.EOF surfaces after the last line.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadBytes('\n')
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	return line, err
}

// get is the point lookup: Bloom filter, then binary search over the
// sparse index for the block that could hold k, then one bounded
// block read — never a full-segment scan.
func (sg *segment) get(k Key) (Record, bool, error) {
	h1, h2 := keyHash(k)
	if !sg.filter.may(h1, h2) {
		return Record{}, false, nil
	}
	// First sparse entry strictly greater than k bounds the block; the
	// entry before it starts the block. i == 0 means k sorts before the
	// segment's smallest key.
	i := sort.Search(len(sg.sparse), func(i int) bool { return lessKey(k, sg.sparse[i].key) })
	if i == 0 {
		return Record{}, false, nil
	}
	start := sg.sparse[i-1].off
	end := sg.size
	if i < len(sg.sparse) {
		end = sg.sparse[i].off
	}
	r := bufio.NewReader(io.NewSectionReader(sg.f, start, end-start))
	for {
		line, err := readLine(r)
		if len(line) > 0 {
			var rec Record
			if uerr := json.Unmarshal(line, &rec); uerr == nil {
				switch c := compareKey(rec.Key(), k); {
				case c == 0:
					return rec, true, nil
				case c > 0:
					return Record{}, false, nil // sorted: passed it
				}
			}
		}
		if err == io.EOF {
			return Record{}, false, nil
		}
		if err != nil {
			return Record{}, false, fmt.Errorf("store: reading %s: %w", sg.path, err)
		}
	}
}

// stream is a sequential cursor over records in key order, the common
// currency of the k-way merges behind Open's accounting, Scan,
// Compact, and segment merging.
type stream interface {
	// peek returns the current record; ok is false when exhausted.
	peek() (rec Record, ok bool)
	// advance moves to the next record.
	advance() error
}

// segStream walks a segment file from a byte offset. When index is
// non-nil the walk also (re)builds the segment's sparse index, Bloom
// filter, count, and size — how Open constructs lookup structures in
// the same pass that feeds the distinct-key merge. Unparsable lines
// (outside interference with a sealed file) are skipped and counted.
type segStream struct {
	sg       *segment
	r        *bufio.Reader
	off      int64 // offset of the next unread line
	cur      Record
	ok       bool
	indexing bool
	interval int
	dropped  int
}

func newSegStream(sg *segment, startOff int64, indexing bool, interval int) (*segStream, error) {
	if interval <= 0 {
		interval = defaultSparseInterval
	}
	size := sg.size
	if indexing {
		fi, err := sg.f.Stat()
		if err != nil {
			return nil, err
		}
		size = fi.Size()
		sg.count = 0
		sg.sparse = nil
		// Size the Bloom filter from the file size (~10 bits per
		// conservatively-small 100-byte record); oversizing only lowers
		// the false-positive rate.
		sg.filter = newBloom(int(size/100) + 1)
	}
	ss := &segStream{
		sg:       sg,
		r:        bufio.NewReaderSize(io.NewSectionReader(sg.f, startOff, size-startOff), 64*1024),
		off:      startOff,
		indexing: indexing,
		interval: interval,
	}
	return ss, ss.advance()
}

func (ss *segStream) peek() (Record, bool) { return ss.cur, ss.ok }

func (ss *segStream) advance() error {
	for {
		lineStart := ss.off
		line, err := readLine(ss.r)
		ss.off += int64(len(line))
		if err == nil {
			ss.off++ // the newline
		}
		if len(line) > 0 {
			var rec Record
			if uerr := json.Unmarshal(line, &rec); uerr != nil || rec.FileHash == "" || rec.Experiment == "" {
				ss.dropped++
			} else {
				if ss.indexing {
					if ss.sg.count%ss.interval == 0 {
						ss.sg.sparse = append(ss.sg.sparse, sparseEntry{key: rec.Key(), off: lineStart})
					}
					h1, h2 := keyHash(rec.Key())
					ss.sg.filter.add(h1, h2)
					ss.sg.count++
					ss.sg.size = ss.off
				}
				ss.cur, ss.ok = rec, true
				return nil
			}
		}
		if err == io.EOF {
			ss.cur, ss.ok = Record{}, false
			return nil
		}
		if err != nil {
			return fmt.Errorf("store: reading %s: %w", ss.sg.path, err)
		}
	}
}

// memStream walks an in-memory record map in sorted key order — the
// active segment's face in a merge.
type memStream struct {
	recs map[Key]Record
	keys []Key
	i    int
}

func newMemStream(recs map[Key]Record) *memStream {
	keys := make([]Key, 0, len(recs))
	for k := range recs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessKey(keys[i], keys[j]) })
	return &memStream{recs: recs, keys: keys}
}

func (ms *memStream) peek() (Record, bool) {
	if ms.i >= len(ms.keys) {
		return Record{}, false
	}
	return ms.recs[ms.keys[ms.i]], true
}

func (ms *memStream) advance() error { ms.i++; return nil }

// mergeStreams k-way-merges sorted streams with last-write-wins
// resolution: streams are ordered oldest first, and when several
// streams hold the same key the newest stream's record is emitted and
// the older duplicates are consumed silently. emit receives the
// winning record, the index of the stream it came from, and the
// indexes of every stream that held the key (winner included, reused
// buffer — copy to retain); returning false stops the merge early.
func mergeStreams(streams []stream, emit func(rec Record, winner int, holders []int) bool) error {
	holders := make([]int, 0, len(streams))
	for {
		// Find the minimal key among stream heads and every stream
		// holding it. Stream counts are small (segments + active), so a
		// linear select beats heap bookkeeping.
		holders = holders[:0]
		var minKey Key
		for i, st := range streams {
			rec, ok := st.peek()
			if !ok {
				continue
			}
			k := rec.Key()
			if len(holders) == 0 || lessKey(k, minKey) {
				holders = holders[:0]
				minKey = k
			} else if compareKey(k, minKey) != 0 {
				continue
			}
			holders = append(holders, i)
		}
		if len(holders) == 0 {
			return nil
		}
		winner := holders[len(holders)-1] // newest stream wins
		rec, _ := streams[winner].peek()
		keep := emit(rec, winner, holders)
		for _, i := range holders {
			if err := streams[i].advance(); err != nil {
				return err
			}
		}
		if !keep {
			return nil
		}
	}
}

// segWriter writes one segment file: records must arrive in strictly
// ascending key order (one line per key). The sparse index and Bloom
// filter are built while writing, so a freshly sealed or merged
// segment needs no rescan. The write goes to a ".tmp" sibling;
// finish fsyncs it, renames it into place, and fsyncs the directory —
// the crash contract sealed segments rely on.
type segWriter struct {
	tmpPath  string
	path     string
	f        *os.File
	w        *bufio.Writer
	seg      *segment
	interval int
	fault    func(op string) error // nil outside chaos runs
}

func newSegWriter(storePath string, seq uint64, expected, interval int, fault func(op string) error) (*segWriter, error) {
	if interval <= 0 {
		interval = defaultSparseInterval
	}
	path := segPath(storePath, seq)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &segWriter{
		tmpPath:  tmp,
		path:     path,
		f:        f,
		w:        bufio.NewWriterSize(f, 256*1024),
		seg:      &segment{path: path, seq: seq, f: f, filter: newBloom(expected)},
		interval: interval,
		fault:    fault,
	}, nil
}

// faultOp consults the injected fault hook for one file operation.
func (sw *segWriter) faultOp(op string) error {
	if sw.fault == nil {
		return nil
	}
	return sw.fault(op)
}

func (sw *segWriter) add(rec Record) error {
	if err := sw.faultOp("write"); err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if sw.seg.count%sw.interval == 0 {
		sw.seg.sparse = append(sw.seg.sparse, sparseEntry{key: rec.Key(), off: sw.seg.size})
	}
	h1, h2 := keyHash(rec.Key())
	sw.seg.filter.add(h1, h2)
	if _, err := sw.w.Write(line); err != nil {
		return err
	}
	if err := sw.w.WriteByte('\n'); err != nil {
		return err
	}
	sw.seg.size += int64(len(line)) + 1
	sw.seg.count++
	return nil
}

// finish makes the segment durable and visible: flush, fsync, rename
// to the final name, fsync the directory. The write handle is kept as
// the segment's read handle (the rename moves the name, not the
// inode). On error the tmp file is removed.
func (sw *segWriter) finish() (*segment, error) {
	fail := func(err error) (*segment, error) {
		sw.f.Close()
		os.Remove(sw.tmpPath)
		return nil, err
	}
	if err := sw.faultOp("write"); err != nil {
		return fail(err)
	}
	if err := sw.w.Flush(); err != nil {
		return fail(err)
	}
	if err := sw.faultOp("sync"); err != nil {
		return fail(err)
	}
	if err := sw.f.Sync(); err != nil {
		return fail(err)
	}
	if err := sw.faultOp("rename"); err != nil {
		return fail(err)
	}
	if err := os.Rename(sw.tmpPath, sw.path); err != nil {
		return fail(err)
	}
	if err := syncDir(sw.path); err != nil {
		sw.f.Close()
		return nil, err
	}
	return sw.seg, nil
}

// abort discards a partially-written segment.
func (sw *segWriter) abort() {
	sw.f.Close()
	os.Remove(sw.tmpPath)
}

// syncDir fsyncs the directory containing path, making a just-renamed
// or just-removed entry durable — the step the pre-segmented Compact
// skipped (its rename could evaporate in a crash even though the temp
// file's contents were synced).
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// openSegment opens an existing segment file for reading. Lookup
// structures are built by the caller's indexing segStream pass.
func openSegment(path string, seq uint64) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &segment{path: path, seq: seq, f: f}, nil
}
