package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
)

// opHook builds a FaultHook failing the named ops after skip clean
// calls, mimicking a disk that degrades mid-run.
func opHook(fail string, skip int) func(op string) error {
	n := 0
	return func(op string) error {
		if op != fail {
			return nil
		}
		n++
		if n <= skip {
			return nil
		}
		return fmt.Errorf("%w: %s", fault.ErrInjected, op)
	}
}

func TestFaultWritePoisonsStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "st.jsonl")
	s, err := OpenWith(path, Options{MergeThreshold: -1, FaultHook: opHook("write", 2)})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.Put(mkrec("judge", "b", 1, "h001", "valid")); err != nil {
		t.Fatalf("put 1: %v", err)
	}
	if err := s.Put(mkrec("judge", "b", 1, "h002", "valid")); err != nil {
		t.Fatalf("put 2: %v", err)
	}
	err = s.Put(mkrec("judge", "b", 1, "h003", "valid"))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("put 3 = %v, want injected failure", err)
	}
	// The store is poisoned: every later write-path call returns the
	// remembered error, including Close.
	if err := s.Put(mkrec("judge", "b", 1, "h004", "valid")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("put after poison = %v, want injected failure", err)
	}
	if err := s.Flush(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Flush after poison = %v, want injected failure", err)
	}
	if err := s.Close(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Close after poison = %v, want injected failure", err)
	}
}

func TestFaultFlushSurfacesOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "st.jsonl")
	// Two puts draw the first two "write" checks; the third — Close's
	// final flush — fails, and Close must surface it.
	s, err := OpenWith(path, Options{MergeThreshold: -1, FaultHook: opHook("write", 2)})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.Put(mkrec("judge", "b", 1, "h001", "valid")); err != nil {
		t.Fatalf("put 1: %v", err)
	}
	if err := s.Put(mkrec("judge", "b", 1, "h002", "valid")); err != nil {
		t.Fatalf("put 2: %v", err)
	}
	if err := s.Close(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Close = %v, want injected flush failure", err)
	}
}

func TestFaultSealFailurePoisons(t *testing.T) {
	for _, op := range []string{"sync", "rename"} {
		t.Run(op, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "st.jsonl")
			s, err := OpenWith(path, Options{SealBytes: 1, MergeThreshold: -1, FaultHook: opHook(op, 0)})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			err = s.Put(mkrec("judge", "b", 1, "h001", "valid"))
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("put (seals) = %v, want injected failure", err)
			}
			if !strings.Contains(err.Error(), "seal") {
				t.Fatalf("put error %q does not mention the seal", err)
			}
			// The failed seal must not leave a published segment behind.
			if segs := segFiles(t, path); len(segs) != 0 {
				t.Fatalf("failed seal published segments: %v", segs)
			}
			if err := s.Close(); !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("Close = %v, want remembered injected failure", err)
			}
		})
	}
}

func TestFaultCompactFailsCleanly(t *testing.T) {
	for _, op := range []string{"sync", "rename"} {
		t.Run(op, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "st.jsonl")
			s, err := OpenWith(path, Options{MergeThreshold: -1, FaultHook: opHook(op, 0)})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			for i := 0; i < 5; i++ {
				if err := s.Put(mkrec("judge", "b", 1, fmt.Sprintf("h%03d", i), "valid")); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
			}
			if _, err := s.Compact(); !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("Compact = %v, want injected failure", err)
			}
			// A failed compact must leave the store readable: the old file
			// is still in place and lookups still answer.
			if s.Len() != 5 {
				t.Fatalf("Len after failed compact = %d, want 5", s.Len())
			}
			if _, ok := s.Get(Key{Experiment: "judge", Backend: "b", Seed: 1, FileHash: "h002"}); !ok {
				t.Fatalf("Get after failed compact missed a live record")
			}
		})
	}
}

// TestFaultHookFromInjector wires a seeded fault.Injector through
// fault.Hook — the exact composition the daemon's -fault flag uses —
// and checks the store fails on the scheduled operation.
func TestFaultHookFromInjector(t *testing.T) {
	inj := fault.New(42, &fault.Rule{Point: "store.write", Kind: fault.Err, Every: 3})
	path := filepath.Join(t.TempDir(), "st.jsonl")
	s, err := OpenWith(path, Options{MergeThreshold: -1, FaultHook: fault.Hook(inj, "store")})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.Put(mkrec("judge", "b", 1, "h001", "valid")); err != nil {
		t.Fatalf("put 1: %v", err)
	}
	if err := s.Put(mkrec("judge", "b", 1, "h002", "valid")); err != nil {
		t.Fatalf("put 2: %v", err)
	}
	if err := s.Put(mkrec("judge", "b", 1, "h003", "valid")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("put 3 = %v, want injected failure (every 3rd write)", err)
	}
	if got := inj.InjectedTotal(); got != 1 {
		t.Fatalf("InjectedTotal = %d, want 1", got)
	}
}
