package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testRecord(exp, hash, verdict string) Record {
	return Record{
		Experiment: exp, Backend: "deepseek-sim", Seed: 33,
		FileHash: hash, Name: "t_" + hash + ".c",
		JudgeRan: true, Verdict: verdict, Valid: verdict == "valid",
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		testRecord("direct-probing", HashSource("int main(){}"), "valid"),
		testRecord("direct-probing", HashSource("bad code"), "invalid"),
		{Experiment: "pipeline/agent-direct", Backend: "b", Seed: 1, FileHash: "abc",
			CompileRan: true, CompileOK: true, ExecRan: true, ExecOK: false, Valid: false},
	}
	for _, rec := range recs {
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(recs))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(recs) || s2.Dropped() != 0 {
		t.Fatalf("reopened: Len=%d Dropped=%d, want %d/0", s2.Len(), s2.Dropped(), len(recs))
	}
	for _, want := range recs {
		got, ok := s2.Get(want.Key())
		if !ok {
			t.Fatalf("record %+v missing after reopen", want.Key())
		}
		if got != want {
			t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestPutIdempotentAndLastWriteWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord("p", "h1", "valid")
	for i := 0; i < 5; i++ {
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	changed := rec
	changed.Verdict = "invalid"
	changed.Valid = false
	if err := s.Put(changed); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 2 {
		t.Errorf("log has %d lines, want 2 (identical re-puts must not append)", lines)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.Get(rec.Key())
	if !ok || got.Verdict != "invalid" {
		t.Errorf("last write did not win: got %+v", got)
	}
}

// TestCorruptedAndTruncatedRecovery: garbage lines and a torn final
// line (the crash signature of an interrupted append) are skipped and
// counted; intact records before AND after the damage stay readable,
// and the recovered store accepts appends that survive a reopen.
func TestCorruptedAndTruncatedRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	good1 := `{"experiment":"p","backend":"b","seed":1,"file_hash":"h1","judge_ran":true,"verdict":"valid","valid":true}`
	good2 := `{"experiment":"p","backend":"b","seed":1,"file_hash":"h2","judge_ran":true,"verdict":"invalid"}`
	content := good1 + "\n" +
		"not json at all\n" +
		`{"experiment":"","backend":"b"}` + "\n" + // parsable but keyless
		good2 + "\n" +
		`{"experiment":"p","backend":"b","seed":1,"file_ha` // torn tail, no newline
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if s.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", s.Dropped())
	}
	for _, h := range []string{"h1", "h2"} {
		if _, ok := s.Get(Key{Experiment: "p", Backend: "b", Seed: 1, FileHash: h}); !ok {
			t.Errorf("record %s lost to recovery", h)
		}
	}
	// The recovered store keeps appending valid lines.
	if err := s.Put(testRecord("p", "h3", "valid")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(testRecord("p", "h3", "valid").Key()); !ok {
		t.Error("append after recovery did not survive reopen")
	}
	if s2.Len() != 3 {
		t.Errorf("after recovery+append: Len = %d, want 3", s2.Len())
	}
}

func TestHashSourceDistinguishesContent(t *testing.T) {
	a, b := HashSource("int main(){return 0;}"), HashSource("int main(){return 1;}")
	if a == b {
		t.Fatal("different sources hashed equal")
	}
	if a != HashSource("int main(){return 0;}") {
		t.Fatal("hash not deterministic")
	}
	if len(a) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(a))
	}
}

// TestVotesRoundTripAndRecords: panel records carry their per-member
// votes through persistence, and Records returns one configuration's
// live records in deterministic (file-hash) order.
func TestVotesRoundTripAndRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(hash, verdict, votes string) Record {
		rec := testRecord("panel/direct", hash, verdict)
		rec.Votes = votes
		return rec
	}
	want := []Record{
		mk("aaa", "valid", "majority m0=valid m1=valid m2=invalid"),
		mk("bbb", "invalid", "majority m0=invalid m1=error m2=invalid"),
	}
	// Interleave a record from another configuration; Records must
	// filter it out.
	other := testRecord("panel/direct", "ccc", "valid")
	other.Backend = "other-backend"
	for _, rec := range []Record{want[1], other, want[0]} {
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Records("panel/direct", "deepseek-sim", 33)
	if len(got) != 2 {
		t.Fatalf("Records returned %d records, want 2", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v (sorted by hash)", i, got[i], want[i])
		}
	}
	if _, err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	rec, ok := s2.Get(want[0].Key())
	if !ok || rec.Votes != want[0].Votes {
		t.Errorf("votes lost through Compact: %+v", rec)
	}
}

// TestLargeRecordRoundTrip: a record whose response exceeds
// bufio.Scanner's 64KiB default token cap (the old reader) must
// survive a round-trip — the reader has no line-length ceiling, so a
// stored multi-hundred-KiB transcript loads instead of silently
// failing the open or dropping as a "torn" line.
func TestLargeRecordRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	big := testRecord("serve/completions", "bighash", "valid")
	big.Response = strings.Repeat("The quick brown fox jumps over the lazy dog. ", 8192) // ~360KiB
	small := testRecord("serve/completions", "smallhash", "invalid")
	for _, rec := range []Record{big, small} {
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("Open failed on a >64KiB record: %v", err)
	}
	defer s2.Close()
	if s2.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0 (large record must not read as torn)", s2.Dropped())
	}
	got, ok := s2.Get(big.Key())
	if !ok {
		t.Fatal("large record missing after reopen")
	}
	if got.Response != big.Response {
		t.Fatalf("large response truncated: got %d bytes, want %d", len(got.Response), len(big.Response))
	}
	if _, ok := s2.Get(small.Key()); !ok {
		t.Fatal("record after the large one lost")
	}
}

// TestWriteBehindFlushAndPutAll: appends are buffered (index-visible
// immediately, file-visible after Flush), PutAll batches a whole
// shard, and the flushed bytes are identical to the pre-write-behind
// format — one compact JSON object per line, in append order.
func TestWriteBehindFlushAndPutAll(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := []Record{
		testRecord("p", "h1", "valid"),
		testRecord("p", "h2", "invalid"),
		testRecord("p", "h3", "valid"),
	}
	if err := s.PutAll(recs); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (PutAll must index immediately)", s.Len())
	}
	if data, _ := os.ReadFile(path); len(data) != 0 {
		t.Fatalf("file has %d bytes before Flush, want 0 (write-behind)", len(data))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		want.Write(line)
		want.WriteByte('\n')
	}
	if string(data) != want.String() {
		t.Fatalf("flushed bytes diverge from the per-record marshal format:\n got %q\nwant %q", data, want.String())
	}
	// Flush is idempotent and a reopen sees exactly the three records.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 3 || s2.Dropped() != 0 {
		t.Fatalf("reopen after Flush: Len=%d Dropped=%d, want 3/0", s2.Len(), s2.Dropped())
	}
}

// TestCompactDiscardsBufferedDuplicates: records still sitting in the
// write-behind buffer are captured by Compact's index rewrite; the
// re-armed writer must not append them again afterwards.
func TestCompactDiscardsBufferedDuplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord("p", "h1", "valid")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// A post-compact append still works and lands once.
	if err := s.Put(testRecord("p", "h2", "invalid")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 2 {
		t.Fatalf("file has %d lines after compact+append, want 2:\n%s", lines, data)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 || s2.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d, want 2/0", s2.Len(), s2.Dropped())
	}
}
