// Package remote implements the client side of the judging service:
// a backend that satisfies judge.LLM, judge.ContextLLM, and
// judge.BatchLLM by forwarding prompts to a running llm4vvd daemon
// over HTTP. Registered in the backend registry as "remote:<addr>",
// it lets every existing experiment — part1, part2, ablations,
// genloop, compare — run unmodified against a daemon, which is how
// one judging service absorbs the load of many worker processes.
//
// The client is built for flaky networks and busy daemons: transient
// failures (connection errors, torn response bodies, 429 overload
// rejections, 5xx) are retried under the unified resilience policy —
// jittered exponential backoff honouring the daemon's Retry-After
// hint when one comes back, including an explicit zero meaning
// "retry immediately", but never waiting past the caller's context
// deadline budget (a hint that cannot fit the remaining budget fails
// immediately instead of parking the client) — while permanent 4xx
// errors and context cancellation fail immediately. Each base
// address carries a consecutive-failure circuit breaker
// (internal/resilience): a tripped replica is skipped in favour of
// the next base until its cooldown admits a half-open probe, unless
// every breaker refuses, in which case the request proceeds anyway —
// progress beats protection. Connections are reused across requests
// via a shared keep-alive transport sized for the Runner's worker
// fan-out.
//
// The address may be a comma-separated replica list ("a:1,b:1,c:1"):
// the client sticks to one preferred replica — so its dedup/cache
// entries stay warm — and rotates to the next on connection errors
// and 5xx failures, which is how `judgebench -serve-addr` survives a
// replica dying mid-sweep with or without an llm4vv-router tier in
// front. (429 overload does not rotate: the replica is alive and its
// Retry-After hint is respected in place.) Consistent-hash routing
// across replicas is the router's job — see internal/fleet.
//
// Requests carry the fleet admission headers: WithPriority tags the
// priority class (PriorityHeader; batch calls default to bulk, the
// class routers shed first under overload) and WithClientID the
// quota identity (ClientHeader) — semantics in docs/OPERATIONS.md.
package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/trace"
)

// Defaults for New's option zero values.
const (
	DefaultRetries = 5
	DefaultBackoff = 25 * time.Millisecond
	maxBackoff     = 2 * time.Second
)

// transport is shared by every Backend so all clients in a process
// pool connections together.
var transport = &http.Transport{
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 128,
	IdleConnTimeout:     90 * time.Second,
}

// Request headers the routing tier reads; the class names are the
// values PriorityHeader carries.
const (
	// PriorityHeader carries a request's priority class to the
	// llm4vv-router admission layer: interactive requests survive
	// overload longest, bulk-sweep traffic is shed first.
	PriorityHeader = "X-LLM4VV-Priority"
	// ClientHeader names the requesting client for the router's
	// per-client admission quotas; absent, the router falls back to
	// the connection's remote address.
	ClientHeader = "X-LLM4VV-Client"

	PriorityInteractive = "interactive"
	PriorityBulk        = "bulk"
)

// Backend is a remote judging endpoint — one daemon, or a preferred-
// plus-fallback replica list. Construct with New; the zero value is
// not usable.
type Backend struct {
	bases    []string
	cur      atomic.Uint64 // index (mod len(bases)) of the preferred replica
	hc       *http.Client
	retries  int
	backoff  time.Duration
	priority string
	client   string

	policy   *resilience.Policy
	breakers []*resilience.Breaker // one per base, indexed like bases
	retried  atomic.Int64          // retry waits performed (metrics)
}

// Option configures a Backend.
type Option func(*Backend)

// WithRetries sets how many times a transient failure is retried
// before it is surfaced (so a request costs at most retries+1
// attempts). Negative values mean no retries.
func WithRetries(n int) Option { return func(b *Backend) { b.retries = n } }

// WithBackoff sets the base retry delay; attempt k waits
// backoff·2^k plus up to 50% jitter, capped at 2s, unless the daemon
// sent a longer Retry-After hint.
func WithBackoff(d time.Duration) Option { return func(b *Backend) { b.backoff = d } }

// WithHTTPClient substitutes the HTTP client (tests inject
// httptest clients; production code keeps the shared transport).
func WithHTTPClient(hc *http.Client) Option { return func(b *Backend) { b.hc = hc } }

// WithPriority stamps every request with a priority class
// (PriorityInteractive or PriorityBulk) for the router's load
// shedding; daemons ignore the header.
func WithPriority(class string) Option { return func(b *Backend) { b.priority = class } }

// WithClientID stamps every request with a client name for the
// router's per-client admission quotas.
func WithClientID(id string) Option { return func(b *Backend) { b.client = id } }

// New returns a client for the daemon at addr ("host:port" or a full
// http:// URL), or for a comma-separated replica list with failover
// across its members.
func New(addr string, opts ...Option) *Backend {
	var bases []string
	for _, a := range strings.Split(addr, ",") {
		a = strings.TrimSuffix(strings.TrimSpace(a), "/")
		if a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		bases = append(bases, a)
	}
	if len(bases) == 0 {
		bases = []string{"http://" + addr}
	}
	b := &Backend{
		bases:   bases,
		hc:      &http.Client{Transport: transport},
		retries: DefaultRetries,
		backoff: DefaultBackoff,
	}
	for _, opt := range opts {
		opt(b)
	}
	b.policy = resilience.NewPolicy(b.backoff, maxBackoff)
	b.breakers = make([]*resilience.Breaker, len(b.bases))
	for i := range b.breakers {
		b.breakers[i] = resilience.NewBreaker(resilience.BreakerConfig{})
	}
	return b
}

// Retries reports how many retry waits the client has performed —
// the series behind llm4vv_resilience_retries_total on endpoints
// fronting this client.
func (b *Backend) Retries() int64 { return b.retried.Load() }

// BreakerStates reports each base address's circuit-breaker state in
// configured order, for the llm4vv_resilience_breaker_state gauge.
func (b *Backend) BreakerStates() []resilience.BreakerStatus {
	out := make([]resilience.BreakerStatus, len(b.bases))
	for i, base := range b.bases {
		out[i] = resilience.BreakerStatus{ID: base, State: b.breakers[i].State(), Trips: b.breakers[i].Trips()}
	}
	return out
}

// Addrs reports the configured base URLs in their configured order
// (the preferred replica rotates separately).
func (b *Backend) Addrs() []string { return append([]string(nil), b.bases...) }

// pick returns the currently preferred replica's URL and the
// preference counter it was read at, for rotate.
func (b *Backend) pick() (string, uint64) {
	idx := b.cur.Load()
	return b.bases[idx%uint64(len(b.bases))], idx
}

// rotate moves the preference off a replica that just failed, unless a
// concurrent request already did (the counter moved past idx).
func (b *Backend) rotate(idx uint64) {
	b.cur.CompareAndSwap(idx, idx+1)
}

// pickBreaker is the breaker-aware pick: the preferred replica when
// its breaker admits, else the first later base whose breaker does
// (moving the preference onto it, so the sticky-replica contract and
// the warm dedup cache follow the healthy member). When every
// breaker refuses the preferred replica is returned anyway: with no
// alternative left, progress beats protection, and the attempt's
// outcome feeds back into its breaker either way.
func (b *Backend) pickBreaker() (string, uint64, *resilience.Breaker) {
	idx := b.cur.Load()
	n := uint64(len(b.bases))
	for off := uint64(0); off < n; off++ {
		i := (idx + off) % n
		if b.breakers[i].Allow() {
			if off != 0 {
				b.cur.CompareAndSwap(idx, idx+off)
			}
			return b.bases[i], idx + off, b.breakers[i]
		}
	}
	return b.bases[idx%n], idx, b.breakers[idx%n]
}

// Complete implements judge.LLM. The error-free contract has nowhere
// to surface a network failure, so one maps to an empty response
// (parsed downstream as an unparsable verdict); callers that can
// handle errors use CompleteContext, which Evaluate prefers
// automatically.
func (b *Backend) Complete(prompt string) string {
	resp, err := b.CompleteContext(context.Background(), prompt)
	if err != nil {
		return ""
	}
	return resp
}

// CompleteContext implements judge.ContextLLM against /v1/complete.
func (b *Backend) CompleteContext(ctx context.Context, prompt string) (string, error) {
	var out server.CompleteResponse
	if err := b.post(ctx, "/v1/complete", server.CompleteRequest{Prompt: prompt}, &out); err != nil {
		return "", err
	}
	return out.Response, nil
}

// CompleteBatch implements judge.BatchLLM against /v1/complete_batch:
// a whole shard of prompts crosses the wire in one request and is
// resolved server-side as one unit.
func (b *Backend) CompleteBatch(ctx context.Context, prompts []string) ([]string, error) {
	var out server.CompleteBatchResponse
	if err := b.post(ctx, "/v1/complete_batch", server.CompleteBatchRequest{Prompts: prompts}, &out); err != nil {
		return nil, err
	}
	if len(out.Responses) != len(prompts) {
		return nil, fmt.Errorf("remote: daemon returned %d responses for %d prompts", len(out.Responses), len(prompts))
	}
	return out.Responses, nil
}

// Info fetches a daemon's /v1/backends description: what backend it
// serves under which seed, whether it batches, and — when it fronts a
// voting ensemble — the panel members and strategy. Front-ends use it
// to fail fast when an experiment needs a panel but the daemon serves
// a single judge. With a replica list, the first reachable replica
// answers — replicas of one fleet serve the same backend by
// construction.
func (b *Backend) Info(ctx context.Context) (server.BackendsResponse, error) {
	var out server.BackendsResponse
	var lastErr error
	for range b.bases {
		base, idx := b.pick()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/backends", nil)
		if err != nil {
			return out, err
		}
		resp, err := b.hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("remote: daemon at %s unreachable: %w", base, err)
			b.rotate(idx)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("remote: daemon at %s: %s", base, resp.Status)
			drain(resp)
			b.rotate(idx)
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		drain(resp)
		if err != nil {
			return out, fmt.Errorf("remote: daemon at %s: decoding /v1/backends: %w", base, err)
		}
		return out, nil
	}
	return out, lastErr
}

// Ping checks daemon liveness via /healthz — how front-ends fail fast
// on a bad -serve-addr before starting a sweep. With a replica list,
// any one healthy replica answers.
func (b *Backend) Ping(ctx context.Context) error {
	var lastErr error
	for range b.bases {
		base, idx := b.pick()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := b.hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("remote: daemon at %s unreachable: %w", base, err)
			b.rotate(idx)
			continue
		}
		drain(resp)
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("remote: daemon at %s unhealthy: %s", base, resp.Status)
			b.rotate(idx)
			continue
		}
		return nil
	}
	return lastErr
}

// post submits one JSON request with retry-on-transient-failure
// semantics and decodes the success body into out. Connection errors
// and 5xx responses rotate the preferred replica before the retry;
// 429 overload stays put — the replica is alive, and moving a busy
// fleet's load around only spreads the overload.
//
// When the context carries a trace span, the whole call — retries
// included — is recorded as one "remote.call" child span whose ID is
// injected into the propagation headers, so the daemon's server-side
// spans parent under this client-side interval.
func (b *Backend) post(ctx context.Context, path string, in, out any) error {
	ctx, span := trace.Start(ctx, "remote.call")
	if span == nil {
		return b.doPost(ctx, path, in, out)
	}
	span.SetAttr("path", path)
	err := b.doPost(ctx, path, in, out)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	span.End()
	return err
}

func (b *Backend) doPost(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		base, idx, br := b.pickBreaker()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if b.priority != "" {
			req.Header.Set(PriorityHeader, b.priority)
		}
		if b.client != "" {
			req.Header.Set(ClientHeader, b.client)
		}
		trace.Inject(ctx, req.Header)
		resp, err := b.hc.Do(req)
		var retryAfter time.Duration
		var hasHint bool
		switch {
		case err != nil:
			// Connection-level failure. The request context's own end
			// is permanent; everything else is worth retrying.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			br.Failure()
			b.rotate(idx)
		case resp.StatusCode == http.StatusOK:
			data, derr := io.ReadAll(resp.Body)
			drain(resp)
			if derr == nil {
				if uerr := json.Unmarshal(data, out); uerr == nil {
					br.Success()
					return nil
				} else {
					derr = uerr
				}
			}
			// Torn, truncated, or otherwise undecodable success body.
			// Nothing half-parsed may reach the caller, and the bytes on
			// the wire are as transient as a dropped connection — retry
			// on the next replica.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = fmt.Errorf("remote: daemon at %s: decoding %s response: %w", base, path, derr)
			br.Failure()
			b.rotate(idx)
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
			lastErr = httpError(resp)
			retryAfter, hasHint = parseRetryAfter(resp.Header.Get("Retry-After"))
			drain(resp)
			if resp.StatusCode >= 500 {
				br.Failure()
				b.rotate(idx)
			} else {
				// 429: the replica is alive, just shedding — not breaker
				// evidence.
				br.Success()
			}
		default:
			err := httpError(resp)
			drain(resp)
			// The replica answered decisively; the request was at fault.
			br.Success()
			return err
		}
		if attempt >= b.retries {
			return fmt.Errorf("remote: %s failed after %d attempts: %w", path, attempt+1, lastErr)
		}
		b.retried.Add(1)
		if err := b.policy.Sleep(ctx, attempt, retryAfter, hasHint); err != nil {
			return err
		}
	}
}

// httpError renders a non-2xx response as an error, preferring the
// daemon's structured message.
func httpError(resp *http.Response) error {
	var e server.ErrorResponse
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("remote: daemon: %s (%s)", e.Error, resp.Status)
	}
	return fmt.Errorf("remote: daemon: %s", resp.Status)
}

// parseRetryAfter reads the Retry-After header; the daemon writes
// fractional seconds, and plain integer seconds parse too. The second
// return distinguishes a parsed hint — zero included — from an absent
// or malformed header.
func parseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	secs, err := strconv.ParseFloat(v, 64)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs * float64(time.Second)), true
}

// drain discards any unread body so the keep-alive connection is
// reusable.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
