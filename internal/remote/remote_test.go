package remote_test

// Tests for the remote backend client: transient failures (connection
// drops, 429 overload, 5xx) retry with backoff and eventually succeed
// or surface a useful error; permanent 4xx failures and context
// deadlines fail immediately. Handlers are scripted, so every
// scenario is deterministic.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/remote"
	"repro/internal/server"
)

// scripted answers each attempt according to a status script, then
// succeeds forever.
type scripted struct {
	attempts atomic.Int64
	script   []int // status per attempt; beyond the script, 200
	retryHdr string
}

func (s *scripted) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := int(s.attempts.Add(1)) - 1
	if n < len(s.script) {
		if s.retryHdr != "" {
			w.Header().Set("Retry-After", s.retryHdr)
		}
		w.WriteHeader(s.script[n])
		_ = json.NewEncoder(w).Encode(server.ErrorResponse{Error: "scripted failure"})
		return
	}
	var req server.CompleteRequest
	_ = json.NewDecoder(r.Body).Decode(&req)
	_ = json.NewEncoder(w).Encode(server.CompleteResponse{Response: "ok:" + req.Prompt})
}

func client(ts *httptest.Server, retries int) *remote.Backend {
	return remote.New(ts.URL, remote.WithRetries(retries), remote.WithBackoff(time.Millisecond))
}

func TestRetriesTransient5xx(t *testing.T) {
	h := &scripted{script: []int{http.StatusInternalServerError, http.StatusBadGateway}}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := client(ts, 3).CompleteContext(context.Background(), "p")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "ok:p" {
		t.Fatalf("got %q", resp)
	}
	if got := h.attempts.Load(); got != 3 {
		t.Errorf("took %d attempts, want 3 (2 failures + success)", got)
	}
}

func TestRetries429WithRetryAfter(t *testing.T) {
	h := &scripted{script: []int{http.StatusTooManyRequests}, retryHdr: "0.01"}
	ts := httptest.NewServer(h)
	defer ts.Close()
	start := time.Now()
	resp, err := client(ts, 2).CompleteContext(context.Background(), "p")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "ok:p" {
		t.Fatalf("got %q", resp)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("retried after %v, should have honoured Retry-After of 10ms", elapsed)
	}
}

func TestRetryAfterZeroRetriesImmediately(t *testing.T) {
	// An explicit "Retry-After: 0" is the daemon saying "now", not "no
	// hint": the client must retry immediately instead of falling back
	// to full exponential backoff.
	h := &scripted{script: []int{http.StatusTooManyRequests, http.StatusTooManyRequests}, retryHdr: "0"}
	ts := httptest.NewServer(h)
	defer ts.Close()
	b := remote.New(ts.URL, remote.WithRetries(2), remote.WithBackoff(500*time.Millisecond))
	start := time.Now()
	resp, err := b.CompleteContext(context.Background(), "p")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "ok:p" {
		t.Fatalf("got %q", resp)
	}
	// With backoff 500ms, ignoring the zero hint would take >= 1s for
	// the two retries; honouring it finishes in milliseconds.
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Errorf("took %v; an explicit Retry-After: 0 should retry immediately", elapsed)
	}
	if got := h.attempts.Load(); got != 3 {
		t.Errorf("made %d attempts, want 3", got)
	}
}

func TestPermanent4xxFailsImmediately(t *testing.T) {
	h := &scripted{script: []int{http.StatusBadRequest, http.StatusBadRequest, http.StatusBadRequest}}
	ts := httptest.NewServer(h)
	defer ts.Close()
	_, err := client(ts, 5).CompleteContext(context.Background(), "p")
	if err == nil {
		t.Fatal("expected an error on 400")
	}
	if got := h.attempts.Load(); got != 1 {
		t.Errorf("client retried a permanent 400 (%d attempts)", got)
	}
	if !strings.Contains(err.Error(), "scripted failure") {
		t.Errorf("error lost the daemon's message: %v", err)
	}
}

func TestRetriesExhausted(t *testing.T) {
	h := &scripted{script: []int{503, 503, 503, 503, 503, 503, 503, 503}}
	ts := httptest.NewServer(h)
	defer ts.Close()
	_, err := client(ts, 2).CompleteContext(context.Background(), "p")
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
	if got := h.attempts.Load(); got != 3 {
		t.Errorf("made %d attempts with 2 retries, want 3", got)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error does not report attempts: %v", err)
	}
}

func TestConnectionErrorRetriesThenFails(t *testing.T) {
	// A port nothing listens on: every attempt is a connection error.
	b := remote.New("127.0.0.1:1", remote.WithRetries(2), remote.WithBackoff(time.Millisecond))
	_, err := b.CompleteContext(context.Background(), "p")
	if err == nil {
		t.Fatal("expected a connection error")
	}
	// The error-free judge.LLM contract maps the same failure to an
	// empty response rather than a panic.
	if resp := b.Complete("p"); resp != "" {
		t.Errorf("Complete on dead daemon returned %q, want empty", resp)
	}
}

func TestDeadlineCutsRetryLoop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	b := remote.New(ts.URL, remote.WithRetries(1000), remote.WithBackoff(5*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := b.CompleteContext(ctx, "p")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline ignored for %v", elapsed)
	}
}

func TestZeroBackoffRetriesImmediately(t *testing.T) {
	h := &scripted{script: []int{503, 503}}
	ts := httptest.NewServer(h)
	defer ts.Close()
	b := remote.New(ts.URL, remote.WithRetries(2), remote.WithBackoff(0))
	if _, err := b.CompleteContext(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	if got := h.attempts.Load(); got != 3 {
		t.Errorf("made %d attempts, want 3", got)
	}
}

func TestMultiAddressFailover(t *testing.T) {
	// Replica one answers until "killed", then the client must rotate
	// to replica two and finish the run there — without exhausting its
	// retry budget on the corpse.
	var oneDead atomic.Bool
	one := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if oneDead.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		var req server.CompleteRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		_ = json.NewEncoder(w).Encode(server.CompleteResponse{Response: "one:" + req.Prompt})
	}))
	defer one.Close()
	var twoRequests atomic.Int64
	two := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		twoRequests.Add(1)
		var req server.CompleteRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		_ = json.NewEncoder(w).Encode(server.CompleteResponse{Response: "two:" + req.Prompt})
	}))
	defer two.Close()

	b := remote.New(one.URL+","+two.URL, remote.WithRetries(3), remote.WithBackoff(time.Millisecond))
	if got := len(b.Addrs()); got != 2 {
		t.Fatalf("Addrs reports %d bases, want 2", got)
	}
	resp, err := b.CompleteContext(context.Background(), "a")
	if err != nil || resp != "one:a" {
		t.Fatalf("healthy preferred replica: got %q, %v", resp, err)
	}
	oneDead.Store(true)
	resp, err = b.CompleteContext(context.Background(), "b")
	if err != nil || resp != "two:b" {
		t.Fatalf("failover: got %q, %v", resp, err)
	}
	// Preference sticks to the survivor: no further traffic probes the
	// dead replica.
	before := twoRequests.Load()
	for i := 0; i < 3; i++ {
		if resp, err := b.CompleteContext(context.Background(), "c"); err != nil || resp != "two:c" {
			t.Fatalf("post-failover request %d: got %q, %v", i, resp, err)
		}
	}
	if got := twoRequests.Load() - before; got != 3 {
		t.Errorf("survivor served %d of 3 post-failover requests", got)
	}
	if err := b.Ping(context.Background()); err != nil {
		t.Errorf("Ping with one live replica: %v", err)
	}
}

func TestMultiAddressAllDead(t *testing.T) {
	b := remote.New("127.0.0.1:1,127.0.0.1:1", remote.WithRetries(2), remote.WithBackoff(time.Millisecond))
	if _, err := b.CompleteContext(context.Background(), "p"); err == nil {
		t.Fatal("expected an error with every replica dead")
	}
	if err := b.Ping(context.Background()); err == nil {
		t.Fatal("expected Ping to fail with every replica dead")
	}
}

func TestPriorityAndClientHeaders(t *testing.T) {
	var gotPriority, gotClient atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPriority.Store(r.Header.Get(remote.PriorityHeader))
		gotClient.Store(r.Header.Get(remote.ClientHeader))
		_ = json.NewEncoder(w).Encode(server.CompleteResponse{Response: "ok"})
	}))
	defer ts.Close()
	b := remote.New(ts.URL, remote.WithPriority(remote.PriorityBulk), remote.WithClientID("sweep-7"))
	if _, err := b.CompleteContext(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	if got := gotPriority.Load(); got != remote.PriorityBulk {
		t.Errorf("priority header = %v, want %q", got, remote.PriorityBulk)
	}
	if got := gotClient.Load(); got != "sweep-7" {
		t.Errorf("client header = %v, want sweep-7", got)
	}
	// Without the options the headers stay absent, so daemons see the
	// exact requests older clients sent.
	plain := remote.New(ts.URL)
	if _, err := plain.CompleteContext(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	if got := gotPriority.Load(); got != "" {
		t.Errorf("unconfigured client sent priority %q", got)
	}
}

func TestBatchLengthMismatchRejected(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(server.CompleteBatchResponse{Responses: []string{"only-one"}})
	}))
	defer ts.Close()
	_, err := client(ts, 0).CompleteBatch(context.Background(), []string{"a", "b"})
	if err == nil || !strings.Contains(err.Error(), "1 responses for 2 prompts") {
		t.Fatalf("mismatched batch not rejected: %v", err)
	}
}

// torn answers each scripted attempt with a truncated JSON body (the
// connection "cut" mid-response), then full responses forever.
type torn struct {
	attempts atomic.Int64
	cut      int // attempts that send truncated bodies
}

func (s *torn) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var req server.CompleteRequest
	_ = json.NewDecoder(r.Body).Decode(&req)
	full, _ := json.Marshal(server.CompleteResponse{Response: "ok:" + req.Prompt})
	if int(s.attempts.Add(1)) <= s.cut {
		// Claim the full length but deliver half: the client sees a
		// mid-object EOF, exactly what a dropped connection produces.
		w.Header().Set("Content-Length", strconv.Itoa(len(full)))
		_, _ = w.Write(full[:len(full)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		hj, ok := w.(http.Hijacker)
		if !ok {
			return
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
		return
	}
	_, _ = w.Write(full)
}

func TestTornBodyRetriedToSuccess(t *testing.T) {
	h := &torn{cut: 2}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := client(ts, 3).CompleteContext(context.Background(), "p")
	if err != nil {
		t.Fatalf("torn bodies not retried: %v", err)
	}
	if resp != "ok:p" {
		t.Fatalf("got %q, want the intact retry's response", resp)
	}
	if got := h.attempts.Load(); got != 3 {
		t.Errorf("took %d attempts, want 3 (2 torn + success)", got)
	}
}

func TestTornBodyExhaustionFailsCleanly(t *testing.T) {
	// Every attempt torn: the client must surface an error — never a
	// half-parsed completion.
	h := &torn{cut: 100}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := client(ts, 2).CompleteContext(context.Background(), "p")
	if err == nil {
		t.Fatalf("exhausted torn responses returned %q without error", resp)
	}
	if resp != "" {
		t.Fatalf("half-parsed completion leaked: %q", resp)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error does not report exhaustion: %v", err)
	}
}

func TestPartialJSONNeverHalfParsed(t *testing.T) {
	// A complete HTTP response whose body is syntactically truncated
	// JSON (no connection cut): still retry-or-fail, never half-parse.
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			_, _ = w.Write([]byte(`{"response":"truncat`))
			return
		}
		_ = json.NewEncoder(w).Encode(server.CompleteResponse{Response: "intact"})
	}))
	defer ts.Close()
	resp, err := client(ts, 2).CompleteContext(context.Background(), "p")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "intact" {
		t.Fatalf("got %q, want %q", resp, "intact")
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("took %d attempts, want 2", got)
	}
}

func TestRetryAfterClampedByDeadlineBudget(t *testing.T) {
	// An adversarial daemon sends a Retry-After hint far past the
	// caller's deadline. The client must fail immediately — with the
	// deadline as the cause — instead of parking for the full hint.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3600")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	b := remote.New(ts.URL, remote.WithRetries(5), remote.WithBackoff(time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := b.CompleteContext(ctx, "p")
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want a deadline-classified error", err)
	}
	if elapsed > 50*time.Millisecond {
		t.Fatalf("client parked %v on an hour-long Retry-After with a 100ms budget", elapsed)
	}
}

func TestBreakerSkipsTrippedReplica(t *testing.T) {
	// Replica one fails every request; after enough consecutive
	// failures its breaker trips and traffic pins to replica two
	// without spending attempts on the corpse.
	var oneHits, twoHits atomic.Int64
	one := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		oneHits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer one.Close()
	two := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		twoHits.Add(1)
		var req server.CompleteRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		_ = json.NewEncoder(w).Encode(server.CompleteResponse{Response: "two:" + req.Prompt})
	}))
	defer two.Close()

	b := remote.New(one.URL+","+two.URL, remote.WithRetries(2), remote.WithBackoff(time.Millisecond))
	for i := 0; i < 10; i++ {
		if _, err := b.CompleteContext(context.Background(), "p"); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	states := b.BreakerStates()
	if len(states) != 2 {
		t.Fatalf("BreakerStates reported %d entries", len(states))
	}
	if states[1].State.String() != "closed" {
		t.Errorf("healthy replica breaker %v", states[1].State)
	}
	// The dead replica saw only the few pre-trip attempts, not one per
	// request: the breaker, not luck, is what pinned traffic away.
	if got := oneHits.Load(); got > 6 {
		t.Errorf("tripped replica still served %d attempts", got)
	}
	if b.Retries() == 0 {
		t.Error("Retries() counted no retry waits despite failovers")
	}
}
