package remote_test

// Tests for the remote backend client: transient failures (connection
// drops, 429 overload, 5xx) retry with backoff and eventually succeed
// or surface a useful error; permanent 4xx failures and context
// deadlines fail immediately. Handlers are scripted, so every
// scenario is deterministic.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/remote"
	"repro/internal/server"
)

// scripted answers each attempt according to a status script, then
// succeeds forever.
type scripted struct {
	attempts atomic.Int64
	script   []int // status per attempt; beyond the script, 200
	retryHdr string
}

func (s *scripted) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := int(s.attempts.Add(1)) - 1
	if n < len(s.script) {
		if s.retryHdr != "" {
			w.Header().Set("Retry-After", s.retryHdr)
		}
		w.WriteHeader(s.script[n])
		_ = json.NewEncoder(w).Encode(server.ErrorResponse{Error: "scripted failure"})
		return
	}
	var req server.CompleteRequest
	_ = json.NewDecoder(r.Body).Decode(&req)
	_ = json.NewEncoder(w).Encode(server.CompleteResponse{Response: "ok:" + req.Prompt})
}

func client(ts *httptest.Server, retries int) *remote.Backend {
	return remote.New(ts.URL, remote.WithRetries(retries), remote.WithBackoff(time.Millisecond))
}

func TestRetriesTransient5xx(t *testing.T) {
	h := &scripted{script: []int{http.StatusInternalServerError, http.StatusBadGateway}}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := client(ts, 3).CompleteContext(context.Background(), "p")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "ok:p" {
		t.Fatalf("got %q", resp)
	}
	if got := h.attempts.Load(); got != 3 {
		t.Errorf("took %d attempts, want 3 (2 failures + success)", got)
	}
}

func TestRetries429WithRetryAfter(t *testing.T) {
	h := &scripted{script: []int{http.StatusTooManyRequests}, retryHdr: "0.01"}
	ts := httptest.NewServer(h)
	defer ts.Close()
	start := time.Now()
	resp, err := client(ts, 2).CompleteContext(context.Background(), "p")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "ok:p" {
		t.Fatalf("got %q", resp)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("retried after %v, should have honoured Retry-After of 10ms", elapsed)
	}
}

func TestPermanent4xxFailsImmediately(t *testing.T) {
	h := &scripted{script: []int{http.StatusBadRequest, http.StatusBadRequest, http.StatusBadRequest}}
	ts := httptest.NewServer(h)
	defer ts.Close()
	_, err := client(ts, 5).CompleteContext(context.Background(), "p")
	if err == nil {
		t.Fatal("expected an error on 400")
	}
	if got := h.attempts.Load(); got != 1 {
		t.Errorf("client retried a permanent 400 (%d attempts)", got)
	}
	if !strings.Contains(err.Error(), "scripted failure") {
		t.Errorf("error lost the daemon's message: %v", err)
	}
}

func TestRetriesExhausted(t *testing.T) {
	h := &scripted{script: []int{503, 503, 503, 503, 503, 503, 503, 503}}
	ts := httptest.NewServer(h)
	defer ts.Close()
	_, err := client(ts, 2).CompleteContext(context.Background(), "p")
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
	if got := h.attempts.Load(); got != 3 {
		t.Errorf("made %d attempts with 2 retries, want 3", got)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error does not report attempts: %v", err)
	}
}

func TestConnectionErrorRetriesThenFails(t *testing.T) {
	// A port nothing listens on: every attempt is a connection error.
	b := remote.New("127.0.0.1:1", remote.WithRetries(2), remote.WithBackoff(time.Millisecond))
	_, err := b.CompleteContext(context.Background(), "p")
	if err == nil {
		t.Fatal("expected a connection error")
	}
	// The error-free judge.LLM contract maps the same failure to an
	// empty response rather than a panic.
	if resp := b.Complete("p"); resp != "" {
		t.Errorf("Complete on dead daemon returned %q, want empty", resp)
	}
}

func TestDeadlineCutsRetryLoop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	b := remote.New(ts.URL, remote.WithRetries(1000), remote.WithBackoff(5*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := b.CompleteContext(ctx, "p")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline ignored for %v", elapsed)
	}
}

func TestZeroBackoffRetriesImmediately(t *testing.T) {
	h := &scripted{script: []int{503, 503}}
	ts := httptest.NewServer(h)
	defer ts.Close()
	b := remote.New(ts.URL, remote.WithRetries(2), remote.WithBackoff(0))
	if _, err := b.CompleteContext(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	if got := h.attempts.Load(); got != 3 {
		t.Errorf("made %d attempts, want 3", got)
	}
}

func TestBatchLengthMismatchRejected(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(server.CompleteBatchResponse{Responses: []string{"only-one"}})
	}))
	defer ts.Close()
	_, err := client(ts, 0).CompleteBatch(context.Background(), []string{"a", "b"})
	if err == nil || !strings.Contains(err.Error(), "1 responses for 2 prompts") {
		t.Fatalf("mismatched batch not rejected: %v", err)
	}
}
