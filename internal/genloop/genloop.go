// Package genloop implements the paper's future-work direction (§VI):
// automating compiler-test *generation* by pairing an LLM author with
// the validation pipeline as the acceptance filter. A candidate test
// is requested from the model for each target feature; the pipeline
// compiles, executes, and judges it; rejected candidates are
// regenerated up to a retry budget.
//
// Because the simulated author discloses its ground truth (whether a
// candidate carries a defect), the loop can also score the filter
// itself: how many defective candidates were admitted into the suite
// (false accepts) and how many sound candidates were wasted (false
// rejects) — the quantities that decide whether an auto-generated V&V
// suite can be trusted.
package genloop

import (
	"context"
	"fmt"

	"repro/internal/agent"
	"repro/internal/corpus"
	"repro/internal/judge"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/testlang"
)

// Author is the generation-capable endpoint contract: it both answers
// judging prompts (the judge.LLM side) and authors candidate tests,
// disclosing the ground-truth defect label the filter-quality counters
// need. internal/model satisfies it; registered backends that do are
// plugged in through Config.Author.
type Author interface {
	judge.LLM
	GenerateTest(prompt string) (code, defect string)
}

// Config controls one generation campaign.
type Config struct {
	Dialect spec.Dialect
	// Features lists the corpus template ids to request tests for;
	// empty means every supported feature of the dialect.
	Features []string
	// PerFeature is the number of accepted tests wanted per feature.
	PerFeature int
	// MaxAttempts bounds generation attempts per wanted test.
	MaxAttempts int
	// ModelSeed seeds the author+judge model.
	ModelSeed uint64
	// JudgeStyle selects the pipeline's judge prompt (default
	// AgentDirect, the paper's stronger overall configuration).
	JudgeStyle judge.Style
	// Author overrides the endpoint that writes candidates and backs
	// the judge; nil uses the simulated model seeded with ModelSeed.
	Author Author
}

// Candidate records one generated test and its journey through the
// filter.
type Candidate struct {
	Feature string
	Name    string
	Source  string
	// Defect is the author's ground-truth label ("" = sound).
	Defect string
	// Stage outcomes.
	CompileOK bool
	RunOK     bool
	Verdict   judge.Verdict
	Accepted  bool
}

// Result is the outcome of a campaign.
type Result struct {
	Candidates []Candidate
	// Accepted tests, in acceptance order.
	Accepted []Candidate
	// Filter-quality counters.
	SoundGenerated     int
	DefectiveGenerated int
	SoundAccepted      int
	DefectiveAccepted  int
	SoundRejected      int
	DefectiveRejected  int
}

// AcceptancePrecision is the fraction of accepted tests that are
// sound — the trustworthiness of the generated suite.
func (r *Result) AcceptancePrecision() float64 {
	total := r.SoundAccepted + r.DefectiveAccepted
	if total == 0 {
		return 0
	}
	return float64(r.SoundAccepted) / float64(total)
}

// DefectCatchRate is the fraction of defective candidates the filter
// rejected.
func (r *Result) DefectCatchRate() float64 {
	total := r.DefectiveAccepted + r.DefectiveRejected
	if total == 0 {
		return 0
	}
	return float64(r.DefectiveRejected) / float64(total)
}

// SoundYield is the fraction of sound candidates that survived the
// filter (1 - false-reject rate).
func (r *Result) SoundYield() float64 {
	total := r.SoundAccepted + r.SoundRejected
	if total == 0 {
		return 0
	}
	return float64(r.SoundAccepted) / float64(total)
}

// RawSoundRate is the author's unfiltered quality: sound candidates
// over all candidates.
func (r *Result) RawSoundRate() float64 {
	if len(r.Candidates) == 0 {
		return 0
	}
	return float64(r.SoundGenerated) / float64(len(r.Candidates))
}

// Run executes a generation campaign. Cancelling ctx stops the
// campaign between candidates; the partial Result gathered so far is
// returned alongside the context's error.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.PerFeature <= 0 {
		cfg.PerFeature = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	features := cfg.Features
	if len(features) == 0 {
		features = SupportedFeatures(cfg.Dialect)
	}
	author := cfg.Author
	if author == nil {
		author = model.New(cfg.ModelSeed)
	}
	tools := agent.NewTools(cfg.Dialect)
	jd := &judge.Judge{LLM: author, Style: cfg.JudgeStyle, Dialect: cfg.Dialect}

	res := &Result{}
	nonce := 0
	for _, feature := range features {
		for k := 0; k < cfg.PerFeature; k++ {
			for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
				if err := ctx.Err(); err != nil {
					return res, err
				}
				nonce++
				prompt := model.GenerationPrompt(cfg.Dialect, feature, nonce)
				code, defect := author.GenerateTest(prompt)
				cand := Candidate{
					Feature: feature,
					Name:    fmt.Sprintf("gen_%s_%04d.c", feature, nonce),
					Source:  code,
					Defect:  defect,
				}

				// Validation pipeline with short-circuiting: the filter
				// a production generation loop would run.
				outcome := tools.Gather(cand.Name, cand.Source, testlang.LangC)
				cand.CompileOK = outcome.CompilePassed()
				if cand.CompileOK {
					cand.RunOK = outcome.RunPassed()
					if cand.RunOK {
						ev, err := jd.Evaluate(ctx, cand.Source, &outcome.Info)
						if err != nil {
							return res, err
						}
						cand.Verdict = ev.Verdict
						cand.Accepted = ev.Verdict == judge.Valid
					}
				}
				// Counters update together with the candidate list so a
				// partial Result (error return above) keeps the invariant
				// SoundGenerated+DefectiveGenerated == len(Candidates).
				res.Candidates = append(res.Candidates, cand)
				if defect == "" {
					res.SoundGenerated++
				} else {
					res.DefectiveGenerated++
				}

				if cand.Accepted {
					if defect == "" {
						res.SoundAccepted++
					} else {
						res.DefectiveAccepted++
					}
					res.Accepted = append(res.Accepted, cand)
					break
				}
				if defect == "" {
					res.SoundRejected++
				} else {
					res.DefectiveRejected++
				}
			}
		}
	}
	return res, nil
}

// SupportedFeatures lists the features the campaign can target: every
// corpus template the dialect's toolchain supports.
func SupportedFeatures(d spec.Dialect) []string {
	var out []string
	for _, id := range corpus.TemplateIDs(d) {
		if !corpus.TemplateUnsupported(d, id) {
			out = append(out, id)
		}
	}
	return out
}
