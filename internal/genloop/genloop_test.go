package genloop

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/judge"
	"repro/internal/model"
	"repro/internal/spec"
)

func runCampaign(t *testing.T, d spec.Dialect) *Result {
	t.Helper()
	r, err := Run(context.Background(), Config{
		Dialect:     d,
		PerFeature:  2,
		MaxAttempts: 3,
		ModelSeed:   33,
		JudgeStyle:  judge.AgentDirect,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCampaignProducesAcceptedTests(t *testing.T) {
	r := runCampaign(t, spec.OpenACC)
	if len(r.Accepted) == 0 {
		t.Fatal("campaign accepted nothing")
	}
	features := map[string]bool{}
	for _, c := range r.Accepted {
		features[c.Feature] = true
		if !c.CompileOK || !c.RunOK || c.Verdict != judge.Valid {
			t.Errorf("accepted candidate %s did not pass all stages: %+v", c.Name, c)
		}
	}
	if len(features) < len(SupportedFeatures(spec.OpenACC))/2 {
		t.Errorf("only %d features covered", len(features))
	}
}

func TestFilterImprovesSoundness(t *testing.T) {
	// The core claim of the extension: the pipeline filter makes the
	// accepted suite much sounder than the raw generation stream.
	for _, d := range []spec.Dialect{spec.OpenACC, spec.OpenMP} {
		r := runCampaign(t, d)
		raw := r.RawSoundRate()
		filtered := r.AcceptancePrecision()
		t.Logf("%v: raw sound %.2f -> accepted precision %.2f (catch rate %.2f, yield %.2f)",
			d, raw, filtered, r.DefectCatchRate(), r.SoundYield())
		if raw > 0.75 {
			t.Errorf("%v: raw generation too clean (%.2f); author calibration drifted", d, raw)
		}
		if filtered < raw+0.15 {
			t.Errorf("%v: filter added too little precision: %.2f -> %.2f", d, raw, filtered)
		}
		if r.DefectCatchRate() < 0.6 {
			t.Errorf("%v: defect catch rate %.2f too low", d, r.DefectCatchRate())
		}
		if r.SoundYield() < 0.5 {
			t.Errorf("%v: sound yield %.2f too low (filter wastes good tests)", d, r.SoundYield())
		}
	}
}

func TestCampaignDeterministic(t *testing.T) {
	a := runCampaign(t, spec.OpenMP)
	b := runCampaign(t, spec.OpenMP)
	if len(a.Candidates) != len(b.Candidates) {
		t.Fatalf("candidate counts differ: %d vs %d", len(a.Candidates), len(b.Candidates))
	}
	for i := range a.Candidates {
		if a.Candidates[i].Source != b.Candidates[i].Source ||
			a.Candidates[i].Accepted != b.Candidates[i].Accepted {
			t.Fatalf("candidate %d differs between identical runs", i)
		}
	}
}

func TestFeatureTargeting(t *testing.T) {
	r, err := Run(context.Background(), Config{
		Dialect:     spec.OpenACC,
		Features:    []string{"reduction_sum"},
		PerFeature:  3,
		MaxAttempts: 4,
		ModelSeed:   33,
		JudgeStyle:  judge.AgentDirect,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Accepted {
		if !strings.Contains(c.Source, "reduction(") {
			t.Errorf("accepted test for reduction_sum lacks a reduction clause:\n%s", c.Source)
		}
	}
	if len(r.Accepted) == 0 {
		t.Fatal("no accepted tests for targeted feature")
	}
}

func TestSupportedFeaturesExcludeGaps(t *testing.T) {
	feats := SupportedFeatures(spec.OpenACC)
	for _, f := range feats {
		for _, bad := range []string{"tile_clause", "host_data_use_device", "no_create_clause", "set_directive"} {
			if f == bad {
				t.Errorf("unsupported template %q offered as a generation target", f)
			}
		}
	}
	if len(feats) < 12 {
		t.Errorf("only %d supported OpenACC features", len(feats))
	}
}

func TestCountersConsistent(t *testing.T) {
	r := runCampaign(t, spec.OpenACC)
	if r.SoundGenerated+r.DefectiveGenerated != len(r.Candidates) {
		t.Error("generated counters do not sum to candidates")
	}
	if r.SoundAccepted+r.SoundRejected != r.SoundGenerated {
		t.Error("sound counters inconsistent")
	}
	if r.DefectiveAccepted+r.DefectiveRejected != r.DefectiveGenerated {
		t.Error("defective counters inconsistent")
	}
	if len(r.Accepted) != r.SoundAccepted+r.DefectiveAccepted {
		t.Error("accepted list inconsistent with counters")
	}
}

func TestCancelledCampaignReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := Run(ctx, Config{
		Dialect:    spec.OpenACC,
		PerFeature: 2,
		ModelSeed:  33,
		JudgeStyle: judge.AgentDirect,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r == nil || len(r.Candidates) != 0 {
		t.Fatal("pre-cancelled campaign still generated candidates")
	}
}

func TestPluggableAuthor(t *testing.T) {
	// The default author and an explicitly supplied equivalent one must
	// produce identical campaigns (determinism flows through Config.Author).
	base := runCampaign(t, spec.OpenMP)
	r, err := Run(context.Background(), Config{
		Dialect:     spec.OpenMP,
		PerFeature:  2,
		MaxAttempts: 3,
		ModelSeed:   33,
		JudgeStyle:  judge.AgentDirect,
		Author:      model.New(33),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Candidates) != len(base.Candidates) {
		t.Fatalf("candidate counts differ: %d vs %d", len(r.Candidates), len(base.Candidates))
	}
	for i := range r.Candidates {
		if r.Candidates[i].Source != base.Candidates[i].Source {
			t.Fatalf("candidate %d differs with explicit author", i)
		}
	}
}

// TestGenerationThroughLLMContract verifies the generation path works
// through the plain Complete interface (no ground-truth side channel).
func TestGenerationThroughLLMContract(t *testing.T) {
	m := model.New(33)
	prompt := model.GenerationPrompt(spec.OpenMP, "target_saxpy", 1)
	code := m.Complete(prompt)
	if !strings.Contains(code, "#pragma omp") && !strings.Contains(code, "int main") {
		t.Fatalf("generation response does not look like code:\n%s", code)
	}
	if strings.Contains(code, "FINAL JUDGEMENT") {
		t.Fatal("generation response contains a judgement phrase")
	}
}
