package testlang

import (
	"testing"
)

func TestParseExprString(t *testing.T) {
	cases := []struct {
		src  string
		ok   bool
		kind string
	}{
		{"n * 2", true, "*testlang.BinaryExpr"},
		{"42", true, "*testlang.IntLitExpr"},
		{"x", true, "*testlang.IdentExpr"},
		{"(a + b) / 2", true, "*testlang.BinaryExpr"},
		{"f(x, y)", true, "*testlang.CallExpr"},
		{"a[i]", true, "*testlang.IndexExpr"},
		{"", false, ""},
		{"n +", false, ""},
		{"1 2", false, ""}, // trailing token
	}
	for _, c := range cases {
		e, errs := ParseExprString(c.src)
		if c.ok && len(errs) > 0 {
			t.Errorf("ParseExprString(%q) errors: %v", c.src, errs)
			continue
		}
		if !c.ok {
			if len(errs) == 0 {
				t.Errorf("ParseExprString(%q) should error", c.src)
			}
			continue
		}
		if got := typeName(e); got != c.kind {
			t.Errorf("ParseExprString(%q) = %s, want %s", c.src, got, c.kind)
		}
	}
}

func typeName(e Expr) string {
	switch e.(type) {
	case *BinaryExpr:
		return "*testlang.BinaryExpr"
	case *IntLitExpr:
		return "*testlang.IntLitExpr"
	case *IdentExpr:
		return "*testlang.IdentExpr"
	case *CallExpr:
		return "*testlang.CallExpr"
	case *IndexExpr:
		return "*testlang.IndexExpr"
	default:
		return "?"
	}
}

func TestParseSections(t *testing.T) {
	secs, errs := ParseSections("a[0:n], b, c[2:8]")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(secs) != 3 {
		t.Fatalf("sections = %d", len(secs))
	}
	if secs[0].Name != "a" || secs[0].Lo == nil || secs[0].Len == nil {
		t.Fatalf("section 0 = %+v", secs[0])
	}
	if secs[1].Name != "b" || secs[1].Lo != nil {
		t.Fatalf("section 1 = %+v", secs[1])
	}
	if secs[2].Name != "c" {
		t.Fatalf("section 2 = %+v", secs[2])
	}
	lo, ok := secs[2].Lo.(*IntLitExpr)
	if !ok || lo.Value != 2 {
		t.Fatalf("section 2 lo = %#v", secs[2].Lo)
	}
}

func TestParseSectionsSingleElement(t *testing.T) {
	secs, errs := ParseSections("a[i]")
	if len(errs) != 0 || len(secs) != 1 {
		t.Fatalf("secs=%v errs=%v", secs, errs)
	}
	ln, ok := secs[0].Len.(*IntLitExpr)
	if !ok || ln.Value != 1 {
		t.Fatalf("single-element length = %#v", secs[0].Len)
	}
}

func TestParseSectionsImplicitLo(t *testing.T) {
	secs, errs := ParseSections("a[:n]")
	if len(errs) != 0 || len(secs) != 1 {
		t.Fatalf("secs=%v errs=%v", secs, errs)
	}
	lo, ok := secs[0].Lo.(*IntLitExpr)
	if !ok || lo.Value != 0 {
		t.Fatalf("implicit lo = %#v", secs[0].Lo)
	}
}

func TestParseSectionsErrors(t *testing.T) {
	for _, bad := range []string{
		"a[0:n", "123", "a b", "a[0:]", "+:x",
	} {
		if _, errs := ParseSections(bad); len(errs) == 0 {
			t.Errorf("ParseSections(%q) should error", bad)
		}
	}
}

func TestParseSectionsExpressionBounds(t *testing.T) {
	secs, errs := ParseSections("a[lo*2:(hi-lo)]")
	if len(errs) != 0 || len(secs) != 1 {
		t.Fatalf("secs=%v errs=%v", secs, errs)
	}
	if _, ok := secs[0].Lo.(*BinaryExpr); !ok {
		t.Fatalf("lo = %#v", secs[0].Lo)
	}
}

func TestParseSectionsEmptyParts(t *testing.T) {
	secs, errs := ParseSections("a, , b")
	if len(errs) != 0 {
		t.Fatalf("errors on empty part: %v", errs)
	}
	if len(secs) != 2 {
		t.Fatalf("sections = %d, want 2", len(secs))
	}
}
