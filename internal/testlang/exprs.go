package testlang

import (
	"fmt"
	"strings"
)

// ParseExprString parses a standalone C expression (as found in
// directive clause arguments like "num_gangs(n*2)"). It returns the
// expression and any syntax errors.
func ParseExprString(s string) (Expr, []error) {
	toks, lexErrs := Tokenize(s)
	p := &Parser{toks: toks}
	e := p.parseExpr()
	errs := append(lexErrs, p.errs...)
	if p.cur().Kind != EOF {
		errs = append(errs, &ParseError{Line: p.cur().Line, Msg: fmt.Sprintf("unexpected trailing %q in expression", p.cur().Text)})
	}
	return e, errs
}

// Section is a parsed data-clause array section such as "a[0:n]" or a
// bare variable reference "a" (Lo and Len nil in that case).
// OpenACC sections use [lo:len]; Fortran-style (lo:hi) sections are
// accepted by the Fortran front end separately.
type Section struct {
	Name string
	Lo   Expr // nil when the whole object is referenced
	Len  Expr // nil when the whole object is referenced
}

// ParseSections parses a data-clause variable list with optional array
// sections: "a[0:n], b, c[2:8]".
func ParseSections(arg string) ([]Section, []error) {
	var secs []Section
	var errs []error
	for _, part := range splitTopLevelCommas(arg) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		open := strings.IndexByte(part, '[')
		if open < 0 {
			if !isIdentifierWord(part) {
				errs = append(errs, &ParseError{Line: 0, Msg: fmt.Sprintf("malformed data reference %q", part)})
				continue
			}
			secs = append(secs, Section{Name: part})
			continue
		}
		name := strings.TrimSpace(part[:open])
		if !isIdentifierWord(name) {
			errs = append(errs, &ParseError{Line: 0, Msg: fmt.Sprintf("malformed data reference %q", part)})
			continue
		}
		if !strings.HasSuffix(part, "]") {
			errs = append(errs, &ParseError{Line: 0, Msg: fmt.Sprintf("unterminated array section %q", part)})
			continue
		}
		inner := part[open+1 : len(part)-1]
		colon := topLevelColon(inner)
		if colon < 0 {
			// Single-element section a[i]: length 1 starting at i.
			lo, es := ParseExprString(inner)
			errs = append(errs, es...)
			secs = append(secs, Section{Name: name, Lo: lo, Len: &IntLitExpr{Value: 1}})
			continue
		}
		loText := strings.TrimSpace(inner[:colon])
		lenText := strings.TrimSpace(inner[colon+1:])
		sec := Section{Name: name}
		if loText == "" {
			sec.Lo = &IntLitExpr{Value: 0}
		} else {
			lo, es := ParseExprString(loText)
			errs = append(errs, es...)
			sec.Lo = lo
		}
		if lenText == "" {
			errs = append(errs, &ParseError{Line: 0, Msg: fmt.Sprintf("array section %q needs a length", part)})
			continue
		}
		ln, es := ParseExprString(lenText)
		errs = append(errs, es...)
		sec.Len = ln
		secs = append(secs, sec)
	}
	return secs, errs
}

func topLevelColon(s string) int {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case ':':
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

func isIdentifierWord(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentCont(s[i]) {
			return false
		}
	}
	return true
}
