package testlang

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/spec"
)

// ParseError is a syntax error with its source line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("line %d: syntax error: %s", e.Line, e.Msg) }

// maxParseErrors bounds error cascades from heavily corrupted files
// (negative probing can mangle sources arbitrarily).
const maxParseErrors = 25

// Parser parses C-dialect token streams into a *File.
type Parser struct {
	toks    []Token
	pos     int
	errs    []error
	dialect spec.Dialect
	lang    Language
	bailed  bool
}

// ParseFile lexes and parses C-dialect source. The returned file is
// best-effort when errors are present; callers must treat a non-empty
// error slice as a failed compile.
func ParseFile(src string, lang Language, dialect spec.Dialect) (*File, []error) {
	toks, lexErrs := Tokenize(src)
	p := &Parser{toks: toks, dialect: dialect, lang: lang}
	f := p.parseFile()
	return f, append(lexErrs, p.errs...)
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) at(kind Kind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *Parser) atPunct(text string) bool { return p.at(Punct, text) }

func (p *Parser) accept(kind Kind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) errorf(line int, format string, args ...any) {
	if len(p.errs) >= maxParseErrors {
		p.bailed = true
		return
	}
	p.errs = append(p.errs, &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)})
}

func (p *Parser) expectPunct(text string) bool {
	if p.accept(Punct, text) {
		return true
	}
	t := p.cur()
	p.errorf(t.Line, "expected %q, found %s %q", text, t.Kind, t.Text)
	return false
}

// sync skips tokens until after the next semicolon or to a closing
// brace, to resume after a statement-level error.
func (p *Parser) sync() {
	depth := 0
	for p.cur().Kind != EOF {
		t := p.cur()
		if t.Kind == Punct {
			switch t.Text {
			case ";":
				if depth == 0 {
					p.next()
					return
				}
			case "{":
				depth++
			case "}":
				if depth == 0 {
					return
				}
				depth--
			}
		}
		p.next()
	}
}

func (p *Parser) parseFile() *File {
	f := &File{Lang: p.lang, position: 1}
	var pendingPragmas []*DirectiveStmt
	for p.cur().Kind != EOF && !p.bailed {
		t := p.cur()
		switch {
		case t.Kind == Include:
			f.Includes = append(f.Includes, t.Text)
			p.next()
		case t.Kind == Pragma:
			p.next()
			if dir, ok := ParseDirective(t.Text, p.dialect, t.Line); ok {
				pendingPragmas = append(pendingPragmas, &DirectiveStmt{Dir: dir, position: position(t.Line)})
			}
			// Non-directive pragmas at file scope (e.g. "#pragma once")
			// are ignored, as real compilers do.
		case t.Kind == Keyword && (t.Text == "using" || t.Text == "extern" || t.Text == "typedef"):
			// Tolerated C++/C boilerplate: skip the whole statement.
			p.skipToSemicolon()
		case t.Kind == Ident && t.Text == "using":
			p.skipToSemicolon()
		case isTypeStart(t):
			decl := p.parseTopDecl(pendingPragmas)
			pendingPragmas = nil
			if decl != nil {
				f.Decls = append(f.Decls, decl...)
			}
		default:
			p.errorf(t.Line, "unexpected %s %q at file scope", t.Kind, t.Text)
			p.next()
			p.sync()
		}
	}
	return f
}

func (p *Parser) skipToSemicolon() {
	for p.cur().Kind != EOF && !p.atPunct(";") {
		p.next()
	}
	p.accept(Punct, ";")
}

func isTypeStart(t Token) bool {
	if t.Kind != Keyword {
		return false
	}
	switch t.Text {
	case "int", "long", "float", "double", "char", "void", "short",
		"unsigned", "signed", "const", "static", "bool":
		return true
	}
	return false
}

// parseType parses a type specifier: qualifiers, base, pointer stars.
// isConst reports whether a const qualifier was seen.
func (p *Parser) parseType() (typ Type, isConst bool, ok bool) {
	seenBase := ""
	long := 0
	for {
		t := p.cur()
		if t.Kind != Keyword {
			break
		}
		switch t.Text {
		case "const":
			isConst = true
		case "static", "unsigned", "signed", "short":
			// Folded away: the dialect models int/long/float/double.
		case "long":
			long++
		case "int", "float", "double", "char", "void", "bool":
			if seenBase != "" {
				p.errorf(t.Line, "multiple base types in declaration")
			}
			seenBase = t.Text
		default:
			goto done
		}
		p.next()
	}
done:
	if seenBase == "" {
		if long > 0 {
			seenBase = "long"
		} else {
			return Type{}, isConst, false
		}
	}
	if seenBase == "int" && long > 0 {
		seenBase = "long"
	}
	typ = Type{Base: seenBase}
	for p.atPunct("*") {
		p.next()
		typ.Ptr++
	}
	return typ, isConst, true
}

// parseTopDecl parses a function definition or a variable declaration
// list at file scope.
func (p *Parser) parseTopDecl(pragmas []*DirectiveStmt) []Decl {
	startLine := p.cur().Line
	typ, isConst, ok := p.parseType()
	if !ok {
		p.errorf(startLine, "expected type")
		p.sync()
		return nil
	}
	nameTok := p.cur()
	if nameTok.Kind != Ident {
		p.errorf(nameTok.Line, "expected identifier after type, found %q", nameTok.Text)
		p.sync()
		return nil
	}
	p.next()
	if p.atPunct("(") {
		fd := p.parseFuncRest(typ, nameTok, pragmas)
		if fd == nil {
			return nil
		}
		return []Decl{fd}
	}
	decls := p.parseVarDeclRest(typ, isConst, nameTok)
	out := make([]Decl, len(decls))
	for i, d := range decls {
		out[i] = d
	}
	return out
}

func (p *Parser) parseFuncRest(ret Type, nameTok Token, pragmas []*DirectiveStmt) *FuncDecl {
	fd := &FuncDecl{Name: nameTok.Text, Ret: ret, Pragmas: pragmas, position: position(nameTok.Line)}
	p.expectPunct("(")
	if !p.atPunct(")") {
		for {
			t := p.cur()
			if t.Kind == Keyword && t.Text == "void" && p.peek().Kind == Punct && p.peek().Text == ")" {
				p.next()
				break
			}
			ptyp, _, ok := p.parseType()
			if !ok {
				p.errorf(t.Line, "expected parameter type")
				break
			}
			param := Param{Type: ptyp}
			if p.cur().Kind == Ident {
				param.Name = p.next().Text
			}
			for p.atPunct("[") {
				p.next()
				// Dimension expressions on params are parsed and dropped.
				if !p.atPunct("]") {
					p.parseExpr()
				}
				p.expectPunct("]")
				param.Array = true
			}
			fd.Params = append(fd.Params, param)
			if !p.accept(Punct, ",") {
				break
			}
		}
	}
	p.expectPunct(")")
	if p.accept(Punct, ";") {
		// Prototype: keep the declaration, no body.
		return fd
	}
	if !p.atPunct("{") {
		t := p.cur()
		p.errorf(t.Line, "expected function body, found %q", t.Text)
		p.sync()
		return fd
	}
	fd.Body = p.parseBlock()
	return fd
}

// parseVarDeclRest parses "name [dims] [= init] (, declarator)* ;"
// after the first identifier has been consumed.
func (p *Parser) parseVarDeclRest(typ Type, isConst bool, first Token) []*VarDecl {
	var decls []*VarDecl
	cur := first
	curType := typ
	for {
		vd := &VarDecl{Name: cur.Text, Type: curType, Const: isConst, position: position(cur.Line)}
		for p.atPunct("[") {
			p.next()
			if p.atPunct("]") {
				vd.ArrayDims = append(vd.ArrayDims, nil)
			} else {
				vd.ArrayDims = append(vd.ArrayDims, p.parseExpr())
			}
			p.expectPunct("]")
		}
		if p.accept(Punct, "=") {
			if p.atPunct("{") {
				vd.Init = p.parseInitList()
			} else {
				vd.Init = p.parseAssign()
			}
		}
		decls = append(decls, vd)
		if !p.accept(Punct, ",") {
			break
		}
		// Subsequent declarators may add their own pointer stars.
		curType = Type{Base: typ.Base}
		for p.atPunct("*") {
			p.next()
			curType.Ptr++
		}
		nt := p.cur()
		if nt.Kind != Ident {
			p.errorf(nt.Line, "expected declarator after ','")
			break
		}
		p.next()
		cur = nt
	}
	p.expectPunct(";")
	return decls
}

func (p *Parser) parseInitList() *InitList {
	il := &InitList{position: position(p.cur().Line)}
	p.expectPunct("{")
	if !p.atPunct("}") {
		for {
			if p.atPunct("{") {
				il.Elems = append(il.Elems, p.parseInitList())
			} else {
				il.Elems = append(il.Elems, p.parseAssign())
			}
			if !p.accept(Punct, ",") {
				break
			}
		}
	}
	p.expectPunct("}")
	return il
}

func (p *Parser) parseBlock() *Block {
	b := &Block{position: position(p.cur().Line)}
	p.expectPunct("{")
	for !p.atPunct("}") && p.cur().Kind != EOF && !p.bailed {
		before := p.pos
		st := p.parseStmt()
		if st != nil {
			b.Stmts = append(b.Stmts, st)
		}
		if p.pos == before {
			// No progress: consume one token to guarantee termination.
			p.errorf(p.cur().Line, "unexpected token %q", p.cur().Text)
			p.next()
		}
	}
	b.EndLine = p.cur().Line
	if !p.accept(Punct, "}") {
		p.errorf(p.cur().Line, "expected '}' to close block opened at line %d", b.Pos())
	}
	return b
}

func (p *Parser) parseStmt() Stmt {
	t := p.cur()
	switch {
	case t.Kind == Pragma:
		p.next()
		return p.parsePragmaStmt(t)
	case t.Kind == Punct && t.Text == "{":
		return p.parseBlock()
	case t.Kind == Punct && t.Text == ";":
		p.next()
		return &EmptyStmt{position: position(t.Line)}
	case isTypeStart(t):
		return p.parseDeclStmt()
	case t.Kind == Keyword:
		switch t.Text {
		case "if":
			return p.parseIf()
		case "for":
			return p.parseFor()
		case "while":
			return p.parseWhile()
		case "return":
			p.next()
			rs := &ReturnStmt{position: position(t.Line)}
			if !p.atPunct(";") {
				rs.X = p.parseExpr()
			}
			p.expectPunct(";")
			return rs
		case "break":
			p.next()
			p.expectPunct(";")
			return &BreakStmt{position: position(t.Line)}
		case "continue":
			p.next()
			p.expectPunct(";")
			return &ContinueStmt{position: position(t.Line)}
		default:
			p.errorf(t.Line, "unsupported keyword %q in statement position", t.Text)
			p.next()
			p.sync()
			return nil
		}
	default:
		x := p.parseExpr()
		p.expectPunct(";")
		if x == nil {
			return nil
		}
		return &ExprStmt{X: x, position: position(t.Line)}
	}
}

// parsePragmaStmt handles a pragma token in statement position,
// attaching the following construct according to the directive's
// association.
func (p *Parser) parsePragmaStmt(t Token) Stmt {
	dir, ok := ParseDirective(t.Text, p.dialect, t.Line)
	if !ok {
		return &UnknownPragmaStmt{Raw: t.Text, position: position(t.Line)}
	}
	ds := &DirectiveStmt{Dir: dir, position: position(t.Line)}
	assoc := spec.AssocNone
	if dir.Known {
		if sd, found := spec.ForDialect(p.dialect).Lookup(dir.Name); found {
			if sd.Standalone {
				return ds
			}
			assoc = sd.Association
		}
	} else {
		// Unknown directive: attach a following construct only if one
		// plausibly belongs to it (a brace block or loop), mirroring how
		// real compilers recover; otherwise treat as standalone. The
		// compiler rejects the directive either way.
		if p.atPunct("{") || p.at(Keyword, "for") {
			ds.Body = p.parseStmt()
		}
		return ds
	}
	switch assoc {
	case spec.AssocNone:
		return ds
	default:
		if p.atPunct("}") || p.cur().Kind == EOF {
			p.errorf(t.Line, "directive %q requires a following statement", dir.Name)
			return ds
		}
		ds.Body = p.parseStmt()
		return ds
	}
}

func (p *Parser) parseDeclStmt() Stmt {
	startLine := p.cur().Line
	typ, isConst, ok := p.parseType()
	if !ok {
		p.errorf(startLine, "expected type in declaration")
		p.sync()
		return nil
	}
	nameTok := p.cur()
	if nameTok.Kind != Ident {
		p.errorf(nameTok.Line, "expected identifier in declaration, found %q", nameTok.Text)
		p.sync()
		return nil
	}
	p.next()
	decls := p.parseVarDeclRest(typ, isConst, nameTok)
	return &DeclStmt{Decls: decls, position: position(startLine)}
}

func (p *Parser) parseIf() Stmt {
	t := p.next() // 'if'
	is := &IfStmt{position: position(t.Line)}
	p.expectPunct("(")
	is.Cond = p.parseExpr()
	p.expectPunct(")")
	is.Then = p.parseStmt()
	if p.at(Keyword, "else") {
		p.next()
		is.Else = p.parseStmt()
	}
	return is
}

func (p *Parser) parseFor() Stmt {
	t := p.next() // 'for'
	fs := &ForStmt{position: position(t.Line)}
	p.expectPunct("(")
	if !p.atPunct(";") {
		if isTypeStart(p.cur()) {
			startLine := p.cur().Line
			typ, isConst, _ := p.parseType()
			nameTok := p.cur()
			if nameTok.Kind == Ident {
				p.next()
				vd := &VarDecl{Name: nameTok.Text, Type: typ, Const: isConst, position: position(nameTok.Line)}
				if p.accept(Punct, "=") {
					vd.Init = p.parseAssign()
				}
				fs.Init = &DeclStmt{Decls: []*VarDecl{vd}, position: position(startLine)}
				p.expectPunct(";")
			} else {
				p.errorf(nameTok.Line, "expected loop variable name")
				p.sync()
			}
		} else {
			x := p.parseExpr()
			fs.Init = &ExprStmt{X: x, position: position(t.Line)}
			p.expectPunct(";")
		}
	} else {
		p.next()
	}
	if !p.atPunct(";") {
		fs.Cond = p.parseExpr()
	}
	p.expectPunct(";")
	if !p.atPunct(")") {
		fs.Post = p.parseExpr()
	}
	p.expectPunct(")")
	fs.Body = p.parseStmt()
	return fs
}

func (p *Parser) parseWhile() Stmt {
	t := p.next() // 'while'
	ws := &WhileStmt{position: position(t.Line)}
	p.expectPunct("(")
	ws.Cond = p.parseExpr()
	p.expectPunct(")")
	ws.Body = p.parseStmt()
	return ws
}

// Expression parsing: precedence climbing.

func (p *Parser) parseExpr() Expr { return p.parseAssign() }

func (p *Parser) parseAssign() Expr {
	lhs := p.parseTernary()
	t := p.cur()
	if t.Kind == Punct {
		switch t.Text {
		case "=", "+=", "-=", "*=", "/=", "%=":
			p.next()
			rhs := p.parseAssign()
			return &AssignExpr{Op: t.Text, L: lhs, R: rhs, position: position(t.Line)}
		}
	}
	return lhs
}

func (p *Parser) parseTernary() Expr {
	cond := p.parseBinary(0)
	if p.atPunct("?") {
		t := p.next()
		then := p.parseExpr()
		p.expectPunct(":")
		els := p.parseTernary()
		return &CondExpr{Cond: cond, Then: then, Else: els, position: position(t.Line)}
	}
	return cond
}

// binary operator precedence, higher binds tighter.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *Parser) parseBinary(minPrec int) Expr {
	lhs := p.parseUnary()
	for {
		t := p.cur()
		if t.Kind != Punct {
			return lhs
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs
		}
		p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &BinaryExpr{Op: t.Text, L: lhs, R: rhs, position: position(t.Line)}
	}
}

func (p *Parser) parseUnary() Expr {
	t := p.cur()
	if t.Kind == Punct {
		switch t.Text {
		case "!", "-", "+", "*", "&", "~":
			p.next()
			x := p.parseUnary()
			if t.Text == "+" {
				return x
			}
			return &UnaryExpr{Op: t.Text, X: x, position: position(t.Line)}
		case "++", "--":
			p.next()
			x := p.parseUnary()
			return &UnaryExpr{Op: t.Text, X: x, position: position(t.Line)}
		case "(":
			// Cast or parenthesised expression.
			if isTypeStart(p.peek()) {
				p.next()
				typ, _, ok := p.parseType()
				if !ok {
					p.errorf(t.Line, "bad cast type")
				}
				p.expectPunct(")")
				x := p.parseUnary()
				return &CastExpr{To: typ, X: x, position: position(t.Line)}
			}
		}
	}
	if t.Kind == Keyword && t.Text == "sizeof" {
		p.next()
		p.expectPunct("(")
		if isTypeStart(p.cur()) {
			typ, _, _ := p.parseType()
			p.expectPunct(")")
			return &SizeofExpr{Of: typ, position: position(t.Line)}
		}
		// sizeof(expr): evaluate to the size of the expression's type;
		// modelled as sizeof its type after checking, but the corpus
		// only uses sizeof(type). Parse the expression, wrap as sizeof
		// of a long for tolerance.
		x := p.parseExpr()
		p.expectPunct(")")
		_ = x
		return &SizeofExpr{Of: Type{Base: "long"}, position: position(t.Line)}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() Expr {
	x := p.parsePrimary()
	for {
		t := p.cur()
		if t.Kind != Punct {
			return x
		}
		switch t.Text {
		case "[":
			p.next()
			idx := p.parseExpr()
			p.expectPunct("]")
			x = &IndexExpr{X: x, Index: idx, position: position(t.Line)}
		case "++", "--":
			p.next()
			x = &PostfixExpr{Op: t.Text, X: x, position: position(t.Line)}
		case ".", "->":
			p.errorf(t.Line, "member access is not supported by the test dialect")
			p.next()
			if p.cur().Kind == Ident {
				p.next()
			}
			return x
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case Ident:
		p.next()
		if p.atPunct("(") {
			return p.parseCall(t)
		}
		return &IdentExpr{Name: t.Text, position: position(t.Line)}
	case IntLit:
		p.next()
		v, err := strconv.ParseInt(t.Text, 0, 64)
		if err != nil {
			p.errorf(t.Line, "bad integer literal %q", t.Text)
		}
		return &IntLitExpr{Value: v, position: position(t.Line)}
	case FloatLit:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			p.errorf(t.Line, "bad float literal %q", t.Text)
		}
		return &FloatLitExpr{Value: v, Text: t.Text, position: position(t.Line)}
	case StringLit:
		p.next()
		return &StringLitExpr{Value: t.Text, position: position(t.Line)}
	case CharLit:
		p.next()
		var b byte
		if len(t.Text) > 0 {
			b = t.Text[0]
		}
		return &CharLitExpr{Value: b, position: position(t.Line)}
	case Punct:
		if t.Text == "(" {
			p.next()
			x := p.parseExpr()
			p.expectPunct(")")
			return x
		}
	}
	p.errorf(t.Line, "expected expression, found %s %q", t.Kind, t.Text)
	p.next()
	return &IntLitExpr{Value: 0, position: position(t.Line)}
}

func (p *Parser) parseCall(nameTok Token) Expr {
	call := &CallExpr{Fun: nameTok.Text, position: position(nameTok.Line)}
	p.expectPunct("(")
	if !p.atPunct(")") {
		for {
			call.Args = append(call.Args, p.parseAssign())
			if !p.accept(Punct, ",") {
				break
			}
		}
	}
	p.expectPunct(")")
	return call
}

// CountBraceBalance scans raw source text and reports the difference
// between opening and closing braces outside strings/comments, plus
// whether any closing brace appeared before its opener. This textual
// check backs both the compiler's fast-path diagnostics and the
// judge's structural feature extraction.
func CountBraceBalance(src string) (balance int, earlyClose bool) {
	inLine, inBlock, inStr, inChar := false, false, false, false
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inLine:
			if c == '\n' {
				inLine = false
			}
		case inBlock:
			if c == '*' && i+1 < len(src) && src[i+1] == '/' {
				inBlock = false
				i++
			}
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case inChar:
			if c == '\\' {
				i++
			} else if c == '\'' {
				inChar = false
			}
		default:
			switch c {
			case '/':
				if i+1 < len(src) {
					if src[i+1] == '/' {
						inLine = true
					} else if src[i+1] == '*' {
						inBlock = true
					}
				}
			case '"':
				inStr = true
			case '\'':
				inChar = true
			case '{':
				balance++
			case '}':
				balance--
				if balance < 0 {
					earlyClose = true
				}
			}
		}
	}
	return balance, earlyClose
}

// StripComments removes // and /* */ comments from source, preserving
// newlines so line numbers stay stable. Used by textual mutators.
func StripComments(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	inLine, inBlock, inStr := false, false, false
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inLine:
			if c == '\n' {
				inLine = false
				b.WriteByte(c)
			}
		case inBlock:
			if c == '\n' {
				b.WriteByte(c)
			}
			if c == '*' && i+1 < len(src) && src[i+1] == '/' {
				inBlock = false
				i++
			}
		case inStr:
			b.WriteByte(c)
			if c == '\\' && i+1 < len(src) {
				b.WriteByte(src[i+1])
				i++
			} else if c == '"' {
				inStr = false
			}
		default:
			if c == '/' && i+1 < len(src) && src[i+1] == '/' {
				inLine = true
				i++
				continue
			}
			if c == '/' && i+1 < len(src) && src[i+1] == '*' {
				inBlock = true
				i++
				continue
			}
			if c == '"' {
				inStr = true
			}
			b.WriteByte(c)
		}
	}
	return b.String()
}
