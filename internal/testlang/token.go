// Package testlang implements the front ends for the test language the
// reproduction's compiler substrate accepts: a C dialect (covering the
// C and C++ files of the V&V suites) and a free-form Fortran subset.
// It provides lexing, parsing to an AST, structured directive
// (#pragma acc / #pragma omp / !$acc / !$omp) parsing, and source
// rendering used by the corpus generator.
//
// The dialect is deliberately the subset that compiler V&V tests for
// directive-based models actually use: scalar and array arithmetic,
// heap allocation, loops, conditionals, printf-style reporting, and
// directives. Everything the corpus generator can emit parses here,
// and everything that parses here executes on internal/machine.
package testlang

import "fmt"

// Kind classifies a lexical token.
type Kind int

// Token kinds. Operators carry their spelling in Token.Text.
const (
	EOF Kind = iota
	Ident
	Keyword
	IntLit
	FloatLit
	StringLit
	CharLit
	Punct   // operators and punctuation, e.g. "+", "==", "{", ";"
	Pragma  // a whole "#pragma ..." line (raw text, without "#pragma ")
	Include // a whole "#include ..." line
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "identifier"
	case Keyword:
		return "keyword"
	case IntLit:
		return "integer literal"
	case FloatLit:
		return "float literal"
	case StringLit:
		return "string literal"
	case CharLit:
		return "char literal"
	case Punct:
		return "punctuation"
	case Pragma:
		return "pragma"
	case Include:
		return "include"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Token is one lexical token with its source position (1-based line).
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	return fmt.Sprintf("%s %q @%d:%d", t.Kind, t.Text, t.Line, t.Col)
}

// keywords of the C dialect. "unsigned" and "signed" are accepted and
// folded into the base type; "const" and "static" are accepted and
// ignored semantically.
var keywords = map[string]bool{
	"int": true, "long": true, "float": true, "double": true,
	"char": true, "void": true, "short": true,
	"unsigned": true, "signed": true, "const": true, "static": true,
	"if": true, "else": true, "for": true, "while": true, "do": true,
	"return": true, "break": true, "continue": true,
	"sizeof": true, "struct": true, "typedef": true, "extern": true,
	"bool": true, // accepted for C++ sources
}

// IsKeyword reports whether s is a reserved word of the C dialect.
func IsKeyword(s string) bool { return keywords[s] }

// multi-character operators, longest-match-first per leading byte.
var multiOps = []string{
	"<<=", ">>=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "->",
	"::", // C++ scope operator, tolerated by the lexer
}
