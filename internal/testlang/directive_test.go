package testlang

import (
	"reflect"
	"testing"

	"repro/internal/spec"
)

func TestParseDirectiveBasics(t *testing.T) {
	d, ok := ParseDirective("acc parallel loop reduction(+:sum) copyin(a[0:N])", spec.OpenACC, 3)
	if !ok {
		t.Fatal("directive not recognised")
	}
	if d.Name != "parallel loop" || !d.Known {
		t.Fatalf("directive = %+v", d)
	}
	if d.Pos() != 3 {
		t.Fatalf("pos = %d", d.Pos())
	}
	if len(d.Clauses) != 2 {
		t.Fatalf("clauses = %+v", d.Clauses)
	}
	if d.Clauses[0].Name != "reduction" || d.Clauses[0].Arg != "+:sum" {
		t.Fatalf("clause 0 = %+v", d.Clauses[0])
	}
	if d.Clauses[1].Name != "copyin" || d.Clauses[1].Arg != "a[0:N]" {
		t.Fatalf("clause 1 = %+v", d.Clauses[1])
	}
}

func TestParseDirectiveWrongSentinel(t *testing.T) {
	if _, ok := ParseDirective("omp parallel for", spec.OpenACC, 1); ok {
		t.Fatal("omp pragma accepted as OpenACC directive")
	}
	if _, ok := ParseDirective("once", spec.OpenACC, 1); ok {
		t.Fatal("#pragma once accepted as directive")
	}
}

func TestParseDirectiveUnknownName(t *testing.T) {
	d, ok := ParseDirective("acc parallell loop", spec.OpenACC, 1)
	if !ok {
		t.Fatal("sentinel matched, should return unknown directive")
	}
	if d.Known {
		t.Fatal("misspelled directive marked known")
	}
	if d.Name != "parallell" {
		t.Fatalf("name = %q", d.Name)
	}
}

func TestParseDirectiveGreedyName(t *testing.T) {
	d, ok := ParseDirective("omp target teams distribute parallel for map(tofrom: x[0:n]) num_teams(4)", spec.OpenMP, 1)
	if !ok || !d.Known {
		t.Fatalf("directive = %+v", d)
	}
	if d.Name != "target teams distribute parallel for" {
		t.Fatalf("name = %q", d.Name)
	}
	if len(d.Clauses) != 2 || d.Clauses[0].Name != "map" || d.Clauses[1].Name != "num_teams" {
		t.Fatalf("clauses = %+v", d.Clauses)
	}
}

func TestParseDirectiveClauseWithSpaces(t *testing.T) {
	d, ok := ParseDirective("acc parallel loop reduction( + : sum )", spec.OpenACC, 1)
	if !ok || len(d.Clauses) != 1 {
		t.Fatalf("directive = %+v", d)
	}
	if d.Clauses[0].Name != "reduction" {
		t.Fatalf("clause = %+v", d.Clauses[0])
	}
	op, vars, ok := ReductionParts(d.Clauses[0].Arg)
	if !ok || op != "+" || len(vars) != 1 || vars[0] != "sum" {
		t.Fatalf("reduction parts = %q %v %v", op, vars, ok)
	}
}

func TestParseDirectiveBareClauses(t *testing.T) {
	d, ok := ParseDirective("acc loop independent gang vector", spec.OpenACC, 1)
	if !ok || d.Name != "loop" {
		t.Fatalf("directive = %+v", d)
	}
	var names []string
	for _, c := range d.Clauses {
		names = append(names, c.Name)
		if c.HasParens {
			t.Errorf("clause %q should have no parens", c.Name)
		}
	}
	if !reflect.DeepEqual(names, []string{"independent", "gang", "vector"}) {
		t.Fatalf("clause names = %v", names)
	}
}

func TestDirectiveString(t *testing.T) {
	d, _ := ParseDirective("acc parallel loop reduction(+:sum) async(1)", spec.OpenACC, 1)
	want := "acc parallel loop reduction(+:sum) async(1)"
	if got := d.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestClauseVars(t *testing.T) {
	cases := []struct {
		arg  string
		want []string
	}{
		{"a", []string{"a"}},
		{"a, b, c", []string{"a", "b", "c"}},
		{"a[0:n]", []string{"a"}},
		{"a[0:n], b[0:n]", []string{"a", "b"}},
		{"+:sum", []string{"sum"}},
		{"tofrom: x[0:n], y", []string{"x", "y"}},
		{"max:best", []string{"best"}},
		{"", nil},
	}
	for _, c := range cases {
		got := ClauseVars(c.arg)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ClauseVars(%q) = %v, want %v", c.arg, got, c.want)
		}
	}
}

func TestClauseVarsSkipsSectionBounds(t *testing.T) {
	// The section bounds 0 and n must not leak: n is a bound, not a
	// mapped variable. (Bounds are validated separately by sema.)
	got := ClauseVars("tofrom: a[0:n]")
	if !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("ClauseVars = %v, want [a]", got)
	}
}

func TestReductionPartsErrors(t *testing.T) {
	if _, _, ok := ReductionParts("sum"); ok {
		t.Fatal("reduction without colon accepted")
	}
	op, vars, ok := ReductionParts("min:lo, hi")
	if !ok || op != "min" || len(vars) != 2 {
		t.Fatalf("parts = %q %v %v", op, vars, ok)
	}
}

func TestMapParts(t *testing.T) {
	mt, vars := MapParts("tofrom: a[0:n]")
	if mt != "tofrom" || !reflect.DeepEqual(vars, []string{"a"}) {
		t.Fatalf("MapParts = %q %v", mt, vars)
	}
	mt, vars = MapParts("a, b")
	if mt != "tofrom" || len(vars) != 2 {
		t.Fatalf("default map type = %q %v", mt, vars)
	}
	mt, _ = MapParts("alloc: scratch")
	if mt != "alloc" {
		t.Fatalf("map type = %q", mt)
	}
}

func TestSplitDirectiveWords(t *testing.T) {
	words := splitDirectiveWords("acc parallel loop reduction(+ : sum) copyin(a[0:n], b[0:n])")
	want := []string{"acc", "parallel", "loop", "reduction(+ : sum)", "copyin(a[0:n], b[0:n])"}
	if !reflect.DeepEqual(words, want) {
		t.Fatalf("words = %q, want %q", words, want)
	}
}
