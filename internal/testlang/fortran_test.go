package testlang

import (
	"strings"
	"testing"

	"repro/internal/spec"
)

const fortranVecAdd = `program vecadd
    use openacc
    implicit none
    integer, parameter :: n = 1024
    integer :: i, errs
    real(8) :: a(n), b(n), c(n), expect

    do i = 1, n
        a(i) = i * 0.5
        b(i) = i * 2.0
    end do

    !$acc parallel loop copyin(a, b) copyout(c)
    do i = 1, n
        c(i) = a(i) + b(i)
    end do

    errs = 0
    do i = 1, n
        expect = a(i) + b(i)
        if (abs(c(i) - expect) > 1e-9) then
            errs = errs + 1
        end if
    end do

    if (errs /= 0) then
        print *, "FAIL", errs
        stop 1
    end if
    print *, "PASS"
end program vecadd
`

func TestFortranValidFile(t *testing.T) {
	info, errs := CheckFortran(fortranVecAdd, spec.OpenACC)
	if len(errs) != 0 {
		t.Fatalf("valid Fortran flagged: %v", errs)
	}
	if info.ProgramName != "vecadd" {
		t.Fatalf("program name = %q", info.ProgramName)
	}
	if !info.ImplicitNone {
		t.Fatal("implicit none not detected")
	}
	if len(info.Directives) != 1 || info.Directives[0].Name != "parallel loop" {
		t.Fatalf("directives = %+v", info.Directives)
	}
	for _, name := range []string{"a", "b", "c", "i", "errs", "n", "expect"} {
		if !info.Declared[name] {
			t.Errorf("declared set missing %q", name)
		}
	}
}

func TestFortranUndeclaredVariable(t *testing.T) {
	src := strings.Replace(fortranVecAdd, "c(i) = a(i) + b(i)", "c(i) = a(i) + bogus(i)", 1)
	_, errs := CheckFortran(src, spec.OpenACC)
	if len(errs) == 0 {
		t.Fatal("undeclared identifier not flagged")
	}
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "bogus") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no diagnostic names the undeclared id: %v", errs)
	}
}

func TestFortranUnbalancedParens(t *testing.T) {
	src := strings.Replace(fortranVecAdd, "c(i) = a(i) + b(i)", "c(i = a(i) + b(i)", 1)
	_, errs := CheckFortran(src, spec.OpenACC)
	if len(errs) == 0 {
		t.Fatal("unbalanced parens not flagged")
	}
}

func TestFortranUnclosedBlock(t *testing.T) {
	src := strings.Replace(fortranVecAdd, "    end do\n\n    !$acc", "\n    !$acc", 1)
	_, errs := CheckFortran(src, spec.OpenACC)
	if len(errs) == 0 {
		t.Fatal("unclosed do block not flagged")
	}
}

func TestFortranMissingProgram(t *testing.T) {
	_, errs := CheckFortran("integer :: i\ni = 1\n", spec.OpenACC)
	if len(errs) == 0 {
		t.Fatal("file without PROGRAM accepted")
	}
}

func TestFortranUnknownDirective(t *testing.T) {
	src := strings.Replace(fortranVecAdd, "!$acc parallel loop", "!$acc paralel loop", 1)
	_, errs := CheckFortran(src, spec.OpenACC)
	if len(errs) == 0 {
		t.Fatal("unknown directive not flagged")
	}
}

func TestFortranBadClause(t *testing.T) {
	src := strings.Replace(fortranVecAdd, "copyin(a, b) copyout(c)", "copyin(a, b) num_threads(4)", 1)
	_, errs := CheckFortran(src, spec.OpenACC)
	if len(errs) == 0 {
		t.Fatal("OpenMP clause on OpenACC directive not flagged")
	}
}

func TestFortranLoopDirectiveNeedsDo(t *testing.T) {
	src := strings.Replace(fortranVecAdd, "!$acc parallel loop copyin(a, b) copyout(c)\n    do i = 1, n\n        c(i) = a(i) + b(i)\n    end do",
		"!$acc parallel loop copyin(a, b) copyout(c)\n    c(1) = a(1) + b(1)", 1)
	_, errs := CheckFortran(src, spec.OpenACC)
	if len(errs) == 0 {
		t.Fatal("loop directive without DO not flagged")
	}
}

func TestFortranForeignSentinelIsComment(t *testing.T) {
	src := strings.Replace(fortranVecAdd, "!$acc parallel loop copyin(a, b) copyout(c)",
		"!$omp parallel do\n    !$acc parallel loop copyin(a, b) copyout(c)", 1)
	info, errs := CheckFortran(src, spec.OpenACC)
	if len(errs) != 0 {
		t.Fatalf("foreign sentinel should be ignored as comment: %v", errs)
	}
	if len(info.Directives) != 1 {
		t.Fatalf("directives = %d, want 1", len(info.Directives))
	}
}

func TestFortranAllocatable(t *testing.T) {
	src := `program alloc
    implicit none
    integer :: n, i
    real(8), allocatable :: a(:)
    n = 100
    allocate(a(n))
    do i = 1, n
        a(i) = i
    end do
    deallocate(a)
    print *, "PASS"
end program alloc
`
	info, errs := CheckFortran(src, spec.OpenACC)
	if len(errs) != 0 {
		t.Fatalf("allocatable program flagged: %v", errs)
	}
	if !info.Declared["a"] {
		t.Fatal("allocatable decl not recorded")
	}
}

func TestFortranCommentStripping(t *testing.T) {
	src := strings.Replace(fortranVecAdd, `print *, "PASS"`, `print *, "PASS"  ! done (unbalanced in comment`, 1)
	_, errs := CheckFortran(src, spec.OpenACC)
	if len(errs) != 0 {
		t.Fatalf("trailing comment confused the checker: %v", errs)
	}
}

func TestFortranStringWithBang(t *testing.T) {
	src := strings.Replace(fortranVecAdd, `print *, "PASS"`, `print *, "PASS! (ok"`, 1)
	_, errs := CheckFortran(src, spec.OpenACC)
	if len(errs) != 0 {
		t.Fatalf("! inside string treated as comment: %v", errs)
	}
}

func TestFortranOpenMPDirectives(t *testing.T) {
	src := `program omptest
    use omp_lib
    implicit none
    integer :: i, total
    total = 0
    !$omp parallel do reduction(+:total)
    do i = 1, 100
        total = total + i
    end do
    if (total /= 5050) then
        stop 1
    end if
end program omptest
`
	// "parallel do" is the Fortran spelling; the spec table stores the
	// C names, so "parallel do" is unknown -> the Fortran checker maps
	// "do" to "for" before lookup? It does not: the reproduction's
	// corpus emits C-style names ("parallel for") only for C files and
	// uses "parallel loop"-style OpenACC names in Fortran. For OpenMP
	// Fortran we accept that "parallel do" is reported unknown, which
	// matches the paper's scope: its Fortran files are OpenACC-only.
	_, errs := CheckFortran(src, spec.OpenMP)
	if len(errs) == 0 {
		t.Skip("parallel do accepted; fine if spec gains Fortran names")
	}
}
