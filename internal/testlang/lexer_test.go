package testlang

import (
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, errs := Tokenize(`int main() { return 0; }`)
	if len(errs) != 0 {
		t.Fatalf("unexpected lex errors: %v", errs)
	}
	want := []struct {
		kind Kind
		text string
	}{
		{Keyword, "int"}, {Ident, "main"}, {Punct, "("}, {Punct, ")"},
		{Punct, "{"}, {Keyword, "return"}, {IntLit, "0"}, {Punct, ";"},
		{Punct, "}"}, {EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v, want %v %q", i, toks[i], w.kind, w.text)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
		text string
	}{
		{"42", IntLit, "42"},
		{"0", IntLit, "0"},
		{"3.14", FloatLit, "3.14"},
		{"1e10", FloatLit, "1e10"},
		{"2.5e-3", FloatLit, "2.5e-3"},
		{"1.0f", FloatLit, "1.0"},
		{"100L", IntLit, "100"},
		{"0x1F", IntLit, "0x1F"},
		{".5", FloatLit, ".5"},
	}
	for _, c := range cases {
		toks, errs := Tokenize(c.src)
		if len(errs) != 0 {
			t.Errorf("%q: lex errors %v", c.src, errs)
			continue
		}
		if toks[0].Kind != c.kind || toks[0].Text != c.text {
			t.Errorf("%q lexed as %v, want %v %q", c.src, toks[0], c.kind, c.text)
		}
	}
}

func TestLexStringsAndEscapes(t *testing.T) {
	toks, errs := Tokenize(`printf("a\tb\n");`)
	if len(errs) != 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	if toks[2].Kind != StringLit || toks[2].Text != "a\tb\n" {
		t.Fatalf("string literal = %q", toks[2].Text)
	}
}

func TestLexUnterminatedString(t *testing.T) {
	_, errs := Tokenize("\"abc\nint x;")
	if len(errs) == 0 {
		t.Fatal("unterminated string produced no error")
	}
}

func TestLexCharLiterals(t *testing.T) {
	toks, errs := Tokenize(`'a' '\n'`)
	if len(errs) != 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	if toks[0].Kind != CharLit || toks[0].Text != "a" {
		t.Fatalf("char literal 0 = %v", toks[0])
	}
	if toks[1].Kind != CharLit || toks[1].Text != "\n" {
		t.Fatalf("char literal 1 = %v", toks[1])
	}
}

func TestLexComments(t *testing.T) {
	src := `
// a line comment
int /* inline */ x; /* multi
line */ int y;
`
	toks, errs := Tokenize(src)
	if len(errs) != 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	var idents []string
	for _, tok := range toks {
		if tok.Kind == Ident {
			idents = append(idents, tok.Text)
		}
	}
	if len(idents) != 2 || idents[0] != "x" || idents[1] != "y" {
		t.Fatalf("idents = %v", idents)
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	_, errs := Tokenize("int x; /* never closed")
	if len(errs) == 0 {
		t.Fatal("unterminated block comment produced no error")
	}
}

func TestLexPragmaAndInclude(t *testing.T) {
	src := "#include <stdio.h>\n#pragma acc parallel loop\nint x;\n"
	toks, errs := Tokenize(src)
	if len(errs) != 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	if toks[0].Kind != Include || toks[0].Text != "<stdio.h>" {
		t.Fatalf("include token = %v", toks[0])
	}
	if toks[1].Kind != Pragma || toks[1].Text != "acc parallel loop" {
		t.Fatalf("pragma token = %v", toks[1])
	}
}

func TestLexPragmaLineContinuation(t *testing.T) {
	src := "#pragma acc parallel loop \\\n    reduction(+:sum)\nint x;\n"
	toks, errs := Tokenize(src)
	if len(errs) != 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	if toks[0].Kind != Pragma {
		t.Fatalf("first token = %v", toks[0])
	}
	if want := "acc parallel loop      reduction(+:sum)"; toks[0].Text != want {
		t.Fatalf("pragma text = %q, want %q", toks[0].Text, want)
	}
}

func TestLexDefineSubstitution(t *testing.T) {
	src := "#define N 1024\nint a[N];\n"
	toks, errs := Tokenize(src)
	if len(errs) != 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	var found bool
	for _, tok := range toks {
		if tok.Kind == IntLit && tok.Text == "1024" {
			found = true
		}
		if tok.Kind == Ident && tok.Text == "N" {
			t.Fatal("macro N not substituted")
		}
	}
	if !found {
		t.Fatal("substituted literal not found")
	}
}

func TestLexDefineMultiTokenBody(t *testing.T) {
	src := "#define SIZE (16 * 4)\nint a[SIZE];\n"
	toks, errs := Tokenize(src)
	if len(errs) != 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.Text)
	}
	joined := ""
	for _, s := range texts {
		joined += s + " "
	}
	if want := "( 16 * 4 )"; !containsSeq(toks, []string{"(", "16", "*", "4", ")"}) {
		t.Fatalf("expanded tokens missing %q in %q", want, joined)
	}
}

func containsSeq(toks []Token, seq []string) bool {
	for i := 0; i+len(seq) <= len(toks); i++ {
		ok := true
		for j, s := range seq {
			if toks[i+j].Text != s {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestLexFunctionLikeMacroRejected(t *testing.T) {
	_, errs := Tokenize("#define SQ(x) ((x)*(x))\nint y;\n")
	if len(errs) == 0 {
		t.Fatal("function-like macro accepted")
	}
}

func TestLexMultiCharOperators(t *testing.T) {
	toks, errs := Tokenize("a <= b && c++ != --d || e += 1;")
	if len(errs) != 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	var ops []string
	for _, tok := range toks {
		if tok.Kind == Punct {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"<=", "&&", "++", "!=", "--", "||", "+=", ";"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
}

func TestLexLineNumbers(t *testing.T) {
	src := "int x;\nint y;\n\nint z;\n"
	toks, _ := Tokenize(src)
	var lines []int
	for _, tok := range toks {
		if tok.Kind == Ident {
			lines = append(lines, tok.Line)
		}
	}
	if len(lines) != 3 || lines[0] != 1 || lines[1] != 2 || lines[2] != 4 {
		t.Fatalf("ident lines = %v, want [1 2 4]", lines)
	}
}

func TestLexIfdefSkipped(t *testing.T) {
	src := "#ifdef FOO\n#endif\nint x;\n"
	toks, errs := Tokenize(src)
	if len(errs) != 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	if toks[0].Kind != Keyword || toks[0].Text != "int" {
		t.Fatalf("first token = %v, want int keyword", toks[0])
	}
}

func TestLexUnexpectedCharacter(t *testing.T) {
	_, errs := Tokenize("int x = `y`;")
	if len(errs) == 0 {
		t.Fatal("backtick accepted without error")
	}
}
