package testlang

import (
	"fmt"
	"strconv"
	"strings"
)

// Render produces compilable source text for the file in its own
// language (C or C++; Fortran files are produced by the dedicated
// generator in internal/corpus and re-checked by the Fortran front
// end, not rendered from this AST).
func Render(f *File) string {
	r := &renderer{lang: f.Lang}
	r.file(f)
	return r.b.String()
}

type renderer struct {
	b      strings.Builder
	indent int
	lang   Language
}

func (r *renderer) line(format string, args ...any) {
	r.b.WriteString(strings.Repeat("    ", r.indent))
	fmt.Fprintf(&r.b, format, args...)
	r.b.WriteByte('\n')
}

func (r *renderer) file(f *File) {
	for _, inc := range f.Includes {
		r.line("#include %s", inc)
	}
	if len(f.Includes) > 0 {
		r.b.WriteByte('\n')
	}
	for i, d := range f.Decls {
		if i > 0 {
			r.b.WriteByte('\n')
		}
		switch n := d.(type) {
		case *VarDecl:
			r.line("%s;", r.varDecl(n))
		case *FuncDecl:
			r.funcDecl(n)
		}
	}
}

func (r *renderer) varDecl(v *VarDecl) string {
	var b strings.Builder
	if v.Const {
		b.WriteString("const ")
	}
	b.WriteString(v.Type.Base)
	b.WriteByte(' ')
	b.WriteString(strings.Repeat("*", v.Type.Ptr))
	b.WriteString(v.Name)
	for _, dim := range v.ArrayDims {
		b.WriteByte('[')
		if dim != nil {
			b.WriteString(RenderExpr(dim))
		}
		b.WriteByte(']')
	}
	if v.Init != nil {
		b.WriteString(" = ")
		b.WriteString(RenderExpr(v.Init))
	}
	return b.String()
}

func (r *renderer) funcDecl(fd *FuncDecl) {
	for _, pr := range fd.Pragmas {
		r.line("#pragma %s", pr.Dir.String())
	}
	var params []string
	if len(fd.Params) == 0 {
		params = []string{}
	}
	for _, p := range fd.Params {
		s := p.Type.Base + " " + strings.Repeat("*", p.Type.Ptr) + p.Name
		if p.Array {
			s += "[]"
		}
		params = append(params, s)
	}
	sig := fmt.Sprintf("%s %s(%s)", fd.Ret, fd.Name, strings.Join(params, ", "))
	if fd.Body == nil {
		r.line("%s;", sig)
		return
	}
	r.line("%s", sig)
	r.block(fd.Body)
}

func (r *renderer) block(b *Block) {
	r.line("{")
	r.indent++
	for _, s := range b.Stmts {
		r.stmt(s)
	}
	r.indent--
	r.line("}")
}

func (r *renderer) stmt(s Stmt) {
	switch n := s.(type) {
	case *Block:
		r.block(n)
	case *DeclStmt:
		for _, d := range n.Decls {
			r.line("%s;", r.varDecl(d))
		}
	case *ExprStmt:
		r.line("%s;", RenderExpr(n.X))
	case *EmptyStmt:
		r.line(";")
	case *IfStmt:
		r.line("if (%s)", RenderExpr(n.Cond))
		r.stmtAsBody(n.Then)
		if n.Else != nil {
			r.line("else")
			r.stmtAsBody(n.Else)
		}
	case *ForStmt:
		init := ""
		switch in := n.Init.(type) {
		case *DeclStmt:
			if len(in.Decls) == 1 {
				init = r.varDecl(in.Decls[0])
			}
		case *ExprStmt:
			init = RenderExpr(in.X)
		}
		cond := ""
		if n.Cond != nil {
			cond = RenderExpr(n.Cond)
		}
		post := ""
		if n.Post != nil {
			post = RenderExpr(n.Post)
		}
		r.line("for (%s; %s; %s)", init, cond, post)
		r.stmtAsBody(n.Body)
	case *WhileStmt:
		r.line("while (%s)", RenderExpr(n.Cond))
		r.stmtAsBody(n.Body)
	case *ReturnStmt:
		if n.X != nil {
			r.line("return %s;", RenderExpr(n.X))
		} else {
			r.line("return;")
		}
	case *BreakStmt:
		r.line("break;")
	case *ContinueStmt:
		r.line("continue;")
	case *DirectiveStmt:
		r.line("#pragma %s", n.Dir.String())
		if n.Body != nil {
			r.stmt(n.Body)
		}
	case *UnknownPragmaStmt:
		r.line("#pragma %s", n.Raw)
	}
}

// stmtAsBody renders the body of a control statement; blocks render
// with braces, single statements render indented.
func (r *renderer) stmtAsBody(s Stmt) {
	if b, ok := s.(*Block); ok {
		r.block(b)
		return
	}
	r.indent++
	r.stmt(s)
	r.indent--
}

// RenderExpr renders an expression to C syntax.
func RenderExpr(e Expr) string {
	switch n := e.(type) {
	case nil:
		return ""
	case *IdentExpr:
		return n.Name
	case *IntLitExpr:
		return strconv.FormatInt(n.Value, 10)
	case *FloatLitExpr:
		if n.Text != "" {
			return n.Text
		}
		s := strconv.FormatFloat(n.Value, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *StringLitExpr:
		return strconv.Quote(n.Value)
	case *CharLitExpr:
		switch n.Value {
		case '\n':
			return `'\n'`
		case '\t':
			return `'\t'`
		case '\'':
			return `'\''`
		case '\\':
			return `'\\'`
		default:
			return "'" + string(n.Value) + "'"
		}
	case *BinaryExpr:
		return fmt.Sprintf("%s %s %s", renderOperand(n.L, n.Op, true), n.Op, renderOperand(n.R, n.Op, false))
	case *UnaryExpr:
		operand := RenderExpr(n.X)
		if needsParens(n.X) {
			operand = "(" + operand + ")"
		}
		return n.Op + operand
	case *PostfixExpr:
		operand := RenderExpr(n.X)
		if needsParens(n.X) {
			operand = "(" + operand + ")"
		}
		return operand + n.Op
	case *AssignExpr:
		return fmt.Sprintf("%s %s %s", RenderExpr(n.L), n.Op, RenderExpr(n.R))
	case *CondExpr:
		return fmt.Sprintf("%s ? %s : %s", RenderExpr(n.Cond), RenderExpr(n.Then), RenderExpr(n.Else))
	case *CallExpr:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = RenderExpr(a)
		}
		return fmt.Sprintf("%s(%s)", n.Fun, strings.Join(args, ", "))
	case *IndexExpr:
		base := RenderExpr(n.X)
		if needsParens(n.X) {
			base = "(" + base + ")"
		}
		return fmt.Sprintf("%s[%s]", base, RenderExpr(n.Index))
	case *CastExpr:
		operand := RenderExpr(n.X)
		if needsParens(n.X) {
			operand = "(" + operand + ")"
		}
		return fmt.Sprintf("(%s)%s", n.To, operand)
	case *SizeofExpr:
		return fmt.Sprintf("sizeof(%s)", n.Of)
	case *InitList:
		elems := make([]string, len(n.Elems))
		for i, el := range n.Elems {
			elems[i] = RenderExpr(el)
		}
		return "{" + strings.Join(elems, ", ") + "}"
	default:
		return "/*?*/0"
	}
}

// renderOperand parenthesises operands of binary expressions whenever
// precedence could be ambiguous. The renderer prefers a few redundant
// parentheses over subtle precedence bugs in generated tests.
func renderOperand(e Expr, parentOp string, left bool) string {
	s := RenderExpr(e)
	b, ok := e.(*BinaryExpr)
	if !ok {
		if _, isAssign := e.(*AssignExpr); isAssign {
			return "(" + s + ")"
		}
		if _, isCond := e.(*CondExpr); isCond {
			return "(" + s + ")"
		}
		return s
	}
	pp, cp := binPrec[parentOp], binPrec[b.Op]
	if cp < pp || (cp == pp && !left) {
		return "(" + s + ")"
	}
	return s
}

func needsParens(e Expr) bool {
	switch e.(type) {
	case *BinaryExpr, *AssignExpr, *CondExpr, *CastExpr, *UnaryExpr:
		return true
	}
	return false
}
