package testlang

import (
	"fmt"
	"strings"

	"repro/internal/spec"
)

// Language identifies the surface syntax of a source file.
type Language int

const (
	// LangC is a C source file (.c).
	LangC Language = iota
	// LangCPP is a C++ source file (.cpp); the dialect is the same as
	// C plus tolerated C++ lexical extensions.
	LangCPP
	// LangFortran is a free-form Fortran source file (.f90), handled by
	// the Fortran front end in fortran.go.
	LangFortran
)

// String returns the conventional name of the language.
func (l Language) String() string {
	switch l {
	case LangC:
		return "C"
	case LangCPP:
		return "C++"
	case LangFortran:
		return "Fortran"
	default:
		return fmt.Sprintf("Language(%d)", int(l))
	}
}

// Ext returns the conventional file extension including the dot.
func (l Language) Ext() string {
	switch l {
	case LangC:
		return ".c"
	case LangCPP:
		return ".cpp"
	case LangFortran:
		return ".f90"
	default:
		return ".txt"
	}
}

// Type is a C-dialect type. Arrays are represented on declarations via
// VarDecl.ArrayDims rather than in Type itself.
type Type struct {
	// Base is one of "int", "long", "float", "double", "char", "void",
	// "bool". Unsigned/short variants are folded into these.
	Base string
	// Ptr is the pointer depth (0 for scalars, 1 for int*, ...).
	Ptr int
}

func (t Type) String() string {
	return t.Base + strings.Repeat("*", t.Ptr)
}

// IsFloat reports whether the base type is floating point.
func (t Type) IsFloat() bool { return t.Ptr == 0 && (t.Base == "float" || t.Base == "double") }

// IsNumeric reports whether values of this type participate in
// arithmetic.
func (t Type) IsNumeric() bool {
	return t.Ptr == 0 && (t.Base == "int" || t.Base == "long" || t.Base == "float" || t.Base == "double" || t.Base == "char" || t.Base == "bool")
}

// Node is the interface implemented by all AST nodes.
type Node interface {
	// Pos returns the 1-based source line of the node (0 if synthetic).
	Pos() int
}

type position int

func (p position) Pos() int { return int(p) }

// File is a parsed source file.
type File struct {
	Lang     Language
	Includes []string // raw include targets, e.g. "<stdio.h>"
	Decls    []Decl
	position
}

// Decl is a top-level declaration: *FuncDecl or *VarDecl.
type Decl interface {
	Node
	declNode()
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    Type
	Params []Param
	Body   *Block
	// Pragmas holds directives written immediately before the function
	// (e.g. "#pragma acc routine seq").
	Pragmas []*DirectiveStmt
	position
}

func (*FuncDecl) declNode() {}

// Param is one function parameter. ArrayDims holds dimensions for
// parameters declared in array form (e.g. "int a[]", recorded as one
// nil dimension).
type Param struct {
	Name string
	Type Type
	// Array is true when the parameter was written with [] syntax.
	Array bool
}

// VarDecl declares one variable, possibly an array, possibly
// initialised. A single source declaration with multiple declarators
// is parsed into multiple VarDecls.
type VarDecl struct {
	Name string
	Type Type
	// ArrayDims holds the declared dimensions; nil for scalars.
	ArrayDims []Expr
	// Init is the initialiser expression, or nil. Brace initialisers
	// become *InitList.
	Init Expr
	// Const records a const qualifier (semantically ignored).
	Const bool
	position
}

func (*VarDecl) declNode() {}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a compound statement.
type Block struct {
	Stmts []Stmt
	// EndLine is the line of the closing brace, used by mutators.
	EndLine int
	position
}

func (*Block) stmtNode() {}

// DeclStmt wraps variable declarations appearing inside a block.
type DeclStmt struct {
	Decls []*VarDecl
	position
}

func (*DeclStmt) stmtNode() {}

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	X Expr
	position
}

func (*ExprStmt) stmtNode() {}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // nil when absent
	position
}

func (*IfStmt) stmtNode() {}

// ForStmt is a C for loop. Init may be a *DeclStmt or *ExprStmt or nil.
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
	position
}

func (*ForStmt) stmtNode() {}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	position
}

func (*WhileStmt) stmtNode() {}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	X Expr // nil for bare return
	position
}

func (*ReturnStmt) stmtNode() {}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ position }

func (*BreakStmt) stmtNode() {}

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ position }

func (*ContinueStmt) stmtNode() {}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ position }

func (*EmptyStmt) stmtNode() {}

// DirectiveStmt is a parsed #pragma acc/omp directive together with
// the construct it applies to (nil for standalone directives).
type DirectiveStmt struct {
	Dir *Directive
	// Body is the associated statement (a loop for AssocLoop
	// directives, any statement/block for AssocBlock, the single
	// statement for AssocStatement). Nil for standalone directives.
	Body Stmt
	position
}

func (*DirectiveStmt) stmtNode() {}

// UnknownPragmaStmt preserves a #pragma line that is not an acc/omp
// directive of the file's expected shape (e.g. "#pragma once", or a
// corrupted sentinel produced by negative probing). The compiler
// warns on or rejects these depending on personality.
type UnknownPragmaStmt struct {
	Raw string
	position
}

func (*UnknownPragmaStmt) stmtNode() {}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// IdentExpr references a variable or function by name.
type IdentExpr struct {
	Name string
	position
}

func (*IdentExpr) exprNode() {}

// IntLitExpr is an integer literal.
type IntLitExpr struct {
	Value int64
	position
}

func (*IntLitExpr) exprNode() {}

// FloatLitExpr is a floating literal.
type FloatLitExpr struct {
	Value float64
	// Text preserves the original spelling for faithful re-rendering.
	Text string
	position
}

func (*FloatLitExpr) exprNode() {}

// StringLitExpr is a string literal (unescaped value).
type StringLitExpr struct {
	Value string
	position
}

func (*StringLitExpr) exprNode() {}

// CharLitExpr is a character literal.
type CharLitExpr struct {
	Value byte
	position
}

func (*CharLitExpr) exprNode() {}

// BinaryExpr is a binary operation; Op is the operator spelling.
type BinaryExpr struct {
	Op   string
	L, R Expr
	position
}

func (*BinaryExpr) exprNode() {}

// UnaryExpr is a prefix unary operation ("!", "-", "*", "&", "++", "--").
type UnaryExpr struct {
	Op string
	X  Expr
	position
}

func (*UnaryExpr) exprNode() {}

// PostfixExpr is x++ or x--.
type PostfixExpr struct {
	Op string // "++" or "--"
	X  Expr
	position
}

func (*PostfixExpr) exprNode() {}

// AssignExpr is an assignment; Op is "=", "+=", "-=", "*=" or "/=".
type AssignExpr struct {
	Op   string
	L, R Expr
	position
}

func (*AssignExpr) exprNode() {}

// CondExpr is the ternary conditional.
type CondExpr struct {
	Cond, Then, Else Expr
	position
}

func (*CondExpr) exprNode() {}

// CallExpr is a function call.
type CallExpr struct {
	Fun  string
	Args []Expr
	position
}

func (*CallExpr) exprNode() {}

// IndexExpr is array/pointer indexing, possibly multi-dimensional via
// nesting (a[i][j] parses as Index(Index(a,i),j)).
type IndexExpr struct {
	X     Expr
	Index Expr
	position
}

func (*IndexExpr) exprNode() {}

// CastExpr is a C cast, e.g. (int*)malloc(...).
type CastExpr struct {
	To Type
	// ToArray is true for pointer-to-array style casts, unused by the
	// corpus but tolerated.
	X Expr
	position
}

func (*CastExpr) exprNode() {}

// SizeofExpr is sizeof(type).
type SizeofExpr struct {
	Of Type
	position
}

func (*SizeofExpr) exprNode() {}

// InitList is a brace initialiser {a, b, c}.
type InitList struct {
	Elems []Expr
	position
}

func (*InitList) exprNode() {}

// Directive is a structured, parsed directive.
type Directive struct {
	Dialect spec.Dialect
	// Name is the space-normalised directive name, e.g. "parallel loop".
	Name string
	// Clauses in source order.
	Clauses []DirClause
	// Raw preserves the original pragma body text.
	Raw string
	// Known is false when the directive name did not match the spec
	// table (the structured fields are then best-effort).
	Known bool
	position
}

// DirClause is one clause instance on a directive.
type DirClause struct {
	Name string
	// Arg is the raw text inside the parentheses ("" when absent).
	Arg string
	// HasParens records whether parentheses were present (distinguishes
	// "async" from "async()" for validation).
	HasParens bool
}

// String re-renders the directive as it would appear after "#pragma ".
func (d *Directive) String() string {
	var b strings.Builder
	b.WriteString(d.Dialect.Sentinel())
	b.WriteByte(' ')
	b.WriteString(d.Name)
	for _, c := range d.Clauses {
		b.WriteByte(' ')
		b.WriteString(c.Name)
		if c.HasParens {
			b.WriteByte('(')
			b.WriteString(c.Arg)
			b.WriteByte(')')
		}
	}
	return b.String()
}

// Walk traverses the statement tree rooted at s in depth-first order,
// calling fn for every statement; fn returning false prunes descent.
func Walk(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch n := s.(type) {
	case *Block:
		for _, st := range n.Stmts {
			Walk(st, fn)
		}
	case *IfStmt:
		Walk(n.Then, fn)
		Walk(n.Else, fn)
	case *ForStmt:
		Walk(n.Init, fn)
		Walk(n.Body, fn)
	case *WhileStmt:
		Walk(n.Body, fn)
	case *DirectiveStmt:
		Walk(n.Body, fn)
	}
}

// WalkExprs traverses every expression in the statement tree rooted at
// s, including nested subexpressions.
func WalkExprs(s Stmt, fn func(Expr)) {
	Walk(s, func(st Stmt) bool {
		switch n := st.(type) {
		case *DeclStmt:
			for _, d := range n.Decls {
				for _, dim := range d.ArrayDims {
					walkExpr(dim, fn)
				}
				walkExpr(d.Init, fn)
			}
		case *ExprStmt:
			walkExpr(n.X, fn)
		case *IfStmt:
			walkExpr(n.Cond, fn)
		case *ForStmt:
			walkExpr(n.Cond, fn)
			walkExpr(n.Post, fn)
		case *WhileStmt:
			walkExpr(n.Cond, fn)
		case *ReturnStmt:
			walkExpr(n.X, fn)
		}
		return true
	})
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch n := e.(type) {
	case *BinaryExpr:
		walkExpr(n.L, fn)
		walkExpr(n.R, fn)
	case *UnaryExpr:
		walkExpr(n.X, fn)
	case *PostfixExpr:
		walkExpr(n.X, fn)
	case *AssignExpr:
		walkExpr(n.L, fn)
		walkExpr(n.R, fn)
	case *CondExpr:
		walkExpr(n.Cond, fn)
		walkExpr(n.Then, fn)
		walkExpr(n.Else, fn)
	case *CallExpr:
		for _, a := range n.Args {
			walkExpr(a, fn)
		}
	case *IndexExpr:
		walkExpr(n.X, fn)
		walkExpr(n.Index, fn)
	case *CastExpr:
		walkExpr(n.X, fn)
	case *InitList:
		for _, el := range n.Elems {
			walkExpr(el, fn)
		}
	}
}

// Directives returns every DirectiveStmt in the file in source order.
func (f *File) Directives() []*DirectiveStmt {
	var out []*DirectiveStmt
	for _, d := range f.Decls {
		fd, ok := d.(*FuncDecl)
		if !ok {
			continue
		}
		out = append(out, fd.Pragmas...)
		if fd.Body == nil {
			continue
		}
		Walk(fd.Body, func(s Stmt) bool {
			if ds, ok := s.(*DirectiveStmt); ok {
				out = append(out, ds)
			}
			return true
		})
	}
	return out
}
