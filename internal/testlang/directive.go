package testlang

import (
	"strings"

	"repro/internal/spec"
)

// ParseDirective parses the body of a "#pragma" line (text after the
// word "pragma", e.g. "acc parallel loop reduction(+:sum)") into a
// structured Directive for the given dialect's spec table.
//
// It returns (nil, false) when the body does not start with the
// dialect's sentinel at all — the line is then some other pragma, not
// a directive of this model. When the sentinel matches but the
// directive name is not in the spec table, it returns a Directive with
// Known=false so the compiler can report "unknown directive" (the
// shape negative-probing mutation 0 produces).
func ParseDirective(body string, dialect spec.Dialect, line int) (*Directive, bool) {
	fields := splitDirectiveWords(body)
	if len(fields) == 0 || fields[0] != dialect.Sentinel() {
		return nil, false
	}
	rest := fields[1:]
	d := &Directive{
		Dialect:  dialect,
		Raw:      body,
		position: position(line),
	}
	table := spec.ForDialect(dialect)
	dir, consumed, ok := table.LongestDirective(rest)
	if !ok {
		// Unknown directive: take the first word as its name.
		if len(rest) > 0 {
			d.Name = stripClauseParens(rest[0])
			rest = rest[1:]
		}
		d.Known = false
		d.Clauses = parseClauses(rest)
		return d, true
	}
	d.Name = dir.Name
	d.Known = true
	d.Clauses = parseClauses(rest[consumed:])
	return d, true
}

// stripClauseParens removes a trailing "(...)" from a word, so an
// unknown directive written as "parallell(x)" still yields a name.
func stripClauseParens(w string) string {
	if i := strings.IndexByte(w, '('); i >= 0 {
		return w[:i]
	}
	return w
}

// splitDirectiveWords splits a directive body into words, keeping each
// clause's parenthesised argument attached to the clause word even if
// it contains spaces or commas: "reduction( + : sum )" is one word.
func splitDirectiveWords(body string) []string {
	var words []string
	i := 0
	n := len(body)
	for i < n {
		for i < n && (body[i] == ' ' || body[i] == '\t' || body[i] == ',') {
			i++
		}
		if i >= n {
			break
		}
		start := i
		depth := 0
		for i < n {
			c := body[i]
			if c == '(' {
				depth++
			} else if c == ')' {
				if depth > 0 {
					depth--
				}
			} else if (c == ' ' || c == '\t' || c == ',') && depth == 0 {
				break
			}
			i++
		}
		words = append(words, body[start:i])
	}
	return words
}

// parseClauses parses the remaining words of a directive body as
// clauses. A clause is NAME or NAME(arg...).
func parseClauses(words []string) []DirClause {
	var out []DirClause
	for _, w := range words {
		if w == "" {
			continue
		}
		open := strings.IndexByte(w, '(')
		if open < 0 {
			out = append(out, DirClause{Name: w})
			continue
		}
		name := w[:open]
		arg := w[open+1:]
		// Trim one trailing ')' if present; unbalanced input keeps the
		// text so validation can complain.
		if strings.HasSuffix(arg, ")") {
			arg = arg[:len(arg)-1]
		}
		out = append(out, DirClause{Name: name, Arg: strings.TrimSpace(arg), HasParens: true})
	}
	return out
}

// ClauseVars extracts the variable names referenced by a clause
// argument. It understands plain lists ("a, b"), array sections
// ("a[0:n]", "a(1:n)"), reduction arguments ("+:sum"), and map
// arguments ("tofrom: a[0:n]").
func ClauseVars(arg string) []string {
	// For reduction/map style arguments, only the part after the last
	// top-level ':' outside brackets lists variables.
	payload := arg
	depth := 0
	lastColon := -1
	for i := 0; i < len(arg); i++ {
		switch arg[i] {
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case ':':
			if depth == 0 {
				lastColon = i
			}
		}
	}
	if lastColon >= 0 {
		payload = arg[lastColon+1:]
	}
	var vars []string
	i := 0
	for i < len(payload) {
		c := payload[i]
		if isIdentStart(c) {
			start := i
			for i < len(payload) && isIdentCont(payload[i]) {
				i++
			}
			vars = append(vars, payload[start:i])
			// Skip an attached array section.
			depth := 0
			for i < len(payload) {
				if payload[i] == '[' || payload[i] == '(' {
					depth++
				} else if payload[i] == ']' || payload[i] == ')' {
					depth--
				} else if depth == 0 {
					break
				}
				i++
			}
			continue
		}
		i++
	}
	return vars
}

// ReductionParts splits a reduction clause argument "op:vars" into the
// operator and variable names. ok is false when no top-level colon is
// present.
func ReductionParts(arg string) (op string, vars []string, ok bool) {
	depth := 0
	for i := 0; i < len(arg); i++ {
		switch arg[i] {
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case ':':
			if depth == 0 {
				return strings.TrimSpace(arg[:i]), ClauseVars(arg[i:]), true
			}
		}
	}
	return "", nil, false
}

// MapParts splits an OpenMP map clause argument "maptype: vars" into
// the map type and variables. When no colon is present the map type
// defaults to "tofrom" as the specification prescribes.
func MapParts(arg string) (mapType string, vars []string) {
	depth := 0
	for i := 0; i < len(arg); i++ {
		switch arg[i] {
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case ':':
			if depth == 0 {
				return strings.TrimSpace(arg[:i]), ClauseVars(arg[i+1:])
			}
		}
	}
	return "tofrom", ClauseVars(arg)
}
