package testlang

import (
	"fmt"
	"strings"
)

// LexError describes a lexical error with its source line.
type LexError struct {
	Line int
	Msg  string
}

func (e *LexError) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

// Lexer tokenises C-dialect source. It performs a tiny amount of
// preprocessing itself: "#include" lines become Include tokens,
// "#pragma" lines become Pragma tokens (with line continuations
// folded), and object-like "#define NAME value" macros are expanded by
// substitution, which covers the `#define N 1024` style the V&V suites
// use.
type Lexer struct {
	src     string
	pos     int
	line    int
	defines map[string][]Token
	// defineText keeps each macro's raw body for textual expansion
	// inside pragma operands, where real preprocessors also expand
	// object-like macros.
	defineText map[string]string
	errs       []error
	// expandQueue holds tokens produced by macro expansion that must be
	// returned before scanning resumes.
	expandQueue []Token
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, defines: map[string][]Token{}, defineText: map[string]string{}}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(format string, args ...any) {
	l.errs = append(l.errs, &LexError{Line: l.line, Msg: fmt.Sprintf(format, args...)})
}

// Tokenize scans the entire input and returns all tokens up to and
// including EOF, plus any lexical errors.
func Tokenize(src string) ([]Token, []error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			break
		}
	}
	return toks, l.Errors()
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) byteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
	}
	return c
}

// Next returns the next token, expanding macros.
func (l *Lexer) Next() Token {
	if len(l.expandQueue) > 0 {
		t := l.expandQueue[0]
		l.expandQueue = l.expandQueue[1:]
		return t
	}
	t := l.scan()
	if t.Kind == Ident {
		if body, ok := l.defines[t.Text]; ok && len(body) > 0 {
			// Substitute, preserving the use-site line number.
			subst := make([]Token, len(body))
			for i, bt := range body {
				bt.Line = t.Line
				subst[i] = bt
			}
			l.expandQueue = append(subst[1:], l.expandQueue...)
			return subst[0]
		}
	}
	return t
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *Lexer) scan() Token {
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			return Token{Kind: EOF, Line: l.line}
		}
		c := l.peekByte()
		startLine := l.line
		switch {
		case c == '#':
			if t, emitted := l.scanDirectiveLine(); emitted {
				return t
			}
			continue // #define or unknown preprocessor line consumed
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentCont(l.peekByte()) {
				l.pos++
			}
			text := l.src[start:l.pos]
			kind := Ident
			if keywords[text] {
				kind = Keyword
			}
			return Token{Kind: kind, Text: text, Line: startLine}
		case isDigit(c) || (c == '.' && isDigit(l.byteAt(1))):
			return l.scanNumber()
		case c == '"':
			return l.scanString()
		case c == '\'':
			return l.scanChar()
		default:
			return l.scanOperator()
		}
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '\\' && l.byteAt(1) == '\n':
			l.advance()
			l.advance()
		case c == '/' && l.byteAt(1) == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.pos++
			}
		case c == '/' && l.byteAt(1) == '*':
			l.pos += 2
			closed := false
			for l.pos < len(l.src) {
				if l.peekByte() == '*' && l.byteAt(1) == '/' {
					l.pos += 2
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf("unterminated block comment")
				return
			}
		default:
			return
		}
	}
}

// scanDirectiveLine handles a line starting with '#'. It returns a
// token for #pragma and #include; #define is recorded and nothing is
// emitted (emitted=false); other preprocessor lines are skipped.
func (l *Lexer) scanDirectiveLine() (Token, bool) {
	startLine := l.line
	line := l.readLogicalLine()
	trimmed := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "#"))
	switch {
	case strings.HasPrefix(trimmed, "pragma"):
		body := strings.TrimSpace(strings.TrimPrefix(trimmed, "pragma"))
		return Token{Kind: Pragma, Text: l.expandInText(body), Line: startLine}, true
	case strings.HasPrefix(trimmed, "include"):
		body := strings.TrimSpace(strings.TrimPrefix(trimmed, "include"))
		return Token{Kind: Include, Text: body, Line: startLine}, true
	case strings.HasPrefix(trimmed, "define"):
		l.recordDefine(strings.TrimSpace(strimPrefixWord(trimmed, "define")), startLine)
		return Token{}, false
	case strings.HasPrefix(trimmed, "ifdef"), strings.HasPrefix(trimmed, "ifndef"),
		strings.HasPrefix(trimmed, "endif"), strings.HasPrefix(trimmed, "else"),
		strings.HasPrefix(trimmed, "if"), strings.HasPrefix(trimmed, "undef"):
		// Conditional compilation is not modelled; the corpus does not
		// emit it, and stray occurrences in probed files are ignored.
		return Token{}, false
	default:
		l.errorf("unrecognised preprocessor directive %q", "#"+trimmed)
		return Token{}, false
	}
}

func strimPrefixWord(s, word string) string {
	return strings.TrimPrefix(s, word)
}

// readLogicalLine consumes the rest of the current line, folding
// backslash continuations, and returns its text.
func (l *Lexer) readLogicalLine() string {
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.peekByte()
		if c == '\\' && l.byteAt(1) == '\n' {
			l.advance()
			l.advance()
			b.WriteByte(' ')
			continue
		}
		if c == '\n' {
			l.advance()
			break
		}
		b.WriteByte(c)
		l.pos++
	}
	return b.String()
}

// recordDefine parses an object-like macro "NAME body..." and stores
// its tokenised body for substitution. Function-like macros are not
// modelled; a '(' immediately after the name voids the define with an
// error, since the corpus never emits them.
func (l *Lexer) recordDefine(rest string, line int) {
	rest = strings.TrimSpace(rest)
	i := 0
	for i < len(rest) && isIdentCont(rest[i]) {
		i++
	}
	if i == 0 {
		l.errorf("malformed #define")
		return
	}
	name := rest[:i]
	if i < len(rest) && rest[i] == '(' {
		l.errorf("function-like macro %q not supported", name)
		return
	}
	body := strings.TrimSpace(rest[i:])
	if body == "" {
		l.defines[name] = nil
		return
	}
	sub := NewLexer(body)
	var toks []Token
	for {
		t := sub.Next()
		if t.Kind == EOF {
			break
		}
		t.Line = line
		toks = append(toks, t)
	}
	l.errs = append(l.errs, sub.Errors()...)
	l.defines[name] = toks
	l.defineText[name] = body
}

// expandInText performs textual object-like macro substitution over
// free text (pragma operands). A few passes handle shallow macro
// chains; corpus macros never recurse.
func (l *Lexer) expandInText(text string) string {
	if len(l.defineText) == 0 {
		return text
	}
	for pass := 0; pass < 4; pass++ {
		var b strings.Builder
		changed := false
		i := 0
		for i < len(text) {
			c := text[i]
			if !isIdentStart(c) {
				b.WriteByte(c)
				i++
				continue
			}
			start := i
			for i < len(text) && isIdentCont(text[i]) {
				i++
			}
			word := text[start:i]
			if repl, ok := l.defineText[word]; ok && repl != "" {
				b.WriteString(repl)
				changed = true
			} else {
				b.WriteString(word)
			}
		}
		text = b.String()
		if !changed {
			break
		}
	}
	return text
}

func (l *Lexer) scanNumber() Token {
	startLine := l.line
	start := l.pos
	isFloat := false
	// Hex literals.
	if l.peekByte() == '0' && (l.byteAt(1) == 'x' || l.byteAt(1) == 'X') {
		l.pos += 2
		for l.pos < len(l.src) && isHexDigit(l.peekByte()) {
			l.pos++
		}
		return Token{Kind: IntLit, Text: l.src[start:l.pos], Line: startLine}
	}
	for l.pos < len(l.src) && isDigit(l.peekByte()) {
		l.pos++
	}
	if l.peekByte() == '.' {
		isFloat = true
		l.pos++
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.pos++
		}
	}
	if c := l.peekByte(); c == 'e' || c == 'E' {
		next := l.byteAt(1)
		if isDigit(next) || ((next == '+' || next == '-') && isDigit(l.byteAt(2))) {
			isFloat = true
			l.pos += 2
			for l.pos < len(l.src) && isDigit(l.peekByte()) {
				l.pos++
			}
		}
	}
	text := l.src[start:l.pos]
	// Integer/float suffixes (L, UL, f, ...) are consumed and dropped.
	for {
		c := l.peekByte()
		if c == 'l' || c == 'L' || c == 'u' || c == 'U' {
			l.pos++
			continue
		}
		if (c == 'f' || c == 'F') && isFloat {
			l.pos++
			continue
		}
		break
	}
	kind := IntLit
	if isFloat {
		kind = FloatLit
	}
	return Token{Kind: kind, Text: text, Line: startLine}
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) scanString() Token {
	startLine := l.line
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) || l.peekByte() == '\n' {
			l.errorf("unterminated string literal")
			break
		}
		c := l.advance()
		if c == '"' {
			return Token{Kind: StringLit, Text: b.String(), Line: startLine}
		}
		if c == '\\' {
			if l.pos >= len(l.src) {
				l.errorf("unterminated escape in string literal")
				break
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case '\'':
				b.WriteByte('\'')
			case '0':
				b.WriteByte(0)
			default:
				b.WriteByte(e)
			}
			continue
		}
		b.WriteByte(c)
	}
	return Token{Kind: StringLit, Text: b.String(), Line: startLine}
}

func (l *Lexer) scanChar() Token {
	startLine := l.line
	l.advance() // opening quote
	var val byte
	if l.pos >= len(l.src) {
		l.errorf("unterminated character literal")
		return Token{Kind: CharLit, Line: startLine}
	}
	c := l.advance()
	if c == '\\' && l.pos < len(l.src) {
		e := l.advance()
		switch e {
		case 'n':
			val = '\n'
		case 't':
			val = '\t'
		case '0':
			val = 0
		default:
			val = e
		}
	} else {
		val = c
	}
	if l.pos < len(l.src) && l.peekByte() == '\'' {
		l.advance()
	} else {
		l.errorf("unterminated character literal")
	}
	return Token{Kind: CharLit, Text: string(val), Line: startLine}
}

func (l *Lexer) scanOperator() Token {
	startLine := l.line
	rest := l.src[l.pos:]
	for _, op := range multiOps {
		if strings.HasPrefix(rest, op) {
			l.pos += len(op)
			return Token{Kind: Punct, Text: op, Line: startLine}
		}
	}
	c := l.advance()
	switch c {
	case '{', '}', '(', ')', '[', ']', ';', ',', '+', '-', '*', '/', '%',
		'<', '>', '=', '!', '&', '|', '^', '~', '?', ':', '.':
		return Token{Kind: Punct, Text: string(c), Line: startLine}
	default:
		l.errorf("unexpected character %q", string(c))
		return Token{Kind: Punct, Text: string(c), Line: startLine}
	}
}
