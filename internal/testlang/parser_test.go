package testlang

import (
	"strings"
	"testing"

	"repro/internal/spec"
)

const helloACC = `
#include <stdio.h>
#include <stdlib.h>
#define N 1024

int main()
{
    int *a = (int *)malloc(N * sizeof(int));
    int sum = 0;
    for (int i = 0; i < N; i++) {
        a[i] = i;
    }
#pragma acc parallel loop reduction(+:sum) copyin(a[0:N])
    for (int i = 0; i < N; i++) {
        sum += a[i];
    }
    if (sum != (N - 1) * N / 2) {
        printf("FAIL\n");
        return 1;
    }
    printf("PASS\n");
    free(a);
    return 0;
}
`

func mustParse(t *testing.T, src string, lang Language, d spec.Dialect) *File {
	t.Helper()
	f, errs := ParseFile(src, lang, d)
	if len(errs) != 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	return f
}

func TestParseCompleteTest(t *testing.T) {
	f := mustParse(t, helloACC, LangC, spec.OpenACC)
	if len(f.Includes) != 2 {
		t.Fatalf("includes = %v", f.Includes)
	}
	if len(f.Decls) != 1 {
		t.Fatalf("decls = %d, want 1", len(f.Decls))
	}
	fd, ok := f.Decls[0].(*FuncDecl)
	if !ok || fd.Name != "main" {
		t.Fatalf("decl 0 = %#v", f.Decls[0])
	}
	dirs := f.Directives()
	if len(dirs) != 1 {
		t.Fatalf("directives = %d, want 1", len(dirs))
	}
	d := dirs[0]
	if d.Dir.Name != "parallel loop" || !d.Dir.Known {
		t.Fatalf("directive = %+v", d.Dir)
	}
	if len(d.Dir.Clauses) != 2 {
		t.Fatalf("clauses = %+v", d.Dir.Clauses)
	}
	if _, ok := d.Body.(*ForStmt); !ok {
		t.Fatalf("directive body is %T, want *ForStmt", d.Body)
	}
}

func TestParseMissingOpeningBrace(t *testing.T) {
	src := strings.Replace(helloACC, "int main()\n{", "int main()\n", 1)
	_, errs := ParseFile(src, LangC, spec.OpenACC)
	if len(errs) == 0 {
		t.Fatal("removed opening brace parsed without errors")
	}
}

func TestParseMissingInnerBrace(t *testing.T) {
	src := strings.Replace(helloACC, "for (int i = 0; i < N; i++) {\n        a[i] = i;", "for (int i = 0; i < N; i++) \n        a[i] = i;", 1)
	_, errs := ParseFile(src, LangC, spec.OpenACC)
	if len(errs) == 0 {
		t.Fatal("unbalanced braces parsed without errors")
	}
}

func TestParseTruncatedFile(t *testing.T) {
	// Removing the last bracketed section *and* its closing brace
	// leaves the file unbalanced.
	idx := strings.LastIndex(helloACC, "{")
	_, errs := ParseFile(helloACC[:idx], LangC, spec.OpenACC)
	if len(errs) == 0 {
		t.Fatal("truncated file parsed without errors")
	}
}

func TestParseBalancedBlockRemovalStillParses(t *testing.T) {
	// Removing a complete balanced block (the error check) must still
	// parse: this is the "removed last bracketed section" mutation the
	// paper found hardest for the pipeline to catch.
	src := strings.Replace(helloACC, `    if (sum != (N - 1) * N / 2) {
        printf("FAIL\n");
        return 1;
    }
`, "", 1)
	f := mustParse(t, src, LangC, spec.OpenACC)
	if len(f.Decls) != 1 {
		t.Fatal("unexpected decl count")
	}
}

func TestParseGlobalsAndArrays(t *testing.T) {
	src := `
double data[100][20];
int counter = 0;
const double eps = 1e-6;
int helper(int x) { return x + 1; }
int main() { return helper(counter); }
`
	f := mustParse(t, src, LangC, spec.OpenMP)
	if len(f.Decls) != 5 {
		t.Fatalf("decls = %d, want 5", len(f.Decls))
	}
	vd := f.Decls[0].(*VarDecl)
	if vd.Name != "data" || len(vd.ArrayDims) != 2 {
		t.Fatalf("data decl = %+v", vd)
	}
	eps := f.Decls[2].(*VarDecl)
	if !eps.Const || eps.Init == nil {
		t.Fatalf("eps decl = %+v", eps)
	}
}

func TestParseMultiDeclarators(t *testing.T) {
	src := `int main() { int i = 0, j = 1, *p; double x, y[4]; return i + j; }`
	f := mustParse(t, src, LangC, spec.OpenMP)
	body := f.Decls[0].(*FuncDecl).Body
	ds := body.Stmts[0].(*DeclStmt)
	if len(ds.Decls) != 3 {
		t.Fatalf("first decl stmt has %d declarators", len(ds.Decls))
	}
	if ds.Decls[2].Name != "p" || ds.Decls[2].Type.Ptr != 1 {
		t.Fatalf("p = %+v", ds.Decls[2])
	}
	ds2 := body.Stmts[1].(*DeclStmt)
	if len(ds2.Decls) != 2 || len(ds2.Decls[1].ArrayDims) != 1 {
		t.Fatalf("second decl stmt = %+v", ds2)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
int main() {
    int n = 0;
    while (n < 10) {
        n++;
        if (n == 5) continue;
        if (n > 8) break;
    }
    for (;;) { break; }
    return n > 0 ? 0 : 1;
}
`
	f := mustParse(t, src, LangC, spec.OpenMP)
	body := f.Decls[0].(*FuncDecl).Body
	if _, ok := body.Stmts[1].(*WhileStmt); !ok {
		t.Fatalf("stmt 1 = %T", body.Stmts[1])
	}
	fs, ok := body.Stmts[2].(*ForStmt)
	if !ok || fs.Init != nil || fs.Cond != nil || fs.Post != nil {
		t.Fatalf("empty for = %+v", body.Stmts[2])
	}
	rs := body.Stmts[3].(*ReturnStmt)
	if _, ok := rs.X.(*CondExpr); !ok {
		t.Fatalf("return expr = %T", rs.X)
	}
}

func TestParsePrecedence(t *testing.T) {
	src := `int main() { int x = 1 + 2 * 3; int y = (1 + 2) * 3; return x == 7 && y == 9; }`
	f := mustParse(t, src, LangC, spec.OpenMP)
	body := f.Decls[0].(*FuncDecl).Body
	x := body.Stmts[0].(*DeclStmt).Decls[0].Init.(*BinaryExpr)
	if x.Op != "+" {
		t.Fatalf("x init top op = %q, want +", x.Op)
	}
	if r, ok := x.R.(*BinaryExpr); !ok || r.Op != "*" {
		t.Fatalf("x init right = %#v", x.R)
	}
	y := body.Stmts[1].(*DeclStmt).Decls[0].Init.(*BinaryExpr)
	if y.Op != "*" {
		t.Fatalf("y init top op = %q, want *", y.Op)
	}
}

func TestParseCastAndSizeof(t *testing.T) {
	src := `int main() { double *p = (double *)malloc(10 * sizeof(double)); return p != 0; }`
	f := mustParse(t, src, LangC, spec.OpenMP)
	init := f.Decls[0].(*FuncDecl).Body.Stmts[0].(*DeclStmt).Decls[0].Init
	cast, ok := init.(*CastExpr)
	if !ok {
		t.Fatalf("init = %T, want cast", init)
	}
	if cast.To.Base != "double" || cast.To.Ptr != 1 {
		t.Fatalf("cast type = %v", cast.To)
	}
	call, ok := cast.X.(*CallExpr)
	if !ok || call.Fun != "malloc" {
		t.Fatalf("cast operand = %#v", cast.X)
	}
	if _, ok := call.Args[0].(*BinaryExpr).R.(*SizeofExpr); !ok {
		t.Fatalf("malloc arg = %#v", call.Args[0])
	}
}

func TestParseStandaloneDirective(t *testing.T) {
	src := `
int main() {
    int a[10];
#pragma acc enter data copyin(a[0:10])
#pragma acc update host(a[0:10])
#pragma acc exit data copyout(a[0:10])
    return 0;
}
`
	f := mustParse(t, src, LangC, spec.OpenACC)
	dirs := f.Directives()
	if len(dirs) != 3 {
		t.Fatalf("directives = %d, want 3", len(dirs))
	}
	for _, d := range dirs {
		if d.Body != nil {
			t.Fatalf("standalone directive %q grabbed a body", d.Dir.Name)
		}
	}
	if dirs[0].Dir.Name != "enter data" || dirs[2].Dir.Name != "exit data" {
		t.Fatalf("names = %q, %q", dirs[0].Dir.Name, dirs[2].Dir.Name)
	}
}

func TestParseBlockDirective(t *testing.T) {
	src := `
int main() {
    int a[10];
#pragma omp target data map(tofrom: a[0:10])
    {
#pragma omp target teams distribute parallel for
        for (int i = 0; i < 10; i++) { a[i] = i; }
    }
    return 0;
}
`
	f := mustParse(t, src, LangC, spec.OpenMP)
	dirs := f.Directives()
	if len(dirs) != 2 {
		t.Fatalf("directives = %d, want 2", len(dirs))
	}
	outer := dirs[0]
	if outer.Dir.Name != "target data" {
		t.Fatalf("outer = %q", outer.Dir.Name)
	}
	if _, ok := outer.Body.(*Block); !ok {
		t.Fatalf("outer body = %T", outer.Body)
	}
	inner := dirs[1]
	if inner.Dir.Name != "target teams distribute parallel for" {
		t.Fatalf("inner = %q", inner.Dir.Name)
	}
}

func TestParseUnknownDirectiveKept(t *testing.T) {
	src := `
int main() {
#pragma acc paralel loop
    for (int i = 0; i < 4; i++) { ; }
    return 0;
}
`
	f, errs := ParseFile(src, LangC, spec.OpenACC)
	if len(errs) != 0 {
		t.Fatalf("unknown directive should parse (compiler rejects it later): %v", errs)
	}
	dirs := f.Directives()
	if len(dirs) != 1 || dirs[0].Dir.Known {
		t.Fatalf("dirs = %+v", dirs)
	}
	if dirs[0].Dir.Name != "paralel" {
		t.Fatalf("unknown directive name = %q", dirs[0].Dir.Name)
	}
}

func TestParseForeignPragmaIgnoredAtStmtLevel(t *testing.T) {
	src := `
int main() {
#pragma unroll 4
    for (int i = 0; i < 4; i++) { ; }
    return 0;
}
`
	f := mustParse(t, src, LangC, spec.OpenACC)
	body := f.Decls[0].(*FuncDecl).Body
	if _, ok := body.Stmts[0].(*UnknownPragmaStmt); !ok {
		t.Fatalf("stmt 0 = %T, want UnknownPragmaStmt", body.Stmts[0])
	}
}

func TestParseRoutinePragmaAttachesToFunction(t *testing.T) {
	src := `
#pragma acc routine seq
int square(int x) { return x * x; }
int main() { return square(2) - 4; }
`
	f := mustParse(t, src, LangC, spec.OpenACC)
	fd := f.Decls[0].(*FuncDecl)
	if len(fd.Pragmas) != 1 || fd.Pragmas[0].Dir.Name != "routine" {
		t.Fatalf("pragmas = %+v", fd.Pragmas)
	}
}

func TestParseCPPBoilerplateTolerated(t *testing.T) {
	src := `
#include <cstdio>
using namespace std;
int main() { printf("ok\n"); return 0; }
`
	f := mustParse(t, src, LangCPP, spec.OpenACC)
	if len(f.Decls) != 1 {
		t.Fatalf("decls = %d", len(f.Decls))
	}
}

func TestParseErrorsCapped(t *testing.T) {
	src := strings.Repeat("@#$ garbage !!! ", 500)
	_, errs := ParseFile(src, LangC, spec.OpenACC)
	if len(errs) == 0 {
		t.Fatal("garbage produced no errors")
	}
	if len(errs) > 2*maxParseErrors+5 {
		t.Fatalf("error cascade not capped: %d errors", len(errs))
	}
}

func TestParseFunctionPrototype(t *testing.T) {
	src := `
int helper(int a, double b);
int main() { return 0; }
int helper(int a, double b) { return a; }
`
	f := mustParse(t, src, LangC, spec.OpenMP)
	if len(f.Decls) != 3 {
		t.Fatalf("decls = %d", len(f.Decls))
	}
	proto := f.Decls[0].(*FuncDecl)
	if proto.Body != nil {
		t.Fatal("prototype has body")
	}
	if len(proto.Params) != 2 || proto.Params[1].Type.Base != "double" {
		t.Fatalf("params = %+v", proto.Params)
	}
}

func TestParseArrayParams(t *testing.T) {
	src := `
void fill(int a[], int n) { for (int i = 0; i < n; i++) a[i] = i; }
int main() { int b[4]; fill(b, 4); return 0; }
`
	f := mustParse(t, src, LangC, spec.OpenMP)
	fd := f.Decls[0].(*FuncDecl)
	if !fd.Params[0].Array {
		t.Fatal("array param not recorded")
	}
}

func TestCountBraceBalance(t *testing.T) {
	cases := []struct {
		src        string
		balance    int
		earlyClose bool
	}{
		{"int main() { return 0; }", 0, false},
		{"int main() { ", 1, false},
		{"}", -1, true},
		{`char *s = "{{{"; int x;`, 0, false},
		{"// }}} \nint main() { }", 0, false},
		{"/* } */ { }", 0, false},
		{"char c = '{';", 0, false},
	}
	for _, c := range cases {
		bal, early := CountBraceBalance(c.src)
		if bal != c.balance || early != c.earlyClose {
			t.Errorf("CountBraceBalance(%q) = (%d,%v), want (%d,%v)", c.src, bal, early, c.balance, c.earlyClose)
		}
	}
}

func TestStripComments(t *testing.T) {
	src := "int x; // trailing\n/* block */int y;\nchar *s = \"// not a comment\";\n"
	out := StripComments(src)
	if strings.Contains(out, "trailing") || strings.Contains(out, "block") {
		t.Fatalf("comments survived: %q", out)
	}
	if !strings.Contains(out, "// not a comment") {
		t.Fatalf("string contents damaged: %q", out)
	}
	if strings.Count(out, "\n") != strings.Count(src, "\n") {
		t.Fatal("line count changed")
	}
}

func TestWalkExprsVisitsEverything(t *testing.T) {
	f := mustParse(t, helloACC, LangC, spec.OpenACC)
	fd := f.Decls[0].(*FuncDecl)
	idents := map[string]bool{}
	WalkExprs(fd.Body, func(e Expr) {
		if id, ok := e.(*IdentExpr); ok {
			idents[id.Name] = true
		}
	})
	for _, want := range []string{"a", "sum", "i"} {
		if !idents[want] {
			t.Errorf("WalkExprs missed identifier %q", want)
		}
	}
}
