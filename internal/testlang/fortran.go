package testlang

import (
	"fmt"
	"strings"

	"repro/internal/spec"
)

// FortranError is a diagnostic from the Fortran front end.
type FortranError struct {
	Line int
	Msg  string
}

func (e *FortranError) Error() string {
	return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
}

// FortranInfo summarises a checked free-form Fortran source file.
// The reproduction's Fortran front end is a checker, not an executor:
// the paper's Part-One experiments judge Fortran files without
// compiling or running them, and its Part-Two suites are C/C++ only,
// so the simulated toolchain needs syntax, declaration and directive
// validation for Fortran but not code generation.
type FortranInfo struct {
	ProgramName string
	// Declared maps lower-cased identifiers declared in specification
	// statements (and loop variables) to true.
	Declared map[string]bool
	// Directives lists the !$acc / !$omp directives in source order.
	Directives []*Directive
	// ImplicitNone records whether "implicit none" is in force, which
	// is what makes undeclared-identifier checking conformant.
	ImplicitNone bool
}

// fortranKeywords are words never treated as identifiers when scanning
// Fortran expressions.
var fortranKeywords = map[string]bool{
	"program": true, "end": true, "do": true, "if": true, "then": true,
	"else": true, "elseif": true, "use": true, "implicit": true,
	"none": true, "integer": true, "real": true, "logical": true,
	"parameter": true, "allocatable": true, "allocate": true,
	"deallocate": true, "print": true, "write": true, "stop": true,
	"error": true, "call": true, "subroutine": true, "function": true,
	"return": true, "exit": true, "cycle": true, "to": true,
	"abs": true, "sqrt": true, "mod": true, "max": true, "min": true,
	"dble": true, "real8": true, "int": true, "sum": false,
	"true": true, "false": true, "contains": true, "intent": true,
	"in": true, "out": true, "inout": true, "dimension": true,
	"while": true, "result": true, "kind": true, "len": true,
}

// CheckFortran validates a free-form Fortran source file of the
// supported subset against the given dialect's directive
// specification. It returns structural information and the list of
// diagnostics a conforming compiler would emit.
func CheckFortran(src string, dialect spec.Dialect) (*FortranInfo, []error) {
	c := &fortranChecker{
		info:    &FortranInfo{Declared: map[string]bool{}},
		dialect: dialect,
	}
	c.run(src)
	return c.info, c.errs
}

type fortranChecker struct {
	info    *FortranInfo
	dialect spec.Dialect
	errs    []error
	// blockStack holds open block kinds: "program", "do", "if",
	// "subroutine", "function".
	blockStack []string
	blockLines []int
	// pendingLoopDir is a loop-associated directive awaiting its do
	// statement.
	pendingLoopDir *Directive
	sawProgram     bool
}

func (c *fortranChecker) errorf(line int, format string, args ...any) {
	if len(c.errs) < maxParseErrors {
		c.errs = append(c.errs, &FortranError{Line: line, Msg: fmt.Sprintf(format, args...)})
	}
}

func (c *fortranChecker) push(kind string, line int) {
	c.blockStack = append(c.blockStack, kind)
	c.blockLines = append(c.blockLines, line)
}

func (c *fortranChecker) pop(kind string, line int) {
	if len(c.blockStack) == 0 {
		c.errorf(line, "'end %s' without matching '%s'", kind, kind)
		return
	}
	top := c.blockStack[len(c.blockStack)-1]
	if top != kind {
		c.errorf(line, "'end %s' closes '%s' opened at line %d", kind, top, c.blockLines[len(c.blockLines)-1])
	}
	c.blockStack = c.blockStack[:len(c.blockStack)-1]
	c.blockLines = c.blockLines[:len(c.blockLines)-1]
}

func (c *fortranChecker) run(src string) {
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		lineNo := i + 1
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		lower := strings.ToLower(line)
		sentinel := c.dialect.FortranSentinel()
		switch {
		case strings.HasPrefix(lower, sentinel+" ") || lower == sentinel:
			c.handleDirective(line[len(sentinel):], lineNo)
			continue
		case strings.HasPrefix(lower, "!$"):
			// A directive for some other model, or a corrupted
			// sentinel: conforming compilers treat unknown sentinels as
			// comments, so no error — but it is not a directive of this
			// dialect either.
			continue
		case strings.HasPrefix(line, "!"):
			continue // comment
		}
		// Strip trailing comment.
		if idx := fortranCommentIndex(line); idx >= 0 {
			line = strings.TrimSpace(line[:idx])
			lower = strings.ToLower(line)
			if line == "" {
				continue
			}
		}
		if bal := parenBalance(line); bal != 0 {
			c.errorf(lineNo, "unbalanced parentheses")
		}
		c.handleStatement(line, lower, lineNo)
		// A loop directive must be immediately followed by a do
		// statement (comments aside).
		if c.pendingLoopDir != nil && !strings.HasPrefix(lower, "do ") && lower != "do" {
			c.errorf(lineNo, "directive %q must be followed by a DO loop", c.pendingLoopDir.Name)
			c.pendingLoopDir = nil
		} else if strings.HasPrefix(lower, "do ") || lower == "do" {
			c.pendingLoopDir = nil
		}
	}
	for i := len(c.blockStack) - 1; i >= 0; i-- {
		c.errorf(c.blockLines[i], "'%s' block is never closed", c.blockStack[i])
	}
	if !c.sawProgram {
		c.errorf(1, "no PROGRAM unit found")
	}
}

func fortranCommentIndex(line string) int {
	inStr := byte(0)
	for i := 0; i < len(line); i++ {
		ch := line[i]
		if inStr != 0 {
			if ch == inStr {
				inStr = 0
			}
			continue
		}
		switch ch {
		case '\'', '"':
			inStr = ch
		case '!':
			return i
		}
	}
	return -1
}

func parenBalance(line string) int {
	bal := 0
	inStr := byte(0)
	for i := 0; i < len(line); i++ {
		ch := line[i]
		if inStr != 0 {
			if ch == inStr {
				inStr = 0
			}
			continue
		}
		switch ch {
		case '\'', '"':
			inStr = ch
		case '(':
			bal++
		case ')':
			bal--
		}
	}
	return bal
}

func (c *fortranChecker) handleDirective(body string, line int) {
	body = strings.TrimSpace(body)
	lower := strings.ToLower(body)
	// Fortran closes block constructs with "!$acc end <directive>".
	// Validate that the closed construct is a known directive name.
	if strings.HasPrefix(lower, "end") {
		rest := strings.TrimSpace(lower[3:])
		if rest == "" {
			c.errorf(line, "malformed end-directive line")
			return
		}
		if _, _, ok := spec.ForDialect(c.dialect).LongestDirective(strings.Fields(rest)); !ok {
			c.errorf(line, "unknown %s directive %q in end-directive", c.dialect, rest)
		}
		return
	}
	full := c.dialect.Sentinel() + " " + body
	dir, ok := ParseDirective(full, c.dialect, line)
	if !ok || dir == nil {
		c.errorf(line, "malformed directive line")
		return
	}
	c.info.Directives = append(c.info.Directives, dir)
	if !dir.Known {
		c.errorf(line, "unknown %s directive %q", c.dialect, dir.Name)
		return
	}
	if sd, found := spec.ForDialect(c.dialect).Lookup(dir.Name); found {
		if sd.Association == spec.AssocLoop {
			c.pendingLoopDir = dir
		}
		for _, clause := range dir.Clauses {
			if _, ok := sd.Clauses[clause.Name]; !ok {
				// "end" clauses like "!$acc end parallel" arrive as
				// unknown-directive lines instead; clause mismatch here
				// is a genuine error.
				c.errorf(line, "clause %q is not valid on %s directive %q", clause.Name, c.dialect, dir.Name)
			}
		}
	}
}

func (c *fortranChecker) handleStatement(line, lower string, lineNo int) {
	switch {
	case strings.HasPrefix(lower, "program "):
		c.sawProgram = true
		c.info.ProgramName = strings.TrimSpace(line[len("program "):])
		c.push("program", lineNo)
	case strings.HasPrefix(lower, "end program") || lower == "end":
		if lower == "end" && len(c.blockStack) > 0 {
			// Bare END closes the innermost block.
			c.blockStack = c.blockStack[:len(c.blockStack)-1]
			c.blockLines = c.blockLines[:len(c.blockLines)-1]
			return
		}
		c.pop("program", lineNo)
	case strings.HasPrefix(lower, "end do"):
		c.pop("do", lineNo)
	case strings.HasPrefix(lower, "enddo"):
		c.pop("do", lineNo)
	case strings.HasPrefix(lower, "end if") || strings.HasPrefix(lower, "endif"):
		c.pop("if", lineNo)
	case strings.HasPrefix(lower, "end subroutine"):
		c.pop("subroutine", lineNo)
	case strings.HasPrefix(lower, "end function"):
		c.pop("function", lineNo)
	case strings.HasPrefix(lower, "subroutine "):
		c.push("subroutine", lineNo)
	case strings.HasPrefix(lower, "function ") || strings.Contains(lower, " function "):
		c.push("function", lineNo)
	case strings.HasPrefix(lower, "use "):
		// Module use: openacc / omp_lib etc. No checking needed.
	case lower == "implicit none":
		c.info.ImplicitNone = true
	case strings.HasPrefix(lower, "integer") || strings.HasPrefix(lower, "real") || strings.HasPrefix(lower, "logical"):
		c.handleDeclaration(line, lineNo)
	case strings.HasPrefix(lower, "allocate(") || strings.HasPrefix(lower, "allocate ("):
		c.checkUses(insideOuterParens(line), lineNo)
	case strings.HasPrefix(lower, "deallocate"):
		c.checkUses(insideOuterParens(line), lineNo)
	case strings.HasPrefix(lower, "do "):
		c.push("do", lineNo)
		// "do i = 1, n": the loop variable is implicitly declared in
		// strict Fortran? No — it must be declared; but record usage.
		rest := line[3:]
		if eq := strings.IndexByte(rest, '='); eq > 0 {
			c.checkUses(rest[:eq], lineNo)
			c.checkUses(rest[eq+1:], lineNo)
		}
	case strings.HasPrefix(lower, "if ") || strings.HasPrefix(lower, "if("):
		cond := insideOuterParens(line)
		c.checkUses(cond, lineNo)
		if strings.HasSuffix(lower, "then") {
			c.push("if", lineNo)
		}
	case strings.HasPrefix(lower, "else"):
		// else / else if (...) then — stays within the open if block.
		if strings.Contains(lower, "(") {
			c.checkUses(insideOuterParens(line), lineNo)
		}
	case strings.HasPrefix(lower, "print"):
		if comma := strings.IndexByte(line, ','); comma >= 0 {
			c.checkUses(line[comma+1:], lineNo)
		}
	case strings.HasPrefix(lower, "write"):
		if close := strings.IndexByte(line, ')'); close >= 0 {
			c.checkUses(line[close+1:], lineNo)
		}
	case strings.HasPrefix(lower, "stop") || strings.HasPrefix(lower, "error stop"):
		// Normal termination statements.
	case strings.HasPrefix(lower, "call "):
		c.checkUses(insideOuterParens(line), lineNo)
	case strings.HasPrefix(lower, "return") || strings.HasPrefix(lower, "exit") || strings.HasPrefix(lower, "cycle"):
	case strings.HasPrefix(lower, "contains"):
	default:
		// Assignment statement: lhs = rhs.
		if eq := assignmentIndex(line); eq > 0 {
			c.checkUses(line[:eq], lineNo)
			c.checkUses(line[eq+1:], lineNo)
		} else {
			c.errorf(lineNo, "unrecognised statement %q", truncate(line, 40))
		}
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// assignmentIndex finds the '=' of an assignment, skipping == /= <= >=
// comparisons and parenthesised content.
func assignmentIndex(line string) int {
	depth := 0
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '(':
			depth++
		case ')':
			depth--
		case '=':
			if depth > 0 {
				continue
			}
			if i+1 < len(line) && line[i+1] == '=' {
				return -1
			}
			if i > 0 && (line[i-1] == '=' || line[i-1] == '/' || line[i-1] == '<' || line[i-1] == '>') {
				return -1
			}
			return i
		}
	}
	return -1
}

// insideOuterParens returns the text inside the first balanced
// parenthesis group of the line ("" if none).
func insideOuterParens(line string) string {
	open := strings.IndexByte(line, '(')
	if open < 0 {
		return ""
	}
	depth := 0
	for i := open; i < len(line); i++ {
		switch line[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return line[open+1 : i]
			}
		}
	}
	return line[open+1:]
}

// handleDeclaration records declared names from a specification
// statement like "real(8), allocatable :: a(:), b(:)".
func (c *fortranChecker) handleDeclaration(line string, lineNo int) {
	sep := strings.Index(line, "::")
	names := line
	if sep >= 0 {
		names = line[sep+2:]
	} else {
		// Old-style "integer i" declarations: everything after the
		// first word.
		if sp := strings.IndexByte(line, ' '); sp >= 0 {
			names = line[sp+1:]
		} else {
			return
		}
	}
	for _, name := range splitTopLevelCommas(names) {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		// Trim dimension spec and initialiser.
		if i := strings.IndexByte(name, '('); i >= 0 {
			// Check the dimension expression uses declared names.
			c.checkUses(insideOuterParens(name), lineNo)
			name = name[:i]
		}
		if i := strings.IndexByte(name, '='); i >= 0 {
			c.checkUses(name[i+1:], lineNo)
			name = name[:i]
		}
		name = strings.TrimSpace(name)
		if name != "" {
			c.info.Declared[strings.ToLower(name)] = true
		}
	}
}

func splitTopLevelCommas(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// checkUses scans expression text for identifiers and reports any that
// are undeclared (when implicit none is in force).
func (c *fortranChecker) checkUses(expr string, lineNo int) {
	if !c.info.ImplicitNone {
		return
	}
	for _, id := range scanIdentifiers(expr) {
		l := strings.ToLower(id)
		if fortranKeywords[l] {
			continue
		}
		if !c.info.Declared[l] {
			c.errorf(lineNo, "identifier %q has no IMPLICIT type and is not declared", id)
			// Record it to avoid cascading repeats for the same name.
			c.info.Declared[l] = true
		}
	}
}

// scanIdentifiers extracts identifier-shaped words from expression
// text, skipping string literals and numeric literals (including kind
// suffixes like 1.0d0).
func scanIdentifiers(expr string) []string {
	var ids []string
	i := 0
	for i < len(expr) {
		ch := expr[i]
		switch {
		case ch == '\'' || ch == '"':
			q := ch
			i++
			for i < len(expr) && expr[i] != q {
				i++
			}
			i++
		case ch >= '0' && ch <= '9':
			for i < len(expr) && (isIdentCont(expr[i]) || expr[i] == '.') {
				i++
			}
		case isIdentStart(ch):
			start := i
			for i < len(expr) && isIdentCont(expr[i]) {
				i++
			}
			ids = append(ids, expr[start:i])
		default:
			i++
		}
	}
	return ids
}
