package testlang

import (
	"strings"
	"testing"

	"repro/internal/spec"
)

// TestRenderRoundTrip checks the central renderer invariant: rendering
// a parsed file and re-parsing the result yields an equivalent file
// (same declarations, directives and statement shapes) with no errors.
func TestRenderRoundTrip(t *testing.T) {
	f := mustParse(t, helloACC, LangC, spec.OpenACC)
	out := Render(f)
	f2, errs := ParseFile(out, LangC, spec.OpenACC)
	if len(errs) != 0 {
		t.Fatalf("re-parse of rendered output failed: %v\n%s", errs, out)
	}
	if len(f2.Decls) != len(f.Decls) {
		t.Fatalf("decl count changed: %d -> %d", len(f.Decls), len(f2.Decls))
	}
	d1, d2 := f.Directives(), f2.Directives()
	if len(d1) != len(d2) {
		t.Fatalf("directive count changed: %d -> %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i].Dir.String() != d2[i].Dir.String() {
			t.Errorf("directive %d changed: %q -> %q", i, d1[i].Dir.String(), d2[i].Dir.String())
		}
	}
	// Render must be a fixed point after one round trip.
	out2 := Render(f2)
	if out != out2 {
		t.Fatalf("render not stable:\n--- first\n%s\n--- second\n%s", out, out2)
	}
}

func TestRenderRoundTripComplex(t *testing.T) {
	src := `
#include <stdio.h>
#include <math.h>

double tolerance = 1e-6;

#pragma acc routine seq
double square(double x)
{
    return x * x;
}

int main()
{
    int n = 256;
    double *a = (double *)malloc(n * sizeof(double));
    double total = 0.0;
    for (int i = 0; i < n; i++)
        a[i] = (double)i / 2.0;
#pragma acc data copyin(a[0:n])
    {
#pragma acc parallel loop reduction(+:total) vector_length(128)
        for (int i = 0; i < n; i++) {
            total += square(a[i]);
        }
    }
    double expect = 0.0;
    for (int i = 0; i < n; i++)
        expect += square(a[i]);
    if (fabs(total - expect) > tolerance) {
        fprintf(stderr, "mismatch %f vs %f\n", total, expect);
        return 1;
    }
    printf("PASS\n");
    return 0;
}
`
	f := mustParse(t, src, LangC, spec.OpenACC)
	out := Render(f)
	f2, errs := ParseFile(out, LangC, spec.OpenACC)
	if len(errs) != 0 {
		t.Fatalf("re-parse failed: %v\n%s", errs, out)
	}
	if Render(f2) != out {
		t.Fatal("render not idempotent on complex file")
	}
}

func TestRenderExprPrecedence(t *testing.T) {
	cases := []string{
		"1 + 2 * 3",
		"(1 + 2) * 3",
		"a && b || c",
		"a + b - c",
		"-x * y",
		"a / (b / c)",
		"x % 10 == 0",
		"(a + b) / 2",
	}
	for _, src := range cases {
		full := "int main() { int a=1, b=2, c=3, x=4, y=5; int r = " + src + "; return r; }"
		f, errs := ParseFile(full, LangC, spec.OpenMP)
		if len(errs) != 0 {
			t.Errorf("%q: parse errors %v", src, errs)
			continue
		}
		// Render, re-parse, re-render: the second and third renders must
		// agree, proving the renderer emits parseable, stable text.
		out1 := Render(f)
		f2, errs2 := ParseFile(out1, LangC, spec.OpenMP)
		if len(errs2) != 0 {
			t.Errorf("%q: re-parse errors %v in\n%s", src, errs2, out1)
			continue
		}
		if out2 := Render(f2); out1 != out2 {
			t.Errorf("%q: unstable rendering:\n%s\nvs\n%s", src, out1, out2)
		}
	}
}

func TestRenderEscapes(t *testing.T) {
	src := `int main() { printf("line\n"); printf("tab\there"); return 0; }`
	f := mustParse(t, src, LangC, spec.OpenMP)
	out := Render(f)
	if !strings.Contains(out, `"line\n"`) {
		t.Fatalf("newline escape lost:\n%s", out)
	}
	f2, errs := ParseFile(out, LangC, spec.OpenMP)
	if len(errs) != 0 {
		t.Fatalf("re-parse: %v", errs)
	}
	call := f2.Decls[0].(*FuncDecl).Body.Stmts[0].(*ExprStmt).X.(*CallExpr)
	if s := call.Args[0].(*StringLitExpr).Value; s != "line\n" {
		t.Fatalf("string value = %q", s)
	}
}

func TestRenderInitList(t *testing.T) {
	src := `int main() { int a[3] = {1, 2, 3}; return a[0]; }`
	f := mustParse(t, src, LangC, spec.OpenMP)
	out := Render(f)
	if !strings.Contains(out, "{1, 2, 3}") {
		t.Fatalf("init list lost:\n%s", out)
	}
}

func TestRenderUnknownPragmaPreserved(t *testing.T) {
	src := "int main() {\n#pragma unroll 4\nfor (int i = 0; i < 4; i++) { ; }\nreturn 0; }\n"
	f := mustParse(t, src, LangC, spec.OpenACC)
	out := Render(f)
	if !strings.Contains(out, "#pragma unroll 4") {
		t.Fatalf("foreign pragma lost:\n%s", out)
	}
}

func TestRenderFloatFormats(t *testing.T) {
	src := `int main() { double a = 1e-6; double b = 2.5; double c = 1.0; return 0; }`
	f := mustParse(t, src, LangC, spec.OpenMP)
	out := Render(f)
	for _, want := range []string{"1e-6", "2.5", "1.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("float literal %q lost:\n%s", want, out)
		}
	}
}
