package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDsRoundTripAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		tid := newTraceID()
		if tid.IsZero() {
			t.Fatal("zero trace ID generated")
		}
		h := tid.Hex()
		if seen[h] {
			t.Fatalf("duplicate trace ID %s", h)
		}
		seen[h] = true
		back, ok := ParseTraceID(h)
		if !ok || back != tid {
			t.Fatalf("ParseTraceID(%q) = %v, %v", h, back, ok)
		}
	}
	sid := newSpanID()
	back, ok := ParseSpanID(sid.Hex())
	if !ok || back != sid {
		t.Fatalf("ParseSpanID round trip failed for %s", sid.Hex())
	}
	if _, ok := ParseTraceID("nothex"); ok {
		t.Fatal("ParseTraceID accepted junk")
	}
	if _, ok := ParseTraceID(strings.Repeat("0", 32)); ok {
		t.Fatal("ParseTraceID accepted the zero ID")
	}
	if _, ok := ParseSpanID("xyz"); ok {
		t.Fatal("ParseSpanID accepted junk")
	}
}

func TestDisabledTracerIsInert(t *testing.T) {
	var tr *Tracer
	ctx, root := tr.StartTrace(context.Background(), "file")
	if root != nil {
		t.Fatal("nil tracer returned a span")
	}
	if _, s := Start(ctx, "child"); s != nil {
		t.Fatal("Start without a span in ctx returned a span")
	}
	// Every Span method must tolerate nil.
	root.SetAttr("k", "v")
	root.End()
	if got := root.TraceHex(); got != "" {
		t.Fatalf("nil span TraceHex = %q", got)
	}
	if got := root.SpanHex(); got != "" {
		t.Fatalf("nil span SpanHex = %q", got)
	}
	if _, s := tr.Join(ctx, "", "", "x"); s != nil {
		t.Fatal("nil tracer Join returned a span")
	}
	if tr.Recent() != nil || tr.SlowExemplars() != nil {
		t.Fatal("nil tracer reported data")
	}
	h := http.Header{}
	Inject(ctx, h)
	if len(h) != 0 {
		t.Fatalf("Inject without a span wrote headers: %v", h)
	}
}

func TestFragmentFlushOnRootEnd(t *testing.T) {
	var buf bytes.Buffer
	tr := New(WithWriter(&buf), WithProcess("test-proc"))
	ctx, root := tr.StartTrace(context.Background(), "file")
	root.SetAttr("name", "a.c")
	cctx, child := Start(ctx, "compile")
	_, grand := Start(cctx, "exec")
	grand.End()
	child.End()
	if buf.Len() != 0 {
		t.Fatal("fragment flushed before the root ended")
	}
	root.End()
	root.End() // double End must not double-flush

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 JSONL line, got %d: %q", len(lines), buf.String())
	}
	var rec Record
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("bad JSONL: %v", err)
	}
	if rec.Process != "test-proc" {
		t.Fatalf("process = %q", rec.Process)
	}
	if rec.Trace != root.TraceHex() {
		t.Fatalf("trace = %q, want %q", rec.Trace, root.TraceHex())
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(rec.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range rec.Spans {
		byName[s.Name] = s
	}
	if byName["compile"].Parent != byName["file"].ID {
		t.Fatal("compile span not parented under file")
	}
	if byName["exec"].Parent != byName["compile"].ID {
		t.Fatal("exec span not parented under compile")
	}
	if byName["file"].Parent != "" {
		t.Fatalf("root has parent %q", byName["file"].Parent)
	}
	if got := byName["file"].Attrs; len(got) != 1 || got[0].Key != "name" || got[0].Value != "a.c" {
		t.Fatalf("root attrs = %v", got)
	}
}

func TestJoinContinuesForeignTrace(t *testing.T) {
	var caller, callee bytes.Buffer
	ctr := New(WithWriter(&caller), WithProcess("caller"))
	cee := New(WithWriter(&callee), WithProcess("callee"))

	ctx, root := ctr.StartTrace(context.Background(), "request")
	h := http.Header{}
	Inject(ctx, h)
	traceHex, spanHex := Extract(h)
	if traceHex != root.TraceHex() || spanHex != root.SpanHex() {
		t.Fatalf("Extract = %q/%q, want %q/%q", traceHex, spanHex, root.TraceHex(), root.SpanHex())
	}

	_, frag := cee.Join(context.Background(), traceHex, spanHex, "server.request")
	if frag.TraceHex() != root.TraceHex() {
		t.Fatal("Join did not adopt the foreign trace ID")
	}
	frag.End()
	root.End()

	var calleeRec Record
	if err := json.Unmarshal(callee.Bytes(), &calleeRec); err != nil {
		t.Fatalf("callee JSONL: %v", err)
	}
	if calleeRec.Trace != root.TraceHex() {
		t.Fatal("fragment trace mismatch")
	}
	if calleeRec.Spans[0].Parent != root.SpanHex() {
		t.Fatalf("fragment root parent = %q, want caller span %q", calleeRec.Spans[0].Parent, root.SpanHex())
	}

	// An invalid inbound trace ID must start a fresh trace, not fail.
	_, fresh := cee.Join(context.Background(), "junk", "", "server.request")
	if fresh == nil || fresh.TraceHex() == "" || fresh.TraceHex() == root.TraceHex() {
		t.Fatal("Join with junk trace ID did not start a fresh trace")
	}
	fresh.End()
}

func TestRingBound(t *testing.T) {
	tr := New(WithRing(3))
	for i := 0; i < 10; i++ {
		_, s := tr.StartTrace(context.Background(), "file")
		s.End()
	}
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring holds %d, want 3", len(recent))
	}
	seen := map[string]bool{}
	for _, r := range recent {
		if seen[r.Trace] {
			t.Fatal("duplicate trace in ring")
		}
		seen[r.Trace] = true
	}
}

func TestSlowExemplarReservoir(t *testing.T) {
	tr := New(WithSlowK(2))
	durs := []time.Duration{5 * time.Millisecond, 1 * time.Millisecond, 9 * time.Millisecond, 3 * time.Millisecond}
	traces := make([]string, len(durs))
	for i, d := range durs {
		_, s := tr.StartTrace(context.Background(), "judge")
		traces[i] = s.TraceHex()
		s.startWC = s.startWC.Add(-d) // backdate instead of sleeping
		s.End()
	}
	ex := tr.SlowExemplars()
	if len(ex) != 2 {
		t.Fatalf("reservoir holds %d, want 2", len(ex))
	}
	if ex[0].Stage != "judge" || ex[0].Trace != traces[2] {
		t.Fatalf("slowest exemplar = %+v, want trace %s", ex[0], traces[2])
	}
	if ex[1].Trace != traces[0] {
		t.Fatalf("second exemplar = %+v, want trace %s", ex[1], traces[0])
	}
	if ex[0].DurNS < ex[1].DurNS {
		t.Fatal("exemplars not ordered by descending duration")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(WithWriter(io.Discard))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, root := tr.StartTrace(context.Background(), "file")
				for j := 0; j < 3; j++ {
					_, c := Start(ctx, "stage")
					c.SetAttr("j", "x")
					c.End()
				}
				root.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Recent()); got != 128 {
		t.Fatalf("ring holds %d, want full 128", got)
	}
}
