// Package trace is a dependency-free, concurrency-safe tracer for the
// judging stack: per-file traces whose spans cross process boundaries
// over two HTTP headers, exported as JSONL (one trace fragment per
// line), mirrored into a bounded in-memory ring for /debug/traces,
// and distilled into a slow-exemplar reservoir whose trace IDs
// surface through the Prometheus registry. The design target is the
// question aggregates cannot answer: when one file takes 40x the p50,
// which stage — compile convoy, bounded-load spill, failover retry,
// micro-batch gather — actually ate the time.
//
// # Model
//
// A trace is identified by a 16-byte TraceID and is made of spans:
// named intervals with an 8-byte SpanID, a parent SpanID, wall-clock
// start, monotonic duration, and string attributes. Each process
// records only the spans it ran and flushes them as one JSONL line (a
// trace *fragment*) when its local root span ends; a cross-process
// trace is therefore several lines sharing one trace ID, stitched by
// the reader (judgebench -trace-view does this). Propagation is by
// two headers, TraceHeader carrying the trace ID and SpanHeader the
// caller's span ID, which becomes the parent of the callee's
// fragment root.
//
// # Cost when disabled
//
// Everything is nil-safe: a nil *Tracer returns nil spans, and every
// method on a nil *Span returns immediately, so call sites guard hot
// paths with a single pointer test and the disabled configuration
// adds no allocations (the throughput benchmarks gate this).
package trace

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader and SpanHeader propagate trace identity across the HTTP
// wire (client injects, server joins). They ride next to the priority
// and client headers in internal/remote.
const (
	TraceHeader = "X-LLM4VV-Trace"
	SpanHeader  = "X-LLM4VV-Span"
)

// TraceID identifies one end-to-end trace (one judged file, one
// routed request, one store maintenance act).
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// Hex renders the ID in lowercase hex — the wire and JSONL spelling.
func (t TraceID) Hex() string { return hex.EncodeToString(t[:]) }

// Hex renders the ID in lowercase hex.
func (s SpanID) Hex() string { return hex.EncodeToString(s[:]) }

// IsZero reports an unset ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// ParseTraceID decodes a 32-digit hex trace ID; ok is false for
// anything else (including the zero ID, which is not a valid trace).
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 2*len(id) {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// ParseSpanID decodes a 16-digit hex span ID.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 2*len(id) {
		return SpanID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, false
	}
	return id, true
}

// idState seeds span/trace ID generation once per process: a
// splitmix64 stream over an atomic counter, seeded from the clock and
// pid. IDs need uniqueness, not unpredictability — there is no
// security boundary here — so no crypto/rand dependency.
var idState struct {
	once sync.Once
	ctr  atomic.Uint64
}

func nextID() uint64 {
	idState.once.Do(func() {
		idState.ctr.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32)
	})
	// splitmix64: every step of the counter maps to a well-mixed,
	// distinct 64-bit value.
	z := idState.ctr.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		a, b := nextID(), nextID()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

func newSpanID() SpanID {
	var id SpanID
	v := nextID()
	for i := 0; i < 8; i++ {
		id[i] = byte(v >> (8 * i))
	}
	return id
}

// Attr is one key=value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SpanRecord is the exported form of one finished span.
type SpanRecord struct {
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartNS is wall-clock Unix nanoseconds; DurNS is measured on the
	// monotonic clock.
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Record is one JSONL line: the fragment of a trace that one process
// recorded. A cross-process trace is several Records sharing Trace.
type Record struct {
	Trace   string       `json:"trace"`
	Process string       `json:"process,omitempty"`
	Spans   []SpanRecord `json:"spans"`
}

// Exemplar names one slow trace: the slowest observed instances of a
// span name, exposed through /metrics so a dashboard alert links
// straight to a trace ID.
type Exemplar struct {
	Stage string
	Trace string
	DurNS int64
}

// Span is one live interval. All methods are safe on a nil receiver
// (the disabled-tracing case) and safe for concurrent use.
type Span struct {
	tracer *Tracer
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	// local reports whether parent was recorded by this process; a
	// span with a foreign or absent parent is a fragment root, and its
	// End flushes the trace's buffered spans as one JSONL line.
	local   bool
	startWC time.Time // wall clock, also carries the monotonic reading
	mu      sync.Mutex
	attrs   []Attr
	ended   bool
}

// spanKey carries the current span through a context.
type spanKey struct{}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ContextWith returns ctx carrying s. A nil s returns ctx unchanged,
// so disabled tracing allocates nothing.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// Start opens a child span under the span carried by ctx. Without one
// (or with tracing disabled) it returns (ctx, nil), which every Span
// method tolerates.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := &Span{
		tracer:  parent.tracer,
		trace:   parent.trace,
		id:      newSpanID(),
		parent:  parent.id,
		name:    name,
		local:   true,
		startWC: time.Now(),
	}
	return ContextWith(ctx, s), s
}

// SetAttr annotates the span. No-op on nil or ended spans.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// TraceHex returns the span's trace ID in hex, "" on nil — the value
// injected into TraceHeader and stamped into logs.
func (s *Span) TraceHex() string {
	if s == nil {
		return ""
	}
	return s.trace.Hex()
}

// SpanHex returns the span ID in hex, "" on nil.
func (s *Span) SpanHex() string {
	if s == nil {
		return ""
	}
	return s.id.Hex()
}

// End finishes the span and hands it to the tracer. Ending a fragment
// root flushes the trace's spans as one JSONL line. Second and later
// Ends are no-ops, as is End on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.startWC)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	rec := SpanRecord{
		ID:      s.id.Hex(),
		Name:    s.name,
		StartNS: s.startWC.UnixNano(),
		DurNS:   int64(dur),
		Attrs:   attrs,
	}
	if s.parent != (SpanID{}) {
		rec.Parent = s.parent.Hex()
	}
	s.tracer.record(s.trace, rec, !s.local)
}

// Tracer collects spans, writes JSONL fragments, keeps the recent
// ring, and maintains the slow-exemplar reservoir. The zero value is
// not usable; construct with New. A nil *Tracer is the disabled
// tracer: StartTrace and Join return nil spans.
type Tracer struct {
	process string
	ring    int
	slowK   int

	mu     sync.Mutex
	w      io.Writer
	bufs   map[TraceID][]SpanRecord
	open   map[TraceID]int       // live fragment roots per trace
	recent []Record              // ring buffer of flushed fragments, oldest first
	slow   map[string][]Exemplar // span name -> ascending-duration top-K
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithWriter sets the JSONL sink (one trace fragment per line). The
// tracer serialises writes; the writer needs no locking of its own.
func WithWriter(w io.Writer) Option { return func(t *Tracer) { t.w = w } }

// WithProcess names the recording process in every fragment —
// "judgebench", "llm4vv-router", a replica ID — so a stitched trace
// says which side of the wire each span ran on.
func WithProcess(name string) Option { return func(t *Tracer) { t.process = name } }

// WithRing sets how many recent fragments /debug/traces retains
// (default 128, minimum 1).
func WithRing(n int) Option { return func(t *Tracer) { t.ring = n } }

// WithSlowK sets how many slowest exemplars to keep per span name
// (default 3, minimum 1).
func WithSlowK(k int) Option { return func(t *Tracer) { t.slowK = k } }

// New builds a Tracer. With no writer, spans still feed the ring and
// the slow reservoir (the daemons' default: /debug/traces without a
// trace file).
func New(opts ...Option) *Tracer {
	t := &Tracer{
		ring:  128,
		slowK: 3,
		bufs:  map[TraceID][]SpanRecord{},
		open:  map[TraceID]int{},
		slow:  map[string][]Exemplar{},
	}
	for _, o := range opts {
		o(t)
	}
	if t.ring < 1 {
		t.ring = 1
	}
	if t.slowK < 1 {
		t.slowK = 1
	}
	return t
}

// StartTrace opens a new trace rooted at a new span and returns a
// context carrying it. On a nil tracer it returns (ctx, nil).
func (t *Tracer) StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{
		tracer:  t,
		trace:   newTraceID(),
		id:      newSpanID(),
		name:    name,
		startWC: time.Now(),
	}
	t.openRoot(s.trace)
	return ContextWith(ctx, s), s
}

// Join opens a fragment root continuing a foreign trace: traceHex and
// parentHex are the extracted header values. An invalid or absent
// trace ID starts a fresh trace instead, so a daemon traces its own
// requests even when callers do not. On a nil tracer: (ctx, nil).
func (t *Tracer) Join(ctx context.Context, traceHex, parentHex, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	id, ok := ParseTraceID(traceHex)
	if !ok {
		return t.StartTrace(ctx, name)
	}
	s := &Span{
		tracer:  t,
		trace:   id,
		id:      newSpanID(),
		name:    name,
		startWC: time.Now(),
	}
	if p, ok := ParseSpanID(parentHex); ok {
		s.parent = p
	}
	t.openRoot(s.trace)
	return ContextWith(ctx, s), s
}

// openRoot registers one live fragment root for a trace; the matching
// root End flushes the fragment once no roots remain open.
func (t *Tracer) openRoot(trace TraceID) {
	t.mu.Lock()
	t.open[trace]++
	t.mu.Unlock()
}

// record buffers one finished span. The fragment flushes when the
// trace's last open root ends; a span that straggles in after that —
// an abandoned panel member, a batch outliving an early-returning
// request — flushes immediately as a one-off fragment of the same
// trace rather than leaking in the buffer.
func (t *Tracer) record(trace TraceID, rec SpanRecord, root bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.bufs[trace] = append(t.bufs[trace], rec)
	t.observeSlowLocked(rec.Name, trace.Hex(), rec.DurNS)
	if root {
		if t.open[trace]--; t.open[trace] <= 0 {
			delete(t.open, trace)
		} else {
			t.mu.Unlock()
			return
		}
	} else if _, live := t.open[trace]; live {
		t.mu.Unlock()
		return
	}
	spans := t.bufs[trace]
	delete(t.bufs, trace)
	frag := Record{Trace: trace.Hex(), Process: t.process, Spans: spans}
	if len(t.recent) == t.ring {
		copy(t.recent, t.recent[1:])
		t.recent[len(t.recent)-1] = frag
	} else {
		t.recent = append(t.recent, frag)
	}
	w := t.w
	if w != nil {
		line, _ := json.Marshal(frag)
		line = append(line, '\n')
		_, _ = w.Write(line)
	}
	t.mu.Unlock()
}

// observeSlowLocked feeds the per-name top-K reservoir. Callers hold mu.
func (t *Tracer) observeSlowLocked(name, trace string, durNS int64) {
	top := t.slow[name]
	if len(top) < t.slowK {
		top = append(top, Exemplar{Stage: name, Trace: trace, DurNS: durNS})
		sort.Slice(top, func(i, j int) bool { return top[i].DurNS < top[j].DurNS })
		t.slow[name] = top
		return
	}
	if durNS <= top[0].DurNS {
		return
	}
	top[0] = Exemplar{Stage: name, Trace: trace, DurNS: durNS}
	sort.Slice(top, func(i, j int) bool { return top[i].DurNS < top[j].DurNS })
	t.slow[name] = top
}

// Recent returns the retained fragments, oldest first — the payload
// of /debug/traces. The slice and its contents are copies.
func (t *Tracer) Recent() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, len(t.recent))
	copy(out, t.recent)
	return out
}

// SlowExemplars returns the reservoir in deterministic order (span
// name ascending, then duration descending) — the source of the
// llm4vv_trace_slow_exemplar metric family.
func (t *Tracer) SlowExemplars() []Exemplar {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Exemplar
	for _, top := range t.slow {
		out = append(out, top...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		if out[i].DurNS != out[j].DurNS {
			return out[i].DurNS > out[j].DurNS
		}
		return out[i].Trace < out[j].Trace
	})
	return out
}

// Inject writes ctx's span identity into h. Without a span in ctx it
// writes nothing — absent headers, not empty ones.
func Inject(ctx context.Context, h http.Header) {
	s := FromContext(ctx)
	if s == nil {
		return
	}
	h.Set(TraceHeader, s.TraceHex())
	h.Set(SpanHeader, s.SpanHex())
}

// Extract reads the propagation headers; empty strings when absent.
func Extract(h http.Header) (traceHex, spanHex string) {
	return h.Get(TraceHeader), h.Get(SpanHeader)
}
