package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/probe"
	"repro/internal/rng"
	"repro/internal/spec"
)

func TestScoreBasics(t *testing.T) {
	outcomes := []Outcome{
		{Issue: probe.IssueNone, JudgedValid: true},       // correct
		{Issue: probe.IssueNone, JudgedValid: false},      // failed valid
		{Issue: probe.IssueBracket, JudgedValid: false},   // correct
		{Issue: probe.IssueBracket, JudgedValid: true},    // passed invalid
		{Issue: probe.IssueRandom, JudgedValid: true},     // passed invalid
		{Issue: probe.IssueTruncated, JudgedValid: false}, // correct
	}
	s := Score(spec.OpenACC, outcomes)
	if s.Total != 6 || s.Mistakes != 3 {
		t.Fatalf("total=%d mistakes=%d", s.Total, s.Mistakes)
	}
	if got := s.Accuracy(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
	// Bias: +1 +1 (passed invalid) -1 (failed valid) over 3 mistakes.
	if got := s.Bias(); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("bias = %v", got)
	}
	if s.PerIssue[probe.IssueBracket].Count != 2 || s.PerIssue[probe.IssueBracket].Correct != 1 {
		t.Fatalf("per-issue = %+v", s.PerIssue[probe.IssueBracket])
	}
}

func TestPaperTableIIIACCArithmetic(t *testing.T) {
	// Reconstruct Table III (OpenACC) from Table I's published counts:
	// the overall accuracy and bias must emerge from the per-issue
	// numbers, proving the metric definitions match the paper's.
	var outcomes []Outcome
	add := func(issue probe.Issue, correct, incorrect int) {
		for i := 0; i < correct; i++ {
			outcomes = append(outcomes, Outcome{Issue: issue, JudgedValid: issue.Valid()})
		}
		for i := 0; i < incorrect; i++ {
			outcomes = append(outcomes, Outcome{Issue: issue, JudgedValid: !issue.Valid()})
		}
	}
	add(probe.IssueDirective, 31, 172)
	add(probe.IssueBracket, 15, 110)
	add(probe.IssueUndeclared, 16, 92)
	add(probe.IssueRandom, 94, 23)
	add(probe.IssueTruncated, 14, 100)
	add(probe.IssueNone, 586, 82)
	s := Score(spec.OpenACC, outcomes)
	if s.Total != 1335 {
		t.Fatalf("total = %d, want 1335", s.Total)
	}
	if s.Mistakes != 579 {
		t.Fatalf("mistakes = %d, want 579", s.Mistakes)
	}
	if acc := 100 * s.Accuracy(); math.Abs(acc-56.63) > 0.01 {
		t.Fatalf("accuracy = %.2f%%, want 56.63%%", acc)
	}
	if bias := s.Bias(); math.Abs(bias-0.717) > 0.001 {
		t.Fatalf("bias = %.3f, want 0.717", bias)
	}
}

func TestBiasBounds(t *testing.T) {
	r := rng.New(42)
	if err := quick.Check(func(n uint8) bool {
		var outcomes []Outcome
		for i := 0; i < int(n)+1; i++ {
			outcomes = append(outcomes, Outcome{
				Issue:       probe.Issue(r.Intn(probe.NumIssues)),
				JudgedValid: r.Bool(0.5),
			})
		}
		s := Score(spec.OpenMP, outcomes)
		b := s.Bias()
		if b < -1 || b > 1 {
			return false
		}
		// Accuracy in [0,1], counts consistent.
		if s.Accuracy() < 0 || s.Accuracy() > 1 {
			return false
		}
		return s.Mistakes == s.PassedInvalid+s.FailedValid
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBiasExtremes(t *testing.T) {
	// All mistakes permissive.
	s := Score(spec.OpenACC, []Outcome{
		{Issue: probe.IssueBracket, JudgedValid: true},
		{Issue: probe.IssueRandom, JudgedValid: true},
	})
	if s.Bias() != 1 {
		t.Fatalf("bias = %v, want 1", s.Bias())
	}
	// All mistakes restrictive.
	s = Score(spec.OpenACC, []Outcome{
		{Issue: probe.IssueNone, JudgedValid: false},
	})
	if s.Bias() != -1 {
		t.Fatalf("bias = %v, want -1", s.Bias())
	}
	// No mistakes.
	s = Score(spec.OpenACC, []Outcome{
		{Issue: probe.IssueNone, JudgedValid: true},
	})
	if s.Bias() != 0 {
		t.Fatalf("bias = %v, want 0", s.Bias())
	}
}

func TestEmptyScore(t *testing.T) {
	s := Score(spec.OpenACC, nil)
	if s.Accuracy() != 0 || s.Bias() != 0 || s.Total != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestRadarAxes(t *testing.T) {
	var outcomes []Outcome
	// issue1: 1/2 correct, issue2: 2/2 -> merged syntax axis 3/4.
	outcomes = append(outcomes,
		Outcome{Issue: probe.IssueBracket, JudgedValid: false},
		Outcome{Issue: probe.IssueBracket, JudgedValid: true},
		Outcome{Issue: probe.IssueUndeclared, JudgedValid: false},
		Outcome{Issue: probe.IssueUndeclared, JudgedValid: false},
		Outcome{Issue: probe.IssueNone, JudgedValid: true},
	)
	axes := RadarAxes(Score(spec.OpenACC, outcomes))
	if len(axes) != 5 {
		t.Fatalf("axes = %d", len(axes))
	}
	byLabel := map[string]float64{}
	for _, ax := range axes {
		byLabel[ax.Label] = ax.Value
	}
	if math.Abs(byLabel["Improper Syntax"]-0.75) > 1e-12 {
		t.Fatalf("syntax axis = %v, want 0.75", byLabel["Improper Syntax"])
	}
	if byLabel["Valid Recognition"] != 1 {
		t.Fatalf("valid axis = %v", byLabel["Valid Recognition"])
	}
	if byLabel["Improper Directives"] != 0 {
		t.Fatalf("empty axis should be 0, got %v", byLabel["Improper Directives"])
	}
}

func TestSummaryString(t *testing.T) {
	s := Score(spec.OpenMP, []Outcome{{Issue: probe.IssueNone, JudgedValid: true}})
	if got := s.String(); got == "" {
		t.Fatal("empty String()")
	}
}
