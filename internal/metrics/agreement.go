package metrics

// Inter-judge agreement metrics for ensemble (panel) runs: Fleiss'
// kappa over the member verdicts, the pairwise agreement matrix, and
// a per-member bias decomposition against the panel verdict — the
// reliability lens the multi-judge literature applies to
// LLM-as-a-judge ("From Code to Courtroom", the LLM4VV follow-up).

import (
	"repro/internal/judge"
)

// voteCategories is the number of verdict categories agreement is
// computed over: valid, invalid, and other (unparsable responses and
// dropped members alike — what matters for agreement is that the
// member failed to deliver a usable verdict).
const voteCategories = 3

// category buckets a verdict for agreement counting.
func category(v judge.Verdict) int {
	switch v {
	case judge.Valid:
		return 0
	case judge.Invalid:
		return 1
	default:
		return 2
	}
}

// MemberStat decomposes one panel member's behaviour against the
// panel verdict across all items.
type MemberStat struct {
	Member string
	// Items the member was polled on — every scored item, including
	// ones where its vote was unparsable or the member was dropped
	// (both arrive here as Unparsable and count as disagreements with
	// any parsable panel verdict; a member that times out on every
	// file shows full Items with a zero agree rate).
	Items int
	// Agreed counts votes equal to the panel verdict.
	Agreed int
	// PassedVsPanel counts items the member called valid while the
	// panel concluded invalid; FailedVsPanel the converse. Their
	// difference over all disagreements is the member's bias relative
	// to the panel, the panel-side analogue of Summary.Bias.
	PassedVsPanel int
	FailedVsPanel int
}

// AgreeRate is Agreed/Items (0 when the member never voted).
func (m MemberStat) AgreeRate() float64 {
	if m.Items == 0 {
		return 0
	}
	return float64(m.Agreed) / float64(m.Items)
}

// Disagreements counts votes that differed from the panel verdict.
func (m MemberStat) Disagreements() int { return m.Items - m.Agreed }

// Bias is the member's signed tendency, among its disagreements with
// the panel, toward passing what the panel failed (+1) versus failing
// what the panel passed (-1); 0 when the member never disagreed.
func (m MemberStat) Bias() float64 {
	if d := m.Disagreements(); d > 0 {
		return float64(m.PassedVsPanel-m.FailedVsPanel) / float64(d)
	}
	return 0
}

// Agreement is the full inter-judge agreement scoring of one panel
// run: everything the panel report prints beyond the verdict tables.
type Agreement struct {
	Members []string
	Items   int
	// Kappa is Fleiss' kappa over the member verdicts (categories
	// valid / invalid / other): chance-corrected agreement in [-1, 1],
	// 1 when every member always agrees. Defined as 1 for the
	// degenerate cases where agreement is trivially perfect (a single
	// member, zero items, or all votes in one category).
	Kappa float64
	// Pairwise[i][j] is the fraction of items where members i and j
	// cast the same verdict (1 on the diagonal).
	Pairwise [][]float64
	// MemberStats aligns with Members.
	MemberStats []MemberStat
}

// MeanPairwise is the average off-diagonal pairwise agreement — the
// raw (not chance-corrected) companion to Kappa. 1 for single-member
// panels, which cannot disagree with themselves.
func (a Agreement) MeanPairwise() float64 {
	n := len(a.Members)
	if n < 2 {
		return 1
	}
	sum, pairs := 0.0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += a.Pairwise[i][j]
			pairs++
		}
	}
	return sum / float64(pairs)
}

// KappaBand renders the Landis–Koch qualitative band for a kappa
// value, the conventional reading aid for agreement coefficients.
func KappaBand(k float64) string {
	switch {
	case k < 0:
		return "poor"
	case k < 0.2:
		return "slight"
	case k < 0.4:
		return "fair"
	case k < 0.6:
		return "moderate"
	case k < 0.8:
		return "substantial"
	default:
		return "almost perfect"
	}
}

// ComputeAgreement scores one panel run. votes[item][member] aligns
// with members on the second axis and with panelVerdicts on the
// first; dropped members are represented as judge.Unparsable (the
// caller maps its error marker). Items whose vote count mismatches
// the member list are skipped defensively.
func ComputeAgreement(members []string, votes [][]judge.Verdict, panelVerdicts []judge.Verdict) Agreement {
	n := len(members)
	a := Agreement{
		Members:     members,
		Pairwise:    make([][]float64, n),
		MemberStats: make([]MemberStat, n),
	}
	for i := range a.MemberStats {
		a.MemberStats[i].Member = members[i]
	}
	pairAgree := make([][]int, n)
	for i := range pairAgree {
		pairAgree[i] = make([]int, n)
		a.Pairwise[i] = make([]float64, n)
	}

	// Fleiss accumulators: sumPi collects per-item agreement
	// proportions, catTotals the marginal category counts.
	var sumPi float64
	var catTotals [voteCategories]float64
	for item, vs := range votes {
		if len(vs) != n || item >= len(panelVerdicts) {
			continue
		}
		a.Items++
		var counts [voteCategories]int
		for i, v := range vs {
			c := category(v)
			counts[c]++
			catTotals[c]++
			st := &a.MemberStats[i]
			st.Items++
			switch {
			case v == panelVerdicts[item]:
				st.Agreed++
			case v == judge.Valid && panelVerdicts[item] == judge.Invalid:
				st.PassedVsPanel++
			case v == judge.Invalid && panelVerdicts[item] == judge.Valid:
				st.FailedVsPanel++
			}
			for j := 0; j < i; j++ {
				if category(vs[j]) == c {
					pairAgree[i][j]++
					pairAgree[j][i]++
				}
			}
		}
		if n > 1 {
			same := 0
			for _, c := range counts {
				same += c * (c - 1)
			}
			sumPi += float64(same) / float64(n*(n-1))
		}
	}

	for i := 0; i < n; i++ {
		a.Pairwise[i][i] = 1
		for j := 0; j < n; j++ {
			if i != j && a.Items > 0 {
				a.Pairwise[i][j] = float64(pairAgree[i][j]) / float64(a.Items)
			}
		}
	}

	a.Kappa = fleissKappa(n, a.Items, sumPi, catTotals)
	return a
}

// fleissKappa finishes the kappa computation from the accumulators.
// Degenerate inputs — fewer than two raters, zero items, or every
// vote in one category (expected agreement 1) — are defined as 1:
// observed agreement is trivially perfect and the chance correction
// has no information to subtract.
func fleissKappa(raters, items int, sumPi float64, catTotals [voteCategories]float64) float64 {
	if raters < 2 || items == 0 {
		return 1
	}
	pBar := sumPi / float64(items)
	total := float64(raters * items)
	var pe float64
	for _, c := range catTotals {
		p := c / total
		pe += p * p
	}
	if pe >= 1 {
		return 1
	}
	return (pBar - pe) / (1 - pe)
}
