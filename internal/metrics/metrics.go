// Package metrics implements the paper's three evaluation metrics
// (§IV): per-issue evaluation accuracy, overall evaluation accuracy,
// and bias — the signed tendency of a judge's mistakes toward passing
// invalid files (+1) versus failing valid files (-1).
package metrics

import (
	"fmt"

	"repro/internal/probe"
	"repro/internal/spec"
)

// Outcome is one scored judgement: the file's ground-truth issue and
// whether the configuration under test called the file valid.
type Outcome struct {
	Issue       probe.Issue
	JudgedValid bool
}

// PerIssue aggregates results for one issue ID.
type PerIssue struct {
	Issue     probe.Issue
	Count     int
	Correct   int
	Incorrect int
}

// Accuracy is Correct/Count (0 when Count is 0).
func (p PerIssue) Accuracy() float64 {
	if p.Count == 0 {
		return 0
	}
	return float64(p.Correct) / float64(p.Count)
}

// Summary is the full scoring of one judge/pipeline configuration on
// one probed suite — the contents of one column group of the paper's
// tables.
type Summary struct {
	Dialect  spec.Dialect
	PerIssue [probe.NumIssues]PerIssue
	Total    int
	Mistakes int
	// passedInvalid / failedValid split the mistakes for the bias.
	PassedInvalid int
	FailedValid   int
}

// Accuracy is the overall evaluation accuracy.
func (s Summary) Accuracy() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Total-s.Mistakes) / float64(s.Total)
}

// Bias is the paper's bias metric: +1 per passed-invalid mistake, -1
// per failed-valid mistake, divided by total mistakes; 0 when there
// are no mistakes.
func (s Summary) Bias() float64 {
	if s.Mistakes == 0 {
		return 0
	}
	return float64(s.PassedInvalid-s.FailedValid) / float64(s.Mistakes)
}

// Score aggregates outcomes into a Summary. The ground truth follows
// the paper's system-of-verification: issues 0-4 are invalid, issue 5
// is valid.
func Score(d spec.Dialect, outcomes []Outcome) Summary {
	s := Summary{Dialect: d}
	for i := range s.PerIssue {
		s.PerIssue[i].Issue = probe.Issue(i)
	}
	for _, o := range outcomes {
		if o.Issue < 0 || int(o.Issue) >= probe.NumIssues {
			continue
		}
		p := &s.PerIssue[o.Issue]
		p.Count++
		s.Total++
		correct := o.JudgedValid == o.Issue.Valid()
		if correct {
			p.Correct++
			continue
		}
		p.Incorrect++
		s.Mistakes++
		if o.Issue.Valid() {
			s.FailedValid++
		} else {
			s.PassedInvalid++
		}
	}
	return s
}

// String renders a compact one-line overview for logs.
func (s Summary) String() string {
	return fmt.Sprintf("%s: n=%d acc=%.2f%% bias=%+.3f",
		s.Dialect, s.Total, 100*s.Accuracy(), s.Bias())
}

// CategoryAccuracy maps the paper's radar-plot axes (Figures 3-6) onto
// issue classes: "Improper Directives" (issue 0), "Improper Syntax"
// (issues 1 and 2 merged — both are surface-form errors), "No
// Directives" (issue 3), "Test Logic" (issue 4), and "Valid
// Recognition" (issue 5).
type CategoryAccuracy struct {
	Label string
	Value float64
}

// RadarAxes projects a summary onto the radar-plot axes.
func RadarAxes(s Summary) []CategoryAccuracy {
	merge := func(issues ...probe.Issue) float64 {
		c, n := 0, 0
		for _, i := range issues {
			c += s.PerIssue[i].Correct
			n += s.PerIssue[i].Count
		}
		if n == 0 {
			return 0
		}
		return float64(c) / float64(n)
	}
	return []CategoryAccuracy{
		{Label: "Improper Directives", Value: merge(probe.IssueDirective)},
		{Label: "Improper Syntax", Value: merge(probe.IssueBracket, probe.IssueUndeclared)},
		{Label: "No Directives", Value: merge(probe.IssueRandom)},
		{Label: "Test Logic", Value: merge(probe.IssueTruncated)},
		{Label: "Valid Recognition", Value: merge(probe.IssueNone)},
	}
}
