package metrics

import (
	"math"
	"testing"

	"repro/internal/judge"
)

const (
	va = judge.Valid
	in = judge.Invalid
	un = judge.Unparsable
)

func agree(t *testing.T, members []string, votes [][]judge.Verdict, panel []judge.Verdict) Agreement {
	t.Helper()
	return ComputeAgreement(members, votes, panel)
}

// TestKappaAllAgree: perfect agreement is kappa 1, including the
// degenerate single-category case where the chance-expected agreement
// is also 1 (the 0/0 the convention defines as perfect).
func TestKappaAllAgree(t *testing.T) {
	members := []string{"a", "b", "c"}
	uniform := [][]judge.Verdict{{va, va, va}, {va, va, va}, {va, va, va}}
	a := agree(t, members, uniform, []judge.Verdict{va, va, va})
	if a.Kappa != 1 {
		t.Errorf("all-agree single-category kappa = %v, want 1", a.Kappa)
	}
	// Perfect agreement across mixed categories: Pe < 1, kappa still 1.
	mixed := [][]judge.Verdict{{va, va, va}, {in, in, in}}
	a = agree(t, members, mixed, []judge.Verdict{va, in})
	if math.Abs(a.Kappa-1) > 1e-12 {
		t.Errorf("all-agree mixed-category kappa = %v, want 1", a.Kappa)
	}
	for i := range members {
		for j := range members {
			if a.Pairwise[i][j] != 1 {
				t.Errorf("pairwise[%d][%d] = %v, want 1", i, j, a.Pairwise[i][j])
			}
		}
	}
	if a.MeanPairwise() != 1 {
		t.Errorf("mean pairwise = %v, want 1", a.MeanPairwise())
	}
}

// TestKappaTwoMemberPanel pins the n=2 case (where Fleiss' kappa
// reduces to Scott's pi) against a hand-computed value.
func TestKappaTwoMemberPanel(t *testing.T) {
	members := []string{"a", "b"}
	// 4 items: agree, agree, disagree, disagree.
	votes := [][]judge.Verdict{{va, va}, {in, in}, {va, in}, {in, va}}
	panel := []judge.Verdict{va, in, va, in}
	a := agree(t, members, votes, panel)
	// P_i = 1, 1, 0, 0 -> Pbar = 0.5. Marginals: valid 4/8, invalid
	// 4/8 -> Pe = 0.5. kappa = (0.5-0.5)/(1-0.5) = 0.
	if math.Abs(a.Kappa) > 1e-12 {
		t.Errorf("two-member kappa = %v, want 0", a.Kappa)
	}
	if a.Pairwise[0][1] != 0.5 {
		t.Errorf("pairwise agreement = %v, want 0.5", a.Pairwise[0][1])
	}
}

// TestKappaDisagreement: systematic disagreement lands below zero.
func TestKappaDisagreement(t *testing.T) {
	members := []string{"a", "b"}
	votes := [][]judge.Verdict{{va, in}, {in, va}, {va, in}, {in, va}}
	panel := []judge.Verdict{va, va, va, va}
	a := agree(t, members, votes, panel)
	if a.Kappa >= 0 {
		t.Errorf("pure-disagreement kappa = %v, want < 0", a.Kappa)
	}
}

// TestKappaDegenerate: single member, zero items.
func TestKappaDegenerate(t *testing.T) {
	a := agree(t, []string{"solo"}, [][]judge.Verdict{{va}, {in}}, []judge.Verdict{va, in})
	if a.Kappa != 1 || a.MeanPairwise() != 1 {
		t.Errorf("single-member kappa = %v mean pairwise = %v, want 1, 1", a.Kappa, a.MeanPairwise())
	}
	a = agree(t, []string{"a", "b"}, nil, nil)
	if a.Kappa != 1 || a.Items != 0 {
		t.Errorf("empty-run kappa = %v items = %d, want 1, 0", a.Kappa, a.Items)
	}
}

// TestUnparsableIsItsOwnCategory: an unparsable vote disagrees with
// both verdicts but two unparsable votes agree with each other.
func TestUnparsableIsItsOwnCategory(t *testing.T) {
	a := agree(t, []string{"a", "b"},
		[][]judge.Verdict{{un, un}, {un, va}},
		[]judge.Verdict{in, va})
	if a.Pairwise[0][1] != 0.5 {
		t.Errorf("pairwise with unparsable votes = %v, want 0.5", a.Pairwise[0][1])
	}
}

func TestMemberStatsBiasDecomposition(t *testing.T) {
	members := []string{"lenient", "harsh", "aligned"}
	//          lenient  harsh  aligned   panel
	// item 0:  valid    invalid valid  -> valid
	// item 1:  valid    invalid invalid-> invalid
	// item 2:  valid    invalid valid  -> valid
	votes := [][]judge.Verdict{
		{va, in, va},
		{va, in, in},
		{va, in, va},
	}
	panel := []judge.Verdict{va, in, va}
	a := agree(t, members, votes, panel)

	lenient := a.MemberStats[0]
	if lenient.PassedVsPanel != 1 || lenient.FailedVsPanel != 0 {
		t.Errorf("lenient decomposition = %+v", lenient)
	}
	if lenient.Bias() != 1 {
		t.Errorf("lenient bias = %v, want +1", lenient.Bias())
	}
	harsh := a.MemberStats[1]
	if harsh.PassedVsPanel != 0 || harsh.FailedVsPanel != 2 {
		t.Errorf("harsh decomposition = %+v", harsh)
	}
	if harsh.Bias() != -1 {
		t.Errorf("harsh bias = %v, want -1", harsh.Bias())
	}
	aligned := a.MemberStats[2]
	if aligned.AgreeRate() != 1 || aligned.Bias() != 0 || aligned.Disagreements() != 0 {
		t.Errorf("aligned stats = %+v", aligned)
	}
	// Skipped malformed items do not count.
	a = agree(t, members, [][]judge.Verdict{{va}}, panel)
	if a.Items != 0 {
		t.Errorf("malformed item counted: Items = %d", a.Items)
	}
}

func TestKappaBands(t *testing.T) {
	cases := map[float64]string{
		-0.1: "poor", 0.1: "slight", 0.3: "fair",
		0.5: "moderate", 0.7: "substantial", 0.9: "almost perfect",
	}
	for k, want := range cases {
		if got := KappaBand(k); got != want {
			t.Errorf("KappaBand(%v) = %q, want %q", k, got, want)
		}
	}
}
