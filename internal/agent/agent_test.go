package agent

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/probe"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/testlang"
)

func TestGatherValidFile(t *testing.T) {
	f, err := corpus.InstantiateTemplate(spec.OpenACC, "parallel_loop_vecadd", testlang.LangC, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := NewTools(spec.OpenACC).Gather(f.Name, f.Source, f.Lang)
	if !out.CompilePassed() {
		t.Fatalf("valid file failed compile:\n%s", out.Compile.Stderr)
	}
	if !out.RunPassed() {
		t.Fatalf("valid file failed run: rc=%d stderr=%s", out.Run.ReturnCode, out.Run.Stderr)
	}
	if out.Info.CompileRC != 0 || !out.Info.Ran || out.Info.RunRC != 0 {
		t.Fatalf("tool info wrong: %+v", out.Info)
	}
	if !strings.Contains(out.Info.RunStdout, "passed") && !strings.Contains(out.Info.RunStdout, "PASS") {
		t.Fatalf("run stdout = %q", out.Info.RunStdout)
	}
}

func TestGatherCompileFailure(t *testing.T) {
	f, err := corpus.InstantiateTemplate(spec.OpenMP, "target_saxpy", testlang.LangC, 2)
	if err != nil {
		t.Fatal(err)
	}
	pf := probe.Mutate(f, probe.IssueBracket, rng.New(1))
	out := NewTools(spec.OpenMP).Gather(pf.Name, pf.Source, pf.Lang)
	if out.CompilePassed() {
		t.Fatal("bracket-mutated file compiled")
	}
	if out.Run != nil || out.Info.Ran {
		t.Fatal("compile-failed file was executed")
	}
	if out.Info.CompileRC == 0 || out.Info.CompileStderr == "" {
		t.Fatalf("tool info lacks compile failure: %+v", out.Info)
	}
}

func TestGatherRuntimeFailure(t *testing.T) {
	f, err := corpus.InstantiateTemplate(spec.OpenMP, "target_saxpy", testlang.LangC, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Removing the map clause leaves a compiling file that faults on
	// the device at run time.
	src := strings.Replace(f.Source, " map(to: x[0:N])", "", 1)
	src = strings.Replace(src, " map(tofrom: y[0:N])", "", 1)
	if src == f.Source {
		t.Fatal("map clauses not found in template source")
	}
	out := NewTools(spec.OpenMP).Gather(f.Name, src, f.Lang)
	if !out.CompilePassed() {
		t.Fatalf("unexpected compile failure:\n%s", out.Compile.Stderr)
	}
	if out.RunPassed() {
		t.Fatal("unmapped device access ran clean")
	}
	if out.Info.RunRC == 0 {
		t.Fatalf("tool info run rc = 0: %+v", out.Info)
	}
}

func TestToolsPersonalityPairing(t *testing.T) {
	if NewTools(spec.OpenACC).Personality.Name != "nvc" {
		t.Fatal("OpenACC tools should use the nvc personality")
	}
	if NewTools(spec.OpenMP).Personality.Name != "clang" {
		t.Fatal("OpenMP tools should use the clang personality")
	}
}
