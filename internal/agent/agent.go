// Package agent implements the paper's agent-based approach (§III-B):
// treating the judge as an agent whose environment tools — the
// compiler and the execution machine — are run on its behalf, with
// their outputs packaged into the prompt's tool-information block.
package agent

import (
	"repro/internal/compiler"
	"repro/internal/judge"
	"repro/internal/machine"
	"repro/internal/spec"
	"repro/internal/testlang"
)

// Tools bundles the toolchain the agent runs for the judge.
type Tools struct {
	Personality *compiler.Personality
	MachineOpts machine.Options
}

// NewTools returns the standard toolchain for a dialect (nvc-model for
// OpenACC, clang-model for OpenMP).
func NewTools(d spec.Dialect) *Tools {
	return &Tools{Personality: compiler.ForDialect(d)}
}

// Outcome is the result of one tool gathering: the prompt-ready
// ToolInfo plus the raw stage results for pipeline accounting.
type Outcome struct {
	Info    judge.ToolInfo
	Compile *compiler.Result
	// Run is nil when compilation failed or the file is not executable
	// in the simulation (Fortran).
	Run *machine.Result
}

// CompilePassed reports whether the compile stage succeeded.
func (o *Outcome) CompilePassed() bool { return o.Compile != nil && o.Compile.OK }

// RunPassed reports whether the execution stage succeeded (exit 0).
func (o *Outcome) RunPassed() bool { return o.Run != nil && o.Run.ReturnCode == 0 }

// Gather compiles and (when possible) runs one file, producing the
// information block the agent-based prompts embed.
func (t *Tools) Gather(name, src string, lang testlang.Language) *Outcome {
	out := &Outcome{}
	out.Compile = t.Personality.Compile(name, src, lang)
	out.Info = judge.ToolInfo{
		CompileRC:     out.Compile.ReturnCode,
		CompileStderr: out.Compile.Stderr,
		CompileStdout: out.Compile.Stdout,
	}
	if !out.Compile.OK || out.Compile.Object == nil {
		return out
	}
	out.Run = machine.Run(out.Compile.Object, t.MachineOpts)
	out.Info.Ran = true
	out.Info.RunRC = out.Run.ReturnCode
	out.Info.RunStderr = out.Run.Stderr
	out.Info.RunStdout = out.Run.Stdout
	return out
}
