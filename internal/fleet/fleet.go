// Package fleet is the horizontal-scaling tier over N llm4vvd judge
// daemons: a Router that fronts a replica set behind the judge.LLM /
// ContextLLM / BatchLLM contracts, so every experiment, Runner sweep,
// and panel runs unmodified against a whole fleet — and scales by
// adding replicas.
//
// Placement is consistent hashing on judge.PromptKey over a virtual-
// node ring (Ring): each prompt's completion — and therefore its
// replica-side dedup store record and cache entry — lives on exactly
// one replica, every client agrees which, and membership changes move
// only the departed replica's ~1/N share of the key space, so resume
// sweeps stay cache-hot through churn. Routing is bounded-load: a
// replica already carrying more than LoadFactor times its fair share
// of in-flight prompts is skipped and the key spills to the next ring
// successor, which keeps one hot arc from serialising a sweep.
//
// Health is watched two ways: a background loop pings every replica
// (Config.HealthInterval) and evicts/readmits ring membership, and a
// failed request triggers an immediate probe so a dead replica leaves
// the ring within one health check rather than failing requests until
// the next tick. Requests that catch a replica dying fail over to the
// key's next ring successor; with every replica serving the same
// backend and seed, the completion — and the finished report — is
// byte-identical wherever it resolves, and re-resolution after a kill
// costs at most re-judging the keys whose owner died (their store
// dedup on the new owner absorbs repeats).
//
// The HTTP face of the tier is Frontend (cmd/llm4vv-router): the
// daemon wire protocol plus priority-class load shedding, per-client
// admission quotas, and Prometheus /metrics — see frontend.go.
package fleet

import (
	"context"
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/judge"
	"repro/internal/remote"
	"repro/internal/resilience"
	"repro/internal/trace"
)

// Defaults for Config zero values.
const (
	// DefaultLoadFactor is the bounded-load spill threshold: a replica
	// may carry at most this multiple of the fleet-average in-flight
	// prompts before keys spill to the next successor.
	DefaultLoadFactor = 1.25
	// DefaultHealthInterval paces the background health loop.
	DefaultHealthInterval = 250 * time.Millisecond
	// DefaultPingTimeout caps one health probe. The effective default
	// is the smaller of this and the health interval: a probe must
	// resolve within its own tick, or a hung replica (accepting
	// connections but never answering) would stall eviction past the
	// very interval that exists to bound detection time.
	DefaultPingTimeout = time.Second
)

// Client is what the Router needs from a replica: the batched and
// cancellable completion contracts plus a liveness probe. The
// internal/remote Backend satisfies it; tests inject fakes.
type Client interface {
	judge.ContextLLM
	judge.BatchLLM
	Ping(ctx context.Context) error
}

// Replica is one fleet member: its address (the ring identity and the
// metrics label) and its client.
type Replica struct {
	Addr   string
	Client Client
}

// Config configures a Router. Replicas is the only required field.
type Config struct {
	Replicas []Replica
	// Vnodes per replica on the ring; <= 0 means DefaultVnodes.
	Vnodes int
	// LoadFactor is the bounded-load threshold; <= 1 means
	// DefaultLoadFactor.
	LoadFactor float64
	// HealthInterval paces the background ping loop; 0 means
	// DefaultHealthInterval, negative disables the loop (request-path
	// probes still evict, tests drive readmission via CheckNow).
	HealthInterval time.Duration
	// PingTimeout bounds one probe; <= 0 derives it from the health
	// interval (min(HealthInterval, DefaultPingTimeout)) so eviction of
	// a hung replica never waits longer than one health tick.
	PingTimeout time.Duration
	// Logger receives structured membership events (evictions,
	// readmissions) with replica_id fields; nil discards them.
	Logger *slog.Logger
	// BreakerThreshold is the consecutive-failure count that trips a
	// replica's circuit breaker; <= 0 means the resilience default.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped replica is refused before
	// a half-open probe; <= 0 means the resilience default.
	BreakerCooldown time.Duration
	// Fault, when non-nil, injects deterministic faults into the
	// health machinery: probes consult "fleet.probe:<addr>" and a
	// drawn fault fails the probe (the replica flaps). Production
	// leaves it nil; cmd/llm4vv-router wires its -fault flag here.
	Fault *fault.Injector
}

// replicaState is one member's runtime: health, load, breaker, and
// counters.
type replicaState struct {
	addr     string
	client   Client
	breaker  *resilience.Breaker
	healthy  atomic.Bool
	inflight atomic.Int64
	prompts  atomic.Int64
	failures atomic.Int64
}

// Router fronts a replica fleet behind the judge endpoint contracts.
// Construct with NewRouter or Dial; Close stops the health loop.
type Router struct {
	cfg      Config
	ring     *Ring
	replicas []*replicaState
	byAddr   map[string]*replicaState

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	requests      atomic.Int64
	batchRequests atomic.Int64
	routedPrompts atomic.Int64
	failovers     atomic.Int64
	spills        atomic.Int64
}

// NewRouter builds a Router over cfg and starts its health loop. All
// replicas start healthy; the first probe corrects optimism within one
// HealthInterval.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("fleet: no replicas configured")
	}
	if cfg.LoadFactor <= 1 {
		cfg.LoadFactor = DefaultLoadFactor
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.PingTimeout <= 0 {
		cfg.PingTimeout = DefaultPingTimeout
		if cfg.HealthInterval > 0 && cfg.HealthInterval < cfg.PingTimeout {
			cfg.PingTimeout = cfg.HealthInterval
		}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	rt := &Router{
		cfg:    cfg,
		ring:   NewRing(cfg.Vnodes),
		byAddr: make(map[string]*replicaState, len(cfg.Replicas)),
		done:   make(chan struct{}),
	}
	for _, r := range cfg.Replicas {
		if r.Addr == "" || r.Client == nil {
			return nil, fmt.Errorf("fleet: replica with empty address or nil client")
		}
		if _, dup := rt.byAddr[r.Addr]; dup {
			return nil, fmt.Errorf("fleet: replica %s configured twice", r.Addr)
		}
		st := &replicaState{
			addr:   r.Addr,
			client: r.Client,
			breaker: resilience.NewBreaker(resilience.BreakerConfig{
				Threshold: cfg.BreakerThreshold,
				Cooldown:  cfg.BreakerCooldown,
			}),
		}
		st.healthy.Store(true)
		rt.replicas = append(rt.replicas, st)
		rt.byAddr[r.Addr] = st
		rt.ring.Add(r.Addr)
	}
	if cfg.HealthInterval > 0 {
		rt.wg.Add(1)
		go rt.healthLoop()
	}
	return rt, nil
}

// Dial builds a Router over a comma-separated replica address list,
// one remote client per replica. Per-replica retries are kept low —
// the Router's own failover is the retry tier, and burning a full
// exponential backoff on a corpse would stall every key it owned.
func Dial(addrs string, opts ...remote.Option) (*Router, error) {
	return DialConfig(addrs, Config{}, opts...)
}

// DialConfig is Dial with the routing knobs exposed: cfg carries
// Vnodes, LoadFactor, HealthInterval, and PingTimeout, while
// cfg.Replicas is replaced by clients dialled from the address list.
func DialConfig(addrs string, cfg Config, opts ...remote.Option) (*Router, error) {
	cfg.Replicas = nil
	for _, a := range strings.Split(addrs, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		o := append([]remote.Option{remote.WithRetries(1)}, opts...)
		cfg.Replicas = append(cfg.Replicas, Replica{Addr: a, Client: remote.New(a, o...)})
	}
	return NewRouter(cfg)
}

// Close stops the health loop. In-flight requests finish on their own.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.done) })
	rt.wg.Wait()
}

// healthLoop pings every replica each interval, evicting failures from
// the ring and readmitting recoveries.
func (rt *Router) healthLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.done:
			return
		case <-ticker.C:
			rt.CheckNow()
		}
	}
}

// CheckNow probes every replica once, concurrently, and applies the
// evictions and readmissions. The health loop calls it on its tick;
// tests call it directly for deterministic membership transitions.
func (rt *Router) CheckNow() {
	var wg sync.WaitGroup
	for _, st := range rt.replicas {
		wg.Add(1)
		go func(st *replicaState) {
			defer wg.Done()
			if rt.probe(st) == nil {
				rt.markUp(st)
			} else {
				rt.markDown(st)
			}
		}(st)
	}
	wg.Wait()
}

// probe pings one replica within the ping timeout, with the
// "fleet.probe:<addr>" fault injection point applied on top: a drawn
// fault fails an otherwise healthy probe, which is how a chaos
// schedule makes a live replica flap in and out of the ring.
func (rt *Router) probe(st *replicaState) error {
	if d := rt.cfg.Fault.At("fleet.probe:" + st.addr); d.Kind != fault.None {
		return fmt.Errorf("%w: probe of %s", fault.ErrInjected, st.addr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.PingTimeout)
	defer cancel()
	return st.client.Ping(ctx)
}

// markDown evicts a replica from the ring (idempotent).
func (rt *Router) markDown(st *replicaState) {
	if st.healthy.CompareAndSwap(true, false) {
		rt.ring.Remove(st.addr)
		rt.cfg.Logger.Warn("fleet: replica evicted", "replica_id", st.addr, "failures", st.failures.Load())
	}
}

// markUp readmits a replica to the ring (idempotent).
func (rt *Router) markUp(st *replicaState) {
	if st.healthy.CompareAndSwap(false, true) {
		rt.ring.Add(st.addr)
		rt.cfg.Logger.Info("fleet: replica readmitted", "replica_id", st.addr)
	}
}

// probeAsync verifies a replica that just failed a request, off the
// request path: a dead replica leaves the ring as soon as the probe
// fails instead of waiting for the next health tick, while a replica
// that merely served one bad response stays seated.
func (rt *Router) probeAsync(st *replicaState) {
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		if rt.probe(st) != nil {
			rt.markDown(st)
		}
	}()
}

// loadBound is the bounded-load admission ceiling: LoadFactor times
// the fair per-replica share of the current in-flight total (counting
// the prompt being placed), never below 1.
func (rt *Router) loadBound() int64 {
	n := rt.ring.Len()
	if n == 0 {
		n = len(rt.replicas)
	}
	var total int64
	for _, st := range rt.replicas {
		total += st.inflight.Load()
	}
	fair := (total + int64(n)) / int64(n) // ceil((total+1)/n)
	bound := int64(rt.cfg.LoadFactor * float64(fair))
	if bound < 1 {
		bound = 1
	}
	return bound
}

// pick selects the replica for a key, excluding already-tried members:
// the ring owner when it is under the load bound and its circuit
// breaker admits, else the first successor passing both checks (a
// bounded-load spill or a breaker shed — either way the key moves to
// its next ring successor, so batch grouping and reassembly order are
// untouched), else the owner regardless — progress beats balance and
// protection both. With the whole ring evicted it falls back to the
// configured order, so a fleet whose health probes all fail still
// serves whatever is actually alive.
//
// consume distinguishes placement from dispatch: a dispatching pick
// (route) claims a tripped replica's half-open probe slot via
// Breaker.Allow, while a planning pick (batch grouping, which route
// re-picks behind) only reads the breaker state so it cannot leak the
// probe slot on a request that is regrouped before it is sent.
func (rt *Router) pick(key judge.PromptKey, tried map[string]bool, consume bool) *replicaState {
	var first *replicaState
	bound := rt.loadBound()
	for _, addr := range rt.ring.Successors(key, len(rt.replicas)) {
		if tried[addr] {
			continue
		}
		st := rt.byAddr[addr]
		if first == nil {
			first = st
		}
		if st.inflight.Load() >= bound {
			continue
		}
		if consume {
			if !st.breaker.Allow() {
				continue
			}
		} else if st.breaker.State() == resilience.StateOpen {
			continue
		}
		if st != first {
			rt.spills.Add(1)
		}
		return st
	}
	if first != nil {
		return first
	}
	for _, st := range rt.replicas {
		if !tried[st.addr] {
			return st
		}
	}
	return nil
}

// route resolves one group of prompts that share a ring placement key:
// try the pick, fail over to the key's next successor on error, at
// most once per replica. A success on any replica readmits it. When
// the context carries a trace, every attempt — the owner placement,
// bounded-load spills, failover hops — records a "fleet.attempt" span,
// so a traced file explains exactly which replicas it visited and why
// it left them.
func (rt *Router) route(ctx context.Context, key judge.PromptKey, prompts []string) ([]string, error) {
	tried := make(map[string]bool, 2)
	var lastErr error
	for hop := 0; len(tried) < len(rt.replicas); hop++ {
		st := rt.pick(key, tried, true)
		if st == nil {
			break
		}
		actx, span := trace.Start(ctx, "fleet.attempt")
		if span != nil {
			span.SetAttr("replica", st.addr)
			span.SetAttr("hop", strconv.Itoa(hop))
			span.SetAttr("prompts", strconv.Itoa(len(prompts)))
			if owners := rt.ring.Successors(key, 1); len(owners) == 1 && owners[0] != st.addr {
				span.SetAttr("spill", "true")
			}
		}
		n := int64(len(prompts))
		st.inflight.Add(n)
		var resps []string
		var err error
		if len(prompts) == 1 {
			// Preserve the single-prompt wire path so replica-side
			// micro-batching still coalesces interactive traffic.
			var resp string
			resp, err = st.client.CompleteContext(actx, prompts[0])
			resps = []string{resp}
		} else {
			resps, err = st.client.CompleteBatch(actx, prompts)
		}
		st.inflight.Add(-n)
		if err == nil {
			span.End()
			st.prompts.Add(n)
			rt.routedPrompts.Add(n)
			st.breaker.Success()
			rt.markUp(st)
			return resps, nil
		}
		span.SetAttr("error", err.Error())
		span.End()
		if ctx.Err() != nil {
			return nil, err
		}
		st.failures.Add(1)
		st.breaker.Failure()
		rt.probeAsync(st)
		tried[st.addr] = true
		lastErr = err
		rt.failovers.Add(1)
	}
	return nil, fmt.Errorf("fleet: no replica served the request (%d tried): %w", len(tried), lastErr)
}

// Complete implements judge.LLM; like the remote client, the
// error-free contract maps failure to an empty (unparsable) response.
func (rt *Router) Complete(prompt string) string {
	resp, err := rt.CompleteContext(context.Background(), prompt)
	if err != nil {
		return ""
	}
	return resp
}

// CompleteContext implements judge.ContextLLM: one prompt, routed to
// its ring owner with health-aware failover.
func (rt *Router) CompleteContext(ctx context.Context, prompt string) (string, error) {
	rt.requests.Add(1)
	resps, err := rt.route(ctx, judge.KeyOf(prompt), []string{prompt})
	if err != nil {
		return "", err
	}
	return resps[0], nil
}

// CompleteBatch implements judge.BatchLLM: the shard is split by ring
// owner, the per-replica groups are fanned out concurrently — one
// CompleteBatch wire call each — and the responses are reassembled in
// prompt order. A group whose owner dies mid-call fails over to the
// key's next successor; only if every replica refuses does the whole
// shard error, matching the single-endpoint contract.
func (rt *Router) CompleteBatch(ctx context.Context, prompts []string) ([]string, error) {
	rt.batchRequests.Add(1)
	if len(prompts) == 0 {
		return []string{}, nil
	}
	type group struct {
		key     judge.PromptKey // first member's key: the failover walk anchor
		idxs    []int
		prompts []string
	}
	groups := map[string]*group{}
	var order []*group
	for i, p := range prompts {
		key := judge.KeyOf(p)
		st := rt.pick(key, nil, false)
		if st == nil {
			return nil, fmt.Errorf("fleet: no replicas available")
		}
		g, ok := groups[st.addr]
		if !ok {
			g = &group{key: key}
			groups[st.addr] = g
			order = append(order, g)
		}
		g.idxs = append(g.idxs, i)
		g.prompts = append(g.prompts, p)
	}
	out := make([]string, len(prompts))
	errs := make([]error, len(order))
	var wg sync.WaitGroup
	for gi, g := range order {
		wg.Add(1)
		go func(gi int, g *group) {
			defer wg.Done()
			resps, err := rt.route(ctx, g.key, g.prompts)
			if err != nil {
				errs[gi] = err
				return
			}
			for j, idx := range g.idxs {
				out[idx] = resps[j]
			}
		}(gi, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Stats is a snapshot of the routing counters.
func (rt *Router) Stats() RouterStats {
	return RouterStats{
		Requests:      rt.requests.Load(),
		BatchRequests: rt.batchRequests.Load(),
		RoutedPrompts: rt.routedPrompts.Load(),
		Failovers:     rt.failovers.Load(),
		Spills:        rt.spills.Load(),
	}
}

// Replicas reports every member's address, health, breaker state, and
// counters, in configured order.
func (rt *Router) Replicas() []ReplicaStatus {
	out := make([]ReplicaStatus, len(rt.replicas))
	for i, st := range rt.replicas {
		out[i] = ReplicaStatus{
			Addr:         st.addr,
			Healthy:      st.healthy.Load(),
			Inflight:     st.inflight.Load(),
			Prompts:      st.prompts.Load(),
			Failures:     st.failures.Load(),
			Breaker:      st.breaker.State().String(),
			BreakerTrips: st.breaker.Trips(),
		}
	}
	return out
}

// BreakerStates reports every replica's circuit-breaker status in
// configured order — the optional interface metrics endpoints
// discover on endpoints fronting multiple targets, so a daemon
// serving a "fleet:" backend exports the same gauge the router does.
func (rt *Router) BreakerStates() []resilience.BreakerStatus {
	out := make([]resilience.BreakerStatus, len(rt.replicas))
	for i, st := range rt.replicas {
		out[i] = resilience.BreakerStatus{ID: st.addr, State: st.breaker.State(), Trips: st.breaker.Trips()}
	}
	return out
}

// Retries sums the retry waits performed by every replica client that
// exposes a Retries() counter (the internal/remote Backend does) —
// the series behind llm4vv_resilience_retries_total on the router.
func (rt *Router) Retries() int64 {
	var total int64
	for _, st := range rt.replicas {
		if r, ok := st.client.(interface{ Retries() int64 }); ok {
			total += r.Retries()
		}
	}
	return total
}

// Addrs reports the configured replica addresses in order.
func (rt *Router) Addrs() []string {
	out := make([]string, len(rt.replicas))
	for i, st := range rt.replicas {
		out[i] = st.addr
	}
	return out
}
