package fleet

// Wire types of the router daemon's own endpoints. The completion
// endpoints reuse the internal/server request/response bodies — the
// router is wire-compatible with a daemon, which is why a remote
// client cannot tell (and need not care) whether -serve-addr points at
// a replica or a router.

// RouterStats are the routing counters, exposed by Router.Stats, the
// router /healthz, and /metrics.
type RouterStats struct {
	// Requests counts single-prompt routing requests.
	Requests int64 `json:"requests"`
	// BatchRequests counts batch routing requests.
	BatchRequests int64 `json:"batch_requests"`
	// RoutedPrompts counts prompts delivered to replicas successfully.
	RoutedPrompts int64 `json:"routed_prompts"`
	// Failovers counts replica attempts that failed and moved a
	// request to the key's next ring successor.
	Failovers int64 `json:"failovers"`
	// Spills counts bounded-load placements: keys routed past an
	// over-loaded owner to a later successor.
	Spills int64 `json:"spills"`
}

// ReplicaStatus is one fleet member as the router sees it.
type ReplicaStatus struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Inflight int64  `json:"inflight"`
	// Prompts counts prompts this replica answered.
	Prompts  int64 `json:"prompts"`
	Failures int64 `json:"failures"`
	// Breaker is the replica's circuit-breaker state ("closed",
	// "half-open", "open"); BreakerTrips counts how many times it has
	// tripped.
	Breaker      string `json:"breaker"`
	BreakerTrips uint64 `json:"breaker_trips"`
}

// FrontendStats are the admission-layer counters, exposed by
// Frontend.Stats, /healthz, and /metrics.
type FrontendStats struct {
	// Admitted counts prompts admitted, by priority class.
	AdmittedInteractive int64 `json:"admitted_interactive"`
	AdmittedBulk        int64 `json:"admitted_bulk"`
	// Shed counts requests refused with 429 at the class ceilings;
	// bulk sheds first by construction (its ceiling is lower).
	ShedInteractive int64 `json:"shed_interactive"`
	ShedBulk        int64 `json:"shed_bulk"`
	// QuotaRejected counts requests refused for exceeding their
	// client's in-flight quota.
	QuotaRejected int64 `json:"quota_rejected"`
}

// HealthResponse is the body of the router's GET /healthz: overall
// liveness (true while at least one replica is healthy), the instance
// ID, per-replica status, and both stat blocks.
type HealthResponse struct {
	OK       bool            `json:"ok"`
	RouterID string          `json:"router_id,omitempty"`
	Replicas []ReplicaStatus `json:"replicas"`
	Routing  RouterStats     `json:"routing"`
	Serving  FrontendStats   `json:"serving"`
}
