package fleet

import (
	"fmt"
	"testing"

	"repro/internal/judge"
)

func testKeys(n int) []judge.PromptKey {
	keys := make([]judge.PromptKey, n)
	for i := range keys {
		keys[i] = judge.KeyOf(fmt.Sprintf("prompt-%d", i))
	}
	return keys
}

func TestRingOwnerDeterministic(t *testing.T) {
	a := NewRing(0)
	b := NewRing(0)
	for _, n := range []string{"r1", "r2", "r3"} {
		a.Add(n)
		b.Add(n)
	}
	for _, key := range testKeys(200) {
		oa, ok := a.Owner(key)
		if !ok {
			t.Fatal("owner not found on populated ring")
		}
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("independently built rings disagree: %s vs %s", oa, ob)
		}
		again, _ := a.Owner(key)
		if again != oa {
			t.Fatalf("owner changed between calls: %s vs %s", oa, again)
		}
	}
}

func TestRingEmptyAndIdempotent(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner(judge.KeyOf("x")); ok {
		t.Fatal("empty ring reported an owner")
	}
	if got := r.Successors(judge.KeyOf("x"), 3); got != nil {
		t.Fatalf("empty ring returned successors %v", got)
	}
	r.Add("a")
	r.Add("a")
	if r.Len() != 1 {
		t.Fatalf("double Add produced %d members", r.Len())
	}
	r.Remove("missing")
	r.Remove("a")
	r.Remove("a")
	if r.Len() != 0 {
		t.Fatalf("ring not empty after removes: %d members", r.Len())
	}
}

// TestRingRemoveMovesOnlyDepartedShare is the consistent-hashing
// contract: evicting one of three replicas re-homes only the keys the
// departed replica owned, and readmitting it restores the original
// placement exactly.
func TestRingRemoveMovesOnlyDepartedShare(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"r1", "r2", "r3"}
	for _, n := range nodes {
		r.Add(n)
	}
	keys := testKeys(3000)
	before := make(map[int]string, len(keys))
	for i, key := range keys {
		before[i], _ = r.Owner(key)
	}
	const victim = "r2"
	r.Remove(victim)
	moved := 0
	for i, key := range keys {
		after, ok := r.Owner(key)
		if !ok {
			t.Fatal("owner lost after removal")
		}
		if after == victim {
			t.Fatalf("key %d still owned by removed replica", i)
		}
		if before[i] == victim {
			moved++
			continue
		}
		if after != before[i] {
			t.Fatalf("key %d owned by survivor %s moved to %s", i, before[i], after)
		}
	}
	// The departed replica's share should be near 1/3; vnode variance
	// allows a wide band.
	if moved < len(keys)/6 || moved > len(keys)/2 {
		t.Fatalf("removal moved %d of %d keys; want roughly 1/3", moved, len(keys))
	}
	r.Add(victim)
	for i, key := range keys {
		after, _ := r.Owner(key)
		if after != before[i] {
			t.Fatalf("key %d not restored after readmission: %s vs %s", i, after, before[i])
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(0)
	counts := map[string]int{}
	for _, n := range []string{"r1", "r2", "r3"} {
		r.Add(n)
	}
	keys := testKeys(6000)
	for _, key := range keys {
		o, _ := r.Owner(key)
		counts[o]++
	}
	for n, c := range counts {
		share := float64(c) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Fatalf("replica %s owns %.1f%% of keys; ring badly unbalanced (%v)", n, 100*share, counts)
		}
	}
}

func TestRingSuccessorsDistinctAndOrdered(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"r1", "r2", "r3"} {
		r.Add(n)
	}
	for _, key := range testKeys(50) {
		succ := r.Successors(key, 10)
		if len(succ) != 3 {
			t.Fatalf("want 3 distinct successors, got %v", succ)
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("duplicate successor in %v", succ)
			}
			seen[s] = true
		}
		owner, _ := r.Owner(key)
		if succ[0] != owner {
			t.Fatalf("successor walk does not start at the owner: %v vs %s", succ, owner)
		}
	}
}
