package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"

	"repro/internal/judge"
)

// DefaultVnodes is how many virtual nodes each replica contributes to
// the ring. More vnodes smooth the key-space split (the std-dev of the
// per-replica share shrinks like 1/sqrt(vnodes)) at the cost of a
// larger sorted point table; 64 keeps a three-replica fleet within a
// few percent of even.
const DefaultVnodes = 64

// Ring is a consistent-hash ring over replica names with virtual
// nodes. Keys are judge.PromptKey content hashes, so placement is a
// pure function of the prompt text: every worker, router, and resumed
// sweep agrees on which replica owns a prompt's dedup/cache entry, and
// membership changes move only the departed replica's share of the key
// space (~1/N) instead of reshuffling everything. Safe for concurrent
// use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []point // sorted by hash; the ring, flattened
	nodes  map[string]struct{}
}

// point is one virtual node: a position on the ring and the replica
// that owns the arc ending there.
type point struct {
	hash uint64
	node string
}

// NewRing returns an empty ring with the given virtual-node count per
// replica (<= 0 means DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, nodes: map[string]struct{}{}}
}

// Add inserts a replica's virtual nodes; adding a member twice is a
// no-op, so health readmission needs no membership bookkeeping.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: vnodeHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove evicts a replica's virtual nodes; removing a non-member is a
// no-op. Only arcs the departed replica owned change hands — the
// surviving replicas' points are untouched, which is the whole reason
// resume sweeps stay cache-hot across membership churn.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the current member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns the current members, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Owner returns the replica owning a key — the first virtual node at
// or clockwise of the key's position — and false on an empty ring.
func (r *Ring) Owner(key judge.PromptKey) (string, bool) {
	owners := r.Successors(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// Successors returns up to max distinct replicas in clockwise order
// from a key's position: the owner first, then the failover order a
// router walks when the owner is down or at its load bound. Every
// caller sees the same order for the same key and membership.
func (r *Ring) Successors(key judge.PromptKey, max int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	if max > len(r.nodes) {
		max = len(r.nodes)
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, max)
	seen := make(map[string]struct{}, max)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// keyHash folds a prompt key onto the ring: the first 8 bytes of the
// SHA-256 already are a uniform 64-bit value.
func keyHash(key judge.PromptKey) uint64 {
	return binary.BigEndian.Uint64(key[:8])
}

// vnodeHash positions one virtual node, hashing the replica name and
// the vnode index together so each replica's points scatter
// independently of every other's.
func vnodeHash(node string, i int) uint64 {
	sum := sha256.Sum256([]byte(node + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}
