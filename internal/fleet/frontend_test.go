package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/remote"
	"repro/internal/server"
)

func startFrontend(t *testing.T, cfg FrontendConfig, fakes ...*fakeReplica) (*Frontend, *httptest.Server) {
	t.Helper()
	if cfg.Router == nil {
		cfg.Router = testRouter(t, fakes...)
	}
	f := NewFrontend(cfg)
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(ts.Close)
	return f, ts
}

func postJSON(t *testing.T, url string, body any, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestFrontendWireParity: the router daemon speaks the replica wire
// protocol — the stock remote client completes singles and batches
// through it without knowing it is a fleet.
func TestFrontendWireParity(t *testing.T) {
	a, b := newFakeReplica("a"), newFakeReplica("b")
	_, ts := startFrontend(t, FrontendConfig{ID: "r1"}, a, b)
	be := remote.New(ts.URL, remote.WithRetries(0))
	resp, err := be.CompleteContext(t.Context(), "hello")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(resp, ":hello") {
		t.Fatalf("unexpected response %q", resp)
	}
	prompts := []string{"p0", "p1", "p2", "p3"}
	resps, err := be.CompleteBatch(t.Context(), prompts)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if !strings.HasSuffix(r, ":"+prompts[i]) {
			t.Fatalf("batch response %d = %q for prompt %q", i, r, prompts[i])
		}
	}
	if err := be.Ping(t.Context()); err != nil {
		t.Fatalf("Ping through router: %v", err)
	}
}

// TestFrontendBulkShedsFirst: with slots held, a bulk request is shed
// (429 + fractional Retry-After) while an interactive request at the
// same instant is still admitted — bulk's ceiling is lower.
func TestFrontendBulkShedsFirst(t *testing.T) {
	a := newFakeReplica("a")
	a.gate = make(chan struct{})
	f, ts := startFrontend(t, FrontendConfig{ID: "r1", QueueLimit: 2, BulkLimit: 1, RetryAfter: 250 * time.Millisecond}, a)

	var wg sync.WaitGroup
	release := func() { close(a.gate); wg.Wait() }
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postJSON(t, ts.URL+"/v1/complete", server.CompleteRequest{Prompt: "held"}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("held request status %d", resp.StatusCode)
		}
	}()
	// Wait until the held request occupies its slot.
	for f.inflight.Load() != 1 {
		time.Sleep(time.Millisecond)
	}

	// Bulk: 1 held + 1 = 2 > BulkLimit 1 → shed.
	resp, body := postJSON(t, ts.URL+"/v1/complete", server.CompleteRequest{Prompt: "bulk"},
		map[string]string{remote.PriorityHeader: remote.PriorityBulk})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("bulk request status %d, want 429 (%s)", resp.StatusCode, body)
	}
	ra, err := strconv.ParseFloat(resp.Header.Get("Retry-After"), 64)
	if err != nil || ra != 0.25 {
		t.Fatalf("Retry-After = %q, want 0.25", resp.Header.Get("Retry-After"))
	}
	var e server.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "bulk") {
		t.Fatalf("shed body %s", body)
	}

	// Interactive at the same load: 2 <= QueueLimit 2 → admitted.
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postJSON(t, ts.URL+"/v1/complete", server.CompleteRequest{Prompt: "vip"}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("interactive status %d under load", resp.StatusCode)
		}
	}()
	for f.inflight.Load() != 2 {
		time.Sleep(time.Millisecond)
	}
	release()

	st := f.Stats()
	if st.ShedBulk != 1 || st.ShedInteractive != 0 {
		t.Fatalf("shed counters %+v; want bulk=1 interactive=0", st)
	}
	if st.AdmittedInteractive != 2 {
		t.Fatalf("admitted interactive = %d, want 2", st.AdmittedInteractive)
	}
	if f.inflight.Load() != 0 {
		t.Fatalf("inflight %d after release, want 0", f.inflight.Load())
	}
}

// TestFrontendBatchDefaultsToBulk: an unlabelled batch request is
// bulk-classed (the sweep path), while the explicit interactive header
// overrides.
func TestFrontendBatchDefaultsToBulk(t *testing.T) {
	a := newFakeReplica("a")
	f, ts := startFrontend(t, FrontendConfig{ID: "r1"}, a)
	resp, _ := postJSON(t, ts.URL+"/v1/complete_batch", server.CompleteBatchRequest{Prompts: []string{"x", "y"}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if st := f.Stats(); st.AdmittedBulk != 2 || st.AdmittedInteractive != 0 {
		t.Fatalf("unlabelled batch classed %+v; want bulk", st)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/complete_batch", server.CompleteBatchRequest{Prompts: []string{"z"}},
		map[string]string{remote.PriorityHeader: remote.PriorityInteractive})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if st := f.Stats(); st.AdmittedInteractive != 1 {
		t.Fatalf("interactive header ignored: %+v", st)
	}
}

// TestFrontendClientQuota: one client's in-flight prompts are capped;
// other clients are unaffected.
func TestFrontendClientQuota(t *testing.T) {
	a := newFakeReplica("a")
	a.gate = make(chan struct{})
	f, ts := startFrontend(t, FrontendConfig{ID: "r1", ClientQuota: 1}, a)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, ts.URL+"/v1/complete", server.CompleteRequest{Prompt: "held"},
			map[string]string{remote.ClientHeader: "greedy"})
	}()
	for f.inflight.Load() != 1 {
		time.Sleep(time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/complete", server.CompleteRequest{Prompt: "again"},
		map[string]string{remote.ClientHeader: "greedy"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "quota") {
		t.Fatalf("quota body %s", body)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postJSON(t, ts.URL+"/v1/complete", server.CompleteRequest{Prompt: "other"},
			map[string]string{remote.ClientHeader: "modest"})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("other client status %d", resp.StatusCode)
		}
	}()
	for f.inflight.Load() != 2 {
		time.Sleep(time.Millisecond)
	}
	close(a.gate)
	wg.Wait()

	if st := f.Stats(); st.QuotaRejected != 1 {
		t.Fatalf("QuotaRejected = %d, want 1", st.QuotaRejected)
	}
	f.mu.Lock()
	n := len(f.clients)
	f.mu.Unlock()
	if n != 0 {
		t.Fatalf("client table holds %d entries after drain, want 0", n)
	}
}

// TestFrontendHealthz: healthy while any replica lives, 503 when the
// whole fleet is down.
func TestFrontendHealthz(t *testing.T) {
	a, b := newFakeReplica("a"), newFakeReplica("b")
	f, ts := startFrontend(t, FrontendConfig{ID: "r1"}, a, b)
	resp, body := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.RouterID != "r1" || len(h.Replicas) != 2 {
		t.Fatalf("healthz body %+v", h)
	}
	a.dead.Store(true)
	b.dead.Store(true)
	f.cfg.Router.CheckNow()
	resp, body = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d with fleet down, want 503", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &h); err != nil || h.OK {
		t.Fatalf("healthz body with fleet down: %s", body)
	}
}

// TestFrontendBackends: with clients that cannot describe a backend,
// /v1/backends still reports the fleet shape.
func TestFrontendBackends(t *testing.T) {
	a, b := newFakeReplica("a"), newFakeReplica("b")
	_, ts := startFrontend(t, FrontendConfig{ID: "r1"}, a, b)
	resp, body := getBody(t, ts.URL+"/v1/backends")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("backends status %d", resp.StatusCode)
	}
	var info server.BackendsResponse
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ReplicaID != "r1" || !info.Batch || len(info.Replicas) != 2 {
		t.Fatalf("backends body %+v", info)
	}
	if !strings.HasPrefix(info.Serving, "fleet:") {
		t.Fatalf("Serving = %q", info.Serving)
	}
}

// TestFrontendMetrics: the exposition carries the routing and
// admission counters under the router and replica labels.
func TestFrontendMetrics(t *testing.T) {
	a, b := newFakeReplica("a"), newFakeReplica("b")
	f, ts := startFrontend(t, FrontendConfig{ID: "r-m"}, a, b)
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/complete", server.CompleteRequest{Prompt: fmt.Sprintf("m-%d", i)}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("complete status %d", resp.StatusCode)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/complete_batch", server.CompleteBatchRequest{Prompts: []string{"mb-0", "mb-1"}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	resp, body := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics Content-Type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`llm4vv_router_requests_total{router="r-m"} 3`,
		`llm4vv_router_batch_requests_total{router="r-m"} 1`,
		`llm4vv_router_routed_prompts_total{router="r-m"} 5`,
		`llm4vv_router_admitted_total{router="r-m",priority="interactive"} 3`,
		`llm4vv_router_admitted_total{router="r-m",priority="bulk"} 2`,
		`llm4vv_router_replica_healthy{router="r-m",replica="a"} 1`,
		`llm4vv_router_replica_healthy{router="r-m",replica="b"} 1`,
		`llm4vv_router_stage_seconds_count{router="r-m",stage="route"} 3`,
		`llm4vv_router_stage_seconds_count{router="r-m",stage="route_batch"} 1`,
		`# TYPE llm4vv_router_shed_total counter`,
		`# TYPE llm4vv_router_inflight_prompts gauge`,
		// The resilience families ride the router exposition too: no
		// injector and no retries means zero-valued series, and the
		// breaker gauge carries one closed (0) series per replica.
		`llm4vv_resilience_faults_injected_total{router="r-m"} 0`,
		`llm4vv_resilience_retries_total{router="r-m"} 0`,
		`llm4vv_resilience_breaker_state{router="r-m",target="a"} 0`,
		`llm4vv_resilience_breaker_state{router="r-m",target="b"} 0`,
		`# TYPE llm4vv_resilience_breaker_state gauge`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
	_ = f
}

// TestFrontendBadRequests: malformed bodies, empty prompts, and wrong
// methods answer with the daemon's error wire format.
func TestFrontendBadRequests(t *testing.T) {
	a := newFakeReplica("a")
	_, ts := startFrontend(t, FrontendConfig{ID: "r1", QueueLimit: 4}, a)
	resp, err := http.Get(ts.URL + "/v1/complete")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET complete status %d", resp.StatusCode)
	}
	r2, _ := postJSON(t, ts.URL+"/v1/complete", server.CompleteRequest{}, nil)
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty prompt status %d", r2.StatusCode)
	}
	r3, _ := postJSON(t, ts.URL+"/v1/complete_batch", server.CompleteBatchRequest{Prompts: make([]string, 5)}, nil)
	if r3.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status %d", r3.StatusCode)
	}
	r4, _ := postJSON(t, ts.URL+"/v1/complete_batch", server.CompleteBatchRequest{}, nil)
	if r4.StatusCode != http.StatusOK {
		t.Fatalf("empty batch status %d", r4.StatusCode)
	}
}

// TestFrontendGatewayErrors: a fleet-wide failure surfaces as 502,
// which the remote client treats as transient.
func TestFrontendGatewayErrors(t *testing.T) {
	a := newFakeReplica("a")
	a.dead.Store(true)
	_, ts := startFrontend(t, FrontendConfig{ID: "r1"}, a)
	resp, body := postJSON(t, ts.URL+"/v1/complete", server.CompleteRequest{Prompt: "x"}, nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d with fleet down, want 502 (%s)", resp.StatusCode, body)
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}
