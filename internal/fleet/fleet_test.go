package fleet

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/judge"
)

// fakeReplica is an in-process Client: answers "<addr>:<prompt>",
// records traffic, and can be killed and revived.
type fakeReplica struct {
	addr string
	dead atomic.Bool
	// gate, when set, blocks completions until released — for tests
	// that need requests held in flight.
	gate chan struct{}

	mu      sync.Mutex
	prompts []string
}

func newFakeReplica(addr string) *fakeReplica {
	return &fakeReplica{addr: addr}
}

func (f *fakeReplica) record(ps ...string) {
	f.mu.Lock()
	f.prompts = append(f.prompts, ps...)
	f.mu.Unlock()
}

func (f *fakeReplica) served() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.prompts...)
}

func (f *fakeReplica) wait(ctx context.Context) error {
	if f.gate == nil {
		return nil
	}
	select {
	case <-f.gate:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (f *fakeReplica) CompleteContext(ctx context.Context, prompt string) (string, error) {
	if f.dead.Load() {
		return "", fmt.Errorf("replica %s is down", f.addr)
	}
	if err := f.wait(ctx); err != nil {
		return "", err
	}
	f.record(prompt)
	return f.addr + ":" + prompt, nil
}

func (f *fakeReplica) CompleteBatch(ctx context.Context, prompts []string) ([]string, error) {
	if f.dead.Load() {
		return nil, fmt.Errorf("replica %s is down", f.addr)
	}
	if err := f.wait(ctx); err != nil {
		return nil, err
	}
	f.record(prompts...)
	out := make([]string, len(prompts))
	for i, p := range prompts {
		out[i] = f.addr + ":" + p
	}
	return out, nil
}

func (f *fakeReplica) Ping(ctx context.Context) error {
	if f.dead.Load() {
		return fmt.Errorf("replica %s is down", f.addr)
	}
	return nil
}

// testRouter builds a Router over fakes with the background health
// loop disabled, so membership changes only when the test asks.
func testRouter(t *testing.T, fakes ...*fakeReplica) *Router {
	t.Helper()
	cfg := Config{HealthInterval: -1}
	for _, f := range fakes {
		cfg.Replicas = append(cfg.Replicas, Replica{Addr: f.addr, Client: f})
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	f := newFakeReplica("a")
	if _, err := NewRouter(Config{Replicas: []Replica{{Addr: "", Client: f}}}); err == nil {
		t.Fatal("empty address accepted")
	}
	if _, err := NewRouter(Config{Replicas: []Replica{{Addr: "a", Client: nil}}}); err == nil {
		t.Fatal("nil client accepted")
	}
	if _, err := NewRouter(Config{Replicas: []Replica{{Addr: "a", Client: f}, {Addr: "a", Client: f}}}); err == nil {
		t.Fatal("duplicate address accepted")
	}
}

// TestRouterStickiness: a prompt always lands on its ring owner, so
// the owner's dedup store and cache see every repeat.
func TestRouterStickiness(t *testing.T) {
	a, b := newFakeReplica("a"), newFakeReplica("b")
	rt := testRouter(t, a, b)
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		prompt := fmt.Sprintf("sticky-%d", i%5)
		resp, err := rt.CompleteContext(ctx, prompt)
		if err != nil {
			t.Fatal(err)
		}
		owner, _ := rt.ring.Owner(judge.KeyOf(prompt))
		if want := owner + ":" + prompt; resp != want {
			t.Fatalf("prompt %q answered by %q, ring owner is %q", prompt, resp, owner)
		}
	}
}

// TestRouterBatchSplitAndOrder: a mixed shard splits by ring owner,
// fans out, and reassembles in prompt order.
func TestRouterBatchSplitAndOrder(t *testing.T) {
	a, b, c := newFakeReplica("a"), newFakeReplica("b"), newFakeReplica("c")
	rt := testRouter(t, a, b, c)
	prompts := make([]string, 60)
	for i := range prompts {
		prompts[i] = fmt.Sprintf("batch-%d", i)
	}
	resps, err := rt.CompleteBatch(context.Background(), prompts)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != len(prompts) {
		t.Fatalf("got %d responses for %d prompts", len(resps), len(prompts))
	}
	for i, resp := range resps {
		if !strings.HasSuffix(resp, ":"+prompts[i]) {
			t.Fatalf("response %d out of order: %q for prompt %q", i, resp, prompts[i])
		}
	}
	used := 0
	for _, f := range []*fakeReplica{a, b, c} {
		if len(f.served()) > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("60 prompts landed on %d replica(s); ring not splitting", used)
	}
	if got := rt.Stats().RoutedPrompts; got != int64(len(prompts)) {
		t.Fatalf("RoutedPrompts = %d, want %d", got, len(prompts))
	}
	if empty, err := rt.CompleteBatch(context.Background(), nil); err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v %v", empty, err)
	}
}

// TestRouterFailover: a dead replica's keys fail over to the next
// ring successor without surfacing an error, and every response stays
// correct for its prompt.
func TestRouterFailover(t *testing.T) {
	a, b := newFakeReplica("a"), newFakeReplica("b")
	rt := testRouter(t, a, b)
	b.dead.Store(true)
	ctx := context.Background()
	prompts := make([]string, 30)
	for i := range prompts {
		prompts[i] = fmt.Sprintf("fo-%d", i)
	}
	resps, err := rt.CompleteBatch(ctx, prompts)
	if err != nil {
		t.Fatal(err)
	}
	for i, resp := range resps {
		if want := "a:" + prompts[i]; resp != want {
			t.Fatalf("response %d = %q, want %q", i, resp, want)
		}
	}
	if rt.Stats().Failovers == 0 {
		t.Fatal("no failovers recorded despite a dead replica")
	}
	// All replicas dead: the error reports how many were tried.
	a.dead.Store(true)
	if _, err := rt.CompleteContext(ctx, "doomed"); err == nil {
		t.Fatal("want error with every replica dead")
	} else if !strings.Contains(err.Error(), "no replica served") {
		t.Fatalf("unexpected error: %v", err)
	}
	if rt.Complete("doomed") != "" {
		t.Fatal("error-free contract should map failure to empty response")
	}
}

// TestRouterHealthEvictReadmit: CheckNow evicts a dead replica from
// the ring (moving its keys) and readmits it on recovery (restoring
// the original placement).
func TestRouterHealthEvictReadmit(t *testing.T) {
	a, b, c := newFakeReplica("a"), newFakeReplica("b"), newFakeReplica("c")
	rt := testRouter(t, a, b, c)
	keys := make([]judge.PromptKey, 300)
	before := make([]string, len(keys))
	for i := range keys {
		keys[i] = judge.KeyOf(fmt.Sprintf("hm-%d", i))
		before[i], _ = rt.ring.Owner(keys[i])
	}
	b.dead.Store(true)
	rt.CheckNow()
	st := rt.Replicas()
	if st[0].Healthy != true || st[1].Healthy != false || st[2].Healthy != true {
		t.Fatalf("health after eviction: %+v", st)
	}
	if rt.ring.Len() != 2 {
		t.Fatalf("ring has %d members after eviction, want 2", rt.ring.Len())
	}
	for i, key := range keys {
		owner, _ := rt.ring.Owner(key)
		if owner == "b" {
			t.Fatal("evicted replica still owns keys")
		}
		if before[i] != "b" && owner != before[i] {
			t.Fatalf("survivor-owned key %d moved from %s to %s", i, before[i], owner)
		}
	}
	b.dead.Store(false)
	rt.CheckNow()
	if rt.ring.Len() != 3 {
		t.Fatalf("ring has %d members after readmission, want 3", rt.ring.Len())
	}
	for i, key := range keys {
		if owner, _ := rt.ring.Owner(key); owner != before[i] {
			t.Fatalf("key %d not restored after readmission", i)
		}
	}
}

// TestRouterRequestPathEviction: a request failure triggers an async
// probe that evicts a genuinely dead replica without waiting for the
// next health tick.
func TestRouterRequestPathEviction(t *testing.T) {
	a, b := newFakeReplica("a"), newFakeReplica("b")
	rt := testRouter(t, a, b)
	b.dead.Store(true)
	// Route enough singles that some hit b and fail over.
	for i := 0; i < 20; i++ {
		if _, err := rt.CompleteContext(context.Background(), fmt.Sprintf("rp-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for rt.ring.Len() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("dead replica not evicted by request-path probe")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A success readmits: markUp runs on every successful route.
	b.dead.Store(false)
	rt.CheckNow()
	if rt.ring.Len() != 2 {
		t.Fatal("replica not readmitted after recovery")
	}
}

// TestRouterBoundedLoadSpill: a replica pinned far above the load
// bound stops receiving new keys; they spill to its ring successor.
func TestRouterBoundedLoadSpill(t *testing.T) {
	a, b := newFakeReplica("a"), newFakeReplica("b")
	rt := testRouter(t, a, b)
	// Pin a's in-flight count sky-high; every key owned by a must
	// spill to b.
	rt.byAddr["a"].inflight.Store(1000)
	for i := 0; i < 30; i++ {
		st := rt.pick(judge.KeyOf(fmt.Sprintf("spill-%d", i)), nil, true)
		if st.addr != "b" {
			t.Fatalf("key routed to overloaded replica %s", st.addr)
		}
	}
	if rt.spills.Load() == 0 {
		t.Fatal("no spills recorded")
	}
	// Both over the bound: fall back to the owner rather than failing.
	rt.byAddr["b"].inflight.Store(1000)
	if st := rt.pick(judge.KeyOf("spill-anyway"), nil, true); st == nil {
		t.Fatal("pick returned nil with all replicas over bound")
	}
}

// TestRouterHealthLoop: the background loop evicts and readmits
// without explicit CheckNow calls.
func TestRouterHealthLoop(t *testing.T) {
	a, b := newFakeReplica("a"), newFakeReplica("b")
	rt, err := NewRouter(Config{
		Replicas:       []Replica{{Addr: "a", Client: a}, {Addr: "b", Client: b}},
		HealthInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	b.dead.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for rt.ring.Len() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("health loop never evicted the dead replica")
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.dead.Store(false)
	for rt.ring.Len() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("health loop never readmitted the recovered replica")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDialParsesAddressList(t *testing.T) {
	rt, err := Dial("127.0.0.1:9991, 127.0.0.1:9992 ,,127.0.0.1:9993")
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	want := []string{"127.0.0.1:9991", "127.0.0.1:9992", "127.0.0.1:9993"}
	got := rt.Addrs()
	if len(got) != len(want) {
		t.Fatalf("Addrs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Addrs = %v, want %v", got, want)
		}
	}
	if _, err := Dial(" ,, "); err == nil {
		t.Fatal("blank address list accepted")
	}
}

// hungReplica is a fakeReplica whose Ping never answers: it blocks
// until the probe's context expires — the pathology of a replica
// whose accept queue is alive but whose process is wedged.
type hungReplica struct {
	*fakeReplica
}

func (h *hungReplica) Ping(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// TestRouterHungProbeBoundedByInterval: with PingTimeout unset, the
// probe timeout derives from the health interval (min of the two), so
// a replica that hangs its Ping is evicted within roughly one tick —
// it cannot stall the health pass for the full DefaultPingTimeout.
func TestRouterHungProbeBoundedByInterval(t *testing.T) {
	interval := 25 * time.Millisecond
	hung := &hungReplica{newFakeReplica("hung")}
	ok := newFakeReplica("ok")
	rt, err := NewRouter(Config{
		Replicas:       []Replica{{Addr: "hung", Client: hung}, {Addr: "ok", Client: ok}},
		HealthInterval: interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.cfg.PingTimeout != interval {
		t.Fatalf("PingTimeout = %v, want it derived down to the %v interval", rt.cfg.PingTimeout, interval)
	}

	start := time.Now()
	rt.CheckNow()
	elapsed := time.Since(start)
	if elapsed >= DefaultPingTimeout {
		t.Fatalf("health pass took %v with a hung replica; probe timeout not bounded by the interval", elapsed)
	}
	if rt.ring.Len() != 1 {
		t.Fatalf("ring has %d replicas after the pass; the hung replica was not evicted", rt.ring.Len())
	}

	// An explicit PingTimeout always wins over the derivation.
	rt2, err := NewRouter(Config{
		Replicas:       []Replica{{Addr: "ok", Client: ok}},
		HealthInterval: interval,
		PingTimeout:    3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	if rt2.cfg.PingTimeout != 3*time.Second {
		t.Fatalf("explicit PingTimeout overridden to %v", rt2.cfg.PingTimeout)
	}
}

// sickReplica pings healthy but fails every completion — the failure
// mode health probes cannot catch and the circuit breaker exists for.
type sickReplica struct {
	addr     string
	attempts atomic.Int64
}

func (s *sickReplica) CompleteContext(ctx context.Context, prompt string) (string, error) {
	s.attempts.Add(1)
	return "", fmt.Errorf("replica %s: sick", s.addr)
}

func (s *sickReplica) CompleteBatch(ctx context.Context, prompts []string) ([]string, error) {
	s.attempts.Add(1)
	return nil, fmt.Errorf("replica %s: sick", s.addr)
}

func (s *sickReplica) Ping(ctx context.Context) error { return nil }

// TestBreakerShedsToSuccessorPreservingOrder: a replica that pings
// healthy but fails every request trips its breaker; its keys shed to
// ring successors at placement time, and batch responses still come
// back in prompt order.
func TestBreakerShedsToSuccessorPreservingOrder(t *testing.T) {
	a := &sickReplica{addr: "a"}
	b, c := newFakeReplica("b"), newFakeReplica("c")
	rt, err := NewRouter(Config{
		Replicas:         []Replica{{Addr: "a", Client: a}, {Addr: "b", Client: b}, {Addr: "c", Client: c}},
		HealthInterval:   -1,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour, // no half-open probe during the test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	prompts := make([]string, 40)
	for i := range prompts {
		prompts[i] = fmt.Sprintf("order-%d", i)
	}
	// Single-prompt traffic first: every request whose ring owner is a
	// fails there once and fails over to a successor, so a accumulates
	// consecutive failures until its breaker trips. Health stays green
	// throughout — pings succeed — so the breaker, not eviction, is
	// what sheds.
	for i, p := range prompts {
		resp, err := rt.CompleteContext(context.Background(), p)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if addr, _, _ := strings.Cut(resp, ":"); addr == "a" {
			t.Fatalf("sick replica produced a response for %q", p)
		}
	}
	if got := rt.byAddr["a"].breaker.State(); got.String() != "open" {
		t.Fatalf("sick replica breaker %v after a full batch of failures", got)
	}
	if !rt.Replicas()[0].Healthy {
		t.Fatal("sick replica was evicted; the test wants the breaker, not health, shedding")
	}

	// Second batch: placement skips the tripped replica outright — no
	// attempts burn on it — and order is still preserved.
	before := a.attempts.Load()
	resps, err := rt.CompleteBatch(context.Background(), prompts)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if _, rest, _ := strings.Cut(r, ":"); rest != prompts[i] {
			t.Fatalf("post-trip resp[%d] = %q, want %q", i, r, prompts[i])
		}
	}
	if got := a.attempts.Load() - before; got != 0 {
		t.Errorf("tripped replica saw %d attempts; placement should shed", got)
	}
	st := rt.Replicas()[0]
	if st.Breaker != "open" || st.BreakerTrips < 1 {
		t.Errorf("ReplicaStatus breaker = %q trips = %d, want open/>=1", st.Breaker, st.BreakerTrips)
	}
}

// TestProbeFaultInjectionFlapsReplica: a fleet.probe fault schedule
// makes a perfectly healthy replica flap out of and back into the
// ring, deterministically.
func TestProbeFaultInjectionFlapsReplica(t *testing.T) {
	a, b := newFakeReplica("a"), newFakeReplica("b")
	inj := fault.New(7, &fault.Rule{Point: "fleet.probe:a", Kind: fault.Flap, Every: 2})
	rt, err := NewRouter(Config{
		Replicas:       []Replica{{Addr: "a", Client: a}, {Addr: "b", Client: b}},
		HealthInterval: -1,
		Fault:          inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	rt.CheckNow() // probe 1: no fault, both healthy
	if !rt.Replicas()[0].Healthy {
		t.Fatal("replica a evicted on a clean probe")
	}
	rt.CheckNow() // probe 2: fault fires, a flaps out
	if rt.Replicas()[0].Healthy {
		t.Fatal("replica a survived an injected probe failure")
	}
	if rt.Replicas()[1].Healthy != true {
		t.Fatal("uninjected replica b evicted")
	}
	rt.CheckNow() // probe 3: clean again, a readmitted
	if !rt.Replicas()[0].Healthy {
		t.Fatal("replica a not readmitted after the flap")
	}
	if inj.InjectedTotal() != 1 {
		t.Errorf("injected %d faults, want 1", inj.InjectedTotal())
	}
}

// TestRouterRetriesSum: Router.Retries sums client counters through
// the optional interface; fakes without one contribute zero.
func TestRouterRetriesSum(t *testing.T) {
	a := newFakeReplica("a")
	rt := testRouter(t, a)
	if got := rt.Retries(); got != 0 {
		t.Fatalf("fake clients reported %d retries", got)
	}
	if got := len(rt.BreakerStates()); got != 1 {
		t.Fatalf("BreakerStates reported %d entries", got)
	}
}
