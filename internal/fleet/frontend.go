package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/perf"
	"repro/internal/remote"
	"repro/internal/server"
	"repro/internal/trace"
)

// Defaults for FrontendConfig zero values.
const (
	DefaultQueueLimit = 1024
	DefaultRetryAfter = 50 * time.Millisecond
)

// FrontendConfig configures the router daemon's HTTP face. Router is
// the only required field.
type FrontendConfig struct {
	Router *Router
	// ID names this router instance in /healthz and /metrics labels.
	ID string
	// QueueLimit bounds total admitted in-flight prompts; interactive
	// requests are admitted up to it. Default DefaultQueueLimit.
	QueueLimit int
	// BulkLimit is the lower admission ceiling for bulk-class
	// requests, so sweep traffic sheds (429) before interactive
	// traffic under overload. Default QueueLimit/2.
	BulkLimit int
	// ClientQuota caps one client's in-flight prompts (keyed by the
	// X-LLM4VV-Client header, falling back to the remote address) so a
	// single runaway sweep cannot starve the fleet. 0 disables.
	ClientQuota int
	// RetryAfter is the back-off hint sent with 429 responses.
	// Default DefaultRetryAfter.
	RetryAfter time.Duration
	// Tracer, when set, joins inbound traces (propagation headers),
	// records routing spans, serves /debug/traces, and feeds the
	// slow-exemplar metric family. Nil disables tracing at zero cost.
	Tracer *trace.Tracer
	// Logger receives structured admission events — every 429 shed is
	// logged with its trace_id, priority, and client; nil discards.
	Logger *slog.Logger
	// Fault, when set, is the chaos injector whose injected-fault
	// counts surface in the router's llm4vv_resilience_* metric
	// families (the Router's Config.Fault should reference the same
	// injector). Nil — the production default — reports zeros.
	Fault *fault.Injector
}

// Frontend is the HTTP admission layer over a Router: the daemon wire
// protocol plus priority-class load shedding, per-client quotas, and
// Prometheus metrics. Construct with NewFrontend and mount Handler.
//
// A request's priority class comes from the X-LLM4VV-Priority header
// ("interactive" or "bulk"); absent the header, single-prompt
// requests default to interactive and batch requests to bulk — the
// batch path is the sweep path, and overload should shed sweeps
// before humans.
type Frontend struct {
	cfg FrontendConfig
	rec *perf.Recorder

	inflight atomic.Int64
	mu       sync.Mutex
	clients  map[string]int64

	admittedInteractive atomic.Int64
	admittedBulk        atomic.Int64
	shedInteractive     atomic.Int64
	shedBulk            atomic.Int64
	quotaRejected       atomic.Int64
}

// NewFrontend builds the HTTP face over a Router.
func NewFrontend(cfg FrontendConfig) *Frontend {
	if cfg.Router == nil {
		panic("fleet: FrontendConfig.Router is required")
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = DefaultQueueLimit
	}
	if cfg.BulkLimit <= 0 || cfg.BulkLimit > cfg.QueueLimit {
		cfg.BulkLimit = cfg.QueueLimit / 2
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	return &Frontend{cfg: cfg, rec: perf.NewRecorder(), clients: map[string]int64{}}
}

// join opens the router-side trace span for one request, continuing
// the caller's trace when the propagation headers carry one.
func (f *Frontend) join(r *http.Request, name string) (context.Context, *trace.Span) {
	if f.cfg.Tracer == nil {
		return r.Context(), nil
	}
	traceHex, spanHex := trace.Extract(r.Header)
	return f.cfg.Tracer.Join(r.Context(), traceHex, spanHex, name)
}

// Stats is a snapshot of the admission counters.
func (f *Frontend) Stats() FrontendStats {
	return FrontendStats{
		AdmittedInteractive: f.admittedInteractive.Load(),
		AdmittedBulk:        f.admittedBulk.Load(),
		ShedInteractive:     f.shedInteractive.Load(),
		ShedBulk:            f.shedBulk.Load(),
		QuotaRejected:       f.quotaRejected.Load(),
	}
}

// Handler returns the router daemon's route table — the same paths a
// replica serves, so clients are none the wiser.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/complete", f.handleComplete)
	mux.HandleFunc("/v1/complete_batch", f.handleCompleteBatch)
	mux.HandleFunc("/v1/backends", f.handleBackends)
	mux.HandleFunc("/healthz", f.handleHealthz)
	mux.HandleFunc("/metrics", f.handleMetrics)
	mux.HandleFunc("/debug/traces", f.handleDebugTraces)
	return mux
}

// handleDebugTraces serves the tracer's recent-fragment ring as a
// JSON array; an empty array without a tracer, mirroring the daemon.
func (f *Frontend) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	recent := f.cfg.Tracer.Recent()
	if recent == nil {
		recent = []trace.Record{}
	}
	writeJSON(w, http.StatusOK, recent)
}

// classOf resolves a request's priority class: the explicit header
// wins, otherwise batch requests are bulk and singles interactive.
func classOf(r *http.Request, batch bool) string {
	switch r.Header.Get(remote.PriorityHeader) {
	case remote.PriorityBulk:
		return remote.PriorityBulk
	case remote.PriorityInteractive:
		return remote.PriorityInteractive
	}
	if batch {
		return remote.PriorityBulk
	}
	return remote.PriorityInteractive
}

// clientOf names the requesting client for quota accounting.
func clientOf(r *http.Request) string {
	if c := r.Header.Get(remote.ClientHeader); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admit reserves n prompt slots under the class ceiling and the
// client quota, answering the 429 itself on refusal. The returned
// release must run when the prompts resolve.
func (f *Frontend) admit(w http.ResponseWriter, class, client string, n int) (release func(), ok bool) {
	limit := int64(f.cfg.QueueLimit)
	if class == remote.PriorityBulk {
		limit = int64(f.cfg.BulkLimit)
	}
	if f.inflight.Add(int64(n)) > limit {
		f.inflight.Add(int64(-n))
		if class == remote.PriorityBulk {
			f.shedBulk.Add(1)
		} else {
			f.shedInteractive.Add(1)
		}
		f.reject(w, fmt.Sprintf("router overloaded (%s class), retry later", class))
		return nil, false
	}
	if q := int64(f.cfg.ClientQuota); q > 0 {
		if f.clientAdd(client, int64(n)) > q {
			f.clientAdd(client, int64(-n))
			f.inflight.Add(int64(-n))
			f.quotaRejected.Add(1)
			f.reject(w, fmt.Sprintf("client %q exceeds its in-flight quota of %d prompts, retry later", client, q))
			return nil, false
		}
	}
	if class == remote.PriorityBulk {
		f.admittedBulk.Add(int64(n))
	} else {
		f.admittedInteractive.Add(int64(n))
	}
	return func() {
		f.inflight.Add(int64(-n))
		if f.cfg.ClientQuota > 0 {
			f.clientAdd(client, int64(-n))
		}
	}, true
}

// clientAdd adjusts one client's in-flight count, dropping zeroed
// entries so the table tracks only active clients.
func (f *Frontend) clientAdd(client string, n int64) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	v := f.clients[client] + n
	if v <= 0 {
		delete(f.clients, client)
		return v
	}
	f.clients[client] = v
	return v
}

// reject answers a shed request: 429 with the fractional Retry-After
// hint the remote client's backoff honours.
func (f *Frontend) reject(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", strconv.FormatFloat(f.cfg.RetryAfter.Seconds(), 'f', -1, 64))
	writeError(w, http.StatusTooManyRequests, msg)
}

// logShed records a 429 with the identity needed to attribute a shed
// sweep afterwards: the trace (empty when the caller sent none), the
// priority class, and the quota client.
func (f *Frontend) logShed(span *trace.Span, class, client string, prompts int) {
	span.SetAttr("shed", "true")
	f.cfg.Logger.Warn("router: request shed (429)",
		"trace_id", span.TraceHex(), "priority", class, "client", client, "prompts", prompts)
}

// statusFor maps a routing error: the requester's own context ending
// is 504, a fleet with no replica able to serve is 502 — a true
// gateway failure, transient to retrying clients.
func statusFor(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusBadGateway
}

func (f *Frontend) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req server.CompleteRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Prompt == "" {
		writeError(w, http.StatusBadRequest, "empty prompt")
		return
	}
	ctx, span := f.join(r, "router.request")
	defer span.End()
	class, client := classOf(r, false), clientOf(r)
	span.SetAttr("priority", class)
	release, ok := f.admit(w, class, client, 1)
	if !ok {
		f.logShed(span, class, client, 1)
		return
	}
	defer release()
	start := time.Now()
	resp, err := f.cfg.Router.CompleteContext(ctx, req.Prompt)
	f.rec.Observe("route", time.Since(start))
	if err != nil {
		span.SetAttr("error", err.Error())
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, server.CompleteResponse{Response: resp})
}

func (f *Frontend) handleCompleteBatch(w http.ResponseWriter, r *http.Request) {
	var req server.CompleteBatchRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Prompts) == 0 {
		writeJSON(w, http.StatusOK, server.CompleteBatchResponse{Responses: []string{}})
		return
	}
	class := classOf(r, true)
	if len(req.Prompts) > f.cfg.QueueLimit {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d prompts exceeds the router queue limit %d; lower the client shard size or raise -queue", len(req.Prompts), f.cfg.QueueLimit))
		return
	}
	ctx, span := f.join(r, "router.batch_request")
	defer span.End()
	client := clientOf(r)
	span.SetAttr("priority", class)
	span.SetAttr("prompts", strconv.Itoa(len(req.Prompts)))
	release, ok := f.admit(w, class, client, len(req.Prompts))
	if !ok {
		f.logShed(span, class, client, len(req.Prompts))
		return
	}
	defer release()
	start := time.Now()
	resps, err := f.cfg.Router.CompleteBatch(ctx, req.Prompts)
	f.rec.Observe("route_batch", time.Since(start))
	if err != nil {
		span.SetAttr("error", err.Error())
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, server.CompleteBatchResponse{Responses: resps})
}

// handleBackends answers /v1/backends on the fleet's behalf: the
// first healthy replica that can describe itself does (replicas of one
// fleet serve the same backend by construction), decorated with the
// router's ID and the replica list. A fleet with no describable
// replica still reports its shape.
func (f *Frontend) handleBackends(w http.ResponseWriter, r *http.Request) {
	resp := server.BackendsResponse{
		Serving:   "fleet:" + strings.Join(f.cfg.Router.Addrs(), ","),
		Batch:     true,
		ReplicaID: f.cfg.ID,
		Replicas:  f.cfg.Router.Addrs(),
	}
	type describer interface {
		Info(ctx context.Context) (server.BackendsResponse, error)
	}
	for _, st := range f.cfg.Router.replicas {
		if !st.healthy.Load() {
			continue
		}
		d, ok := st.client.(describer)
		if !ok {
			break
		}
		ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
		info, err := d.Info(ctx)
		cancel()
		if err != nil {
			continue
		}
		info.ReplicaID = f.cfg.ID
		info.Replicas = f.cfg.Router.Addrs()
		resp = info
		break
	}
	writeJSON(w, http.StatusOK, resp)
}

func (f *Frontend) handleHealthz(w http.ResponseWriter, r *http.Request) {
	replicas := f.cfg.Router.Replicas()
	ok := false
	for _, rs := range replicas {
		if rs.Healthy {
			ok = true
			break
		}
	}
	status := http.StatusOK
	if !ok {
		// No healthy replica: report unhealthy so load balancers and
		// the remote client's Ping fail over to another router.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, HealthResponse{
		OK:       ok,
		RouterID: f.cfg.ID,
		Replicas: replicas,
		Routing:  f.cfg.Router.Stats(),
		Serving:  f.Stats(),
	})
}

// handleMetrics serves the router's Prometheus exposition: admission
// counters by priority class, routing counters, per-replica health and
// traffic, and the route-stage latency summaries. Families come from
// the perf registry (perf.Families), which docs/OPERATIONS.md
// documents one for one.
func (f *Frontend) handleMetrics(w http.ResponseWriter, r *http.Request) {
	router := perf.Label("router", f.cfg.ID)
	rs := f.cfg.Router.Stats()
	fs := f.Stats()
	var buf bytes.Buffer
	p := perf.NewProm(&buf)
	p.Emit(perf.FamRouterAdmitted,
		perf.Sample{Labels: [][2]string{router, perf.Label("priority", remote.PriorityInteractive)}, Value: float64(fs.AdmittedInteractive)},
		perf.Sample{Labels: [][2]string{router, perf.Label("priority", remote.PriorityBulk)}, Value: float64(fs.AdmittedBulk)},
	)
	p.Emit(perf.FamRouterShed,
		perf.Sample{Labels: [][2]string{router, perf.Label("priority", remote.PriorityInteractive)}, Value: float64(fs.ShedInteractive)},
		perf.Sample{Labels: [][2]string{router, perf.Label("priority", remote.PriorityBulk)}, Value: float64(fs.ShedBulk)},
	)
	p.EmitValue(perf.FamRouterQuotaRejected, float64(fs.QuotaRejected), router)
	p.EmitValue(perf.FamRouterRequests, float64(rs.Requests), router)
	p.EmitValue(perf.FamRouterBatchRequests, float64(rs.BatchRequests), router)
	p.EmitValue(perf.FamRouterRoutedPrompts, float64(rs.RoutedPrompts), router)
	p.EmitValue(perf.FamRouterFailovers, float64(rs.Failovers), router)
	p.EmitValue(perf.FamRouterSpills, float64(rs.Spills), router)
	p.EmitValue(perf.FamRouterInflight, float64(f.inflight.Load()), router)
	replicas := f.cfg.Router.Replicas()
	healthy := make([]perf.Sample, len(replicas))
	prompts := make([]perf.Sample, len(replicas))
	failures := make([]perf.Sample, len(replicas))
	for i, st := range replicas {
		labels := [][2]string{router, perf.Label("replica", st.Addr)}
		v := 0.0
		if st.Healthy {
			v = 1
		}
		healthy[i] = perf.Sample{Labels: labels, Value: v}
		prompts[i] = perf.Sample{Labels: labels, Value: float64(st.Prompts)}
		failures[i] = perf.Sample{Labels: labels, Value: float64(st.Failures)}
	}
	p.Emit(perf.FamRouterReplicaHealthy, healthy...)
	p.Emit(perf.FamRouterReplicaPrompts, prompts...)
	p.Emit(perf.FamRouterReplicaFailures, failures...)
	p.EmitSummaries(perf.FamRouterStageSeconds, f.rec.Snapshot(), router)
	if exemplars := f.cfg.Tracer.SlowExemplars(); len(exemplars) > 0 {
		samples := make([]perf.Sample, len(exemplars))
		for i, ex := range exemplars {
			samples[i] = perf.Sample{
				Labels: [][2]string{router, perf.Label("stage", ex.Stage), perf.Label("trace_id", ex.Trace)},
				Value:  time.Duration(ex.DurNS).Seconds(),
			}
		}
		p.Emit(perf.FamTraceSlowExemplar, samples...)
	}
	// The Router implements both optional resilience sources (Retries,
	// BreakerStates), so the router exposition carries per-replica
	// breaker gauges under the same families the daemon exports.
	server.EmitResilience(p, f.cfg.Fault, f.cfg.Router, router)
	if err := p.Err(); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// readJSON / writeJSON / writeError mirror the daemon's handlers so
// the router speaks the identical wire protocol, ErrorResponse bodies
// included.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, server.ErrorResponse{Error: msg})
}
