// Package ensemble composes N judging endpoints into one voting
// panel that itself satisfies the endpoint contracts (judge.LLM,
// judge.ContextLLM, judge.BatchLLM). Multi-judge panels and
// inter-judge agreement are the standard lens on how far a single
// LLM judge can be trusted ("From Code to Courtroom", the LLM4VV
// follow-up); this package supplies the panel, and internal/metrics
// scores the agreement.
//
// A Panel fans every shard of prompts out to all members
// concurrently — each member receives the whole shard through the
// richest contract it offers (one CompleteBatch call for batch-capable
// members) — so a panel sweep costs one sharded pass over the suite,
// not N sequential runs. Per prompt, the member responses are parsed
// into verdicts and combined by a pluggable voting strategy; the
// panel's own response text carries the member votes line by line and
// ends with the mandated FINAL JUDGEMENT phrase, so everything
// downstream (verdict parsing, the run store, the judging daemon, the
// HTTP wire) handles a panel exactly like a single judge, and the
// votes survive any transport that preserves response bytes.
//
// Degraded panels: when a member errors or times out
// (Config.MemberTimeout), the panel proceeds without it as long as at
// least Config.Quorum members answered, recording the dropout as an
// "error" vote; below quorum the whole call fails. Quorum 0 means
// every member is required.
package ensemble

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/judge"
	"repro/internal/trace"
)

// Strategy selects how member votes combine into the panel verdict.
// Every strategy is deterministic: equal votes always give the equal
// panel verdict, including ties (broken by the chair, never a coin).
type Strategy int

const (
	// Majority: the verdict with more (weighted) votes wins; ties go
	// to the chair — the first member that answered.
	Majority Strategy = iota
	// Unanimous: every answering member must cast the same parsable
	// verdict for it to stand; any dissent or unparsable vote among
	// the survivors resolves to Invalid — the deterministic tiebreak,
	// and the conservative gate that distinguishes this strategy from
	// Majority (one sceptical judge can fail a file).
	Unanimous
	// Weighted is Majority with per-member weights — calibration
	// weights computed from each member's historical agreement with
	// the panel (see WeightsFromVotes and the run store wiring in the
	// root package).
	Weighted
)

func (s Strategy) String() string {
	switch s {
	case Majority:
		return "majority"
	case Unanimous:
		return "unanimous"
	case Weighted:
		return "weighted"
	default:
		return "?"
	}
}

// ParseStrategy resolves a strategy name (the optional suffix of an
// "ensemble:a+b+c:strategy" backend spec).
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "majority":
		return Majority, nil
	case "unanimous":
		return Unanimous, nil
	case "weighted":
		return Weighted, nil
	default:
		return 0, fmt.Errorf("ensemble: unknown voting strategy %q (majority, unanimous, weighted)", name)
	}
}

// knownStrategy reports whether name parses, without allocating the
// error — used by ParseSpec to decide if a trailing :segment is a
// strategy or part of a member name.
func knownStrategy(name string) bool {
	_, err := ParseStrategy(name)
	return err == nil
}

// Member is one judging endpoint on the panel.
type Member struct {
	// Name labels the member's votes; it must be non-empty, unique on
	// the panel, and free of whitespace and '=' (the vote encoding's
	// separators). The backend scheme names members "backend#index".
	Name string
	// LLM answers the member's prompts. judge.BatchLLM and
	// judge.ContextLLM are honoured when implemented.
	LLM judge.LLM
	// Weight scales this member's vote under the Weighted strategy;
	// values <= 0 count as 1. Other strategies ignore it.
	Weight float64
}

// Config configures a Panel.
type Config struct {
	Members  []Member
	Strategy Strategy
	// Quorum is the minimum number of members that must answer a
	// shard for the panel to return verdicts at all; 0 requires every
	// member (any member failure fails the call).
	Quorum int
	// MemberTimeout bounds each member's handling of one shard; a
	// member that exceeds it is dropped from that shard's votes
	// (subject to Quorum). 0 means no per-member deadline beyond the
	// caller's context.
	MemberTimeout time.Duration
}

// Panel is a voting ensemble of judging endpoints. Construct with
// New; the zero value is not usable. A Panel is immutable and safe
// for concurrent use when its members are.
type Panel struct {
	cfg    Config
	quorum int
}

// New validates the configuration and builds a Panel.
func New(cfg Config) (*Panel, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("ensemble: a panel needs at least one member")
	}
	seen := map[string]bool{}
	for i, m := range cfg.Members {
		if m.LLM == nil {
			return nil, fmt.Errorf("ensemble: member %d (%q) has a nil endpoint", i, m.Name)
		}
		if m.Name == "" || strings.ContainsAny(m.Name, " \t\n=") {
			return nil, fmt.Errorf("ensemble: member %d name %q must be non-empty without whitespace or '='", i, m.Name)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("ensemble: duplicate member name %q", m.Name)
		}
		seen[m.Name] = true
	}
	quorum := cfg.Quorum
	if quorum <= 0 || quorum > len(cfg.Members) {
		quorum = len(cfg.Members)
	}
	return &Panel{cfg: cfg, quorum: quorum}, nil
}

// Members lists the member names in panel order.
func (p *Panel) Members() []string {
	names := make([]string, len(p.cfg.Members))
	for i, m := range p.cfg.Members {
		names[i] = m.Name
	}
	return names
}

// Strategy reports the panel's voting strategy.
func (p *Panel) Strategy() Strategy { return p.cfg.Strategy }

// Describe returns the member names and the strategy name — the
// transport-friendly description the judging daemon reports from
// /v1/backends (matched there by a local interface, so the daemon
// core stays endpoint-agnostic).
func (p *Panel) Describe() (members []string, strategy string) {
	return p.Members(), p.cfg.Strategy.String()
}

// Reweighted returns a copy of the panel with per-member weights
// (aligned with Members()) — how a Weighted panel picks up
// calibration weights computed from run-store history. The receiver
// is not modified.
func (p *Panel) Reweighted(weights []float64) (*Panel, error) {
	if len(weights) != len(p.cfg.Members) {
		return nil, fmt.Errorf("ensemble: %d weights for %d members", len(weights), len(p.cfg.Members))
	}
	cfg := p.cfg
	cfg.Members = append([]Member(nil), p.cfg.Members...)
	for i := range cfg.Members {
		cfg.Members[i].Weight = weights[i]
	}
	return New(cfg)
}

// Complete implements judge.LLM. The error-free contract has nowhere
// to surface a quorum failure, so one maps to an empty response
// (parsed downstream as an unparsable verdict); error-aware callers
// use CompleteContext or CompleteBatch.
func (p *Panel) Complete(prompt string) string {
	resp, err := p.CompleteContext(context.Background(), prompt)
	if err != nil {
		return ""
	}
	return resp
}

// CompleteContext implements judge.ContextLLM.
func (p *Panel) CompleteContext(ctx context.Context, prompt string) (string, error) {
	resps, err := p.CompleteBatch(ctx, []string{prompt})
	if err != nil {
		return "", err
	}
	return resps[0], nil
}

// CompleteBatch implements judge.BatchLLM: the whole shard goes to
// every member concurrently (one CompleteBatch call per batch-capable
// member), then each prompt's member verdicts are combined by the
// voting strategy. Responses come back in prompt order; each is the
// deterministic panel transcript for its prompt, independent of shard
// boundaries and member completion order.
func (p *Panel) CompleteBatch(ctx context.Context, prompts []string) ([]string, error) {
	if len(prompts) == 0 {
		return []string{}, nil
	}
	type memberResult struct {
		member int
		resps  []string
		err    error
	}
	// Results travel over a buffered channel rather than a shared
	// slice so a member that never returns can be abandoned without a
	// race: its eventual send lands in the buffer unread, and its slot
	// below simply stays an error. This matters for members that
	// implement only the plain, uncancellable judge.LLM contract — a
	// hung Complete() cannot be interrupted, so on timeout or caller
	// cancellation its goroutine is abandoned (it leaks until the
	// endpoint returns; that is the price of the error-free contract).
	done := make(chan memberResult, len(p.cfg.Members))
	for i, m := range p.cfg.Members {
		go func(i int, m Member) {
			// Each member's vote on the shard is its own span — under a
			// traced file this is what separates "the panel was slow"
			// into "member X was slow".
			mctx, mspan := trace.Start(ctx, "panel.member")
			if mspan != nil {
				mspan.SetAttr("member", m.Name)
				mspan.SetAttr("prompts", strconv.Itoa(len(prompts)))
			}
			if p.cfg.MemberTimeout > 0 {
				var cancel context.CancelFunc
				mctx, cancel = context.WithTimeout(mctx, p.cfg.MemberTimeout)
				defer cancel()
			}
			resps, err := judge.CompleteAll(mctx, m.LLM, prompts)
			if err == nil && len(resps) != len(prompts) {
				err = fmt.Errorf("ensemble: member %q returned %d responses for %d prompts", m.Name, len(resps), len(prompts))
			}
			if err != nil {
				mspan.SetAttr("error", err.Error())
			}
			mspan.End()
			done <- memberResult{member: i, resps: resps, err: err}
		}(i, m)
	}
	results := make([]memberResult, len(p.cfg.Members))
	for i := range results {
		results[i] = memberResult{member: i, err: fmt.Errorf("ensemble: member %q did not answer before the panel moved on", p.cfg.Members[i].Name)}
	}
	// With a member timeout configured, grant a grace period past it
	// for context-aware members to deliver their own ctx error; after
	// that, unanswered members count as timed out and the panel moves
	// on — MemberTimeout bounds the shard even for members whose
	// endpoints cannot be cancelled.
	var deadline <-chan time.Time
	if p.cfg.MemberTimeout > 0 {
		t := time.NewTimer(p.cfg.MemberTimeout + 100*time.Millisecond)
		defer t.Stop()
		deadline = t.C
	}
collect:
	for pending := len(p.cfg.Members); pending > 0; pending-- {
		select {
		case r := <-done:
			results[r.member] = r
		case <-deadline:
			break collect
		case <-ctx.Done():
			// The caller's own cancellation is not a degraded panel;
			// surface it as-is so schedulers stop cleanly.
			return nil, ctx.Err()
		}
	}
	// select picks randomly among ready cases, so the deadline can
	// win the race against results already sitting in the buffer;
	// drain them — a member that answered within its window must
	// never be scored as absent (determinism depends on it).
drain:
	for {
		select {
		case r := <-done:
			results[r.member] = r
		default:
			break drain
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	alive := 0
	var firstErr error
	for _, r := range results {
		if r.err == nil {
			alive++
		} else if firstErr == nil {
			firstErr = r.err
		}
	}
	if alive < p.quorum {
		return nil, fmt.Errorf("ensemble: quorum not met: %d of %d members answered (quorum %d): %w",
			alive, len(p.cfg.Members), p.quorum, firstErr)
	}
	out := make([]string, len(prompts))
	for k := range prompts {
		votes := make([]Vote, len(p.cfg.Members))
		for i, m := range p.cfg.Members {
			if results[i].err != nil {
				votes[i] = Vote{Member: m.Name, Err: true}
				continue
			}
			votes[i] = Vote{Member: m.Name, Verdict: judge.ParseVerdict(results[i].resps[k])}
		}
		out[k] = p.render(votes, p.decide(votes))
	}
	return out, nil
}

// decide combines one prompt's member votes into the panel verdict.
// The result is always Valid or Invalid: a panel that cannot reach a
// parsable conclusion (every member unparsable or erred) resolves
// conservatively to Invalid, matching the validation pipeline's
// treatment of unparsable single-judge verdicts.
func (p *Panel) decide(votes []Vote) judge.Verdict {
	switch p.cfg.Strategy {
	case Unanimous:
		// Unanimity is over the surviving members: dropped members
		// abstain (Quorum already bounds how many may), but a single
		// dissenting or unparsable survivor fails the file.
		first := judge.Unparsable
		for _, v := range votes {
			if v.Err {
				continue
			}
			if v.Verdict == judge.Unparsable {
				return judge.Invalid
			}
			if first == judge.Unparsable {
				first = v.Verdict
				continue
			}
			if v.Verdict != first {
				return judge.Invalid
			}
		}
		if first == judge.Unparsable {
			// No survivor cast a parsable vote at all.
			return judge.Invalid
		}
		return first
	default: // Majority and Weighted share the tally; weights differ.
		var valid, invalid float64
		for i, v := range votes {
			if v.Err {
				continue
			}
			w := 1.0
			if p.cfg.Strategy == Weighted {
				if mw := p.cfg.Members[i].Weight; mw > 0 {
					w = mw
				}
			}
			switch v.Verdict {
			case judge.Valid:
				valid += w
			case judge.Invalid:
				invalid += w
			}
		}
		switch {
		case valid > invalid:
			return judge.Valid
		case invalid > valid:
			return judge.Invalid
		default:
			return p.chairVote(votes)
		}
	}
}

// chairVote is the deterministic tiebreak: the verdict of the first
// member that answered with a parsable vote; Invalid when no member
// did. Member order is configuration order, so identically-configured
// panels break every tie identically.
func (p *Panel) chairVote(votes []Vote) judge.Verdict {
	for _, v := range votes {
		if v.Err || v.Verdict == judge.Unparsable {
			continue
		}
		return v.Verdict
	}
	return judge.Invalid
}

// render produces the panel transcript for one prompt: a header
// naming the strategy and quorum, one VOTE line per member in panel
// order, and the exact FINAL JUDGEMENT phrase judge.ParseVerdict
// extracts. The text is a pure function of (votes, verdict), which is
// what makes panel reports byte-identical across transports and
// resumed runs.
func (p *Panel) render(votes []Vote, verdict judge.Verdict) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PANEL VERDICT (strategy=%s quorum=%d members=%d)\n",
		p.cfg.Strategy, p.quorum, len(p.cfg.Members))
	for _, v := range votes {
		fmt.Fprintf(&b, "VOTE %s: %s\n", v.Member, v.word())
	}
	fmt.Fprintf(&b, "FINAL JUDGEMENT: %s\n", verdict)
	return b.String()
}

// Vote is one member's parsed verdict on one prompt.
type Vote struct {
	Member  string
	Verdict judge.Verdict
	// Err marks a member that errored or timed out on the shard; its
	// Verdict is meaningless and the vote abstains from every tally.
	Err bool
}

// word is the vote's wire spelling ("valid", "invalid", "unparsable",
// or "error" for a dropped member).
func (v Vote) word() string {
	if v.Err {
		return "error"
	}
	return v.Verdict.String()
}

// voteFromWord inverts word.
func voteFromWord(member, word string) (Vote, bool) {
	switch word {
	case "error":
		return Vote{Member: member, Err: true}, true
	case "valid":
		return Vote{Member: member, Verdict: judge.Valid}, true
	case "invalid":
		return Vote{Member: member, Verdict: judge.Invalid}, true
	case "unparsable":
		return Vote{Member: member, Verdict: judge.Unparsable}, true
	default:
		return Vote{}, false
	}
}

// ParseVotes extracts the strategy and per-member votes from a panel
// transcript, in panel order. ok is false when the response is not a
// panel transcript (no VOTE lines) — how callers detect that a
// backend expected to be an ensemble is a single judge.
func ParseVotes(resp string) (strategy string, votes []Vote, ok bool) {
	for _, line := range strings.Split(resp, "\n") {
		if rest, found := strings.CutPrefix(line, "PANEL VERDICT (strategy="); found {
			if sp := strings.IndexByte(rest, ' '); sp > 0 {
				strategy = rest[:sp]
			}
			continue
		}
		rest, found := strings.CutPrefix(line, "VOTE ")
		if !found {
			continue
		}
		// Member names may contain ':' (remote:host:port#0); the
		// verdict word never does, so split on the last ": ".
		idx := strings.LastIndex(rest, ": ")
		if idx <= 0 {
			continue
		}
		if v, parsed := voteFromWord(rest[:idx], rest[idx+2:]); parsed {
			votes = append(votes, v)
		}
	}
	return strategy, votes, len(votes) > 0
}

// EncodeVotes renders one file's panel outcome for the run store: the
// strategy token followed by member=word pairs in panel order,
// space-separated. The encoding is canonical — equal votes encode to
// equal bytes — so replayed runs never grow the store.
func EncodeVotes(strategy string, votes []Vote) string {
	parts := make([]string, 0, len(votes)+1)
	parts = append(parts, strategy)
	for _, v := range votes {
		parts = append(parts, v.Member+"="+v.word())
	}
	return strings.Join(parts, " ")
}

// DecodeVotes inverts EncodeVotes, restoring the strategy and the
// votes in their stored (panel) order.
func DecodeVotes(s string) (strategy string, votes []Vote, err error) {
	fields := strings.Fields(s)
	if len(fields) < 2 {
		return "", nil, fmt.Errorf("ensemble: stored votes %q too short", s)
	}
	strategy = fields[0]
	for _, f := range fields[1:] {
		idx := strings.LastIndex(f, "=")
		if idx <= 0 {
			return "", nil, fmt.Errorf("ensemble: bad stored vote %q", f)
		}
		v, parsed := voteFromWord(f[:idx], f[idx+1:])
		if !parsed {
			return "", nil, fmt.Errorf("ensemble: bad stored verdict in %q", f)
		}
		votes = append(votes, v)
	}
	return strategy, votes, nil
}

// ParseSpec splits an ensemble backend argument — "a+b+c" with an
// optional ":strategy" suffix — into member backend names and the
// voting strategy (Majority when absent). Member names may themselves
// contain ':' (remote:host:port); the suffix is treated as a strategy
// only when it names one. Nested ensembles are rejected: '+' would be
// ambiguous between the two levels.
func ParseSpec(arg string) (members []string, strategy Strategy, err error) {
	strategy = Majority
	if idx := strings.LastIndex(arg, ":"); idx >= 0 && knownStrategy(arg[idx+1:]) {
		strategy, _ = ParseStrategy(arg[idx+1:])
		arg = arg[:idx]
	}
	if arg == "" {
		return nil, 0, fmt.Errorf("ensemble: empty member list")
	}
	members = strings.Split(arg, "+")
	for _, m := range members {
		if m == "" {
			return nil, 0, fmt.Errorf("ensemble: empty member name in %q", arg)
		}
		if strings.HasPrefix(m, "ensemble:") {
			return nil, 0, fmt.Errorf("ensemble: nested ensemble member %q is not supported", m)
		}
		if strings.ContainsAny(m, " \t\n=") {
			return nil, 0, fmt.Errorf("ensemble: member name %q must not contain whitespace or '='", m)
		}
	}
	return members, strategy, nil
}

// WeightsFromVotes computes calibration weights for the Weighted
// strategy from recorded panel history: each member's agreement rate
// with the stored panel verdict across the given items (its accuracy
// against the panel consensus). A member with no usable history gets
// the neutral weight 1 — a fresh seat votes like anyone else until
// history accrues — while a history of pure disagreement gets a small
// positive floor, so no member is ever silenced entirely. votes[i]
// aligns with panelVerdicts[i]; items whose vote count mismatches
// members are skipped.
func WeightsFromVotes(members []string, votes [][]Vote, panelVerdicts []judge.Verdict) []float64 {
	const floor = 0.05
	agree := make([]int, len(members))
	counted := make([]int, len(members))
	byName := map[string]int{}
	for i, m := range members {
		byName[m] = i
	}
	for item, vs := range votes {
		if item >= len(panelVerdicts) {
			break
		}
		for _, v := range vs {
			i, ok := byName[v.Member]
			if !ok || v.Err {
				continue
			}
			counted[i]++
			if v.Verdict == panelVerdicts[item] {
				agree[i]++
			}
		}
	}
	weights := make([]float64, len(members))
	for i := range weights {
		w := floor
		if counted[i] > 0 {
			if r := float64(agree[i]) / float64(counted[i]); r > floor {
				w = r
			}
		} else {
			w = 1 // no history: neutral weight, not the floor
		}
		weights[i] = w
	}
	return weights
}
