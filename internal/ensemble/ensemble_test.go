package ensemble

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/judge"
)

// fixedLLM answers every prompt with a canned verdict phrase.
type fixedLLM struct{ word string }

func (f fixedLLM) Complete(prompt string) string {
	return "Reasoning.\nFINAL JUDGEMENT: " + f.word + "\n"
}

// errLLM fails every shard through the batch contract.
type errLLM struct{}

func (errLLM) Complete(prompt string) string { return "" }
func (errLLM) CompleteBatch(ctx context.Context, prompts []string) ([]string, error) {
	return nil, errors.New("member down")
}

// stallLLM answers answered prompts, then blocks until the context
// ends — a member that hangs mid-shard.
type stallLLM struct {
	answered int
	calls    atomic.Int64
}

func (s *stallLLM) Complete(prompt string) string { return "FINAL JUDGEMENT: valid\n" }
func (s *stallLLM) CompleteContext(ctx context.Context, prompt string) (string, error) {
	if int(s.calls.Add(1)) <= s.answered {
		return "FINAL JUDGEMENT: valid\n", nil
	}
	<-ctx.Done()
	return "", ctx.Err()
}

func mustPanel(t *testing.T, cfg Config) *Panel {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func members(words ...string) []Member {
	ms := make([]Member, len(words))
	for i, w := range words {
		ms[i] = Member{Name: fmt.Sprintf("m%d", i), LLM: fixedLLM{word: w}}
	}
	return ms
}

func verdictOf(t *testing.T, p *Panel, prompt string) (judge.Verdict, string) {
	t.Helper()
	resp, err := p.CompleteContext(context.Background(), prompt)
	if err != nil {
		t.Fatal(err)
	}
	return judge.ParseVerdict(resp), resp
}

func TestMajorityVoting(t *testing.T) {
	cases := []struct {
		words []string
		want  judge.Verdict
	}{
		{[]string{"valid", "valid", "invalid"}, judge.Valid},
		{[]string{"invalid", "invalid", "valid"}, judge.Invalid},
		{[]string{"valid", "valid", "valid"}, judge.Valid},
		// An unparsable member abstains; the remaining majority holds.
		{[]string{"maybe?", "invalid", "invalid"}, judge.Invalid},
		// Everyone abstains: the conservative floor is invalid.
		{[]string{"maybe?", "maybe?", "maybe?"}, judge.Invalid},
	}
	for _, tc := range cases {
		p := mustPanel(t, Config{Members: members(tc.words...)})
		got, resp := verdictOf(t, p, "judge this")
		if got != tc.want {
			t.Errorf("majority over %v = %v, want %v\n%s", tc.words, got, tc.want, resp)
		}
	}
}

func TestMajorityTieGoesToChair(t *testing.T) {
	// Two members split: the chair (member 0) decides, deterministically.
	p := mustPanel(t, Config{Members: members("valid", "invalid")})
	if got, _ := verdictOf(t, p, "x"); got != judge.Valid {
		t.Errorf("tie with valid chair = %v, want valid", got)
	}
	p = mustPanel(t, Config{Members: members("invalid", "valid")})
	if got, _ := verdictOf(t, p, "x"); got != judge.Invalid {
		t.Errorf("tie with invalid chair = %v, want invalid", got)
	}
	// An unparsable chair passes the gavel to the next parsable vote.
	p = mustPanel(t, Config{Members: members("maybe?", "valid", "invalid")})
	if got, _ := verdictOf(t, p, "x"); got != judge.Valid {
		t.Errorf("tie with unparsable chair = %v, want valid (next member)", got)
	}
}

func TestUnanimousVoting(t *testing.T) {
	cases := []struct {
		words []string
		want  judge.Verdict
	}{
		{[]string{"valid", "valid", "valid"}, judge.Valid},
		{[]string{"invalid", "invalid", "invalid"}, judge.Invalid},
		// One dissenting judge fails the file — even against a valid
		// chair and majority, which is what separates this strategy
		// from Majority (and from the chair deciding alone).
		{[]string{"valid", "valid", "invalid"}, judge.Invalid},
		{[]string{"invalid", "valid", "valid"}, judge.Invalid},
		// An unparsable survivor breaks unanimity too.
		{[]string{"valid", "maybe?", "valid"}, judge.Invalid},
		{[]string{"maybe?", "maybe?", "maybe?"}, judge.Invalid},
	}
	for _, tc := range cases {
		p := mustPanel(t, Config{Members: members(tc.words...), Strategy: Unanimous})
		if got, _ := verdictOf(t, p, "x"); got != tc.want {
			t.Errorf("unanimous over %v = %v, want %v", tc.words, got, tc.want)
		}
	}
	// Dropped members abstain: the surviving unanimity stands.
	ms := members("valid", "valid")
	ms = append(ms, Member{Name: "down", LLM: errLLM{}})
	p := mustPanel(t, Config{Members: ms, Strategy: Unanimous, Quorum: 2})
	if got, _ := verdictOf(t, p, "x"); got != judge.Valid {
		t.Errorf("degraded unanimous = %v, want valid from surviving unanimity", got)
	}
}

func TestWeightedVoting(t *testing.T) {
	// One heavyweight outvotes two lightweights.
	ms := members("invalid", "valid", "valid")
	ms[0].Weight = 5
	ms[1].Weight = 1
	ms[2].Weight = 1
	p := mustPanel(t, Config{Members: ms, Strategy: Weighted})
	if got, _ := verdictOf(t, p, "x"); got != judge.Invalid {
		t.Errorf("weighted 5-vs-2 = %v, want invalid", got)
	}
	// Zero/absent weights count as 1: plain majority.
	p = mustPanel(t, Config{Members: members("invalid", "valid", "valid"), Strategy: Weighted})
	if got, _ := verdictOf(t, p, "x"); got != judge.Valid {
		t.Errorf("weighted with default weights = %v, want valid", got)
	}
}

// TestTiebreakDeterminism: two identically-configured panels asked
// the same prompts produce byte-identical transcripts, ties included.
func TestTiebreakDeterminism(t *testing.T) {
	prompts := []string{"a", "b", "c", "d"}
	build := func() *Panel {
		return mustPanel(t, Config{Members: members("valid", "invalid", "maybe?")})
	}
	r1, err := build().CompleteBatch(context.Background(), prompts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := build().CompleteBatch(context.Background(), prompts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prompts {
		if r1[i] != r2[i] {
			t.Errorf("prompt %d transcripts diverged:\n%q\n%q", i, r1[i], r2[i])
		}
	}
}

func TestDegradedPanelQuorumMet(t *testing.T) {
	ms := members("valid", "valid")
	ms = append(ms, Member{Name: "down", LLM: errLLM{}})
	p := mustPanel(t, Config{Members: ms, Quorum: 2})
	resps, err := p.CompleteBatch(context.Background(), []string{"x"})
	if err != nil {
		t.Fatalf("degraded panel above quorum failed: %v", err)
	}
	if !strings.Contains(resps[0], "VOTE down: error") {
		t.Errorf("dropped member not recorded as an error vote:\n%s", resps[0])
	}
	if v := judge.ParseVerdict(resps[0]); v != judge.Valid {
		t.Errorf("degraded verdict = %v, want valid from the survivors", v)
	}
}

func TestDegradedPanelQuorumNotMet(t *testing.T) {
	ms := []Member{
		{Name: "up", LLM: fixedLLM{word: "valid"}},
		{Name: "down1", LLM: errLLM{}},
		{Name: "down2", LLM: errLLM{}},
	}
	p := mustPanel(t, Config{Members: ms, Quorum: 2})
	_, err := p.CompleteBatch(context.Background(), []string{"x"})
	if err == nil {
		t.Fatal("panel below quorum returned verdicts")
	}
	if !strings.Contains(err.Error(), "quorum") || !strings.Contains(err.Error(), "member down") {
		t.Errorf("quorum error %q does not explain itself", err)
	}
	// Quorum 0 means every member is required: a single failure fails.
	strict := mustPanel(t, Config{Members: []Member{
		{Name: "up", LLM: fixedLLM{word: "valid"}},
		{Name: "down", LLM: errLLM{}},
	}})
	if _, err := strict.CompleteBatch(context.Background(), []string{"x"}); err == nil {
		t.Fatal("full-quorum panel tolerated a member failure")
	}
}

// TestMemberTimeoutMidShard: a member that answers part of a shard
// then hangs is cut off by MemberTimeout and dropped from the whole
// shard's votes; the panel proceeds on the survivors.
func TestMemberTimeoutMidShard(t *testing.T) {
	slow := &stallLLM{answered: 2}
	ms := members("valid", "invalid")
	ms = append(ms, Member{Name: "slow", LLM: slow})
	p := mustPanel(t, Config{Members: ms, Quorum: 2, MemberTimeout: 20 * time.Millisecond})
	start := time.Now()
	resps, err := p.CompleteBatch(context.Background(), []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatalf("panel did not survive a member timing out mid-shard: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout did not bound the shard: took %v", elapsed)
	}
	for i, resp := range resps {
		if !strings.Contains(resp, "VOTE slow: error") {
			t.Errorf("prompt %d: timed-out member not dropped:\n%s", i, resp)
		}
		// Chair (valid) wins the 1-1 survivor tie, deterministically.
		if v := judge.ParseVerdict(resp); v != judge.Valid {
			t.Errorf("prompt %d: degraded verdict = %v, want valid", i, v)
		}
	}
	// The caller's own cancellation is not a degraded panel.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.CompleteBatch(ctx, []string{"x"}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled call returned %v, want context.Canceled", err)
	}
}

// hangLLM implements only the plain, uncancellable judge.LLM contract
// and never returns — the worst-case member: no context to honour.
type hangLLM struct{ block chan struct{} }

func (h hangLLM) Complete(prompt string) string { <-h.block; return "" }

// TestHungPlainMemberCannotStallPanel: a member whose only contract
// is the error-free Complete cannot be cancelled, but MemberTimeout
// must still bound the shard — the panel abandons the hung goroutine,
// records the member as an error vote, and proceeds on the survivors.
// Caller cancellation must likewise unblock immediately.
func TestHungPlainMemberCannotStallPanel(t *testing.T) {
	hung := hangLLM{block: make(chan struct{})}
	defer close(hung.block) // release the leaked goroutine at test end
	ms := members("valid", "invalid")
	ms = append(ms, Member{Name: "hung", LLM: hung})
	p := mustPanel(t, Config{Members: ms, Quorum: 2, MemberTimeout: 20 * time.Millisecond})
	start := time.Now()
	resps, err := p.CompleteBatch(context.Background(), []string{"a", "b"})
	if err != nil {
		t.Fatalf("panel did not survive a hung plain-LLM member: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("MemberTimeout did not bound the shard: took %v", elapsed)
	}
	for i, resp := range resps {
		if !strings.Contains(resp, "VOTE hung: error") {
			t.Errorf("prompt %d: hung member not recorded as an error vote:\n%s", i, resp)
		}
	}

	// Without a member timeout, the caller's own deadline must still
	// unblock the call even though the hung goroutine cannot be
	// interrupted.
	p2 := mustPanel(t, Config{Members: []Member{
		{Name: "up", LLM: fixedLLM{word: "valid"}},
		{Name: "hung", LLM: hung},
	}})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start = time.Now()
	if _, err := p2.CompleteBatch(ctx, []string{"x"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("caller deadline over a hung member returned %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("caller deadline did not unblock the panel: took %v", elapsed)
	}
}

func TestParseVotesRoundTrip(t *testing.T) {
	p := mustPanel(t, Config{Members: members("valid", "invalid", "maybe?"), Strategy: Unanimous})
	resp, err := p.CompleteContext(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	strategy, votes, ok := ParseVotes(resp)
	if !ok {
		t.Fatalf("own transcript did not parse:\n%s", resp)
	}
	if strategy != "unanimous" {
		t.Errorf("strategy = %q", strategy)
	}
	want := []Vote{
		{Member: "m0", Verdict: judge.Valid},
		{Member: "m1", Verdict: judge.Invalid},
		{Member: "m2", Verdict: judge.Unparsable},
	}
	if len(votes) != len(want) {
		t.Fatalf("parsed %d votes, want %d", len(votes), len(want))
	}
	for i := range want {
		if votes[i] != want[i] {
			t.Errorf("vote %d = %+v, want %+v", i, votes[i], want[i])
		}
	}
	// Store encoding round-trips too, including error votes and
	// member names with colons.
	in := []Vote{{Member: "remote:127.0.0.1:99#0", Verdict: judge.Valid}, {Member: "m1", Err: true}}
	enc := EncodeVotes("majority", in)
	strat, out, err := DecodeVotes(enc)
	if err != nil || strat != "majority" || len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Errorf("DecodeVotes(%q) = %q %+v %v", enc, strat, out, err)
	}
	// A single-judge response is recognisably not a panel transcript.
	if _, _, ok := ParseVotes("Reasoning.\nFINAL JUDGEMENT: valid\n"); ok {
		t.Error("single-judge response parsed as panel votes")
	}
}

func TestParseSpec(t *testing.T) {
	ms, strat, err := ParseSpec("a+b+c")
	if err != nil || strat != Majority || len(ms) != 3 {
		t.Errorf("ParseSpec(a+b+c) = %v %v %v", ms, strat, err)
	}
	ms, strat, err = ParseSpec("a+remote:127.0.0.1:8080:weighted")
	if err != nil || strat != Weighted || len(ms) != 2 || ms[1] != "remote:127.0.0.1:8080" {
		t.Errorf("ParseSpec with remote member = %v %v %v", ms, strat, err)
	}
	for _, bad := range []string{"", "a++b", "a+ensemble:b+c", ":majority", "a b+c"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty panel accepted")
	}
	if _, err := New(Config{Members: []Member{{Name: "a", LLM: nil}}}); err == nil {
		t.Error("nil member endpoint accepted")
	}
	dup := members("valid", "valid")
	dup[1].Name = dup[0].Name
	if _, err := New(Config{Members: dup}); err == nil {
		t.Error("duplicate member names accepted")
	}
	bad := members("valid")
	bad[0].Name = "has space"
	if _, err := New(Config{Members: bad}); err == nil {
		t.Error("member name with whitespace accepted")
	}
}

func TestWeightsFromVotes(t *testing.T) {
	memberNames := []string{"a", "b"}
	votes := [][]Vote{
		{{Member: "a", Verdict: judge.Valid}, {Member: "b", Verdict: judge.Invalid}},
		{{Member: "a", Verdict: judge.Valid}, {Member: "b", Verdict: judge.Valid}},
	}
	panel := []judge.Verdict{judge.Valid, judge.Valid}
	w := WeightsFromVotes(memberNames, votes, panel)
	if w[0] != 1.0 {
		t.Errorf("always-agreeing member weight = %v, want 1", w[0])
	}
	if w[1] != 0.5 {
		t.Errorf("half-agreeing member weight = %v, want 0.5", w[1])
	}
	// No history: neutral weight, not the floor.
	w = WeightsFromVotes([]string{"c"}, nil, nil)
	if w[0] != 1 {
		t.Errorf("history-less member weight = %v, want 1", w[0])
	}
	// Pure disagreement still gets the floor, never zero.
	w = WeightsFromVotes(memberNames, [][]Vote{
		{{Member: "a", Verdict: judge.Invalid}, {Member: "b", Verdict: judge.Valid}},
	}, []judge.Verdict{judge.Valid})
	if w[0] <= 0 {
		t.Errorf("always-disagreeing member weight = %v, want > 0", w[0])
	}
}
