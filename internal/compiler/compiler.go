// Package compiler implements the simulated "compliant compiler" the
// validation pipeline's first stage runs. It performs full semantic
// analysis of the test dialect — scoped symbol resolution, light type
// checking, and directive/clause validation against internal/spec —
// and lowers accepted programs to the annotated form internal/machine
// executes.
//
// Two compiler personalities reproduce the toolchains the paper used:
//
//   - NVCSim models NVIDIA HPC SDK nvc for OpenACC. It is strict about
//     implicit function declarations (an error, as in recent nvc) and
//     has a small set of unsupported newer OpenACC features, modelling
//     the real-world observation in the paper that a measurable slice
//     of *valid* hand-written OpenACC tests fails to build or run on a
//     given toolchain (pipeline valid-recognition < judge
//     valid-recognition in Tables IV/VII).
//
//   - ClangSim models the LLVM OpenMP offloading compiler on a suite
//     restricted to OpenMP <= 4.5, which the paper chose precisely so
//     the compiler is fully compliant: every 4.5 feature is supported,
//     and implicit function declarations are warnings, not errors.
package compiler

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/spec"
	"repro/internal/testlang"
)

// Diagnostic is one compiler message.
type Diagnostic struct {
	Line    int
	Warning bool
	Msg     string
}

func (d Diagnostic) format(name string) string {
	sev := "error"
	if d.Warning {
		sev = "warning"
	}
	return fmt.Sprintf("%s:%d: %s: %s", name, d.Line, sev, d.Msg)
}

// Result is the outcome of compiling one file: the toolchain artefacts
// the agent-based judge receives (return code, stdout, stderr) and,
// on success, the executable object.
type Result struct {
	OK         bool
	ReturnCode int
	Stdout     string
	Stderr     string
	// Object is the checked, executable program; nil unless OK.
	Object *Object
	// Diags preserves structured diagnostics for tests and reports.
	Diags []Diagnostic
}

// Object is a compiled program: the checked AST plus the lowered
// directive plans the machine executes.
type Object struct {
	File    *testlang.File
	Lang    testlang.Language
	Dialect spec.Dialect
	// Funcs maps function name to its definition (bodies only).
	Funcs map[string]*testlang.FuncDecl
	// Globals lists file-scope variable declarations in order.
	Globals []*testlang.VarDecl
	// Plans maps each directive statement to its execution plan.
	Plans map[*testlang.DirectiveStmt]*DirPlan
}

// Personality is a simulated compiler's feature-support profile.
type Personality struct {
	// Name appears in diagnostics ("nvc", "clang").
	Name string
	// Dialect this personality compiles.
	Dialect spec.Dialect
	// ImplicitDeclError: calls to undeclared functions are errors
	// (true for NVCSim) rather than warnings (ClangSim).
	ImplicitDeclError bool
	// Unsupported maps feature keys ("clause:tile",
	// "directive:host_data") to the diagnostic text emitted when a
	// program uses them. These are otherwise-valid constructs this
	// toolchain cannot build, the mechanism behind valid-file compile
	// failures.
	Unsupported map[string]string
}

// NVCSim returns the simulated NVIDIA HPC SDK OpenACC compiler.
func NVCSim() *Personality {
	return &Personality{
		Name:              "nvc",
		Dialect:           spec.OpenACC,
		ImplicitDeclError: true,
		Unsupported: map[string]string{
			"clause:tile":          "tile clause is not supported by this accelerator target",
			"clause:no_create":     "no_create clause is not implemented for this target",
			"clause:attach":        "attach clause is not implemented for this target",
			"clause:detach":        "detach clause is not implemented for this target",
			"clause:if_present":    "if_present is not implemented for this target",
			"directive:host_data":  "host_data construct is not supported for this target",
			"directive:init":       "acc init is not supported in this configuration",
			"directive:shutdown":   "acc shutdown is not supported in this configuration",
			"directive:set":        "acc set is not supported in this configuration",
			"clause:device_type":   "device_type clause is not supported by this release",
			"clause:default_async": "default_async is not supported by this release",
		},
	}
}

// ClangSim returns the simulated LLVM OpenMP offloading compiler,
// fully compliant for OpenMP <= 4.5.
func ClangSim() *Personality {
	return &Personality{
		Name:              "clang",
		Dialect:           spec.OpenMP,
		ImplicitDeclError: false,
		Unsupported:       map[string]string{},
	}
}

// Reference returns an idealised fully-compliant compiler for the
// dialect: every specification feature supported, lenient about
// implicit declarations. The corpus test suite uses it to prove
// templates are specification-valid independent of any personality's
// support gaps.
func Reference(d spec.Dialect) *Personality {
	return &Personality{
		Name:        "refcc",
		Dialect:     d,
		Unsupported: map[string]string{},
	}
}

// ForDialect returns the personality the paper pairs with each model:
// nvc for OpenACC, clang for OpenMP.
func ForDialect(d spec.Dialect) *Personality {
	if d == spec.OpenACC {
		return NVCSim()
	}
	return ClangSim()
}

// Compile type-checks src, validates its directives, and returns the
// toolchain result. name is used in diagnostics ("vecadd.c").
func (p *Personality) Compile(name, src string, lang testlang.Language) *Result {
	if lang == testlang.LangFortran {
		return p.compileFortran(name, src)
	}
	file, parseErrs := testlang.ParseFile(src, lang, p.Dialect)
	c := &checker{pers: p, file: file}
	var diags []Diagnostic
	for _, e := range parseErrs {
		diags = append(diags, Diagnostic{Line: lineOf(e), Msg: stripLinePrefix(e.Error())})
	}
	diags = append(diags, c.check()...)
	return p.finish(name, diags, &Object{
		File:    file,
		Lang:    lang,
		Dialect: p.Dialect,
		Funcs:   c.funcs,
		Globals: c.globals,
		Plans:   c.plans,
	})
}

// compileFortran checks a Fortran file. The simulated toolchain
// validates Fortran but does not execute it (the paper's pipeline
// experiments are C/C++ only; its Fortran files appear in Part One,
// which never compiles or runs anything).
func (p *Personality) compileFortran(name, src string) *Result {
	info, errs := testlang.CheckFortran(src, p.Dialect)
	var diags []Diagnostic
	for _, e := range errs {
		diags = append(diags, Diagnostic{Line: lineOf(e), Msg: stripLinePrefix(e.Error())})
	}
	// Feature-support gating applies to Fortran directives too.
	for _, dir := range info.Directives {
		diags = append(diags, p.featureDiags(dir)...)
	}
	return p.finish(name, diags, nil)
}

func (p *Personality) featureDiags(dir *testlang.Directive) []Diagnostic {
	var diags []Diagnostic
	key := "directive:" + strings.ReplaceAll(dir.Name, " ", "_")
	if msg, bad := p.Unsupported[key]; bad {
		diags = append(diags, Diagnostic{Line: dir.Pos(), Msg: msg})
	}
	for _, clause := range dir.Clauses {
		if msg, bad := p.Unsupported["clause:"+clause.Name]; bad {
			diags = append(diags, Diagnostic{Line: dir.Pos(), Msg: msg})
		}
	}
	return diags
}

// finish renders diagnostics into the toolchain result shape.
func (p *Personality) finish(name string, diags []Diagnostic, obj *Object) *Result {
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Line < diags[j].Line })
	res := &Result{Diags: diags}
	var errCount int
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(p.Name)
		sb.WriteByte(' ')
		sb.WriteString(d.format(name))
		sb.WriteByte('\n')
		if !d.Warning {
			errCount++
		}
	}
	if errCount > 0 {
		fmt.Fprintf(&sb, "%s: %d error(s) generated.\n", p.Name, errCount)
		res.ReturnCode = 1
		res.Stderr = sb.String()
		return res
	}
	res.OK = true
	res.Stderr = sb.String() // warnings only
	res.Object = obj
	return res
}

func lineOf(e error) int {
	switch t := e.(type) {
	case *testlang.ParseError:
		return t.Line
	case *testlang.LexError:
		return t.Line
	case *testlang.FortranError:
		return t.Line
	default:
		return 0
	}
}

// stripLinePrefix removes the "line N: " prefix the front-end error
// types embed, since Diagnostic carries the line separately.
func stripLinePrefix(msg string) string {
	if !strings.HasPrefix(msg, "line ") {
		return msg
	}
	if i := strings.Index(msg, ": "); i > 0 {
		return msg[i+2:]
	}
	return msg
}
