package compiler

import (
	"strings"

	"repro/internal/spec"
	"repro/internal/testlang"
)

// DirKind classifies a directive for the machine.
type DirKind int

const (
	// KindNoop: directives with no runtime effect in the simulation
	// (wait, barrier, flush, routine, declare, init, ...).
	KindNoop DirKind = iota
	// KindComputeBlock: an offloaded structured block (acc parallel /
	// kernels / serial, omp target / target teams / teams / target
	// parallel). The body runs once in the device data environment.
	KindComputeBlock
	// KindComputeLoop: an offloaded work-shared loop (acc parallel
	// loop, omp target teams distribute parallel for, ...). Iterations
	// run concurrently in the device data environment.
	KindComputeLoop
	// KindHostParallel: omp parallel — the block runs once per thread
	// on the host.
	KindHostParallel
	// KindHostLoop: omp parallel for (simd) — host work-shared loop.
	KindHostLoop
	// KindLoop: a loop directive nested inside an enclosing region
	// (acc loop, omp for / simd / distribute). Work-shared when the
	// region is parallel; the simulation distributes the enclosing
	// construct, so nested loop directives execute their loop inline.
	KindLoop
	// KindData: structured data region (acc data, omp target data).
	KindData
	// KindEnterData and KindExitData: unstructured data actions.
	KindEnterData
	KindExitData
	// KindUpdate: acc update / omp target update.
	KindUpdate
	// KindAtomic: atomic read/write/update/capture.
	KindAtomic
	// KindCritical: omp critical — body under a global mutex.
	KindCritical
	// KindOnce: omp single / master — body executes on one thread.
	KindOnce
	// KindInline: constructs executed inline sequentially in the
	// simulation (sections, section, task, ordered).
	KindInline
)

// opensComputeRegion reports whether nested orphaned loop directives
// are legal inside this construct.
func (k DirKind) opensComputeRegion() bool {
	switch k {
	case KindComputeBlock, KindComputeLoop, KindHostParallel, KindHostLoop:
		return true
	}
	return false
}

// IsDevice reports whether the construct executes in the device data
// environment (data movement and presence checks apply).
func (k DirKind) IsDevice(dialect spec.Dialect, name string) bool {
	switch k {
	case KindComputeBlock, KindComputeLoop:
		if dialect == spec.OpenACC {
			return true
		}
		return strings.HasPrefix(name, "target") || strings.HasPrefix(name, "teams")
	}
	return false
}

// DataMode says what a DataOp does with its sections.
type DataMode int

const (
	MCopyIn DataMode = iota
	MCopyOut
	MCopy
	MCreate
	MPresent
	MDelete
	MUpdateHost
	MUpdateDevice
	// MIgnore marks clauses that are validated but have no runtime
	// data-movement effect in the simulation (no_create, deviceptr,
	// use_device, attach, ...).
	MIgnore
)

func (m DataMode) String() string {
	switch m {
	case MCopyIn:
		return "copyin"
	case MCopyOut:
		return "copyout"
	case MCopy:
		return "copy"
	case MCreate:
		return "create"
	case MPresent:
		return "present"
	case MDelete:
		return "delete"
	case MUpdateHost:
		return "update-host"
	case MUpdateDevice:
		return "update-device"
	default:
		return "?"
	}
}

// DataOp is one data-movement action derived from a clause.
type DataOp struct {
	Mode     DataMode
	Sections []testlang.Section
}

// ReductionPlan is one reduction clause.
type ReductionPlan struct {
	Op   string
	Vars []string
}

// DirPlan is the lowered, machine-executable form of one directive.
type DirPlan struct {
	Kind DirKind
	// Name is the spec directive name, for diagnostics and device
	// classification.
	Name string
	Data []DataOp
	// Reductions across the construct.
	Reductions []ReductionPlan
	// Private and FirstPrivate variable names.
	Private      []string
	FirstPrivate []string
	// NumWorkers is the requested parallelism expression (num_gangs,
	// num_threads, num_teams, ...), nil when unspecified.
	NumWorkers testlang.Expr
	// If is the condition expression of an if() clause, nil if absent.
	If testlang.Expr
	// AtomicKind is "read", "write", "update" or "capture".
	AtomicKind string
	// Device reports whether the construct runs in the device data
	// environment.
	Device bool
}

// kindOf maps a spec directive name to its machine kind.
func kindOf(dialect spec.Dialect, name string) DirKind {
	if dialect == spec.OpenACC {
		switch name {
		case "parallel", "kernels", "serial":
			return KindComputeBlock
		case "parallel loop", "kernels loop", "serial loop":
			return KindComputeLoop
		case "loop":
			return KindLoop
		case "data":
			return KindData
		case "enter data":
			return KindEnterData
		case "exit data":
			return KindExitData
		case "update":
			return KindUpdate
		case "atomic":
			return KindAtomic
		case "host_data":
			return KindData
		default:
			return KindNoop
		}
	}
	switch name {
	case "parallel":
		return KindHostParallel
	case "parallel for", "parallel for simd":
		return KindHostLoop
	case "for", "for simd", "simd", "distribute":
		return KindLoop
	case "target", "target parallel", "target teams", "teams":
		return KindComputeBlock
	case "target teams distribute", "teams distribute",
		"target teams distribute parallel for",
		"teams distribute parallel for", "target parallel for":
		return KindComputeLoop
	case "target data":
		return KindData
	case "target enter data":
		return KindEnterData
	case "target exit data":
		return KindExitData
	case "target update":
		return KindUpdate
	case "atomic":
		return KindAtomic
	case "critical":
		return KindCritical
	case "single", "master":
		return KindOnce
	case "sections", "section", "task", "ordered":
		return KindInline
	default:
		return KindNoop
	}
}

// clauseDataMode maps data-clause names to modes; ok=false for clauses
// that do not move data.
func clauseDataMode(dialect spec.Dialect, dirName, clause string) (DataMode, bool) {
	switch clause {
	case "copyin":
		return MCopyIn, true
	case "copyout":
		return MCopyOut, true
	case "copy":
		return MCopy, true
	case "create":
		return MCreate, true
	case "present":
		return MPresent, true
	case "delete":
		return MDelete, true
	case "host", "self":
		return MUpdateHost, true
	case "device":
		if dirName == "update" {
			return MUpdateDevice, true
		}
		return 0, false // omp device(n) clause: device number, not data
	case "to":
		if dirName == "target update" {
			return MUpdateDevice, true
		}
		return 0, false // declare target to(...)
	case "from":
		return MUpdateHost, dirName == "target update"
	case "no_create", "deviceptr", "use_device", "is_device_ptr", "device_resident", "link", "attach", "detach":
		return MIgnore, true
	}
	return 0, false
}

func mapTypeMode(mt string) DataMode {
	switch mt {
	case "to":
		return MCopyIn
	case "from":
		return MCopyOut
	case "tofrom":
		return MCopy
	case "alloc":
		return MCreate
	case "release", "delete":
		return MDelete
	default:
		return MCopy
	}
}

// validateDirective checks one directive against the spec table and
// the current scope, and lowers it to a DirPlan. It returns nil when
// the directive is too broken to plan.
func (c *checker) validateDirective(ds *testlang.DirectiveStmt, atFileScope bool) *DirPlan {
	dir := ds.Dir
	table := spec.ForDialect(c.pers.Dialect)
	if !dir.Known {
		c.errorf(dir.Pos(), "invalid text in %s directive: unknown directive %q",
			c.pers.Dialect, dir.Name)
		return nil
	}
	sd, _ := table.Lookup(dir.Name)
	if sd.Version > table.MaxVersion {
		c.errorf(dir.Pos(), "%s directive %q requires specification version %d.%d, newer than supported %d.%d",
			c.pers.Dialect, dir.Name, sd.Version/10, sd.Version%10, table.MaxVersion/10, table.MaxVersion%10)
	}
	for _, d := range c.pers.featureDiags(dir) {
		c.diags = append(c.diags, d)
	}

	plan := &DirPlan{Kind: kindOf(c.pers.Dialect, dir.Name), Name: dir.Name, AtomicKind: "update"}
	plan.Device = plan.Kind.IsDevice(c.pers.Dialect, dir.Name)

	for _, cl := range dir.Clauses {
		arg, valid := sd.Clauses[cl.Name]
		if !valid {
			c.errorf(dir.Pos(), "invalid clause %q on %s directive %q", cl.Name, c.pers.Dialect, dir.Name)
			continue
		}
		c.checkClauseShape(dir, cl, arg)
		c.lowerClause(plan, dir, cl)
	}

	c.checkAssociation(ds, sd, plan, atFileScope)
	return plan
}

// checkClauseShape validates the argument form of one clause.
func (c *checker) checkClauseShape(dir *testlang.Directive, cl testlang.DirClause, arg spec.ClauseArg) {
	switch arg {
	case spec.ArgNone:
		if cl.HasParens {
			c.errorf(dir.Pos(), "clause %q takes no argument", cl.Name)
		}
	case spec.ArgIntExpr:
		if !cl.HasParens || strings.TrimSpace(cl.Arg) == "" {
			c.errorf(dir.Pos(), "clause %q requires an argument", cl.Name)
			return
		}
		c.checkClauseExpr(dir, cl.Name, cl.Arg)
	case spec.ArgOptionalIntExpr:
		if cl.HasParens && strings.TrimSpace(cl.Arg) != "" {
			c.checkClauseExpr(dir, cl.Name, cl.Arg)
		}
	case spec.ArgIfExpr:
		if !cl.HasParens || strings.TrimSpace(cl.Arg) == "" {
			c.errorf(dir.Pos(), "clause %q requires a condition", cl.Name)
			return
		}
		c.checkClauseExpr(dir, cl.Name, cl.Arg)
	case spec.ArgVarList:
		if !cl.HasParens {
			c.errorf(dir.Pos(), "clause %q requires a variable list", cl.Name)
			return
		}
		// default(none|shared|present), schedule(static,4) and
		// tile(8,8) style keyword/integer arguments are not variable
		// lists.
		if cl.Name == "default" || cl.Name == "schedule" || cl.Name == "proc_bind" ||
			cl.Name == "dist_schedule" || cl.Name == "device_type" || cl.Name == "bind" ||
			cl.Name == "depend" || cl.Name == "tile" || cl.Name == "aligned" ||
			cl.Name == "linear" {
			return
		}
		c.checkSections(dir, cl.Name, cl.Arg)
	case spec.ArgReduction:
		if !cl.HasParens {
			c.errorf(dir.Pos(), "reduction clause requires operator and variables")
			return
		}
		op, vars, ok := testlang.ReductionParts(cl.Arg)
		if !ok {
			c.errorf(dir.Pos(), "malformed reduction clause %q", cl.Arg)
			return
		}
		if !spec.ValidReductionOp(op) {
			c.errorf(dir.Pos(), "invalid reduction operator %q", op)
		}
		if len(vars) == 0 {
			c.errorf(dir.Pos(), "reduction clause lists no variables")
		}
		for _, v := range vars {
			c.checkClauseVar(dir, cl.Name, v)
		}
	case spec.ArgMap:
		if !cl.HasParens {
			c.errorf(dir.Pos(), "map clause requires an argument")
			return
		}
		mt, _ := testlang.MapParts(cl.Arg)
		if !spec.ValidMapType(mt) {
			c.errorf(dir.Pos(), "invalid map type %q", mt)
		}
		c.checkSections(dir, cl.Name, afterTopColon(cl.Arg))
	}
}

func afterTopColon(arg string) string {
	depth := 0
	for i := 0; i < len(arg); i++ {
		switch arg[i] {
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case ':':
			if depth == 0 {
				return arg[i+1:]
			}
		}
	}
	return arg
}

func (c *checker) checkClauseExpr(dir *testlang.Directive, clause, text string) {
	e, errs := testlang.ParseExprString(text)
	if len(errs) > 0 {
		c.errorf(dir.Pos(), "malformed argument to clause %q: %q", clause, text)
		return
	}
	c.checkExpr(e)
}

func (c *checker) checkSections(dir *testlang.Directive, clause, arg string) {
	secs, errs := testlang.ParseSections(arg)
	if len(errs) > 0 {
		c.errorf(dir.Pos(), "malformed variable list in clause %q: %q", clause, arg)
	}
	for _, s := range secs {
		c.checkClauseVar(dir, clause, s.Name)
		if s.Lo != nil {
			c.checkExpr(s.Lo)
			c.checkExpr(s.Len)
		}
	}
}

func (c *checker) checkClauseVar(dir *testlang.Directive, clause, name string) {
	if _, ok := c.scope.lookup(name); ok {
		return
	}
	if _, ok := builtinConsts[name]; ok {
		return
	}
	c.errorf(dir.Pos(), "variable %q in clause %q is not declared", name, clause)
}

// lowerClause records the runtime effect of one (already shape-checked)
// clause in the plan.
func (c *checker) lowerClause(plan *DirPlan, dir *testlang.Directive, cl testlang.DirClause) {
	switch cl.Name {
	case "reduction":
		if op, vars, ok := testlang.ReductionParts(cl.Arg); ok {
			plan.Reductions = append(plan.Reductions, ReductionPlan{Op: op, Vars: vars})
		}
	case "private":
		plan.Private = append(plan.Private, testlang.ClauseVars(cl.Arg)...)
	case "firstprivate":
		plan.FirstPrivate = append(plan.FirstPrivate, testlang.ClauseVars(cl.Arg)...)
	case "num_gangs", "num_workers", "num_threads", "num_teams", "vector_length", "thread_limit":
		if plan.NumWorkers == nil && cl.HasParens {
			if e, errs := testlang.ParseExprString(cl.Arg); len(errs) == 0 {
				plan.NumWorkers = e
			}
		}
	case "if":
		if cl.HasParens {
			if e, errs := testlang.ParseExprString(cl.Arg); len(errs) == 0 {
				plan.If = e
			}
		}
	case "read", "write", "update", "capture":
		if plan.Kind == KindAtomic {
			plan.AtomicKind = cl.Name
		}
	case "map":
		mt, _ := testlang.MapParts(cl.Arg)
		if secs, errs := testlang.ParseSections(afterTopColon(cl.Arg)); len(errs) == 0 {
			plan.Data = append(plan.Data, DataOp{Mode: mapTypeMode(mt), Sections: secs})
		}
	default:
		if mode, isData := clauseDataMode(c.pers.Dialect, dir.Name, cl.Name); isData {
			if secs, errs := testlang.ParseSections(cl.Arg); len(errs) == 0 {
				plan.Data = append(plan.Data, DataOp{Mode: mode, Sections: secs})
			}
		}
	}
}

// checkAssociation validates the construct following the directive.
func (c *checker) checkAssociation(ds *testlang.DirectiveStmt, sd *spec.Directive, plan *DirPlan, atFileScope bool) {
	dir := ds.Dir
	switch sd.Association {
	case spec.AssocNone:
		// Standalone; parser never attaches a body.
	case spec.AssocLoop:
		loop := ds.Body
		// A combined construct may legally wrap another directive
		// (e.g. "omp target" + "omp parallel for"), but loop-associated
		// directives need the loop itself.
		fs, ok := loop.(*testlang.ForStmt)
		if !ok {
			c.errorf(dir.Pos(), "for loop expected after %s directive %q", c.pers.Dialect, dir.Name)
			return
		}
		c.checkCanonicalLoop(dir, fs)
	case spec.AssocBlock:
		if ds.Body == nil && !atFileScope {
			c.errorf(dir.Pos(), "structured block expected after directive %q", dir.Name)
		}
	case spec.AssocStatement:
		c.checkAtomicBody(dir, plan, ds.Body)
	}
}

// checkCanonicalLoop enforces the canonical loop form both models
// require for work-sharing: initialised loop variable, bounded test,
// monotonic step.
func (c *checker) checkCanonicalLoop(dir *testlang.Directive, fs *testlang.ForStmt) {
	if fs.Cond == nil {
		c.errorf(dir.Pos(), "associated loop has no termination condition (not in canonical form)")
		return
	}
	if b, ok := fs.Cond.(*testlang.BinaryExpr); !ok || (b.Op != "<" && b.Op != "<=" && b.Op != ">" && b.Op != ">=" && b.Op != "!=") {
		c.errorf(dir.Pos(), "associated loop condition is not in canonical form")
	}
	if fs.Post == nil {
		c.errorf(dir.Pos(), "associated loop has no increment (not in canonical form)")
	}
}

// checkAtomicBody validates the statement under an atomic directive.
func (c *checker) checkAtomicBody(dir *testlang.Directive, plan *DirPlan, body testlang.Stmt) {
	es, ok := body.(*testlang.ExprStmt)
	if !ok {
		c.errorf(dir.Pos(), "atomic directive requires an expression statement")
		return
	}
	switch x := es.X.(type) {
	case *testlang.AssignExpr:
		// x = expr (write), x op= expr (update), v = x (read/capture)
		return
	case *testlang.UnaryExpr:
		if x.Op == "++" || x.Op == "--" {
			return
		}
	case *testlang.PostfixExpr:
		return
	}
	c.errorf(dir.Pos(), "statement form not supported under atomic %s", plan.AtomicKind)
}
